// End-to-end smoke test: deploy tasks through the controller, run a trace
// through the CMU data plane, and verify control-plane readout accuracy.
#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "control/controller.hpp"
#include "packet/trace_gen.hpp"

namespace flymon {
namespace {

TEST(Smoke, CmsFrequencyTaskEndToEnd) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);

  TaskSpec spec;
  spec.name = "per-src flow size";
  spec.key = FlowKeySpec::src_ip();
  spec.attribute = AttributeKind::kFrequency;
  spec.param = ParamSpec::constant(1);
  spec.memory_buckets = 16384;
  spec.rows = 3;
  const auto r = ctl.add_task(spec);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.report.delay_ms(), 0.0);

  TraceConfig cfg;
  cfg.num_flows = 2000;
  cfg.num_packets = 100'000;
  const auto trace = TraceGenerator::generate(cfg);
  dp.process_all(trace);

  const FreqMap truth = ExactStats::frequency(trace, spec.key);
  const double are = analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
    return ctl.query_value(r.task_id, packet_from_candidate_key(k.bytes));
  });
  EXPECT_LT(are, 0.05) << "CMS ARE too high";
}

TEST(Smoke, BeauCoupDdosDetection) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);

  TaskSpec spec;
  spec.name = "ddos victims";
  spec.key = FlowKeySpec::dst_ip();
  spec.attribute = AttributeKind::kDistinct;
  spec.param = ParamSpec::compressed(FlowKeySpec::src_ip());
  spec.algorithm = Algorithm::kBeauCoup;
  spec.report_threshold = 512;
  spec.memory_buckets = 16384;
  spec.rows = 3;
  const auto r = ctl.add_task(spec);
  ASSERT_TRUE(r.ok) << r.error;

  TraceConfig cfg;
  cfg.num_flows = 3000;
  cfg.num_packets = 60'000;
  auto trace = TraceGenerator::generate(cfg);
  DdosConfig ddos;
  ddos.num_victims = 10;
  ddos.spreaders_per_victim = 2000;
  TraceGenerator::inject_ddos(trace, ddos, cfg.duration_ns);
  dp.process_all(trace);

  const FreqMap truth = ExactStats::distinct(trace, spec.key, FlowKeySpec::src_ip());
  const auto victims = ExactStats::over_threshold(truth, 512);
  ASSERT_GE(victims.size(), 10u);

  std::vector<FlowKeyValue> candidates;
  for (const auto& [k, v] : truth) candidates.push_back(k);
  const auto reported = ctl.detect_over_threshold(r.task_id, candidates, 512);
  const auto score = analysis::score_detection(victims, reported);
  EXPECT_GT(score.f1(), 0.8) << "precision=" << score.precision()
                             << " recall=" << score.recall();
}

TEST(Smoke, HyperLogLogCardinality) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);

  TaskSpec spec;
  spec.name = "cardinality";
  spec.key = FlowKeySpec{};  // N/A key: whole-traffic cardinality
  spec.attribute = AttributeKind::kDistinct;
  spec.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  spec.algorithm = Algorithm::kHyperLogLog;
  spec.memory_buckets = 2048;
  const auto r = ctl.add_task(spec);
  ASSERT_TRUE(r.ok) << r.error;

  TraceConfig cfg;
  cfg.num_flows = 20'000;
  cfg.num_packets = 80'000;
  cfg.zipf_alpha = 0.4;
  const auto trace = TraceGenerator::generate(cfg);
  dp.process_all(trace);

  const double truth =
      static_cast<double>(ExactStats::cardinality(trace, FlowKeySpec::five_tuple()));
  const double est = ctl.estimate_cardinality(r.task_id);
  EXPECT_LT(analysis::relative_error(truth, est), 0.1)
      << "truth=" << truth << " est=" << est;
}

TEST(Smoke, BloomFilterExistence) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);

  TaskSpec spec;
  spec.name = "blacklist";
  spec.key = FlowKeySpec::five_tuple();
  spec.attribute = AttributeKind::kExistence;
  spec.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  spec.memory_buckets = 4096;
  spec.rows = 3;
  const auto r = ctl.add_task(spec);
  ASSERT_TRUE(r.ok) << r.error;

  TraceConfig cfg;
  cfg.num_flows = 2000;
  cfg.num_packets = 4000;
  const auto trace = TraceGenerator::generate(cfg);
  dp.process_all(trace);

  // Every inserted flow must be found (no false negatives).
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(ctl.query_existence(r.task_id, trace[i]));
  }
  // Unseen flows are mostly absent.
  TraceConfig other = cfg;
  other.seed = 999;
  other.src_ip_base = 0x2E00'0000;
  const auto unseen = TraceGenerator::generate(other);
  unsigned fp = 0;
  for (std::size_t i = 0; i < 500; ++i) fp += ctl.query_existence(r.task_id, unseen[i]);
  EXPECT_LT(fp, 50u);
}

TEST(Smoke, TaskLifecycle) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);

  TaskSpec spec;
  spec.key = FlowKeySpec::src_ip();
  spec.attribute = AttributeKind::kFrequency;
  spec.memory_buckets = 8192;
  const auto r1 = ctl.add_task(spec);
  ASSERT_TRUE(r1.ok);

  const auto r2 = ctl.resize_task(r1.task_id, 32768);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r2.task_id, r1.task_id) << "public id is stable across resize";
  ASSERT_NE(ctl.task(r2.task_id), nullptr);
  EXPECT_EQ(ctl.task(r2.task_id)->buckets, 32768u);

  EXPECT_TRUE(ctl.remove_task(r2.task_id));
  EXPECT_EQ(ctl.num_tasks(), 0u);
}

}  // namespace
}  // namespace flymon
