#!/usr/bin/env bash
# clang-tidy runner for the FlyMon tree.
#
#   scripts/lint.sh                 lint every .cpp under src/ and tools/
#   scripts/lint.sh src/verify      lint one subtree
#   scripts/lint.sh --changed REF   lint only files changed vs. git REF
#                                   (default origin/main; used by CI)
#
# Requires a compile database: configure with
#   cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
# Exits 0 with a notice when clang-tidy is not installed (the container
# image for this repo does not ship it), so the lint step degrades to a
# no-op instead of failing builds that cannot run it.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "lint.sh: $TIDY not found; skipping lint (install clang-tidy to enable)"
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint.sh: $BUILD_DIR/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

declare -a files=()
if [ "${1:-}" = "--changed" ]; then
  ref="${2:-origin/main}"
  while IFS= read -r f; do
    case "$f" in
      src/*.cpp|tools/*.cpp|tests/*.cpp) [ -f "$f" ] && files+=("$f") ;;
      src/*.hpp|tools/*.hpp|tests/*.hpp)
        # Headers are not translation units: lint every .cpp that includes
        # the changed header (HeaderFilterRegex surfaces its diagnostics).
        [ -f "$f" ] || continue
        inc="${f#src/}"
        while IFS= read -r tu; do
          files+=("$tu")
        done < <(grep -rlF --include='*.cpp' "\"$inc\"" src tools tests || true)
        ;;
    esac
  done < <(git diff --name-only --diff-filter=d "$ref"...HEAD)
  if [ "${#files[@]}" -gt 0 ]; then
    mapfile -t files < <(printf '%s\n' "${files[@]}" | sort -u)
  fi
  if [ "${#files[@]}" -eq 0 ]; then
    echo "lint.sh: no changed C++ sources vs $ref"
    exit 0
  fi
else
  scope="${1:-}"
  if [ -n "$scope" ]; then
    mapfile -t files < <(find "$scope" -name '*.cpp' | sort)
  else
    mapfile -t files < <(find src tools -name '*.cpp' | sort)
  fi
fi

echo "lint.sh: clang-tidy over ${#files[@]} file(s)"
"$TIDY" -p "$BUILD_DIR" --quiet "${files[@]}"
