# Empty compiler generated dependencies file for test_rhhh.
# This may be replaced when dependencies are built.
