# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_bits[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_trace_exact[1]_include.cmake")
include("/root/repo/build/tests/test_dataplane[1]_include.cmake")
include("/root/repo/build/tests/test_sketch_frequency[1]_include.cmake")
include("/root/repo/build/tests/test_sketch_distinct[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_cmu[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_crossstack[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_tasks_table1[1]_include.cmake")
include("/root/repo/build/tests/test_shell_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_rhhh[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_rules[1]_include.cmake")
