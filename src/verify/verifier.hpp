// The verifier: a registry of analyzers run over one deployment snapshot.
// Entry points: the Controller's paranoid dry-run gate, the shell `verify`
// command family, and the flymon_verify CLI.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "verify/analyzer.hpp"

namespace flymon::verify {

// Built-in analyzer factories.
std::unique_ptr<Analyzer> make_resource_analyzer();
std::unique_ptr<Analyzer> make_tcam_analyzer();
std::unique_ptr<Analyzer> make_memory_analyzer();
std::unique_ptr<Analyzer> make_task_analyzer();
std::unique_ptr<Analyzer> make_dataflow_key_analyzer();
std::unique_ptr<Analyzer> make_dataflow_range_analyzer();
std::unique_ptr<Analyzer> make_dataflow_accuracy_analyzer();
std::unique_ptr<Analyzer> make_translation_analyzer();
std::unique_ptr<Analyzer> make_merge_soundness_analyzer();

class Verifier {
 public:
  /// Registers the nine built-in analyzers (resources, tcam, memory,
  /// tasks, dataflow-key, dataflow-range, dataflow-accuracy, translate,
  /// merge).  The last two only act when VerifyContext::exec_plan is set.
  Verifier();

  void add(std::unique_ptr<Analyzer> analyzer);
  const std::vector<std::unique_ptr<Analyzer>>& analyzers() const noexcept {
    return analyzers_;
  }
  const Analyzer* find(std::string_view name) const noexcept;

  /// Run every registered analyzer.
  VerifyReport run(const VerifyContext& ctx) const;
  /// Run one analyzer by name; throws std::invalid_argument when unknown.
  VerifyReport run_one(std::string_view name, const VerifyContext& ctx) const;

 private:
  std::vector<std::unique_ptr<Analyzer>> analyzers_;
};

/// Convenience: full verification of a controller + its data plane.
VerifyReport verify_deployment(const control::Controller& ctl,
                               const control::CrossStackPlan* plan = nullptr,
                               bool allow_wrap = false);

}  // namespace flymon::verify
