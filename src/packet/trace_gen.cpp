#include "packet/trace_gen.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace flymon {
namespace {

FiveTuple random_tuple(Rng& rng, std::uint32_t src_base, std::uint32_t dst_base) {
  FiveTuple ft;
  ft.src_ip = src_base | (rng.next_u32() & 0x00FF'FFFF);
  ft.dst_ip = dst_base | (rng.next_u32() & 0x0000'FFFF);
  ft.src_port = static_cast<std::uint16_t>(1024 + rng.next_below(64511));
  ft.dst_port = static_cast<std::uint16_t>(rng.next_bool(0.5) ? 80 : 1024 + rng.next_below(64511));
  ft.protocol = rng.next_bool(0.9) ? 6 : 17;  // mostly TCP, some UDP
  return ft;
}

}  // namespace

std::vector<Packet> TraceGenerator::generate(const TraceConfig& cfg) {
  Rng rng(cfg.seed);

  // Distinct flow identities.
  std::vector<FiveTuple> flows;
  flows.reserve(cfg.num_flows);
  std::unordered_set<std::uint64_t> seen;
  while (flows.size() < cfg.num_flows) {
    const FiveTuple ft = random_tuple(rng, cfg.src_ip_base, cfg.dst_ip_base);
    const std::uint64_t fp = hash64_value(ft, 0xF10u);
    if (seen.insert(fp).second) flows.push_back(ft);
  }

  const ZipfSampler zipf(cfg.num_flows, cfg.zipf_alpha);
  std::vector<Packet> trace;
  trace.reserve(cfg.num_packets);
  const std::uint64_t step =
      cfg.num_packets ? std::max<std::uint64_t>(1, cfg.duration_ns / cfg.num_packets) : 1;
  for (std::size_t i = 0; i < cfg.num_packets; ++i) {
    Packet p;
    p.ft = flows[zipf.sample(rng)];
    p.ts_ns = i * step + rng.next_below(step);
    p.wire_bytes = cfg.vary_packet_size
                       ? static_cast<std::uint32_t>(64 + rng.next_below(1437))
                       : 1000u;
    // Queue metadata: a slowly-varying sawtooth base plus noise, so Max
    // attribute tasks have a meaningful signal.
    const std::uint32_t base = static_cast<std::uint32_t>((i / 1024) % 96);
    p.queue_len = base + static_cast<std::uint32_t>(rng.next_below(32));
    p.queue_delay_ns = p.queue_len * 500 + static_cast<std::uint32_t>(rng.next_below(2000));
    trace.push_back(p);
  }
  return trace;
}

void TraceGenerator::inject_ddos(std::vector<Packet>& trace, const DdosConfig& cfg,
                                 std::uint64_t duration_ns) {
  Rng rng(cfg.seed);
  for (std::size_t v = 0; v < cfg.num_victims; ++v) {
    const std::uint32_t victim_ip = cfg.victim_ip_base + static_cast<std::uint32_t>(v);
    for (std::size_t s = 0; s < cfg.spreaders_per_victim; ++s) {
      const std::uint32_t attacker = 0x2C00'0000 | (rng.next_u32() & 0x00FF'FFFF);
      for (std::size_t k = 0; k < cfg.packets_per_spreader; ++k) {
        Packet p;
        p.ft.src_ip = attacker;
        p.ft.dst_ip = victim_ip;
        p.ft.src_port = static_cast<std::uint16_t>(1024 + rng.next_below(60000));
        p.ft.dst_port = 80;
        p.ft.protocol = 6;
        p.wire_bytes = 60;
        p.ts_ns = rng.next_below(duration_ns);
        trace.push_back(p);
      }
    }
  }
  sort_by_time(trace);
}

void TraceGenerator::inject_spike(std::vector<Packet>& trace, std::size_t extra_flows,
                                  std::uint64_t t_begin_ns, std::uint64_t t_end_ns,
                                  std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t span = t_end_ns > t_begin_ns ? t_end_ns - t_begin_ns : 1;
  for (std::size_t f = 0; f < extra_flows; ++f) {
    const FiveTuple ft = random_tuple(rng, 0x2D00'0000, 0xC0A8'0000);
    const std::size_t pkts = 1 + rng.next_below(3);
    for (std::size_t k = 0; k < pkts; ++k) {
      Packet p;
      p.ft = ft;
      p.wire_bytes = static_cast<std::uint32_t>(64 + rng.next_below(1437));
      p.ts_ns = t_begin_ns + rng.next_below(span);
      trace.push_back(p);
    }
  }
  sort_by_time(trace);
}

void TraceGenerator::sort_by_time(std::vector<Packet>& trace) {
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Packet& a, const Packet& b) { return a.ts_ns < b.ts_ns; });
}

std::vector<Packet> TraceGenerator::slice(const std::vector<Packet>& trace,
                                          std::uint64_t t_begin_ns,
                                          std::uint64_t t_end_ns) {
  const auto lo = std::lower_bound(
      trace.begin(), trace.end(), t_begin_ns,
      [](const Packet& p, std::uint64_t t) { return p.ts_ns < t; });
  const auto hi = std::lower_bound(
      lo, trace.end(), t_end_ns,
      [](const Packet& p, std::uint64_t t) { return p.ts_ns < t; });
  return {lo, hi};
}

}  // namespace flymon
