file(REMOVE_RECURSE
  "CMakeFiles/test_rhhh.dir/test_rhhh.cpp.o"
  "CMakeFiles/test_rhhh.dir/test_rhhh.cpp.o.d"
  "test_rhhh"
  "test_rhhh.pdb"
  "test_rhhh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rhhh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
