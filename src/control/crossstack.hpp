// Cross-stacking planner (paper §3.2, Fig 8): CMU Groups are placed
// shift-one-stage so that the Compression / Initialization / Preparation /
// Operation stages of successive groups interleave, evening out the use of
// hash, VLIW, TCAM and SALU resources across MAU stages.
#pragma once

#include <vector>

#include "core/cmu_group.hpp"
#include "dataplane/pipeline.hpp"

namespace flymon::control {

struct CrossStackPlan {
  unsigned groups_placed = 0;
  std::vector<unsigned> start_stage;  ///< per placed group
  dataplane::Pipeline pipeline;       ///< ledgers after placement

  CrossStackPlan(unsigned stages, unsigned phv_bits)
      : pipeline(stages, phv_bits) {}
};

/// Greedily place as many CMU Groups as fit into `num_stages` stages.
/// `baseline_per_stage` reserves resources already used by the switch
/// program (zero-demand = dedicated measurement device).
CrossStackPlan cross_stack(unsigned num_stages,
                           const CmuGroupConfig& cfg = {},
                           const dataplane::StageDemand& baseline_per_stage = {},
                           unsigned baseline_phv_bits = 0);

/// Non-stacked placement (each group gets 4 dedicated stages) — the
/// strawman the paper's cross-stacking improves on.
CrossStackPlan sequential_stack(unsigned num_stages, const CmuGroupConfig& cfg = {});

/// Appendix E: the triangles at the ends of the diagonal cannot hold a
/// whole group in pipeline order, but mirroring packets to a recirculation
/// port lets a group's stages wrap around the pipe end.  Returns the plan
/// plus how many groups need recirculation (their traffic pays a bandwidth
/// overhead).
struct SplicedPlan {
  CrossStackPlan plan;
  unsigned straight_groups = 0;   ///< placed in pipeline order
  unsigned spliced_groups = 0;    ///< wrap-around, mirror + recirculate
  /// Fraction of measurement capacity whose traffic must recirculate.
  double recirculated_fraction() const {
    const unsigned total = straight_groups + spliced_groups;
    return total == 0 ? 0.0 : static_cast<double>(spliced_groups) / total;
  }
};

SplicedPlan cross_stack_spliced(unsigned num_stages, const CmuGroupConfig& cfg = {});

/// Fig 13c: how many CMUs can be deployed as the candidate key set grows,
/// with and without the compression (less-copy) strategy.  Without
/// compression every CMU copies the whole candidate key into PHV; with it,
/// a group shares `compression_units` 32-bit compressed keys.
unsigned max_cmus_without_compression(unsigned candidate_key_bits,
                                      unsigned phv_budget_bits,
                                      unsigned num_stages);
unsigned max_cmus_with_compression(unsigned candidate_key_bits,
                                   unsigned phv_budget_bits, unsigned num_stages,
                                   const CmuGroupConfig& cfg = {});

}  // namespace flymon::control
