// Runtime-rule rendering: the concrete southbound rules (P4Runtime-style,
// paper §3 Fig 3) that realise a deployed task — hash-mask reconfigurations
// for the compression stage, initialization-table entries binding filter ->
// (key, params, op), TCAM address-translation entries (rendered through the
// real range expansion), and operation-select entries.  Useful for audit,
// debugging, and for checking the deployment-delay model against the rules
// that actually exist.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "control/controller.hpp"

namespace flymon::control {

struct RuntimeRule {
  enum class Kind : std::uint8_t { kHashMask, kTableEntry };

  Kind kind = Kind::kTableEntry;
  std::string table;   ///< e.g. "g0.compression.u1", "g0.cmu2.init"
  std::string match;   ///< human-readable match fields
  std::string action;  ///< action name + parameters
};

/// Render every runtime rule that realises task `id` on the data plane.
/// Throws std::out_of_range for unknown tasks.
std::vector<RuntimeRule> render_rules(const Controller& ctl, std::uint32_t id);

/// One rule per line, pipe-separated columns.
std::string format_rules(const std::vector<RuntimeRule>& rules);

}  // namespace flymon::control
