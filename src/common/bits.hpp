// Bit-manipulation helpers shared across the FlyMon code base.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

namespace flymon {

/// True iff `v` is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// floor(log2(v)); v must be non-zero.
constexpr unsigned log2_floor(std::uint64_t v) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/// ceil(log2(v)); v must be non-zero. log2_ceil(1) == 0.
constexpr unsigned log2_ceil(std::uint64_t v) noexcept {
  return v <= 1 ? 0u : log2_floor(v - 1) + 1u;
}

/// Smallest power of two >= v (v must be >= 1).
constexpr std::uint64_t pow2_ceil(std::uint64_t v) noexcept {
  return std::uint64_t{1} << log2_ceil(v);
}

/// Largest power of two <= v (v must be >= 1).
constexpr std::uint64_t pow2_floor(std::uint64_t v) noexcept {
  return std::uint64_t{1} << log2_floor(v);
}

/// Position (1-based, from the most-significant side) of the leftmost set
/// bit within a `width`-bit value; returns 0 when no bit is set. This is the
/// "rho" function used by HyperLogLog-style estimators.
constexpr unsigned leftmost_one_pos(std::uint32_t v, unsigned width = 32) noexcept {
  if (v == 0) return 0;
  const unsigned lz = static_cast<unsigned>(std::countl_zero(v));
  // v occupies the low `width` bits: skip the (32-width) always-zero bits.
  return lz - (32 - width) + 1;
}

/// One-hot encoding: a word with only bit `idx` set (idx in [0,31]).
constexpr std::uint32_t one_hot32(unsigned idx) noexcept {
  return std::uint32_t{1} << idx;
}

/// Extract bits [lo, lo+len) of v (little-endian bit order).
constexpr std::uint32_t bit_slice(std::uint64_t v, unsigned lo, unsigned len) noexcept {
  const std::uint64_t mask =
      len >= 64 ? std::numeric_limits<std::uint64_t>::max()
                : (std::uint64_t{1} << len) - 1;
  return static_cast<std::uint32_t>((v >> lo) & mask);
}

/// Mask with the low `n` bits set.
constexpr std::uint32_t low_mask32(unsigned n) noexcept {
  return n >= 32 ? 0xFFFF'FFFFu : (std::uint32_t{1} << n) - 1;
}

}  // namespace flymon
