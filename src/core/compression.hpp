// The compression stage of a CMU Group (paper §3.1.1, Fig 4): a bank of
// maskable hash units producing 32-bit compressed keys, shared by all CMUs
// of the group.  Keys can additionally be composed by XOR of two units,
// giving k(k+1)/2 selectable keys from k units.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dataplane/hash_unit.hpp"
#include "packet/flowkey.hpp"

namespace flymon {

/// Selects a compressed key: one unit, or the XOR of two units.
struct CompressedKeySelector {
  std::int8_t unit_a = -1;
  std::int8_t unit_b = -1;  ///< -1 = no second unit

  bool valid() const noexcept { return unit_a >= 0; }
  friend bool operator==(const CompressedKeySelector&, const CompressedKeySelector&) = default;
};

/// A bit slice of a 32-bit compressed key: CMUs of one group use different
/// sub-parts of the same compressed key to emulate independent hashes
/// (paper §3.2, inspired by SketchLib).
struct KeySlice {
  std::uint8_t offset = 0;  ///< low bit position
  std::uint8_t width = 32;  ///< number of bits (<= 32)

  std::uint32_t apply(std::uint32_t key) const noexcept {
    const std::uint32_t shifted = key >> offset;
    return width >= 32 ? shifted : (shifted & ((1u << width) - 1u));
  }
  friend bool operator==(const KeySlice&, const KeySlice&) = default;
};

/// True iff the two key specs select disjoint field bits.
bool specs_disjoint(const FlowKeySpec& a, const FlowKeySpec& b) noexcept;

/// Field-wise union of two disjoint specs.
FlowKeySpec specs_union(const FlowKeySpec& a, const FlowKeySpec& b) noexcept;

class CompressionStage {
 public:
  /// `num_units` physical hash units; `first_unit_index` diversifies the
  /// CRC parameterisation across groups.
  CompressionStage(unsigned num_units, unsigned first_unit_index);

  unsigned num_units() const noexcept { return static_cast<unsigned>(units_.size()); }

  /// Install a dynamic-hash mask on unit `i` so it compresses `spec`.
  /// Counts as one hash-mask runtime rule.
  void configure(unsigned i, const FlowKeySpec& spec);
  void clear_unit(unsigned i);
  const std::optional<FlowKeySpec>& spec_of(unsigned i) const { return specs_.at(i); }

  /// Physical hash unit `i`.  The plan compiler copies configured units
  /// into the ExecPlan's hash slots (HashUnit is a small value type).
  const dataplane::HashUnit& unit(unsigned i) const { return units_.at(i); }

  /// First unconfigured unit, if any.
  std::optional<unsigned> free_unit() const noexcept;

  /// Find a selector producing `spec` from the current configuration:
  /// a unit configured exactly as `spec`, or the XOR of two units whose
  /// disjoint specs union to `spec`.
  std::optional<CompressedKeySelector> find_selector(const FlowKeySpec& spec) const;

  /// Per-packet evaluation of every configured unit.
  std::vector<std::uint32_t> compute(const CandidateKey& key) const;

  /// Resolve a selector against computed unit outputs.
  static std::uint32_t select(const std::vector<std::uint32_t>& unit_keys,
                              const CompressedKeySelector& sel) noexcept;

 private:
  std::vector<dataplane::HashUnit> units_;
  std::vector<std::optional<FlowKeySpec>> specs_;
};

}  // namespace flymon
