# Empty dependencies file for fig11_address_translation.
# This may be replaced when dependencies are built.
