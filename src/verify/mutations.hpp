// Mutation self-test harness: a catalogue of seeded deployment corruptions,
// each of which the static verifier must flag with a specific check id.
// Exercised by tests/test_verify.cpp and `flymon_verify --selftest`.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "control/controller.hpp"
#include "control/crossstack.hpp"
#include "core/flymon_dataplane.hpp"
#include "verify/diagnostics.hpp"

namespace flymon::exec {
class ExecPlan;
}  // namespace flymon::exec

namespace flymon::verify {

/// The fresh world a mutation corrupts: a 9-group data plane with a mixed
/// Table-1 deployment plus its cross-stacking plan.
struct MutableWorld {
  FlyMonDataPlane& dp;
  control::Controller& ctl;
  control::CrossStackPlan& plan;
};

struct Mutation {
  std::string name;
  std::string expected_check;  ///< dotted diagnostic id that must appear
  std::string description;
  std::function<void(MutableWorld&)> apply;
};

/// The seeded-corruption catalogue (15 mutations: 10 structural plus 5
/// semantic-dataflow ones keyed on dataflow.* check ids).
std::vector<Mutation> mutation_catalogue();

/// A seeded MISCOMPILE: corrupts a freshly compiled, published ExecPlan in
/// place (via exec::PlanMutator) while the deployment it was lowered from
/// stays intact.  The translation validator (verify::validate_plan) must
/// flag every one with its expected translate.* check id — this is the
/// self-test that proves the validator actually discriminates.
struct PlanMutation {
  std::string name;            ///< "miscompile-..."
  std::string expected_check;  ///< dotted translate.* id that must appear
  std::string description;
  std::function<void(exec::ExecPlan&)> apply;
};

/// The seeded-miscompile catalogue (7 mutations spanning address
/// translation, filters, op-codes, merge metadata, lane snapshots and
/// chain plumbing).
std::vector<PlanMutation> plan_mutation_catalogue();

struct SelfTestCase {
  std::string mutation;
  std::string expected_check;
  bool detected = false;
  std::string diagnostics;  ///< full formatted report of the mutated world
};

struct SelfTestResult {
  bool baseline_clean = false;  ///< unmutated world verifies empty
  std::string baseline_diagnostics;
  std::vector<SelfTestCase> cases;

  bool passed() const noexcept;
};

/// Build a fresh world per mutation, corrupt it, verify, and require the
/// expected diagnostic.  Covers both catalogues: deployment mutations run
/// through verify_deployment, plan mutations through validate_plan over a
/// deliberately corrupted published ExecPlan.  The unmutated baseline
/// (deployment AND its compiled plan) must verify clean.  `name_prefix`
/// restricts the run to mutations whose name starts with it (e.g.
/// "dataflow-" for the semantic subset, "miscompile-" for the
/// translation-validation subset); empty runs everything.
SelfTestResult run_mutation_self_test(std::string_view name_prefix = {});

/// Corrupt a fresh world with the named mutation and return the verifier's
/// report over it (nullopt for an unknown name).  Backs
/// `flymon_verify --mutate NAME`.
std::optional<VerifyReport> run_single_mutation(std::string_view name);

std::string format(const SelfTestResult& result);
/// Machine-readable self-test result for the CI artifact.
std::string to_json(const SelfTestResult& result);

}  // namespace flymon::verify
