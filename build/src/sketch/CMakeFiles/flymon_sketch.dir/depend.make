# Empty dependencies file for flymon_sketch.
# This may be replaced when dependencies are built.
