// BeauCoup (Chen et al., SIGCOMM 2020): coupon-collector based distinct
// counting that performs at most one memory update per packet.
//
// A query is configured with c coupons, per-item draw probability p and a
// collection threshold ct.  Each *distinct* attribute value deterministically
// either draws one specific coupon (w.p. c*p overall) or none; a flow is
// reported when ct distinct coupons have been collected.  The original
// system stores, per flow slot, a key checksum to detect hash collisions.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sketch/sketch_common.hpp"

namespace flymon::sketch {

/// Coupon configuration for a target distinct-count threshold.
struct CouponConfig {
  unsigned num_coupons = 32;    ///< c (<= 32, one bit each)
  double draw_probability = 0;  ///< p, per-coupon selection probability
  unsigned collect_threshold = 24;  ///< ct coupons needed to report

  /// Expected number of distinct items needed to collect `j` coupons.
  double expected_items_to_collect(unsigned j) const;

  /// Pick (c, p, ct) so that a flow is expected to be reported when its
  /// distinct count reaches `threshold`.
  static CouponConfig for_threshold(double threshold, unsigned c = 32,
                                    unsigned ct = 24);
};

/// One BeauCoup table: an array of flow slots, each a (checksum, bitmap)
/// pair.  `d`-table variants in the evaluation are built from d instances.
class BeauCoupTable {
 public:
  BeauCoupTable(std::uint32_t num_slots, CouponConfig cfg, unsigned table_id,
                bool use_checksum = true);

  static BeauCoupTable with_memory(std::size_t bytes, CouponConfig cfg,
                                   unsigned table_id, bool use_checksum = true);

  /// Process one (flow key, attribute value) observation.
  void update(KeyBytes flow_key, KeyBytes attr_value);

  /// Coupons collected for a flow key (0 if slot lost to a collision).
  unsigned coupons(KeyBytes flow_key) const;

  /// Distinct-count estimate for a flow key (coupon-collector inversion).
  double estimate(KeyBytes flow_key) const;

  /// Flow slots currently at/over the collection threshold.
  std::size_t reported_slots() const;

  const CouponConfig& config() const noexcept { return cfg_; }
  std::size_t memory_bytes() const noexcept;
  void clear();

 private:
  struct Slot {
    std::uint32_t checksum = 0;
    std::uint32_t bitmap = 0;
    bool occupied = false;
  };

  std::optional<unsigned> draw_coupon(KeyBytes attr_value) const;

  std::vector<Slot> slots_;
  CouponConfig cfg_;
  unsigned table_id_;
  bool use_checksum_;
};

/// d independent BeauCoup tables; a flow is reported when every table has
/// collected ct coupons (the cross-table AND suppresses collision
/// overestimates — the same idea FlyMon uses instead of checksums).
class BeauCoup {
 public:
  BeauCoup(unsigned d, std::uint32_t slots_per_table, CouponConfig cfg,
           bool use_checksum = true);

  static BeauCoup with_memory(unsigned d, std::size_t total_bytes, CouponConfig cfg,
                              bool use_checksum = true);

  void update(KeyBytes flow_key, KeyBytes attr_value);
  bool reported(KeyBytes flow_key) const;
  /// Min-across-tables distinct estimate.
  double estimate(KeyBytes flow_key) const;

  unsigned depth() const noexcept { return static_cast<unsigned>(tables_.size()); }
  std::size_t memory_bytes() const noexcept;
  void clear();

 private:
  std::vector<BeauCoupTable> tables_;
  CouponConfig cfg_;
};

}  // namespace flymon::sketch
