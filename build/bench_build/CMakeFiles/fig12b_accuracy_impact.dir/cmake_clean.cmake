file(REMOVE_RECURSE
  "../bench/fig12b_accuracy_impact"
  "../bench/fig12b_accuracy_impact.pdb"
  "CMakeFiles/fig12b_accuracy_impact.dir/fig12b_accuracy_impact.cpp.o"
  "CMakeFiles/fig12b_accuracy_impact.dir/fig12b_accuracy_impact.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_accuracy_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
