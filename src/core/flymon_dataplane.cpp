#include "core/flymon_dataplane.hpp"

#include <algorithm>
#include <optional>

#include "exec/exec_plan.hpp"
#include "exec/worker_pool.hpp"
#include "trace/span.hpp"

namespace flymon {

FlyMonDataPlane::FlyMonDataPlane(unsigned num_groups, const CmuGroupConfig& cfg)
    : scratch_(std::make_unique<exec::BatchScratch>()) {
  groups_.reserve(num_groups);
  for (unsigned g = 0; g < num_groups; ++g) groups_.emplace_back(g, cfg);
  bind_telemetry(telemetry::Registry::global());
}

FlyMonDataPlane::~FlyMonDataPlane() = default;

void FlyMonDataPlane::bind_telemetry(telemetry::Registry& registry) {
  registry_ = &registry;
  packets_counter_ = &registry.counter("flymon_packets_total");
  for (CmuGroup& g : groups_) g.bind_telemetry(registry);
  if (pool_ != nullptr) pool_->bind_telemetry(&registry);
  // A published plan caches counter handles: recompile it against the new
  // registry so compiled execution keeps feeding the bound counters.
  if (plan_.load() != nullptr) republish_plan();
}

std::uint64_t FlyMonDataPlane::republish_plan(
    std::span<const exec::EntryOwnership> owners) {
  trace::Span span("exec.publish");
  common::MutexLock publish(publish_mu_);
  // Fence the pool across compile+publish: block submissions and fold
  // outstanding shard deltas under the OLD plan, so no shard ever holds
  // deltas produced under a plan that is no longer the merge target.
  std::optional<exec::WorkerPool::Fence> fence;
  if (pool_ != nullptr) fence.emplace(*pool_);
  auto plan = exec::PlanCompiler::compile(*this, owners, ++next_generation_);
  const std::uint64_t generation = plan->generation();
  if (validator_) {
    std::string veto = validator_(*this, *plan);
    if (!veto.empty()) {
      // Refuse the miscompiled plan AND the previously published one (it
      // describes a deployment that no longer exists): the interpreted
      // path — the semantic ground truth the validator compared against —
      // serves traffic until a clean compile publishes.
      last_publish_veto_ = std::move(veto);
      plan_.store(nullptr);
      span.set_arg(0);
      trace::instant("exec.plan_vetoed", generation);
      return 0;
    }
    last_publish_veto_.clear();
  }
  plan_.store_if_newer(std::move(plan));
  span.set_arg(generation);
  trace::instant("exec.plan_published", generation);
  return generation;
}

std::uint64_t FlyMonDataPlane::republish_plan() {
  const auto cur = plan_.load();
  return republish_plan(cur != nullptr
                            ? std::span<const exec::EntryOwnership>(cur->ownership())
                            : std::span<const exec::EntryOwnership>{});
}

void FlyMonDataPlane::unpublish_plan() noexcept {
  trace::Span span("exec.unpublish");
  common::MutexLock publish(publish_mu_);
  // Merge under the plan the deltas belong to before it goes away.
  std::optional<exec::WorkerPool::Fence> fence;
  if (pool_ != nullptr) fence.emplace(*pool_);
  plan_.store(nullptr);
}

void FlyMonDataPlane::set_plan_validator(PlanValidator validator) {
  common::MutexLock publish(publish_mu_);
  validator_ = std::move(validator);
  last_publish_veto_.clear();
}

std::string FlyMonDataPlane::last_publish_veto() const {
  common::MutexLock publish(publish_mu_);
  return last_publish_veto_;
}

std::shared_ptr<const exec::ExecPlan> FlyMonDataPlane::current_plan() const noexcept {
  return plan_.load();
}

std::uint64_t FlyMonDataPlane::plan_generation() const noexcept {
  const auto plan = plan_.load();
  return plan != nullptr ? plan->generation() : 0;
}

void FlyMonDataPlane::interpret(const Packet& pkt, bool traced) {
  PhvContext ctx;
  if (traced) ctx.trace = tracer_->begin(pkt);
  for (CmuGroup& g : groups_) g.process(pkt, ctx);
  if (ctx.trace != nullptr) tracer_->commit();
  packets_.fetch_add(1, std::memory_order_relaxed);
  packets_counter_->inc();
}

void FlyMonDataPlane::run_plan(const exec::ExecPlan& plan,
                               std::span<const Packet> pkts) {
  if (pkts.empty()) return;
  // Bounded chunks keep the scratch (hash lanes, chain channels) hot in
  // cache for arbitrarily long traces.  Same knob as the sharded pool's
  // work-queue chunk, so the two paths process equal-sized units of work.
  const std::size_t chunk = std::max<std::size_t>(1, batch_opts_.chunk_size);
  for (std::size_t off = 0; off < pkts.size(); off += chunk) {
    plan.run_batch(pkts.subspan(off, std::min(chunk, pkts.size() - off)),
                   *scratch_);
  }
  packets_.fetch_add(pkts.size(), std::memory_order_relaxed);
  packets_counter_->inc(pkts.size());
}

void FlyMonDataPlane::process(const Packet& pkt) {
  process_batch(std::span<const Packet>(&pkt, 1));
}

std::uint64_t FlyMonDataPlane::process_batch(std::span<const Packet> pkts) {
  const auto plan = plan_.load();
  if (plan == nullptr) {
    for (const Packet& p : pkts) {
      interpret(p, tracer_ != nullptr && tracer_->should_sample());
    }
    return 0;
  }
  if (tracer_ == nullptr) {
    run_plan(*plan, pkts);
    return plan->generation();
  }
  // Tracer attached: consume the sampling sequence packet-by-packet (same
  // records as per-packet processing) and split the batch around traced
  // packets, which run the interpreted slow path to record their steps.
  std::size_t run_start = 0;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    if (tracer_->should_sample()) {
      run_plan(*plan, pkts.subspan(run_start, i - run_start));
      interpret(pkts[i], true);
      run_start = i + 1;
    }
  }
  run_plan(*plan, pkts.subspan(run_start));
  return plan->generation();
}

void FlyMonDataPlane::clear_registers() {
  if (pool_ != nullptr) pool_->discard_shards();
  for (CmuGroup& g : groups_) {
    for (unsigned i = 0; i < g.num_cmus(); ++i) g.cmu(i).reg().clear();
  }
}

void FlyMonDataPlane::enable_parallel(unsigned num_workers) {
  disable_parallel();
  pool_ = std::make_unique<exec::WorkerPool>(*this, num_workers);
  if (registry_ != nullptr) pool_->bind_telemetry(registry_);
}

void FlyMonDataPlane::disable_parallel() {
  if (pool_ == nullptr) return;
  pool_->quiesce_and_merge();
  pool_.reset();
}

unsigned FlyMonDataPlane::parallel_workers() const noexcept {
  return pool_ != nullptr ? pool_->num_workers() : 0;
}

std::uint64_t FlyMonDataPlane::process_batch_parallel(
    std::span<const Packet> pkts) {
  if (pool_ == nullptr) return process_batch(pkts);
  return pool_->process(pkts);
}

void FlyMonDataPlane::merge_shards() {
  if (pool_ != nullptr) pool_->quiesce_and_merge();
}

exec::ParallelStats FlyMonDataPlane::parallel_stats() const {
  return pool_ != nullptr ? pool_->stats() : exec::ParallelStats{};
}

void FlyMonDataPlane::note_parallel_batch(std::size_t packets) noexcept {
  packets_.fetch_add(packets, std::memory_order_relaxed);
  packets_counter_->inc(packets);
}

void collect_dataplane_telemetry(const FlyMonDataPlane& dp,
                                 telemetry::Registry& registry) {
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    const CmuGroup& grp = dp.group(g);
    unsigned configured = 0;
    for (unsigned u = 0; u < grp.compression().num_units(); ++u) {
      if (grp.compression().spec_of(u)) ++configured;
    }
    registry.gauge("flymon_group_hash_units_configured",
                   {{"group", std::to_string(g)}})
        .set(configured);
    for (unsigned c = 0; c < grp.num_cmus(); ++c) {
      const telemetry::Labels labels = {{"group", std::to_string(g)},
                                        {"cmu", std::to_string(c)}};
      registry.gauge("flymon_cmu_register_occupancy", labels)
          .set(grp.cmu(c).register_occupancy());
      registry.gauge("flymon_cmu_tasks_installed", labels)
          .set(static_cast<double>(grp.cmu(c).entries().size()));
    }
  }
  registry.gauge("flymon_dataplane_groups").set(dp.num_groups());
}

void collect_dataplane_telemetry(FlyMonDataPlane& dp,
                                 telemetry::Registry& registry) {
  dp.merge_shards();
  collect_dataplane_telemetry(static_cast<const FlyMonDataPlane&>(dp),
                              registry);
}

}  // namespace flymon
