// Resource model of a Tofino-class RMT pipeline.
//
// The absolute block counts below are taken from public descriptions of
// Tofino 1 (12 MAU stages per pipe; per stage: 80 SRAM blocks of
// 1024x128 b, 24 TCAM blocks of 512x44 b, 4 stateful ALUs, 6 hash
// distribution units, 32-slot VLIW action engine, 16 logical table IDs) and
// calibrated so that the per-stage occupancy of a CMU Group reproduces the
// percentages in the paper's Figure 8 table (compression: 50% hash;
// initialization: 25% VLIW, 12.5% TCAM; preparation: 50% TCAM; operation:
// 50% hash, 75% SALU, 25% VLIW).
#pragma once

#include <cstdint>

namespace flymon::dataplane {

struct TofinoModel {
  // Pipeline geometry.
  static constexpr unsigned kNumStages = 12;

  // Per-MAU-stage resources.
  static constexpr unsigned kHashDistUnitsPerStage = 6;
  static constexpr unsigned kSalusPerStage = 4;
  static constexpr unsigned kVliwSlotsPerStage = 32;
  static constexpr unsigned kLogicalTablesPerStage = 16;

  static constexpr unsigned kSramBlocksPerStage = 80;
  static constexpr unsigned kSramBlockEntries = 1024;
  static constexpr unsigned kSramBlockBitWidth = 128;
  static constexpr std::uint64_t kSramBlockBits =
      std::uint64_t{kSramBlockEntries} * kSramBlockBitWidth;

  static constexpr unsigned kTcamBlocksPerStage = 24;
  static constexpr unsigned kTcamBlockEntries = 512;
  static constexpr unsigned kTcamBlockKeyBits = 44;

  // PHV: shared across the pipe (Tofino 1: 64x32b + 96x16b + 64x8b).
  static constexpr unsigned kPhvBits = 64 * 32 + 96 * 16 + 64 * 8;  // 4096

  // Each SALU may pre-load at most this many register actions (paper §3.1.2).
  static constexpr unsigned kMaxRegisterActions = 4;

  // Register (stateful memory) bucket widths supported.
  static constexpr unsigned kRegisterBitWidth = 32;

  /// SRAM blocks needed for `buckets` buckets of `bit_width` bits.
  static constexpr unsigned sram_blocks_for(std::uint64_t buckets, unsigned bit_width) {
    const std::uint64_t bits = buckets * bit_width;
    return static_cast<unsigned>((bits + kSramBlockBits - 1) / kSramBlockBits);
  }
};

/// Control-plane rule-install latencies measured on the Tofino SDE
/// (paper §5.1): ~3 ms per ordinary table rule, ~16 ms per dynamic-hash
/// mask reconfiguration.  Batched rules amortise to per-batch cost.
struct RuleInstallModel {
  static constexpr double kTableRuleMs = 3.0;
  static constexpr double kHashMaskRuleMs = 16.0;
  /// When n rules of one kind are issued as a batch, total cost is
  /// first-rule cost + (n-1) * per-rule marginal cost.  The factor is
  /// calibrated against the per-algorithm deployment delays of paper
  /// Table 3 (e.g. Bloom Filter d=3: 9 rules in ~13.7 ms).
  static constexpr double kBatchMarginalFactor = 0.44;

  static double batched_ms(double per_rule_ms, unsigned n) {
    if (n == 0) return 0.0;
    return per_rule_ms + (n - 1) * per_rule_ms * kBatchMarginalFactor;
  }
};

}  // namespace flymon::dataplane
