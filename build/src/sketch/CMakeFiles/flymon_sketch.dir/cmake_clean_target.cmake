file(REMOVE_RECURSE
  "libflymon_sketch.a"
)
