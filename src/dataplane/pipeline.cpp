#include "dataplane/pipeline.hpp"

namespace flymon::dataplane {

Pipeline::Pipeline(unsigned num_stages, unsigned phv_bits)
    : stages_(num_stages), phv_bits_(phv_bits) {}

bool Pipeline::allocate_phv(unsigned bits) noexcept {
  if (phv_used_ + bits > phv_bits_) return false;
  phv_used_ += bits;
  return true;
}

void Pipeline::release_phv(unsigned bits) noexcept {
  phv_used_ = phv_used_ >= bits ? phv_used_ - bits : 0;
}

double Pipeline::utilization(Resource r) const noexcept {
  const std::uint64_t cap = total_capacity(r);
  return cap == 0 ? 0.0 : static_cast<double>(total_used(r)) / static_cast<double>(cap);
}

std::uint64_t Pipeline::total_used(Resource r) const noexcept {
  std::uint64_t s = 0;
  for (const auto& st : stages_) s += st.used(r);
  return s;
}

std::uint64_t Pipeline::total_capacity(Resource r) const noexcept {
  std::uint64_t s = 0;
  for (const auto& st : stages_) s += st.capacity(r);
  return s;
}

}  // namespace flymon::dataplane
