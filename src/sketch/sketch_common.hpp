// Shared definitions for the baseline (software, idealised) sketches.
//
// These are the reference algorithms the paper compares FlyMon against
// (UnivMon, original BeauCoup, ...) and the textbook forms of the built-in
// algorithms.  They hash the *full* flow key with high-quality 64-bit
// hashes — unlike FlyMon's data-plane versions, which operate on 32-bit
// compressed keys through the CMU pipeline.
#pragma once

#include <cstdint>
#include <span>

#include "common/hash.hpp"

namespace flymon::sketch {

using KeyBytes = std::span<const std::uint8_t>;

/// Row-seeded hash for d-row sketches.
inline std::uint64_t row_hash(KeyBytes key, unsigned row, std::uint64_t salt = 0) noexcept {
  return hash64(key, 0xA5A5'0000ull + row * 0x9E37ull + salt);
}

}  // namespace flymon::sketch
