#include "dataplane/mau_stage.hpp"

namespace flymon::dataplane {

const char* to_string(Resource r) noexcept {
  switch (r) {
    case Resource::kHashUnit: return "Hash Unit";
    case Resource::kSalu: return "SALU";
    case Resource::kSramBlock: return "SRAM";
    case Resource::kTcamBlock: return "TCAM";
    case Resource::kVliwSlot: return "VLIW";
    case Resource::kLogicalTable: return "Logical Table";
  }
  return "?";
}

StageDemand stage_capacity() noexcept {
  StageDemand c;
  c[Resource::kHashUnit] = TofinoModel::kHashDistUnitsPerStage;
  c[Resource::kSalu] = TofinoModel::kSalusPerStage;
  c[Resource::kSramBlock] = TofinoModel::kSramBlocksPerStage;
  c[Resource::kTcamBlock] = TofinoModel::kTcamBlocksPerStage;
  c[Resource::kVliwSlot] = TofinoModel::kVliwSlotsPerStage;
  c[Resource::kLogicalTable] = TofinoModel::kLogicalTablesPerStage;
  return c;
}

bool MauStage::fits(const StageDemand& d) const noexcept {
  for (unsigned i = 0; i < kNumResourceKinds; ++i) {
    if (used_.amount[i] + d.amount[i] > capacity_.amount[i]) return false;
  }
  return true;
}

bool MauStage::allocate(const StageDemand& d) noexcept {
  if (!fits(d)) return false;
  for (unsigned i = 0; i < kNumResourceKinds; ++i) used_.amount[i] += d.amount[i];
  return true;
}

void MauStage::release(const StageDemand& d) noexcept {
  for (unsigned i = 0; i < kNumResourceKinds; ++i) {
    used_.amount[i] = used_.amount[i] >= d.amount[i] ? used_.amount[i] - d.amount[i] : 0;
  }
}

double MauStage::utilization(Resource r) const noexcept {
  const std::uint32_t cap = capacity_[r];
  return cap == 0 ? 0.0 : static_cast<double>(used_[r]) / cap;
}

}  // namespace flymon::dataplane
