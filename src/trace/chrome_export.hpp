// Chrome trace-event JSON export of collected spans, loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing.  Two process groups:
//   pid 1 "flymon threads"          — one track per recording thread
//   pid 2 "flymon reconfigurations" — one track per generation tag, so each
//                                     reconfiguration reads as its own lane
// Spans emit as ph:"X" complete events (ts/dur in microseconds), instants
// as ph:"i", and track names as ph:"M" metadata.  Output is deterministic
// for a given event list (stable ordering, fixed number formatting) so
// golden tests can compare byte-for-byte.
#pragma once

#include <string>
#include <vector>

#include "trace/span.hpp"

namespace flymon::trace {

/// Render `events` (as returned by SpanCollector::collect()) as a Chrome
/// trace-event JSON document.
std::string to_chrome_trace_json(const std::vector<SpanEvent>& events);

/// Convenience: render + write to `path`.  Returns false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanEvent>& events);

}  // namespace flymon::trace
