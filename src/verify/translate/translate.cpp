#include "verify/translate/translate.hpp"

#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "common/bits.hpp"
#include "core/flymon_dataplane.hpp"
#include "exec/exec_plan.hpp"
#include "ir/ir.hpp"
#include "verify/analyzer.hpp"
#include "verify/translate/symbits.hpp"
#include "verify/verifier.hpp"

namespace flymon::verify::translate {
namespace {

using exec::CompiledCmu;
using exec::CompiledEntry;
using exec::CompiledParam;
using exec::ExecPlan;
using exec::HashSlot;
using exec::kNoChain;

std::uint32_t prefix_mask(std::uint8_t len) noexcept {
  if (len == 0) return 0;
  if (len >= 32) return 0xFFFF'FFFFu;
  return ~((1u << (32 - len)) - 1u);
}

std::string entry_site(unsigned g, unsigned c, std::uint32_t phys) {
  std::ostringstream os;
  os << 'g' << g << "/c" << c << " phys " << phys;
  return os.str();
}

/// Interns hash-lane identities into symbolic variable ids.  Two lanes get
/// the same id iff they compute the same function of the candidate key —
/// same physical unit (CRC polynomial/init) and same configured mask — so
/// a compiled slot snapshot and a live unit translate to equal SymWords
/// exactly when their configurations agree.
class LaneTable {
 public:
  SymWord word(const dataplane::HashUnit& u) {
    if (!u.configured()) return SymWord::constant(0);
    std::string key = std::to_string(u.unit_index());
    key.push_back(':');
    for (const std::uint8_t b : u.mask()) key.push_back(static_cast<char>(b));
    const auto [it, fresh] = ids_.emplace(std::move(key), next_);
    if (fresh) ++next_;
    return SymWord::lane(it->second);
  }

 private:
  std::map<std::string, std::uint32_t> ids_;
  std::uint32_t next_ = 1;  // id 0 is never used; constants need no id
};

/// Interpreted-side lane word: mirrors CompressionStage::compute (a cleared
/// unit contributes constant 0) and CompressionStage::select (negative or
/// out-of-range selector indices read 0).
SymWord live_word(LaneTable& lanes, const CompressionStage& comp,
                  std::int8_t unit) {
  if (unit < 0) return SymWord::constant(0);
  const auto u = static_cast<unsigned>(unit);
  if (u >= comp.num_units() || !comp.spec_of(u)) return SymWord::constant(0);
  return lanes.word(comp.unit(u));
}

/// Compiled-side lane word: slot 0 is the constant-zero lane.
SymWord slot_word(LaneTable& lanes, std::span<const HashSlot> slots,
                  std::uint16_t slot, bool& oob) {
  if (slot == 0) return SymWord::constant(0);
  if (slot >= slots.size()) {
    oob = true;
    return SymWord::constant(0);
  }
  return lanes.word(slots[slot].unit);
}

/// Accumulates (interpreted chain channel, compiled dense index) pairs
/// observed at parameter / gate / chain-out sites and checks the mapping is
/// a bijection with 0 <-> 0.  The compiler's dense remap is an allocation
/// detail; what translation requires is *consistency* — every use of one
/// channel must read/write the same dense cell, and no two channels may
/// share one.
class ChainMap {
 public:
  /// Empty string when consistent; a description of the violation otherwise.
  std::string note(std::uint32_t channel, std::uint32_t dense,
                   std::size_t chain_count) {
    std::ostringstream os;
    if ((channel == 0) != (dense == 0)) {
      os << "channel " << channel << " lowered to dense index " << dense
         << " (0 must map to the never-written zero cell, and only 0 may)";
      return os.str();
    }
    if (channel == 0) return {};
    if (dense >= chain_count) {
      os << "dense chain index " << dense << " out of range (plan has "
         << chain_count << " channels)";
      return os.str();
    }
    const auto f = fwd_.emplace(channel, dense);
    if (!f.second && f.first->second != dense) {
      os << "channel " << channel << " lowered to dense indices "
         << f.first->second << " and " << dense;
      return os.str();
    }
    const auto r = rev_.emplace(dense, channel);
    if (!r.second && r.first->second != channel) {
      os << "dense chain index " << dense << " serves channels "
         << r.first->second << " and " << channel;
      return os.str();
    }
    return {};
  }

 private:
  std::map<std::uint32_t, std::uint32_t> fwd_;
  std::map<std::uint32_t, std::uint32_t> rev_;
};

struct EntryChecker {
  VerifyReport& report;
  LaneTable& lanes;
  ChainMap& chains;
  const ExecPlan& plan;
  const CompressionStage& comp;
  const std::string site;
  bool diverged = false;

  void fail(const std::string& check, const std::string& message,
            std::string hint = {}) {
    diverged = true;
    report.add(Severity::kError, "translate." + check, site, message,
               hint.empty()
                   ? "PlanCompiler lowering diverges from the interpreted "
                     "Cmu semantics for this entry"
                   : std::move(hint));
  }

  /// Slice of a word under the interpreted KeySlice semantics
  /// (shift-then-mask; width >= 32 keeps every shifted bit).
  static SymWord interp_slice(const SymWord& key, const KeySlice& slice) {
    const SymWord shifted = key >> slice.offset;
    return slice.width >= 32 ? shifted
                             : (shifted & ((1u << slice.width) - 1u));
  }

  void check_filter(const CmuTaskEntry& e, const CompiledEntry& ce) {
    const std::uint32_t src_mask = prefix_mask(e.filter.src_len);
    const std::uint32_t dst_mask = prefix_mask(e.filter.dst_len);
    const bool src_ok = ce.filter_src_mask == src_mask &&
                        ((ce.filter_src_ip ^ e.filter.src_ip) & src_mask) == 0;
    const bool dst_ok = ce.filter_dst_mask == dst_mask &&
                        ((ce.filter_dst_ip ^ e.filter.dst_ip) & dst_mask) == 0;
    if (!src_ok || !dst_ok) {
      std::ostringstream os;
      os << "compiled filter predicate differs from the installed prefix "
            "filter (src "
         << e.filter.src_ip << "/" << unsigned{e.filter.src_len} << " -> mask "
         << ce.filter_src_mask << ", dst " << e.filter.dst_ip << "/"
         << unsigned{e.filter.dst_len} << " -> mask " << ce.filter_dst_mask
         << ")";
      fail("filter", os.str());
    }
  }

  void check_sampling(const CmuTaskEntry& e, const CompiledEntry& ce) {
    const bool sampled = e.sample_probability < 1.0;
    if (ce.sampled != sampled ||
        (sampled && ce.sample_probability != e.sample_probability)) {
      fail("sample", "compiled sampling coin differs (probability "
                     "or sampled flag mismatch)");
      return;
    }
    if (sampled && ce.sample_seed != 0xC01Full + e.task_id) {
      fail("sample", "compiled sampling seed differs from the interpreted "
                     "per-task seed (0xC01F + phys id)");
    }
  }

  /// Both sides' sliced dynamic keys as symbolic words; returns whether
  /// they agree (address translation builds on each side's own slice).
  bool check_key(const CmuTaskEntry& e, const CompiledEntry& ce,
                 SymWord& interp_sliced, SymWord& compiled_sliced) {
    const SymWord interp_key = live_word(lanes, comp, e.key_sel.unit_a) ^
                               live_word(lanes, comp, e.key_sel.unit_b);
    interp_sliced = interp_slice(interp_key, e.key_slice);

    bool oob = false;
    const SymWord compiled_key =
        slot_word(lanes, plan.hash_slots(), ce.key_slot_a, oob) ^
        slot_word(lanes, plan.hash_slots(), ce.key_slot_b, oob);
    if (oob) {
      fail("key", "compiled key references a hash slot outside the plan's "
                  "slot table");
      return false;
    }
    compiled_sliced = (compiled_key >> ce.key_shift) & ce.key_mask;
    const int bit = SymWord::first_divergent_bit(interp_sliced, compiled_sliced);
    if (bit >= 0) {
      std::ostringstream os;
      os << "sliced dynamic key diverges at bit " << bit << ": interpreted "
         << interp_sliced.to_string() << " vs compiled "
         << compiled_sliced.to_string();
      fail("key", os.str());
      return false;
    }
    return true;
  }

  void check_address(const CmuTaskEntry& e, const CompiledEntry& ce,
                     const SymWord& interp_sliced,
                     const SymWord& compiled_sliced, bool key_ok,
                     std::uint32_t register_size) {
    if (e.partition.size == 0) {
      fail("address", "installed entry has an empty partition (nothing to "
                      "translate addresses into)");
      return;
    }
    if (ce.addr_base != e.partition.base ||
        ce.addr_mask != e.partition.size - 1u) {
      std::ostringstream os;
      os << "compiled address window [base " << ce.addr_base << " mask "
         << ce.addr_mask << "] differs from the installed partition [base "
         << e.partition.base << " size " << e.partition.size << "]";
      fail("address", os.str());
    }
    if (std::uint64_t{ce.addr_base} + ce.addr_mask >= register_size) {
      std::ostringstream os;
      os << "compiled address window reaches cell "
         << (std::uint64_t{ce.addr_base} + ce.addr_mask)
         << " but the register has only " << register_size << " cells";
      fail("address.bounds", os.str(),
           "a plan with out-of-window addresses corrupts neighbouring "
           "partitions; do not publish it");
    }
    if (!key_ok) return;  // root cause already reported under translate.key
    // translate_address: offset = width >= size_log ? sliced >> (width -
    // size_log) : sliced, then base + (offset & (size - 1)).  The compiled
    // path pre-resolves the shift; compare the offset expressions.
    const unsigned size_log = log2_floor(e.partition.size);
    const unsigned interp_shift =
        e.key_slice.width >= size_log ? e.key_slice.width - size_log : 0u;
    const SymWord interp_off =
        (interp_sliced >> interp_shift) & (e.partition.size - 1u);
    const SymWord compiled_off = (compiled_sliced >> ce.addr_shift) & ce.addr_mask;
    const int bit = SymWord::first_divergent_bit(interp_off, compiled_off);
    if (bit >= 0) {
      std::ostringstream os;
      os << "register address offset diverges at bit " << bit
         << " (pre-resolved shift " << unsigned{ce.addr_shift}
         << " vs interpreted " << interp_shift << "): interpreted "
         << interp_off.to_string() << " vs compiled "
         << compiled_off.to_string();
      fail("address", os.str());
    }
  }

  void check_param(const char* which, const ParamSelect& sel,
                   const CompiledParam& p) {
    const auto mismatch = [&](const std::string& why) {
      fail("param", std::string(which) + ": " + why);
    };
    switch (sel.source) {
      case ParamSelect::Source::kConst:
        if (p.kind != CompiledParam::Kind::kConst || p.value != sel.const_value) {
          mismatch("constant parameter lowered to a different kind or value");
        }
        break;
      case ParamSelect::Source::kMeta:
        if (p.kind != CompiledParam::Kind::kMeta || p.meta != sel.meta) {
          mismatch("metadata parameter lowered to a different field");
        }
        break;
      case ParamSelect::Source::kCompressedKey: {
        if (p.kind != CompiledParam::Kind::kKey) {
          mismatch("compressed-key parameter lowered to a different kind");
          break;
        }
        const SymWord interp = interp_slice(
            live_word(lanes, comp, sel.key_sel.unit_a) ^
                live_word(lanes, comp, sel.key_sel.unit_b),
            sel.slice);
        bool oob = false;
        const SymWord compiled =
            ((slot_word(lanes, plan.hash_slots(), p.slot_a, oob) ^
              slot_word(lanes, plan.hash_slots(), p.slot_b, oob)) >>
             p.shift) &
            p.mask;
        if (oob) {
          mismatch("parameter references a hash slot outside the plan's "
                   "slot table");
          break;
        }
        const int bit = SymWord::first_divergent_bit(interp, compiled);
        if (bit >= 0) {
          std::ostringstream os;
          os << "sliced key parameter diverges at bit " << bit
             << ": interpreted " << interp.to_string() << " vs compiled "
             << compiled.to_string();
          mismatch(os.str());
        }
        break;
      }
      case ParamSelect::Source::kChain: {
        if (p.kind != CompiledParam::Kind::kChain) {
          mismatch("chain parameter lowered to a different kind");
          break;
        }
        const std::string why =
            chains.note(sel.const_value, p.value, plan.num_chain_channels());
        if (!why.empty()) fail("chain", std::string(which) + ": " + why);
        break;
      }
    }
  }

  void check_prep(const CmuTaskEntry& e, const CompiledEntry& ce) {
    if (ce.prep != e.prep) {
      fail("prep", "compiled preparation function differs from the "
                   "installed one");
      return;
    }
    if (e.prep == PrepFn::kSubtractGated || e.prep == PrepFn::kKeepOnChainZero ||
        e.prep == PrepFn::kBitSelectOneHotGated) {
      const std::string why =
          chains.note(e.chain_gate, ce.gate_chain, plan.num_chain_channels());
      if (!why.empty()) fail("prep", "gate: " + why);
    }
    if (e.prep == PrepFn::kCouponOneHot &&
        (ce.coupon_count != e.coupon.num_coupons ||
         ce.coupon_probability != e.coupon.draw_probability ||
         ce.coupon_total !=
             e.coupon.draw_probability * e.coupon.num_coupons)) {
      fail("prep", "compiled coupon constants differ from the installed "
                   "coupon parameters");
    }
  }

  void check_op(const CmuTaskEntry& e, const CompiledEntry& ce,
                std::uint32_t register_value_mask) {
    if (ce.op != e.op) {
      std::ostringstream os;
      os << "compiled SALU op-code " << dataplane::to_string(ce.op)
         << " differs from the installed op " << dataplane::to_string(e.op);
      fail("op", os.str());
    }
    if (ce.value_mask != register_value_mask) {
      std::ostringstream os;
      os << "compiled value mask 0x" << std::hex << ce.value_mask
         << " differs from the register's mask 0x" << register_value_mask;
      fail("op", os.str());
    }
    if (ce.output_old_value != e.output_old_value) {
      fail("op", "compiled old-value export flag differs");
    }
    const bool one_hot = e.prep == PrepFn::kBitSelectOneHot ||
                         e.prep == PrepFn::kCouponOneHot;
    if (ce.one_hot_export != one_hot) {
      fail("op", "compiled one-hot export flag differs from the prep "
                 "function's export semantics");
    }
  }

  void check_chain_out(const CmuTaskEntry& e, const CompiledEntry& ce) {
    if (e.chain_out == 0) {
      if (ce.chain_out != kNoChain) {
        fail("chain", "compiled entry publishes on a chain channel the "
                      "installed entry never writes");
      }
    } else {
      if (ce.chain_out == kNoChain) {
        fail("chain", "compiled entry drops the installed entry's chain "
                      "output");
      } else {
        const std::string why =
            chains.note(e.chain_out, ce.chain_out, plan.num_chain_channels());
        if (!why.empty()) fail("chain", "chain_out: " + why);
      }
    }
    if (ce.chain_fallback != e.chain_fallback) {
      fail("chain", "compiled chain-fallback flag differs");
    }
  }
};

}  // namespace

void validate_translation(const FlyMonDataPlane& dp, const ExecPlan& plan,
                          VerifyReport& report) {
  if (plan.num_groups() != dp.num_groups()) {
    std::ostringstream os;
    os << "plan compiled for " << plan.num_groups()
       << " groups but the data plane has " << dp.num_groups();
    report.add(Severity::kError, "translate.entries", "pipeline", os.str(),
               "the plan was compiled against a different pipeline; "
               "recompile before publishing");
    return;
  }

  LaneTable lanes;
  ChainMap chains;
  const auto groups = plan.compiled_groups();
  const auto cmus = plan.compiled_cmus();
  const auto entries = plan.entries();

  // Hash-slot audit: every compiled lane snapshot must still agree with the
  // live unit it was copied from — a stale snapshot silently hashes with an
  // outdated mask (slot 0 is the constant-zero lane, nothing to audit).
  for (std::size_t s = 1; s < plan.hash_slots().size(); ++s) {
    const HashSlot& slot = plan.hash_slots()[s];
    std::ostringstream os;
    os << "hash slot " << s << " (g" << slot.group << " unit "
       << slot.unit_index << ")";
    if (slot.group >= dp.num_groups() ||
        slot.unit_index >= dp.group(slot.group).compression().num_units()) {
      report.add(Severity::kError, "translate.lane", os.str(),
                 "slot references a hash unit outside the pipeline");
      continue;
    }
    const CompressionStage& comp = dp.group(slot.group).compression();
    const dataplane::HashUnit& live = comp.unit(slot.unit_index);
    if (!comp.spec_of(slot.unit_index) || !live.configured() ||
        live.unit_index() != slot.unit.unit_index() ||
        live.mask() != slot.unit.mask()) {
      report.add(Severity::kError, "translate.lane", os.str(),
                 "compiled lane snapshot diverges from the live hash unit "
                 "(mask or configuration changed since compile)",
                 "the plan is stale; recompile so compiled hashing matches "
                 "the interpreted compression stage");
    }
  }

  std::uint32_t flat_cmu = 0;
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    const CmuGroup& grp = dp.group(g);
    const CompressionStage& comp = grp.compression();
    std::ostringstream gsite;
    gsite << 'g' << g;

    if (g >= groups.size() || groups[g].cmu_begin != flat_cmu ||
        groups[g].cmu_end - groups[g].cmu_begin != grp.num_cmus()) {
      report.add(Severity::kError, "translate.entries", gsite.str(),
                 "compiled group does not cover the group's CMUs "
                 "contiguously");
      return;  // flat indices are unusable past this point
    }
    unsigned configured = 0;
    for (unsigned u = 0; u < comp.num_units(); ++u) {
      if (comp.spec_of(u)) ++configured;
    }
    if (groups[g].configured_units != configured) {
      report.add(Severity::kWarning, "translate.lane", gsite.str(),
                 "compiled hash-invocation count differs from the live "
                 "configured-unit count (telemetry skew only)");
    }

    for (unsigned c = 0; c < grp.num_cmus(); ++c, ++flat_cmu) {
      const Cmu& cmu = grp.cmu(c);
      const CompiledCmu& cc = cmus[flat_cmu];
      std::ostringstream csite;
      csite << 'g' << g << "/c" << c;

      if (cc.reg != &cmu.reg()) {
        report.add(Severity::kError, "translate.register", csite.str(),
                   "compiled CMU is bound to a different register than the "
                   "live CMU it was lowered from");
      }
      const auto& installed = cmu.entries();
      if (cc.entry_end < cc.entry_begin || cc.entry_end > entries.size() ||
          cc.entry_end - cc.entry_begin != installed.size()) {
        std::ostringstream os;
        os << "compiled entry count "
           << (cc.entry_end >= cc.entry_begin ? cc.entry_end - cc.entry_begin
                                              : 0)
           << " differs from the " << installed.size()
           << " installed entries";
        report.add(Severity::kError, "translate.entries", csite.str(), os.str(),
                   "an entry was dropped, duplicated or reordered during "
                   "compilation");
        continue;
      }
      // Counts agree and both sides enumerate in priority (installation)
      // order — ir::for_each_installed_entry is the shared walk — so the
      // pairing is index-aligned.
      for (std::size_t i = 0; i < installed.size(); ++i) {
        const CmuTaskEntry& e = installed[i];
        const CompiledEntry& ce = entries[cc.entry_begin + i];
        EntryChecker check{report,    lanes, chains, plan,
                           comp,      entry_site(g, c, e.task_id)};
        check.check_filter(e, ce);
        check.check_sampling(e, ce);
        SymWord interp_sliced, compiled_sliced;
        const bool key_ok =
            check.check_key(e, ce, interp_sliced, compiled_sliced);
        check.check_address(e, ce, interp_sliced, compiled_sliced, key_ok,
                            cmu.reg().size());
        check.check_param("p1", e.p1, ce.p1);
        check.check_param("p2", e.p2, ce.p2);
        check.check_prep(e, ce);
        check.check_op(e, ce, cmu.reg().value_mask());
        check.check_chain_out(e, ce);
      }
    }
  }
}

}  // namespace flymon::verify::translate

namespace flymon::verify {
namespace {

class TranslationAnalyzer final : public Analyzer {
 public:
  std::string_view name() const noexcept override { return "translate"; }
  std::string_view description() const noexcept override {
    return "symbolic equivalence of the compiled ExecPlan against the "
           "interpreted CMU semantics (requires an explicit plan: "
           "VerifyContext::exec_plan)";
  }
  void run(const VerifyContext& ctx, VerifyReport& report) const override {
    // Only validates an explicitly supplied plan: deploy-time gates run
    // BEFORE recompilation, so the data plane's current plan is legally
    // stale there and must not be compared against the new deployment.
    if (ctx.exec_plan == nullptr || ctx.dataplane == nullptr) return;
    translate::validate_translation(*ctx.dataplane, *ctx.exec_plan, report);
  }
};

class MergeSoundnessAnalyzer final : public Analyzer {
 public:
  std::string_view name() const noexcept override { return "merge"; }
  std::string_view description() const noexcept override {
    return "merge-region monoid laws + independent merge-blocker "
           "re-derivation over the compiled plan (requires "
           "VerifyContext::exec_plan)";
  }
  void run(const VerifyContext& ctx, VerifyReport& report) const override {
    if (ctx.exec_plan == nullptr || ctx.dataplane == nullptr) return;
    translate::prove_merge_soundness(*ctx.dataplane, *ctx.exec_plan, report);
  }
};

}  // namespace

std::unique_ptr<Analyzer> make_translation_analyzer() {
  return std::make_unique<TranslationAnalyzer>();
}

std::unique_ptr<Analyzer> make_merge_soundness_analyzer() {
  return std::make_unique<MergeSoundnessAnalyzer>();
}

VerifyReport validate_plan(const FlyMonDataPlane& dp,
                           const exec::ExecPlan& plan) {
  VerifyReport report;
  translate::validate_translation(dp, plan, report);
  translate::prove_merge_soundness(dp, plan, report);
  report.analyzers_run = {"translate", "merge"};
  return report;
}

}  // namespace flymon::verify
