// Evaluation metrics (paper Appendix C): ARE, RE, F1 score, false-positive
// rate — shared by tests and every accuracy benchmark.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "packet/exact.hpp"
#include "packet/flowkey.hpp"

namespace flymon::analysis {

/// Relative error |x_hat - x| / x (x must be non-zero).
double relative_error(double truth, double estimate);

/// Average relative error over per-flow (truth, estimate) pairs.
/// Zero-truth flows are skipped.
double average_relative_error(const std::vector<std::pair<double, double>>& pairs);

struct ClassificationScore {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;

  double precision() const;
  double recall() const;
  double f1() const;
};

/// Compare a reported key set against the ground-truth key set.
ClassificationScore score_detection(const std::vector<FlowKeyValue>& truth,
                                    const std::vector<FlowKeyValue>& reported);

/// False-positive rate over probes known NOT to be members.
double false_positive_rate(std::size_t false_positives, std::size_t true_negatives_total);

// ---- closed-form accuracy bounds (paper §2 related work; used by the
// ---- static accuracy-feasibility analyzer in src/verify) ----

/// Count-Min error factor: with width w, the additive overestimate is at
/// most eps*N with probability 1-delta, where eps = e/w.
double cm_epsilon(std::uint32_t width);

/// Count-Min failure probability for depth d rows: delta = e^-d.
double cm_delta(unsigned depth);

/// Minimum CM width so that cm_epsilon(w) <= epsilon (ceil(e/epsilon)).
std::uint32_t cm_min_width(double epsilon);

/// Minimum CM depth so that cm_delta(d) <= delta (ceil(ln(1/delta))).
unsigned cm_min_depth(double delta);

/// Bloom-filter false-positive rate (1 - e^{-k n / m})^k for m bits,
/// k hash functions and n inserted items.
double bloom_false_positive_rate(std::uint64_t bits, unsigned hashes,
                                 std::uint64_t items);

/// Minimum Bloom bits so the FPR stays <= `fpr` for `items` insertions with
/// `hashes` hash functions.
std::uint64_t bloom_min_bits(double fpr, unsigned hashes, std::uint64_t items);

/// HyperLogLog relative standard deviation 1.04 / sqrt(m) for m registers.
double hll_relative_stddev(std::uint32_t registers);

/// Minimum HLL registers so hll_relative_stddev(m) <= stddev.
std::uint32_t hll_min_registers(double stddev);

/// ARE of a frequency-style estimator: for each flow in `truth`, look up
/// its estimate via `estimate_fn(key)`.
template <typename EstimateFn>
double frequency_are(const FreqMap& truth, EstimateFn&& estimate_fn) {
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(truth.size());
  for (const auto& [key, f] : truth) {
    if (f == 0) continue;
    pairs.emplace_back(static_cast<double>(f),
                       static_cast<double>(estimate_fn(key)));
  }
  return average_relative_error(pairs);
}

}  // namespace flymon::analysis
