file(REMOVE_RECURSE
  "CMakeFiles/flymon_dataplane.dir/hash_unit.cpp.o"
  "CMakeFiles/flymon_dataplane.dir/hash_unit.cpp.o.d"
  "CMakeFiles/flymon_dataplane.dir/mau_stage.cpp.o"
  "CMakeFiles/flymon_dataplane.dir/mau_stage.cpp.o.d"
  "CMakeFiles/flymon_dataplane.dir/pipeline.cpp.o"
  "CMakeFiles/flymon_dataplane.dir/pipeline.cpp.o.d"
  "CMakeFiles/flymon_dataplane.dir/salu.cpp.o"
  "CMakeFiles/flymon_dataplane.dir/salu.cpp.o.d"
  "CMakeFiles/flymon_dataplane.dir/tcam.cpp.o"
  "CMakeFiles/flymon_dataplane.dir/tcam.cpp.o.d"
  "libflymon_dataplane.a"
  "libflymon_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flymon_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
