// Randomized Hierarchical Heavy Hitters (RHHH, Basat et al.) composed from
// FlyMon primitives — the last algorithm the paper's Fig 5 decomposition
// names.  One frequency task per prefix level shares the same CMUs through
// probabilistic execution (each packet updates one uniformly-chosen level),
// and readout scales estimates back by the level count.  This is exactly
// the multitasking-parallelism mechanism of §3.3/§6 put to work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "control/controller.hpp"

namespace flymon::control {

class RhhhTask {
 public:
  struct Report {
    std::uint8_t prefix_len = 0;
    FlowKeyValue key;
    std::uint64_t estimate = 0;
  };

  /// Deploy one per-level task for every source-prefix length in `levels`
  /// (e.g. {8, 16, 24, 32}), all sampling at 1/|levels|.
  static RhhhTask deploy(Controller& ctl, std::vector<std::uint8_t> levels,
                         std::uint32_t memory_buckets, unsigned rows = 3);

  bool ok() const noexcept { return ok_; }
  const std::string& error() const noexcept { return error_; }
  const std::vector<std::uint8_t>& levels() const noexcept { return levels_; }
  const std::vector<std::uint32_t>& task_ids() const noexcept { return task_ids_; }

  /// Sampling-corrected frequency estimate of `probe` at one level.
  std::uint64_t query_level(const Controller& ctl, std::uint8_t prefix_len,
                            const Packet& probe) const;

  /// Hierarchical heavy hitters: for each level, the candidate prefixes
  /// whose *residual* frequency (total minus already-reported descendants)
  /// crosses the threshold — the standard HHH semantics.
  std::vector<Report> hierarchical_heavy_hitters(
      const Controller& ctl, const std::vector<FlowKeyValue>& flow_candidates,
      std::uint64_t threshold) const;

  void remove(Controller& ctl) const;

 private:
  bool ok_ = false;
  std::string error_;
  std::vector<std::uint8_t> levels_;       // sorted ascending (coarse first)
  std::vector<std::uint32_t> task_ids_;    // parallel to levels_
};

}  // namespace flymon::control
