// Quickstart: deploy one measurement task at runtime, stream a trace
// through the FlyMon data plane, and read the results back.
//
//   $ ./quickstart
//
// The public API in a nutshell:
//   1. FlyMonDataPlane  — the CMU Groups (compiled once, never reloaded)
//   2. Controller       — installs runtime rules for new tasks
//   3. query_*          — control-plane readout / estimation
#include <cstdio>
#include <vector>

#include "control/controller.hpp"
#include "packet/trace_gen.hpp"

using namespace flymon;

int main() {
  // A Tofino pipe's worth of CMU Groups: 9 groups x 3 CMUs.
  FlyMonDataPlane dataplane(9);
  control::Controller controller(dataplane);

  // Define a task: per-source-IP packet counts, 3 rows of 16K buckets.
  TaskSpec task;
  task.name = "per-srcip frequency";
  task.key = FlowKeySpec::src_ip();
  task.attribute = AttributeKind::kFrequency;
  task.param = ParamSpec::constant(1);  // count packets; use kWireBytes for bytes
  task.memory_buckets = 16384;
  task.rows = 3;

  const auto deployed = controller.add_task(task);
  if (!deployed.ok) {
    std::fprintf(stderr, "deployment failed: %s\n", deployed.error.c_str());
    return 1;
  }
  std::printf("deployed task #%u: %u table rules, %u hash-mask rules, %.2f ms\n",
              deployed.task_id, deployed.report.table_rules,
              deployed.report.hash_mask_rules, deployed.report.delay_ms());

  // Stream a synthetic trace through the data plane (in production this is
  // the switch ASIC forwarding real traffic).
  TraceConfig cfg;
  cfg.num_flows = 5000;
  cfg.num_packets = 200'000;
  const std::vector<Packet> trace = TraceGenerator::generate(cfg);
  dataplane.process_all(trace);
  std::printf("processed %llu packets\n",
              static_cast<unsigned long long>(dataplane.packets_processed()));

  // Read back: compare a few flows against ground truth.
  const FreqMap truth = ExactStats::frequency(trace, task.key);
  std::printf("%-18s %10s %10s\n", "flow (srcip)", "true", "estimate");
  unsigned shown = 0;
  for (const auto& [key, count] : truth) {
    if (count < 1000) continue;  // show the big ones
    const Packet probe = packet_from_candidate_key(key.bytes);
    const std::uint64_t est = controller.query_value(deployed.task_id, probe);
    std::printf("%3u.%u.%u.%u          %10llu %10llu\n", probe.ft.src_ip >> 24,
                (probe.ft.src_ip >> 16) & 255, (probe.ft.src_ip >> 8) & 255,
                probe.ft.src_ip & 255, static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(est));
    if (++shown == 10) break;
  }
  return 0;
}
