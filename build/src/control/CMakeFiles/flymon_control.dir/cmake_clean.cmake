file(REMOVE_RECURSE
  "CMakeFiles/flymon_control.dir/adaptive.cpp.o"
  "CMakeFiles/flymon_control.dir/adaptive.cpp.o.d"
  "CMakeFiles/flymon_control.dir/controller.cpp.o"
  "CMakeFiles/flymon_control.dir/controller.cpp.o.d"
  "CMakeFiles/flymon_control.dir/crossstack.cpp.o"
  "CMakeFiles/flymon_control.dir/crossstack.cpp.o.d"
  "CMakeFiles/flymon_control.dir/forwarding_sim.cpp.o"
  "CMakeFiles/flymon_control.dir/forwarding_sim.cpp.o.d"
  "CMakeFiles/flymon_control.dir/network.cpp.o"
  "CMakeFiles/flymon_control.dir/network.cpp.o.d"
  "CMakeFiles/flymon_control.dir/rhhh.cpp.o"
  "CMakeFiles/flymon_control.dir/rhhh.cpp.o.d"
  "CMakeFiles/flymon_control.dir/rules.cpp.o"
  "CMakeFiles/flymon_control.dir/rules.cpp.o.d"
  "CMakeFiles/flymon_control.dir/shell.cpp.o"
  "CMakeFiles/flymon_control.dir/shell.cpp.o.d"
  "CMakeFiles/flymon_control.dir/static_deploy.cpp.o"
  "CMakeFiles/flymon_control.dir/static_deploy.cpp.o.d"
  "libflymon_control.a"
  "libflymon_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flymon_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
