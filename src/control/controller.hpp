// FlyMon control plane (paper §3.4): task management (define / remove /
// resize measurement tasks, compiled into runtime rules) and resource
// management (compressed-key reuse, CMU selection, buddy-allocated memory
// partitions), plus the control-plane readout/estimation for every built-in
// algorithm.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "control/deployment.hpp"
#include "core/flymon_dataplane.hpp"
#include "core/memory_partition.hpp"
#include "core/task.hpp"

namespace flymon::verify {
struct PlanResult;  // defined in verify/planner.hpp
}  // namespace flymon::verify

namespace flymon::control {

/// One physical CMU used by a task row, with its register partition.
struct UnitPlacement {
  unsigned group = 0;
  unsigned cmu = 0;
  std::uint32_t phys_id = 0;  ///< task id installed in that CMU
  MemoryPartition partition{};
};

/// One independent instance ("row", d of them) of a task.  Simple
/// algorithms use one CMU per row; composite ones (SuMax(Sum),
/// MaxInterarrival, CounterBraids) chain several CMUs across groups.
struct RowPlacement {
  std::vector<UnitPlacement> units;
};

struct DeployedTask {
  std::uint32_t id = 0;
  TaskSpec spec;
  Algorithm algorithm = Algorithm::kAuto;  ///< resolved (never kAuto)
  std::uint32_t buckets = 0;               ///< quantized per-row buckets
  std::vector<RowPlacement> rows;
  DeploymentReport report;
  /// Total reconfiguration delay this public id has paid (initial deploy
  /// plus every resize/split swap).
  double cumulative_delay_ms = 0.0;
  // BeauCoup parameters resolved by the compiler.
  unsigned coupon_count = 32;
  unsigned coupon_threshold = 32;
  double coupon_probability = 0;
};

/// Point-in-time health of one deployed task (computed on demand).
struct TaskHealth {
  std::uint32_t task_id = 0;
  std::string name;
  Algorithm algorithm = Algorithm::kAuto;
  std::uint32_t buckets = 0;
  unsigned rows = 0;
  unsigned cmus_used = 0;
  unsigned table_rules = 0;
  unsigned hash_mask_rules = 0;
  double cumulative_delay_ms = 0.0;
  /// Per-row bucket saturation: non-zero cells / cells, over all of the
  /// row's unit partitions.  High saturation = collision pressure.
  std::vector<double> row_saturation;
  double max_saturation = 0.0;
};

struct DeployResult {
  bool ok = false;
  std::string error;
  std::uint32_t task_id = 0;
  DeploymentReport report;
};

/// One staged reconfiguration operation for Controller::plan() — the
/// dry-run planner replays it against a shadow world without touching the
/// live data plane.  `task_id` refers to a *live* public task id; the
/// planner maps it onto the shadow replica internally.
struct PlanOp {
  enum class Kind : std::uint8_t { kAdd, kRemove, kResize, kSplit };
  Kind kind = Kind::kAdd;
  TaskSpec spec{};               ///< kAdd only
  std::uint32_t task_id = 0;     ///< kRemove / kResize / kSplit
  std::uint32_t new_buckets = 0; ///< kResize only

  static PlanOp add(TaskSpec spec);
  static PlanOp remove(std::uint32_t id);
  static PlanOp resize(std::uint32_t id, std::uint32_t new_buckets);
  static PlanOp split(std::uint32_t id);
};

const char* to_string(PlanOp::Kind k) noexcept;

class Controller {
 public:
  explicit Controller(FlyMonDataPlane& dp,
                      TranslationStrategy strategy = TranslationStrategy::kTcam,
                      AllocMode mode = AllocMode::kAccurate);

  // ---- task management interfaces ----
  DeployResult add_task(const TaskSpec& spec);
  bool remove_task(std::uint32_t id);
  /// Reallocate a task's memory: deploy the replacement first, then freeze
  /// and reclaim the old instance (paper §6, memory reallocation strategy).
  /// The public task id is preserved; measurement state starts fresh.
  DeployResult resize_task(std::uint32_t id, std::uint32_t new_buckets);

  /// Split a heavy task into two subtasks with halved filters (paper
  /// §3.1.1: e.g. SrcIP 10.0.0.0/8 -> 10.0.0.0/9 + 10.128.0.0/9), each with
  /// its own memory, reducing per-subtask hash collisions.  Both subtasks
  /// deploy before the original is reclaimed; on failure nothing changes.
  std::pair<DeployResult, DeployResult> split_task(std::uint32_t id);

  const DeployedTask* task(std::uint32_t id) const noexcept;
  std::size_t num_tasks() const noexcept { return tasks_.size(); }
  std::vector<std::uint32_t> task_ids() const;

  /// Zero the task's register partitions (start of a measurement epoch).
  void clear_task_state(std::uint32_t id);
  void clear_all_state();

  // ---- resource management interfaces ----
  std::uint32_t free_buckets(unsigned group, unsigned cmu) const;
  AllocMode alloc_mode() const noexcept { return mode_; }
  TranslationStrategy strategy() const noexcept { return strategy_; }
  /// The buddy allocator backing (group, cmu), or nullptr when the CMU has
  /// never been allocated from.  Read-only: the static verifier audits
  /// placements against the allocator's live blocks.
  const BuddyAllocator* find_allocator(unsigned group, unsigned cmu) const noexcept;

  // ---- static verification (src/verify) ----
  /// Paranoid mode: every deploy (add/resize/split) runs the full static
  /// verifier after committing; error diagnostics roll the deployment back
  /// and fail the DeployResult.  remove_task re-verifies too and surfaces
  /// residual corruption via last_verify_errors().  Additionally installs
  /// a publish-time translation-validation gate on the data plane: every
  /// compiled ExecPlan is symbolically checked against the interpreted
  /// semantics *before* the RCU store, and a divergent plan is vetoed
  /// (processing stays on the interpreted path, diagnostics land in
  /// last_verify_errors()).  Off by default (tests enable it); the shell
  /// toggles it with `verify paranoid on|off`.  Implemented in
  /// verifier.cpp so this header stays free of the analyzer machinery.
  void set_paranoid(bool on);
  bool paranoid() const noexcept { return paranoid_; }
  /// Formatted error diagnostics of the most recent paranoid check that
  /// failed (empty when the last check was clean or paranoid mode is off).
  const std::string& last_verify_errors() const noexcept { return last_verify_errors_; }

  /// Dry-run a batch of reconfiguration ops against a cloned shadow world:
  /// replay the live tasks, apply the ops, run every analyzer, and return
  /// the combined diagnostics.  The live data plane is never touched — the
  /// shadow has its own FlyMonDataPlane, Controller and telemetry registry
  /// (implemented in src/verify/planner.cpp).
  verify::PlanResult plan(const std::vector<PlanOp>& ops) const;

  // ---- control-plane readout ----
  /// Frequency / Max estimate for one flow (min across rows).
  std::uint64_t query_value(std::uint32_t id, const Packet& probe) const;
  /// Existence check (Bloom filter).
  bool query_existence(std::uint32_t id, const Packet& probe) const;
  /// Max inter-arrival estimate in nanoseconds.
  std::uint64_t query_max_interarrival_ns(std::uint32_t id, const Packet& probe) const;
  /// BeauCoup: has this key's distinct count crossed the threshold?
  bool distinct_over_threshold(std::uint32_t id, const Packet& probe) const;
  /// BeauCoup: distinct estimate via coupon-collector inversion.
  double estimate_distinct(std::uint32_t id, const Packet& probe) const;
  /// HyperLogLog / LinearCounting cardinality over the whole register.
  double estimate_cardinality(std::uint32_t id) const;
  /// MRAC flow entropy (nats) and size distribution.
  double estimate_entropy(std::uint32_t id) const;
  std::map<std::uint32_t, double> estimate_size_distribution(std::uint32_t id) const;
  /// Odd Sketch (Similarity attribute): set size of one task, and the
  /// symmetric difference / Jaccard similarity of two tasks deployed with
  /// identical geometry (same CMUs and key slices, disjoint filters).
  double estimate_set_size(std::uint32_t id) const;
  double estimate_symmetric_difference(std::uint32_t a, std::uint32_t b) const;
  double estimate_jaccard(std::uint32_t a, std::uint32_t b) const;
  /// Candidate keys whose estimate crosses `threshold` (frequency-style
  /// algorithms query values; BeauCoup uses its report rule).
  std::vector<FlowKeyValue> detect_over_threshold(
      std::uint32_t id, const std::vector<FlowKeyValue>& candidates,
      std::uint64_t threshold) const;

  /// Freeze a copy of the task's register partitions (end-of-epoch state).
  struct TaskSnapshot {
    std::uint32_t task_id = 0;
    std::vector<std::vector<std::uint32_t>> row_cells;  ///< first unit per row
  };
  TaskSnapshot snapshot_task(std::uint32_t id) const;
  /// Frequency estimate of `probe` against a snapshot (min across rows).
  std::uint64_t query_snapshot(const TaskSnapshot& snap, const Packet& probe) const;
  /// Heavy changers (paper Table 1): keys whose frequency changed by at
  /// least `threshold` between a snapshot epoch and the current state.
  std::vector<FlowKeyValue> detect_heavy_changers(
      std::uint32_t id, const TaskSnapshot& previous_epoch,
      const std::vector<FlowKeyValue>& candidates, std::uint64_t threshold) const;

  FlyMonDataPlane& dataplane() noexcept { return *dp_; }
  const FlyMonDataPlane& dataplane() const noexcept { return *dp_; }

  // ---- observability ----
  /// Health of one task / all tasks (bucket saturation, rules, delay).
  TaskHealth task_health(std::uint32_t id) const;
  std::vector<TaskHealth> health() const;

  /// Rebind the controller's own counters (deploys, failures, delay) into
  /// `registry`.  Construction binds to telemetry::Registry::global().
  void bind_telemetry(telemetry::Registry& registry);
  telemetry::Registry& registry() const noexcept { return *registry_; }

  /// Refresh every on-demand gauge: per-task health plus the dataplane's
  /// occupancy gauges (collect_dataplane_telemetry).
  void collect_telemetry() const;

 private:
  struct PendingMask {  // hash-mask rules staged during one deployment
    unsigned group;
    unsigned unit;
    FlowKeySpec spec;
  };

  /// Ownership labels of every installed entry, derived from tasks_ (used
  /// to tag compiled-plan entries with public task ids).
  std::vector<exec::EntryOwnership> entry_ownership() const;
  /// Compile the current deployment into a fresh ExecPlan and publish it on
  /// the data plane.  Every successful public mutation (add/remove/resize/
  /// split) ends here, so the packet path always executes a coherent
  /// snapshot of the newest committed configuration.
  void recompile_and_publish();

  DeployResult deploy(const TaskSpec& spec, std::uint32_t public_id);
  /// Placement/installation body of deploy().  `t` is the staged task the
  /// exception-safe wrapper rolls back if this throws mid-operation.
  DeployResult deploy_impl(const TaskSpec& spec, std::uint32_t public_id,
                           DeployedTask& t);
  void undo_deployment(DeployedTask& t);
  void gc_unreferenced_units();

  // Resource helpers.
  BuddyAllocator& allocator(unsigned group, unsigned cmu);
  std::optional<CompressedKeySelector> ensure_selector(unsigned group,
                                                       const FlowKeySpec& spec,
                                                       unsigned& mask_rules);
  void ref_selector(unsigned group, const CompressedKeySelector& sel);
  void unref_selector(unsigned group, const CompressedKeySelector& sel);

  // Readout helpers.
  const DeployedTask& require(std::uint32_t id) const;
  std::uint64_t read_row_value(const DeployedTask& t, const RowPlacement& row,
                               const Packet& probe) const;

  /// Paranoid-mode helper: full verifier pass; returns formatted error
  /// diagnostics, empty when clean (implemented in src/verify/verifier.cpp
  /// to keep the analyzer headers out of this one).
  std::string run_verify_gate() const;
  /// Paranoid-mode pre-flight: dry-run plan() of the single add op; returns
  /// the failure summary, empty when the plan is clean (implemented in
  /// src/verify/planner.cpp).
  std::string run_plan_gate(const TaskSpec& spec) const;

  FlyMonDataPlane* dp_;
  TranslationStrategy strategy_;
  AllocMode mode_;
  bool paranoid_ = false;
  std::string last_verify_errors_;
  telemetry::Registry* registry_ = nullptr;
  telemetry::Counter* deploys_counter_ = nullptr;
  telemetry::Counter* deploy_failures_counter_ = nullptr;
  telemetry::Counter* removals_counter_ = nullptr;
  telemetry::Counter* resizes_counter_ = nullptr;
  std::uint32_t next_id_ = 1;
  std::uint32_t next_phys_ = 1;
  std::uint32_t next_chain_ = 1;
  std::map<std::uint32_t, DeployedTask> tasks_;
  // (group, cmu) -> buddy allocator
  std::map<std::pair<unsigned, unsigned>, BuddyAllocator> allocators_;
  // (group, unit) -> reference count of tasks using this compressed key
  std::map<std::pair<unsigned, unsigned>, unsigned> unit_refs_;
};

}  // namespace flymon::control
