file(REMOVE_RECURSE
  "../bench/fig14a_heavy_hitter"
  "../bench/fig14a_heavy_hitter.pdb"
  "CMakeFiles/fig14a_heavy_hitter.dir/fig14a_heavy_hitter.cpp.o"
  "CMakeFiles/fig14a_heavy_hitter.dir/fig14a_heavy_hitter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14a_heavy_hitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
