file(REMOVE_RECURSE
  "CMakeFiles/flymon_shell.dir/flymon_shell.cpp.o"
  "CMakeFiles/flymon_shell.dir/flymon_shell.cpp.o.d"
  "flymon_shell"
  "flymon_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flymon_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
