
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/adaptive.cpp" "src/control/CMakeFiles/flymon_control.dir/adaptive.cpp.o" "gcc" "src/control/CMakeFiles/flymon_control.dir/adaptive.cpp.o.d"
  "/root/repo/src/control/controller.cpp" "src/control/CMakeFiles/flymon_control.dir/controller.cpp.o" "gcc" "src/control/CMakeFiles/flymon_control.dir/controller.cpp.o.d"
  "/root/repo/src/control/crossstack.cpp" "src/control/CMakeFiles/flymon_control.dir/crossstack.cpp.o" "gcc" "src/control/CMakeFiles/flymon_control.dir/crossstack.cpp.o.d"
  "/root/repo/src/control/forwarding_sim.cpp" "src/control/CMakeFiles/flymon_control.dir/forwarding_sim.cpp.o" "gcc" "src/control/CMakeFiles/flymon_control.dir/forwarding_sim.cpp.o.d"
  "/root/repo/src/control/network.cpp" "src/control/CMakeFiles/flymon_control.dir/network.cpp.o" "gcc" "src/control/CMakeFiles/flymon_control.dir/network.cpp.o.d"
  "/root/repo/src/control/rhhh.cpp" "src/control/CMakeFiles/flymon_control.dir/rhhh.cpp.o" "gcc" "src/control/CMakeFiles/flymon_control.dir/rhhh.cpp.o.d"
  "/root/repo/src/control/rules.cpp" "src/control/CMakeFiles/flymon_control.dir/rules.cpp.o" "gcc" "src/control/CMakeFiles/flymon_control.dir/rules.cpp.o.d"
  "/root/repo/src/control/shell.cpp" "src/control/CMakeFiles/flymon_control.dir/shell.cpp.o" "gcc" "src/control/CMakeFiles/flymon_control.dir/shell.cpp.o.d"
  "/root/repo/src/control/static_deploy.cpp" "src/control/CMakeFiles/flymon_control.dir/static_deploy.cpp.o" "gcc" "src/control/CMakeFiles/flymon_control.dir/static_deploy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flymon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/flymon_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/flymon_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/flymon_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flymon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
