// Tests for the RHHH composite task (hierarchical heavy hitters through
// probabilistic execution on shared CMUs).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "control/rhhh.hpp"
#include "packet/trace_gen.hpp"

namespace flymon::control {
namespace {

TEST(Rhhh, DeploysOneTaskPerLevel) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const auto t = RhhhTask::deploy(ctl, {8, 16, 24, 32}, 16384);
  ASSERT_TRUE(t.ok()) << t.error();
  EXPECT_EQ(t.task_ids().size(), 4u);
  EXPECT_EQ(ctl.num_tasks(), 4u);
  // Whatever CMU chain each level landed on, its *unconditional* share of
  // the traffic must be 1/L: p_task x product(1 - p) over its predecessors.
  for (std::uint32_t id : t.task_ids()) {
    const auto* dt = ctl.task(id);
    const auto& up = dt->rows.front().units.front();
    const auto& entries = dp.group(up.group).cmu(up.cmu).entries();
    double unconditional = 1.0;
    for (const auto& e : entries) {
      if (e.task_id == up.phys_id) {
        unconditional *= e.sample_probability;
        break;
      }
      unconditional *= 1.0 - e.sample_probability;
    }
    EXPECT_NEAR(unconditional, 0.25, 1e-9) << "task " << id;
  }
  t.remove(ctl);
  EXPECT_EQ(ctl.num_tasks(), 0u);
}

TEST(Rhhh, RejectsEmptyLevels) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  EXPECT_FALSE(RhhhTask::deploy(ctl, {}, 1024).ok());
}

TEST(Rhhh, SamplingCorrectedLevelEstimates) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const auto t = RhhhTask::deploy(ctl, {8, 16, 24, 32}, 8192);
  ASSERT_TRUE(t.ok()) << t.error();

  Packet p;
  p.ft.src_ip = 0x0A010203;
  p.ft.protocol = 6;
  for (int i = 0; i < 40'000; ++i) {
    p.ts_ns = static_cast<std::uint64_t>(i) * 1000;
    dp.process(p);
  }
  // Each level sampled ~1/4 of 40K; scaled estimates recover ~40K.
  for (std::uint8_t len : {8, 16, 24, 32}) {
    EXPECT_NEAR(static_cast<double>(t.query_level(ctl, len, p)), 40'000.0, 4000.0)
        << "/" << int(len);
  }
  EXPECT_EQ(t.query_level(ctl, 12, p), 0u) << "undeployed level";
}

TEST(Rhhh, HierarchicalSemantics) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const auto t = RhhhTask::deploy(ctl, {8, 24}, 32768);
  ASSERT_TRUE(t.ok()) << t.error();

  // 10.1.1.0/24 is an HHH by itself (one hot host cluster); 10.2.0.0/8's
  // traffic is spread over many /24s that each stay below threshold, so
  // only the /8 aggregate should be reported for it.
  std::vector<Packet> trace;
  flymon::Rng rng(5);
  auto emit = [&](std::uint32_t src, int count) {
    Packet p;
    p.ft.src_ip = src;
    p.ft.protocol = 6;
    for (int i = 0; i < count; ++i) {
      p.ts_ns = rng.next_below(1'000'000'000);
      trace.push_back(p);
    }
  };
  emit(0x0A010101, 30'000);  // hot /24 inside 10/8
  for (unsigned i = 0; i < 120; ++i) {
    emit(0x0B000000 | (i << 8) | 1, 300);  // 11/8: spread across 120 /24s
  }
  TraceGenerator::sort_by_time(trace);
  dp.process_all(trace);

  std::vector<FlowKeyValue> candidates;
  {
    std::unordered_set<FlowKeyValue> seen;
    for (const Packet& p : trace) {
      if (seen.insert(extract_flow_key(p, FlowKeySpec::src_ip())).second) {
        candidates.push_back(extract_flow_key(p, FlowKeySpec::src_ip()));
      }
    }
  }
  const auto reports = t.hierarchical_heavy_hitters(ctl, candidates, 10'000);

  bool hot24 = false, eleven8 = false, ten8_residual = false;
  for (const auto& r : reports) {
    const Packet p = packet_from_candidate_key(r.key.bytes);
    if (r.prefix_len == 24 && (p.ft.src_ip >> 8) == 0x0A0101) hot24 = true;
    if (r.prefix_len == 8 && (p.ft.src_ip >> 24) == 0x0B) eleven8 = true;
    // 10/8 must NOT be reported: its traffic is fully explained by the /24.
    if (r.prefix_len == 8 && (p.ft.src_ip >> 24) == 0x0A) ten8_residual = true;
  }
  EXPECT_TRUE(hot24) << "the hot /24 is an HHH";
  EXPECT_TRUE(eleven8) << "the diffuse /8 is an HHH at the coarse level";
  EXPECT_FALSE(ten8_residual) << "ancestors of reported HHHs are discounted";
}

}  // namespace
}  // namespace flymon::control
