#include "verify/diagnostics.hpp"

#include <algorithm>
#include <sstream>

#include "telemetry/export.hpp"

namespace flymon::verify {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

void VerifyReport::add(Severity severity, std::string check, std::string site,
                       std::string message, std::string hint) {
  diags_.push_back(Diagnostic{severity, std::move(check), std::move(site),
                              std::move(message), std::move(hint)});
}

std::size_t VerifyReport::count(Severity s) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [&](const Diagnostic& d) { return d.severity == s; }));
}

bool VerifyReport::has_check(std::string_view check) const noexcept {
  return std::any_of(diags_.begin(), diags_.end(),
                     [&](const Diagnostic& d) { return d.check == check; });
}

std::string VerifyReport::format(Severity min_severity) const {
  std::ostringstream out;
  for (const Diagnostic& d : diags_) {
    if (d.severity < min_severity) continue;
    out << to_string(d.severity) << "  " << d.check << "  " << d.site << "  "
        << d.message;
    if (!d.hint.empty()) out << " (hint: " << d.hint << ")";
    out << '\n';
  }
  return out.str();
}

std::string to_json(const VerifyReport& report) {
  std::ostringstream out;
  out << "{\"analyzers\":[";
  for (std::size_t i = 0; i < report.analyzers_run.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << telemetry::json_escape(report.analyzers_run[i]) << '"';
  }
  out << "],\"counts\":{\"error\":" << report.count(Severity::kError)
      << ",\"warning\":" << report.count(Severity::kWarning)
      << ",\"info\":" << report.count(Severity::kInfo)
      << "},\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics()) {
    if (!first) out << ',';
    first = false;
    out << "{\"severity\":\"" << to_string(d.severity) << "\",\"check\":\""
        << telemetry::json_escape(d.check) << "\",\"site\":\""
        << telemetry::json_escape(d.site) << "\",\"message\":\""
        << telemetry::json_escape(d.message) << "\",\"hint\":\""
        << telemetry::json_escape(d.hint) << "\"}";
  }
  out << "]}";
  return out.str();
}

void VerifyReport::merge(VerifyReport other) {
  diags_.insert(diags_.end(), std::make_move_iterator(other.diags_.begin()),
                std::make_move_iterator(other.diags_.end()));
  analyzers_run.insert(analyzers_run.end(),
                       std::make_move_iterator(other.analyzers_run.begin()),
                       std::make_move_iterator(other.analyzers_run.end()));
}

}  // namespace flymon::verify
