#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace flymon {
namespace {

std::span<const std::uint8_t> bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 (IEEE) check value.
  EXPECT_EQ(crc32(bytes("123456789")), 0xCBF43926u);
}

TEST(Crc32, Crc32cKnownVector) {
  // CRC-32C (Castagnoli) check value.
  EXPECT_EQ(crc32(bytes("123456789"), 0x82F63B78u), 0xE3069283u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(crc32({}), 0u);  // init ^ final-xor with no data
}

TEST(Crc32, Deterministic) {
  const std::string s = "flymon";
  EXPECT_EQ(crc32(bytes(s)), crc32(bytes(s)));
}

TEST(Crc32, PolynomialsDiffer) {
  const std::string s = "same input";
  std::set<std::uint32_t> values;
  for (unsigned i = 0; i < 8; ++i) values.insert(crc32(bytes(s), crc_polynomial(i)));
  EXPECT_EQ(values.size(), 8u) << "polynomials must give distinct hashes";
}

TEST(Crc32, SensitiveToEveryByte) {
  std::array<std::uint8_t, 8> data{};
  const std::uint32_t base = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto mutated = data;
    mutated[i] ^= 1;
    EXPECT_NE(crc32(mutated), base) << "byte " << i;
  }
}

TEST(Hash64, SeedChangesOutput) {
  const std::string s = "abc";
  EXPECT_NE(hash64(bytes(s), 1), hash64(bytes(s), 2));
}

TEST(Hash64, ValueHelperMatchesBytes) {
  const std::uint32_t v = 0xDEADBEEF;
  EXPECT_EQ(hash64_value(v, 7),
            hash64({reinterpret_cast<const std::uint8_t*>(&v), sizeof v}, 7));
}

TEST(Hash64, RoughlyUniformLowBit) {
  unsigned ones = 0;
  for (std::uint32_t i = 0; i < 4096; ++i) ones += hash64_value(i, 3) & 1;
  EXPECT_NEAR(ones, 2048, 200);
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbability) {
  Rng rng(11);
  unsigned trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.next_bool(0.25);
  EXPECT_NEAR(trues, 2500, 250);
}

TEST(Zipf, RejectsBadArgs) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfSampler z(100, 1.2);
  double sum = 0;
  for (std::size_t i = 0; i < z.size(); ++i) sum += z.probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, ProbabilitiesMonotone) {
  ZipfSampler z(50, 0.9);
  for (std::size_t i = 1; i < z.size(); ++i) {
    EXPECT_GE(z.probability(i - 1), z.probability(i));
  }
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_NEAR(z.probability(i), 0.1, 1e-9);
}

TEST(Zipf, SamplingMatchesProbabilities) {
  ZipfSampler z(20, 1.0);
  Rng rng(5);
  std::array<unsigned, 20> counts{};
  constexpr unsigned kDraws = 100'000;
  for (unsigned i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(kDraws), z.probability(r), 0.01);
  }
}

class ZipfAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaSweep, HeadMassGrowsWithAlpha) {
  ZipfSampler z(1000, GetParam());
  // The top rank's share must be at least the uniform share.
  EXPECT_GE(z.probability(0), 1.0 / 1000 - 1e-12);
  // And all ranks sampleable.
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_LT(z.sample(rng), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaSweep,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.2, 1.5, 2.0));

}  // namespace
}  // namespace flymon
