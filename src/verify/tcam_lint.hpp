// Generic ternary-rule lint used by the TCAM analyzer and directly testable
// on hand-built rule sets: cover/overlap relations on (value, mask)
// patterns, shadowed/unreachable-entry detection, same-priority conflicts,
// and range-expansion reassembly checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/tcam.hpp"

namespace flymon::verify {

/// True iff every key matched by `b` is also matched by `a` (a's care bits
/// are a subset of b's and agree on them).
bool covers(const dataplane::TernaryPattern& a,
            const dataplane::TernaryPattern& b) noexcept;

/// True iff some key matches both patterns.
bool overlaps(const dataplane::TernaryPattern& a,
              const dataplane::TernaryPattern& b) noexcept;

/// One rule as seen by the lint, in effective match order (the order the
/// lookup logic scans: priority-sorted, install order breaking ties).
struct LintEntry {
  dataplane::TernaryPattern pattern;
  std::uint32_t priority = 0;
  std::string action;    ///< action tag; divergent tags make a conflict
  bool terminal = true;  ///< a match always consumes the packet (no sampling
                         ///< fall-through), so it can shadow later entries
  std::string label;     ///< for diagnostics ("task 3", "entry 7", ...)
};

struct LintFinding {
  enum class Kind : std::uint8_t {
    kShadowed,  ///< entry can never match: an earlier terminal entry covers it
    kConflict,  ///< same priority, overlapping patterns, different actions
  };
  Kind kind = Kind::kShadowed;
  std::size_t entry = 0;    ///< index of the offending entry
  std::size_t blocker = 0;  ///< index of the covering / conflicting entry
};

/// Lint `entries` given in effective match order.
std::vector<LintFinding> lint_entries(const std::vector<LintEntry>& entries);

/// Check that `patterns` (as produced by range_to_ternary) reassemble the
/// range [lo, hi] over a `width`-bit key exactly: every pattern is an
/// aligned prefix block inside the range, blocks are pairwise disjoint, and
/// their sizes sum to the range length.  Returns an empty string when
/// exact, else a description of the first defect.
std::string check_range_reassembly(
    const std::vector<dataplane::TernaryPattern>& patterns, std::uint64_t lo,
    std::uint64_t hi, unsigned width);

}  // namespace flymon::verify
