// Implementation of the dry-run reconfiguration planner (Controller::plan)
// and the paranoid pre-flight gate (Controller::run_plan_gate).  Lives in
// src/verify (like run_verify_gate) so controller.cpp stays free of the
// analyzer headers.
#include "verify/planner.hpp"

#include <algorithm>
#include <utility>

#include "core/flymon_dataplane.hpp"
#include "exec/exec_plan.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/span.hpp"
#include "verify/verifier.hpp"

namespace flymon::control {

PlanOp PlanOp::add(TaskSpec spec) {
  PlanOp op;
  op.kind = Kind::kAdd;
  op.spec = std::move(spec);
  return op;
}

PlanOp PlanOp::remove(std::uint32_t id) {
  PlanOp op;
  op.kind = Kind::kRemove;
  op.task_id = id;
  return op;
}

PlanOp PlanOp::resize(std::uint32_t id, std::uint32_t new_buckets) {
  PlanOp op;
  op.kind = Kind::kResize;
  op.task_id = id;
  op.new_buckets = new_buckets;
  return op;
}

PlanOp PlanOp::split(std::uint32_t id) {
  PlanOp op;
  op.kind = Kind::kSplit;
  op.task_id = id;
  return op;
}

const char* to_string(PlanOp::Kind k) noexcept {
  switch (k) {
    case PlanOp::Kind::kAdd: return "add";
    case PlanOp::Kind::kRemove: return "remove";
    case PlanOp::Kind::kResize: return "resize";
    case PlanOp::Kind::kSplit: return "split";
  }
  return "?";
}

}  // namespace flymon::control

namespace flymon::verify {
namespace {

std::string describe(const control::PlanOp& op) {
  using Kind = control::PlanOp::Kind;
  std::string s = control::to_string(op.kind);
  switch (op.kind) {
    case Kind::kAdd:
      s += " \"" + op.spec.name + "\"";
      break;
    case Kind::kResize:
      s += " task " + std::to_string(op.task_id) + " -> " +
           std::to_string(op.new_buckets) + " buckets";
      break;
    default:
      s += " task " + std::to_string(op.task_id);
      break;
  }
  return s;
}

/// Apply one op to the shadow controller.  `id_map` translates live ids to
/// shadow ids and is updated for ops that create or destroy tasks.  Ops may
/// only reference ids that exist on the *live* controller; ids minted by
/// earlier ops of the same batch are not addressable.
PlanOpResult apply_op(control::Controller& shadow, const control::PlanOp& op,
                      std::map<std::uint32_t, std::uint32_t>& id_map) {
  using Kind = control::PlanOp::Kind;
  PlanOpResult r;
  r.op = op;
  if (op.kind != Kind::kAdd) {
    const auto it = id_map.find(op.task_id);
    if (it == id_map.end()) {
      r.detail = "unknown live task id " + std::to_string(op.task_id);
      return r;
    }
    const std::uint32_t shadow_id = it->second;
    switch (op.kind) {
      case Kind::kRemove:
        r.ok = shadow.remove_task(shadow_id);
        r.detail = r.ok ? "removed" : "remove failed";
        if (r.ok) id_map.erase(op.task_id);
        break;
      case Kind::kResize: {
        const control::DeployResult res =
            shadow.resize_task(shadow_id, op.new_buckets);
        r.ok = res.ok;
        r.detail = res.ok ? "resized to " + std::to_string(op.new_buckets) +
                                " buckets"
                          : res.error;
        break;
      }
      case Kind::kSplit: {
        const auto [lo, hi] = shadow.split_task(shadow_id);
        r.ok = lo.ok && hi.ok;
        r.detail = r.ok ? "split into shadow tasks " +
                              std::to_string(lo.task_id) + " + " +
                              std::to_string(hi.task_id)
                        : (!lo.ok ? lo.error : hi.error);
        if (r.ok) id_map.erase(op.task_id);
        break;
      }
      default:
        break;
    }
    return r;
  }
  const control::DeployResult res = shadow.add_task(op.spec);
  r.ok = res.ok;
  r.detail = res.ok
                 ? "deployed as shadow task " + std::to_string(res.task_id)
                 : res.error;
  return r;
}

}  // namespace

std::string format_plan_diff(const std::vector<std::string>& before,
                             const std::vector<std::string>& after) {
  std::vector<std::string> b = before, a = after;
  std::sort(b.begin(), b.end());
  std::sort(a.begin(), a.end());
  std::vector<std::string> removed, added;
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(removed));
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(added));
  std::string out = "plan diff: " + std::to_string(before.size()) +
                    " compiled entries -> " + std::to_string(after.size()) +
                    " (+" + std::to_string(added.size()) + " / -" +
                    std::to_string(removed.size()) + ")\n";
  if (removed.empty() && added.empty()) {
    out += "  no compiled-entry changes\n";
    return out;
  }
  for (const std::string& line : removed) out += "  - " + line + "\n";
  for (const std::string& line : added) out += "  + " + line + "\n";
  return out;
}

std::string PlanResult::format() const {
  std::string out = ok ? "plan OK" : "plan FAILED: " + error;
  out += "\n";
  for (const PlanOpResult& r : ops) {
    out += std::string("  [") + (r.ok ? "ok" : "FAIL") + "] " +
           describe(r.op) + ": " + r.detail + "\n";
  }
  const std::string diags = report.format(Severity::kWarning);
  if (!diags.empty()) out += diags;
  return out;
}

}  // namespace flymon::verify

namespace flymon::control {

verify::PlanResult Controller::plan(const std::vector<PlanOp>& ops) const {
  trace::Span span("ctl.plan", ops.size());
  verify::PlanResult result;

  // Compiled signature of the live world: what the published ExecPlan
  // looks like before the batch.  (Compiling is read-only apart from
  // counter-series registration, which recompile_and_publish already did
  // for every live entry.)
  result.compiled_before =
      exec::PlanCompiler::compile(*dp_, entry_ownership(), 0)->signature();

  // A private shadow world: same pipeline geometry and allocation policy,
  // its own telemetry registry so shadow deploys never pollute the live
  // counters.
  telemetry::Registry shadow_registry;
  FlyMonDataPlane shadow_dp(dp_->num_groups(),
                            dp_->num_groups() ? dp_->group(0).config()
                                              : CmuGroupConfig{});
  shadow_dp.bind_telemetry(shadow_registry);
  Controller shadow(shadow_dp, strategy_, mode_);
  shadow.bind_telemetry(shadow_registry);

  // Replay the live tasks in ascending id order.  Specs are kept current
  // across resize/split, so replay-by-spec reproduces an equivalent
  // deployment (placements may legally differ from the live ones when the
  // live world is fragmented by past removals).
  for (const std::uint32_t live_id : task_ids()) {
    const DeployedTask* t = task(live_id);
    if (t == nullptr) continue;
    const DeployResult res = shadow.add_task(t->spec);
    if (!res.ok) {
      result.error = "failed to replay live task " + std::to_string(live_id) +
                     ": " + res.error;
      return result;
    }
    result.id_map[live_id] = res.task_id;
  }

  // Apply the staged batch, stopping at the first failure.
  bool ops_ok = true;
  for (const PlanOp& op : ops) {
    verify::PlanOpResult r = verify::apply_op(shadow, op, result.id_map);
    const bool op_ok = r.ok;
    result.ops.push_back(std::move(r));
    if (!op_ok) {
      result.error = "op '" + verify::describe(op) +
                     "' failed: " + result.ops.back().detail;
      ops_ok = false;
      break;
    }
  }

  // Compiled signature of the post-batch shadow world, with shadow task
  // ids translated back to live ids so the diff is phrased in terms the
  // operator staged.  Tasks minted by this batch have no live id; tag them.
  {
    std::map<std::uint32_t, std::uint32_t> shadow_to_live;
    for (const auto& [live, sh] : result.id_map) shadow_to_live[sh] = live;
    std::vector<exec::EntryOwnership> owners = shadow.entry_ownership();
    for (exec::EntryOwnership& o : owners) {
      const auto it = shadow_to_live.find(o.task_id);
      if (it != shadow_to_live.end()) {
        o.task_id = it->second;
      } else {
        o.name += " (new)";
      }
    }
    result.compiled_after =
        exec::PlanCompiler::compile(shadow_dp, owners, 0)->signature();
  }

  // Full semantic verification of the post-batch shadow world.
  result.report = verify::verify_deployment(shadow);
  if (ops_ok && result.report.has_errors()) {
    result.error = "verification failed";
  }
  result.ok = ops_ok && !result.report.has_errors();
  return result;
}

std::string Controller::run_plan_gate(const TaskSpec& spec) const {
  const verify::PlanResult result = plan({PlanOp::add(spec)});
  if (result.ok) return {};
  std::string out = result.error;
  const std::string diags = result.report.format(verify::Severity::kError);
  if (!diags.empty()) out += "\n" + diags;
  return out;
}

}  // namespace flymon::control
