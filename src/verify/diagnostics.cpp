#include "verify/diagnostics.hpp"

#include <algorithm>
#include <sstream>

namespace flymon::verify {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

void VerifyReport::add(Severity severity, std::string check, std::string site,
                       std::string message, std::string hint) {
  diags_.push_back(Diagnostic{severity, std::move(check), std::move(site),
                              std::move(message), std::move(hint)});
}

std::size_t VerifyReport::count(Severity s) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [&](const Diagnostic& d) { return d.severity == s; }));
}

bool VerifyReport::has_check(std::string_view check) const noexcept {
  return std::any_of(diags_.begin(), diags_.end(),
                     [&](const Diagnostic& d) { return d.check == check; });
}

std::string VerifyReport::format(Severity min_severity) const {
  std::ostringstream out;
  for (const Diagnostic& d : diags_) {
    if (d.severity < min_severity) continue;
    out << to_string(d.severity) << "  " << d.check << "  " << d.site << "  "
        << d.message;
    if (!d.hint.empty()) out << " (hint: " << d.hint << ")";
    out << '\n';
  }
  return out.str();
}

void VerifyReport::merge(VerifyReport other) {
  diags_.insert(diags_.end(), std::make_move_iterator(other.diags_.begin()),
                std::make_move_iterator(other.diags_.end()));
  analyzers_run.insert(analyzers_run.end(),
                       std::make_move_iterator(other.analyzers_run.begin()),
                       std::make_move_iterator(other.analyzers_run.end()));
}

}  // namespace flymon::verify
