# Empty dependencies file for ablation_rhhh.
# This may be replaced when dependencies are built.
