file(REMOVE_RECURSE
  "libflymon_dataplane.a"
)
