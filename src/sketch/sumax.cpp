#include "sketch/sumax.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace flymon::sketch {

SuMax::SuMax(SuMaxMode mode, unsigned d, std::uint32_t w) : mode_(mode), d_(d), w_(w) {
  if (d == 0 || w == 0) throw std::invalid_argument("SuMax: d and w must be > 0");
  cells_.assign(std::size_t{d} * w, 0u);
}

SuMax SuMax::with_memory(SuMaxMode mode, unsigned d, std::size_t bytes) {
  const std::size_t w = bytes / (std::size_t{4} * d);
  return SuMax(mode, d, static_cast<std::uint32_t>(std::max<std::size_t>(1, w)));
}

void SuMax::update(KeyBytes key, std::uint32_t v) {
  std::uint32_t idx[16];
  for (unsigned r = 0; r < d_; ++r) {
    idx[r] = static_cast<std::uint32_t>(row_hash(key, r, 0x50AAull) % w_);
  }
  if (mode_ == SuMaxMode::kMax) {
    for (unsigned r = 0; r < d_; ++r) {
      auto& c = cells_[std::size_t{r} * w_ + idx[r]];
      c = std::max(c, v);
    }
    return;
  }
  // Sum mode: approximate conservative update — only grow the row counters
  // that currently hold the minimum.
  std::uint32_t cur_min = std::numeric_limits<std::uint32_t>::max();
  for (unsigned r = 0; r < d_; ++r) {
    cur_min = std::min(cur_min, cells_[std::size_t{r} * w_ + idx[r]]);
  }
  for (unsigned r = 0; r < d_; ++r) {
    auto& c = cells_[std::size_t{r} * w_ + idx[r]];
    if (c == cur_min) {
      const std::uint64_t sum = std::uint64_t{c} + v;
      c = sum > std::numeric_limits<std::uint32_t>::max()
              ? std::numeric_limits<std::uint32_t>::max()
              : static_cast<std::uint32_t>(sum);
    }
  }
}

std::uint32_t SuMax::query(KeyBytes key) const {
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  for (unsigned r = 0; r < d_; ++r) {
    best = std::min(best, cells_[std::size_t{r} * w_ + row_hash(key, r, 0x50AAull) % w_]);
  }
  return best;
}

void SuMax::clear() { std::fill(cells_.begin(), cells_.end(), 0u); }

}  // namespace flymon::sketch
