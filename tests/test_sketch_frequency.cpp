// Tests for the frequency-attribute baseline sketches: CountMin,
// CountSketch, SuMax, TowerSketch, MRAC, CounterBraids.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.hpp"
#include "packet/flowkey.hpp"
#include "sketch/count_min.hpp"
#include "sketch/count_sketch.hpp"
#include "sketch/counter_braids.hpp"
#include "sketch/mrac.hpp"
#include "sketch/sumax.hpp"
#include "sketch/tower.hpp"

namespace flymon::sketch {
namespace {

std::vector<std::uint8_t> key(std::uint64_t id) {
  std::vector<std::uint8_t> k(8);
  for (int i = 0; i < 8; ++i) k[i] = static_cast<std::uint8_t>(id >> (8 * i));
  return k;
}

/// Synthetic workload: `n` flows, flow i gets (i % 37) + 1 updates.
std::map<std::uint64_t, std::uint32_t> workload(std::size_t n) {
  std::map<std::uint64_t, std::uint32_t> w;
  for (std::uint64_t i = 0; i < n; ++i) w[i] = static_cast<std::uint32_t>(i % 37) + 1;
  return w;
}

// -------- CountMin --------

TEST(CountMin, RejectsZeroGeometry) {
  EXPECT_THROW(CountMin(0, 8), std::invalid_argument);
  EXPECT_THROW(CountMin(3, 0), std::invalid_argument);
}

TEST(CountMin, ExactAtLowLoad) {
  CountMin cms(3, 4096);
  for (const auto& [id, cnt] : workload(50)) {
    for (std::uint32_t j = 0; j < cnt; ++j) cms.update(key(id));
  }
  for (const auto& [id, cnt] : workload(50)) EXPECT_EQ(cms.query(key(id)), cnt);
}

TEST(CountMin, NeverUnderestimates) {
  CountMin cms(3, 64);  // heavy collisions on purpose
  const auto w = workload(2000);
  for (const auto& [id, cnt] : w) cms.update(key(id), cnt);
  for (const auto& [id, cnt] : w) EXPECT_GE(cms.query(key(id)), cnt);
}

TEST(CountMin, WithMemorySizesWidth) {
  const auto cms = CountMin::with_memory(3, 12 * 1024);
  EXPECT_EQ(cms.width(), 1024u);
  EXPECT_EQ(cms.memory_bytes(), 12u * 1024);
}

TEST(CountMin, ClearResets) {
  CountMin cms(2, 128);
  cms.update(key(1), 100);
  cms.clear();
  EXPECT_EQ(cms.query(key(1)), 0u);
}

TEST(CountMin, SaturatesInsteadOfWrapping) {
  CountMin cms(1, 1);
  cms.update(key(0), 0xFFFF'FFF0u);
  cms.update(key(0), 0x100u);
  EXPECT_EQ(cms.query(key(0)), 0xFFFF'FFFFu);
}

// -------- CountSketch --------

TEST(CountSketch, UnbiasedishAtLowLoad) {
  CountSketch cs(5, 4096);
  for (const auto& [id, cnt] : workload(50)) cs.update(key(id), cnt);
  for (const auto& [id, cnt] : workload(50)) {
    EXPECT_EQ(cs.query(key(id)), static_cast<std::int64_t>(cnt));
  }
}

TEST(CountSketch, F2Estimate) {
  CountSketch cs(5, 8192);
  double f2 = 0;
  for (const auto& [id, cnt] : workload(300)) {
    cs.update(key(id), cnt);
    f2 += static_cast<double>(cnt) * cnt;
  }
  EXPECT_NEAR(cs.f2_estimate(), f2, 0.2 * f2);
}

// -------- SuMax --------

TEST(SuMax, SumModeExactAtLowLoad) {
  SuMax s(SuMaxMode::kSum, 3, 4096);
  const auto w = workload(50);
  for (const auto& [id, cnt] : w) s.update(key(id), cnt);
  for (const auto& [id, cnt] : w) EXPECT_EQ(s.query(key(id)), cnt);
}

TEST(SuMax, SumModeErrorBoundedUnderCollisions) {
  // The approximate conservative update may *slightly* under- or
  // over-estimate (unlike plain CMS it is not one-sided), but errors stay
  // small relative to flow sizes.
  SuMax s(SuMaxMode::kSum, 3, 512);
  const auto w = workload(1000);
  for (const auto& [id, cnt] : w) s.update(key(id), cnt);
  double abs_err = 0, total = 0;
  for (const auto& [id, cnt] : w) {
    abs_err += std::abs(static_cast<double>(s.query(key(id))) - cnt);
    total += cnt;
  }
  EXPECT_LT(abs_err / total, 0.5);
}

TEST(SuMax, SumModeBeatsOrMatchesCountMin) {
  // Conservative-style update must not be worse than plain CMS on the same
  // geometry and workload.
  SuMax s(SuMaxMode::kSum, 3, 256);
  CountMin cms(3, 256);
  Rng rng(9);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t id = rng.next_below(3000);
    truth[id] += 1;
    s.update(key(id), 1);
    cms.update(key(id), 1);
  }
  double err_s = 0, err_c = 0;
  for (const auto& [id, cnt] : truth) {
    err_s += static_cast<double>(s.query(key(id))) - static_cast<double>(cnt);
    err_c += static_cast<double>(cms.query(key(id))) - static_cast<double>(cnt);
  }
  EXPECT_LE(err_s, err_c + 1e-9);
}

TEST(SuMax, MaxModeTracksMaximum) {
  SuMax s(SuMaxMode::kMax, 3, 1024);
  s.update(key(7), 10);
  s.update(key(7), 99);
  s.update(key(7), 55);
  EXPECT_EQ(s.query(key(7)), 99u);
}

TEST(SuMax, MaxModeCollisionsOnlyInflate) {
  SuMax s(SuMaxMode::kMax, 2, 8);
  std::map<std::uint64_t, std::uint32_t> truth;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t id = rng.next_below(50);
    const auto v = static_cast<std::uint32_t>(rng.next_below(1000));
    truth[id] = std::max(truth[id], v);
    s.update(key(id), v);
  }
  for (const auto& [id, mx] : truth) EXPECT_GE(s.query(key(id)), mx);
}

// -------- TowerSketch --------

TEST(Tower, ExactForSmallCountsAtLowLoad) {
  TowerSketch t({8, 16, 32}, 64 * 1024);
  for (const auto& [id, cnt] : workload(60)) t.update(key(id), cnt);
  for (const auto& [id, cnt] : workload(60)) EXPECT_EQ(t.query(key(id)), cnt);
}

TEST(Tower, SaturatedLevelsAreSkipped) {
  TowerSketch t({2, 32}, 1024);
  // Push one key beyond the 2-bit level's capacity (3).
  for (int i = 0; i < 100; ++i) t.update(key(42));
  EXPECT_EQ(t.query(key(42)), 100u) << "wide level must take over";
}

TEST(Tower, NeverUnderestimatesBelowSaturation) {
  TowerSketch t({8, 16}, 2048);
  const auto w = workload(500);
  for (const auto& [id, cnt] : w) t.update(key(id), cnt);
  for (const auto& [id, cnt] : w) EXPECT_GE(t.query(key(id)) + 1, cnt);
}

TEST(Tower, RejectsBadLevels) {
  EXPECT_THROW(TowerSketch({}, 100), std::invalid_argument);
  EXPECT_THROW(TowerSketch({0}, 100), std::invalid_argument);
  EXPECT_THROW(TowerSketch({33}, 100), std::invalid_argument);
}

// -------- MRAC --------

TEST(Mrac, FlowCountEstimate) {
  Mrac m(16384);
  for (std::uint64_t i = 0; i < 1000; ++i) m.update(key(i));
  EXPECT_NEAR(m.estimate_flow_count(), 1000.0, 100.0);
}

TEST(Mrac, SizeDistributionAtLowLoad) {
  Mrac m(65536);
  // 200 flows of size 3, 100 flows of size 8.
  for (std::uint64_t i = 0; i < 200; ++i) m.update(key(i), 3);
  for (std::uint64_t i = 200; i < 300; ++i) m.update(key(i), 8);
  const auto dist = m.estimate_size_distribution();
  EXPECT_NEAR(dist.at(3), 200.0, 30.0);
  EXPECT_NEAR(dist.at(8), 100.0, 20.0);
}

TEST(Mrac, EntropyCloseToTruth) {
  Mrac m(32768);
  Rng rng(17);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t id = rng.next_below(5000);
    truth[id] += 1;
    m.update(key(id));
  }
  double n = 0;
  for (const auto& [id, c] : truth) n += static_cast<double>(c);
  double h = 0;
  for (const auto& [id, c] : truth) {
    const double p = static_cast<double>(c) / n;
    h -= p * std::log(p);
  }
  EXPECT_NEAR(m.estimate_entropy(), h, 0.15 * h);
}

TEST(Mrac, EntropyOfDistributionHelper) {
  // 4 flows of size 1 => uniform over 4 packets => ln 4.
  std::map<std::uint32_t, double> dist{{1, 4.0}};
  EXPECT_NEAR(Mrac::entropy_of_distribution(dist), std::log(4.0), 1e-9);
}

// -------- CounterBraids --------

FlowKeyValue fkv(std::uint32_t id) {
  Packet p;
  p.ft.src_ip = id;
  return extract_flow_key(p, FlowKeySpec::src_ip());
}

TEST(CounterBraids, DecodesExactlyAtLightLoad) {
  CounterBraids cb(4096, 8, 3, 512, 32, 2);
  std::vector<FlowKeyValue> flows;
  std::map<std::uint32_t, std::uint64_t> truth;
  for (std::uint32_t i = 1; i <= 100; ++i) {
    flows.push_back(fkv(i));
    truth[i] = (i % 19) + 1;
    const auto& k = flows.back();
    cb.update({k.bytes.data(), k.bytes.size()},
              static_cast<std::uint32_t>(truth[i]));
  }
  const auto decoded = cb.decode(flows);
  unsigned exact = 0;
  for (std::uint32_t i = 1; i <= 100; ++i) {
    if (decoded.at(fkv(i)) == truth[i]) ++exact;
  }
  EXPECT_GE(exact, 95u) << "light braid loads decode (nearly) exactly";
}

TEST(CounterBraids, CarriesOverflowToLayer2) {
  CounterBraids cb(64, 4, 2, 64, 32, 2);  // 4-bit layer-1 wraps at 16
  const auto k = fkv(7);
  for (int i = 0; i < 1000; ++i) cb.update({k.bytes.data(), k.bytes.size()});
  // Upper bound must see (roughly) the full 1000 despite 4-bit counters.
  EXPECT_GE(cb.query_upper_bound({k.bytes.data(), k.bytes.size()}), 1000u);
}

TEST(CounterBraids, UpperBoundNeverUnderestimates) {
  CounterBraids cb(256, 8, 3, 128, 32, 2);
  std::map<std::uint32_t, std::uint64_t> truth;
  for (std::uint32_t i = 1; i <= 60; ++i) {
    truth[i] = i * 7;
    const auto k = fkv(i);
    cb.update({k.bytes.data(), k.bytes.size()}, static_cast<std::uint32_t>(truth[i]));
  }
  for (std::uint32_t i = 1; i <= 60; ++i) {
    const auto k = fkv(i);
    EXPECT_GE(cb.query_upper_bound({k.bytes.data(), k.bytes.size()}) + 1, truth[i]);
  }
}

TEST(CounterBraids, RejectsBadGeometry) {
  EXPECT_THROW(CounterBraids(0, 8, 3, 16, 32, 2), std::invalid_argument);
  EXPECT_THROW(CounterBraids(16, 32, 3, 16, 32, 2), std::invalid_argument);
  EXPECT_THROW(CounterBraids(16, 8, 0, 16, 32, 2), std::invalid_argument);
}

// -------- parameterized sweeps --------

struct CmsGeom {
  unsigned d;
  std::uint32_t w;
};

class CmsGeometry : public ::testing::TestWithParam<CmsGeom> {};

TEST_P(CmsGeometry, NoUnderestimateInvariant) {
  const auto [d, w] = GetParam();
  CountMin cms(d, w);
  Rng rng(d * 1000 + w);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t id = rng.next_below(800);
    truth[id] += 1;
    cms.update(key(id));
  }
  for (const auto& [id, cnt] : truth) EXPECT_GE(cms.query(key(id)), cnt);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CmsGeometry,
                         ::testing::Values(CmsGeom{1, 16}, CmsGeom{2, 64},
                                           CmsGeom{3, 256}, CmsGeom{4, 1024},
                                           CmsGeom{5, 64}, CmsGeom{8, 32}));

}  // namespace
}  // namespace flymon::sketch
