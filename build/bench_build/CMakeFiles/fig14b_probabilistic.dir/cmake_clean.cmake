file(REMOVE_RECURSE
  "../bench/fig14b_probabilistic"
  "../bench/fig14b_probabilistic.pdb"
  "CMakeFiles/fig14b_probabilistic.dir/fig14b_probabilistic.cpp.o"
  "CMakeFiles/fig14b_probabilistic.dir/fig14b_probabilistic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14b_probabilistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
