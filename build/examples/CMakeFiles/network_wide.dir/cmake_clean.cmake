file(REMOVE_RECURSE
  "CMakeFiles/network_wide.dir/network_wide.cpp.o"
  "CMakeFiles/network_wide.dir/network_wide.cpp.o.d"
  "network_wide"
  "network_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
