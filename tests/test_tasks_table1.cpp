// Breadth test over the paper's Table 1: every measurement task named
// there is expressible as a (key, attribute, params) combination and runs
// end-to-end on the same CMU hardware, plus the snapshot-based heavy
// changer.
#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "control/controller.hpp"
#include "packet/trace_gen.hpp"

namespace flymon {
namespace {

struct World {
  FlyMonDataPlane dp{9};
  control::Controller ctl{dp};
};

TEST(Table1, DdosVictim_DstIpDistinctSrcIp) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::dst_ip();
  s.attribute = AttributeKind::kDistinct;
  s.param = ParamSpec::compressed(FlowKeySpec::src_ip());
  s.report_threshold = 512;
  s.memory_buckets = 16384;
  s.rows = 3;
  EXPECT_TRUE(w.ctl.add_task(s).ok);
}

TEST(Table1, Worm_SrcIpDistinctDstIp) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::src_ip();
  s.attribute = AttributeKind::kDistinct;
  s.param = ParamSpec::compressed(FlowKeySpec::dst_ip());
  s.report_threshold = 256;
  s.memory_buckets = 16384;
  s.rows = 3;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;

  // A worm scanner touches many destinations from one source.
  TraceConfig cfg;
  cfg.num_flows = 2000;
  cfg.num_packets = 30'000;
  auto trace = TraceGenerator::generate(cfg);
  for (unsigned i = 0; i < 600; ++i) {
    Packet p;
    p.ft.src_ip = 0x0A424242;  // the worm host
    p.ft.dst_ip = 0xC0A80000 + i;
    p.ft.dst_port = 445;
    p.ft.protocol = 6;
    p.ts_ns = i * 1000;
    trace.push_back(p);
  }
  w.dp.process_all(trace);

  Packet worm_probe;
  worm_probe.ft.src_ip = 0x0A424242;
  EXPECT_TRUE(w.ctl.distinct_over_threshold(r.task_id, worm_probe));
}

TEST(Table1, PortScan_IpPairDistinctDstPort) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::ip_pair();
  s.attribute = AttributeKind::kDistinct;
  s.param = ParamSpec::compressed(FlowKeySpec::dst_port());
  s.report_threshold = 128;
  s.memory_buckets = 16384;
  s.rows = 3;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;

  std::vector<Packet> trace;
  // Scanner sweeps 400 ports on one victim; a normal pair uses 3 ports.
  for (unsigned i = 0; i < 400; ++i) {
    Packet p;
    p.ft.src_ip = 0x0A111111;
    p.ft.dst_ip = 0xC0A80042;
    p.ft.dst_port = static_cast<std::uint16_t>(i + 1);
    p.ft.protocol = 6;
    p.ts_ns = i;
    trace.push_back(p);
  }
  for (unsigned i = 0; i < 400; ++i) {
    Packet p;
    p.ft.src_ip = 0x0A222222;
    p.ft.dst_ip = 0xC0A80043;
    p.ft.dst_port = static_cast<std::uint16_t>(80 + (i % 3));
    p.ft.protocol = 6;
    p.ts_ns = 1'000'000 + i;
    trace.push_back(p);
  }
  w.dp.process_all(trace);

  Packet scanner = trace[0];
  Packet normal = trace[500];
  EXPECT_TRUE(w.ctl.distinct_over_threshold(r.task_id, scanner));
  EXPECT_FALSE(w.ctl.distinct_over_threshold(r.task_id, normal));
}

TEST(Table1, PerFlowBytes_FlowIdFrequencyPktBytes) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.param = ParamSpec::metadata(MetaField::kWireBytes);
  s.memory_buckets = 16384;
  s.rows = 3;
  EXPECT_TRUE(w.ctl.add_task(s).ok);
}

TEST(Table1, Blacklist_ExistenceFlowId) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kExistence;
  s.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  s.memory_buckets = 8192;
  s.rows = 3;
  EXPECT_TRUE(w.ctl.add_task(s).ok);
}

TEST(Table1, Congestion_MaxQueueLength) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kMax;
  s.param = ParamSpec::metadata(MetaField::kQueueLen);
  s.memory_buckets = 16384;
  s.rows = 2;
  EXPECT_TRUE(w.ctl.add_task(s).ok);
}

TEST(Table1, HolBlocking_MaxQueueDelay) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kMax;
  s.param = ParamSpec::metadata(MetaField::kQueueDelay);
  s.memory_buckets = 16384;
  s.rows = 2;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;

  TraceConfig cfg;
  cfg.num_flows = 500;
  cfg.num_packets = 20'000;
  const auto trace = TraceGenerator::generate(cfg);
  w.dp.process_all(trace);
  const FreqMap truth =
      ExactStats::max_value(trace, s.key, MetaField::kQueueDelay);
  unsigned checked = 0, exact = 0;
  for (const auto& [k, mx] : truth) {
    const auto est = w.ctl.query_value(r.task_id, packet_from_candidate_key(k.bytes));
    exact += (est == mx);
    ++checked;
  }
  EXPECT_GT(static_cast<double>(exact) / checked, 0.95);
}

TEST(Table1, HeavyChanger_SnapshotDelta) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 32768;
  s.rows = 3;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok);

  // Epoch 1: background only.  Epoch 2: one flow explodes, one vanishes.
  TraceConfig cfg;
  cfg.num_flows = 1000;
  cfg.num_packets = 50'000;
  const auto epoch1 = TraceGenerator::generate(cfg);
  w.dp.process_all(epoch1);
  const auto snap = w.ctl.snapshot_task(r.task_id);

  const FreqMap truth1 = ExactStats::frequency(epoch1, s.key);
  // Build epoch 2 = epoch 1 minus the biggest flow, plus a brand-new
  // elephant.
  FlowKeyValue vanished;
  std::uint64_t biggest = 0;
  for (const auto& [k, f] : truth1) {
    if (f > biggest) {
      biggest = f;
      vanished = k;
    }
  }
  std::vector<Packet> epoch2;
  for (const Packet& p : epoch1) {
    if (!(extract_flow_key(p, s.key) == vanished)) epoch2.push_back(p);
  }
  Packet elephant;
  elephant.ft = FiveTuple{0x0AFEFEFE, 0xC0A8FE01, 1234, 80, 6};
  for (int i = 0; i < 5000; ++i) {
    elephant.ts_ns = static_cast<std::uint64_t>(i) * 1000;
    epoch2.push_back(elephant);
  }

  w.dp.clear_registers();
  w.dp.process_all(epoch2);

  std::vector<FlowKeyValue> candidates;
  for (const auto& [k, f] : truth1) candidates.push_back(k);
  candidates.push_back(extract_flow_key(elephant, s.key));

  const auto changers = w.ctl.detect_heavy_changers(r.task_id, snap, candidates, 2000);
  std::unordered_set<FlowKeyValue> reported(changers.begin(), changers.end());
  EXPECT_TRUE(reported.count(extract_flow_key(elephant, s.key))) << "new elephant";
  EXPECT_TRUE(reported.count(vanished)) << "vanished flow";
  EXPECT_LE(changers.size(), 5u) << "stable flows must not be reported";
}

TEST(Table1, AllAttributesCoexistOnOnePipe) {
  // One task per attribute, simultaneously (the paper's headline ability).
  World w;
  unsigned deployed = 0;
  TaskSpec f;
  f.key = FlowKeySpec::five_tuple();
  f.attribute = AttributeKind::kFrequency;
  f.memory_buckets = 16384;
  f.rows = 3;
  deployed += w.ctl.add_task(f).ok;

  TaskSpec d;
  d.key = FlowKeySpec::dst_ip();
  d.attribute = AttributeKind::kDistinct;
  d.param = ParamSpec::compressed(FlowKeySpec::src_ip());
  d.report_threshold = 512;
  d.memory_buckets = 16384;
  d.rows = 3;
  deployed += w.ctl.add_task(d).ok;

  TaskSpec e;
  e.key = FlowKeySpec::five_tuple();
  e.attribute = AttributeKind::kExistence;
  e.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  e.filter = TaskFilter::src(0x0A000000, 8);
  e.memory_buckets = 8192;
  e.rows = 3;
  deployed += w.ctl.add_task(e).ok;

  TaskSpec m;
  m.key = FlowKeySpec::ip_pair();
  m.attribute = AttributeKind::kMax;
  m.param = ParamSpec::metadata(MetaField::kQueueLen);
  m.memory_buckets = 16384;
  m.rows = 2;
  deployed += w.ctl.add_task(m).ok;

  TaskSpec sim;
  sim.key = FlowKeySpec{0, 32, 16, 16, 8, 0};
  sim.attribute = AttributeKind::kSimilarity;
  sim.filter = TaskFilter::src(0x0B000000, 8);
  sim.memory_buckets = 8192;
  deployed += w.ctl.add_task(sim).ok;

  EXPECT_EQ(deployed, 5u) << "all five attributes live concurrently";
  EXPECT_EQ(w.ctl.num_tasks(), 5u);
}

}  // namespace
}  // namespace flymon
