// Paper Figure 14a: heavy-hitter detection F1 score vs memory for
// FlyMon-BeauCoup / FlyMon-CMS / FlyMon-SuMax (all d=3), UnivMon, and the
// original BeauCoup (d=1 and d=3).  Threshold 1024 packets.
#include "bench/bench_util.hpp"
#include "sketch/beaucoup.hpp"
#include "sketch/univmon.hpp"

using namespace flymon;

namespace {

constexpr std::uint64_t kThreshold = 1024;

double flymon_f1(Algorithm algo, std::size_t mem_bytes,
                 const std::vector<Packet>& trace, const FreqMap& truth,
                 const std::vector<FlowKeyValue>& hh_true) {
  TaskSpec spec;
  spec.key = FlowKeySpec::five_tuple();
  spec.rows = 3;
  if (algo == Algorithm::kBeauCoup) {
    spec.attribute = AttributeKind::kDistinct;
    // HH via distinct timestamps (paper §5.3): with ~1 us granularity the
    // number of distinct timestamps tracks the packet count.
    spec.param = ParamSpec::compressed(FlowKeySpec::timestamp());
    spec.algorithm = Algorithm::kBeauCoup;
    spec.report_threshold = kThreshold;
  } else {
    spec.attribute = AttributeKind::kFrequency;
    spec.algorithm = algo;
  }
  spec.memory_buckets =
      static_cast<std::uint32_t>(std::max<std::size_t>(32, mem_bytes / (4 * spec.rows)));
  auto inst = bench::deploy_flymon(spec);
  if (!inst.ok) return -1;
  inst.dp->process_all(trace);
  const auto reported = inst.ctl->detect_over_threshold(
      inst.task_id, bench::keys_of(truth), kThreshold);
  return analysis::score_detection(hh_true, reported).f1();
}

double beaucoup_f1(unsigned d, std::size_t mem_bytes, const std::vector<Packet>& trace,
                   const FreqMap& truth, const std::vector<FlowKeyValue>& hh_true) {
  auto cfg = sketch::CouponConfig::for_threshold(kThreshold, 32, 32);
  auto bc = sketch::BeauCoup::with_memory(d, mem_bytes, cfg);
  for (const Packet& p : trace) {
    const FlowKeyValue k = extract_flow_key(p, FlowKeySpec::five_tuple());
    const FlowKeyValue ts = extract_flow_key(p, FlowKeySpec::timestamp());
    bc.update({k.bytes.data(), k.bytes.size()}, {ts.bytes.data(), ts.bytes.size()});
  }
  std::vector<FlowKeyValue> reported;
  for (const auto& [k, f] : truth) {
    if (bc.reported({k.bytes.data(), k.bytes.size()})) reported.push_back(k);
  }
  return analysis::score_detection(hh_true, reported).f1();
}

double univmon_f1(std::size_t mem_bytes, const std::vector<Packet>& trace,
                  const std::vector<FlowKeyValue>& hh_true) {
  auto um = sketch::UnivMon::with_memory(mem_bytes);
  for (const Packet& p : trace) um.update(extract_flow_key(p, FlowKeySpec::five_tuple()));
  std::vector<FlowKeyValue> reported;
  for (const auto& [k, est] : um.heavy_hitters(kThreshold)) reported.push_back(k);
  return analysis::score_detection(hh_true, reported).f1();
}

}  // namespace

int main() {
  bench::header("Figure 14a", "Heavy hitters: F1 vs memory (threshold 1024)");

  TraceConfig cfg;
  cfg.num_flows = 20'000;
  cfg.num_packets = 1'000'000;
  cfg.zipf_alpha = 1.05;
  const auto trace = TraceGenerator::generate(cfg);
  const FreqMap truth = ExactStats::frequency(trace, FlowKeySpec::five_tuple());
  const auto hh_true = ExactStats::over_threshold(truth, kThreshold);
  std::printf("trace: %zu pkts, %zu flows, %zu true heavy hitters\n\n", trace.size(),
              truth.size(), hh_true.size());

  std::printf("%10s %12s %12s %12s %10s %12s %12s\n", "memory", "FM-BeauCoup",
              "FM-CMS", "FM-SuMax", "UnivMon", "BeauCoup d1", "BeauCoup d3");
  for (std::size_t kb : {16u, 32u, 64u, 128u, 256u, 512u}) {
    const std::size_t bytes = kb * 1024;
    std::printf("%10s %12.3f %12.3f %12.3f %10.3f %12.3f %12.3f\n",
                bench::fmt_mem(bytes).c_str(),
                flymon_f1(Algorithm::kBeauCoup, bytes, trace, truth, hh_true),
                flymon_f1(Algorithm::kCms, bytes, trace, truth, hh_true),
                flymon_f1(Algorithm::kSuMaxSum, bytes, trace, truth, hh_true),
                univmon_f1(bytes, trace, hh_true),
                beaucoup_f1(1, bytes, trace, truth, hh_true),
                beaucoup_f1(3, bytes, trace, truth, hh_true));
  }
  std::printf("\n(paper: counter-based algorithms reach F1 > 0.99 at 100 KB; "
              "FlyMon-SuMax is the most memory-efficient)\n");
  return 0;
}
