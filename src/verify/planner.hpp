// Dry-run reconfiguration planner: Controller::plan() stages a batch of
// deploy/resize/split/remove operations against a cloned shadow world,
// runs every analyzer over the result, and returns the combined
// diagnostics.  The live data plane is untouched by construction — the
// shadow has its own FlyMonDataPlane, Controller and telemetry registry.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "verify/diagnostics.hpp"

namespace flymon::verify {

/// Outcome of one staged op as replayed on the shadow world.
struct PlanOpResult {
  control::PlanOp op{};
  bool ok = false;
  std::string detail;  ///< deploy summary or failure reason
};

/// Result of one Controller::plan() call.
struct PlanResult {
  /// Every op applied cleanly AND the post-batch verification has no
  /// errors (warnings do not fail a plan).
  bool ok = false;
  /// First failure: replay error, op error, or "verification failed".
  std::string error;
  /// Per-op outcomes, in order; stops at the first failed op.
  std::vector<PlanOpResult> ops;
  /// Full analyzer report over the shadow world after the batch.  When an
  /// op fails the report covers the shadow state up to that op.
  VerifyReport report;
  /// Live public task id -> shadow task id for tasks that survived the
  /// batch (replayed and not removed/split).
  std::map<std::uint32_t, std::uint32_t> id_map;

  /// Compiled-entry signature lines (exec::ExecPlan::signature) of the
  /// live world before the batch and of the post-batch shadow world,
  /// shadow ids translated back to live ids where a mapping exists (tasks
  /// minted by the batch are tagged "(new)").  Render with
  /// format_plan_diff().
  std::vector<std::string> compiled_before;
  std::vector<std::string> compiled_after;

  std::string format() const;
};

/// Unified added/removed view of two compiled-entry signature sets: what
/// the reconfiguration batch would change in the published ExecPlan.
std::string format_plan_diff(const std::vector<std::string>& before,
                             const std::vector<std::string>& after);

}  // namespace flymon::verify
