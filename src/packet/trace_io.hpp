// Binary trace persistence: a compact fixed-record format so generated
// workloads (or converted real captures) can be saved once and replayed
// across benchmark runs.
#pragma once

#include <string>
#include <vector>

#include "packet/packet.hpp"

namespace flymon {

/// File layout: 16-byte header (magic "FMTR", version, record count) then
/// packed 29-byte records in little-endian field order.
class TraceIo {
 public:
  static constexpr std::uint32_t kMagic = 0x464D'5452;  // "FMTR"
  static constexpr std::uint32_t kVersion = 1;

  /// Write the trace; throws std::runtime_error on I/O failure.
  static void save(const std::string& path, const std::vector<Packet>& trace);

  /// Read a trace written by save(); throws on I/O error, bad magic or
  /// version mismatch.
  static std::vector<Packet> load(const std::string& path);
};

}  // namespace flymon
