file(REMOVE_RECURSE
  "../bench/fig13b_crossstacking"
  "../bench/fig13b_crossstacking.pdb"
  "CMakeFiles/fig13b_crossstacking.dir/fig13b_crossstacking.cpp.o"
  "CMakeFiles/fig13b_crossstacking.dir/fig13b_crossstacking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_crossstacking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
