# Empty dependencies file for flymon_common.
# This may be replaced when dependencies are built.
