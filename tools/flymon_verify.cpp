// flymon_verify: CI entry point for the static deployment verifier.
//
//   flymon_verify                 verify the built-in full-capacity scenario
//                                 (9 groups / 27 CMUs of mixed Table-1 tasks)
//   flymon_verify --scenario F    execute shell command lines from file F
//                                 (one per line, '#' comments), then verify
//   flymon_verify --selftest[=P]  seeded-corruption catalogue: every mutation
//                                 must be flagged with its expected check id
//                                 (P restricts to mutation names starting
//                                 with P, e.g. --selftest=dataflow-)
//   flymon_verify --mutate NAME   corrupt a fresh world with one mutation and
//                                 report its diagnostics (exit 1 when any
//                                 diagnostic fires — the expected outcome)
//   flymon_verify --dataflow      verify through the dry-run planner
//                                 (Controller::plan with an empty batch)
//   flymon_verify --translate     translation-validate the scenario's
//                                 compiled ExecPlan: symbolically check every
//                                 compiled entry against the interpreted CMU
//                                 semantics and prove the shard merge sound
//                                 (exit 1 on any divergence diagnostic)
//   flymon_verify --plan-diff F   stage the 'plan' sub-commands from file F
//                                 (one per line, without the 'plan ' prefix,
//                                 e.g. "add name=x ..." / "remove 3") against
//                                 the scenario deployment and print which
//                                 compiled ExecPlan entries the batch would
//                                 add/remove — without touching the pipeline
//   flymon_verify --paranoid      additionally gate every deploy on the
//                                 verifier while the scenario runs
//   flymon_verify --json PATH     also write the machine-readable report
//                                 (verify report or self-test result) to PATH
//
// Exit status: 0 when verification is clean of errors (and the self-test
// passes), 1 otherwise.  --mutate inverts the meaning: a clean report is the
// failure, a flagged one the success (exit 1 marks "diagnostics present"
// so CI asserts each seeded corruption actually fires).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "control/crossstack.hpp"
#include "control/shell.hpp"
#include "core/flymon_dataplane.hpp"
#include "telemetry/export.hpp"
#include "verify/mutations.hpp"
#include "verify/planner.hpp"
#include "verify/translate/translate.hpp"
#include "verify/verifier.hpp"

namespace {

// Nine 3-row tasks with pairwise-intersecting full-rate filters: the
// controller spreads them one per CMU Group, so all 27 CMUs host a task.
const char* const kDefaultScenario[] = {
    "add name=heavy-hitter key=SrcIP attr=Frequency algo=CMS mem=4096",
    "add name=size-dist key=SrcIP+DstIP attr=Frequency algo=Tower mem=8192",
    "add name=blacklist key=IPPair attr=Existence algo=BloomFilter mem=16384",
    "add name=congestion key=DstIP attr=Max algo=SuMaxMax param=QueueLen mem=4096",
    "add name=port-scan key=SrcIP attr=Distinct algo=BeauCoup param=key:DstPort "
    "threshold=100 mem=8192",
    "add name=heavy-hitter-10 key=DstIP attr=Frequency algo=CMS mem=4096 "
    "filter=10.0.0.0/8",
    "add name=flow-size key=5Tuple attr=Frequency algo=Tower mem=8192",
    "add name=seen-sources key=SrcIP attr=Existence algo=BloomFilter mem=8192",
    "add name=max-bytes key=SrcIP attr=Max algo=SuMaxMax param=Bytes mem=4096",
};

bool write_json(const std::string& path, const std::string& text) {
  if (path.empty()) return true;
  if (!flymon::telemetry::write_file(path, text)) {
    std::cerr << "error: cannot write '" << path << "'\n";
    return false;
  }
  return true;
}

int run_selftest(const std::string& prefix, const std::string& json_path) {
  const auto result = flymon::verify::run_mutation_self_test(prefix);
  std::cout << flymon::verify::format(result);
  if (result.cases.empty()) {
    std::cerr << "error: no mutation matches prefix '" << prefix << "'\n";
    return 1;
  }
  std::cout << (result.passed() ? "selftest passed" : "selftest FAILED") << '\n';
  if (!write_json(json_path, flymon::verify::to_json(result))) return 1;
  return result.passed() ? 0 : 1;
}

int run_mutate(const std::string& name, const std::string& json_path) {
  const auto report = flymon::verify::run_single_mutation(name);
  if (!report) {
    std::cerr << "error: unknown mutation '" << name << "' (--selftest lists)\n";
    return 1;
  }
  std::cout << report->format();
  if (!write_json(json_path, flymon::verify::to_json(*report))) return 1;
  // Inverted: the seeded corruption is expected to produce diagnostics.
  return report->empty() ? 0 : 1;
}

std::vector<std::string> load_scenario(const std::string& path, bool& ok) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  ok = in.good();
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  bool selftest = false;
  bool paranoid = false;
  bool dataflow = false;
  bool translate = false;
  std::string selftest_prefix;
  std::string mutate_name;
  std::string scenario_path;
  std::string plan_diff_path;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest") {
      selftest = true;
    } else if (arg.rfind("--selftest=", 0) == 0) {
      selftest = true;
      selftest_prefix = arg.substr(11);
    } else if (arg == "--mutate" && i + 1 < argc) {
      mutate_name = argv[++i];
    } else if (arg == "--paranoid") {
      paranoid = true;
    } else if (arg == "--dataflow") {
      dataflow = true;
    } else if (arg == "--translate") {
      translate = true;
    } else if (arg == "--scenario" && i + 1 < argc) {
      scenario_path = argv[++i];
    } else if (arg == "--plan-diff" && i + 1 < argc) {
      plan_diff_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: flymon_verify [--scenario <file>] [--paranoid] "
                   "[--dataflow] [--translate] [--plan-diff <opsfile>] "
                   "[--selftest[=prefix]] [--mutate <name>] [--json <path>]\n";
      return 0;
    } else {
      std::cerr << "error: unknown argument '" << arg << "' (--help)\n";
      return 1;
    }
  }

  if (selftest) return run_selftest(selftest_prefix, json_path);
  if (!mutate_name.empty()) return run_mutate(mutate_name, json_path);

  std::vector<std::string> lines(std::begin(kDefaultScenario),
                                 std::end(kDefaultScenario));
  if (!scenario_path.empty()) {
    bool ok = false;
    lines = load_scenario(scenario_path, ok);
    if (!ok) {
      std::cerr << "error: cannot read scenario '" << scenario_path << "'\n";
      return 1;
    }
  }

  flymon::FlyMonDataPlane dp(9);
  flymon::control::Controller ctl(dp);
  ctl.set_paranoid(paranoid);
  flymon::control::Shell shell(ctl);
  for (const std::string& line : lines) {
    const auto hash = line.find('#');
    std::istringstream trimmed(hash == std::string::npos ? line
                                                         : line.substr(0, hash));
    std::string first;
    if (!(trimmed >> first)) continue;  // blank / comment-only line
    const std::string response = shell.execute(line.substr(0, hash));
    if (response.rfind("error:", 0) == 0) {
      std::cerr << "scenario failed at '" << line << "': " << response << '\n';
      return 1;
    }
    std::cout << response << '\n';
  }

  if (!plan_diff_path.empty()) {
    // Stage the ops file as a 'plan' batch and print the compiled-entry
    // diff a commit would cause.  Dry-run only: the live pipeline keeps
    // running the scenario deployment.
    bool ok = false;
    const std::vector<std::string> ops = load_scenario(plan_diff_path, ok);
    if (!ok) {
      std::cerr << "error: cannot read ops file '" << plan_diff_path << "'\n";
      return 1;
    }
    for (const std::string& line : ops) {
      const auto hash = line.find('#');
      std::istringstream trimmed(
          hash == std::string::npos ? line : line.substr(0, hash));
      std::string first;
      if (!(trimmed >> first)) continue;  // blank / comment-only line
      const std::string response =
          shell.execute("plan " + line.substr(0, hash));
      if (response.rfind("error:", 0) == 0) {
        std::cerr << "staging failed at '" << line << "': " << response << '\n';
        return 1;
      }
    }
    const std::string diff = shell.execute("plan diff");
    std::cout << diff << '\n';
    if (!write_json(json_path, "{\"plan_diff\":\"" +
                                   flymon::telemetry::json_escape(diff) +
                                   "\"}\n")) {
      return 1;
    }
    return diff.find("note: plan FAILED") == std::string::npos ? 0 : 1;
  }

  if (translate) {
    // Translation-validate the compiled plan the scenario published: the
    // deploys above recompiled after every add, so current_plan() is the
    // plan that would serve traffic right now.
    const auto plan = dp.current_plan();
    if (plan == nullptr) {
      std::cerr << "error: scenario published no compiled plan\n";
      return 1;
    }
    const flymon::verify::VerifyReport report =
        flymon::verify::validate_plan(dp, *plan);
    std::cout << report.format();
    std::cout << "plan generation " << plan->generation() << ": "
              << plan->num_entries() << " compiled entries, "
              << report.count(flymon::verify::Severity::kError)
              << " divergence error(s), "
              << report.count(flymon::verify::Severity::kWarning)
              << " warning(s)\n";
    if (!write_json(json_path, flymon::verify::to_json(report))) return 1;
    return report.has_errors() ? 1 : 0;
  }

  flymon::verify::VerifyReport report;
  if (dataflow) {
    // Route through the dry-run planner: replay the deployment on a shadow
    // world, run all analyzers there, leave the live pipeline untouched.
    const flymon::verify::PlanResult plan_result = ctl.plan({});
    if (!plan_result.error.empty() &&
        plan_result.error != "verification failed") {
      std::cerr << "plan replay failed: " << plan_result.error << '\n';
      return 1;
    }
    report = plan_result.report;
  } else {
    const auto plan = flymon::control::cross_stack(
        flymon::dataplane::TofinoModel::kNumStages, dp.group(0).config());
    report = flymon::verify::verify_deployment(ctl, &plan);
  }
  std::cout << report.format();
  std::cout << ctl.num_tasks() << " task(s), "
            << report.count(flymon::verify::Severity::kError) << " error(s), "
            << report.count(flymon::verify::Severity::kWarning)
            << " warning(s)\n";
  if (!write_json(json_path, flymon::verify::to_json(report))) return 1;
  return report.has_errors() ? 1 : 0;
}
