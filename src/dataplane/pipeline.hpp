// The 12-stage RMT pipeline: per-stage resource ledgers plus the shared
// PHV bit budget.
#pragma once

#include <cstdint>
#include <vector>

#include "dataplane/mau_stage.hpp"
#include "dataplane/tofino_model.hpp"

namespace flymon::dataplane {

class Pipeline {
 public:
  explicit Pipeline(unsigned num_stages = TofinoModel::kNumStages,
                    unsigned phv_bits = TofinoModel::kPhvBits);

  unsigned num_stages() const noexcept { return static_cast<unsigned>(stages_.size()); }
  MauStage& stage(unsigned i) { return stages_.at(i); }
  const MauStage& stage(unsigned i) const { return stages_.at(i); }

  /// PHV is a whole-pipe resource.
  bool allocate_phv(unsigned bits) noexcept;
  void release_phv(unsigned bits) noexcept;
  unsigned phv_used() const noexcept { return phv_used_; }
  unsigned phv_capacity() const noexcept { return phv_bits_; }
  double phv_utilization() const noexcept {
    return phv_bits_ == 0 ? 0.0 : static_cast<double>(phv_used_) / phv_bits_;
  }

  /// Average utilisation of a resource across all stages.
  double utilization(Resource r) const noexcept;

  /// Total used / total capacity for a resource across all stages.
  std::uint64_t total_used(Resource r) const noexcept;
  std::uint64_t total_capacity(Resource r) const noexcept;

 private:
  std::vector<MauStage> stages_;
  unsigned phv_bits_;
  unsigned phv_used_ = 0;
};

}  // namespace flymon::dataplane
