// The common analyzer interface of the static deployment verifier.  Each
// analyzer inspects a (Controller, FlyMonDataPlane) snapshot — never the
// packet path — and appends structured diagnostics.
#pragma once

#include <string_view>

#include "control/controller.hpp"
#include "control/crossstack.hpp"
#include "verify/diagnostics.hpp"

namespace flymon::exec {
class ExecPlan;
}  // namespace flymon::exec

namespace flymon::verify {

/// Read-only snapshot the analyzers run over.  `plan` is optional: when a
/// cross-stacking plan is supplied the resource analyzer audits it against
/// the pipeline capacity; otherwise it re-derives one from the data-plane
/// configuration.  `allow_wrap` permits spliced (recirculating) plans whose
/// groups wrap around the pipe end (paper Appendix E).
struct VerifyContext {
  const control::Controller* controller = nullptr;
  const FlyMonDataPlane* dataplane = nullptr;
  const control::CrossStackPlan* plan = nullptr;
  bool allow_wrap = false;
  /// Epoch packet budget assumed by the value-range analysis: a Cond-ADD
  /// counter is "overflow-safe" when neither its p2 guard nor this many
  /// worst-case increments can push it past the register's value mask.
  std::uint64_t packets_per_epoch = 1ull << 26;
  /// Compiled plan for the translation-validation analyzers ("translate",
  /// "merge").  Deliberately NOT defaulted to the data plane's current
  /// plan: deploy-time verify gates run *before* recompilation, where the
  /// current plan legitimately describes the previous deployment.  Callers
  /// with a plan in hand (publish gate, --translate, self-test) set it
  /// explicitly; when null those analyzers are silent no-ops.
  const exec::ExecPlan* exec_plan = nullptr;
};

class Analyzer {
 public:
  virtual ~Analyzer() = default;
  /// Stable short name ("resources", "tcam", "memory", "tasks").
  virtual std::string_view name() const noexcept = 0;
  virtual std::string_view description() const noexcept = 0;
  virtual void run(const VerifyContext& ctx, VerifyReport& report) const = 0;
};

}  // namespace flymon::verify
