// Paper Figure 14c: DDoS victim detection F1 vs memory — FlyMon-BeauCoup
// (multiple coupon tables, cross-table AND) vs the original BeauCoup
// (per-slot checksums), both at d=1 and d=3.  Threshold: 512 distinct
// sources per destination.
#include "bench/bench_util.hpp"
#include "sketch/beaucoup.hpp"

using namespace flymon;

namespace {

constexpr std::uint64_t kThreshold = 512;

double flymon_f1(unsigned d, std::size_t mem_bytes, const std::vector<Packet>& trace,
                 const FreqMap& truth, const std::vector<FlowKeyValue>& victims) {
  TaskSpec spec;
  spec.key = FlowKeySpec::dst_ip();
  spec.attribute = AttributeKind::kDistinct;
  spec.param = ParamSpec::compressed(FlowKeySpec::src_ip());
  spec.algorithm = Algorithm::kBeauCoup;
  spec.report_threshold = kThreshold;
  spec.rows = d;
  spec.memory_buckets =
      static_cast<std::uint32_t>(std::max<std::size_t>(32, mem_bytes / (4 * d)));
  auto inst = bench::deploy_flymon(spec);
  if (!inst.ok) return -1;
  inst.dp->process_all(trace);
  const auto reported = inst.ctl->detect_over_threshold(
      inst.task_id, bench::keys_of(truth), kThreshold);
  return analysis::score_detection(victims, reported).f1();
}

double beaucoup_f1(unsigned d, std::size_t mem_bytes, const std::vector<Packet>& trace,
                   const FreqMap& truth, const std::vector<FlowKeyValue>& victims) {
  auto cfg = sketch::CouponConfig::for_threshold(kThreshold, 32, 32);
  auto bc = sketch::BeauCoup::with_memory(d, mem_bytes, cfg);
  for (const Packet& p : trace) {
    const FlowKeyValue k = extract_flow_key(p, FlowKeySpec::dst_ip());
    const FlowKeyValue src = extract_flow_key(p, FlowKeySpec::src_ip());
    bc.update({k.bytes.data(), k.bytes.size()}, {src.bytes.data(), src.bytes.size()});
  }
  std::vector<FlowKeyValue> reported;
  for (const auto& [k, f] : truth) {
    if (bc.reported({k.bytes.data(), k.bytes.size()})) reported.push_back(k);
  }
  return analysis::score_detection(victims, reported).f1();
}

}  // namespace

int main() {
  bench::header("Figure 14c", "DDoS victims: F1 vs memory (threshold 512 sources)");

  TraceConfig cfg;
  cfg.num_flows = 10'000;
  cfg.num_packets = 400'000;
  auto trace = TraceGenerator::generate(cfg);
  DdosConfig ddos;
  ddos.num_victims = 50;
  ddos.spreaders_per_victim = 1200;
  TraceGenerator::inject_ddos(trace, ddos, cfg.duration_ns);

  const FreqMap truth = ExactStats::distinct(trace, FlowKeySpec::dst_ip(),
                                             FlowKeySpec::src_ip());
  const auto victims = ExactStats::over_threshold(truth, kThreshold);
  std::printf("trace: %zu pkts, %zu dst keys, %zu true victims\n\n", trace.size(),
              truth.size(), victims.size());

  std::printf("%10s %14s %14s %14s %14s\n", "memory", "FM-BC (d=1)", "FM-BC (d=3)",
              "BeauCoup d=1", "BeauCoup d=3");
  for (std::size_t kb : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    const std::size_t bytes = kb * 1024;
    std::printf("%10s %14.3f %14.3f %14.3f %14.3f\n", bench::fmt_mem(bytes).c_str(),
                flymon_f1(1, bytes, trace, truth, victims),
                flymon_f1(3, bytes, trace, truth, victims),
                beaucoup_f1(1, bytes, trace, truth, victims),
                beaucoup_f1(3, bytes, trace, truth, victims));
  }
  std::printf("\n(paper: FlyMon-BeauCoup passes the original once memory exceeds "
              "~100 KB)\n");
  return 0;
}
