#include "sketch/bloom_filter.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace flymon::sketch {

BloomFilter::BloomFilter(std::uint64_t m_bits, unsigned k) : m_(m_bits), k_(k) {
  if (m_bits == 0 || k == 0) throw std::invalid_argument("BloomFilter: m and k must be > 0");
  bits_.assign((m_bits + 63) / 64, 0ull);
}

BloomFilter BloomFilter::with_memory(std::size_t bytes, unsigned k) {
  return BloomFilter(std::max<std::uint64_t>(64, std::uint64_t{bytes} * 8), k);
}

void BloomFilter::insert(KeyBytes key) {
  for (unsigned i = 0; i < k_; ++i) {
    const std::uint64_t b = row_hash(key, i, 0xB100Full) % m_;
    bits_[b >> 6] |= (1ull << (b & 63));
  }
}

bool BloomFilter::contains(KeyBytes key) const {
  for (unsigned i = 0; i < k_; ++i) {
    const std::uint64_t b = row_hash(key, i, 0xB100Full) % m_;
    if ((bits_[b >> 6] & (1ull << (b & 63))) == 0) return false;
  }
  return true;
}

double BloomFilter::fill_ratio() const noexcept {
  std::uint64_t set = 0;
  for (std::uint64_t w : bits_) set += static_cast<std::uint64_t>(std::popcount(w));
  return m_ == 0 ? 0.0 : static_cast<double>(set) / static_cast<double>(m_);
}

void BloomFilter::clear() { std::fill(bits_.begin(), bits_.end(), 0ull); }

}  // namespace flymon::sketch
