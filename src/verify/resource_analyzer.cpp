// Resource-ledger analyzer: per-MAU-stage hash/VLIW/TCAM/SALU demand and
// the PHV bit budget against pipeline capacity, plus cross-stacking plan
// consistency (paper §3.2 / Fig 8).
#include <sstream>
#include <string>

#include "verify/verifier.hpp"

namespace flymon::verify {
namespace {

using dataplane::MauStage;
using dataplane::Pipeline;
using dataplane::Resource;
using dataplane::StageDemand;
using dataplane::TofinoModel;

std::string stage_site(unsigned stage) { return "stage " + std::to_string(stage); }

/// Which resources `d` would push past capacity on `stage`.
std::string over_capacity(const MauStage& stage, const StageDemand& d) {
  std::ostringstream out;
  for (unsigned i = 0; i < dataplane::kNumResourceKinds; ++i) {
    const auto r = static_cast<Resource>(i);
    if (stage.used(r) + d[r] > stage.capacity(r)) {
      if (out.tellp() > 0) out << ", ";
      out << dataplane::to_string(r) << " " << (stage.used(r) + d[r]) << "/"
          << stage.capacity(r);
    }
  }
  return out.str();
}

class ResourceAnalyzer final : public Analyzer {
 public:
  std::string_view name() const noexcept override { return "resources"; }
  std::string_view description() const noexcept override {
    return "per-stage hash/VLIW/TCAM/SALU and PHV budgets, cross-stack plan "
           "consistency";
  }

  void run(const VerifyContext& ctx, VerifyReport& report) const override {
    const FlyMonDataPlane& dp = *ctx.dataplane;

    // PHV is a whole-pipe budget: compressed keys + chain metadata of every
    // group must fit next to nothing else (dedicated measurement device).
    unsigned phv = 0;
    for (unsigned g = 0; g < dp.num_groups(); ++g) {
      phv += CmuGroup::phv_bits(dp.group(g).config());
    }
    if (phv > TofinoModel::kPhvBits) {
      report.add(Severity::kError, "resources.phv", "pipeline",
                 "groups need " + std::to_string(phv) + " PHV bits, budget is " +
                     std::to_string(TofinoModel::kPhvBits),
                 "deploy fewer groups or shrink compression_units");
    }

    if (ctx.plan != nullptr) {
      audit_plan(ctx, *ctx.plan, report);
    } else {
      // No plan supplied: re-derive one and check the modelled data plane
      // actually fits the pipeline.
      const auto derived =
          control::cross_stack(TofinoModel::kNumStages,
                               dp.num_groups() > 0 ? dp.group(0).config()
                                                   : CmuGroupConfig{});
      if (derived.groups_placed < dp.num_groups()) {
        report.add(Severity::kWarning, "resources.capacity", "pipeline",
                   "data plane models " + std::to_string(dp.num_groups()) +
                       " groups but cross-stacking places only " +
                       std::to_string(derived.groups_placed),
                   "use cross_stack_spliced (recirculation) or fewer groups");
      }
    }

    // SALU action-slot audit (at most 4 pre-loaded register actions).
    for (unsigned g = 0; g < dp.num_groups(); ++g) {
      for (unsigned c = 0; c < dp.group(g).num_cmus(); ++c) {
        const unsigned loaded = dp.group(g).cmu(c).salu().loaded_ops();
        if (loaded > TofinoModel::kMaxRegisterActions) {
          report.add(Severity::kError, "resources.salu",
                     "g" + std::to_string(g) + ".cmu" + std::to_string(c),
                     std::to_string(loaded) +
                         " register actions pre-loaded, hardware holds " +
                         std::to_string(TofinoModel::kMaxRegisterActions));
        }
      }
    }
  }

 private:
  void audit_plan(const VerifyContext& ctx, const control::CrossStackPlan& plan,
                  VerifyReport& report) const {
    const FlyMonDataPlane& dp = *ctx.dataplane;
    const unsigned stages = plan.pipeline.num_stages();
    if (plan.groups_placed != plan.start_stage.size()) {
      report.add(Severity::kError, "resources.plan", "plan",
                 "plan places " + std::to_string(plan.groups_placed) +
                     " groups but records " +
                     std::to_string(plan.start_stage.size()) + " start stages");
      return;
    }
    if (plan.groups_placed < dp.num_groups()) {
      report.add(Severity::kWarning, "resources.capacity", "plan",
                 "plan places " + std::to_string(plan.groups_placed) + " of " +
                     std::to_string(dp.num_groups()) + " modelled groups");
    }

    // Replay the plan onto a fresh pipeline; each group claims its four
    // stage demands (C/I/P/O) shifted one stage per group.
    Pipeline replay(stages, TofinoModel::kPhvBits);
    for (unsigned g = 0; g < plan.start_stage.size(); ++g) {
      const CmuGroupConfig cfg =
          g < dp.num_groups() ? dp.group(g).config() : CmuGroupConfig{};
      const unsigned start = plan.start_stage[g];
      if (!ctx.allow_wrap && start + 4 > stages) {
        report.add(Severity::kError, "resources.plan",
                   "group " + std::to_string(g),
                   "start stage " + std::to_string(start) +
                       " leaves no room for 4 pipeline-ordered stages",
                   "only spliced (recirculating) plans may wrap the pipe end");
        continue;
      }
      if (!replay.allocate_phv(CmuGroup::phv_bits(cfg))) {
        report.add(Severity::kError, "resources.phv", "group " + std::to_string(g),
                   "PHV budget exhausted during plan replay");
      }
      const auto demands = CmuGroup::stage_demands(cfg);
      for (unsigned k = 0; k < demands.size(); ++k) {
        const unsigned idx = (start + k) % stages;
        if (!replay.stage(idx).allocate(demands[k])) {
          report.add(Severity::kError, "resources.stage", stage_site(idx),
                     "group " + std::to_string(g) + " stage " +
                         std::to_string(k) + " over capacity: " +
                         over_capacity(replay.stage(idx), demands[k]),
                     "re-run cross_stack; two groups may share a start stage");
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Analyzer> make_resource_analyzer() {
  return std::make_unique<ResourceAnalyzer>();
}

}  // namespace flymon::verify
