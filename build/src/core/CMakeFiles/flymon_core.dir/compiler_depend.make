# Empty compiler generated dependencies file for flymon_core.
# This may be replaced when dependencies are built.
