// Integration tests: every built-in algorithm end-to-end through the CMU
// data plane with accuracy assertions against exact ground truth.
#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "control/controller.hpp"
#include "packet/trace_gen.hpp"

namespace flymon {
namespace {

struct World {
  FlyMonDataPlane dp{9};
  control::Controller ctl{dp};
  std::vector<Packet> trace;

  explicit World(std::size_t flows = 3000, std::size_t pkts = 150'000,
                 double alpha = 1.05, std::uint64_t seed = 1) {
    TraceConfig cfg;
    cfg.num_flows = flows;
    cfg.num_packets = pkts;
    cfg.zipf_alpha = alpha;
    cfg.seed = seed;
    trace = TraceGenerator::generate(cfg);
  }

  void run() { dp.process_all(trace); }
};

TEST(Integration, CmsPerFlowByteCounts) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.param = ParamSpec::metadata(MetaField::kWireBytes);
  s.memory_buckets = 32768;
  s.rows = 3;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;
  w.run();
  const FreqMap truth = ExactStats::frequency(w.trace, s.key, MetaField::kWireBytes);
  const double are = analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
    return w.ctl.query_value(r.task_id, packet_from_candidate_key(k.bytes));
  });
  EXPECT_LT(are, 0.02);
}

TEST(Integration, SuMaxSumMoreAccurateThanCmsAtTightMemory) {
  World w;
  TaskSpec cms;
  cms.key = FlowKeySpec::five_tuple();
  cms.attribute = AttributeKind::kFrequency;
  cms.algorithm = Algorithm::kCms;
  cms.memory_buckets = 1024;  // deliberately tight
  cms.rows = 3;
  const auto rc = w.ctl.add_task(cms);
  ASSERT_TRUE(rc.ok);

  FlyMonDataPlane dp2(9);
  control::Controller ctl2(dp2);
  TaskSpec su = cms;
  su.algorithm = Algorithm::kSuMaxSum;
  const auto rs = ctl2.add_task(su);
  ASSERT_TRUE(rs.ok) << rs.error;

  w.run();
  dp2.process_all(w.trace);

  // The paper's claim (Fig 14a) is about heavy-hitter F1, where the
  // conservative update's damped over-counts matter most.
  const FreqMap truth = ExactStats::frequency(w.trace, cms.key);
  const auto hh_true = ExactStats::over_threshold(truth, 512);
  std::vector<FlowKeyValue> candidates;
  for (const auto& [k, f] : truth) candidates.push_back(k);
  const auto f1 = [&](control::Controller& c, std::uint32_t id) {
    return analysis::score_detection(hh_true,
                                     c.detect_over_threshold(id, candidates, 512))
        .f1();
  };
  EXPECT_GE(f1(ctl2, rs.task_id), f1(w.ctl, rc.task_id))
      << "conservative update must not lose under pressure";
}

TEST(Integration, TowerSketchFrequency) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.algorithm = Algorithm::kTowerSketch;
  s.memory_buckets = 32768;
  s.rows = 3;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;
  w.run();
  const FreqMap truth = ExactStats::frequency(w.trace, s.key);
  // Mice flows (small counts) are the tower's specialty.
  double are_small = 0;
  unsigned n = 0;
  for (const auto& [k, f] : truth) {
    if (f > 50) continue;
    const auto est = w.ctl.query_value(r.task_id, packet_from_candidate_key(k.bytes));
    are_small += std::abs(static_cast<double>(est) - static_cast<double>(f)) /
                 static_cast<double>(f);
    ++n;
  }
  EXPECT_LT(are_small / n, 0.2);
}

TEST(Integration, CounterBraidsTotalCounts) {
  World w(500, 50'000);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.algorithm = Algorithm::kCounterBraids;
  s.memory_buckets = 16384;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;
  w.run();
  const FreqMap truth = ExactStats::frequency(w.trace, s.key);
  const double are = analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
    return w.ctl.query_value(r.task_id, packet_from_candidate_key(k.bytes));
  });
  // Single-row braids keep ~3% of flows in collision; their inflated
  // estimates dominate the ARE, so the bound is looser than d=3 sketches.
  EXPECT_LT(are, 0.2) << "layer-1 + layer-2 must reconstruct counts";
}

TEST(Integration, LinearCountingCardinality) {
  World w(20'000, 60'000, 0.3);
  TaskSpec s;
  s.attribute = AttributeKind::kDistinct;
  s.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  s.algorithm = Algorithm::kLinearCounting;
  s.memory_buckets = 4096;  // 131072 bits
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;
  w.run();
  const double truth =
      static_cast<double>(ExactStats::cardinality(w.trace, FlowKeySpec::five_tuple()));
  EXPECT_LT(analysis::relative_error(truth, w.ctl.estimate_cardinality(r.task_id)), 0.05);
}

TEST(Integration, MracSizeDistributionAndEntropy) {
  World w(5000, 200'000, 1.0);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.algorithm = Algorithm::kMrac;
  s.memory_buckets = 65536;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;
  w.run();
  const FreqMap truth = ExactStats::frequency(w.trace, s.key);
  const double h_true = ExactStats::flow_entropy(truth);
  EXPECT_LT(analysis::relative_error(h_true, w.ctl.estimate_entropy(r.task_id)), 0.1);

  const auto dist = w.ctl.estimate_size_distribution(r.task_id);
  const auto exact_dist = ExactStats::size_distribution(truth);
  // Singleton-flow count is the hardest part of the distribution.
  ASSERT_TRUE(dist.count(1));
  EXPECT_NEAR(dist.at(1), static_cast<double>(exact_dist.at(1)),
              0.25 * static_cast<double>(exact_dist.at(1)));
}

TEST(Integration, MaxQueueLengthPerFlow) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::ip_pair();
  s.attribute = AttributeKind::kMax;
  s.param = ParamSpec::metadata(MetaField::kQueueLen);
  s.memory_buckets = 32768;
  s.rows = 3;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;
  w.run();
  const FreqMap truth = ExactStats::max_value(w.trace, s.key, MetaField::kQueueLen);
  unsigned exact = 0, total = 0;
  for (const auto& [k, mx] : truth) {
    const auto est = w.ctl.query_value(r.task_id, packet_from_candidate_key(k.bytes));
    EXPECT_GE(est, mx) << "Max attribute collisions only inflate";
    exact += (est == mx);
    ++total;
  }
  EXPECT_GT(static_cast<double>(exact) / total, 0.95);
}

TEST(Integration, MaxInterarrivalEndToEnd) {
  World w(2000, 100'000);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kMax;
  s.algorithm = Algorithm::kMaxInterarrival;
  s.memory_buckets = 65536;
  s.rows = 3;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;
  w.run();
  const FreqMap truth = ExactStats::max_interarrival(w.trace, s.key);
  std::vector<std::pair<double, double>> pairs;
  for (const auto& [k, gap] : truth) {
    if (gap == 0) continue;
    pairs.emplace_back(static_cast<double>(gap),
                       static_cast<double>(w.ctl.query_max_interarrival_ns(
                           r.task_id, packet_from_candidate_key(k.bytes))));
  }
  EXPECT_LT(analysis::average_relative_error(pairs), 0.25);
}

TEST(Integration, ConcurrentTasksDoNotInterfere) {
  World w;
  TaskSpec a;
  a.filter = TaskFilter::src(0x0A000000, 9);  // half the 10/8 space
  a.key = FlowKeySpec::five_tuple();
  a.attribute = AttributeKind::kFrequency;
  a.memory_buckets = 16384;
  a.rows = 3;
  const auto ra = w.ctl.add_task(a);
  ASSERT_TRUE(ra.ok);

  TaskSpec b;
  b.filter = TaskFilter::src(0x0A800000, 9);  // the other half
  b.key = FlowKeySpec::five_tuple();
  b.attribute = AttributeKind::kFrequency;
  b.memory_buckets = 16384;
  b.rows = 3;
  const auto rb = w.ctl.add_task(b);
  ASSERT_TRUE(rb.ok) << rb.error;

  w.run();

  // Each task must be accurate on its own slice.
  for (const auto& [spec, id] : {std::pair{a, ra.task_id}, std::pair{b, rb.task_id}}) {
    FreqMap truth;
    for (const Packet& p : w.trace) {
      if (spec.filter.matches(p.ft)) truth[extract_flow_key(p, spec.key)] += 1;
    }
    ASSERT_FALSE(truth.empty());
    const double are = analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
      return w.ctl.query_value(id, packet_from_candidate_key(k.bytes));
    });
    EXPECT_LT(are, 0.05);
  }
}

TEST(Integration, ProbabilisticTasksShareOneCmu) {
  FlyMonDataPlane dp(1);
  control::Controller ctl(dp);
  // Two wildcard tasks with sampling: legal on the same group/CMUs.
  TaskSpec a;
  a.key = FlowKeySpec::five_tuple();
  a.attribute = AttributeKind::kFrequency;
  a.memory_buckets = 16384;
  a.rows = 3;
  a.sample_probability = 0.5;
  const auto ra = ctl.add_task(a);
  TaskSpec b = a;
  const auto rb = ctl.add_task(b);
  ASSERT_TRUE(ra.ok) << ra.error;
  ASSERT_TRUE(rb.ok) << rb.error;

  TraceConfig cfg;
  cfg.num_flows = 500;
  cfg.num_packets = 100'000;
  const auto trace = TraceGenerator::generate(cfg);
  dp.process_all(trace);

  // Each task sees roughly half the packets: estimates scale by ~p.
  const FreqMap truth = ExactStats::frequency(trace, a.key);
  double ratio_sum = 0;
  unsigned n = 0;
  for (const auto& [k, f] : truth) {
    if (f < 200) continue;
    const auto est = ctl.query_value(ra.task_id, packet_from_candidate_key(k.bytes));
    ratio_sum += static_cast<double>(est) / static_cast<double>(f);
    ++n;
  }
  ASSERT_GT(n, 0u);
  EXPECT_NEAR(ratio_sum / n, 0.5, 0.1);
}

TEST(Integration, EpochReuseAfterClear) {
  World w(1000, 30'000);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 16384;
  s.rows = 3;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok);
  w.run();
  w.dp.clear_registers();
  w.run();  // second epoch over the same trace
  const FreqMap truth = ExactStats::frequency(w.trace, s.key);
  const double are = analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
    return w.ctl.query_value(r.task_id, packet_from_candidate_key(k.bytes));
  });
  EXPECT_LT(are, 0.02) << "state after clear must match a fresh epoch";
}

}  // namespace
}  // namespace flymon
