file(REMOVE_RECURSE
  "CMakeFiles/flymon_analysis.dir/metrics.cpp.o"
  "CMakeFiles/flymon_analysis.dir/metrics.cpp.o.d"
  "libflymon_analysis.a"
  "libflymon_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flymon_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
