// Memory-safety analyzer: audits every live register partition against the
// buddy-allocator discipline (paper §3.3) — power-of-two sized, aligned,
// inside the register, pairwise disjoint per CMU — and every UnitPlacement
// against the allocator's actual live blocks.
#include <string>

#include "common/bits.hpp"
#include "verify/verifier.hpp"

namespace flymon::verify {
namespace {

std::string cmu_site(unsigned g, unsigned c) {
  return "g" + std::to_string(g) + ".cmu" + std::to_string(c);
}

std::string part_str(const MemoryPartition& p) {
  return "[" + std::to_string(p.base) + ", " + std::to_string(p.end()) + ")";
}

class MemoryAnalyzer final : public Analyzer {
 public:
  std::string_view name() const noexcept override { return "memory"; }
  std::string_view description() const noexcept override {
    return "buddy-allocator audit: partition shape, disjointness, "
           "placement/allocator agreement";
  }

  void run(const VerifyContext& ctx, VerifyReport& report) const override {
    const FlyMonDataPlane& dp = *ctx.dataplane;
    const control::Controller* ctl = ctx.controller;

    for (unsigned g = 0; g < dp.num_groups(); ++g) {
      for (unsigned c = 0; c < dp.group(g).num_cmus(); ++c) {
        const Cmu& cmu = dp.group(g).cmu(c);
        const auto& entries = cmu.entries();
        const std::string site = cmu_site(g, c);
        const BuddyAllocator* alloc =
            ctl != nullptr ? ctl->find_allocator(g, c) : nullptr;

        for (std::size_t i = 0; i < entries.size(); ++i) {
          const MemoryPartition& p = entries[i].partition;
          const std::string who = "task " + std::to_string(entries[i].task_id);
          if (p.size == 0 || !is_pow2(p.size)) {
            report.add(Severity::kError, "memory.pow2", site,
                       who + " partition " + part_str(p) +
                           " is not a power-of-two block",
                       "shift/TCAM address translation needs 2^n partitions");
          } else if (p.base % p.size != 0) {
            report.add(Severity::kError, "memory.align", site,
                       who + " partition " + part_str(p) +
                           " base is not size-aligned",
                       "buddy blocks start at multiples of their size");
          }
          if (p.end() > cmu.reg().size()) {
            report.add(Severity::kError, "memory.bounds", site,
                       who + " partition " + part_str(p) + " escapes the " +
                           std::to_string(cmu.reg().size()) + "-bucket register");
          }
          for (std::size_t j = 0; j < i; ++j) {
            const MemoryPartition& q = entries[j].partition;
            if (p.base < q.end() && q.base < p.end()) {
              report.add(Severity::kError, "memory.overlap", site,
                         who + " partition " + part_str(p) +
                             " overlaps task " +
                             std::to_string(entries[j].task_id) + " at " +
                             part_str(q),
                         "co-resident tasks need disjoint partitions");
            }
          }
          if (alloc != nullptr && !alloc->is_live(p)) {
            report.add(Severity::kError, "memory.orphan", site,
                       who + " partition " + part_str(p) +
                           " is not a live allocator block",
                       "partitions must come from BuddyAllocator::allocate");
          }
        }

        // The other direction: allocator blocks nothing references leak
        // memory until the next epoch's garbage pass.
        if (alloc != nullptr) {
          for (const MemoryPartition& live : alloc->live_partitions()) {
            bool referenced = false;
            for (const auto& e : entries) {
              if (e.partition == live) {
                referenced = true;
                break;
              }
            }
            if (!referenced) {
              report.add(Severity::kWarning, "memory.leak", site,
                         "allocator block " + part_str(live) +
                             " has no installed task entry");
            }
          }
        }
      }
    }

    // Controller placements must agree byte-for-byte with allocator blocks.
    if (ctl != nullptr) {
      for (const std::uint32_t id : ctl->task_ids()) {
        const control::DeployedTask* t = ctl->task(id);
        if (t == nullptr) continue;
        for (const auto& row : t->rows) {
          for (const auto& up : row.units) {
            if (up.group >= dp.num_groups() ||
                up.cmu >= dp.group(up.group).num_cmus()) {
              report.add(Severity::kError, "memory.placement",
                         "task " + std::to_string(id),
                         "placement names g" + std::to_string(up.group) +
                             ".cmu" + std::to_string(up.cmu) +
                             ", outside the data plane");
              continue;
            }
            const BuddyAllocator* alloc = ctl->find_allocator(up.group, up.cmu);
            if (alloc != nullptr && !alloc->is_live(up.partition)) {
              report.add(Severity::kError, "memory.orphan",
                         cmu_site(up.group, up.cmu),
                         "task " + std::to_string(id) + " placement partition " +
                             part_str(up.partition) +
                             " is unknown to the allocator");
            }
            const CmuTaskEntry* e =
                dp.group(up.group).cmu(up.cmu).find(up.phys_id);
            if (e != nullptr && !(e->partition == up.partition)) {
              report.add(Severity::kError, "memory.placement",
                         cmu_site(up.group, up.cmu),
                         "task " + std::to_string(id) +
                             " placement partition " + part_str(up.partition) +
                             " disagrees with the installed entry " +
                             part_str(e->partition));
            }
          }
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Analyzer> make_memory_analyzer() {
  return std::make_unique<MemoryAnalyzer>();
}

}  // namespace flymon::verify
