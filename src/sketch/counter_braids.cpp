#include "sketch/counter_braids.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/bits.hpp"

namespace flymon::sketch {

CounterBraids::CounterBraids(std::uint32_t m1, unsigned b1, unsigned d1,
                             std::uint32_t m2, unsigned b2, unsigned d2)
    : m1_(m1), m2_(m2), b1_(b1), d1_(d1), b2_(b2), d2_(d2) {
  if (m1 == 0 || m2 == 0 || d1 == 0 || d2 == 0 || b1 == 0 || b1 >= 32 || b2 == 0 ||
      b2 > 32)
    throw std::invalid_argument("CounterBraids: bad geometry");
  cap1_ = 1u << b1;
  layer1_.assign(m1, 0u);
  layer2_.assign(m2, 0ull);
}

CounterBraids CounterBraids::with_memory(std::size_t bytes) {
  // 8-bit layer-1 counters take 7/8 of memory; 32-bit layer-2 the rest.
  const std::size_t l1_bytes = bytes * 7 / 8;
  const auto m1 = static_cast<std::uint32_t>(std::max<std::size_t>(8, l1_bytes));
  const auto m2 =
      static_cast<std::uint32_t>(std::max<std::size_t>(2, (bytes - l1_bytes) / 4));
  return CounterBraids(m1, 8, 3, m2, 32, 2);
}

std::vector<std::uint32_t> CounterBraids::layer1_indices(KeyBytes key) const {
  std::vector<std::uint32_t> idx(d1_);
  for (unsigned r = 0; r < d1_; ++r) {
    idx[r] = static_cast<std::uint32_t>(row_hash(key, r, 0xCB1ull) % m1_);
  }
  return idx;
}

std::vector<std::uint32_t> CounterBraids::layer2_indices(std::uint32_t l1_index) const {
  std::vector<std::uint32_t> idx(d2_);
  for (unsigned r = 0; r < d2_; ++r) {
    idx[r] = static_cast<std::uint32_t>(hash64_value(l1_index, 0xCB2ull + r) % m2_);
  }
  return idx;
}

void CounterBraids::update(KeyBytes key, std::uint32_t inc) {
  for (std::uint32_t i : layer1_indices(key)) {
    std::uint64_t v = layer1_[i] + std::uint64_t{inc};
    // Each wrap of the b1-bit counter emits one carry into layer 2.
    while (v >= cap1_) {
      v -= cap1_;
      for (std::uint32_t j : layer2_indices(i)) ++layer2_[j];
    }
    layer1_[i] = static_cast<std::uint32_t>(v);
  }
}

std::vector<std::uint64_t> CounterBraids::reconstruct_layer1(
    unsigned max_iterations) const {
  // Decode per-layer-1-counter carry counts from layer 2 with min-sum
  // message passing (variables: carries c_i >= 0; constraints: each layer-2
  // counter equals the sum of carries of the layer-1 counters mapping to it).
  std::vector<std::vector<std::uint32_t>> l2_members(m2_);
  std::vector<std::vector<std::uint32_t>> l1_edges(m1_);
  for (std::uint32_t i = 0; i < m1_; ++i) {
    l1_edges[i] = layer2_indices(i);
    for (std::uint32_t j : l1_edges[i]) l2_members[j].push_back(i);
  }

  std::vector<double> est(m1_);
  for (std::uint32_t i = 0; i < m1_; ++i) {
    double mn = std::numeric_limits<double>::max();
    for (std::uint32_t j : l1_edges[i]) mn = std::min(mn, static_cast<double>(layer2_[j]));
    est[i] = mn;
  }
  for (unsigned it = 0; it < max_iterations; ++it) {
    std::vector<double> l2_sum(m2_, 0.0);
    for (std::uint32_t j = 0; j < m2_; ++j) {
      for (std::uint32_t i : l2_members[j]) l2_sum[j] += est[i];
    }
    bool changed = false;
    for (std::uint32_t i = 0; i < m1_; ++i) {
      double nv = std::numeric_limits<double>::max();
      for (std::uint32_t j : l1_edges[i]) {
        nv = std::min(nv, static_cast<double>(layer2_[j]) - (l2_sum[j] - est[i]));
      }
      nv = std::max(0.0, nv);
      if (nv != est[i]) {
        est[i] = nv;
        changed = true;
      }
    }
    if (!changed) break;
  }

  std::vector<std::uint64_t> full(m1_);
  for (std::uint32_t i = 0; i < m1_; ++i) {
    const auto carries = static_cast<std::uint64_t>(est[i] + 0.5);
    full[i] = layer1_[i] + carries * cap1_;
  }
  return full;
}

std::uint64_t CounterBraids::query_upper_bound(KeyBytes key) const {
  const auto full = reconstruct_layer1(20);
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t i : layer1_indices(key)) best = std::min(best, full[i]);
  return best;
}

std::unordered_map<FlowKeyValue, std::uint64_t> CounterBraids::decode(
    const std::vector<FlowKeyValue>& flows, unsigned max_iterations) const {
  const auto full = reconstruct_layer1(max_iterations);

  // Flow-level min-sum decoding over layer 1.
  std::vector<std::vector<std::uint32_t>> flow_edges(flows.size());
  std::vector<std::vector<std::uint32_t>> counter_members(m1_);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    flow_edges[f] = layer1_indices(
        KeyBytes(flows[f].bytes.data(), flows[f].bytes.size()));
    for (std::uint32_t i : flow_edges[f]) counter_members[i].push_back(static_cast<std::uint32_t>(f));
  }

  std::vector<double> est(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    double mn = std::numeric_limits<double>::max();
    for (std::uint32_t i : flow_edges[f]) mn = std::min(mn, static_cast<double>(full[i]));
    est[f] = mn;
  }
  for (unsigned it = 0; it < max_iterations; ++it) {
    std::vector<double> csum(m1_, 0.0);
    for (std::uint32_t i = 0; i < m1_; ++i) {
      for (std::uint32_t f : counter_members[i]) csum[i] += est[f];
    }
    bool changed = false;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      double nv = std::numeric_limits<double>::max();
      for (std::uint32_t i : flow_edges[f]) {
        nv = std::min(nv, static_cast<double>(full[i]) - (csum[i] - est[f]));
      }
      nv = std::max(0.0, nv);
      if (nv != est[f]) {
        est[f] = nv;
        changed = true;
      }
    }
    if (!changed) break;
  }

  std::unordered_map<FlowKeyValue, std::uint64_t> out;
  out.reserve(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    out[flows[f]] = static_cast<std::uint64_t>(est[f] + 0.5);
  }
  return out;
}

std::size_t CounterBraids::memory_bytes() const noexcept {
  return std::size_t{m1_} * b1_ / 8 + std::size_t{m2_} * b2_ / 8;
}

void CounterBraids::clear() {
  std::fill(layer1_.begin(), layer1_.end(), 0u);
  std::fill(layer2_.begin(), layer2_.end(), 0ull);
}

}  // namespace flymon::sketch
