# Empty dependencies file for flymon_shell.
# This may be replaced when dependencies are built.
