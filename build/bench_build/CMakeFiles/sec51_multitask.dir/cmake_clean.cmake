file(REMOVE_RECURSE
  "../bench/sec51_multitask"
  "../bench/sec51_multitask.pdb"
  "CMakeFiles/sec51_multitask.dir/sec51_multitask.cpp.o"
  "CMakeFiles/sec51_multitask.dir/sec51_multitask.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec51_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
