// Paper Figure 14e: flow entropy relative error vs memory —
// FlyMon-MRAC (EM over the counter-value histogram) vs UnivMon (G-sum).
#include "bench/bench_util.hpp"
#include "sketch/univmon.hpp"

using namespace flymon;

namespace {

double flymon_mrac_re(std::size_t mem_bytes, const std::vector<Packet>& trace,
                      double truth) {
  TaskSpec spec;
  spec.key = FlowKeySpec::five_tuple();
  spec.attribute = AttributeKind::kFrequency;
  spec.algorithm = Algorithm::kMrac;
  spec.memory_buckets =
      static_cast<std::uint32_t>(std::max<std::size_t>(64, mem_bytes / 4));
  auto inst = bench::deploy_flymon(spec);
  if (!inst.ok) return -1;
  inst.dp->process_all(trace);
  return analysis::relative_error(truth, inst.ctl->estimate_entropy(inst.task_id));
}

double univmon_re(std::size_t mem_bytes, const std::vector<Packet>& trace,
                  double truth) {
  auto um = sketch::UnivMon::with_memory(mem_bytes);
  for (const Packet& p : trace) um.update(extract_flow_key(p, FlowKeySpec::five_tuple()));
  return analysis::relative_error(truth, um.estimate_entropy());
}

}  // namespace

int main() {
  bench::header("Figure 14e", "Flow entropy: relative error vs memory");

  TraceConfig cfg;
  cfg.num_flows = 30'000;
  cfg.num_packets = 800'000;
  cfg.zipf_alpha = 0.6;
  const auto trace = TraceGenerator::generate(cfg);
  const FreqMap freq = ExactStats::frequency(trace, FlowKeySpec::five_tuple());
  const double truth = ExactStats::flow_entropy(freq);
  std::printf("trace: %zu pkts, %zu flows, true entropy %.4f nats\n\n", trace.size(),
              freq.size(), truth);

  std::printf("%10s %12s %12s\n", "memory", "UnivMon", "FlyMon-MRAC");
  for (std::size_t kb : {64u, 128u, 200u, 256u, 384u, 512u}) {
    const std::size_t bytes = kb * 1024;
    std::printf("%10s %12.4f %12.4f\n", bench::fmt_mem(bytes).c_str(),
                univmon_re(bytes, trace, truth), flymon_mrac_re(bytes, trace, truth));
  }
  std::printf("\n(paper: MRAC reaches RE < 0.2 with ~200 KB; UnivMon needs ~340 KB)\n");
  return 0;
}
