// Paper Figure 12a: impact of reconfiguration events on traffic
// forwarding.  Nine events over 100 s; FlyMon reconfigures with runtime
// rules (no interruption) while the static method reloads the P4 program
// (4-8 s outage per reload, deletions skipped, critical events batched).
#include "bench/bench_util.hpp"
#include "control/forwarding_sim.hpp"

using namespace flymon;
using namespace flymon::control;

int main() {
  bench::header("Figure 12a", "Throughput under 9 reconfiguration events (e1..e9)");

  ForwardingSimConfig cfg;
  const auto events = paper_event_schedule();
  const auto result = simulate_forwarding(cfg, events);

  std::printf("%8s %12s %12s %12s\n", "t (s)", "Bare", "FlyMon", "Static");
  for (std::size_t i = 0; i < result.samples.size(); i += 4) {  // 2 s granularity
    const auto& s = result.samples[i];
    std::printf("%8.1f %10.1f G %10.1f G %10.1f G", s.time_s, s.bare_gbps,
                s.flymon_gbps, s.static_gbps);
    for (const auto& e : events) {
      if (e.time_s >= s.time_s && e.time_s < s.time_s + 2.0) {
        std::printf("   <- e%d (%s)", static_cast<int>(&e - events.data()) + 1,
                    e.kind == ReconfigEventKind::kAddTask      ? "add"
                    : e.kind == ReconfigEventKind::kDeleteTask ? "delete"
                                                               : "realloc");
      }
    }
    std::printf("\n");
  }
  std::printf("\nSummary: FlyMon outage %.1f s | static outage %.1f s over %u reloads\n",
              result.flymon_outage_s, result.static_outage_s, result.static_reloads);
  std::printf("(paper: FlyMon has no impairment; static interrupts traffic 4-8 s "
              "per reconfiguration)\n");
  return 0;
}
