// Exporters: Prometheus text exposition (0.0.4) and a JSON snapshot of a
// metrics registry, plus the small JSON formatting helpers shared with the
// trace dump and the bench --json writer.
#pragma once

#include <string>

#include "telemetry/telemetry.hpp"

namespace flymon::telemetry {

/// Escape a string for inclusion in a JSON string literal (no quotes added).
std::string json_escape(const std::string& s);

/// Format a double the way both exporters do: integers print bare
/// ("17"), fractions with up to 6 significant decimals ("0.421875").
std::string format_number(double v);

/// Prometheus text exposition of a snapshot.  Histograms expand to
/// cumulative `_bucket{le=...}`, `_sum` and `_count` series.
std::string to_prometheus(const std::vector<MetricSample>& samples);
std::string to_prometheus(const Registry& registry);

/// JSON object {"metrics":[{name, labels, kind, value | buckets}...]}.
std::string to_json(const std::vector<MetricSample>& samples);
std::string to_json(const Registry& registry);

/// Write `content` to `path`; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace flymon::telemetry
