# Empty dependencies file for fig14f_interarrival.
# This may be replaced when dependencies are built.
