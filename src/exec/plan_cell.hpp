// The RCU cell holding the published ExecPlan.  Semantically an atomic
// shared_ptr: the control plane release-stores a freshly compiled snapshot,
// the packet path acquire-loads it once per batch, and in-flight batches
// keep the snapshot they loaded alive through the returned shared_ptr — so
// publishing never waits for (or tears) packet processing.
//
// It is not std::atomic<std::shared_ptr<T>> because libstdc++ 12's
// _Sp_atomic unlocks the reader side of its pointer spinlock with
// memory_order_relaxed, leaving no release edge between a reader's plain
// control-block read and the next publisher's write; ThreadSanitizer flags
// that (correctly, per the C++ memory model).  A mutex whose critical
// section only copies/swaps the pointer has the same cost profile as the
// spinlock+refcount dance (one uncontended lock per batch) and is clean
// under TSan.  The previous snapshot is destroyed outside the lock so a
// publisher never runs the plan destructor while holding it.
#pragma once

#include <memory>
#include <utility>

#include "common/annotated_mutex.hpp"
#include "common/thread_annotations.hpp"

namespace flymon::exec {

class ExecPlan;

class PlanCell {
 public:
  /// Acquire the current snapshot (nullptr = no plan published).
  std::shared_ptr<const ExecPlan> load() const {
    common::MutexLock lk(mu_);
    return plan_;
  }

  /// Publish `next` (may be nullptr to unpublish).  The displaced
  /// snapshot's reference is dropped after the lock is released.
  void store(std::shared_ptr<const ExecPlan> next) noexcept {
    {
      common::MutexLock lk(mu_);
      plan_.swap(next);
    }
    // `next` now holds the old snapshot; it dies here, outside the lock.
  }

  /// Publish `next` only if its generation is strictly newer than the
  /// current snapshot's (an empty cell always accepts).  Defense in depth
  /// for concurrent publishers that race compile-then-store: the published
  /// generation can never move backwards.  Returns whether `next` was
  /// installed.  Defined in exec_plan.cpp (needs ExecPlan::generation()).
  bool store_if_newer(std::shared_ptr<const ExecPlan> next) noexcept;

 private:
  mutable common::Mutex mu_;
  std::shared_ptr<const ExecPlan> plan_ FLYMON_GUARDED_BY(mu_);
};

}  // namespace flymon::exec
