file(REMOVE_RECURSE
  "CMakeFiles/task_churn.dir/task_churn.cpp.o"
  "CMakeFiles/task_churn.dir/task_churn.cpp.o.d"
  "task_churn"
  "task_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
