#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "dataplane/hash_unit.hpp"
#include "dataplane/mau_stage.hpp"
#include "dataplane/pipeline.hpp"
#include "dataplane/salu.hpp"
#include "dataplane/tcam.hpp"
#include "packet/flowkey.hpp"

namespace flymon::dataplane {
namespace {

Packet sample_packet() {
  Packet p;
  p.ft = FiveTuple{0x0A010203, 0xC0A80102, 443, 51000, 6};
  p.ts_ns = 5'000'000;
  return p;
}

// -------- hash units --------

TEST(HashUnit, UnconfiguredHashesNothing) {
  HashUnit u(0);
  const CandidateKey a = serialize_candidate_key(sample_packet());
  Packet other = sample_packet();
  other.ft.src_ip ^= 0xFFFF;
  const CandidateKey b = serialize_candidate_key(other);
  EXPECT_EQ(u.compute(a), u.compute(b)) << "all input masked off => constant";
}

TEST(HashUnit, MaskSelectsFields) {
  HashUnit u(0);
  u.set_mask(FlowKeySpec::src_ip().mask());
  Packet p1 = sample_packet();
  Packet p2 = sample_packet();
  p2.ft.dst_ip ^= 0xFF;  // not part of the key
  p2.ft.src_port ^= 1;
  EXPECT_EQ(u.compute(serialize_candidate_key(p1)), u.compute(serialize_candidate_key(p2)));
  p2.ft.src_ip ^= 1;  // part of the key
  EXPECT_NE(u.compute(serialize_candidate_key(p1)), u.compute(serialize_candidate_key(p2)));
}

TEST(HashUnit, ReconfigurableAtRuntime) {
  HashUnit u(0);
  u.set_mask(FlowKeySpec::src_ip().mask());
  const CandidateKey k = serialize_candidate_key(sample_packet());
  const std::uint32_t h1 = u.compute(k);
  u.set_mask(FlowKeySpec::dst_ip().mask());
  EXPECT_NE(u.compute(k), h1);
  u.clear_mask();
  EXPECT_FALSE(u.configured());
}

TEST(HashUnit, DistinctUnitsAreIndependent) {
  HashUnit a(0), b(1), c(2);
  for (auto* u : {&a, &b, &c}) u->set_mask(FlowKeySpec::five_tuple().mask());
  const CandidateKey k = serialize_candidate_key(sample_packet());
  std::set<std::uint32_t> vals = {a.compute(k), b.compute(k), c.compute(k)};
  EXPECT_EQ(vals.size(), 3u);
}

// -------- register / SALU --------

TEST(RegisterArray, RejectsBadGeometry) {
  EXPECT_THROW(RegisterArray(0), std::invalid_argument);
  EXPECT_THROW(RegisterArray(8, 0), std::invalid_argument);
  EXPECT_THROW(RegisterArray(8, 33), std::invalid_argument);
}

TEST(RegisterArray, WidthMasksWrites) {
  RegisterArray r(4, 8);
  r.write(0, 0x1FF);
  EXPECT_EQ(r.read(0), 0xFFu);
}

TEST(RegisterArray, RangeOps) {
  RegisterArray r(8);
  for (std::uint32_t i = 0; i < 8; ++i) r.write(i, i + 1);
  const auto mid = r.read_range(2, 5);
  EXPECT_EQ(mid, (std::vector<std::uint32_t>{3, 4, 5}));
  r.clear_range(2, 5);
  EXPECT_EQ(r.read(2), 0u);
  EXPECT_EQ(r.read(5), 6u);
  EXPECT_THROW(r.read_range(5, 2), std::out_of_range);
  EXPECT_THROW(r.read_range(0, 9), std::out_of_range);
}

TEST(RegisterArray, SramBlocks) {
  // 65536 x 32b = 2 Mb = 16 blocks of 128 Kb.
  EXPECT_EQ(RegisterArray(65536, 32).sram_blocks(), 16u);
  EXPECT_EQ(RegisterArray(1, 32).sram_blocks(), 1u);
}

TEST(Salu, PreloadLimitIsFour) {
  RegisterArray r(4);
  Salu s(r);
  s.preload(StatefulOp::kCondAdd);
  s.preload(StatefulOp::kMax);
  s.preload(StatefulOp::kAndOr);
  s.preload(StatefulOp::kNop);
  EXPECT_EQ(s.loaded_ops(), 4u);
  s.preload(StatefulOp::kCondAdd);  // duplicate is a no-op
  EXPECT_EQ(s.loaded_ops(), 4u);
}

TEST(Salu, ExecuteRequiresPreload) {
  RegisterArray r(4);
  Salu s(r);
  EXPECT_THROW(s.execute(StatefulOp::kMax, 0, 1, 0), std::runtime_error);
}

// Appendix A semantics.
TEST(Salu, CondAddAddsBelowThreshold) {
  RegisterArray r(4);
  Salu s(r);
  s.preload(StatefulOp::kCondAdd);
  EXPECT_EQ(s.execute(StatefulOp::kCondAdd, 0, 5, 100), 5u);
  EXPECT_EQ(s.execute(StatefulOp::kCondAdd, 0, 5, 100), 10u);
  EXPECT_EQ(r.read(0), 10u);
}

TEST(Salu, CondAddReturnsZeroAtOrAboveThreshold) {
  RegisterArray r(4);
  Salu s(r);
  s.preload(StatefulOp::kCondAdd);
  r.write(0, 100);
  EXPECT_EQ(s.execute(StatefulOp::kCondAdd, 0, 5, 100), 0u);
  EXPECT_EQ(r.read(0), 100u) << "no update when register >= p2";
}

TEST(Salu, CondAddSaturatesAtWidth) {
  RegisterArray r(4, 16);
  Salu s(r);
  s.preload(StatefulOp::kCondAdd);
  r.write(0, 0xFFFE);
  s.execute(StatefulOp::kCondAdd, 0, 100, 0xFFFF'FFFF);
  EXPECT_EQ(r.read(0), 0xFFFFu);
}

TEST(Salu, MaxUpdatesAndReturns) {
  RegisterArray r(4);
  Salu s(r);
  s.preload(StatefulOp::kMax);
  EXPECT_EQ(s.execute(StatefulOp::kMax, 1, 42, 0), 42u);
  EXPECT_EQ(s.execute(StatefulOp::kMax, 1, 7, 0), 0u) << "no update => returns 0";
  EXPECT_EQ(r.read(1), 42u);
}

TEST(Salu, AndOrSelectsByP2) {
  RegisterArray r(4);
  Salu s(r);
  s.preload(StatefulOp::kAndOr);
  EXPECT_EQ(s.execute(StatefulOp::kAndOr, 2, 0b1010, 1), 0b1010u);  // OR
  EXPECT_EQ(s.execute(StatefulOp::kAndOr, 2, 0b0110, 1), 0b1110u);  // OR
  EXPECT_EQ(s.execute(StatefulOp::kAndOr, 2, 0b0110, 0), 0b0110u);  // AND
}

TEST(Salu, NopReadsWithoutWriting) {
  RegisterArray r(4);
  Salu s(r);
  s.preload(StatefulOp::kNop);
  r.write(3, 99);
  EXPECT_EQ(s.execute(StatefulOp::kNop, 3, 1, 1), 99u);
  EXPECT_EQ(r.read(3), 99u);
}

// -------- TCAM --------

TEST(Tcam, ExactAndWildcardMatch) {
  TcamTable<int> t;
  t.install({0x10, 0xFF}, 1, 100);
  t.install({0x00, 0x00}, 9, 200);  // match-anything, lower priority
  EXPECT_EQ(*t.lookup(0x10), 100);
  EXPECT_EQ(*t.lookup(0x55), 200);
}

TEST(Tcam, PriorityWins) {
  TcamTable<int> t;
  t.install({0x10, 0xF0}, 5, 1);
  t.install({0x12, 0xFF}, 2, 2);
  EXPECT_EQ(*t.lookup(0x12), 2) << "more specific entry has higher priority";
  EXPECT_EQ(*t.lookup(0x15), 1);
}

TEST(Tcam, NoMatchReturnsNull) {
  TcamTable<int> t;
  t.install({0x10, 0xFF}, 1, 1);
  EXPECT_EQ(t.lookup(0x11), nullptr);
}

TEST(Tcam, RemoveIf) {
  TcamTable<int> t;
  t.install({1, 0xFF}, 1, 10);
  t.install({2, 0xFF}, 1, 20);
  EXPECT_EQ(t.remove_if([](int a) { return a == 10; }), 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(1), nullptr);
}

TEST(Tcam, RangeExpansionAlignedBlockIsOneEntry) {
  EXPECT_EQ(range_to_ternary(0, 65535, 16).size(), 1u);
  EXPECT_EQ(range_to_ternary(16384, 32767, 16).size(), 1u);
  EXPECT_EQ(range_to_ternary(0, 32767, 16).size(), 1u);
}

TEST(Tcam, RangeExpansionWorstCase) {
  // [1, 2^16-2] is the classic worst case: 2*(w-1) entries.
  const auto v = range_to_ternary(1, 65534, 16);
  EXPECT_EQ(v.size(), 30u);
}

TEST(Tcam, RangeExpansionRejectsBadInput) {
  EXPECT_THROW(range_to_ternary(5, 4, 16), std::invalid_argument);
  EXPECT_THROW(range_to_ternary(0, 70000, 16), std::invalid_argument);
  EXPECT_THROW(range_to_ternary(0, 1, 0), std::invalid_argument);
}

TEST(Tcam, BlocksFor) {
  EXPECT_EQ(tcam_blocks_for(1, 16), 1u);
  EXPECT_EQ(tcam_blocks_for(512, 16), 1u);
  EXPECT_EQ(tcam_blocks_for(513, 16), 2u);
  EXPECT_EQ(tcam_blocks_for(1, 45), 2u) << "wide keys gang blocks";
}

struct RangeCase {
  std::uint64_t lo, hi;
  unsigned width;
};

class RangeExpansionProperty : public ::testing::TestWithParam<RangeCase> {};

TEST_P(RangeExpansionProperty, CoversExactlyTheRange) {
  const auto [lo, hi, width] = GetParam();
  const auto patterns = range_to_ternary(lo, hi, width);
  const std::uint64_t max_key = width == 64 ? ~0ull : (1ull << width) - 1;
  // Check membership densely for small widths, sampled for large ones.
  Rng rng(1234);
  auto matches_any = [&](std::uint64_t key) {
    for (const auto& p : patterns) {
      if (p.matches(key)) return true;
    }
    return false;
  };
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t key = width <= 12 ? static_cast<std::uint64_t>(i) % (max_key + 1)
                                          : rng.next() & max_key;
    EXPECT_EQ(matches_any(key), key >= lo && key <= hi) << "key=" << key;
  }
  // Boundary keys must behave exactly.
  EXPECT_TRUE(matches_any(lo));
  EXPECT_TRUE(matches_any(hi));
  if (lo > 0) {
    EXPECT_FALSE(matches_any(lo - 1));
  }
  if (hi < max_key) {
    EXPECT_FALSE(matches_any(hi + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RangeExpansionProperty,
    ::testing::Values(RangeCase{0, 0, 8}, RangeCase{255, 255, 8}, RangeCase{3, 200, 8},
                      RangeCase{1, 254, 8}, RangeCase{0, 4095, 12},
                      RangeCase{100, 3000, 12}, RangeCase{4000, 4095, 12},
                      RangeCase{12345, 54321, 16}, RangeCase{0, 0xFFFF'FFFF, 32},
                      RangeCase{1, 0xFFFF'FFFE, 32},
                      RangeCase{0x1234'5678, 0x9ABC'DEF0, 32}));

// -------- MAU stage / pipeline --------

TEST(MauStage, AllocateRespectsCapacity) {
  MauStage st;
  StageDemand d;
  d.add(Resource::kSalu, 3);
  EXPECT_TRUE(st.allocate(d));
  EXPECT_EQ(st.used(Resource::kSalu), 3u);
  StageDemand d2;
  d2.add(Resource::kSalu, 2);
  EXPECT_FALSE(st.allocate(d2)) << "4 SALUs per stage";
  EXPECT_EQ(st.used(Resource::kSalu), 3u) << "failed allocation must not leak";
}

TEST(MauStage, ReleaseClampsAtZero) {
  MauStage st;
  StageDemand d;
  d.add(Resource::kHashUnit, 2);
  st.allocate(d);
  st.release(d);
  st.release(d);
  EXPECT_EQ(st.used(Resource::kHashUnit), 0u);
}

TEST(MauStage, Utilization) {
  MauStage st;
  StageDemand d;
  d.add(Resource::kHashUnit, 3);
  st.allocate(d);
  EXPECT_DOUBLE_EQ(st.utilization(Resource::kHashUnit), 0.5);
}

TEST(Pipeline, PhvBudget) {
  Pipeline p(12, 100);
  EXPECT_TRUE(p.allocate_phv(60));
  EXPECT_FALSE(p.allocate_phv(50));
  EXPECT_TRUE(p.allocate_phv(40));
  EXPECT_DOUBLE_EQ(p.phv_utilization(), 1.0);
  p.release_phv(100);
  EXPECT_EQ(p.phv_used(), 0u);
}

TEST(Pipeline, AggregateUtilization) {
  Pipeline p(2);
  StageDemand d;
  d.add(Resource::kSalu, 4);
  p.stage(0).allocate(d);
  EXPECT_DOUBLE_EQ(p.utilization(Resource::kSalu), 0.5);
  EXPECT_EQ(p.total_used(Resource::kSalu), 4u);
  EXPECT_EQ(p.total_capacity(Resource::kSalu), 8u);
}

}  // namespace
}  // namespace flymon::dataplane
