// Epoch-based measurement driver: slices a time-sorted trace into fixed
// windows, processes each through the data plane, hands the frozen state to
// a readout callback, then clears registers for the next window — the
// standard sketch measurement loop (paper §5: "measurement epoch").
#pragma once

#include <cstdint>
#include <span>

#include "core/flymon_dataplane.hpp"
#include "packet/packet.hpp"

namespace flymon::control {

class EpochRunner {
 public:
  EpochRunner(FlyMonDataPlane& dp, std::uint64_t epoch_ns)
      : dp_(&dp), epoch_ns_(epoch_ns) {}

  std::uint64_t epoch_ns() const noexcept { return epoch_ns_; }

  /// Run a time-sorted trace.  For each epoch, packets are processed, then
  /// `readout(epoch_index, packets_of_epoch)` runs against the frozen
  /// registers, then registers are cleared.  Returns the number of epochs.
  template <typename Readout>
  unsigned run(std::span<const Packet> trace, Readout&& readout) {
    unsigned epoch = 0;
    std::size_t begin = 0;
    while (begin < trace.size()) {
      const std::uint64_t window_end =
          (static_cast<std::uint64_t>(epoch) + 1) * epoch_ns_;
      std::size_t end = begin;
      while (end < trace.size() && trace[end].ts_ns < window_end) ++end;
      for (std::size_t i = begin; i < end; ++i) dp_->process(trace[i]);
      readout(epoch, trace.subspan(begin, end - begin));
      dp_->clear_registers();
      begin = end;
      ++epoch;
    }
    return epoch;
  }

 private:
  FlyMonDataPlane* dp_;
  std::uint64_t epoch_ns_;
};

}  // namespace flymon::control
