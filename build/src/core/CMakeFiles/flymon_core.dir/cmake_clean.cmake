file(REMOVE_RECURSE
  "CMakeFiles/flymon_core.dir/address_translation.cpp.o"
  "CMakeFiles/flymon_core.dir/address_translation.cpp.o.d"
  "CMakeFiles/flymon_core.dir/cmu.cpp.o"
  "CMakeFiles/flymon_core.dir/cmu.cpp.o.d"
  "CMakeFiles/flymon_core.dir/cmu_group.cpp.o"
  "CMakeFiles/flymon_core.dir/cmu_group.cpp.o.d"
  "CMakeFiles/flymon_core.dir/compression.cpp.o"
  "CMakeFiles/flymon_core.dir/compression.cpp.o.d"
  "CMakeFiles/flymon_core.dir/flymon_dataplane.cpp.o"
  "CMakeFiles/flymon_core.dir/flymon_dataplane.cpp.o.d"
  "CMakeFiles/flymon_core.dir/memory_partition.cpp.o"
  "CMakeFiles/flymon_core.dir/memory_partition.cpp.o.d"
  "CMakeFiles/flymon_core.dir/task.cpp.o"
  "CMakeFiles/flymon_core.dir/task.cpp.o.d"
  "libflymon_core.a"
  "libflymon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flymon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
