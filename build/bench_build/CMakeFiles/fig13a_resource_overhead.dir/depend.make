# Empty dependencies file for fig13a_resource_overhead.
# This may be replaced when dependencies are built.
