# Empty compiler generated dependencies file for flymon_analysis.
# This may be replaced when dependencies are built.
