#include "packet/exact.hpp"

#include <cmath>

#include "common/hash.hpp"

namespace flymon {

std::uint64_t read_meta(const Packet& p, MetaField f) noexcept {
  switch (f) {
    case MetaField::kOne: return 1;
    case MetaField::kWireBytes: return p.wire_bytes;
    case MetaField::kQueueLen: return p.queue_len;
    case MetaField::kQueueDelay: return p.queue_delay_ns;
    case MetaField::kTimestamp: return p.ts_ns >> kTsShift;
  }
  return 0;
}

FreqMap ExactStats::frequency(std::span<const Packet> trace, const FlowKeySpec& key,
                              MetaField param) {
  FreqMap out;
  for (const Packet& p : trace) out[extract_flow_key(p, key)] += read_meta(p, param);
  return out;
}

FreqMap ExactStats::distinct(std::span<const Packet> trace, const FlowKeySpec& key,
                             const FlowKeySpec& param_key) {
  std::unordered_map<FlowKeyValue, std::unordered_set<std::uint64_t>> sets;
  for (const Packet& p : trace) {
    const FlowKeyValue pv = extract_flow_key(p, param_key);
    sets[extract_flow_key(p, key)].insert(
        hash64(std::span<const std::uint8_t>(pv.bytes.data(), pv.bytes.size()), 0xD157ull));
  }
  FreqMap out;
  out.reserve(sets.size());
  for (const auto& [k, s] : sets) out[k] = s.size();
  return out;
}

FreqMap ExactStats::max_value(std::span<const Packet> trace, const FlowKeySpec& key,
                              MetaField param) {
  FreqMap out;
  for (const Packet& p : trace) {
    auto& slot = out[extract_flow_key(p, key)];
    slot = std::max<std::uint64_t>(slot, read_meta(p, param));
  }
  return out;
}

FreqMap ExactStats::max_interarrival(std::span<const Packet> trace,
                                     const FlowKeySpec& key) {
  std::unordered_map<FlowKeyValue, std::uint64_t> last_seen;
  FreqMap out;
  for (const Packet& p : trace) {
    const FlowKeyValue k = extract_flow_key(p, key);
    const auto [it, fresh] = last_seen.try_emplace(k, p.ts_ns);
    if (!fresh) {
      const std::uint64_t gap = p.ts_ns >= it->second ? p.ts_ns - it->second : 0;
      auto& slot = out[k];
      slot = std::max(slot, gap);
      it->second = p.ts_ns;
    } else {
      out[k];  // flow exists with gap 0 until a second packet arrives
    }
  }
  return out;
}

std::uint64_t ExactStats::cardinality(std::span<const Packet> trace,
                                      const FlowKeySpec& key) {
  std::unordered_set<FlowKeyValue> flows;
  for (const Packet& p : trace) flows.insert(extract_flow_key(p, key));
  return flows.size();
}

std::map<std::uint64_t, std::uint64_t> ExactStats::size_distribution(const FreqMap& freq) {
  std::map<std::uint64_t, std::uint64_t> dist;
  for (const auto& [k, f] : freq) ++dist[f];
  return dist;
}

double ExactStats::flow_entropy(const FreqMap& freq) {
  double total = 0;
  for (const auto& [k, f] : freq) total += static_cast<double>(f);
  if (total <= 0) return 0;
  double h = 0;
  for (const auto& [k, f] : freq) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / total;
    h -= p * std::log(p);
  }
  return h;
}

std::vector<FlowKeyValue> ExactStats::over_threshold(const FreqMap& freq,
                                                     std::uint64_t threshold) {
  std::vector<FlowKeyValue> out;
  for (const auto& [k, f] : freq) {
    if (f >= threshold) out.push_back(k);
  }
  return out;
}

}  // namespace flymon
