file(REMOVE_RECURSE
  "../bench/fig14c_ddos_victims"
  "../bench/fig14c_ddos_victims.pdb"
  "CMakeFiles/fig14c_ddos_victims.dir/fig14c_ddos_victims.cpp.o"
  "CMakeFiles/fig14c_ddos_victims.dir/fig14c_ddos_victims.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14c_ddos_victims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
