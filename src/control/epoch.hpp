// Epoch-based measurement driver: slices a time-sorted trace into fixed
// windows, processes each through the data plane, hands the frozen state to
// a readout callback, then clears registers for the next window — the
// standard sketch measurement loop (paper §5: "measurement epoch").
#pragma once

#include <cstdint>
#include <map>
#include <span>

#include "control/controller.hpp"
#include "core/flymon_dataplane.hpp"
#include "packet/packet.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/span.hpp"

namespace flymon::control {

class EpochRunner {
 public:
  EpochRunner(FlyMonDataPlane& dp, std::uint64_t epoch_ns)
      : dp_(&dp), epoch_ns_(epoch_ns) {}

  std::uint64_t epoch_ns() const noexcept { return epoch_ns_; }

  /// Record per-epoch metrics into `registry`: epoch count, packets-per-
  /// epoch histogram and — when a controller is given — every task's
  /// bucket saturation and its epoch-over-epoch delta, observed against the
  /// frozen registers just before they are cleared.
  void bind_telemetry(telemetry::Registry& registry,
                      const Controller* controller = nullptr) {
    registry_ = &registry;
    controller_ = controller;
    epochs_counter_ = &registry.counter("flymon_epochs_total");
    epoch_packets_ = &registry.histogram("flymon_epoch_packets");
    prev_saturation_.clear();
  }

  /// Run a time-sorted trace.  Epoch windows are aligned to the first
  /// packet's timestamp (rounded down to a whole window) so traces with a
  /// large absolute start time do not spin through empty leading windows.
  /// For each epoch, packets are processed, then
  /// `readout(epoch_index, packets_of_epoch)` runs against the frozen
  /// registers, then registers are cleared.  Returns the number of epochs.
  template <typename Readout>
  unsigned run(std::span<const Packet> trace, Readout&& readout) {
    if (trace.empty()) return 0;
    const std::uint64_t origin = (trace.front().ts_ns / epoch_ns_) * epoch_ns_;
    unsigned epoch = 0;
    std::size_t begin = 0;
    while (begin < trace.size()) {
      const std::uint64_t window_end =
          origin + (static_cast<std::uint64_t>(epoch) + 1) * epoch_ns_;
      std::size_t end = begin;
      while (end < trace.size() && trace[end].ts_ns < window_end) ++end;
      // Fans out across the worker pool when one is enabled (falls back to
      // the sequential batched path otherwise); the epoch boundary is a
      // merge point, so the readout sees exactly the registers a
      // sequential run would have produced.
      {
        trace::Span process("epoch.process", end - begin);
        dp_->process_batch_parallel(trace.subspan(begin, end - begin));
        dp_->merge_shards();
      }
      record_epoch(end - begin);
      {
        trace::Span read("epoch.readout", epoch);
        readout(epoch, trace.subspan(begin, end - begin));
      }
      dp_->clear_registers();
      trace::instant("epoch.boundary", epoch);
      begin = end;
      ++epoch;
    }
    return epoch;
  }

 private:
  void record_epoch(std::size_t packets) {
    if (registry_ == nullptr) return;
    epochs_counter_->inc();
    epoch_packets_->observe(static_cast<double>(packets));
    if (controller_ == nullptr || !telemetry::enabled()) return;
    for (const TaskHealth& h : controller_->health()) {
      const std::string id = std::to_string(h.task_id);
      registry_->gauge("flymon_epoch_task_saturation", {{"task", id}})
          .set(h.max_saturation);
      const auto it = prev_saturation_.find(h.task_id);
      if (it != prev_saturation_.end()) {
        registry_->gauge("flymon_epoch_task_saturation_delta", {{"task", id}})
            .set(h.max_saturation - it->second);
      }
      prev_saturation_[h.task_id] = h.max_saturation;
    }
  }

  FlyMonDataPlane* dp_;
  std::uint64_t epoch_ns_;
  telemetry::Registry* registry_ = nullptr;
  const Controller* controller_ = nullptr;
  telemetry::Counter* epochs_counter_ = nullptr;
  telemetry::Histogram* epoch_packets_ = nullptr;
  std::map<std::uint32_t, double> prev_saturation_;
};

}  // namespace flymon::control
