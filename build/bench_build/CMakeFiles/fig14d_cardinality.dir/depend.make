# Empty dependencies file for fig14d_cardinality.
# This may be replaced when dependencies are built.
