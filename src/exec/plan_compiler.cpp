#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/bits.hpp"
#include "core/flymon_dataplane.hpp"
#include "exec/exec_plan.hpp"
#include "ir/ir.hpp"
#include "trace/span.hpp"

namespace flymon::exec {

namespace {

std::uint32_t prefix_mask(std::uint8_t len) noexcept {
  if (len == 0) return 0;
  if (len >= 32) return 0xFFFF'FFFFu;
  return ~((1u << (32 - len)) - 1u);
}

const char* prep_name(PrepFn f) noexcept {
  switch (f) {
    case PrepFn::kNone: return "none";
    case PrepFn::kCouponOneHot: return "coupon";
    case PrepFn::kBitSelectOneHot: return "onehot";
    case PrepFn::kSubtractGated: return "subgate";
    case PrepFn::kKeepOnChainZero: return "keep0";
    case PrepFn::kBitSelectOneHotGated: return "onehot-gated";
  }
  return "?";
}

void describe_param(std::ostringstream& os, const ParamSelect& sel) {
  switch (sel.source) {
    case ParamSelect::Source::kConst:
      os << "const:" << sel.const_value;
      break;
    case ParamSelect::Source::kMeta:
      os << "meta:" << static_cast<unsigned>(sel.meta);
      break;
    case ParamSelect::Source::kCompressedKey:
      os << "key:u" << int{sel.key_sel.unit_a} << "^u" << int{sel.key_sel.unit_b}
         << "[" << unsigned{sel.slice.offset} << "+" << unsigned{sel.slice.width}
         << "]";
      break;
    case ParamSelect::Source::kChain:
      os << "chain:" << sel.const_value;
      break;
  }
}

/// Pointer-free, deterministic description of one installed entry.  Two
/// compiles of behaviourally identical deployments produce identical lines;
/// the --plan-diff tooling compares them as sets.
std::string describe_entry(unsigned g, unsigned c, const CmuTaskEntry& e,
                           const EntryOwnership* owner) {
  std::ostringstream os;
  if (owner != nullptr) {
    os << "task " << owner->task_id << " \"" << owner->name << "\" row "
       << owner->row << " unit " << owner->unit;
  } else {
    os << "phys " << e.task_id;
  }
  os << " @g" << g << "/c" << c << ": filter=";
  if (e.filter.is_wildcard()) {
    os << "any";
  } else {
    os << e.filter.src_ip << "/" << unsigned{e.filter.src_len} << "->"
       << e.filter.dst_ip << "/" << unsigned{e.filter.dst_len};
  }
  os << " prio=" << e.priority;
  if (e.sample_probability < 1.0) {
    os << " sample=" << std::setprecision(17) << e.sample_probability;
  }
  os << " key=u" << int{e.key_sel.unit_a} << "^u" << int{e.key_sel.unit_b}
     << "[" << unsigned{e.key_slice.offset} << "+" << unsigned{e.key_slice.width}
     << "] mem[" << e.partition.base << "+" << e.partition.size << "]";
  os << " p1=";
  describe_param(os, e.p1);
  os << " p2=";
  describe_param(os, e.p2);
  os << " prep=" << prep_name(e.prep);
  if (e.prep == PrepFn::kCouponOneHot) {
    os << "(" << e.coupon.num_coupons << "," << std::setprecision(17)
       << e.coupon.draw_probability << ")";
  }
  if (e.chain_gate != 0) os << " gate=" << e.chain_gate;
  os << " op=" << dataplane::to_string(e.op);
  if (e.output_old_value) os << " old";
  if (e.chain_out != 0) os << " chain_out=" << e.chain_out;
  if (e.chain_fallback) os << " fallback";
  return os.str();
}

}  // namespace

std::shared_ptr<const ExecPlan> PlanCompiler::compile(
    FlyMonDataPlane& dp, std::span<const EntryOwnership> owners,
    std::uint64_t generation) {
  trace::Span span("exec.compile", generation);
  auto plan = std::make_shared<ExecPlan>();
  plan->generation_ = generation;
  plan->owners_.assign(owners.begin(), owners.end());
  plan->slots_.emplace_back();  // lane 0: constant zero

  // Dense chain-channel remap: channel 0 (the "unused" sentinel, never
  // written by the interpreted path) keeps dense index 0, which batch
  // scratch zero-fills and no compiled entry writes.
  std::map<std::uint32_t, std::uint16_t> chain_index;
  const auto chain_of = [&](std::uint32_t channel) -> std::uint16_t {
    if (channel == 0) return 0;
    const auto [it, fresh] = chain_index.emplace(
        channel, static_cast<std::uint16_t>(chain_index.size() + 1));
    (void)fresh;
    return it->second;
  };

  // Enumerate the deployment through the same walk the IR builder lowers
  // analyzer nodes from, so the compiled plan and the static analyses can
  // never disagree about the entry set or its evaluation order.
  struct RawEntry {
    unsigned group, cmu;
    const CmuTaskEntry* entry;
  };
  std::vector<RawEntry> raw;
  ir::for_each_installed_entry(
      dp, [&](unsigned g, unsigned c, Cmu&, const CmuTaskEntry& e) {
        raw.push_back({g, c, &e});
      });
  std::size_t ri = 0;

  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    CmuGroup& grp = dp.group(g);
    const CompressionStage& comp = grp.compression();

    // Hash lanes: one slot per configured unit *referenced by some entry*
    // (unreferenced units are still counted for hash-invocation telemetry
    // but never influence state, so the plan skips hashing them).
    std::map<unsigned, std::uint16_t> unit_slot;
    const auto slot_of = [&](std::int8_t unit) -> std::uint16_t {
      if (unit < 0) return 0;
      const auto u = static_cast<unsigned>(unit);
      if (u >= comp.num_units() || !comp.spec_of(u)) return 0;
      const auto it = unit_slot.find(u);
      if (it != unit_slot.end()) return it->second;
      const auto slot = static_cast<std::uint16_t>(plan->slots_.size());
      plan->slots_.push_back(HashSlot{comp.unit(u), g, u});
      unit_slot.emplace(u, slot);
      return slot;
    };

    CompiledGroup cg;
    cg.cmu_begin = static_cast<std::uint32_t>(plan->cmus_.size());
    cg.packets = grp.packets_counter();
    cg.hashes = grp.hash_counter();
    for (unsigned u = 0; u < comp.num_units(); ++u) {
      if (comp.spec_of(u)) ++cg.configured_units;
    }

    for (unsigned c = 0; c < grp.num_cmus(); ++c) {
      Cmu& cmu = grp.cmu(c);
      CompiledCmu cc;
      cc.entry_begin = static_cast<std::uint32_t>(plan->entries_.size());
      cc.reg = &cmu.reg();
      cc.updates = cmu.updates_counter();
      cc.sampled_out = cmu.sampled_out_counter();
      cc.prep_aborts = cmu.prep_aborts_counter();

      while (ri < raw.size() && raw[ri].group == g && raw[ri].cmu == c) {
        const CmuTaskEntry& e = *raw[ri++].entry;
        CompiledEntry ce;
        ce.filter_src_ip = e.filter.src_ip;
        ce.filter_src_mask = prefix_mask(e.filter.src_len);
        ce.filter_dst_ip = e.filter.dst_ip;
        ce.filter_dst_mask = prefix_mask(e.filter.dst_len);
        ce.sampled = e.sample_probability < 1.0;
        ce.sample_probability = e.sample_probability;
        ce.sample_seed = 0xC01Full + e.task_id;

        ce.key_slot_a = slot_of(e.key_sel.unit_a);
        ce.key_slot_b = slot_of(e.key_sel.unit_b);
        ce.key_shift = e.key_slice.offset;
        ce.key_mask = e.key_slice.width >= 32
                          ? 0xFFFF'FFFFu
                          : ((1u << e.key_slice.width) - 1u);

        if (e.partition.size == 0 || e.partition.end() > cmu.reg().size()) {
          throw std::logic_error("PlanCompiler: entry partition outside register");
        }
        const unsigned size_log = log2_floor(e.partition.size);
        ce.addr_shift = e.key_slice.width >= size_log
                            ? static_cast<std::uint8_t>(e.key_slice.width - size_log)
                            : 0u;
        ce.addr_mask = e.partition.size - 1u;
        ce.addr_base = e.partition.base;

        const auto lower_param = [&](const ParamSelect& sel) {
          CompiledParam p;
          switch (sel.source) {
            case ParamSelect::Source::kConst:
              p.kind = CompiledParam::Kind::kConst;
              p.value = sel.const_value;
              break;
            case ParamSelect::Source::kMeta:
              p.kind = CompiledParam::Kind::kMeta;
              p.meta = sel.meta;
              break;
            case ParamSelect::Source::kCompressedKey:
              p.kind = CompiledParam::Kind::kKey;
              p.slot_a = slot_of(sel.key_sel.unit_a);
              p.slot_b = slot_of(sel.key_sel.unit_b);
              p.shift = sel.slice.offset;
              p.mask = sel.slice.width >= 32 ? 0xFFFF'FFFFu
                                             : ((1u << sel.slice.width) - 1u);
              break;
            case ParamSelect::Source::kChain:
              p.kind = CompiledParam::Kind::kChain;
              p.value = chain_of(sel.const_value);
              break;
          }
          return p;
        };
        ce.p1 = lower_param(e.p1);
        ce.p2 = lower_param(e.p2);

        ce.prep = e.prep;
        if (e.prep == PrepFn::kSubtractGated || e.prep == PrepFn::kKeepOnChainZero ||
            e.prep == PrepFn::kBitSelectOneHotGated) {
          ce.gate_chain = chain_of(e.chain_gate);
        }
        if (e.prep == PrepFn::kCouponOneHot) {
          ce.coupon_count = e.coupon.num_coupons;
          ce.coupon_probability = e.coupon.draw_probability;
          // Same operands, same expression as the interpreted path, so the
          // precomputed threshold is bit-identical.
          ce.coupon_total = e.coupon.draw_probability * e.coupon.num_coupons;
        }

        ce.op = e.op;
        ce.value_mask = cmu.reg().value_mask();
        ce.output_old_value = e.output_old_value;
        ce.one_hot_export = e.prep == PrepFn::kBitSelectOneHot ||
                            e.prep == PrepFn::kCouponOneHot;
        ce.chain_out = e.chain_out != 0 ? chain_of(e.chain_out) : kNoChain;
        ce.chain_fallback = e.chain_fallback;

        // Resolve counter series at publish time, never on the packet path.
        cc.op_counters[static_cast<std::size_t>(e.op)] = cmu.op_counter(e.op);

        // Shard-merge analysis: this entry's writes fold exactly across
        // per-worker register replicas only if its operation is a
        // commutative/associative reduction whose behaviour never depends
        // on the register's current value in a non-monoidal way
        // (DESIGN.md §11).  Any violation poisons the whole plan — the
        // worker pool then falls back to sequential execution.
        const auto blocker = [&](MergeBlockerKind kind, const char* why) {
          std::ostringstream os;
          os << "g" << g << "/c" << c << " phys " << e.task_id << ": " << why;
          plan->merge_blockers_.push_back(os.str());
          plan->merge_blocker_kinds_.push_back(kind);
        };
        if (ce.chain_out != kNoChain) {
          blocker(MergeBlockerKind::kChainOutput,
                  "publishes register-derived value on a chain channel");
        }
        MergeRegion region;
        region.cmu = static_cast<std::uint32_t>(plan->cmus_.size());
        region.base = ce.addr_base;
        region.size = ce.addr_mask + 1u;
        region.value_mask = ce.value_mask;
        bool writes_state = true;
        switch (e.op) {
          case dataplane::StatefulOp::kNop:
            writes_state = false;
            break;
          case dataplane::StatefulOp::kCondAdd: {
            region.kind = MergeKind::kSum;
            // Saturating sum is exact only when `cur < p2` can never gate
            // below saturation, i.e. the *effective* p2 (after prep
            // rewrites) is a constant >= the register's value mask.
            bool unconditional = false;
            switch (e.prep) {
              case PrepFn::kCouponOneHot:
              case PrepFn::kBitSelectOneHot:
                unconditional = 1u >= ce.value_mask;  // prep forces p2 = 1
                break;
              case PrepFn::kSubtractGated:
                unconditional = false;  // prep forces p2 = 0: register-gated
                break;
              default:
                unconditional = ce.p2.kind == CompiledParam::Kind::kConst &&
                                ce.p2.value >= ce.value_mask;
                break;
            }
            if (!unconditional) {
              blocker(MergeBlockerKind::kGatedCondAdd,
                      "Cond-ADD condition can gate on the register value");
            }
            break;
          }
          case dataplane::StatefulOp::kMax:
            region.kind = MergeKind::kMax;
            break;
          case dataplane::StatefulOp::kAndOr: {
            region.kind = MergeKind::kOr;
            // OR folds from the shard identity 0; AND would need an
            // all-ones identity, so the mode must be pinned to OR.
            bool or_pinned = false;
            switch (e.prep) {
              case PrepFn::kCouponOneHot:
              case PrepFn::kBitSelectOneHot:
                or_pinned = true;  // prep forces p2 = 1
                break;
              case PrepFn::kSubtractGated:
                or_pinned = false;  // prep forces p2 = 0 (AND mode)
                break;
              default:
                or_pinned = ce.p2.kind == CompiledParam::Kind::kConst &&
                            ce.p2.value != 0;
                break;
            }
            if (!or_pinned) {
              blocker(MergeBlockerKind::kAndMode,
                      "AND-OR not pinned to OR mode");
            }
            break;
          }
          case dataplane::StatefulOp::kXor:
            region.kind = MergeKind::kXor;
            break;
        }
        if (writes_state) plan->merge_regions_.push_back(region);

        const EntryOwnership* owner = nullptr;
        for (const EntryOwnership& o : plan->owners_) {
          if (o.group == g && o.cmu == c && o.phys_id == e.task_id) {
            owner = &o;
            break;
          }
        }
        plan->signature_.push_back(describe_entry(g, c, e, owner));
        plan->entries_.push_back(ce);
      }

      cc.entry_end = static_cast<std::uint32_t>(plan->entries_.size());
      plan->cmus_.push_back(cc);
    }

    cg.cmu_end = static_cast<std::uint32_t>(plan->cmus_.size());
    plan->groups_.push_back(cg);
  }

  plan->chain_count_ = chain_index.size() + 1;

  // Collapse duplicate merge windows (several filter entries of one task
  // share a partition) and reject overlapping windows that disagree on the
  // fold — mixed reductions over one cell are not a single monoid, so the
  // merge would not be exact.
  auto& regions = plan->merge_regions_;
  std::sort(regions.begin(), regions.end(),
            [](const MergeRegion& a, const MergeRegion& b) {
              if (a.cmu != b.cmu) return a.cmu < b.cmu;
              if (a.base != b.base) return a.base < b.base;
              if (a.size != b.size) return a.size < b.size;
              return a.kind < b.kind;
            });
  regions.erase(std::unique(regions.begin(), regions.end(),
                            [](const MergeRegion& a, const MergeRegion& b) {
                              return a.cmu == b.cmu && a.base == b.base &&
                                     a.size == b.size && a.kind == b.kind;
                            }),
                regions.end());
  for (std::size_t i = 0; i + 1 < regions.size(); ++i) {
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      const MergeRegion& a = regions[i];
      const MergeRegion& b = regions[j];
      if (a.cmu != b.cmu || a.base + a.size <= b.base) break;
      if (a.kind != b.kind) {
        std::ostringstream os;
        os << "cmu " << a.cmu << " [" << b.base
           << "]: overlapping merge windows disagree (" << to_string(a.kind)
           << " vs " << to_string(b.kind) << ")";
        plan->merge_blockers_.push_back(os.str());
        plan->merge_blocker_kinds_.push_back(MergeBlockerKind::kMixedWindow);
      }
    }
  }

  return plan;
}

}  // namespace flymon::exec
