// Hash primitives modelling the Tofino hash units used by FlyMon.
//
// Tofino's hash distribution units compute CRC-family hashes over selected
// PHV fields.  FlyMon's "dynamic hashing" feature lets the control plane
// mask out portions of the input at runtime; we model that with a per-call
// byte mask applied before the CRC (see dataplane::HashUnit).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace flymon {

/// CRC-32 over `data` with a configurable polynomial (reflected form) and
/// initial value.  Polynomial diversity is how distinct physical hash units
/// produce independent hashes of the same input.
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t poly_reflected = 0xEDB88320u,
                    std::uint32_t init = 0xFFFFFFFFu) noexcept;

/// A small set of distinct reflected CRC-32 polynomials (CRC-32, CRC-32C,
/// CRC-32K, CRC-32Q, ...) used to parameterise independent hash units.
std::uint32_t crc_polynomial(unsigned unit_index) noexcept;

/// 64-bit finaliser (splitmix64): used where software baselines need a
/// high-quality mix rather than a hardware-faithful CRC.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Seeded 64-bit hash of a byte string (FNV-1a core + splitmix finaliser).
/// Baseline sketches use this; the FlyMon data plane uses crc32 above.
std::uint64_t hash64(std::span<const std::uint8_t> data, std::uint64_t seed) noexcept;

/// Convenience: hash a trivially-copyable value.
template <typename T>
std::uint64_t hash64_value(const T& v, std::uint64_t seed) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  return hash64(std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(&v), sizeof(T)),
                seed);
}

}  // namespace flymon
