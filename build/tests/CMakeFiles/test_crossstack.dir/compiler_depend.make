# Empty compiler generated dependencies file for test_crossstack.
# This may be replaced when dependencies are built.
