#include "control/crossstack.hpp"

#include "dataplane/tofino_model.hpp"

namespace flymon::control {

using dataplane::StageDemand;
using dataplane::TofinoModel;

namespace {

/// Try to place one group with its C/I/P/O stage demands starting at
/// `start`; returns true and commits on success.
bool try_place(dataplane::Pipeline& pipe, unsigned start,
               const std::array<StageDemand, 4>& demands) {
  if (start + 4 > pipe.num_stages()) return false;
  for (unsigned s = 0; s < 4; ++s) {
    if (!pipe.stage(start + s).fits(demands[s])) return false;
  }
  for (unsigned s = 0; s < 4; ++s) pipe.stage(start + s).allocate(demands[s]);
  return true;
}

}  // namespace

CrossStackPlan cross_stack(unsigned num_stages, const CmuGroupConfig& cfg,
                           const StageDemand& baseline_per_stage,
                           unsigned baseline_phv_bits) {
  CrossStackPlan plan(num_stages, TofinoModel::kPhvBits);
  for (unsigned s = 0; s < num_stages; ++s) {
    plan.pipeline.stage(s).allocate(baseline_per_stage);
  }
  plan.pipeline.allocate_phv(baseline_phv_bits);

  const auto demands = CmuGroup::stage_demands(cfg);
  const unsigned group_phv = CmuGroup::phv_bits(cfg);

  // Shift-one-stage placement: group j starts at stage j; once the diagonal
  // is exhausted, scan every start position for any remaining fit.
  unsigned next_start = 0;
  while (true) {
    if (!plan.pipeline.allocate_phv(group_phv)) break;
    bool placed = false;
    for (unsigned probe = 0; probe < num_stages && !placed; ++probe) {
      const unsigned start = (next_start + probe) % num_stages;
      if (try_place(plan.pipeline, start, demands)) {
        plan.start_stage.push_back(start);
        ++plan.groups_placed;
        next_start = start + 1;
        placed = true;
      }
    }
    if (!placed) {
      plan.pipeline.release_phv(group_phv);
      break;
    }
  }
  return plan;
}

CrossStackPlan sequential_stack(unsigned num_stages, const CmuGroupConfig& cfg) {
  CrossStackPlan plan(num_stages, TofinoModel::kPhvBits);
  const auto demands = CmuGroup::stage_demands(cfg);
  const unsigned group_phv = CmuGroup::phv_bits(cfg);
  for (unsigned start = 0; start + 4 <= num_stages; start += 4) {
    if (!plan.pipeline.allocate_phv(group_phv)) break;
    if (!try_place(plan.pipeline, start, demands)) {
      plan.pipeline.release_phv(group_phv);
      break;
    }
    plan.start_stage.push_back(start);
    ++plan.groups_placed;
  }
  return plan;
}

SplicedPlan cross_stack_spliced(unsigned num_stages, const CmuGroupConfig& cfg) {
  SplicedPlan out{cross_stack(num_stages, cfg), 0, 0};
  out.straight_groups = out.plan.groups_placed;

  // Wrap-around placement into the leftover triangles: stage indices are
  // taken modulo the pipe length; such a group only sees a packet's second
  // pass, so its traffic is mirrored and recirculated (Appendix E, Fig 16).
  const auto demands = CmuGroup::stage_demands(cfg);
  const unsigned group_phv = CmuGroup::phv_bits(cfg);
  auto& pipe = out.plan.pipeline;
  for (unsigned start = num_stages >= 3 ? num_stages - 3 : 0; start < num_stages;
       ++start) {
    if (!pipe.allocate_phv(group_phv)) break;
    bool fits = true;
    for (unsigned s = 0; s < 4 && fits; ++s) {
      fits = pipe.stage((start + s) % num_stages).fits(demands[s]);
    }
    if (!fits) {
      pipe.release_phv(group_phv);
      continue;
    }
    for (unsigned s = 0; s < 4; ++s) {
      pipe.stage((start + s) % num_stages).allocate(demands[s]);
    }
    out.plan.start_stage.push_back(start);
    ++out.plan.groups_placed;
    ++out.spliced_groups;
  }
  return out;
}

unsigned max_cmus_without_compression(unsigned candidate_key_bits,
                                      unsigned phv_budget_bits,
                                      unsigned num_stages) {
  // Every CMU statically copies the whole candidate key set into a
  // dedicated PHV "dynamic key" field (paper §3.1.1) plus a 32-bit result.
  const unsigned per_cmu = candidate_key_bits + 32;
  const unsigned phv_limit = per_cmu == 0 ? 0 : phv_budget_bits / per_cmu;
  // A SALU-per-stage limit also applies: 4 SALUs x stages.
  const unsigned salu_limit = num_stages * TofinoModel::kSalusPerStage;
  return phv_limit < salu_limit ? phv_limit : salu_limit;
}

unsigned max_cmus_with_compression(unsigned candidate_key_bits,
                                   unsigned phv_budget_bits, unsigned num_stages,
                                   const CmuGroupConfig& cfg) {
  (void)candidate_key_bits;  // compressed keys are 32-bit regardless of key size
  const unsigned per_group = CmuGroup::phv_bits(cfg);
  const unsigned phv_groups = per_group == 0 ? 0 : phv_budget_bits / per_group;
  const CrossStackPlan plan = cross_stack(num_stages, cfg);
  const unsigned stage_groups = plan.groups_placed;
  const unsigned groups = phv_groups < stage_groups ? phv_groups : stage_groups;
  return groups * cfg.num_cmus;
}

}  // namespace flymon::control
