#include "exec/worker_pool.hpp"

#include <algorithm>

#include "core/flymon_dataplane.hpp"

namespace flymon::exec {

WorkerPool::WorkerPool(FlyMonDataPlane& dp, unsigned num_workers)
    : dp_(&dp), num_executors_(std::max(1u, num_workers)) {
  workers_.reserve(num_executors_);
  for (unsigned i = 0; i < num_executors_; ++i) {
    workers_.push_back(std::make_unique<Worker>(dp));
  }
  threads_.reserve(num_executors_ - 1);
  for (unsigned i = 0; i + 1 < num_executors_; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(job_mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::uint64_t WorkerPool::process(std::span<const Packet> pkts) {
  std::lock_guard<std::mutex> submit(submit_mu_);
  if (pkts.empty()) return dp_->plan_generation();

  // One snapshot per job: every chunk of this batch executes the same
  // plan, and a concurrent publisher fences on submit_mu_, so shard deltas
  // never straddle a reconfiguration.
  std::shared_ptr<const ExecPlan> plan = dp_->current_plan();
  if (plan == nullptr || !plan->shard_mergeable() || dp_->tracer() != nullptr) {
    fallback_batches_.fetch_add(1, std::memory_order_relaxed);
    return dp_->process_batch(pkts);
  }

  auto job = std::make_shared<Job>();
  job->plan = plan;
  job->pkts = pkts;
  job->chunk = std::max<std::size_t>(1, dp_->batch_options().chunk_size);
  job->num_chunks = (pkts.size() + job->chunk - 1) / job->chunk;
  job->remaining.store(job->num_chunks, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lk(job_mu_);
    job_ = job;
    ++job_seq_;
  }
  job_cv_.notify_all();

  // The caller is the last executor, on its own shard.
  run_chunks(*job, num_executors_ - 1);

  {
    std::unique_lock<std::mutex> lk(done_mu_);
    done_cv_.wait(lk, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lk(job_mu_);
    job_.reset();  // stragglers keep the Job alive via their own ref
  }

  parallel_batches_.fetch_add(1, std::memory_order_relaxed);
  chunks_.fetch_add(job->num_chunks, std::memory_order_relaxed);
  dp_->note_parallel_batch(pkts.size());
  return plan->generation();
}

void WorkerPool::worker_main(std::size_t shard_idx) {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(job_mu_);
      job_cv_.wait(lk, [&] { return stop_ || job_seq_ != seen; });
      if (stop_) return;
      seen = job_seq_;
      job = job_;
    }
    if (job != nullptr) run_chunks(*job, shard_idx);
  }
}

void WorkerPool::run_chunks(Job& job, std::size_t shard_idx) {
  Worker& w = *workers_[shard_idx];
  const ShardBinding binding = w.shard.binding();
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.num_chunks) return;  // nothing claimed: no completion debt
    const std::size_t begin = i * job.chunk;
    const std::size_t len = std::min(job.chunk, job.pkts.size() - begin);
    job.plan->run_batch_sharded(job.pkts.subspan(begin, len), w.scratch,
                                binding);
    w.shard.mark_dirty();
    // The release fetch_sub orders this executor's shard writes before the
    // submitter's acquire read of remaining == 0.
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(done_mu_);
      done_cv_.notify_all();
    }
  }
}

void WorkerPool::quiesce_and_merge() {
  std::lock_guard<std::mutex> submit(submit_mu_);
  merge_locked();
}

void WorkerPool::discard_shards() {
  std::lock_guard<std::mutex> submit(submit_mu_);
  for (auto& w : workers_) w->shard.discard();
}

void WorkerPool::merge_locked() {
  std::shared_ptr<const ExecPlan> plan = dp_->current_plan();
  bool any = false;
  for (auto& w : workers_) {
    if (!w->shard.dirty()) continue;
    if (plan == nullptr) {
      // Cannot happen under the fencing invariant (unpublish merges
      // first); degrade to discarding rather than folding blind.
      w->shard.discard();
      continue;
    }
    w->shard.merge_into(*plan);
    any = true;
  }
  if (any) merges_.fetch_add(1, std::memory_order_relaxed);
}

ParallelStats WorkerPool::stats() const noexcept {
  ParallelStats s;
  s.parallel_batches = parallel_batches_.load(std::memory_order_relaxed);
  s.fallback_batches = fallback_batches_.load(std::memory_order_relaxed);
  s.chunks = chunks_.load(std::memory_order_relaxed);
  s.merges = merges_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace flymon::exec
