# Empty dependencies file for ablation_key_slices.
# This may be replaced when dependencies are built.
