#include "packet/trace_io.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace flymon {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return std::uint64_t{get_u32(p)} | (std::uint64_t{get_u32(p + 4)} << 32);
}

constexpr std::size_t kRecordBytes = 4 + 4 + 2 + 2 + 1 + 4 + 8 + 4 + 4;  // 33

}  // namespace

void TraceIo::save(const std::string& path, const std::vector<Packet>& trace) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("TraceIo::save: cannot open " + path);

  std::vector<std::uint8_t> buf;
  buf.reserve(16 + trace.size() * kRecordBytes);
  put_u32(buf, kMagic);
  put_u32(buf, kVersion);
  put_u64(buf, trace.size());
  for (const Packet& p : trace) {
    put_u32(buf, p.ft.src_ip);
    put_u32(buf, p.ft.dst_ip);
    buf.push_back(static_cast<std::uint8_t>(p.ft.src_port));
    buf.push_back(static_cast<std::uint8_t>(p.ft.src_port >> 8));
    buf.push_back(static_cast<std::uint8_t>(p.ft.dst_port));
    buf.push_back(static_cast<std::uint8_t>(p.ft.dst_port >> 8));
    buf.push_back(p.ft.protocol);
    put_u32(buf, p.wire_bytes);
    put_u64(buf, p.ts_ns);
    put_u32(buf, p.queue_len);
    put_u32(buf, p.queue_delay_ns);
  }
  if (std::fwrite(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    throw std::runtime_error("TraceIo::save: short write to " + path);
  }
}

std::vector<Packet> TraceIo::load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("TraceIo::load: cannot open " + path);

  std::uint8_t header[16];
  if (std::fread(header, 1, sizeof header, f.get()) != sizeof header) {
    throw std::runtime_error("TraceIo::load: truncated header in " + path);
  }
  if (get_u32(header) != kMagic) throw std::runtime_error("TraceIo::load: bad magic");
  if (get_u32(header + 4) != kVersion) {
    throw std::runtime_error("TraceIo::load: unsupported version");
  }
  const std::uint64_t count = get_u64(header + 8);

  std::vector<std::uint8_t> buf(count * kRecordBytes);
  if (std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    throw std::runtime_error("TraceIo::load: truncated records in " + path);
  }
  std::vector<Packet> trace;
  trace.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t* r = buf.data() + i * kRecordBytes;
    Packet p;
    p.ft.src_ip = get_u32(r);
    p.ft.dst_ip = get_u32(r + 4);
    p.ft.src_port = static_cast<std::uint16_t>(r[8] | (r[9] << 8));
    p.ft.dst_port = static_cast<std::uint16_t>(r[10] | (r[11] << 8));
    p.ft.protocol = r[12];
    p.wire_bytes = get_u32(r + 13);
    p.ts_ns = get_u64(r + 17);
    p.queue_len = get_u32(r + 25);
    p.queue_delay_ns = get_u32(r + 29);
    trace.push_back(p);
  }
  return trace;
}

}  // namespace flymon
