// flymon_trace: scripted reconfiguration with span tracing enabled.
//
// Runs a Table-3-style scenario — deploy a CMS + BeauCoup + Bloom mix,
// process traffic across a worker pool, then resize and split under load —
// with span tracing on, and exports the collected timeline as Chrome
// trace-event JSON (load in ui.perfetto.dev or chrome://tracing: pid 1
// groups per-thread tracks, pid 2 one track per reconfiguration).
//
//   flymon_trace [--out <trace.json>] [--json <summary.json>] [--check]
//                [--workers N] [--packets N]
//
// --check verifies the tracing contract the DESIGN doc promises: every
// reconfiguration's end-to-end span must decompose into >= 95% covered
// plan/verify/compile/publish/fence/merge children (exit 1 otherwise).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "packet/trace_gen.hpp"
#include "telemetry/export.hpp"
#include "trace/chrome_export.hpp"
#include "trace/span.hpp"

using namespace flymon;

namespace {

struct ReconfigSummary {
  const char* name = "";
  std::uint64_t gen = 0;
  std::uint64_t dur_ns = 0;
  double coverage = 0.0;
};

TaskSpec cms_spec(std::uint32_t buckets) {
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.algorithm = Algorithm::kCms;
  s.memory_buckets = buckets;
  s.rows = 3;
  s.name = "cms";
  return s;
}

TaskSpec bloom_spec() {
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kExistence;
  s.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  s.algorithm = Algorithm::kBloomFilter;
  s.memory_buckets = 4096;
  s.rows = 3;
  s.name = "bloom";
  return s;
}

TaskSpec hll_spec() {
  TaskSpec s;
  s.attribute = AttributeKind::kDistinct;
  s.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  s.algorithm = Algorithm::kHyperLogLog;
  s.memory_buckets = 2048;
  s.name = "hll";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string json_path;
  bool check = false;
  unsigned workers = 4;
  std::size_t packets = 20000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--packets" && i + 1 < argc) {
      packets = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: flymon_trace [--out trace.json] [--json summary]"
                   " [--check] [--workers N] [--packets N]\n");
      return 2;
    }
  }

  trace::set_enabled(true);
  telemetry::set_enabled(true);

  CmuGroupConfig cfg;
  cfg.register_buckets = 65536;
  FlyMonDataPlane dp(9, cfg);
  control::Controller ctl(dp);
  ctl.set_paranoid(true);  // make the verify gates part of the timeline
  dp.enable_parallel(workers);

  TraceConfig tcfg;
  tcfg.num_flows = 512;
  tcfg.num_packets = static_cast<std::uint32_t>(packets);
  const std::vector<Packet> traffic = TraceGenerator::generate(tcfg);
  const auto pump = [&] {
    dp.process_batch_parallel(traffic);  // keep the pool hot so fences wait
  };

  // Scripted reconfiguration batch: add + add + add, resize, split —
  // each under live traffic, like the paper's on-the-fly scenario.
  const auto cms = ctl.add_task(cms_spec(65536));
  if (!cms.ok) {
    std::fprintf(stderr, "cms deploy failed: %s\n", cms.error.c_str());
    return 1;
  }
  pump();
  const auto bloom = ctl.add_task(bloom_spec());
  if (!bloom.ok) {
    std::fprintf(stderr, "bloom deploy failed: %s\n", bloom.error.c_str());
    return 1;
  }
  pump();
  const auto hll = ctl.add_task(hll_spec());
  if (!hll.ok) {
    std::fprintf(stderr, "hll deploy failed: %s\n", hll.error.c_str());
    return 1;
  }
  pump();
  const auto resized = ctl.resize_task(cms.task_id, 16384);
  if (!resized.ok) {
    std::fprintf(stderr, "resize failed: %s\n", resized.error.c_str());
    return 1;
  }
  pump();
  const auto split = ctl.split_task(bloom.task_id);
  if (!split.first.ok) {
    std::fprintf(stderr, "split failed: %s\n", split.first.error.c_str());
    return 1;
  }
  pump();
  dp.merge_shards();

  const auto events = trace::SpanCollector::global().collect();
  const auto stats = trace::SpanCollector::global().stats();

  // Every top-level reconfiguration span must decompose into children.
  std::vector<ReconfigSummary> reconfigs;
  double min_coverage = 1.0;
  for (const trace::SpanEvent& e : events) {
    if (e.kind != trace::EventKind::kSpan || e.depth != 0 || e.gen == 0) {
      continue;
    }
    if (std::strncmp(e.name, "ctl.", 4) != 0) continue;
    ReconfigSummary r;
    r.name = e.name;
    r.gen = e.gen;
    r.dur_ns = e.dur_ns;
    r.coverage = trace::child_coverage(events, e);
    if (r.coverage < min_coverage) min_coverage = r.coverage;
    reconfigs.push_back(r);
  }

  if (!out_path.empty()) {
    if (!trace::write_chrome_trace(out_path, events)) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }

  std::printf("%zu span events across %zu threads (%llu dropped), %llu "
              "reconfigurations\n",
              events.size(), stats.threads,
              static_cast<unsigned long long>(stats.dropped),
              static_cast<unsigned long long>(trace::latest_reconfig()));
  std::printf("%-18s %6s %12s %9s\n", "reconfiguration", "gen", "dur (us)",
              "coverage");
  for (const ReconfigSummary& r : reconfigs) {
    std::printf("%-18s %6llu %12.1f %8.1f%%\n", r.name,
                static_cast<unsigned long long>(r.gen), r.dur_ns / 1000.0,
                r.coverage * 100.0);
  }
  if (!out_path.empty()) {
    std::printf("wrote %s (load in ui.perfetto.dev)\n", out_path.c_str());
  }

  if (!json_path.empty()) {
    std::string j = "{\n  \"events\": " + std::to_string(events.size()) +
                    ",\n  \"threads\": " + std::to_string(stats.threads) +
                    ",\n  \"dropped\": " + std::to_string(stats.dropped) +
                    ",\n  \"min_coverage\": " +
                    telemetry::format_number(min_coverage) +
                    ",\n  \"reconfigs\": [\n";
    for (std::size_t i = 0; i < reconfigs.size(); ++i) {
      const ReconfigSummary& r = reconfigs[i];
      j += "    {\"name\": \"" + std::string(r.name) +
           "\", \"gen\": " + std::to_string(r.gen) +
           ", \"dur_us\": " + telemetry::format_number(r.dur_ns / 1000.0) +
           ", \"coverage\": " + telemetry::format_number(r.coverage) + "}";
      j += i + 1 < reconfigs.size() ? ",\n" : "\n";
    }
    j += "  ]\n}\n";
    if (!telemetry::write_file(json_path, j)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }

  if (check) {
    if (reconfigs.empty()) {
      std::fprintf(stderr, "check FAILED: no reconfiguration spans traced\n");
      return 1;
    }
    if (min_coverage < 0.95) {
      std::fprintf(stderr,
                   "check FAILED: min child coverage %.1f%% < 95%% (the span "
                   "decomposition does not explain the deploy delay)\n",
                   min_coverage * 100.0);
      return 1;
    }
    std::printf("check OK: %zu reconfigurations, min coverage %.1f%%\n",
                reconfigs.size(), min_coverage * 100.0);
  }
  return 0;
}
