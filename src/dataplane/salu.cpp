#include "dataplane/salu.hpp"

#include <algorithm>

namespace flymon::dataplane {

const char* to_string(StatefulOp op) noexcept {
  switch (op) {
    case StatefulOp::kNop: return "Nop";
    case StatefulOp::kCondAdd: return "Cond-ADD";
    case StatefulOp::kMax: return "MAX";
    case StatefulOp::kAndOr: return "AND-OR";
    case StatefulOp::kXor: return "XOR";
  }
  return "?";
}

RegisterArray::RegisterArray(std::uint32_t num_buckets, unsigned bit_width)
    : bit_width_(bit_width) {
  if (num_buckets == 0) throw std::invalid_argument("RegisterArray: zero buckets");
  if (bit_width == 0 || bit_width > 32)
    throw std::invalid_argument("RegisterArray: bit width must be 1..32");
  cells_ = std::make_unique<std::atomic<std::uint32_t>[]>(num_buckets);
  size_ = num_buckets;
  value_mask_ = bit_width >= 32 ? 0xFFFF'FFFFu : ((1u << bit_width) - 1u);
}

std::vector<std::uint32_t> RegisterArray::read_range(std::uint32_t begin,
                                                     std::uint32_t end) const {
  if (begin > end || end > size()) throw std::out_of_range("RegisterArray::read_range");
  std::vector<std::uint32_t> out;
  out.reserve(end - begin);
  for (std::uint32_t i = begin; i < end; ++i) {
    out.push_back(cells_[i].load(std::memory_order_relaxed));
  }
  return out;
}

void RegisterArray::clear_range(std::uint32_t begin, std::uint32_t end) {
  if (begin > end || end > size()) throw std::out_of_range("RegisterArray::clear_range");
  for (std::uint32_t i = begin; i < end; ++i) {
    cells_[i].store(0u, std::memory_order_relaxed);
  }
}

void Salu::preload(StatefulOp op) {
  if (has_op(op)) return;
  if (ops_.size() >= TofinoModel::kMaxRegisterActions)
    throw std::runtime_error("Salu: register-action slots exhausted (max 4)");
  ops_.push_back(op);
}

bool Salu::has_op(StatefulOp op) const noexcept {
  return std::find(ops_.begin(), ops_.end(), op) != ops_.end();
}

std::uint32_t Salu::execute(StatefulOp op, std::uint32_t addr, std::uint32_t p1,
                            std::uint32_t p2) {
  if (!has_op(op)) throw std::runtime_error("Salu: operation not pre-loaded");
  const std::uint32_t mask = reg_->value_mask();
  const std::uint32_t cur = reg_->read(addr);
  switch (op) {
    case StatefulOp::kNop:
      return cur;
    case StatefulOp::kCondAdd: {
      if (cur < p2) {
        // Saturating add within the register width.
        const std::uint64_t sum = std::uint64_t{cur} + p1;
        const std::uint32_t next =
            sum > mask ? mask : static_cast<std::uint32_t>(sum);
        reg_->write(addr, next);
        return next;
      }
      return 0;
    }
    case StatefulOp::kMax: {
      if (cur < (p1 & mask)) {
        reg_->write(addr, p1);
        return p1 & mask;
      }
      return 0;
    }
    case StatefulOp::kAndOr: {
      const std::uint32_t next = (p2 == 0) ? (cur & p1) : (cur | p1);
      reg_->write(addr, next);
      return next;
    }
    case StatefulOp::kXor: {
      const std::uint32_t next = cur ^ (p1 & mask);
      reg_->write(addr, next);
      return next;
    }
  }
  return 0;
}

}  // namespace flymon::dataplane
