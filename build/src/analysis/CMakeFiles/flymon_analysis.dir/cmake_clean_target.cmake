file(REMOVE_RECURSE
  "libflymon_analysis.a"
)
