// Count-Sketch (Charikar et al.): signed counters, median estimator.
// Used as the per-level frequency estimator inside UnivMon.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/sketch_common.hpp"

namespace flymon::sketch {

class CountSketch {
 public:
  CountSketch(unsigned d, std::uint32_t w);

  static CountSketch with_memory(unsigned d, std::size_t bytes);

  void update(KeyBytes key, std::int64_t inc = 1);
  /// Median-of-rows estimate (can be negative; callers clamp as needed).
  std::int64_t query(KeyBytes key) const;

  /// Second-moment (F2) estimate: median over rows of sum of squares.
  double f2_estimate() const;

  unsigned depth() const noexcept { return d_; }
  std::uint32_t width() const noexcept { return w_; }
  std::size_t memory_bytes() const noexcept { return std::size_t{d_} * w_ * 4; }
  void clear();

 private:
  std::int32_t sign(KeyBytes key, unsigned row) const noexcept;

  unsigned d_;
  std::uint32_t w_;
  std::vector<std::int64_t> cells_;
};

}  // namespace flymon::sketch
