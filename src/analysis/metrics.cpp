#include "analysis/metrics.hpp"

#include <cmath>
#include <limits>

namespace flymon::analysis {

double relative_error(double truth, double estimate) {
  if (truth == 0) return estimate == 0 ? 0.0 : 1.0;
  return std::abs(estimate - truth) / std::abs(truth);
}

double average_relative_error(const std::vector<std::pair<double, double>>& pairs) {
  if (pairs.empty()) return 0.0;
  double sum = 0;
  std::size_t n = 0;
  for (const auto& [truth, est] : pairs) {
    if (truth == 0) continue;
    sum += relative_error(truth, est);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double ClassificationScore::precision() const {
  const std::size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ClassificationScore::recall() const {
  const std::size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ClassificationScore::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0 ? 0.0 : 2 * p * r / (p + r);
}

ClassificationScore score_detection(const std::vector<FlowKeyValue>& truth,
                                    const std::vector<FlowKeyValue>& reported) {
  std::unordered_set<FlowKeyValue> truth_set(truth.begin(), truth.end());
  ClassificationScore s;
  std::unordered_set<FlowKeyValue> seen;
  for (const FlowKeyValue& k : reported) {
    if (!seen.insert(k).second) continue;  // dedupe reports
    if (truth_set.count(k)) {
      ++s.true_positives;
    } else {
      ++s.false_positives;
    }
  }
  s.false_negatives = truth_set.size() - s.true_positives;
  return s;
}

double cm_epsilon(std::uint32_t width) {
  if (width == 0) return std::numeric_limits<double>::infinity();
  return std::exp(1.0) / static_cast<double>(width);
}

double cm_delta(unsigned depth) { return std::exp(-static_cast<double>(depth)); }

std::uint32_t cm_min_width(double epsilon) {
  if (epsilon <= 0) return std::numeric_limits<std::uint32_t>::max();
  const double w = std::ceil(std::exp(1.0) / epsilon);
  if (w >= static_cast<double>(std::numeric_limits<std::uint32_t>::max())) {
    return std::numeric_limits<std::uint32_t>::max();
  }
  return static_cast<std::uint32_t>(w);
}

unsigned cm_min_depth(double delta) {
  if (delta >= 1.0) return 1;
  if (delta <= 0) return std::numeric_limits<unsigned>::max();
  return static_cast<unsigned>(std::ceil(std::log(1.0 / delta)));
}

double bloom_false_positive_rate(std::uint64_t bits, unsigned hashes,
                                 std::uint64_t items) {
  if (bits == 0) return 1.0;
  if (hashes == 0 || items == 0) return 0.0;
  const double k = static_cast<double>(hashes);
  const double load = k * static_cast<double>(items) / static_cast<double>(bits);
  return std::pow(1.0 - std::exp(-load), k);
}

std::uint64_t bloom_min_bits(double fpr, unsigned hashes, std::uint64_t items) {
  if (fpr >= 1.0 || items == 0 || hashes == 0) return 0;
  if (fpr <= 0) return std::numeric_limits<std::uint64_t>::max();
  // Invert (1 - e^{-kn/m})^k = fpr for m.
  const double k = static_cast<double>(hashes);
  const double inner = 1.0 - std::pow(fpr, 1.0 / k);
  if (inner <= 0 || inner >= 1.0) return std::numeric_limits<std::uint64_t>::max();
  const double m = std::ceil(-k * static_cast<double>(items) / std::log(inner));
  if (m >= static_cast<double>(std::numeric_limits<std::uint64_t>::max())) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(m);
}

double hll_relative_stddev(std::uint32_t registers) {
  if (registers == 0) return std::numeric_limits<double>::infinity();
  return 1.04 / std::sqrt(static_cast<double>(registers));
}

std::uint32_t hll_min_registers(double stddev) {
  if (stddev <= 0) return std::numeric_limits<std::uint32_t>::max();
  const double m = std::ceil((1.04 / stddev) * (1.04 / stddev));
  if (m >= static_cast<double>(std::numeric_limits<std::uint32_t>::max())) {
    return std::numeric_limits<std::uint32_t>::max();
  }
  return static_cast<std::uint32_t>(m);
}

double false_positive_rate(std::size_t false_positives, std::size_t negatives_total) {
  return negatives_total == 0
             ? 0.0
             : static_cast<double>(false_positives) / static_cast<double>(negatives_total);
}

}  // namespace flymon::analysis
