// Persistent worker pool for multi-core packet processing.
//
// N executors = N-1 spawned threads plus the calling thread, each owning a
// private RegisterShard and BatchScratch.  process() publishes one Job —
// the acquired ExecPlan snapshot plus a packet span — and all executors
// claim fixed-size chunks from it with a lock-free fetch_add cursor, so
// load balances itself and no shared state is written on the hot path
// except the claim/completion atomics.
//
// Reconfiguration safety: the plan is acquired ONCE per job (not per
// chunk), and Fence serialises against process() while folding every dirty
// shard into the live registers — FlyMonDataPlane holds a Fence across
// compile+publish, so a shard never carries deltas across a plan change
// (the invariant RegisterShard::merge_into relies on).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/annotated_mutex.hpp"
#include "common/thread_annotations.hpp"
#include "exec/exec_plan.hpp"
#include "exec/sharded_runtime.hpp"
#include "packet/packet.hpp"

namespace flymon {
class FlyMonDataPlane;
}  // namespace flymon

namespace flymon::exec {

/// Pool observability (all monotonic since enable_parallel).
struct ParallelStats {
  std::uint64_t parallel_batches = 0;  ///< batches executed across shards
  std::uint64_t fallback_batches = 0;  ///< sequential fallbacks (no plan, unmergeable plan, or tracer attached)
  std::uint64_t chunks = 0;            ///< work-queue chunks claimed
  std::uint64_t merges = 0;            ///< quiesce/fence merges that folded a dirty shard
  // Fallback causes (sum == fallback_batches): a silent sequential run is
  // indistinguishable from a fast parallel one without these.
  std::uint64_t fallback_no_plan = 0;      ///< no compiled plan published
  std::uint64_t fallback_unmergeable = 0;  ///< plan has merge blockers
  std::uint64_t fallback_tracer = 0;       ///< packet tracer attached
};

class WorkerPool {
 public:
  /// Spawns `num_workers - 1` threads (the caller is the last executor);
  /// `num_workers` is clamped to at least 1.
  WorkerPool(FlyMonDataPlane& dp, unsigned num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned num_workers() const noexcept { return num_executors_; }

  /// Process a batch across all executors against the current plan
  /// snapshot.  Falls back to the data plane's sequential path (recording
  /// a fallback stat) when no plan is published, the plan is not
  /// shard-mergeable, or a tracer is attached.  Returns the generation
  /// the batch executed under (0 = interpreted fallback).
  std::uint64_t process(std::span<const Packet> pkts);

  /// Block new submissions, wait out the in-flight job, and fold every
  /// dirty shard into the live registers under the current plan.
  void quiesce_and_merge();

  /// Drop all shard state without merging (epoch clear).
  void discard_shards();

  ParallelStats stats() const noexcept;

  /// Cache handles into `registry` (fallback-reason counters, fence-wait
  /// and shard-merge histograms) so the pool reports without per-event
  /// registry lookups.  Pass nullptr to detach.  Serialises on the
  /// submission lock, so it is safe against in-flight process() calls.
  void bind_telemetry(telemetry::Registry* registry);

  /// RAII reconfiguration fence: holds the submission lock and merges all
  /// dirty shards under the (old) published plan, so the holder can
  /// compile and publish a new plan with no deltas straddling the change.
  /// Records the lock-wait time (how long the reconfiguration stalled on
  /// in-flight traffic) and emits an "exec.fence" span.
  class FLYMON_SCOPED_CAPABILITY Fence {
   public:
    explicit Fence(WorkerPool& pool) FLYMON_ACQUIRE(pool.submit_mu_);
    ~Fence() FLYMON_RELEASE();

   private:
    WorkerPool& pool_;
  };

 private:
  friend class Fence;

  struct Job {
    std::shared_ptr<const ExecPlan> plan;
    std::span<const Packet> pkts;
    std::size_t chunk = kDefaultBatchChunk;
    std::size_t num_chunks = 0;
    std::atomic<std::size_t> next{0};       ///< chunk claim cursor
    std::atomic<std::size_t> remaining{0};  ///< chunks not yet finished
  };

  struct Worker {
    explicit Worker(const FlyMonDataPlane& dp) : shard(dp) {}
    RegisterShard shard;
    BatchScratch scratch;
  };

  void worker_main(std::size_t shard_idx);
  void run_chunks(Job& job, std::size_t shard_idx);
  void merge_locked() FLYMON_REQUIRES(submit_mu_);
  void note_fence_wait(std::uint64_t wait_ns) FLYMON_REQUIRES(submit_mu_);
  void count_fallback(const ExecPlan* plan, bool tracer)
      FLYMON_REQUIRES(submit_mu_);

  FlyMonDataPlane* dp_;
  unsigned num_executors_;
  std::vector<std::unique_ptr<Worker>> workers_;  ///< one per executor
  std::vector<std::thread> threads_;              ///< num_executors_ - 1

  common::Mutex submit_mu_;  ///< serialises process() / quiesce / Fence

  std::mutex job_mu_;
  std::condition_variable job_cv_;
  std::shared_ptr<Job> job_;   ///< current job (workers copy the ref)
  std::uint64_t job_seq_ = 0;  ///< bumped per job so workers wake once each
  bool stop_ = false;

  std::mutex done_mu_;
  std::condition_variable done_cv_;

  std::atomic<std::uint64_t> parallel_batches_{0};
  std::atomic<std::uint64_t> fallback_batches_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> merges_{0};
  std::atomic<std::uint64_t> fallback_no_plan_{0};
  std::atomic<std::uint64_t> fallback_unmergeable_{0};
  std::atomic<std::uint64_t> fallback_tracer_{0};

  // Telemetry handles, cached under submit_mu_ (written only by
  // bind_telemetry; read only by code already holding the lock).
  telemetry::Counter* fallback_counters_[3] FLYMON_GUARDED_BY(submit_mu_) =
      {};  ///< no_plan, unmergeable, tracer
  telemetry::Counter* blocker_counters_[4] FLYMON_GUARDED_BY(submit_mu_) =
      {};  ///< per MergeBlockerKind
  telemetry::Histogram* fence_wait_us_ FLYMON_GUARDED_BY(submit_mu_) = nullptr;
  telemetry::Histogram* shard_merge_us_ FLYMON_GUARDED_BY(submit_mu_) = nullptr;
};

}  // namespace flymon::exec
