# Empty dependencies file for fig13c_key_scalability.
# This may be replaced when dependencies are built.
