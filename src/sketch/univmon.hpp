// UnivMon (Liu et al., SIGCOMM 2016): universal sketching.  L levels of
// hash-sampled substreams, each summarised by a Count-Sketch plus a top-k
// heavy-hitter set; any G-sum statistic (entropy, cardinality, frequency
// moments) is estimated by the recursive combination of per-level sums.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "packet/flowkey.hpp"
#include "sketch/count_sketch.hpp"

namespace flymon::sketch {

class UnivMon {
 public:
  /// `levels` sampled substreams; per-level Count-Sketch of d x w counters;
  /// top-k tracked keys per level.
  UnivMon(unsigned levels, unsigned cs_depth, std::uint32_t cs_width, unsigned top_k);

  /// Size the per-level Count-Sketch from a total memory budget.
  static UnivMon with_memory(std::size_t total_bytes, unsigned levels = 14,
                             unsigned cs_depth = 5, unsigned top_k = 512);

  void update(const FlowKeyValue& key, std::uint32_t inc = 1);

  /// G-sum estimate: sum over distinct flows of g(flow_count).
  double g_sum(const std::function<double(double)>& g) const;

  /// Entropy (nats): H = ln(N) - (sum f ln f)/N with N = total updates.
  double estimate_entropy() const;

  /// Distinct flow count (g == 1).
  double estimate_cardinality() const;

  /// Level-0 heavy hitters with estimated count >= threshold.
  std::vector<std::pair<FlowKeyValue, std::uint64_t>> heavy_hitters(
      std::uint64_t threshold) const;

  std::uint64_t total_updates() const noexcept { return total_; }
  std::size_t memory_bytes() const noexcept;
  unsigned levels() const noexcept { return static_cast<unsigned>(levels_.size()); }
  void clear();

 private:
  struct Level {
    CountSketch cs;
    std::unordered_map<FlowKeyValue, std::int64_t> top;  // candidate HHs
    std::int64_t cached_min = 0;  // lower bound on the smallest tracked est
    explicit Level(CountSketch s) : cs(std::move(s)) {}
  };

  /// Key is sampled into level l iff the low l bits of its sample hash are 0.
  bool sampled_at(const FlowKeyValue& key, unsigned level) const noexcept;
  void track_top(Level& lvl, const FlowKeyValue& key);

  std::vector<Level> levels_;
  unsigned top_k_;
  std::uint64_t total_ = 0;
};

}  // namespace flymon::sketch
