// Paper Figure 13c: number of deployable CMUs as the candidate key set
// grows (32 -> 360 bits), with and without the less-copy compression
// strategy.  Without compression each CMU copies the full candidate key
// into PHV; with compression a group shares three 32-bit compressed keys.
#include "bench/bench_util.hpp"
#include "control/crossstack.hpp"
#include "dataplane/tofino_model.hpp"

using namespace flymon;
using namespace flymon::control;
using dataplane::TofinoModel;

int main() {
  bench::header("Figure 13c", "CMUs deployable vs candidate key size");

  // Half the PHV is reserved for headers/forwarding metadata; the rest is
  // available to measurement (documented substitution in DESIGN.md).
  const unsigned phv_budget = TofinoModel::kPhvBits / 2;
  const unsigned stages = TofinoModel::kNumStages;

  std::printf("%16s %18s %18s %8s\n", "key size (bits)", "w/o compression",
              "w/ compression", "gain");
  for (unsigned bits : {32u, 64u, 104u, 360u}) {
    const unsigned without = max_cmus_without_compression(bits, phv_budget, stages);
    const unsigned with = max_cmus_with_compression(bits, phv_budget, stages);
    std::printf("%16u %18u %18u %7.1fx\n", bits, without, with,
                without == 0 ? 0.0 : static_cast<double>(with) / without);
  }
  std::printf("\n(paper: ~5x more CMUs at 350-bit candidate keys thanks to the "
              "less-copy strategy; 27 CMUs per pipe)\n");
  return 0;
}
