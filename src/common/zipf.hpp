// Zipf-distributed sampler for realistic, heavy-tailed flow-size traces.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace flymon {

/// Samples ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^alpha.
/// Uses an inverse-CDF table; construction is O(n), sampling O(log n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  /// Draw one rank in [0, size()).
  std::size_t sample(Rng& rng) const;

  std::size_t size() const noexcept { return cdf_.size(); }
  double alpha() const noexcept { return alpha_; }

  /// Expected probability mass of a given rank (exact, normalised).
  double probability(std::size_t rank) const;

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
  double alpha_ = 1.0;
};

}  // namespace flymon
