// Sampled packet tracing: a fixed-size ring buffer of per-packet PHV
// transformation records.  The data plane claims a record for 1-in-N packets
// and the CMU pipeline appends what it did to that packet — compressed keys,
// the dynamic key each CMU selected, the translated register address, the
// stateful op and its result.  Dumpable as JSON to debug composite chains
// (SuMax, CounterBraids, MaxInterarrival) without a debugger.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotated_mutex.hpp"
#include "common/thread_annotations.hpp"
#include "packet/packet.hpp"

namespace flymon::telemetry {

/// What one CMU did to a traced packet.
struct CmuTraceStep {
  unsigned group = 0;
  unsigned cmu = 0;
  std::uint32_t task_id = 0;       ///< physical task id of the matched entry
  std::uint32_t selected_key = 0;  ///< compressed key after selector (pre-slice)
  std::uint32_t sliced_key = 0;    ///< key slice used for addressing
  std::uint32_t address = 0;       ///< translated register address
  const char* op = "";             ///< stateful op name (static string)
  std::uint32_t p1 = 0;            ///< parameter 1 after preparation
  std::uint32_t p2 = 0;            ///< parameter 2 after preparation
  std::uint32_t result = 0;        ///< SALU result / exported value
  bool aborted = false;            ///< preparation aborted the update
};

/// Compressed keys one group computed for a traced packet.
struct GroupKeys {
  unsigned group = 0;
  std::vector<std::uint32_t> unit_keys;
};

struct TraceRecord {
  std::uint64_t seq = 0;    ///< index of the packet in arrival order
  std::uint64_t ts_ns = 0;
  FiveTuple ft{};
  std::vector<GroupKeys> keys;
  std::vector<CmuTraceStep> steps;
};

/// Fixed-capacity ring of trace records with 1-in-N sampling.  Single-writer
/// (the data-plane thread) fills a writer-private scratch record between
/// begin() and commit(); commit() publishes it into the mutex-guarded ring, so
/// concurrent readers (records(), to_json(), an exporter thread) only ever see
/// completed records.
class PacketTracer {
 public:
  explicit PacketTracer(std::size_t capacity = 256, std::uint64_t sample_every = 1024);

  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t sample_every() const noexcept {
    return every_.load(std::memory_order_relaxed);
  }
  void set_sample_every(std::uint64_t n) noexcept {
    every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  /// Number of published records currently held (<= capacity).
  std::size_t size() const;
  /// Packets seen / records published since construction or clear().
  std::uint64_t packets_seen() const noexcept {
    return seen_.load(std::memory_order_relaxed);
  }
  std::uint64_t records_taken() const noexcept {
    return taken_.load(std::memory_order_relaxed);
  }

  /// Per-packet sampling decision; advances the packet count.
  bool should_sample() noexcept {
    return (seen_.fetch_add(1, std::memory_order_relaxed) %
            every_.load(std::memory_order_relaxed)) == 0;
  }

  /// Start a record for this packet and return the writer-private scratch
  /// slot for the pipeline to fill.  The pointer is valid until commit() (or
  /// the next begin()); nothing is visible to readers until commit().
  TraceRecord* begin(const Packet& pkt);

  /// Publish the record started by the last begin() into the ring.  No-op if
  /// no record is pending.  Writer thread only.
  void commit();

  void clear();

  /// Published records oldest-to-newest.
  std::vector<TraceRecord> records() const;

  /// JSON dump of the ring (array of records, oldest first).
  std::string to_json() const;

 private:
  std::size_t capacity_;  ///< == ring_.size(); immutable, readable lock-free
  mutable common::Mutex mu_;
  std::vector<TraceRecord> ring_ FLYMON_GUARDED_BY(mu_);
  TraceRecord scratch_;        ///< writer-private; published by commit()
  bool scratch_live_ = false;  ///< writer-private
  std::size_t head_ FLYMON_GUARDED_BY(mu_) = 0;  ///< next slot to publish into
  std::size_t filled_ FLYMON_GUARDED_BY(mu_) = 0;
  std::atomic<std::uint64_t> seen_{0};
  std::atomic<std::uint64_t> taken_{0};
  std::atomic<std::uint64_t> every_;
};

}  // namespace flymon::telemetry
