// DREAM/SCREAM-style adaptive memory management on top of FlyMon's
// dynamic partitions (paper §3.4: FlyMon supplies the reconfigurable data
// plane; SDM controllers supply policies like this one).  Between epochs,
// each task's register occupancy is inspected and its memory doubled or
// halved to track the traffic scale — the operation that Fig 12b performs
// by hand.
#pragma once

#include <cstdint>
#include <vector>

#include "control/controller.hpp"

namespace flymon::control {

class AdaptiveMemoryManager {
 public:
  struct Config {
    /// Grow when more than this fraction of buckets are occupied (a loaded
    /// counter sketch loses accuracy well before it is full).
    double grow_threshold = 0.35;
    /// Shrink when less than this fraction is occupied.
    double shrink_threshold = 0.08;
    std::uint32_t min_buckets = 1024;
    std::uint32_t max_buckets = 1u << 20;
  };

  struct Decision {
    std::uint32_t task_id = 0;
    std::uint32_t old_buckets = 0;
    std::uint32_t new_buckets = 0;
    double occupancy = 0;
    bool resized = false;   ///< false = left alone or resize failed
    bool attempted = false; ///< true when a resize was warranted
  };

  explicit AdaptiveMemoryManager(Controller& ctl) : ctl_(&ctl) {}
  AdaptiveMemoryManager(Controller& ctl, const Config& cfg) : ctl_(&ctl), cfg_(cfg) {}

  const Config& config() const noexcept { return cfg_; }

  /// Fraction of non-zero buckets in the task's first-row partition.
  double occupancy(std::uint32_t task_id) const;

  /// Inspect every deployed task and resize the out-of-band ones.  Call at
  /// an epoch boundary, after readout and before the next epoch's traffic
  /// (resizing restarts the task's state).  Task ids are stable.
  std::vector<Decision> rebalance();

 private:
  Controller* ctl_;
  Config cfg_;
};

}  // namespace flymon::control
