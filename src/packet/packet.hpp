// Packet model and the candidate-key byte layout shared by the whole system.
//
// FlyMon's candidate key set is the 5-tuple plus a coarse timestamp
// (paper §5, "Setting").  Every component that hashes packet fields —
// compression-stage hash units, baseline sketches, ground truth — works on
// the single canonical serialisation defined here so that prefix masks mean
// the same thing everywhere.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>

namespace flymon {

/// IPv4 5-tuple.  IPs and ports are stored in host order; serialisation is
/// big-endian so that "prefix" masks select the most-significant bits.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;
};

/// A packet as seen by the measurement data plane: headers plus the standard
/// metadata FlyMon can bind as attribute parameters (bytes, timestamp, queue
/// depth / delay as exported by the traffic manager).
struct Packet {
  FiveTuple ft{};
  std::uint32_t wire_bytes = 0;    ///< packet length on the wire
  std::uint64_t ts_ns = 0;         ///< arrival timestamp (ns)
  std::uint32_t queue_len = 0;     ///< egress queue occupancy (cells)
  std::uint32_t queue_delay_ns = 0;///< queueing delay experienced
};

/// Byte layout of the candidate key set (big-endian fields):
///   [0..3] SrcIP  [4..7] DstIP  [8..9] SrcPort  [10..11] DstPort
///   [12]   Proto  [13..16] Timestamp (ts_ns >> kTsShift, 32 bits)
inline constexpr std::size_t kCandidateKeyBytes = 17;
inline constexpr std::size_t kCandidateKeyBits = kCandidateKeyBytes * 8;
inline constexpr unsigned kTsShift = 10;  ///< ~1 us timestamp granularity

using CandidateKey = std::array<std::uint8_t, kCandidateKeyBytes>;

/// Serialise a packet's header fields into the canonical candidate key.
constexpr CandidateKey serialize_candidate_key(const Packet& p) noexcept {
  CandidateKey k{};
  auto put32 = [&k](std::size_t at, std::uint32_t v) {
    k[at] = static_cast<std::uint8_t>(v >> 24);
    k[at + 1] = static_cast<std::uint8_t>(v >> 16);
    k[at + 2] = static_cast<std::uint8_t>(v >> 8);
    k[at + 3] = static_cast<std::uint8_t>(v);
  };
  put32(0, p.ft.src_ip);
  put32(4, p.ft.dst_ip);
  k[8] = static_cast<std::uint8_t>(p.ft.src_port >> 8);
  k[9] = static_cast<std::uint8_t>(p.ft.src_port);
  k[10] = static_cast<std::uint8_t>(p.ft.dst_port >> 8);
  k[11] = static_cast<std::uint8_t>(p.ft.dst_port);
  k[12] = p.ft.protocol;
  put32(13, static_cast<std::uint32_t>(p.ts_ns >> kTsShift));
  return k;
}

/// Inverse of serialize_candidate_key: reconstruct a probe packet from a
/// (possibly masked) candidate key.  Fields outside a flow-key mask simply
/// come back zero, which is exactly what control-plane readout probes need.
constexpr Packet packet_from_candidate_key(const CandidateKey& k) noexcept {
  auto get32 = [&k](std::size_t at) {
    return (std::uint32_t{k[at]} << 24) | (std::uint32_t{k[at + 1]} << 16) |
           (std::uint32_t{k[at + 2]} << 8) | std::uint32_t{k[at + 3]};
  };
  Packet p;
  p.ft.src_ip = get32(0);
  p.ft.dst_ip = get32(4);
  p.ft.src_port = static_cast<std::uint16_t>((k[8] << 8) | k[9]);
  p.ft.dst_port = static_cast<std::uint16_t>((k[10] << 8) | k[11]);
  p.ft.protocol = k[12];
  p.ts_ns = std::uint64_t{get32(13)} << kTsShift;
  return p;
}

}  // namespace flymon
