// Structured span tracing for the control path (and coarse data-path
// phases): RAII scoped spans write fixed-size events into lock-free
// per-thread ring buffers, gated on one relaxed atomic flag exactly like
// telemetry::enabled() — a disabled build costs a predicted-not-taken
// branch per instrumentation site and nothing else.
//
// Every reconfiguration entry point opens a ReconfigScope, which stamps a
// monotonic generation tag onto every span recorded while it is active, so
// a collected timeline decomposes each deploy into causally-linked
// plan / verify / compile / publish / fence / merge children.  Collected
// events export as Chrome trace-event JSON (trace/chrome_export.hpp,
// Perfetto / about:tracing compatible) and as span-duration histograms
// through the existing telemetry exporters (SpanCollector::
// flush_to_registry).
//
// Concurrency model: each thread owns one ring (registered on first
// write); slot fields are relaxed atomics and the ring head is
// released after the slot is complete, so concurrent collectors read
// only completed events and a wrapped slot mid-overwrite is detected and
// discarded (never torn).  Overwritten events are drop-accounted.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/annotated_mutex.hpp"
#include "common/thread_annotations.hpp"

namespace flymon::telemetry {
class Registry;
}  // namespace flymon::telemetry

namespace flymon::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Global runtime switch (default off).  Spans record nothing while
/// disabled; ReconfigScope tags stay monotonic regardless.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// Honour the FLYMON_TRACE environment variable (1/on/true enables).
/// Returns the resulting state.
bool init_from_env() noexcept;

// ---- clock ----

/// Nanosecond timestamps come from a process-wide clock hook so tests can
/// inject a deterministic clock (golden exports).  The default is
/// steady_clock relative to process start.
using ClockFn = std::uint64_t (*)();
std::uint64_t monotonic_now_ns() noexcept;
/// Replace the span clock; nullptr restores the monotonic default.
void set_clock(ClockFn fn) noexcept;
std::uint64_t now_ns() noexcept;

// ---- events ----

enum class EventKind : std::uint8_t { kSpan = 0, kInstant = 1 };

/// One completed event, snapshot from a thread ring.  `name` is always a
/// static string (instrumentation-site literal), so events stay
/// fixed-size and allocation-free on the recording path.
struct SpanEvent {
  const char* name = "";
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;   ///< 0 for instants
  std::uint64_t gen = 0;      ///< reconfiguration tag (0 = outside any)
  std::uint64_t arg = 0;      ///< site-specific (plan generation, batch size)
  std::uint32_t tid = 0;      ///< ring registration index (stable per thread)
  std::uint16_t depth = 0;    ///< span nesting depth at open
  EventKind kind = EventKind::kSpan;
};

/// Events per thread ring; oldest events are overwritten (and counted as
/// dropped) when a thread records more than this between collections.
inline constexpr std::size_t kRingCapacity = 4096;

/// Process-wide sink of every thread's span ring.
class SpanCollector {
 public:
  static SpanCollector& global();

  SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Record one completed event into the calling thread's ring
  /// (registering the ring on first use).  Lock-free after registration.
  void emit(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
            std::uint64_t gen, std::uint64_t arg, std::uint16_t depth,
            EventKind kind) noexcept;

  struct Stats {
    std::uint64_t emitted = 0;  ///< events recorded since start/clear
    std::uint64_t dropped = 0;  ///< overwritten before collection
    std::size_t threads = 0;    ///< rings registered
  };
  Stats stats() const;

  /// Snapshot every ring's surviving events, sorted by (start, tid).
  /// Safe against concurrent writers: an event overwritten mid-read is
  /// discarded, never returned torn.
  std::vector<SpanEvent> collect() const;

  /// Reset every ring and the flush cursors (rings stay registered so
  /// live threads keep their ids).  Test/CLI setup only — not safe
  /// against concurrent writers.
  void clear();

  /// Feed span durations recorded since the last flush into `registry`:
  /// `flymon_span_duration_us{span=<name>}` histograms plus
  /// `flymon_trace_spans_total` / `flymon_trace_span_drops_total`
  /// counters.  Values then flow through the existing JSON/Prometheus
  /// exporters unchanged.
  void flush_to_registry(telemetry::Registry& registry);

 private:
  struct ThreadRing;
  ThreadRing& ring_for_this_thread();

  static thread_local ThreadRing* t_ring;
  static thread_local SpanCollector* t_ring_owner;

  mutable common::Mutex mu_;  ///< guards rings_ registration + flush cursors
  std::vector<std::unique_ptr<ThreadRing>> rings_ FLYMON_GUARDED_BY(mu_);
  std::vector<std::uint64_t> flushed_
      FLYMON_GUARDED_BY(mu_);  ///< per-ring flush cursor (head)
  std::uint64_t flushed_drops_ FLYMON_GUARDED_BY(mu_) = 0;
};

/// Record an instant event (zero duration) on the calling thread.
void instant(const char* name, std::uint64_t arg = 0) noexcept;

// ---- reconfiguration tagging ----

/// Monotonic tag linking every span of one reconfiguration.  Nested scopes
/// (resize -> deploy -> remove) reuse the outermost tag; the counter only
/// advances at top level, so tags order reconfigurations totally.
class ReconfigScope {
 public:
  ReconfigScope() noexcept;
  ~ReconfigScope();
  ReconfigScope(const ReconfigScope&) = delete;
  ReconfigScope& operator=(const ReconfigScope&) = delete;

  /// The tag this scope is recording under.
  std::uint64_t tag() const noexcept { return tag_; }

 private:
  std::uint64_t tag_ = 0;
  bool top_ = false;
};

/// Tag active on the calling thread (0 outside any ReconfigScope).
std::uint64_t current_reconfig() noexcept;
/// Largest tag handed out so far.
std::uint64_t latest_reconfig() noexcept;

// ---- RAII span ----

namespace detail {
extern thread_local std::uint16_t t_depth;
}  // namespace detail

/// Scoped span: opens at construction when tracing is enabled, records one
/// fixed-size event into the thread ring at close.  ~0 cost when tracing
/// is off (one relaxed load + branch).
class Span {
 public:
  explicit Span(const char* name, std::uint64_t arg = 0) noexcept {
    if (!enabled()) return;
    open(name, arg);
  }
  ~Span() {
    if (live_) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach / replace the site-specific argument before close.
  void set_arg(std::uint64_t v) noexcept { arg_ = v; }

  /// Record the event now (idempotent; the destructor then no-ops).
  void close() noexcept;

 private:
  void open(const char* name, std::uint64_t arg) noexcept;

  const char* name_ = "";
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
  std::uint16_t depth_ = 0;
  bool live_ = false;
};

// ---- timeline analysis (shared by flymon_trace and the tests) ----

/// Fraction of `parent`'s duration covered by the union of events nested
/// inside it (same tid, deeper, within the interval).  This is the
/// decomposition metric: >= 0.95 means the span children explain at least
/// 95% of the measured end-to-end time.
double child_coverage(const std::vector<SpanEvent>& events,
                      const SpanEvent& parent);

}  // namespace flymon::trace
