#include "control/adaptive.hpp"

#include <algorithm>

namespace flymon::control {

double AdaptiveMemoryManager::occupancy(std::uint32_t task_id) const {
  const DeployedTask* t = ctl_->task(task_id);
  if (t == nullptr || t->rows.empty()) return 0.0;
  const UnitPlacement& up = t->rows.front().units.front();
  const auto& reg = ctl_->dataplane().group(up.group).cmu(up.cmu).reg();
  std::uint32_t used = 0;
  for (std::uint32_t i = up.partition.base; i < up.partition.end(); ++i) {
    used += (reg.read(i) != 0);
  }
  return up.partition.size == 0
             ? 0.0
             : static_cast<double>(used) / static_cast<double>(up.partition.size);
}

std::vector<AdaptiveMemoryManager::Decision> AdaptiveMemoryManager::rebalance() {
  std::vector<Decision> out;
  for (std::uint32_t id : ctl_->task_ids()) {
    const DeployedTask* t = ctl_->task(id);
    if (t == nullptr) continue;
    Decision d;
    d.task_id = id;
    d.old_buckets = t->buckets;
    d.new_buckets = t->buckets;
    d.occupancy = occupancy(id);

    std::uint32_t target = t->buckets;
    if (d.occupancy > cfg_.grow_threshold && t->buckets < cfg_.max_buckets) {
      target = std::min(cfg_.max_buckets, t->buckets * 2);
    } else if (d.occupancy < cfg_.shrink_threshold && t->buckets > cfg_.min_buckets) {
      target = std::max(cfg_.min_buckets, t->buckets / 2);
    }
    if (target != t->buckets) {
      d.attempted = true;
      const DeployResult r = ctl_->resize_task(id, target);
      if (r.ok) {
        d.resized = true;
        d.new_buckets = ctl_->task(id)->buckets;
      }
    }
    out.push_back(d);
  }
  return out;
}

}  // namespace flymon::control
