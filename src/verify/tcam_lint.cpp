#include "verify/tcam_lint.hpp"

#include <sstream>

namespace flymon::verify {

using dataplane::TernaryPattern;

bool covers(const TernaryPattern& a, const TernaryPattern& b) noexcept {
  // a's care bits must be a subset of b's care bits and agree on them.
  return (a.mask & ~b.mask) == 0 && ((a.value ^ b.value) & a.mask) == 0;
}

bool overlaps(const TernaryPattern& a, const TernaryPattern& b) noexcept {
  return ((a.value ^ b.value) & a.mask & b.mask) == 0;
}

std::vector<LintFinding> lint_entries(const std::vector<LintEntry>& entries) {
  std::vector<LintFinding> findings;
  for (std::size_t j = 0; j < entries.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const LintEntry& a = entries[i];
      const LintEntry& b = entries[j];
      // Earlier terminal entry covering a later one: the later entry is
      // unreachable.  Entries that sample (non-terminal) fall through on a
      // coin skip, so they never fully shadow.
      if (a.terminal && covers(a.pattern, b.pattern)) {
        findings.push_back({LintFinding::Kind::kShadowed, j, i});
        continue;  // a conflict report on a dead entry would be noise
      }
      // Same priority + overlapping patterns + divergent actions: which
      // rule wins depends on install order, which reinstallation (resize,
      // controller restart) does not preserve.
      if (a.priority == b.priority && a.action != b.action &&
          overlaps(a.pattern, b.pattern)) {
        findings.push_back({LintFinding::Kind::kConflict, j, i});
      }
    }
  }
  return findings;
}

std::string check_range_reassembly(const std::vector<TernaryPattern>& patterns,
                                   std::uint64_t lo, std::uint64_t hi,
                                   unsigned width) {
  const std::uint64_t full =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  std::ostringstream err;
  std::uint64_t covered = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> blocks;  // base, size
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const TernaryPattern& p = patterns[i];
    if ((p.mask & ~full) != 0) {
      err << "pattern " << i << " masks bits beyond the " << width << "-bit key";
      return err.str();
    }
    const std::uint64_t low_zeros = ~p.mask & full;
    if ((low_zeros & (low_zeros + 1)) != 0) {
      err << "pattern " << i << " is not an aligned prefix block";
      return err.str();
    }
    const std::uint64_t size = low_zeros + 1;
    const std::uint64_t base = p.value & p.mask;
    if (base < lo || base + size - 1 > hi) {
      err << "pattern " << i << " block [" << base << ", " << (base + size - 1)
          << "] escapes the range [" << lo << ", " << hi << "]";
      return err.str();
    }
    for (const auto& [obase, osize] : blocks) {
      if (base < obase + osize && obase < base + size) {
        err << "pattern " << i << " overlaps an earlier expansion block";
        return err.str();
      }
    }
    blocks.emplace_back(base, size);
    covered += size;
  }
  if (covered != hi - lo + 1) {
    err << "expansion covers " << covered << " keys, range holds "
        << (hi - lo + 1);
    return err.str();
  }
  return {};
}

}  // namespace flymon::verify
