# Empty compiler generated dependencies file for fig14g_existence.
# This may be replaced when dependencies are built.
