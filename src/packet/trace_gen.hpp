// Synthetic trace generation.
//
// The paper evaluates on a WIDE/MAWI backbone trace (~10K flows per epoch,
// 9M/18M packets per 15/30 s window) which we cannot redistribute.  This
// generator produces seeded traces with the properties the experiments
// depend on: heavy-tailed (Zipf) flow sizes, configurable flow/packet
// counts, timestamps, queue metadata, plus injectors for traffic spikes and
// DDoS victim patterns.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/packet.hpp"

namespace flymon {

struct TraceConfig {
  std::size_t num_flows = 10'000;
  std::size_t num_packets = 500'000;
  double zipf_alpha = 1.05;        ///< skew of per-flow packet counts
  std::uint64_t seed = 1;
  std::uint64_t duration_ns = 1'000'000'000;  ///< trace time span
  std::uint32_t src_ip_base = 0x0A00'0000;    ///< 10.0.0.0 pool
  std::uint32_t dst_ip_base = 0xC0A8'0000;    ///< 192.168.0.0 pool
  bool vary_packet_size = true;    ///< else all packets are 1000 B
};

struct DdosConfig {
  std::size_t num_victims = 20;          ///< DstIPs under attack
  std::size_t spreaders_per_victim = 2'000;  ///< distinct SrcIPs per victim
  std::size_t packets_per_spreader = 1;
  std::uint32_t victim_ip_base = 0xC0A8'6400;  ///< 192.168.100.0
  std::uint64_t seed = 7;
};

class TraceGenerator {
 public:
  /// Zipf background trace: flows are random distinct 5-tuples; per-packet
  /// flow choice is Zipf(alpha); timestamps increase over duration_ns.
  static std::vector<Packet> generate(const TraceConfig& cfg);

  /// Append a DDoS pattern (many distinct sources per victim destination)
  /// on top of `trace`, interleaved in time, then re-sort by timestamp.
  static void inject_ddos(std::vector<Packet>& trace, const DdosConfig& cfg,
                          std::uint64_t duration_ns);

  /// Append `extra_flows` one-or-few-packet flows uniformly over the time
  /// window [t_begin_ns, t_end_ns) — models the Fig 12b traffic spike.
  static void inject_spike(std::vector<Packet>& trace, std::size_t extra_flows,
                           std::uint64_t t_begin_ns, std::uint64_t t_end_ns,
                           std::uint64_t seed);

  /// Stable sort by timestamp (injectors append out of order).
  static void sort_by_time(std::vector<Packet>& trace);

  /// Slice [t_begin_ns, t_end_ns) of a time-sorted trace (copies packets).
  static std::vector<Packet> slice(const std::vector<Packet>& trace,
                                   std::uint64_t t_begin_ns, std::uint64_t t_end_ns);
};

}  // namespace flymon
