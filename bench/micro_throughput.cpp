// Microbenchmarks (google-benchmark): per-packet update cost of the CMU
// pipeline versus raw software sketches, plus key primitives.
//
// `--json <path>` additionally writes one machine-readable row per
// benchmark (ns/op and items/s) for regression tracking.
#include <benchmark/benchmark.h>

#include <thread>

#include "bench/bench_util.hpp"
#include "control/controller.hpp"
#include "exec/worker_pool.hpp"
#include "dataplane/hash_unit.hpp"
#include "dataplane/tcam.hpp"
#include "packet/trace_gen.hpp"
#include "sketch/count_min.hpp"
#include "sketch/univmon.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/span.hpp"
#include "trace/stage_profiler.hpp"

using namespace flymon;

namespace {

std::vector<Packet> small_trace() {
  TraceConfig cfg;
  cfg.num_flows = 1000;
  cfg.num_packets = 10'000;
  return TraceGenerator::generate(cfg);
}

void BM_HashUnit(benchmark::State& state) {
  dataplane::HashUnit unit(0);
  unit.set_mask(FlowKeySpec::five_tuple().mask());
  const auto trace = small_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    const CandidateKey k = serialize_candidate_key(trace[i++ % trace.size()]);
    benchmark::DoNotOptimize(unit.compute(k));
  }
}
BENCHMARK(BM_HashUnit);

void BM_TcamLookup(benchmark::State& state) {
  dataplane::TcamTable<int> tcam;
  for (unsigned i = 0; i < 64; ++i) {
    tcam.install_range(i * 1024, i * 1024 + 1023, 16, i, static_cast<int>(i));
  }
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcam.lookup(key));
    key = (key + 977) & 0xFFFF;
  }
}
BENCHMARK(BM_TcamLookup);

void BM_RawCms(benchmark::State& state) {
  sketch::CountMin cms(3, 65536);
  const auto trace = small_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    const FlowKeyValue k =
        extract_flow_key(trace[i++ % trace.size()], FlowKeySpec::five_tuple());
    cms.update({k.bytes.data(), k.bytes.size()});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RawCms);

void BM_CmuGroupProcess(benchmark::State& state) {
  FlyMonDataPlane dp(1);
  control::Controller ctl(dp);
  TaskSpec spec;
  spec.key = FlowKeySpec::five_tuple();
  spec.attribute = AttributeKind::kFrequency;
  spec.memory_buckets = 16384;
  spec.rows = 3;
  ctl.add_task(spec);
  const auto trace = small_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    dp.process(trace[i++ % trace.size()]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CmuGroupProcess);

// A realistic mixed workload: one task of each attribute.
void deploy_mixed_workload(control::Controller& ctl) {
  TaskSpec f;
  f.key = FlowKeySpec::five_tuple();
  f.attribute = AttributeKind::kFrequency;
  f.memory_buckets = 16384;
  f.rows = 3;
  ctl.add_task(f);
  TaskSpec d;
  d.key = FlowKeySpec::dst_ip();
  d.attribute = AttributeKind::kDistinct;
  d.param = ParamSpec::compressed(FlowKeySpec::src_ip());
  d.algorithm = Algorithm::kBeauCoup;
  d.report_threshold = 512;
  d.memory_buckets = 16384;
  d.rows = 3;
  ctl.add_task(d);
  TaskSpec m;
  m.key = FlowKeySpec::ip_pair();
  m.attribute = AttributeKind::kMax;
  m.param = ParamSpec::metadata(MetaField::kQueueLen);
  m.memory_buckets = 16384;
  m.rows = 3;
  ctl.add_task(m);
}

// The three execution paths over the same 9-group mixed deployment.  CI
// compares these rows: compiled must not regress vs interpreted, batched
// must clear the 2x bar.

void BM_FullPipelineInterpreted(benchmark::State& state) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  deploy_mixed_workload(ctl);
  dp.unpublish_plan();  // legacy per-packet walk of the mutable objects
  const auto trace = small_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    dp.process(trace[i++ % trace.size()]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullPipelineInterpreted);

void BM_FullPipelineCompiled(benchmark::State& state) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  deploy_mixed_workload(ctl);  // publishes a compiled ExecPlan
  const auto trace = small_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    dp.process(trace[i++ % trace.size()]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullPipelineCompiled);

void BM_FullPipelineBatched(benchmark::State& state) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  deploy_mixed_workload(ctl);
  const auto trace = small_trace();
  for (auto _ : state) {
    dp.process_batch(trace);  // whole trace per iteration
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FullPipelineBatched);

// Sharded execution over the same deployment: the batch fans out across
// N executors (N-1 spawned threads + the submitting thread), each writing
// a private register shard; the merge runs once, outside the timed loop,
// because it is an epoch/query-boundary cost amortised over the whole
// window.  ->UseRealTime() because the submitting thread sleeps while the
// workers run — wall clock is the honest throughput measure.
void BM_FullPipelineSharded(benchmark::State& state) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  deploy_mixed_workload(ctl);
  dp.enable_parallel(static_cast<unsigned>(state.range(0)));
  const auto trace = small_trace();
  for (auto _ : state) {
    dp.process_batch_parallel(trace);  // whole trace per iteration
  }
  dp.merge_shards();
  const auto stats = dp.parallel_stats();
  state.counters["fallback_batches"] =
      static_cast<double>(stats.fallback_batches);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FullPipelineSharded)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_UnivMonUpdate(benchmark::State& state) {
  auto um = sketch::UnivMon::with_memory(512 * 1024);
  const auto trace = small_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    um.update(extract_flow_key(trace[i++ % trace.size()], FlowKeySpec::five_tuple()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnivMonUpdate);

// Console reporter that additionally records one JsonRow per benchmark run
// (real ns/op and, where set, items/s).
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(bench::JsonReport* report)
      : benchmark::ConsoleReporter(OO_Tabular), report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    if (report_ == nullptr) return;
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      bench::JsonRow& row = report_->row(run.benchmark_name());
      row.add("real_ns_per_op", run.GetAdjustedRealTime());
      row.add("cpu_ns_per_op", run.GetAdjustedCPUTime());
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) row.add("items_per_second", it->second.value);
      row.add("iterations", static_cast<double>(run.iterations));
    }
  }

 private:
  bench::JsonReport* report_;
};

// Per-stage hot-path breakdown: re-run the mixed workload with the stage
// profiler sampling every batch (both the batched and the sharded path so
// claim/execute/merge appear too), then emit one stable key triple per
// stage.  Keys are `<stage>_cycles`, `<stage>_items`,
// `<stage>_cycles_per_item`; stages with no samples are emitted as zeros so
// downstream tooling can rely on the full key set.
void emit_stage_breakdown(bench::JsonReport& report) {
  auto& prof = trace::StageProfiler::global();
  const bool was_enabled = prof.enabled();
  prof.set_enabled(true);
  prof.set_sample_every(1);
  prof.reset();
  {
    FlyMonDataPlane dp(9);
    control::Controller ctl(dp);
    deploy_mixed_workload(ctl);
    const auto trace = small_trace();
    for (int i = 0; i < 4; ++i) dp.process_batch(trace);
    dp.enable_parallel(2);
    for (int i = 0; i < 4; ++i) dp.process_batch_parallel(trace);
    dp.merge_shards();
  }
  const auto stats = prof.snapshot();
  prof.set_enabled(was_enabled);
  bench::JsonRow& row = report.row("stages");
  for (std::size_t s = 0; s < trace::kNumStages; ++s) {
    const std::string stage = trace::to_string(static_cast<trace::Stage>(s));
    row.add(stage + "_cycles", static_cast<double>(stats[s].cycles));
    row.add(stage + "_items", static_cast<double>(stats[s].items));
    row.add(stage + "_cycles_per_item", stats[s].cycles_per_item());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::JsonReport report("micro_throughput");
  CapturingReporter reporter(json_path.empty() ? nullptr : &report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    // Execution-config row plus derived scaling metrics, so regression
    // tooling reads speedups directly instead of recomputing them.
    bench::JsonRow& cfg = report.row("config");
    cfg.add("chunk_size", static_cast<double>(flymon::exec::kDefaultBatchChunk));
    cfg.add("hardware_threads",
            static_cast<double>(std::thread::hardware_concurrency()));
    // Active observability switches as they were during the timed runs, so
    // a regression artifact records whether tracing/profiling overhead was
    // in play.
    cfg.add("trace_enabled", trace::enabled() ? 1.0 : 0.0);
    cfg.add("profiler_enabled",
            trace::StageProfiler::global().enabled() ? 1.0 : 0.0);
    cfg.add("profiler_sample_every",
            static_cast<double>(trace::StageProfiler::global().sample_every()));
    cfg.add("telemetry_enabled", telemetry::enabled() ? 1.0 : 0.0);
    const bench::JsonRow* batched = report.find("BM_FullPipelineBatched");
    const bench::JsonRow* sharded1 =
        report.find("BM_FullPipelineSharded/threads:1/real_time");
    const double* base_ips =
        batched != nullptr ? batched->get("items_per_second") : nullptr;
    const double* one_ips =
        sharded1 != nullptr ? sharded1->get("items_per_second") : nullptr;
    for (const int threads : {1, 2, 4, 8}) {
      bench::JsonRow* row = report.find("BM_FullPipelineSharded/threads:" +
                                        std::to_string(threads) + "/real_time");
      if (row == nullptr) continue;
      const double* ips = row->get("items_per_second");
      if (ips == nullptr) continue;
      if (base_ips != nullptr && *base_ips > 0) {
        row->add("speedup_vs_batched", *ips / *base_ips);
      }
      if (one_ips != nullptr && *one_ips > 0) {
        row->add("scaling_efficiency", (*ips / *one_ips) / threads);
      }
    }
    emit_stage_breakdown(report);
  }
  if (!json_path.empty() && !report.write(json_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
