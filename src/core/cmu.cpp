#include "core/cmu.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hash.hpp"
#include "telemetry/trace_ring.hpp"

namespace flymon {

using dataplane::StatefulOp;

Cmu::Cmu(std::uint32_t register_buckets) : reg_(register_buckets), salu_(reg_) {
  // The reduced operation set (paper Fig 6 / Appendix A); the fourth SALU
  // action slot stays reserved for future attributes (paper §6).
  salu_.preload(StatefulOp::kCondAdd);
  salu_.preload(StatefulOp::kMax);
  salu_.preload(StatefulOp::kAndOr);
}

Cmu::Cmu(Cmu&& other) noexcept
    : reg_(std::move(other.reg_)),
      salu_(std::move(other.salu_)),
      entries_(std::move(other.entries_)),
      tel_(other.tel_) {
  salu_.rebind(reg_);
}

void Cmu::preload_op(StatefulOp op) { salu_.preload(op); }

void Cmu::bind_telemetry(telemetry::Registry& registry, unsigned group,
                         unsigned index) {
  tel_ = Telemetry{};
  tel_.registry = &registry;
  tel_.group = group;
  tel_.index = index;
  const telemetry::Labels labels = {{"group", std::to_string(group)},
                                    {"cmu", std::to_string(index)}};
  tel_.updates = &registry.counter("flymon_cmu_updates_total", labels);
  tel_.sampled_out = &registry.counter("flymon_cmu_sampled_out_total", labels);
  tel_.prep_aborts = &registry.counter("flymon_cmu_prep_aborts_total", labels);
}

telemetry::Counter* Cmu::op_counter(StatefulOp op) {
  const auto idx = static_cast<std::size_t>(op);
  telemetry::Counter* c = tel_.ops[idx];
  if (c == nullptr && tel_.registry != nullptr) {
    c = tel_.ops[idx] = &tel_.registry->counter(
        "flymon_salu_op_total", {{"group", std::to_string(tel_.group)},
                                 {"cmu", std::to_string(tel_.index)},
                                 {"op", dataplane::to_string(op)}});
  }
  return c;
}

double Cmu::register_occupancy() const noexcept {
  std::uint32_t nonzero = 0;
  for (std::uint32_t i = 0; i < reg_.size(); ++i) {
    if (reg_.read(i) != 0) ++nonzero;
  }
  return static_cast<double>(nonzero) / static_cast<double>(reg_.size());
}

void Cmu::install(const CmuTaskEntry& entry) {
  if (!entry.key_sel.valid()) throw std::invalid_argument("Cmu::install: no key selected");
  if (entry.partition.size == 0 || entry.partition.end() > reg_.size())
    throw std::invalid_argument("Cmu::install: partition outside register");
  for (const CmuTaskEntry& e : entries_) {
    if (e.task_id == entry.task_id)
      throw std::invalid_argument("Cmu::install: duplicate task id");
    // One memory access per packet: intersecting traffic may only coexist
    // under probabilistic execution (paper §3.3 / §6).
    if (e.filter.intersects(entry.filter) && e.sample_probability >= 1.0 &&
        entry.sample_probability >= 1.0) {
      throw std::invalid_argument(
          "Cmu::install: task filters intersect on one CMU (use sampling)");
    }
  }
  entries_.push_back(entry);
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const CmuTaskEntry& a, const CmuTaskEntry& b) {
                     return a.priority < b.priority;
                   });
}

bool Cmu::remove(std::uint32_t task_id) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const CmuTaskEntry& e) { return e.task_id == task_id; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

const CmuTaskEntry* Cmu::find(std::uint32_t task_id) const noexcept {
  for (const CmuTaskEntry& e : entries_) {
    if (e.task_id == task_id) return &e;
  }
  return nullptr;
}

std::uint32_t Cmu::resolve_param(const ParamSelect& sel, const Packet& pkt,
                                 const std::vector<std::uint32_t>& unit_keys,
                                 const PhvContext& ctx) const noexcept {
  switch (sel.source) {
    case ParamSelect::Source::kConst:
      return sel.const_value;
    case ParamSelect::Source::kMeta:
      return static_cast<std::uint32_t>(read_meta(pkt, sel.meta));
    case ParamSelect::Source::kCompressedKey:
      return sel.slice.apply(CompressionStage::select(unit_keys, sel.key_sel));
    case ParamSelect::Source::kChain:
      return ctx.get(sel.const_value);
  }
  return 0;
}

std::uint32_t Cmu::probe_address(const CmuTaskEntry& entry,
                                 const std::vector<std::uint32_t>& unit_keys) const noexcept {
  const std::uint32_t key = CompressionStage::select(unit_keys, entry.key_sel);
  return translate_address(entry.key_slice.apply(key), entry.key_slice.width,
                           entry.partition);
}

std::optional<std::uint32_t> Cmu::process(const Packet& pkt,
                                          const std::vector<std::uint32_t>& unit_keys,
                                          PhvContext& ctx) {
  const bool tel = telemetry::enabled() && tel_.updates != nullptr;
  for (const CmuTaskEntry& e : entries_) {
    if (!e.filter.matches(pkt.ft)) continue;
    if (e.sample_probability < 1.0) {
      // Deterministic per-packet coin (hash of headers + timestamp + task).
      const CandidateKey ck = serialize_candidate_key(pkt);
      const std::uint64_t h =
          hash64(std::span<const std::uint8_t>(ck.data(), ck.size()),
                 0xC01Full + e.task_id);
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (u >= e.sample_probability) {
        if (tel) tel_.sampled_out->inc();
        continue;  // next matching task may run
      }
    }

    const std::uint32_t addr = probe_address(e, unit_keys);
    std::uint32_t p1 = resolve_param(e.p1, pkt, unit_keys, ctx);
    std::uint32_t p2 = resolve_param(e.p2, pkt, unit_keys, ctx);
    const std::uint32_t p2_raw = p2;

    switch (e.prep) {
      case PrepFn::kNone:
        break;
      case PrepFn::kCouponOneHot: {
        // CRC hashes are linear over GF(2), so low-entropy attribute values
        // (sequential IPs, timestamps) can leave the high bits on a small
        // affine subspace and starve coupon indices.  A single VLIW
        // half-word fold before the TCAM window match raises the rank of
        // the projection at zero hardware cost.
        p1 ^= (p1 >> 16) | (p1 << 16);
        const double u = static_cast<double>(p1) * 0x1.0p-32;
        const double total = e.coupon.draw_probability * e.coupon.num_coupons;
        if (u >= total) {  // no coupon drawn: no update
          if (tel) tel_.prep_aborts->inc();
          if (ctx.trace != nullptr) {
            telemetry::CmuTraceStep step;
            step.group = tel_.group;
            step.cmu = tel_.index;
            step.task_id = e.task_id;
            step.selected_key = CompressionStage::select(unit_keys, e.key_sel);
            step.op = dataplane::to_string(e.op);
            step.aborted = true;
            ctx.trace->steps.push_back(step);
          }
          return std::nullopt;
        }
        const auto idx = std::min<unsigned>(
            static_cast<unsigned>(u / e.coupon.draw_probability),
            e.coupon.num_coupons - 1);
        p1 = 1u << idx;
        p2 = 1;  // select the OR half of AND-OR
        break;
      }
      case PrepFn::kBitSelectOneHot:
        p1 = 1u << (p1 & 31u);
        p2 = 1;
        break;
      case PrepFn::kSubtractGated: {
        const std::uint32_t gate = ctx.get(e.chain_gate);
        p1 = gate != 0 ? (p1 > p2 ? p1 - p2 : 0u) : 0u;
        p2 = 0;
        break;
      }
      case PrepFn::kKeepOnChainZero:
        if (ctx.get(e.chain_gate) != 0) p1 = 0;
        break;
      case PrepFn::kBitSelectOneHotGated:
        p1 = ctx.get(e.chain_gate) == 0 ? (1u << (p1 & 31u)) : 0u;
        break;
    }

    const std::uint32_t old = reg_.read(addr);
    const std::uint32_t result = salu_.execute(e.op, addr, p1, p2);
    std::uint32_t out = result;
    if (e.output_old_value) {
      // SALUs can export the pre-update value; for one-hot updates we export
      // the single probed bit (0/1).
      out = (e.prep == PrepFn::kBitSelectOneHot || e.prep == PrepFn::kCouponOneHot)
                ? ((old & p1) != 0 ? 1u : 0u)
                : old;
    }
    if (e.chain_out != 0) {
      ctx.chain[e.chain_out] = (e.chain_fallback && result == 0) ? p2_raw : out;
    }
    if (tel) {
      tel_.updates->inc();
      if (telemetry::Counter* c = op_counter(e.op)) c->inc();
    }
    if (ctx.trace != nullptr) {
      telemetry::CmuTraceStep step;
      step.group = tel_.group;
      step.cmu = tel_.index;
      step.task_id = e.task_id;
      step.selected_key = CompressionStage::select(unit_keys, e.key_sel);
      step.sliced_key = e.key_slice.apply(step.selected_key);
      step.address = addr;
      step.op = dataplane::to_string(e.op);
      step.p1 = p1;
      step.p2 = p2;
      step.result = out;
      ctx.trace->steps.push_back(step);
    }
    return out;
  }
  return std::nullopt;
}

}  // namespace flymon
