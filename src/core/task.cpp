#include "core/task.hpp"

namespace flymon {
namespace {

constexpr std::uint32_t prefix_mask(std::uint8_t len) noexcept {
  return len == 0 ? 0u : (len >= 32 ? 0xFFFF'FFFFu : ~((1u << (32 - len)) - 1u));
}

/// Do two prefixes overlap?  True iff one contains the other.
constexpr bool prefixes_intersect(std::uint32_t a, std::uint8_t alen, std::uint32_t b,
                                  std::uint8_t blen) noexcept {
  const std::uint8_t len = alen < blen ? alen : blen;
  const std::uint32_t m = prefix_mask(len);
  return (a & m) == (b & m);
}

}  // namespace

const char* to_string(AttributeKind a) noexcept {
  switch (a) {
    case AttributeKind::kFrequency: return "Frequency";
    case AttributeKind::kDistinct: return "Distinct";
    case AttributeKind::kExistence: return "Existence";
    case AttributeKind::kMax: return "Max";
    case AttributeKind::kSimilarity: return "Similarity";
  }
  return "?";
}

const char* to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kAuto: return "Auto";
    case Algorithm::kCms: return "CMS";
    case Algorithm::kSuMaxSum: return "SuMax(Sum)";
    case Algorithm::kMrac: return "MRAC";
    case Algorithm::kTowerSketch: return "TowerSketch";
    case Algorithm::kCounterBraids: return "CounterBraids";
    case Algorithm::kBeauCoup: return "BeauCoup";
    case Algorithm::kHyperLogLog: return "HyperLogLog";
    case Algorithm::kLinearCounting: return "LinearCounting";
    case Algorithm::kBloomFilter: return "BloomFilter";
    case Algorithm::kSuMaxMax: return "SuMax(Max)";
    case Algorithm::kMaxInterarrival: return "MaxInterarrival";
    case Algorithm::kOddSketch: return "OddSketch";
  }
  return "?";
}

bool TaskFilter::matches(const FiveTuple& ft) const noexcept {
  if (src_len != 0 && ((ft.src_ip ^ src_ip) & prefix_mask(src_len)) != 0) return false;
  if (dst_len != 0 && ((ft.dst_ip ^ dst_ip) & prefix_mask(dst_len)) != 0) return false;
  return true;
}

bool TaskFilter::intersects(const TaskFilter& other) const noexcept {
  // Filters intersect unless some dimension separates them.
  const bool src_disjoint = src_len != 0 && other.src_len != 0 &&
                            !prefixes_intersect(src_ip, src_len, other.src_ip, other.src_len);
  const bool dst_disjoint = dst_len != 0 && other.dst_len != 0 &&
                            !prefixes_intersect(dst_ip, dst_len, other.dst_ip, other.dst_len);
  return !(src_disjoint || dst_disjoint);
}

}  // namespace flymon
