file(REMOVE_RECURSE
  "../bench/fig13c_key_scalability"
  "../bench/fig13c_key_scalability.pdb"
  "CMakeFiles/fig13c_key_scalability.dir/fig13c_key_scalability.cpp.o"
  "CMakeFiles/fig13c_key_scalability.dir/fig13c_key_scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13c_key_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
