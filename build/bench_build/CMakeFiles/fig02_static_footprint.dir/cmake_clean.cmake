file(REMOVE_RECURSE
  "../bench/fig02_static_footprint"
  "../bench/fig02_static_footprint.pdb"
  "CMakeFiles/fig02_static_footprint.dir/fig02_static_footprint.cpp.o"
  "CMakeFiles/fig02_static_footprint.dir/fig02_static_footprint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_static_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
