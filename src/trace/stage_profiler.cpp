#include "trace/stage_profiler.hpp"

#include <string>

#include "telemetry/telemetry.hpp"

namespace flymon::trace {

const char* to_string(Stage s) noexcept {
  switch (s) {
    case Stage::kCompression:
      return "compression";
    case Stage::kFilter:
      return "filter";
    case Stage::kAddress:
      return "address";
    case Stage::kSalu:
      return "salu";
    case Stage::kClaim:
      return "claim";
    case Stage::kExecute:
      return "execute";
    case Stage::kMerge:
      return "merge";
    case Stage::kCount:
      break;
  }
  return "unknown";
}

StageProfiler& StageProfiler::global() {
  static StageProfiler* p = new StageProfiler();  // immortal, like the
  return *p;                                      // span collector
}

void StageProfiler::record_batch(const BatchStageSample& s) noexcept {
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (s.items[i] == 0 && s.cycles[i] == 0) continue;
    cells_[i].cycles.fetch_add(s.cycles[i], std::memory_order_relaxed);
    cells_[i].items.fetch_add(s.items[i], std::memory_order_relaxed);
    cells_[i].samples.fetch_add(1, std::memory_order_relaxed);
  }
}

void StageProfiler::record(Stage s, std::uint64_t cycles,
                           std::uint64_t items) noexcept {
  Cell& c = cells_[static_cast<std::size_t>(s)];
  c.cycles.fetch_add(cycles, std::memory_order_relaxed);
  c.items.fetch_add(items, std::memory_order_relaxed);
  c.samples.fetch_add(1, std::memory_order_relaxed);
}

std::array<StageProfiler::StageStats, kNumStages> StageProfiler::snapshot()
    const {
  std::array<StageStats, kNumStages> out{};
  for (std::size_t i = 0; i < kNumStages; ++i) {
    out[i].cycles = cells_[i].cycles.load(std::memory_order_relaxed);
    out[i].items = cells_[i].items.load(std::memory_order_relaxed);
    out[i].samples = cells_[i].samples.load(std::memory_order_relaxed);
  }
  return out;
}

void StageProfiler::reset() noexcept {
  batches_.store(0, std::memory_order_relaxed);
  for (Cell& c : cells_) {
    c.cycles.store(0, std::memory_order_relaxed);
    c.items.store(0, std::memory_order_relaxed);
    c.samples.store(0, std::memory_order_relaxed);
  }
}

void StageProfiler::flush_to_registry(telemetry::Registry& registry) const {
  const auto snap = snapshot();
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (snap[i].samples == 0) continue;
    const char* stage = to_string(static_cast<Stage>(i));
    registry.gauge("flymon_stage_cycles_total", {{"stage", stage}})
        .set(static_cast<double>(snap[i].cycles));
    registry.gauge("flymon_stage_items_total", {{"stage", stage}})
        .set(static_cast<double>(snap[i].items));
    registry.gauge("flymon_stage_cycles_per_item", {{"stage", stage}})
        .set(snap[i].cycles_per_item());
  }
}

}  // namespace flymon::trace
