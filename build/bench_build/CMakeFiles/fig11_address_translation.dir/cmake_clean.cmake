file(REMOVE_RECURSE
  "../bench/fig11_address_translation"
  "../bench/fig11_address_translation.pdb"
  "CMakeFiles/fig11_address_translation.dir/fig11_address_translation.cpp.o"
  "CMakeFiles/fig11_address_translation.dir/fig11_address_translation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_address_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
