file(REMOVE_RECURSE
  "CMakeFiles/test_crossstack.dir/test_crossstack.cpp.o"
  "CMakeFiles/test_crossstack.dir/test_crossstack.cpp.o.d"
  "test_crossstack"
  "test_crossstack.pdb"
  "test_crossstack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
