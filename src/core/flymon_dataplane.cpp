#include "core/flymon_dataplane.hpp"

namespace flymon {

FlyMonDataPlane::FlyMonDataPlane(unsigned num_groups, const CmuGroupConfig& cfg) {
  groups_.reserve(num_groups);
  for (unsigned g = 0; g < num_groups; ++g) groups_.emplace_back(g, cfg);
  bind_telemetry(telemetry::Registry::global());
}

void FlyMonDataPlane::bind_telemetry(telemetry::Registry& registry) {
  registry_ = &registry;
  packets_counter_ = &registry.counter("flymon_packets_total");
  for (CmuGroup& g : groups_) g.bind_telemetry(registry);
}

void FlyMonDataPlane::process(const Packet& pkt) {
  PhvContext ctx;
  if (tracer_ != nullptr && tracer_->should_sample()) ctx.trace = tracer_->begin(pkt);
  for (CmuGroup& g : groups_) g.process(pkt, ctx);
  if (ctx.trace != nullptr) tracer_->commit();
  ++packets_;
  packets_counter_->inc();
}

void FlyMonDataPlane::clear_registers() {
  for (CmuGroup& g : groups_) {
    for (unsigned i = 0; i < g.num_cmus(); ++i) g.cmu(i).reg().clear();
  }
}

void collect_dataplane_telemetry(const FlyMonDataPlane& dp,
                                 telemetry::Registry& registry) {
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    const CmuGroup& grp = dp.group(g);
    unsigned configured = 0;
    for (unsigned u = 0; u < grp.compression().num_units(); ++u) {
      if (grp.compression().spec_of(u)) ++configured;
    }
    registry.gauge("flymon_group_hash_units_configured",
                   {{"group", std::to_string(g)}})
        .set(configured);
    for (unsigned c = 0; c < grp.num_cmus(); ++c) {
      const telemetry::Labels labels = {{"group", std::to_string(g)},
                                        {"cmu", std::to_string(c)}};
      registry.gauge("flymon_cmu_register_occupancy", labels)
          .set(grp.cmu(c).register_occupancy());
      registry.gauge("flymon_cmu_tasks_installed", labels)
          .set(static_cast<double>(grp.cmu(c).entries().size()));
    }
  }
  registry.gauge("flymon_dataplane_groups").set(dp.num_groups());
}

}  // namespace flymon
