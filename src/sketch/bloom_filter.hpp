// Bloom filter (Bloom, 1970).
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/sketch_common.hpp"

namespace flymon::sketch {

class BloomFilter {
 public:
  /// m bits, k hash functions.
  BloomFilter(std::uint64_t m_bits, unsigned k);

  static BloomFilter with_memory(std::size_t bytes, unsigned k);

  void insert(KeyBytes key);
  bool contains(KeyBytes key) const;

  std::uint64_t bit_count() const noexcept { return m_; }
  unsigned hash_count() const noexcept { return k_; }
  std::size_t memory_bytes() const noexcept { return bits_.size() * 8; }
  /// Fraction of bits set (load factor).
  double fill_ratio() const noexcept;
  void clear();

 private:
  std::uint64_t m_;
  unsigned k_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace flymon::sketch
