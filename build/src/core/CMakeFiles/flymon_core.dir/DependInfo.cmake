
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/address_translation.cpp" "src/core/CMakeFiles/flymon_core.dir/address_translation.cpp.o" "gcc" "src/core/CMakeFiles/flymon_core.dir/address_translation.cpp.o.d"
  "/root/repo/src/core/cmu.cpp" "src/core/CMakeFiles/flymon_core.dir/cmu.cpp.o" "gcc" "src/core/CMakeFiles/flymon_core.dir/cmu.cpp.o.d"
  "/root/repo/src/core/cmu_group.cpp" "src/core/CMakeFiles/flymon_core.dir/cmu_group.cpp.o" "gcc" "src/core/CMakeFiles/flymon_core.dir/cmu_group.cpp.o.d"
  "/root/repo/src/core/compression.cpp" "src/core/CMakeFiles/flymon_core.dir/compression.cpp.o" "gcc" "src/core/CMakeFiles/flymon_core.dir/compression.cpp.o.d"
  "/root/repo/src/core/flymon_dataplane.cpp" "src/core/CMakeFiles/flymon_core.dir/flymon_dataplane.cpp.o" "gcc" "src/core/CMakeFiles/flymon_core.dir/flymon_dataplane.cpp.o.d"
  "/root/repo/src/core/memory_partition.cpp" "src/core/CMakeFiles/flymon_core.dir/memory_partition.cpp.o" "gcc" "src/core/CMakeFiles/flymon_core.dir/memory_partition.cpp.o.d"
  "/root/repo/src/core/task.cpp" "src/core/CMakeFiles/flymon_core.dir/task.cpp.o" "gcc" "src/core/CMakeFiles/flymon_core.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flymon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/flymon_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/flymon_dataplane.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
