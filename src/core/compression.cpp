#include "core/compression.hpp"

#include <stdexcept>

namespace flymon {

bool specs_disjoint(const FlowKeySpec& a, const FlowKeySpec& b) noexcept {
  // Prefix fields overlap whenever both are non-zero (both start at the
  // field's most-significant bit).
  return !((a.src_ip_bits && b.src_ip_bits) || (a.dst_ip_bits && b.dst_ip_bits) ||
           (a.src_port_bits && b.src_port_bits) || (a.dst_port_bits && b.dst_port_bits) ||
           (a.proto_bits && b.proto_bits) || (a.ts_bits && b.ts_bits));
}

FlowKeySpec specs_union(const FlowKeySpec& a, const FlowKeySpec& b) noexcept {
  FlowKeySpec u;
  u.src_ip_bits = a.src_ip_bits + b.src_ip_bits;
  u.dst_ip_bits = a.dst_ip_bits + b.dst_ip_bits;
  u.src_port_bits = a.src_port_bits + b.src_port_bits;
  u.dst_port_bits = a.dst_port_bits + b.dst_port_bits;
  u.proto_bits = a.proto_bits + b.proto_bits;
  u.ts_bits = a.ts_bits + b.ts_bits;
  return u;
}

CompressionStage::CompressionStage(unsigned num_units, unsigned first_unit_index) {
  if (num_units == 0) throw std::invalid_argument("CompressionStage: zero units");
  units_.reserve(num_units);
  for (unsigned i = 0; i < num_units; ++i) units_.emplace_back(first_unit_index + i);
  specs_.resize(num_units);
}

void CompressionStage::configure(unsigned i, const FlowKeySpec& spec) {
  units_.at(i).set_mask(spec.mask());
  specs_.at(i) = spec;
}

void CompressionStage::clear_unit(unsigned i) {
  units_.at(i).clear_mask();
  specs_.at(i).reset();
}

std::optional<unsigned> CompressionStage::free_unit() const noexcept {
  for (unsigned i = 0; i < specs_.size(); ++i) {
    if (!specs_[i]) return i;
  }
  return std::nullopt;
}

std::optional<CompressedKeySelector> CompressionStage::find_selector(
    const FlowKeySpec& spec) const {
  for (unsigned i = 0; i < specs_.size(); ++i) {
    if (specs_[i] && *specs_[i] == spec) {
      return CompressedKeySelector{static_cast<std::int8_t>(i), -1};
    }
  }
  // Binary XOR of two units (RMT supports one XOR per stage, paper §3.1.1).
  for (unsigned i = 0; i < specs_.size(); ++i) {
    if (!specs_[i]) continue;
    for (unsigned j = i + 1; j < specs_.size(); ++j) {
      if (!specs_[j]) continue;
      if (specs_disjoint(*specs_[i], *specs_[j]) &&
          specs_union(*specs_[i], *specs_[j]) == spec) {
        return CompressedKeySelector{static_cast<std::int8_t>(i),
                                     static_cast<std::int8_t>(j)};
      }
    }
  }
  return std::nullopt;
}

std::vector<std::uint32_t> CompressionStage::compute(const CandidateKey& key) const {
  std::vector<std::uint32_t> out(units_.size(), 0u);
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (specs_[i]) out[i] = units_[i].compute(key);
  }
  return out;
}

std::uint32_t CompressionStage::select(const std::vector<std::uint32_t>& unit_keys,
                                       const CompressedKeySelector& sel) noexcept {
  std::uint32_t v = sel.unit_a >= 0 ? unit_keys[static_cast<unsigned>(sel.unit_a)] : 0u;
  if (sel.unit_b >= 0) v ^= unit_keys[static_cast<unsigned>(sel.unit_b)];
  return v;
}

}  // namespace flymon
