// Evaluation metrics (paper Appendix C): ARE, RE, F1 score, false-positive
// rate — shared by tests and every accuracy benchmark.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "packet/exact.hpp"
#include "packet/flowkey.hpp"

namespace flymon::analysis {

/// Relative error |x_hat - x| / x (x must be non-zero).
double relative_error(double truth, double estimate);

/// Average relative error over per-flow (truth, estimate) pairs.
/// Zero-truth flows are skipped.
double average_relative_error(const std::vector<std::pair<double, double>>& pairs);

struct ClassificationScore {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;

  double precision() const;
  double recall() const;
  double f1() const;
};

/// Compare a reported key set against the ground-truth key set.
ClassificationScore score_detection(const std::vector<FlowKeyValue>& truth,
                                    const std::vector<FlowKeyValue>& reported);

/// False-positive rate over probes known NOT to be members.
double false_positive_rate(std::size_t false_positives, std::size_t true_negatives_total);

/// ARE of a frequency-style estimator: for each flow in `truth`, look up
/// its estimate via `estimate_fn(key)`.
template <typename EstimateFn>
double frequency_are(const FreqMap& truth, EstimateFn&& estimate_fn) {
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(truth.size());
  for (const auto& [key, f] : truth) {
    if (f == 0) continue;
    pairs.emplace_back(static_cast<double>(f),
                       static_cast<double>(estimate_fn(key)));
  }
  return average_relative_error(pairs);
}

}  // namespace flymon::analysis
