# Empty compiler generated dependencies file for ablation_xor_keys.
# This may be replaced when dependencies are built.
