// Network-wide measurement: deploy one task across a fleet of FlyMon
// switches, ECMP the traffic, and merge the per-switch readouts — the
// software-defined-measurement pattern (DREAM/SCREAM) the paper positions
// FlyMon's data plane under.
#include <cstdio>

#include "analysis/metrics.hpp"
#include "control/network.hpp"
#include "packet/trace_gen.hpp"

using namespace flymon;

int main() {
  control::NetworkFlyMon net(4);  // a 4-switch leaf layer
  std::printf("fleet: %u switches x 9 CMU Groups\n", net.num_switches());

  // Network-wide heavy hitters.
  TaskSpec hh;
  hh.name = "net-wide heavy hitters";
  hh.key = FlowKeySpec::five_tuple();
  hh.attribute = AttributeKind::kFrequency;
  hh.memory_buckets = 16384;
  hh.rows = 3;
  const auto hh_task = net.deploy_everywhere(hh);
  if (!hh_task.ok) {
    std::fprintf(stderr, "deploy failed: %s\n", hh_task.error.c_str());
    return 1;
  }
  std::printf("heavy-hitter task live on all switches (worst deploy %.2f ms)\n",
              hh_task.worst_deploy_ms);

  // Network-wide cardinality (per-switch HLLs, summed over the ECMP
  // partition of the flow space).
  TaskSpec card;
  card.name = "net-wide cardinality";
  card.attribute = AttributeKind::kDistinct;
  card.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  card.algorithm = Algorithm::kHyperLogLog;
  card.memory_buckets = 4096;
  const auto card_task = net.deploy_everywhere(card);
  if (!card_task.ok) {
    std::fprintf(stderr, "deploy failed: %s\n", card_task.error.c_str());
    return 1;
  }

  TraceConfig cfg;
  cfg.num_flows = 20'000;
  cfg.num_packets = 500'000;
  const auto trace = TraceGenerator::generate(cfg);
  net.process_all(trace);
  std::printf("processed %zu packets across the fabric\n", trace.size());

  const FreqMap truth = ExactStats::frequency(trace, hh.key);
  const auto hh_true = ExactStats::over_threshold(truth, 1024);
  std::vector<FlowKeyValue> candidates;
  for (const auto& [k, f] : truth) candidates.push_back(k);
  const auto reported = net.detect_over_threshold(hh_task, candidates, 1024);
  const auto score = analysis::score_detection(hh_true, reported);
  std::printf("network-wide heavy hitters: %zu reported, %zu true, F1 %.3f\n",
              reported.size(), hh_true.size(), score.f1());

  const double card_truth =
      static_cast<double>(ExactStats::cardinality(trace, FlowKeySpec::five_tuple()));
  std::printf("network-wide cardinality: %.0f estimated vs %.0f true (RE %.3f)\n",
              net.estimate_cardinality_sum(card_task), card_truth,
              analysis::relative_error(card_truth, net.estimate_cardinality_sum(card_task)));
  return 0;
}
