# Empty dependencies file for task_churn.
# This may be replaced when dependencies are built.
