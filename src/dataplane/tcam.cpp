#include "dataplane/tcam.hpp"

#include <bit>
#include <stdexcept>

#include "common/bits.hpp"

namespace flymon::dataplane {

std::vector<TernaryPattern> range_to_ternary(std::uint64_t lo, std::uint64_t hi,
                                             unsigned width) {
  if (width == 0 || width > 64) throw std::invalid_argument("range_to_ternary: width");
  const std::uint64_t key_mask =
      width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  if (lo > hi || hi > key_mask) throw std::invalid_argument("range_to_ternary: range");

  // Greedy aligned-block cover: at each step emit the largest power-of-two
  // block that is aligned at `cur` and does not overshoot `hi`.
  std::vector<TernaryPattern> out;
  std::uint64_t cur = lo;
  while (true) {
    const unsigned align =
        cur == 0 ? width
                 : std::min<unsigned>(width, static_cast<unsigned>(std::countr_zero(cur)));
    const std::uint64_t remaining = hi - cur;  // block may cover at most this + 1
    const unsigned cap =
        remaining == ~std::uint64_t{0} ? 64u : log2_floor(remaining + 1);
    const unsigned k = std::min(align, cap);
    const std::uint64_t span_minus1 =
        k >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << k) - 1);
    out.push_back(TernaryPattern{cur & key_mask, key_mask & ~span_minus1});
    if (remaining <= span_minus1) break;
    cur += span_minus1 + 1;
  }
  return out;
}

}  // namespace flymon::dataplane
