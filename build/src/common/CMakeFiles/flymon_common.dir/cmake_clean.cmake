file(REMOVE_RECURSE
  "CMakeFiles/flymon_common.dir/hash.cpp.o"
  "CMakeFiles/flymon_common.dir/hash.cpp.o.d"
  "CMakeFiles/flymon_common.dir/zipf.cpp.o"
  "CMakeFiles/flymon_common.dir/zipf.cpp.o.d"
  "libflymon_common.a"
  "libflymon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flymon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
