// Task-plane consistency analyzer: every installed entry must name a
// configured compressed key and a pre-loaded SALU operation; every deployed
// task's rendered rules must reference live table entries; composite rows
// must chain forward across distinct groups on wired channels; co-resident
// hash units must not alias one another's key spec.
#include <set>
#include <string>

#include "control/rules.hpp"
#include "verify/verifier.hpp"

namespace flymon::verify {
namespace {

std::string cmu_site(unsigned g, unsigned c) {
  return "g" + std::to_string(g) + ".cmu" + std::to_string(c);
}

class TaskAnalyzer final : public Analyzer {
 public:
  std::string_view name() const noexcept override { return "tasks"; }
  std::string_view description() const noexcept override {
    return "entry/selector/operation wiring, rendered-rule liveness, chain "
           "topology, hash-unit aliasing";
  }

  void run(const VerifyContext& ctx, VerifyReport& report) const override {
    const FlyMonDataPlane& dp = *ctx.dataplane;
    check_entries(dp, report);
    check_hash_aliasing(dp, report);
    if (ctx.controller != nullptr) check_tasks(*ctx.controller, dp, report);
  }

 private:
  /// Entry-level wiring, covering raw entries that bypassed the controller.
  void check_entries(const FlyMonDataPlane& dp, VerifyReport& report) const {
    for (unsigned g = 0; g < dp.num_groups(); ++g) {
      const auto& comp = dp.group(g).compression();
      for (unsigned c = 0; c < dp.group(g).num_cmus(); ++c) {
        const Cmu& cmu = dp.group(g).cmu(c);
        const std::string site = cmu_site(g, c);
        for (const CmuTaskEntry& e : cmu.entries()) {
          const std::string who = "task " + std::to_string(e.task_id);
          if (!cmu.salu().has_op(e.op)) {
            report.add(Severity::kError, "task.op", site,
                       who + " selects " + dataplane::to_string(e.op) +
                           " but the SALU has no such register action",
                       "pre-load the operation before installing the entry");
          }
          check_selector(comp, e.key_sel, site, who + " key", report);
          if (e.p1.source == ParamSelect::Source::kCompressedKey) {
            check_selector(comp, e.p1.key_sel, site, who + " p1", report);
          }
          if (e.p2.source == ParamSelect::Source::kCompressedKey) {
            check_selector(comp, e.p2.key_sel, site, who + " p2", report);
          }
        }
      }
    }
  }

  void check_selector(const CompressionStage& comp,
                      const CompressedKeySelector& sel, const std::string& site,
                      const std::string& who, VerifyReport& report) const {
    if (!sel.valid()) {
      report.add(Severity::kError, "task.selector", site,
                 who + " has no compressed-key selector");
      return;
    }
    for (const std::int8_t u : {sel.unit_a, sel.unit_b}) {
      if (u < 0) continue;
      if (static_cast<unsigned>(u) >= comp.num_units()) {
        report.add(Severity::kError, "task.selector", site,
                   who + " names hash unit " + std::to_string(u) +
                       ", the group has " + std::to_string(comp.num_units()));
      } else if (!comp.spec_of(static_cast<unsigned>(u)).has_value()) {
        report.add(Severity::kError, "task.selector", site,
                   who + " reads hash unit " + std::to_string(u) +
                       " which has no dynamic-hash mask configured",
                   "a cleared unit hashes nothing; re-install the mask rule");
      }
    }
  }

  /// Two units of one compression stage configured with the same key spec
  /// waste a unit and break the XOR-composition independence assumption.
  void check_hash_aliasing(const FlyMonDataPlane& dp, VerifyReport& report) const {
    for (unsigned g = 0; g < dp.num_groups(); ++g) {
      const auto& comp = dp.group(g).compression();
      for (unsigned u = 0; u < comp.num_units(); ++u) {
        if (!comp.spec_of(u)) continue;
        for (unsigned v = u + 1; v < comp.num_units(); ++v) {
          if (comp.spec_of(v) && *comp.spec_of(v) == *comp.spec_of(u)) {
            report.add(Severity::kWarning, "task.alias",
                       "g" + std::to_string(g),
                       "hash units " + std::to_string(u) + " and " +
                           std::to_string(v) + " both compress " +
                           comp.spec_of(u)->name(),
                       "reuse one unit for both consumers (paper §3.4)");
          }
        }
      }
    }
  }

  void check_tasks(const control::Controller& ctl, const FlyMonDataPlane& dp,
                   VerifyReport& report) const {
    for (const std::uint32_t id : ctl.task_ids()) {
      const control::DeployedTask* t = ctl.task(id);
      if (t == nullptr) continue;
      const std::string who = "task " + std::to_string(id);

      // Every placement must resolve to a live installed entry — otherwise
      // the rendered runtime rules reference tables that no longer exist.
      bool all_live = true;
      for (const auto& row : t->rows) {
        for (const auto& up : row.units) {
          if (up.group >= dp.num_groups() ||
              up.cmu >= dp.group(up.group).num_cmus() ||
              dp.group(up.group).cmu(up.cmu).find(up.phys_id) == nullptr) {
            report.add(Severity::kError, "task.placement", who,
                       "placement " + cmu_site(up.group, up.cmu) +
                           " has no installed entry for physical id " +
                           std::to_string(up.phys_id),
                       "the entry was removed behind the controller's back");
            all_live = false;
          }
        }
      }
      if (all_live && control::render_rules(ctl, id).empty()) {
        report.add(Severity::kError, "task.rules", who,
                   "deployed task renders zero runtime rules");
      }

      // Composite rows chain strictly forward across distinct groups, and
      // every consumed chain channel must be produced earlier in the row.
      for (std::size_t r = 0; r < t->rows.size(); ++r) {
        const auto& units = t->rows[r].units;
        if (units.size() < 2) continue;
        const std::string row_site = who + " row " + std::to_string(r);
        std::set<std::uint32_t> produced;
        unsigned prev_group = 0;
        for (std::size_t u = 0; u < units.size(); ++u) {
          const auto& up = units[u];
          if (up.group >= dp.num_groups() ||
              up.cmu >= dp.group(up.group).num_cmus()) {
            continue;  // already reported as task.placement
          }
          if (u > 0 && up.group <= prev_group) {
            report.add(Severity::kError, "task.chain", row_site,
                       "unit " + std::to_string(u) + " sits in group " +
                           std::to_string(up.group) +
                           ", not after its upstream group " +
                           std::to_string(prev_group),
                       "chained CMUs must occupy distinct groups in pipeline "
                       "order");
          }
          prev_group = up.group;
          const CmuTaskEntry* e =
              dp.group(up.group).cmu(up.cmu).find(up.phys_id);
          if (e == nullptr) continue;
          auto consumed = [&](std::uint32_t channel, const char* what) {
            if (channel == 0) return;
            if (produced.find(channel) == produced.end()) {
              report.add(Severity::kError, "task.chain", row_site,
                         "unit " + std::to_string(u) + " " + what +
                             " reads chain channel " + std::to_string(channel) +
                             " which no upstream unit publishes");
            }
          };
          if (e->p1.source == ParamSelect::Source::kChain) {
            consumed(e->p1.const_value, "p1");
          }
          if (e->p2.source == ParamSelect::Source::kChain) {
            consumed(e->p2.const_value, "p2");
          }
          consumed(e->chain_gate, "gate");
          if (e->chain_out != 0) produced.insert(e->chain_out);
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Analyzer> make_task_analyzer() {
  return std::make_unique<TaskAnalyzer>();
}

}  // namespace flymon::verify
