
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/hash_unit.cpp" "src/dataplane/CMakeFiles/flymon_dataplane.dir/hash_unit.cpp.o" "gcc" "src/dataplane/CMakeFiles/flymon_dataplane.dir/hash_unit.cpp.o.d"
  "/root/repo/src/dataplane/mau_stage.cpp" "src/dataplane/CMakeFiles/flymon_dataplane.dir/mau_stage.cpp.o" "gcc" "src/dataplane/CMakeFiles/flymon_dataplane.dir/mau_stage.cpp.o.d"
  "/root/repo/src/dataplane/pipeline.cpp" "src/dataplane/CMakeFiles/flymon_dataplane.dir/pipeline.cpp.o" "gcc" "src/dataplane/CMakeFiles/flymon_dataplane.dir/pipeline.cpp.o.d"
  "/root/repo/src/dataplane/salu.cpp" "src/dataplane/CMakeFiles/flymon_dataplane.dir/salu.cpp.o" "gcc" "src/dataplane/CMakeFiles/flymon_dataplane.dir/salu.cpp.o.d"
  "/root/repo/src/dataplane/tcam.cpp" "src/dataplane/CMakeFiles/flymon_dataplane.dir/tcam.cpp.o" "gcc" "src/dataplane/CMakeFiles/flymon_dataplane.dir/tcam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flymon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/flymon_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
