#include "sketch/count_sketch.hpp"

#include <algorithm>
#include <stdexcept>

namespace flymon::sketch {

CountSketch::CountSketch(unsigned d, std::uint32_t w) : d_(d), w_(w) {
  if (d == 0 || w == 0) throw std::invalid_argument("CountSketch: d and w must be > 0");
  cells_.assign(std::size_t{d} * w, 0);
}

CountSketch CountSketch::with_memory(unsigned d, std::size_t bytes) {
  const std::size_t w = bytes / (std::size_t{4} * d);
  return CountSketch(d, static_cast<std::uint32_t>(std::max<std::size_t>(1, w)));
}

std::int32_t CountSketch::sign(KeyBytes key, unsigned row) const noexcept {
  return (row_hash(key, row, 0x51619ull) & 1) ? 1 : -1;
}

void CountSketch::update(KeyBytes key, std::int64_t inc) {
  for (unsigned r = 0; r < d_; ++r) {
    cells_[std::size_t{r} * w_ + row_hash(key, r, 0xC5ull) % w_] += sign(key, r) * inc;
  }
}

std::int64_t CountSketch::query(KeyBytes key) const {
  std::vector<std::int64_t> est(d_);
  for (unsigned r = 0; r < d_; ++r) {
    est[r] = sign(key, r) * cells_[std::size_t{r} * w_ + row_hash(key, r, 0xC5ull) % w_];
  }
  std::nth_element(est.begin(), est.begin() + d_ / 2, est.end());
  return est[d_ / 2];
}

double CountSketch::f2_estimate() const {
  std::vector<double> per_row(d_);
  for (unsigned r = 0; r < d_; ++r) {
    double s = 0;
    for (std::uint32_t c = 0; c < w_; ++c) {
      const double v = static_cast<double>(cells_[std::size_t{r} * w_ + c]);
      s += v * v;
    }
    per_row[r] = s;
  }
  std::nth_element(per_row.begin(), per_row.begin() + d_ / 2, per_row.end());
  return per_row[d_ / 2];
}

void CountSketch::clear() { std::fill(cells_.begin(), cells_.end(), 0); }

}  // namespace flymon::sketch
