// Static accuracy-feasibility analyzer: compares each deployed task's
// quantized geometry (rows x buckets) against the operator's requested
// error targets using the closed-form bounds in src/analysis/metrics.
// Findings are warnings — an infeasible target degrades accuracy, it does
// not corrupt the pipeline — and each carries the minimum geometry that
// would meet the target.
#include <cstdio>
#include <string>

#include "analysis/metrics.hpp"
#include "verify/verifier.hpp"

namespace flymon::verify {
namespace {

/// Algorithm families sharing an error model.
bool is_cm_family(Algorithm a) {
  switch (a) {
    case Algorithm::kCms:
    case Algorithm::kTowerSketch:
    case Algorithm::kMrac:
    case Algorithm::kSuMaxSum:
    case Algorithm::kCounterBraids:
      return true;
    default:
      return false;
  }
}

bool is_cardinality_family(Algorithm a) {
  return a == Algorithm::kHyperLogLog || a == Algorithm::kLinearCounting;
}

class DataflowAccuracyAnalyzer final : public Analyzer {
 public:
  std::string_view name() const noexcept override {
    return "dataflow-accuracy";
  }
  std::string_view description() const noexcept override {
    return "static accuracy feasibility: deployed rows/buckets vs requested "
           "epsilon/delta targets (CM, Bloom, HLL bounds)";
  }

  void run(const VerifyContext& ctx, VerifyReport& report) const override {
    if (ctx.controller == nullptr) return;
    for (const std::uint32_t id : ctx.controller->task_ids()) {
      const control::DeployedTask* t = ctx.controller->task(id);
      if (t == nullptr) continue;
      const TaskSpec& spec = t->spec;
      if (spec.target_epsilon <= 0 && spec.target_delta <= 0) continue;
      const std::string site = "task " + std::to_string(id);
      if (is_cm_family(t->algorithm)) {
        check_cm(*t, site, report);
      } else if (t->algorithm == Algorithm::kBloomFilter) {
        check_bloom(*t, site, report);
      } else if (is_cardinality_family(t->algorithm)) {
        check_cardinality(*t, site, report);
      }
      // Remaining algorithms (BeauCoup coupons, max/similarity trackers)
      // have no closed-form (eps, delta) bound here; targets are ignored.
    }
  }

 private:
  /// Count-Min style: eps = e/width per row, delta = e^-depth.
  void check_cm(const control::DeployedTask& t, const std::string& site,
                VerifyReport& report) const {
    const TaskSpec& spec = t.spec;
    if (spec.target_epsilon > 0) {
      const double eps = analysis::cm_epsilon(t.buckets);
      if (eps > spec.target_epsilon) {
        report.add(Severity::kWarning, "dataflow.accuracy.epsilon", site,
                   format_double(eps) + " achievable CM error factor with " +
                       std::to_string(t.buckets) +
                       " buckets/row exceeds the requested epsilon " +
                       format_double(spec.target_epsilon),
                   "resize to at least " +
                       std::to_string(
                           analysis::cm_min_width(spec.target_epsilon)) +
                       " buckets per row");
      }
    }
    if (spec.target_delta > 0) {
      const unsigned depth = static_cast<unsigned>(t.rows.size());
      const double delta = analysis::cm_delta(depth);
      if (delta > spec.target_delta) {
        report.add(Severity::kWarning, "dataflow.accuracy.delta", site,
                   format_double(delta) +
                       " achievable CM failure probability with " +
                       std::to_string(depth) +
                       " rows exceeds the requested delta " +
                       format_double(spec.target_delta),
                   "deploy at least " +
                       std::to_string(analysis::cm_min_depth(spec.target_delta)) +
                       " rows");
      }
    }
  }

  /// Bloom: FPR = (1 - e^{-kn/m})^k with k = rows and m = the bit budget.
  void check_bloom(const control::DeployedTask& t, const std::string& site,
                   VerifyReport& report) const {
    const TaskSpec& spec = t.spec;
    if (spec.target_epsilon <= 0) return;
    if (spec.expected_items == 0) {
      report.add(Severity::kWarning, "dataflow.accuracy.epsilon", site,
                 "Bloom FPR target set but expected_items is 0; the bound "
                 "cannot be evaluated",
                 "set expected_items on the task spec");
      return;
    }
    const unsigned hashes = static_cast<unsigned>(t.rows.size());
    const std::uint64_t bits =
        static_cast<std::uint64_t>(t.buckets) * (spec.bloom_bit_packed ? 32 : 1);
    const double fpr = analysis::bloom_false_positive_rate(
        bits, hashes, spec.expected_items);
    if (fpr > spec.target_epsilon) {
      const std::uint64_t min_bits = analysis::bloom_min_bits(
          spec.target_epsilon, hashes, spec.expected_items);
      const std::uint64_t min_buckets =
          spec.bloom_bit_packed ? (min_bits + 31) / 32 : min_bits;
      report.add(Severity::kWarning, "dataflow.accuracy.epsilon", site,
                 format_double(fpr) + " projected Bloom FPR for " +
                     std::to_string(spec.expected_items) + " items in " +
                     std::to_string(bits) +
                     " bits exceeds the requested bound " +
                     format_double(spec.target_epsilon),
                 "resize to at least " + std::to_string(min_buckets) +
                     " buckets per row");
    }
  }

  /// HLL / LinearCounting: relative stddev 1.04/sqrt(m).
  void check_cardinality(const control::DeployedTask& t,
                         const std::string& site, VerifyReport& report) const {
    const TaskSpec& spec = t.spec;
    if (spec.target_epsilon <= 0) return;
    const double sd = analysis::hll_relative_stddev(t.buckets);
    if (sd > spec.target_epsilon) {
      report.add(Severity::kWarning, "dataflow.accuracy.epsilon", site,
                 format_double(sd) +
                     " achievable cardinality relative stddev with " +
                     std::to_string(t.buckets) +
                     " registers exceeds the requested bound " +
                     format_double(spec.target_epsilon),
                 "resize to at least " +
                     std::to_string(
                         analysis::hll_min_registers(spec.target_epsilon)) +
                     " registers");
    }
  }

  static std::string format_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3g", v);
    return buf;
  }
};

}  // namespace

std::unique_ptr<Analyzer> make_dataflow_accuracy_analyzer() {
  return std::make_unique<DataflowAccuracyAnalyzer>();
}

}  // namespace flymon::verify
