// Tests for the CMU per-packet pipeline: task-entry matching, key
// selection, address translation, parameter preparation, stateful
// operations, chaining, probabilistic execution.
#include <gtest/gtest.h>

#include "core/cmu.hpp"
#include "core/cmu_group.hpp"

namespace flymon {
namespace {

using dataplane::StatefulOp;

Packet pkt(std::uint32_t src, std::uint32_t dst = 0xC0A80001, std::uint64_t ts = 0) {
  Packet p;
  p.ft.src_ip = src;
  p.ft.dst_ip = dst;
  p.ft.protocol = 6;
  p.ts_ns = ts;
  p.wire_bytes = 500;
  return p;
}

/// Small fixture: one compression stage configured for SrcIP + DstIP, and a
/// CMU with a 4096-bucket register.
struct CmuFixture {
  CompressionStage comp{3, 0};
  Cmu cmu{4096};

  CmuFixture() {
    comp.configure(0, FlowKeySpec::src_ip());
    comp.configure(1, FlowKeySpec::dst_ip());
  }

  std::vector<std::uint32_t> keys(const Packet& p) const {
    return comp.compute(serialize_candidate_key(p));
  }

  static CmuTaskEntry freq_entry(std::uint32_t id, MemoryPartition part) {
    CmuTaskEntry e;
    e.task_id = id;
    e.key_sel = {0, -1};
    e.key_slice = {0, 12};
    e.partition = part;
    e.p1 = ParamSelect::constant(1);
    e.p2 = ParamSelect::constant(0xFFFF'FFFFu);
    e.op = StatefulOp::kCondAdd;
    return e;
  }
};

TEST(Cmu, InstallValidation) {
  CmuFixture f;
  auto e = CmuFixture::freq_entry(1, {0, 4096});
  f.cmu.install(e);
  EXPECT_THROW(f.cmu.install(e), std::invalid_argument) << "duplicate id";
  auto bad = CmuFixture::freq_entry(2, {4096, 4096});
  EXPECT_THROW(f.cmu.install(bad), std::invalid_argument) << "partition out of range";
  auto nokey = CmuFixture::freq_entry(3, {0, 1024});
  nokey.key_sel = {};
  EXPECT_THROW(f.cmu.install(nokey), std::invalid_argument) << "no key selected";
}

TEST(Cmu, IntersectingFiltersRejectedWithoutSampling) {
  CmuFixture f;
  auto a = CmuFixture::freq_entry(1, {0, 1024});
  a.filter = TaskFilter::src(0x0A000000, 8);
  f.cmu.install(a);
  auto b = CmuFixture::freq_entry(2, {1024, 1024});
  b.filter = TaskFilter::src(0x0A010000, 16);  // subset of a
  EXPECT_THROW(f.cmu.install(b), std::invalid_argument);
  b.sample_probability = 0.5;  // probabilistic execution makes it legal
  EXPECT_NO_THROW(f.cmu.install(b));
}

TEST(Cmu, RemoveTask) {
  CmuFixture f;
  f.cmu.install(CmuFixture::freq_entry(1, {0, 1024}));
  EXPECT_NE(f.cmu.find(1), nullptr);
  EXPECT_TRUE(f.cmu.remove(1));
  EXPECT_EQ(f.cmu.find(1), nullptr);
  EXPECT_FALSE(f.cmu.remove(1));
}

TEST(Cmu, CondAddCountsPerKey) {
  CmuFixture f;
  f.cmu.install(CmuFixture::freq_entry(1, {0, 4096}));
  PhvContext ctx;
  const Packet a = pkt(0x0A000001), b = pkt(0x0A000002);
  for (int i = 0; i < 5; ++i) f.cmu.process(a, f.keys(a), ctx);
  for (int i = 0; i < 3; ++i) f.cmu.process(b, f.keys(b), ctx);
  const auto* e = f.cmu.find(1);
  EXPECT_EQ(f.cmu.reg().read(f.cmu.probe_address(*e, f.keys(a))), 5u);
  EXPECT_EQ(f.cmu.reg().read(f.cmu.probe_address(*e, f.keys(b))), 3u);
}

TEST(Cmu, NonMatchingPacketIgnored) {
  CmuFixture f;
  auto e = CmuFixture::freq_entry(1, {0, 4096});
  e.filter = TaskFilter::src(0x0A000000, 8);
  f.cmu.install(e);
  PhvContext ctx;
  const Packet other = pkt(0x0B000001);
  EXPECT_FALSE(f.cmu.process(other, f.keys(other), ctx).has_value());
}

TEST(Cmu, PriorityOrdersEntries) {
  CmuFixture f;
  auto low = CmuFixture::freq_entry(1, {0, 1024});
  low.filter = TaskFilter::src(0x0A000000, 8);
  low.priority = 10;
  auto high = CmuFixture::freq_entry(2, {1024, 1024});
  high.filter = TaskFilter::src(0x0A010000, 16);
  high.priority = 1;
  high.sample_probability = 0.999999;  // permit intersection
  f.cmu.install(low);
  f.cmu.install(high);
  PhvContext ctx;
  const Packet p = pkt(0x0A010001);
  f.cmu.process(p, f.keys(p), ctx);
  // The higher-priority (more specific) entry should have executed.
  const auto* he = f.cmu.find(2);
  EXPECT_GE(f.cmu.reg().read(f.cmu.probe_address(*he, f.keys(p))), 1u);
}

TEST(Cmu, AddressStaysInPartition) {
  CmuFixture f;
  auto e = CmuFixture::freq_entry(1, {1024, 1024});
  f.cmu.install(e);
  for (std::uint32_t s = 0; s < 500; ++s) {
    const Packet p = pkt(0x0A000000 + s * 7919);
    const std::uint32_t addr = f.cmu.probe_address(*f.cmu.find(1), f.keys(p));
    EXPECT_GE(addr, 1024u);
    EXPECT_LT(addr, 2048u);
  }
}

TEST(Cmu, MaxOperation) {
  CmuFixture f;
  auto e = CmuFixture::freq_entry(1, {0, 4096});
  e.op = StatefulOp::kMax;
  e.p1 = ParamSelect::metadata(MetaField::kQueueLen);
  f.cmu.install(e);
  PhvContext ctx;
  Packet p = pkt(0x0A000001);
  p.queue_len = 42;
  f.cmu.process(p, f.keys(p), ctx);
  p.queue_len = 17;
  f.cmu.process(p, f.keys(p), ctx);
  EXPECT_EQ(f.cmu.reg().read(f.cmu.probe_address(*f.cmu.find(1), f.keys(p))), 42u);
}

TEST(Cmu, BitSelectOneHotSetsSingleBit) {
  CmuFixture f;
  auto e = CmuFixture::freq_entry(1, {0, 4096});
  e.op = StatefulOp::kAndOr;
  e.prep = PrepFn::kBitSelectOneHot;
  e.p1 = ParamSelect::compressed({0, -1}, KeySlice{16, 5});
  f.cmu.install(e);
  PhvContext ctx;
  const Packet p = pkt(0x0A000001);
  f.cmu.process(p, f.keys(p), ctx);
  const std::uint32_t v =
      f.cmu.reg().read(f.cmu.probe_address(*f.cmu.find(1), f.keys(p)));
  EXPECT_EQ(std::popcount(v), 1) << "exactly one bit set";
}

TEST(Cmu, CouponOneHotAbortsOrSetsBit) {
  CmuFixture f;
  auto e = CmuFixture::freq_entry(1, {0, 4096});
  e.op = StatefulOp::kAndOr;
  e.prep = PrepFn::kCouponOneHot;
  e.coupon = CouponPrep{8, 1.0 / 64};
  e.p1 = ParamSelect::compressed({1, -1}, KeySlice{0, 32});
  f.cmu.install(e);
  PhvContext ctx;
  unsigned updates = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const Packet p = pkt(0x0A000001, 0xC0A80000 + i);
    if (f.cmu.process(p, f.keys(p), ctx)) ++updates;
  }
  // Draw probability is 8/64 = 12.5%: expect ~250 of 2000 updates.
  EXPECT_NEAR(updates, 250, 100);
  const std::uint32_t bitmap =
      f.cmu.reg().read(f.cmu.probe_address(*f.cmu.find(1), f.keys(pkt(0x0A000001))));
  EXPECT_LE(std::popcount(bitmap), 8);
  EXPECT_GT(std::popcount(bitmap), 0);
}

TEST(Cmu, ChainPublishesResult) {
  CmuFixture f;
  auto e = CmuFixture::freq_entry(1, {0, 4096});
  e.chain_out = 5;
  f.cmu.install(e);
  PhvContext ctx;
  const Packet p = pkt(0x0A000001);
  f.cmu.process(p, f.keys(p), ctx);
  EXPECT_EQ(ctx.get(5), 1u);
  f.cmu.process(p, f.keys(p), ctx);
  EXPECT_EQ(ctx.get(5), 2u);
}

TEST(Cmu, ChainFallbackPublishesP2OnZeroResult) {
  CmuFixture f;
  auto e = CmuFixture::freq_entry(1, {0, 4096});
  e.p2 = ParamSelect::constant(3);  // counter saturates at 3
  e.chain_out = 9;
  e.chain_fallback = true;
  f.cmu.install(e);
  PhvContext ctx;
  const Packet p = pkt(0x0A000001);
  for (int i = 0; i < 3; ++i) f.cmu.process(p, f.keys(p), ctx);
  EXPECT_EQ(ctx.get(9), 3u);
  f.cmu.process(p, f.keys(p), ctx);  // Cond-ADD returns 0 now
  EXPECT_EQ(ctx.get(9), 3u) << "fallback must republish p2 (the old min)";
}

TEST(Cmu, OutputOldValue) {
  CmuFixture f;
  auto e = CmuFixture::freq_entry(1, {0, 4096});
  e.op = StatefulOp::kMax;
  e.p1 = ParamSelect::metadata(MetaField::kTimestamp);
  e.output_old_value = true;
  e.chain_out = 2;
  f.cmu.install(e);
  PhvContext ctx;
  f.cmu.process(pkt(0x0A000001, 1, 5000 << kTsShift), f.keys(pkt(0x0A000001)), ctx);
  EXPECT_EQ(ctx.get(2), 0u) << "first packet sees old value 0";
  f.cmu.process(pkt(0x0A000001, 1, 9000ull << kTsShift), f.keys(pkt(0x0A000001)), ctx);
  EXPECT_EQ(ctx.get(2), 5000u) << "second packet sees the previous timestamp";
}

TEST(Cmu, KeepOnChainZeroGatesP1) {
  CmuFixture f;
  auto e = CmuFixture::freq_entry(1, {0, 4096});
  e.prep = PrepFn::kKeepOnChainZero;
  e.chain_gate = 4;
  f.cmu.install(e);
  PhvContext ctx;
  ctx.chain[4] = 1;  // non-zero: p1 suppressed
  const Packet p = pkt(0x0A000001);
  f.cmu.process(p, f.keys(p), ctx);
  EXPECT_EQ(f.cmu.reg().read(f.cmu.probe_address(*f.cmu.find(1), f.keys(p))), 0u);
  ctx.chain[4] = 0;  // zero: p1 passes
  f.cmu.process(p, f.keys(p), ctx);
  EXPECT_EQ(f.cmu.reg().read(f.cmu.probe_address(*f.cmu.find(1), f.keys(p))), 1u);
}

TEST(Cmu, SubtractGated) {
  CmuFixture f;
  auto e = CmuFixture::freq_entry(1, {0, 4096});
  e.op = StatefulOp::kMax;
  e.prep = PrepFn::kSubtractGated;
  e.chain_gate = 7;                       // gate: flow already seen?
  e.p1 = ParamSelect::metadata(MetaField::kTimestamp);
  e.p2 = ParamSelect::chain(8);           // previous timestamp
  f.cmu.install(e);
  PhvContext ctx;
  const Packet p = pkt(0x0A000001, 1, 9000ull << kTsShift);
  ctx.chain[7] = 0;  // new flow: interval forced to 0
  f.cmu.process(p, f.keys(p), ctx);
  EXPECT_EQ(f.cmu.reg().read(f.cmu.probe_address(*f.cmu.find(1), f.keys(p))), 0u);
  ctx.chain[7] = 1;
  ctx.chain[8] = 2000;
  f.cmu.process(p, f.keys(p), ctx);
  EXPECT_EQ(f.cmu.reg().read(f.cmu.probe_address(*f.cmu.find(1), f.keys(p))), 7000u);
}

TEST(Cmu, SamplingRoughlyHonorsProbability) {
  CmuFixture f;
  auto e = CmuFixture::freq_entry(1, {0, 4096});
  e.sample_probability = 0.25;
  f.cmu.install(e);
  PhvContext ctx;
  unsigned executed = 0;
  for (std::uint32_t i = 0; i < 4000; ++i) {
    const Packet p = pkt(0x0A000001, 2, i * 1'000'000);  // varying timestamps
    if (f.cmu.process(p, f.keys(p), ctx)) ++executed;
  }
  EXPECT_NEAR(executed, 1000, 150);
}

// -------- CMU Group --------

TEST(CmuGroup, StageDemandsMatchPaperFig8) {
  const auto d = CmuGroup::stage_demands();
  using dataplane::Resource;
  // Compression: 50% of 6 hash units.
  EXPECT_EQ(d[0][Resource::kHashUnit], 3u);
  // Initialization: 25% of 32 VLIW slots, 12.5% of 24 TCAM blocks.
  EXPECT_EQ(d[1][Resource::kVliwSlot], 8u);
  EXPECT_EQ(d[1][Resource::kTcamBlock], 3u);
  // Preparation: 50% of TCAM.
  EXPECT_EQ(d[2][Resource::kTcamBlock], 12u);
  // Operation: 75% of 4 SALUs, 50% of hash.
  EXPECT_EQ(d[3][Resource::kSalu], 3u);
  EXPECT_EQ(d[3][Resource::kHashUnit], 3u);
}

TEST(CmuGroup, ProcessRunsAllCmus) {
  CmuGroup g(0);
  g.compression().configure(0, FlowKeySpec::src_ip());
  for (unsigned c = 0; c < 3; ++c) {
    CmuTaskEntry e;
    e.task_id = 10 + c;
    e.key_sel = {0, -1};
    e.key_slice = {static_cast<std::uint8_t>(8 * c), 16};
    e.partition = {0, g.config().register_buckets};
    e.op = StatefulOp::kCondAdd;
    e.p1 = ParamSelect::constant(1);
    e.p2 = ParamSelect::constant(0xFFFF'FFFFu);
    g.cmu(c).install(e);
  }
  PhvContext ctx;
  const Packet p = pkt(0x0A000001);
  g.process(p, ctx);
  for (unsigned c = 0; c < 3; ++c) {
    const auto* e = g.cmu(c).find(10 + c);
    const auto keys = g.compute_keys(serialize_candidate_key(p));
    EXPECT_EQ(g.cmu(c).reg().read(g.cmu(c).probe_address(*e, keys)), 1u);
  }
}

TEST(CmuGroup, PhvBitsAccounting) {
  EXPECT_EQ(CmuGroup::phv_bits(), 3u * 32 + 3u * 32 + 16);
}

TEST(CmuGroup, GroupsUseDistinctHashFunctions) {
  CmuGroup g0(0), g1(1);
  g0.compression().configure(0, FlowKeySpec::src_ip());
  g1.compression().configure(0, FlowKeySpec::src_ip());
  const Packet p = pkt(0x0A000001);
  const auto k0 = g0.compute_keys(serialize_candidate_key(p));
  const auto k1 = g1.compute_keys(serialize_candidate_key(p));
  EXPECT_NE(k0[0], k1[0]);
}

}  // namespace
}  // namespace flymon
