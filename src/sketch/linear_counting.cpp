#include "sketch/linear_counting.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace flymon::sketch {

LinearCounting::LinearCounting(std::uint64_t m_bits) : m_(m_bits) {
  if (m_bits == 0) throw std::invalid_argument("LinearCounting: m must be > 0");
  bits_.assign((m_bits + 63) / 64, 0ull);
}

LinearCounting LinearCounting::with_memory(std::size_t bytes) {
  return LinearCounting(std::max<std::uint64_t>(64, std::uint64_t{bytes} * 8));
}

void LinearCounting::insert(KeyBytes key) {
  load_bit(hash64(key, 0x11C0ull) % m_);
}

void LinearCounting::load_bit(std::uint64_t idx) {
  bits_.at(idx >> 6) |= (1ull << (idx & 63));
}

double LinearCounting::estimate() const {
  std::uint64_t set = 0;
  for (std::uint64_t w : bits_) set += static_cast<std::uint64_t>(std::popcount(w));
  const std::uint64_t zeros = m_ - set;
  if (zeros == 0) return static_cast<double>(m_) * std::log(static_cast<double>(m_));
  const double v = static_cast<double>(zeros) / static_cast<double>(m_);
  return -static_cast<double>(m_) * std::log(v);
}

void LinearCounting::clear() { std::fill(bits_.begin(), bits_.end(), 0ull); }

}  // namespace flymon::sketch
