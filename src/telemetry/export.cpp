#include "telemetry/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace flymon::telemetry {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

namespace {

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Label block with an optional extra `le` label appended (histograms).
std::string prom_labels(const Labels& labels, const std::string& le = {}) {
  if (labels.empty() && le.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  if (!le.empty()) {
    if (!first) out += ',';
    out += "le=\"";
    out += le;
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string to_prometheus(const std::vector<MetricSample>& samples) {
  std::string out;
  std::string last_name;
  for (const MetricSample& s : samples) {
    if (s.name != last_name) {
      out += "# TYPE " + s.name + " " + kind_name(s.kind) + "\n";
      last_name = s.name;
    }
    if (s.kind == MetricKind::kHistogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < s.hist.counts.size(); ++i) {
        cumulative += s.hist.counts[i];
        const std::string le =
            i < s.hist.bounds.size() ? format_number(s.hist.bounds[i]) : "+Inf";
        out += s.name + "_bucket" + prom_labels(s.labels, le) + " " +
               std::to_string(cumulative) + "\n";
      }
      out += s.name + "_sum" + prom_labels(s.labels) + " " +
             format_number(s.hist.sum) + "\n";
      out += s.name + "_count" + prom_labels(s.labels) + " " +
             std::to_string(s.hist.count) + "\n";
    } else {
      out += s.name + prom_labels(s.labels) + " " + format_number(s.value) + "\n";
    }
  }
  return out;
}

std::string to_prometheus(const Registry& registry) {
  return to_prometheus(registry.snapshot());
}

std::string to_json(const std::vector<MetricSample>& samples) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(s.name) + "\",\"kind\":\"";
    out += kind_name(s.kind);
    out += "\",\"labels\":{";
    bool lf = true;
    for (const auto& [k, v] : s.labels) {
      if (!lf) out += ',';
      lf = false;
      out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
    }
    out += "}";
    if (s.kind == MetricKind::kHistogram) {
      out += ",\"count\":" + std::to_string(s.hist.count);
      out += ",\"sum\":" + format_number(s.hist.sum);
      out += ",\"buckets\":[";
      for (std::size_t i = 0; i < s.hist.counts.size(); ++i) {
        if (i != 0) out += ',';
        const std::string le =
            i < s.hist.bounds.size() ? format_number(s.hist.bounds[i]) : "\"+Inf\"";
        out += "{\"le\":" + le + ",\"count\":" + std::to_string(s.hist.counts[i]) + "}";
      }
      out += ']';
    } else {
      out += ",\"value\":" + format_number(s.value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string to_json(const Registry& registry) { return to_json(registry.snapshot()); }

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << content;
  return static_cast<bool>(f);
}

}  // namespace flymon::telemetry
