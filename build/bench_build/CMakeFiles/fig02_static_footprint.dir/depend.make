# Empty dependencies file for fig02_static_footprint.
# This may be replaced when dependencies are built.
