// Semantic dataflow analysis (src/ir + src/verify/dataflow_*) and the
// dry-run reconfiguration planner: IR extraction ground truth, hash-bit
// provenance, SALU interval analysis, accuracy-feasibility bounds,
// hash-unit masking edge cases, Controller::plan() shadow semantics, the
// shell `plan` command family, the paranoid pre-flight gate, and the
// machine-readable JSON report encoders.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "core/compression.hpp"
#include "control/controller.hpp"
#include "control/shell.hpp"
#include "core/flymon_dataplane.hpp"
#include "ir/ir.hpp"
#include "verify/diagnostics.hpp"
#include "verify/mutations.hpp"
#include "verify/planner.hpp"
#include "verify/verifier.hpp"

namespace flymon {
namespace {

using control::Controller;
using control::PlanOp;
using verify::Severity;

TaskSpec make_spec(const std::string& name, FlowKeySpec key, AttributeKind attr,
                   Algorithm algo, std::uint32_t buckets,
                   TaskFilter filter = TaskFilter::any()) {
  TaskSpec s;
  s.name = name;
  s.key = key;
  s.attribute = attr;
  s.algorithm = algo;
  s.memory_buckets = buckets;
  s.filter = filter;
  return s;
}

// Same stable fingerprint test_verify.cpp uses for the rollback regression:
// everything a deployment mutates, so "byte-identical" is checkable.
std::string dataplane_fingerprint(const FlyMonDataPlane& dp,
                                  const Controller& ctl) {
  std::ostringstream out;
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    const CmuGroup& grp = dp.group(g);
    out << "group " << g << '\n';
    for (unsigned u = 0; u < grp.compression().num_units(); ++u) {
      const auto& spec = grp.compression().spec_of(u);
      out << "  unit " << u << ": " << (spec ? spec->name() : "-") << '\n';
    }
    for (unsigned c = 0; c < grp.num_cmus(); ++c) {
      const Cmu& cmu = grp.cmu(c);
      out << "  cmu " << c << ": ops=" << cmu.salu().loaded_ops() << '\n';
      for (const CmuTaskEntry& e : cmu.entries()) {
        out << "    task " << e.task_id << " prio " << e.priority << " part ["
            << e.partition.base << '+' << e.partition.size << ") op "
            << static_cast<int>(e.op) << " filter " << e.filter.src_ip << '/'
            << int(e.filter.src_len) << ' ' << e.filter.dst_ip << '/'
            << int(e.filter.dst_len) << '\n';
      }
      std::uint64_t register_sum = 0;
      for (std::uint32_t i = 0; i < cmu.reg().size(); ++i) {
        register_sum += cmu.reg().read(i);
      }
      out << "    register_sum " << register_sum << '\n';
      out << "    free " << ctl.free_buckets(g, c) << '\n';
    }
  }
  out << "tasks " << ctl.num_tasks() << '\n';
  return out.str();
}

verify::VerifyReport run_analyzer(const char* name, const Controller& ctl,
                                  const FlyMonDataPlane& dp) {
  const verify::Verifier v;
  const verify::VerifyContext ctx{&ctl, &dp, nullptr, false};
  return v.run_one(name, ctx);
}

// ---- closed-form accuracy bounds (src/analysis/metrics) ----

TEST(MetricsBounds, CmEpsilonAndMinWidthInvert) {
  const double e = 2.718281828459045;
  EXPECT_NEAR(analysis::cm_epsilon(272), e / 272, 1e-12);
  // cm_min_width(eps) is the least width whose epsilon meets eps.
  const std::uint32_t w = analysis::cm_min_width(0.01);
  EXPECT_LE(analysis::cm_epsilon(w), 0.01);
  ASSERT_GT(w, 1u);
  EXPECT_GT(analysis::cm_epsilon(w - 1), 0.01);
}

TEST(MetricsBounds, CmDeltaAndMinDepthInvert) {
  EXPECT_NEAR(analysis::cm_delta(3), std::exp(-3.0), 1e-12);
  const unsigned d = analysis::cm_min_depth(0.01);
  EXPECT_LE(analysis::cm_delta(d), 0.01);
  ASSERT_GT(d, 1u);
  EXPECT_GT(analysis::cm_delta(d - 1), 0.01);
}

TEST(MetricsBounds, BloomFprMonotoneInItemsAndBits) {
  const double small = analysis::bloom_false_positive_rate(8192, 3, 100);
  const double more_items = analysis::bloom_false_positive_rate(8192, 3, 1000);
  const double more_bits = analysis::bloom_false_positive_rate(65536, 3, 1000);
  EXPECT_LT(small, more_items);
  EXPECT_LT(more_bits, more_items);
  EXPECT_GE(small, 0.0);
  EXPECT_LE(more_items, 1.0);
}

TEST(MetricsBounds, BloomMinBitsMeetsTarget) {
  const std::uint64_t m = analysis::bloom_min_bits(0.01, 3, 1000);
  EXPECT_LE(analysis::bloom_false_positive_rate(m, 3, 1000), 0.01 + 1e-9);
}

TEST(MetricsBounds, HllStddevAndMinRegistersInvert) {
  EXPECT_NEAR(analysis::hll_relative_stddev(4096), 1.04 / 64.0, 1e-12);
  const std::uint32_t m = analysis::hll_min_registers(0.02);
  EXPECT_LE(analysis::hll_relative_stddev(m), 0.02);
}

// ---- interval helpers and taint sets ----

TEST(IrHelpers, SaturatingArithmetic) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(ir::sat_add(2, 3), 5u);
  EXPECT_EQ(ir::sat_add(max, 1), max);
  EXPECT_EQ(ir::sat_add(max - 1, 1), max);
  EXPECT_EQ(ir::sat_mul(6, 7), 42u);
  EXPECT_EQ(ir::sat_mul(max, 2), max);
  EXPECT_EQ(ir::sat_mul(0, max), 0u);
  EXPECT_EQ(ir::sat_mul(max, 0), 0u);
}

TEST(IrHelpers, SpecBitsMatchTheMaskedFields) {
  EXPECT_TRUE(ir::spec_bits(FlowKeySpec{}).none());
  EXPECT_EQ(ir::spec_bits(FlowKeySpec::src_ip()).count(), 32u);
  EXPECT_EQ(ir::spec_bits(FlowKeySpec::src_ip(8)).count(), 8u);
  EXPECT_EQ(ir::spec_bits(FlowKeySpec::ip_pair()).count(), 64u);
  // SrcIP occupies candidate-key bytes [0..3]; an /8 prefix tags byte 0.
  const ir::KeyBitSet octet = ir::spec_bits(FlowKeySpec::src_ip(8));
  for (unsigned bit = 0; bit < 8; ++bit) EXPECT_TRUE(octet.test(bit));
  for (unsigned bit = 8; bit < kCandidateKeyBits; ++bit) {
    EXPECT_FALSE(octet.test(bit));
  }
}

// ---- IR extraction ----

TEST(IrExtract, EmptyWorldHasUnconfiguredUnitsAndNoEntries) {
  FlyMonDataPlane dp(2);
  const ir::PipelineIr irx = ir::extract_ir(dp, nullptr, 1ull << 26);
  EXPECT_EQ(irx.units.size(), 2u * irx.units_per_group);
  for (const ir::HashUnitNode& u : irx.units) {
    EXPECT_FALSE(u.configured);
    EXPECT_TRUE(u.sources.none());
  }
  EXPECT_TRUE(irx.entries.empty());
  EXPECT_TRUE(irx.tasks.empty());
}

TEST(IrExtract, DeployedCmsTaskOwnsItsRowsWithFullProvenance) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const auto r = ctl.add_task(make_spec("hh", FlowKeySpec::src_ip(),
                                        AttributeKind::kFrequency,
                                        Algorithm::kCms, 4096));
  ASSERT_TRUE(r.ok) << r.error;
  const ir::PipelineIr irx = ir::extract_ir(dp, &ctl, 1ull << 26);
  ASSERT_EQ(irx.tasks.size(), 1u);
  const ir::TaskNode& t = irx.tasks[0];
  EXPECT_EQ(t.id, r.task_id);
  EXPECT_EQ(t.entries.size(), t.rows);
  std::vector<unsigned> rows;
  for (const std::size_t i : t.entries) {
    const ir::EntryNode& e = irx.entries.at(i);
    EXPECT_TRUE(e.owned);
    EXPECT_EQ(e.task_id, r.task_id);
    rows.push_back(e.row);
    EXPECT_FALSE(e.key.self_cancelling);
    EXPECT_FALSE(e.key.reads_unconfigured);
    EXPECT_EQ(e.key.sources, ir::spec_bits(FlowKeySpec::src_ip()));
    EXPECT_TRUE(e.address.in_bounds);
    EXPECT_EQ(e.address.reachable_cells, e.partition.size);
    // CMS increments by the constant 1.
    EXPECT_EQ(e.p1.range.lo, 1u);
    EXPECT_EQ(e.p1.range.hi, 1u);
    EXPECT_FALSE(e.chained);
  }
  std::sort(rows.begin(), rows.end());
  EXPECT_TRUE(std::unique(rows.begin(), rows.end()) == rows.end())
      << "rows must map to distinct entries";
}

TEST(IrExtract, XorSelectorUnionsBothUnitMasks) {
  FlyMonDataPlane dp(2);
  CompressionStage& comp = dp.group(0).compression();
  comp.configure(0, FlowKeySpec::src_ip());
  comp.configure(1, FlowKeySpec::dst_ip());
  CmuTaskEntry e;
  e.task_id = 7;
  e.key_sel = {0, 1};
  e.partition = {0, 1024};
  e.op = dataplane::StatefulOp::kCondAdd;
  dp.group(0).cmu(0).install(e);
  const ir::PipelineIr irx = ir::extract_ir(dp, nullptr, 1ull << 26);
  const ir::EntryNode* n = irx.find_entry(0, 0, 7);
  ASSERT_NE(n, nullptr);
  EXPECT_FALSE(n->owned);
  EXPECT_FALSE(n->key.self_cancelling);
  EXPECT_EQ(n->key.sources.count(), 64u);
  EXPECT_EQ(n->key.sources,
            ir::spec_bits(FlowKeySpec::src_ip()) |
                ir::spec_bits(FlowKeySpec::dst_ip()));
}

TEST(IrExtract, SelfXorIsFlaggedAsCancelling) {
  FlyMonDataPlane dp(2);
  dp.group(0).compression().configure(0, FlowKeySpec::src_ip());
  CmuTaskEntry e;
  e.task_id = 8;
  e.key_sel = {0, 0};  // XOR of a unit with itself: the constant 0
  e.partition = {0, 1024};
  e.op = dataplane::StatefulOp::kCondAdd;
  dp.group(0).cmu(0).install(e);
  const ir::PipelineIr irx = ir::extract_ir(dp, nullptr, 1ull << 26);
  const ir::EntryNode* n = irx.find_entry(0, 0, 8);
  ASSERT_NE(n, nullptr);
  EXPECT_TRUE(n->key.self_cancelling);
  EXPECT_TRUE(n->key.sources.none());
}

TEST(IrExtract, ReadingAnUnconfiguredUnitIsFlagged) {
  FlyMonDataPlane dp(2);
  dp.group(0).compression().configure(0, FlowKeySpec::src_ip());
  CmuTaskEntry e;
  e.task_id = 9;
  e.key_sel = {2, -1};  // unit 2 never configured
  e.partition = {0, 1024};
  e.op = dataplane::StatefulOp::kCondAdd;
  dp.group(0).cmu(0).install(e);
  const ir::PipelineIr irx = ir::extract_ir(dp, nullptr, 1ull << 26);
  const ir::EntryNode* n = irx.find_entry(0, 0, 9);
  ASSERT_NE(n, nullptr);
  EXPECT_TRUE(n->key.reads_unconfigured);
  EXPECT_TRUE(n->key.sources.none());
}

// ---- hash-unit masking edge cases (the compression stage itself) ----

TEST(HashMaskEdge, AllZeroMaskHashesEveryPacketIdentically) {
  CompressionStage comp(3, 0);
  comp.configure(0, FlowKeySpec{});  // no field selected
  CandidateKey a{};
  CandidateKey b{};
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::uint8_t>(0xA0u + i);
  }
  EXPECT_EQ(comp.compute(a).at(0), comp.compute(b).at(0));
}

TEST(HashMaskEdge, SingleBitMaskDependsOnExactlyThatBit) {
  CompressionStage comp(3, 0);
  comp.configure(0, FlowKeySpec::src_ip(1));  // only src_ip bit 31
  CandidateKey base{};
  CandidateKey outside = base;
  outside[3] = 0xFF;  // low src_ip byte: outside the /1 mask
  outside[7] = 0x5A;  // dst_ip byte: outside the mask too
  CandidateKey inside = base;
  inside[0] = 0x80;  // the masked top bit of src_ip
  EXPECT_EQ(comp.compute(base).at(0), comp.compute(outside).at(0));
  // CRC32 is linear: flipping any unmasked input bit always changes the
  // output, so the single masked bit yields exactly two hash values.
  EXPECT_NE(comp.compute(base).at(0), comp.compute(inside).at(0));
  EXPECT_EQ(ir::spec_bits(FlowKeySpec::src_ip(1)).count(), 1u);
}

TEST(HashMaskEdge, IdenticalMaskOnTwoUnitsStillHashesIndependently) {
  CompressionStage comp(3, 0);
  comp.configure(0, FlowKeySpec::src_ip());
  comp.configure(1, FlowKeySpec::src_ip());
  CandidateKey k{};
  k[0] = 10;
  k[1] = 1;
  k[2] = 2;
  k[3] = 3;
  const auto out = comp.compute(k);
  // Per-unit CRC parameterisation diversifies the outputs, so two units
  // with the same mask are distinct estimators, not copies.
  EXPECT_NE(out.at(0), out.at(1));
  // And in the IR their XOR is a real 32-bit key, not a cancellation.
  FlyMonDataPlane dp(1);
  dp.group(0).compression().configure(0, FlowKeySpec::src_ip());
  dp.group(0).compression().configure(1, FlowKeySpec::src_ip());
  CmuTaskEntry e;
  e.task_id = 4;
  e.key_sel = {0, 1};
  e.partition = {0, 1024};
  dp.group(0).cmu(0).install(e);
  const ir::PipelineIr irx = ir::extract_ir(dp, nullptr, 1ull << 26);
  const ir::EntryNode* n = irx.find_entry(0, 0, 4);
  ASSERT_NE(n, nullptr);
  EXPECT_FALSE(n->key.self_cancelling);
  EXPECT_EQ(n->key.sources.count(), 32u);
}

// ---- dataflow-key analyzer ----

TEST(DataflowKey, CleanDeploymentStaysSilent) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  ASSERT_TRUE(ctl.add_task(make_spec("hh", FlowKeySpec::src_ip(),
                                     AttributeKind::kFrequency, Algorithm::kCms,
                                     4096))
                  .ok);
  const auto report = run_analyzer("dataflow-key", ctl, dp);
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(DataflowKey, ZeroEntropyUnitIsAnError) {
  FlyMonDataPlane dp(2);
  Controller ctl(dp);
  dp.group(1).compression().configure(0, FlowKeySpec{});
  const auto report = run_analyzer("dataflow-key", ctl, dp);
  EXPECT_TRUE(report.has_check("dataflow.key.entropy")) << report.format();
  EXPECT_TRUE(report.has_errors());
  EXPECT_NE(report.format().find("g1.unit0"), std::string::npos)
      << report.format();
}

TEST(DataflowKey, SelfCancellingSelectorIsAnError) {
  FlyMonDataPlane dp(2);
  Controller ctl(dp);
  dp.group(0).compression().configure(0, FlowKeySpec::src_ip());
  CmuTaskEntry e;
  e.task_id = 11;
  e.key_sel = {0, 0};
  e.partition = {0, 1024};
  e.op = dataplane::StatefulOp::kCondAdd;
  dp.group(0).cmu(0).install(e);
  const auto report = run_analyzer("dataflow-key", ctl, dp);
  EXPECT_TRUE(report.has_check("dataflow.key.cancel")) << report.format();
  EXPECT_TRUE(report.has_errors());
}

TEST(DataflowKey, RespeccedUnitLeavesRequestedBitsDead) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const auto r = ctl.add_task(make_spec("pair", FlowKeySpec::ip_pair(),
                                        AttributeKind::kFrequency,
                                        Algorithm::kCms, 4096));
  ASSERT_TRUE(r.ok) << r.error;
  // Narrow the hash mask under the deployed task: the task asked for the
  // full IP pair but its entries now hash an 8-bit slice of src_ip only.
  const control::DeployedTask* t = ctl.task(r.task_id);
  ASSERT_NE(t, nullptr);
  const unsigned g = t->rows[0].units[0].group;
  const ir::PipelineIr before = ir::extract_ir(dp, &ctl, 1ull << 26);
  const ir::EntryNode* owned = nullptr;
  for (const ir::EntryNode& e : before.entries) {
    if (e.owned && e.task_id == r.task_id) owned = &e;
  }
  ASSERT_NE(owned, nullptr);
  ASSERT_GE(owned->key.sel.unit_a, 0);
  dp.group(g).compression().configure(
      static_cast<unsigned>(owned->key.sel.unit_a), FlowKeySpec::src_ip(8));
  const auto report = run_analyzer("dataflow-key", ctl, dp);
  EXPECT_TRUE(report.has_check("dataflow.key.dead")) << report.format();
  EXPECT_FALSE(report.has_errors()) << report.format();  // dead bits warn
}

TEST(DataflowKey, AliasedRowsMutationFiresTheAliasCheck) {
  const auto report = verify::run_single_mutation("dataflow-aliased-task-rows");
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->has_check("dataflow.key.alias")) << report->format();
  EXPECT_TRUE(report->has_errors());
}

// ---- dataflow-range analyzer ----

TEST(DataflowRange, CleanTable1MixStaysSilent) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  ASSERT_TRUE(ctl.add_task(make_spec("hh", FlowKeySpec::src_ip(),
                                     AttributeKind::kFrequency, Algorithm::kCms,
                                     4096))
                  .ok);
  ASSERT_TRUE(ctl.add_task(make_spec("tower", FlowKeySpec::ip_pair(),
                                     AttributeKind::kFrequency,
                                     Algorithm::kTowerSketch, 8192,
                                     TaskFilter::src(0x0A000000u, 8)))
                  .ok);
  const auto report = run_analyzer("dataflow-range", ctl, dp);
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(DataflowRange, OversizedIncrementOverflowsTheValueMask) {
  const auto report = verify::run_single_mutation("dataflow-overflow-preload");
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->has_check("dataflow.range.overflow")) << report->format();
  EXPECT_TRUE(report->has_errors());
}

TEST(DataflowRange, NarrowKeySliceLeavesPartitionCellsCold) {
  FlyMonDataPlane dp(2);
  Controller ctl(dp);
  dp.group(0).compression().configure(0, FlowKeySpec::src_ip());
  CmuTaskEntry e;
  e.task_id = 21;
  e.key_sel = {0, -1};
  e.key_slice = {0, 4};  // 16 reachable cells
  e.partition = {0, 1024};
  e.op = dataplane::StatefulOp::kCondAdd;
  dp.group(0).cmu(0).install(e);
  const auto report = run_analyzer("dataflow-range", ctl, dp);
  EXPECT_TRUE(report.has_check("dataflow.range.address")) << report.format();
  EXPECT_FALSE(report.has_errors()) << report.format();  // reachability warns
  EXPECT_NE(report.format().find("16 of 1024"), std::string::npos)
      << report.format();
}

TEST(DataflowRange, NonPowerOfTwoPartitionIsAnError) {
  FlyMonDataPlane dp(2);
  Controller ctl(dp);
  dp.group(0).compression().configure(0, FlowKeySpec::src_ip());
  CmuTaskEntry e;
  e.task_id = 22;
  e.key_sel = {0, -1};
  e.partition = {0, 24};  // not a buddy-allocator block
  e.op = dataplane::StatefulOp::kCondAdd;
  dp.group(0).cmu(0).install(e);
  const auto report = run_analyzer("dataflow-range", ctl, dp);
  EXPECT_TRUE(report.has_check("dataflow.range.address")) << report.format();
  EXPECT_TRUE(report.has_errors());
}

// ---- dataflow-accuracy analyzer ----

TEST(DataflowAccuracy, InfeasibleCmEpsilonTargetWarnsWithMinWidth) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  auto spec = make_spec("tiny", FlowKeySpec::src_ip(),
                        AttributeKind::kFrequency, Algorithm::kCms, 64);
  spec.target_epsilon = 1e-6;
  ASSERT_TRUE(ctl.add_task(spec).ok);
  const auto report = run_analyzer("dataflow-accuracy", ctl, dp);
  EXPECT_TRUE(report.has_check("dataflow.accuracy.epsilon")) << report.format();
  EXPECT_FALSE(report.has_errors());  // accuracy findings are warnings
  EXPECT_NE(report.format().find(
                std::to_string(analysis::cm_min_width(1e-6))),
            std::string::npos)
      << report.format();
}

TEST(DataflowAccuracy, InfeasibleCmDeltaTargetWarnsWithMinDepth) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  auto spec = make_spec("shallow", FlowKeySpec::src_ip(),
                        AttributeKind::kFrequency, Algorithm::kCms, 4096);
  spec.rows = 1;
  spec.target_delta = 0.01;  // needs >= 5 rows
  ASSERT_TRUE(ctl.add_task(spec).ok);
  const auto report = run_analyzer("dataflow-accuracy", ctl, dp);
  EXPECT_TRUE(report.has_check("dataflow.accuracy.delta")) << report.format();
}

TEST(DataflowAccuracy, FeasibleTargetsStaySilent) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  auto spec = make_spec("roomy", FlowKeySpec::src_ip(),
                        AttributeKind::kFrequency, Algorithm::kCms, 4096);
  spec.target_epsilon = 0.01;  // cm_epsilon(4096) ~ 6.6e-4
  spec.target_delta = 0.05;    // cm_delta(3) ~ 0.0498
  ASSERT_TRUE(ctl.add_task(spec).ok);
  const auto report = run_analyzer("dataflow-accuracy", ctl, dp);
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(DataflowAccuracy, BloomTargetWithoutExpectedItemsWarns) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  auto spec = make_spec("bl", FlowKeySpec::ip_pair(), AttributeKind::kExistence,
                        Algorithm::kBloomFilter, 8192);
  spec.target_epsilon = 0.01;  // but expected_items left at 0
  ASSERT_TRUE(ctl.add_task(spec).ok);
  const auto report = run_analyzer("dataflow-accuracy", ctl, dp);
  EXPECT_TRUE(report.has_check("dataflow.accuracy.epsilon")) << report.format();
  EXPECT_NE(report.format().find("expected_items"), std::string::npos);
}

TEST(DataflowAccuracy, OverloadedBloomFilterWarns) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  auto spec = make_spec("bl", FlowKeySpec::ip_pair(), AttributeKind::kExistence,
                        Algorithm::kBloomFilter, 8192);
  spec.target_epsilon = 1e-4;
  spec.expected_items = 10'000'000;  // vastly more items than bits
  ASSERT_TRUE(ctl.add_task(spec).ok);
  const auto report = run_analyzer("dataflow-accuracy", ctl, dp);
  EXPECT_TRUE(report.has_check("dataflow.accuracy.epsilon")) << report.format();
}

TEST(DataflowAccuracy, UndersizedHllRegisterArrayWarns) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  TaskSpec spec;
  spec.name = "card";
  spec.attribute = AttributeKind::kDistinct;
  spec.algorithm = Algorithm::kHyperLogLog;
  spec.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  spec.memory_buckets = 1024;
  spec.target_epsilon = 0.001;  // 1.04/sqrt(1024) ~ 0.0325
  ASSERT_TRUE(ctl.add_task(spec).ok);
  const auto report = run_analyzer("dataflow-accuracy", ctl, dp);
  EXPECT_TRUE(report.has_check("dataflow.accuracy.epsilon")) << report.format();
  EXPECT_NE(report.format().find("registers"), std::string::npos);
}

TEST(DataflowAccuracy, NoTargetsMeansNoFindings) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  ASSERT_TRUE(ctl.add_task(make_spec("plain", FlowKeySpec::src_ip(),
                                     AttributeKind::kFrequency, Algorithm::kCms,
                                     64))  // terrible accuracy, but no target
                  .ok);
  const auto report = run_analyzer("dataflow-accuracy", ctl, dp);
  EXPECT_TRUE(report.empty()) << report.format();
}

// ---- Controller::plan (dry-run planner) ----

TEST(Planner, EmptyPlanOnCleanWorldVerifiesAndMapsEveryTask) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const auto a = ctl.add_task(make_spec("a", FlowKeySpec::src_ip(),
                                        AttributeKind::kFrequency,
                                        Algorithm::kCms, 4096));
  const auto b = ctl.add_task(make_spec("b", FlowKeySpec::dst_ip(),
                                        AttributeKind::kFrequency,
                                        Algorithm::kTowerSketch, 8192));
  ASSERT_TRUE(a.ok && b.ok);
  const verify::PlanResult res = ctl.plan({});
  EXPECT_TRUE(res.ok) << res.format();
  EXPECT_TRUE(res.error.empty());
  EXPECT_EQ(res.id_map.size(), 2u);
  EXPECT_TRUE(res.id_map.count(a.task_id));
  EXPECT_TRUE(res.id_map.count(b.task_id));
  EXPECT_FALSE(res.report.has_errors()) << res.report.format();
  EXPECT_NE(res.format().find("plan OK"), std::string::npos);
}

TEST(Planner, AddOpDeploysOnTheShadowOnly) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const verify::PlanResult res = ctl.plan({PlanOp::add(
      make_spec("hh", FlowKeySpec::src_ip(), AttributeKind::kFrequency,
                Algorithm::kCms, 4096))});
  EXPECT_TRUE(res.ok) << res.format();
  ASSERT_EQ(res.ops.size(), 1u);
  EXPECT_TRUE(res.ops[0].ok);
  EXPECT_NE(res.ops[0].detail.find("deployed as shadow task"),
            std::string::npos);
  EXPECT_EQ(ctl.num_tasks(), 0u);  // the live world never saw the op
}

TEST(Planner, FailingBatchLeavesDataPlaneByteIdentical) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  ASSERT_TRUE(ctl.add_task(make_spec("hh", FlowKeySpec::src_ip(),
                                     AttributeKind::kFrequency, Algorithm::kCms,
                                     4096))
                  .ok);
  const std::string before = dataplane_fingerprint(dp, ctl);
  const verify::PlanResult res = ctl.plan(
      {PlanOp::add(make_spec("ok", FlowKeySpec::dst_ip(),
                             AttributeKind::kFrequency, Algorithm::kCms, 4096)),
       PlanOp::add(make_spec("whale", FlowKeySpec::ip_pair(),
                             AttributeKind::kFrequency, Algorithm::kCms,
                             1u << 30))});
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
  ASSERT_EQ(res.ops.size(), 2u);
  EXPECT_TRUE(res.ops[0].ok);
  EXPECT_FALSE(res.ops[1].ok);
  EXPECT_EQ(dataplane_fingerprint(dp, ctl), before);
  EXPECT_NE(res.format().find("plan FAILED"), std::string::npos);
}

TEST(Planner, RemoveAndResizeTranslateLiveIds) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const auto a = ctl.add_task(make_spec("a", FlowKeySpec::src_ip(),
                                        AttributeKind::kFrequency,
                                        Algorithm::kCms, 4096));
  const auto b = ctl.add_task(make_spec("b", FlowKeySpec::dst_ip(),
                                        AttributeKind::kFrequency,
                                        Algorithm::kCms, 4096));
  ASSERT_TRUE(a.ok && b.ok);
  const verify::PlanResult res = ctl.plan(
      {PlanOp::remove(a.task_id), PlanOp::resize(b.task_id, 8192)});
  EXPECT_TRUE(res.ok) << res.format();
  EXPECT_EQ(res.id_map.count(a.task_id), 0u);  // removed from the shadow
  EXPECT_EQ(res.id_map.count(b.task_id), 1u);
  ASSERT_EQ(res.ops.size(), 2u);
  EXPECT_NE(res.ops[1].detail.find("resized to 8192"), std::string::npos);
  EXPECT_EQ(ctl.num_tasks(), 2u);
}

TEST(Planner, SplitOpRetiresTheParentId) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const auto r = ctl.add_task(make_spec("hh", FlowKeySpec::src_ip(),
                                        AttributeKind::kFrequency,
                                        Algorithm::kCms, 4096,
                                        TaskFilter::src(0x0A000000u, 8)));
  ASSERT_TRUE(r.ok) << r.error;
  const verify::PlanResult res = ctl.plan({PlanOp::split(r.task_id)});
  EXPECT_TRUE(res.ok) << res.format();
  ASSERT_EQ(res.ops.size(), 1u);
  EXPECT_NE(res.ops[0].detail.find("split into shadow tasks"),
            std::string::npos);
  EXPECT_EQ(res.id_map.count(r.task_id), 0u);
  EXPECT_EQ(ctl.num_tasks(), 1u);  // live task untouched
}

TEST(Planner, UnknownLiveIdFailsTheBatch) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const verify::PlanResult res = ctl.plan({PlanOp::remove(999)});
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("unknown live task id 999"), std::string::npos)
      << res.error;
}

TEST(Planner, ParanoidPreFlightRejectsWithoutTouchingTheDataPlane) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  ctl.set_paranoid(true);
  ASSERT_TRUE(ctl.add_task(make_spec("hh", FlowKeySpec::src_ip(),
                                     AttributeKind::kFrequency, Algorithm::kCms,
                                     4096))
                  .ok);
  const std::string before = dataplane_fingerprint(dp, ctl);
  const auto r = ctl.add_task(make_spec("whale", FlowKeySpec::dst_ip(),
                                        AttributeKind::kFrequency,
                                        Algorithm::kCms, 1u << 30));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("plan gate rejected deployment"), std::string::npos)
      << r.error;
  EXPECT_EQ(ctl.last_verify_errors(), r.error.substr(r.error.find('\n') + 1));
  EXPECT_EQ(dataplane_fingerprint(dp, ctl), before);
}

// ---- shell `plan` command family ----

TEST(ShellPlan, StageShowRunClearRoundTrip) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  control::Shell shell(ctl);
  EXPECT_NE(shell.execute("plan").find("no staged ops"), std::string::npos);
  EXPECT_EQ(shell.execute(
                "plan add name=hh key=SrcIP attr=Frequency algo=CMS mem=4096"),
            "staged op 1: add");
  const std::string shown = shell.execute("plan show");
  EXPECT_NE(shown.find("add \"hh\""), std::string::npos) << shown;
  EXPECT_NE(shown.find("1 op(s) staged"), std::string::npos) << shown;
  const std::string run = shell.execute("plan run");
  EXPECT_NE(run.find("plan OK"), std::string::npos) << run;
  EXPECT_NE(run.find("dry run; data plane untouched"), std::string::npos);
  EXPECT_EQ(ctl.num_tasks(), 0u);
  EXPECT_EQ(shell.execute("plan clear"), "cleared 1 staged op(s)");
  EXPECT_NE(shell.execute("plan").find("no staged ops"), std::string::npos);
}

TEST(ShellPlan, CommitAppliesTheBatchAndClearsIt) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  control::Shell shell(ctl);
  shell.execute("plan add name=hh key=SrcIP attr=Frequency algo=CMS mem=4096");
  const std::string committed = shell.execute("plan commit");
  EXPECT_NE(committed.find("1 op(s) committed"), std::string::npos)
      << committed;
  EXPECT_EQ(ctl.num_tasks(), 1u);
  EXPECT_NE(shell.execute("plan").find("no staged ops"), std::string::npos);
}

TEST(ShellPlan, CommitAbortsOnFailedDryRunAndKeepsTheBatch) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  control::Shell shell(ctl);
  shell.execute("plan add name=whale key=SrcIP attr=Frequency algo=CMS "
                "mem=1073741824");
  const std::string committed = shell.execute("plan commit");
  EXPECT_NE(committed.find("commit aborted"), std::string::npos) << committed;
  EXPECT_EQ(ctl.num_tasks(), 0u);
  EXPECT_NE(shell.execute("plan show").find("1 op(s) staged"),
            std::string::npos);
}

TEST(ShellPlan, StagingValidatesLiveTaskIds) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  control::Shell shell(ctl);
  EXPECT_EQ(shell.execute("plan remove 42"), "error: unknown task");
  EXPECT_EQ(shell.execute("plan resize 42 8192"), "error: unknown task");
  EXPECT_NE(shell.execute("plan bogus").find("error: usage"),
            std::string::npos);
}

TEST(ShellPlan, AccuracyTargetArgumentsReachTheSpec) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  control::Shell shell(ctl);
  const std::string resp = shell.execute(
      "add name=hh key=SrcIP attr=Frequency algo=CMS mem=4096 "
      "eps=0.001 delta=0.05 flows=1000");
  ASSERT_EQ(resp.rfind("error", 0), std::string::npos) << resp;
  const auto ids = ctl.task_ids();
  ASSERT_EQ(ids.size(), 1u);
  const control::DeployedTask* t = ctl.task(ids[0]);
  ASSERT_NE(t, nullptr);
  EXPECT_DOUBLE_EQ(t->spec.target_epsilon, 0.001);
  EXPECT_DOUBLE_EQ(t->spec.target_delta, 0.05);
  EXPECT_EQ(t->spec.expected_items, 1000u);
  EXPECT_EQ(shell.execute("add name=x key=SrcIP attr=Frequency algo=CMS "
                          "mem=4096 eps=0"),
            "error: bad eps");
}

// ---- machine-readable reports ----

TEST(JsonReport, VerifyReportEncodesCountsAndEscapes) {
  verify::VerifyReport r;
  r.analyzers_run.push_back("dataflow-key");
  r.add(Severity::kError, "dataflow.key.cancel", "g0.cmu1",
        "selector \"7\" cancels", "pick two units");
  r.add(Severity::kWarning, "dataflow.key.dead", "g0.cmu2", "8 dead bits");
  const std::string json = verify::to_json(r);
  EXPECT_NE(json.find("\"analyzers\":[\"dataflow-key\"]"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"counts\":{\"error\":1,\"warning\":1,\"info\":0}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"check\":\"dataflow.key.cancel\""), std::string::npos);
  EXPECT_NE(json.find("selector \\\"7\\\" cancels"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"hint\":\"pick two units\""), std::string::npos);
}

TEST(JsonReport, SelfTestResultEncodesEveryCase) {
  const auto result = verify::run_mutation_self_test("dataflow-");
  ASSERT_EQ(result.cases.size(), 5u);
  EXPECT_TRUE(result.passed()) << verify::format(result);
  const std::string json = verify::to_json(result);
  EXPECT_NE(json.find("\"baseline_clean\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"passed\":true"), std::string::npos);
  for (const auto& c : result.cases) {
    EXPECT_NE(json.find("\"mutation\":\"" + c.mutation + "\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"expected_check\":\"" + c.expected_check + "\""),
              std::string::npos);
  }
}

}  // namespace
}  // namespace flymon
