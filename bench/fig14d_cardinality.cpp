// Paper Figure 14d: flow cardinality relative error vs memory —
// original BeauCoup (tiny but bounded accuracy) vs FlyMon-HLL (more memory
// buys much higher accuracy).
#include "bench/bench_util.hpp"
#include "sketch/beaucoup.hpp"

using namespace flymon;

namespace {

double flymon_hll_re(std::size_t mem_bytes, const std::vector<Packet>& trace,
                     double truth) {
  TaskSpec spec;
  spec.attribute = AttributeKind::kDistinct;
  spec.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  spec.algorithm = Algorithm::kHyperLogLog;
  spec.memory_buckets =
      static_cast<std::uint32_t>(std::max<std::size_t>(4, mem_bytes / 4));
  auto inst = bench::deploy_flymon(spec);
  if (!inst.ok) return -1;
  inst.dp->process_all(trace);
  return analysis::relative_error(truth, inst.ctl->estimate_cardinality(inst.task_id));
}

double beaucoup_re(std::size_t mem_bytes, const std::vector<Packet>& trace,
                   double truth) {
  // Single-key distinct counting: every packet belongs to one logical flow;
  // the coupon configuration targets the expected traffic scale (an
  // operator-chosen constant — it must not peek at the answer).
  auto cfg = sketch::CouponConfig::for_threshold(128.0 * 1024, 32, 24);
  auto bc = sketch::BeauCoup::with_memory(1, std::max<std::size_t>(8, mem_bytes), cfg);
  const FlowKeyValue all{};  // the single whole-traffic key
  for (const Packet& p : trace) {
    const FlowKeyValue ft = extract_flow_key(p, FlowKeySpec::five_tuple());
    bc.update({all.bytes.data(), all.bytes.size()}, {ft.bytes.data(), ft.bytes.size()});
  }
  return analysis::relative_error(truth, bc.estimate({all.bytes.data(), all.bytes.size()}));
}

}  // namespace

int main() {
  bench::header("Figure 14d", "Flow cardinality: relative error vs memory");

  TraceConfig cfg;
  cfg.num_flows = 100'000;
  cfg.num_packets = 400'000;
  cfg.zipf_alpha = 0.3;
  const auto trace = TraceGenerator::generate(cfg);
  const double truth =
      static_cast<double>(ExactStats::cardinality(trace, FlowKeySpec::five_tuple()));
  std::printf("trace: %zu pkts, true cardinality %.0f\n\n", trace.size(), truth);

  std::printf("%10s %12s %12s\n", "memory", "BeauCoup", "FlyMon-HLL");
  for (std::size_t bytes : {16u, 64u, 256u, 1024u, 4096u, 8192u}) {
    std::printf("%10s %12.4f %12.4f\n", bench::fmt_mem(bytes).c_str(),
                beaucoup_re(bytes, trace, truth), flymon_hll_re(bytes, trace, truth));
  }
  std::printf("\n(paper: BeauCoup achieves RE < 0.2 with 16 B; HLL reaches much "
              "higher accuracy as memory grows toward 8 KB)\n");
  return 0;
}
