file(REMOVE_RECURSE
  "../bench/fig14e_entropy"
  "../bench/fig14e_entropy.pdb"
  "CMakeFiles/fig14e_entropy.dir/fig14e_entropy.cpp.o"
  "CMakeFiles/fig14e_entropy.dir/fig14e_entropy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14e_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
