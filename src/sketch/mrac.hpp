// MRAC (Kumar et al., SIGMETRICS 2004): single hashed counter array whose
// counter-value histogram is post-processed (EM) into a flow-size
// distribution, from which flow entropy is derived.
//
// Data-plane side is identical to a 1-row Count-Min (the paper notes MRAC
// and CMS differ only in control-plane analysis); the value is in the
// estimator below.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sketch/sketch_common.hpp"

namespace flymon::sketch {

class Mrac {
 public:
  explicit Mrac(std::uint32_t m);

  static Mrac with_memory(std::size_t bytes);

  void update(KeyBytes key, std::uint32_t inc = 1);

  std::uint32_t width() const noexcept { return static_cast<std::uint32_t>(cells_.size()); }
  std::size_t memory_bytes() const noexcept { return cells_.size() * 4; }
  const std::vector<std::uint32_t>& counters() const noexcept { return cells_; }
  void clear();

  /// Load a raw counter collected from a FlyMon CMU register.
  void load_counter(std::size_t idx, std::uint32_t value);

  /// Estimated number of flows (linear counting over zero counters).
  double estimate_flow_count() const;

  /// EM-estimated flow-size distribution: size -> estimated #flows.
  /// `max_split_value` caps the counter values considered for 2-way
  /// collision splitting (larger counters are treated as single flows —
  /// with m >> n, 3+ way collisions are negligible).
  std::map<std::uint32_t, double> estimate_size_distribution(
      unsigned em_iterations = 20, std::uint32_t max_split_value = 512) const;

  /// Entropy (nats) of the estimated per-flow packet distribution.
  double estimate_entropy(unsigned em_iterations = 20) const;

  /// Entropy of an exact size distribution (shared helper for baselines).
  static double entropy_of_distribution(const std::map<std::uint32_t, double>& dist);

 private:
  std::vector<std::uint32_t> cells_;
};

}  // namespace flymon::sketch
