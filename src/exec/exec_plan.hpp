// Compiled execution plan for the FlyMon packet path (ChameleMon-style
// hitless reconfiguration; MAFIA-style compiled measurement programs).
//
// The interpreted path re-resolves TCAM entries, hash masks and
// address-translation parameters per packet against the *mutable*
// Cmu/CompressionStage objects the controller edits.  The ExecPlan is the
// opposite: an immutable, flat, cache-friendly array of per-CMU compiled
// entries produced by the PlanCompiler from a deployment snapshot.  The
// data plane holds the current plan behind an RCU-style
// std::atomic<std::shared_ptr<const ExecPlan>>: packets acquire-load the
// pointer, the controller publishes a freshly compiled plan with a release
// store after every reconfiguration — the packet path never stalls and
// never observes a torn configuration.
//
// Registers and telemetry counters stay SHARED with the live data plane
// (the plan holds pointers, not copies), so epoch reads/clears and the
// exporters are unchanged; only the *configuration* is snapshotted.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/cmu.hpp"
#include "dataplane/hash_unit.hpp"
#include "dataplane/salu.hpp"
#include "packet/exact.hpp"
#include "packet/packet.hpp"
#include "telemetry/telemetry.hpp"

namespace flymon {
class FlyMonDataPlane;
}  // namespace flymon

namespace flymon::trace {
struct BatchStageSample;
}  // namespace flymon::trace

namespace flymon::exec {

/// Which controller task owns one installed (group, cmu, phys_id) entry.
/// The controller passes these labels at publish time so compiled entries
/// can be described in terms of public task ids without exec depending on
/// control-plane headers.
struct EntryOwnership {
  unsigned group = 0;
  unsigned cmu = 0;
  std::uint32_t phys_id = 0;   ///< task id installed in the CMU
  std::uint32_t task_id = 0;   ///< public controller id
  std::size_t row = 0;         ///< row index within the owning task
  std::size_t unit = 0;        ///< unit index within the row
  std::string name;            ///< task name (diagnostics only)
};

/// A lowered parameter selection: everything pre-resolved except the
/// per-packet inputs (metadata fields, hash lanes, chain channels).
struct CompiledParam {
  enum class Kind : std::uint8_t { kConst, kMeta, kKey, kChain };

  Kind kind = Kind::kConst;
  MetaField meta = MetaField::kOne;
  std::uint16_t slot_a = 0;          ///< kKey: hash-lane index (0 = zero lane)
  std::uint16_t slot_b = 0;
  std::uint8_t shift = 0;            ///< kKey: pre-resolved slice shift
  std::uint32_t mask = 0xFFFF'FFFFu; ///< kKey: pre-resolved slice mask
  std::uint32_t value = 0;           ///< kConst value / kChain dense index
};

/// One installed CMU task entry, fully lowered: filter as xor/mask pairs,
/// matched-rule key selector as lane indices, pre-shifted address
/// translation, one-hot/interval constants, and a small op-code.
struct CompiledEntry {
  // Initialization: filter match + probabilistic-execution coin.
  std::uint32_t filter_src_ip = 0;
  std::uint32_t filter_src_mask = 0;  ///< 0 = wildcard
  std::uint32_t filter_dst_ip = 0;
  std::uint32_t filter_dst_mask = 0;
  bool sampled = false;               ///< sample_probability < 1
  double sample_probability = 1.0;
  std::uint64_t sample_seed = 0;      ///< 0xC01F + phys task id

  // Dynamic key: XOR of two hash lanes, sliced.
  std::uint16_t key_slot_a = 0;
  std::uint16_t key_slot_b = 0;
  std::uint8_t key_shift = 0;
  std::uint32_t key_mask = 0xFFFF'FFFFu;

  // Pre-shifted address translation onto the power-of-two partition.
  std::uint8_t addr_shift = 0;
  std::uint32_t addr_mask = 0;        ///< partition.size - 1
  std::uint32_t addr_base = 0;

  CompiledParam p1, p2;

  // Preparation stage.
  PrepFn prep = PrepFn::kNone;
  std::uint16_t gate_chain = 0;       ///< dense chain index (0 reads zero)
  std::uint32_t coupon_count = 0;
  double coupon_probability = 0.0;
  double coupon_total = 0.0;          ///< probability * count, precomputed

  // Operation stage.
  dataplane::StatefulOp op = dataplane::StatefulOp::kNop;
  std::uint32_t value_mask = 0xFFFF'FFFFu;
  bool output_old_value = false;
  bool one_hot_export = false;        ///< old-value export probes one bit
  std::uint16_t chain_out = 0xFFFF;   ///< dense chain index, 0xFFFF = none
  bool chain_fallback = false;
};

inline constexpr std::uint16_t kNoChain = 0xFFFF;

/// One CMU's compiled view: its slice of the flat entry array plus the
/// shared register and counter handles.
struct CompiledCmu {
  std::uint32_t entry_begin = 0;
  std::uint32_t entry_end = 0;
  dataplane::RegisterArray* reg = nullptr;
  telemetry::Counter* updates = nullptr;
  telemetry::Counter* sampled_out = nullptr;
  telemetry::Counter* prep_aborts = nullptr;
  std::array<telemetry::Counter*, 5> op_counters{};  ///< per StatefulOp kind
};

/// One group's compiled view: its slice of the CMU array plus the batched
/// compression-stage bookkeeping.
struct CompiledGroup {
  std::uint32_t cmu_begin = 0;
  std::uint32_t cmu_end = 0;
  std::uint32_t configured_units = 0;  ///< hash invocations per packet
  telemetry::Counter* packets = nullptr;
  telemetry::Counter* hashes = nullptr;
};

/// One compiled hash lane: a snapshot copy of a configured hash unit.
/// Lane 0 is the constant-zero lane (unconfigured / absent selectors).
struct HashSlot {
  dataplane::HashUnit unit;
  unsigned group = 0;
  unsigned unit_index = 0;
};

/// Reusable per-batch working memory (hash lanes, chain channels).  Owned
/// by whoever drives run_batch — one scratch per processing thread.
struct BatchScratch {
  std::vector<CandidateKey> keys;
  std::vector<std::uint32_t> lanes;   ///< packets x num_hash_slots
  std::vector<std::uint32_t> chains;  ///< packets x num_chain_channels
};

/// Packets per scratch refill on the sequential path and per work-queue
/// chunk on the sharded path.  One tunable for both so a scaling comparison
/// always compares equal-sized units of work.
inline constexpr std::size_t kDefaultBatchChunk = 256;

/// Execution tunables shared by the sequential batched path and the
/// sharded worker pool.
struct BatchOptions {
  std::size_t chunk_size = kDefaultBatchChunk;
};

/// How one compiled entry's register partition folds across per-worker
/// shards.  Only operations from FlyMon's reduced SALU set appear here;
/// each is commutative and associative over the partition's cells, which
/// is what makes the shard merge byte-exact (DESIGN.md §11).
enum class MergeKind : std::uint8_t {
  kSum,  ///< Cond-ADD with an unreachable condition: saturating sum
  kMax,  ///< MAX: maximum
  kOr,   ///< AND-OR pinned to OR mode: bitwise or
  kXor,  ///< XOR (Odd Sketch toggle): bitwise xor
};

const char* to_string(MergeKind k) noexcept;

/// Why a plan cannot be shard-merged, as a closed set so the worker pool
/// can count fallbacks per cause (the human-readable merge_blockers()
/// strings carry the per-entry detail).
enum class MergeBlockerKind : std::uint8_t {
  kChainOutput,   ///< publishes register-derived value on a chain channel
  kGatedCondAdd,  ///< Cond-ADD condition can gate on the register value
  kAndMode,       ///< AND-OR not pinned to OR mode
  kMixedWindow,   ///< overlapping merge windows disagree on the fold
};

const char* to_string(MergeBlockerKind k) noexcept;

/// One mergeable register window: the owning entry's partition inside one
/// CompiledCmu, plus the reduction that reconciles shard replicas with the
/// live register.
struct MergeRegion {
  std::uint32_t cmu = 0;   ///< flat CompiledCmu index
  std::uint32_t base = 0;
  std::uint32_t size = 0;
  MergeKind kind = MergeKind::kSum;
  std::uint32_t value_mask = 0xFFFF'FFFFu;
};

/// Where a sharded execution writes instead of the live plan targets: a
/// private register replica per flat CMU index and a flat block of counter
/// deltas (ExecPlan::counter_slots() wide) in place of the shared atomics.
struct ShardBinding {
  std::span<dataplane::RegisterArray* const> regs;
  std::span<std::uint64_t> counters;
};

class ExecPlan {
 public:
  /// Monotonic publish generation (0 is reserved for "no plan /
  /// interpreted"); exposed so tests can prove every batch executed
  /// against exactly one coherent snapshot.
  std::uint64_t generation() const noexcept { return generation_; }

  std::size_t num_entries() const noexcept { return entries_.size(); }
  std::size_t num_hash_slots() const noexcept { return slots_.size(); }
  std::size_t num_chain_channels() const noexcept { return chain_count_; }

  /// Ownership labels the plan was compiled with (kept so the data plane
  /// can recompile on telemetry rebinding without asking the controller).
  const std::vector<EntryOwnership>& ownership() const noexcept { return owners_; }

  /// Stable, pointer-free per-entry description lines ("label: config"),
  /// ordered like the flat entry array.  The --plan-diff tooling compares
  /// these across compiles.
  const std::vector<std::string>& signature() const noexcept { return signature_; }

  /// Execute the whole batch: compression stage for every packet first
  /// (batched hashing), then the attribute stages group-major.  Per-CMU
  /// packet order is preserved, so the final register state is
  /// byte-identical to per-packet processing.  Telemetry counters are
  /// aggregated per batch and flushed once.
  void run_batch(std::span<const Packet> pkts, BatchScratch& scratch) const;

  /// Sharded execution: same walk as run_batch but every register access
  /// goes to `binding.regs[flat_cmu]` and every counter total accumulates
  /// into `binding.counters` instead of the shared atomics.  Only valid
  /// when shard_mergeable().
  void run_batch_sharded(std::span<const Packet> pkts, BatchScratch& scratch,
                         const ShardBinding& binding) const;

  // ---- shard merge metadata (computed at compile time) ----

  std::size_t num_groups() const noexcept { return groups_.size(); }
  std::size_t num_cmus() const noexcept { return cmus_.size(); }

  /// True when every entry's operation is an exact shard reduction (no
  /// register-derived chain outputs, Cond-ADD unconditional up to
  /// saturation, AND-OR pinned to OR mode).  The worker pool falls back to
  /// sequential execution otherwise.
  bool shard_mergeable() const noexcept { return merge_blockers_.empty(); }
  /// Human-readable reasons the plan cannot be shard-merged (empty when
  /// mergeable); each line names the offending entry.
  const std::vector<std::string>& merge_blockers() const noexcept {
    return merge_blockers_;
  }
  /// The same blockers as a closed kind set (parallel to merge_blockers()),
  /// so fallbacks can be counted per cause.
  const std::vector<MergeBlockerKind>& merge_blocker_kinds() const noexcept {
    return merge_blocker_kinds_;
  }
  /// The mergeable register windows, one per state-writing entry.
  std::span<const MergeRegion> merge_regions() const noexcept {
    return merge_regions_;
  }
  /// Live register behind one flat CMU index (merge target).
  dataplane::RegisterArray* live_register(std::uint32_t cmu) const {
    return cmus_[cmu].reg;
  }

  // ---- per-worker counter blocks ----

  /// Width of a shard counter block: 2 slots per group (packets, hashes)
  /// then 8 per CMU (updates, sampled_out, prep_aborts, 5 op kinds).
  std::size_t counter_slots() const noexcept {
    return groups_.size() * 2 + cmus_.size() * 8;
  }
  /// Add a shard's accumulated counter deltas onto the live telemetry
  /// counters this plan was compiled against, zeroing the block.
  void flush_counter_block(std::span<std::uint64_t> block) const;

  // ---- read-only views for the translation validator ----
  //
  // src/verify/translate re-walks these flat arrays in lockstep with
  // ir::for_each_installed_entry to prove every compiled entry equivalent
  // to its interpreted counterpart.  Views only — the plan stays immutable
  // after publication.

  std::span<const CompiledEntry> entries() const noexcept { return entries_; }
  std::span<const CompiledCmu> compiled_cmus() const noexcept { return cmus_; }
  std::span<const CompiledGroup> compiled_groups() const noexcept {
    return groups_;
  }
  std::span<const HashSlot> hash_slots() const noexcept { return slots_; }

 private:
  friend class PlanCompiler;
  friend struct PlanMutator;

  // Both walk functions are templated on kProfiled: the <false>
  // instantiation contains no timing code at all (it is the plain hot
  // path), the <true> instantiation laps trace::now_cycles() around the
  // compression / filter / address / SALU stages into `prof`.  run_batch /
  // run_batch_sharded pick the instantiation per batch via
  // trace::StageProfiler::sample_batch() — one relaxed load when profiling
  // is off.
  template <bool kProfiled>
  void run_cmu(const CompiledCmu& cmu, dataplane::RegisterArray& reg,
               const Packet& pkt, const CandidateKey& key,
               const std::uint32_t* lanes, std::uint32_t* chains,
               std::uint64_t& updates, std::uint64_t& sampled_out,
               std::uint64_t& prep_aborts,
               std::array<std::uint64_t, 5>& op_counts,
               trace::BatchStageSample* prof) const;
  template <bool kProfiled>
  void run_batch_impl(std::span<const Packet> pkts, BatchScratch& scratch,
                      const ShardBinding* binding) const;

  std::uint64_t generation_ = 0;
  std::vector<HashSlot> slots_;       ///< slot 0 = constant-zero lane
  std::vector<CompiledGroup> groups_;
  std::vector<CompiledCmu> cmus_;
  std::vector<CompiledEntry> entries_;
  std::size_t chain_count_ = 1;       ///< dense channels incl. the zero cell
  std::vector<EntryOwnership> owners_;
  std::vector<std::string> signature_;
  std::vector<MergeRegion> merge_regions_;
  std::vector<std::string> merge_blockers_;
  std::vector<MergeBlockerKind> merge_blocker_kinds_;
};

/// Deliberate-miscompile backdoor for the verification self-test
/// (src/verify/mutations.cpp): static accessors to a published plan's
/// private arrays so seeded lowering bugs can be injected and the
/// translation validator proven to catch them.  Nothing outside the
/// self-test harness may use this — the hot path relies on plans being
/// immutable after publication.
struct PlanMutator {
  static std::vector<CompiledEntry>& entries(ExecPlan& p) { return p.entries_; }
  static std::vector<HashSlot>& hash_slots(ExecPlan& p) { return p.slots_; }
  static std::vector<MergeRegion>& merge_regions(ExecPlan& p) {
    return p.merge_regions_;
  }
  static std::vector<std::string>& merge_blockers(ExecPlan& p) {
    return p.merge_blockers_;
  }
  static std::vector<MergeBlockerKind>& merge_blocker_kinds(ExecPlan& p) {
    return p.merge_blocker_kinds_;
  }
};

/// Compiles a (data plane, ownership) snapshot into an ExecPlan.  Resolves
/// every per-packet lookup the interpreted path performs — hash-unit
/// masks, matched-rule key selection, prep constants, address translation,
/// counter handles — into flat per-entry constants.  Must be called from
/// the control thread (it reads the mutable deployment state and lazily
/// registers per-op counter series).
class PlanCompiler {
 public:
  static std::shared_ptr<const ExecPlan> compile(
      FlyMonDataPlane& dp, std::span<const EntryOwnership> owners,
      std::uint64_t generation);
};

}  // namespace flymon::exec
