// Paper Figure 13a: utilisation of six critical resources for the Tofino
// baseline switch project (switch.p4) alone, with 1 CMU Group, and with 3
// CMU Groups integrated.
#include "bench/bench_util.hpp"
#include "control/crossstack.hpp"
#include "control/static_deploy.hpp"

using namespace flymon;
using namespace flymon::control;
using dataplane::Resource;

namespace {

void print_row(const char* label, const dataplane::Pipeline& pipe) {
  std::printf("%-26s", label);
  for (Resource r : {Resource::kHashUnit, Resource::kSalu, Resource::kSramBlock,
                     Resource::kTcamBlock, Resource::kVliwSlot,
                     Resource::kLogicalTable}) {
    std::printf(" %7.1f%%", 100.0 * pipe.utilization(r));
  }
  std::printf(" %7.1f%%\n", 100.0 * pipe.phv_utilization());
}

dataplane::Pipeline with_groups(unsigned n) {
  CrossStackPlan plan = cross_stack(dataplane::TofinoModel::kNumStages, CmuGroupConfig{},
                                    switch_p4_baseline_per_stage(),
                                    switch_p4_baseline_phv_bits());
  // Re-run with a cap of n groups: rebuild manually.
  dataplane::Pipeline pipe(dataplane::TofinoModel::kNumStages,
                           dataplane::TofinoModel::kPhvBits);
  for (unsigned s = 0; s < pipe.num_stages(); ++s) {
    pipe.stage(s).allocate(switch_p4_baseline_per_stage());
  }
  pipe.allocate_phv(switch_p4_baseline_phv_bits());
  const auto demands = CmuGroup::stage_demands();
  unsigned placed = 0;
  for (unsigned i = 0; i < plan.start_stage.size() && placed < n; ++i) {
    const unsigned start = plan.start_stage[i];
    bool fits = true;
    for (unsigned s = 0; s < 4; ++s) fits = fits && pipe.stage(start + s).fits(demands[s]);
    if (!fits) break;
    for (unsigned s = 0; s < 4; ++s) pipe.stage(start + s).allocate(demands[s]);
    pipe.allocate_phv(CmuGroup::phv_bits());
    ++placed;
  }
  return pipe;
}

}  // namespace

int main() {
  bench::header("Figure 13a", "Resource overhead of CMU Groups on switch.p4");

  std::printf("%-26s %8s %8s %8s %8s %8s %8s %8s\n", "", "Hash", "SALU", "SRAM",
              "TCAM", "VLIW", "LogTbl", "PHV");
  print_row("switch.p4", with_groups(0));
  print_row("switch.p4 + 1 CMU Group", with_groups(1));
  print_row("switch.p4 + 3 CMU Groups", with_groups(3));

  // Average overhead of one group across the six resources.
  const auto base = with_groups(0);
  const auto one = with_groups(1);
  double sum = 0;
  for (Resource r : {Resource::kHashUnit, Resource::kSalu, Resource::kSramBlock,
                     Resource::kTcamBlock, Resource::kVliwSlot,
                     Resource::kLogicalTable}) {
    sum += one.utilization(r) - base.utilization(r);
  }
  std::printf("\nAverage per-resource overhead of one CMU Group: %.2f%% "
              "(paper: <8.3%%, hash is the bottleneck)\n", 100.0 * sum / 6);

  // How many groups fit beside switch.p4 in total?
  const CrossStackPlan full = cross_stack(dataplane::TofinoModel::kNumStages,
                                          CmuGroupConfig{},
                                          switch_p4_baseline_per_stage(),
                                          switch_p4_baseline_phv_bits());
  std::printf("CMU Groups integrable into switch.p4: %u (paper: more than 3)\n",
              full.groups_placed);
  return 0;
}
