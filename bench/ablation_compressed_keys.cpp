// Ablation (paper §3.1.1 + Appendix B): hash-collision probability of the
// compressed keys.  Theory: mapping n distinct flows into a b-bit domain
// collides each flow with probability ~ 1 - e^(-n/2^b).  The paper's
// example: 400K flows on a 24-bit key -> ~2.35% colliding flows.
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "bench/bench_util.hpp"
#include "dataplane/hash_unit.hpp"

using namespace flymon;

namespace {

double measured_collision_fraction(const std::vector<Packet>& flows, unsigned bits) {
  dataplane::HashUnit unit(0);
  unit.set_mask(FlowKeySpec::five_tuple().mask());
  std::unordered_map<std::uint32_t, unsigned> buckets;
  const std::uint32_t mask = bits >= 32 ? 0xFFFF'FFFFu : ((1u << bits) - 1u);
  for (const Packet& p : flows) {
    ++buckets[unit.compute(serialize_candidate_key(p)) & mask];
  }
  std::size_t colliding = 0;
  for (const auto& [h, n] : buckets) {
    if (n > 1) colliding += n;
  }
  return static_cast<double>(colliding) / static_cast<double>(flows.size());
}

}  // namespace

int main() {
  bench::header("Ablation: compressed keys",
                "Collision fraction vs key width (theory: 1 - e^(-n/m))");

  // One packet per distinct flow.
  TraceConfig cfg;
  cfg.num_flows = 400'000;
  cfg.num_packets = 400'000;
  cfg.zipf_alpha = 0.0;
  auto flows = TraceGenerator::generate(cfg);
  // Deduplicate to exactly the distinct flows.
  std::unordered_set<FlowKeyValue> seen;
  std::vector<Packet> uniq;
  for (const Packet& p : flows) {
    if (seen.insert(extract_flow_key(p, FlowKeySpec::five_tuple())).second) {
      uniq.push_back(p);
    }
  }
  std::printf("distinct flows: %zu\n\n", uniq.size());

  std::printf("%10s %14s %14s\n", "key bits", "measured", "theory");
  for (unsigned bits : {16u, 20u, 24u, 28u, 32u}) {
    const double n = static_cast<double>(uniq.size());
    const double m = std::pow(2.0, bits);
    const double theory = 1.0 - std::exp(-n / m);
    std::printf("%10u %13.4f%% %13.4f%%\n", bits,
                100 * measured_collision_fraction(uniq, bits), 100 * theory);
  }
  std::printf("\n(paper Appendix B: 400K flows on a 24-bit compressed key -> "
              "~2.35%% colliding flows)\n");
  return 0;
}
