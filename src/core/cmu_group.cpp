#include "core/cmu_group.hpp"

#include <stdexcept>

#include "dataplane/tofino_model.hpp"
#include "telemetry/trace_ring.hpp"

namespace flymon {

using dataplane::Resource;
using dataplane::StageDemand;
using dataplane::TofinoModel;

CmuGroup::CmuGroup(unsigned group_id, const CmuGroupConfig& cfg)
    : id_(group_id),
      cfg_(cfg),
      compression_(cfg.compression_units, group_id * cfg.compression_units) {
  if (cfg.num_cmus == 0) throw std::invalid_argument("CmuGroup: zero CMUs");
  cmus_.reserve(cfg.num_cmus);
  for (unsigned i = 0; i < cfg.num_cmus; ++i) cmus_.emplace_back(cfg.register_buckets);
  bind_telemetry(telemetry::Registry::global());
}

void CmuGroup::bind_telemetry(telemetry::Registry& registry) {
  const telemetry::Labels labels = {{"group", std::to_string(id_)}};
  packets_counter_ = &registry.counter("flymon_group_packets_total", labels);
  hash_counter_ = &registry.counter("flymon_hash_invocations_total", labels);
  for (unsigned i = 0; i < cmus_.size(); ++i) {
    cmus_[i].bind_telemetry(registry, id_, i);
  }
}

void CmuGroup::process(const Packet& pkt, PhvContext& ctx) {
  const CandidateKey key = serialize_candidate_key(pkt);
  const std::vector<std::uint32_t> unit_keys = compression_.compute(key);
  if (telemetry::enabled()) {
    packets_counter_->inc();
    unsigned configured = 0;
    for (unsigned u = 0; u < compression_.num_units(); ++u) {
      if (compression_.spec_of(u)) ++configured;
    }
    hash_counter_->inc(configured);
  }
  if (ctx.trace != nullptr) {
    ctx.trace->keys.push_back(telemetry::GroupKeys{id_, unit_keys});
  }
  for (Cmu& c : cmus_) c.process(pkt, unit_keys, ctx);
}

std::array<StageDemand, 4> CmuGroup::stage_demands(const CmuGroupConfig& cfg) {
  // Calibrated to the paper's Fig 8 resource table: per stage, compression
  // uses 50% hash + 6.25% VLIW; initialization 25% VLIW + 12.5% TCAM;
  // preparation 6.25% VLIW + 50% TCAM; operation 50% hash + 25% VLIW +
  // 75% SALU (+ the registers' SRAM).
  std::array<StageDemand, 4> d{};

  StageDemand& compression = d[0];
  compression.add(Resource::kHashUnit, cfg.compression_units);  // 3/6 = 50%
  compression.add(Resource::kVliwSlot, 2);                      // 6.25%
  compression.add(Resource::kLogicalTable, 1);

  StageDemand& init = d[1];
  init.add(Resource::kVliwSlot, 8);   // 25%
  init.add(Resource::kTcamBlock, 3);  // 12.5%
  init.add(Resource::kLogicalTable, cfg.num_cmus);

  StageDemand& prep = d[2];
  prep.add(Resource::kVliwSlot, 2);    // 6.25%
  prep.add(Resource::kTcamBlock, 12);  // 50%
  prep.add(Resource::kLogicalTable, cfg.num_cmus);

  StageDemand& op = d[3];
  op.add(Resource::kHashUnit, cfg.num_cmus);  // SALU addressing (footnote 4)
  op.add(Resource::kVliwSlot, 8);             // 25%
  op.add(Resource::kSalu, cfg.num_cmus);      // 3/4 = 75%
  op.add(Resource::kSramBlock,
         cfg.num_cmus * TofinoModel::sram_blocks_for(cfg.register_buckets,
                                                     TofinoModel::kRegisterBitWidth));
  op.add(Resource::kLogicalTable, cfg.num_cmus);
  return d;
}

unsigned CmuGroup::phv_bits(const CmuGroupConfig& cfg) {
  // Compressed keys (32 b each) + one 32-bit chain/result metadata field
  // per CMU + the 16-bit task id assigned at filter match.
  return cfg.compression_units * 32 + cfg.num_cmus * 32 + 16;
}

}  // namespace flymon
