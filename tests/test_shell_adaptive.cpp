// Tests for the interactive shell (command parsing + execution) and the
// DREAM-style adaptive memory manager.
#include <gtest/gtest.h>

#include "control/adaptive.hpp"
#include "control/shell.hpp"
#include "packet/trace_gen.hpp"

namespace flymon::control {
namespace {

// -------- parsers --------

TEST(ShellParse, Ipv4) {
  EXPECT_EQ(parse_ipv4("10.0.0.1"), 0x0A000001u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xFFFFFFFFu);
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_FALSE(parse_ipv4("10.0.0").has_value());
  EXPECT_FALSE(parse_ipv4("10.0.0.256").has_value());
  EXPECT_FALSE(parse_ipv4("10.0.0.1.2").has_value());
  EXPECT_FALSE(parse_ipv4("ten.zero.zero.one").has_value());
  EXPECT_FALSE(parse_ipv4("").has_value());
}

TEST(ShellParse, KeySpecs) {
  EXPECT_EQ(parse_key_spec("SrcIP"), FlowKeySpec::src_ip());
  EXPECT_EQ(parse_key_spec("SrcIP/24"), FlowKeySpec::src_ip(24));
  EXPECT_EQ(parse_key_spec("IPPair"), FlowKeySpec::ip_pair());
  EXPECT_EQ(parse_key_spec("5Tuple"), FlowKeySpec::five_tuple());
  EXPECT_EQ(parse_key_spec("SrcIP+DstPort"),
            (FlowKeySpec{32, 0, 0, 16, 0, 0}));
  EXPECT_EQ(parse_key_spec("DstIP+SrcPort+Proto"),
            (FlowKeySpec{0, 32, 16, 0, 8, 0}));
  EXPECT_FALSE(parse_key_spec("Bogus").has_value());
  EXPECT_FALSE(parse_key_spec("SrcIP/40").has_value());
  EXPECT_FALSE(parse_key_spec("").has_value());
}

// -------- shell execution --------

struct ShellWorld {
  FlyMonDataPlane dp{9};
  Controller ctl{dp};
  Shell shell{ctl};
};

TEST(Shell, AddListRemove) {
  ShellWorld w;
  const std::string out =
      w.shell.execute("add key=SrcIP attr=Frequency mem=8192 rows=3 name=demo");
  EXPECT_NE(out.find("task 1 deployed"), std::string::npos) << out;
  EXPECT_NE(w.shell.execute("list").find("demo"), std::string::npos);
  EXPECT_EQ(w.shell.execute("remove 1"), "removed");
  EXPECT_NE(w.shell.execute("list").find("(no tasks)"), std::string::npos);
}

TEST(Shell, AddValidatesArguments) {
  ShellWorld w;
  EXPECT_NE(w.shell.execute("add key=SrcIP").find("error"), std::string::npos);
  EXPECT_NE(w.shell.execute("add key=Nope attr=Frequency").find("error"),
            std::string::npos);
  EXPECT_NE(w.shell.execute("add key=SrcIP attr=Banana").find("error"),
            std::string::npos);
  EXPECT_NE(w.shell.execute("add key=SrcIP attr=Frequency rows=9").find("error"),
            std::string::npos);
  EXPECT_NE(w.shell.execute("add key=SrcIP attr=Frequency filter=1.2.3").find("error"),
            std::string::npos);
  EXPECT_EQ(w.ctl.num_tasks(), 0u) << "failed commands must not deploy";
}

TEST(Shell, QueryFrequency) {
  ShellWorld w;
  w.shell.execute("add key=SrcIP attr=Frequency mem=16384 rows=3");
  Packet p;
  p.ft.src_ip = 0x0A000001;
  for (int i = 0; i < 7; ++i) w.dp.process(p);
  EXPECT_EQ(w.shell.execute("query 1 src=10.0.0.1"), "value 7");
}

TEST(Shell, QueryExistence) {
  ShellWorld w;
  w.shell.execute("add key=5Tuple attr=Existence mem=8192 rows=3");
  Packet p;
  p.ft.src_ip = 0x0A000001;
  p.ft.dst_ip = 0xC0A80001;
  p.ft.src_port = 1234;
  p.ft.dst_port = 80;
  p.ft.protocol = 6;
  w.dp.process(p);
  EXPECT_EQ(w.shell.execute(
                "query 1 src=10.0.0.1 dst=192.168.0.1 sport=1234 dport=80 proto=6"),
            "present");
  EXPECT_EQ(w.shell.execute(
                "query 1 src=10.0.0.2 dst=192.168.0.1 sport=1234 dport=80 proto=6"),
            "absent");
}

TEST(Shell, ResizeAndSplit) {
  ShellWorld w;
  w.shell.execute("add key=5Tuple attr=Frequency mem=8192 rows=3 filter=10.0.0.0/8");
  const std::string resized = w.shell.execute("resize 1 16384");
  EXPECT_NE(resized.find("16384"), std::string::npos) << resized;
  const std::string split = w.shell.execute("split 1");
  EXPECT_NE(split.find("split into tasks"), std::string::npos) << split;
  EXPECT_EQ(w.ctl.num_tasks(), 2u);
}

TEST(Shell, UnknownCommandsAndIds) {
  ShellWorld w;
  EXPECT_NE(w.shell.execute("frobnicate").find("error"), std::string::npos);
  EXPECT_NE(w.shell.execute("remove 42").find("error"), std::string::npos);
  EXPECT_NE(w.shell.execute("query 42 src=1.2.3.4").find("error"), std::string::npos);
  EXPECT_NE(w.shell.execute("entropy 42").find("error"), std::string::npos);
  EXPECT_EQ(w.shell.execute(""), "");
  EXPECT_FALSE(Shell::help().empty());
}

TEST(Shell, DdosWorkflow) {
  ShellWorld w;
  const std::string out = w.shell.execute(
      "add key=DstIP attr=Distinct param=key:SrcIP algo=BeauCoup threshold=512 "
      "mem=16384 rows=3");
  ASSERT_NE(out.find("deployed"), std::string::npos) << out;

  TraceConfig cfg;
  cfg.num_flows = 1000;
  cfg.num_packets = 10'000;
  auto trace = TraceGenerator::generate(cfg);
  DdosConfig ddos;
  ddos.num_victims = 1;
  ddos.spreaders_per_victim = 2000;
  TraceGenerator::inject_ddos(trace, ddos, cfg.duration_ns);
  w.dp.process_all(trace);

  const std::string q = w.shell.execute("query 1 dst=192.168.100.0");
  EXPECT_NE(q.find("over threshold"), std::string::npos) << q;
}

// -------- adaptive memory manager --------

TEST(Adaptive, OccupancyReflectsLoad) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  AdaptiveMemoryManager mgr(ctl);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 8192;
  s.rows = 3;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(mgr.occupancy(r.task_id), 0.0);

  TraceConfig cfg;
  cfg.num_flows = 4000;
  cfg.num_packets = 40'000;
  dp.process_all(TraceGenerator::generate(cfg));
  const double occ = mgr.occupancy(r.task_id);
  EXPECT_GT(occ, 0.2);
  EXPECT_LT(occ, 0.7);
}

TEST(Adaptive, GrowsUnderPressure) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  AdaptiveMemoryManager mgr(ctl);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 2048;  // far too small for the traffic
  s.rows = 3;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);

  TraceConfig cfg;
  cfg.num_flows = 10'000;
  cfg.num_packets = 50'000;
  dp.process_all(TraceGenerator::generate(cfg));

  const auto decisions = mgr.rebalance();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].resized);
  EXPECT_EQ(decisions[0].new_buckets, 4096u);
  EXPECT_EQ(ctl.task(r.task_id)->buckets, 4096u) << "id stable across rebalance";
}

TEST(Adaptive, ShrinksWhenIdle) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  AdaptiveMemoryManager mgr(ctl);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 65536;  // oversized for the traffic
  s.rows = 3;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);

  TraceConfig cfg;
  cfg.num_flows = 500;
  cfg.num_packets = 5'000;
  dp.process_all(TraceGenerator::generate(cfg));

  const auto decisions = mgr.rebalance();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].resized);
  EXPECT_EQ(decisions[0].new_buckets, 32768u);
}

TEST(Adaptive, LeavesWellSizedTasksAlone) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  AdaptiveMemoryManager mgr(ctl);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 16384;
  s.rows = 3;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);

  TraceConfig cfg;
  cfg.num_flows = 3000;  // ~18% occupancy: inside the comfort band
  cfg.num_packets = 30'000;
  dp.process_all(TraceGenerator::generate(cfg));

  const auto decisions = mgr.rebalance();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_FALSE(decisions[0].attempted);
  EXPECT_EQ(ctl.task(r.task_id)->buckets, 16384u);
}

TEST(Adaptive, RespectsBucketBounds) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  AdaptiveMemoryManager::Config cfg;
  cfg.min_buckets = 4096;
  cfg.max_buckets = 8192;
  AdaptiveMemoryManager mgr(ctl, cfg);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 8192;
  s.rows = 3;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);

  TraceConfig tc;
  tc.num_flows = 10'000;
  tc.num_packets = 50'000;
  dp.process_all(TraceGenerator::generate(tc));
  const auto decisions = mgr.rebalance();
  EXPECT_FALSE(decisions[0].attempted) << "already at max_buckets";
}

TEST(Adaptive, TracksTrafficSwing) {
  // The Fig 12b story, automated: spike -> grow, calm -> shrink.
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  AdaptiveMemoryManager mgr(ctl);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 8192;
  s.rows = 3;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);

  auto run_epoch = [&](std::size_t flows, std::uint64_t seed) {
    ctl.clear_task_state(r.task_id);
    TraceConfig cfg;
    cfg.num_flows = flows;
    cfg.num_packets = flows * 10;
    cfg.seed = seed;
    dp.process_all(TraceGenerator::generate(cfg));
    return mgr.rebalance()[0];
  };

  const auto spike = run_epoch(20'000, 1);  // hot epoch
  EXPECT_GT(spike.new_buckets, spike.old_buckets);
  const auto calm = run_epoch(300, 2);  // traffic collapses
  EXPECT_LT(calm.new_buckets, calm.old_buckets);
}

}  // namespace
}  // namespace flymon::control
