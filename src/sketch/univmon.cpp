#include "sketch/univmon.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flymon::sketch {
namespace {

sketch::KeyBytes bytes_of(const FlowKeyValue& k) noexcept {
  return {k.bytes.data(), k.bytes.size()};
}

}  // namespace

UnivMon::UnivMon(unsigned levels, unsigned cs_depth, std::uint32_t cs_width,
                 unsigned top_k)
    : top_k_(top_k) {
  if (levels == 0) throw std::invalid_argument("UnivMon: levels must be > 0");
  levels_.reserve(levels);
  for (unsigned l = 0; l < levels; ++l) levels_.emplace_back(CountSketch(cs_depth, cs_width));
}

UnivMon UnivMon::with_memory(std::size_t total_bytes, unsigned levels,
                             unsigned cs_depth, unsigned top_k) {
  // Budget: top-k tables cost ~(key + estimate) = 25 B per entry per level.
  // Cap top-k so the tables take at most a quarter of the budget.
  const std::size_t topk_cap = total_bytes / (4 * std::size_t{levels} * 25);
  top_k = static_cast<unsigned>(
      std::clamp<std::size_t>(topk_cap, 32, top_k));
  const std::size_t topk_bytes = std::size_t{levels} * top_k * 25;
  const std::size_t cs_total = total_bytes > topk_bytes ? total_bytes - topk_bytes : levels;
  const std::size_t per_level = std::max<std::size_t>(cs_depth * 4, cs_total / levels);
  const auto w = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, per_level / (std::size_t{cs_depth} * 4)));
  return UnivMon(levels, cs_depth, w, top_k);
}

bool UnivMon::sampled_at(const FlowKeyValue& key, unsigned level) const noexcept {
  if (level == 0) return true;
  const std::uint64_t h = hash64(bytes_of(key), 0x5A3Bull);
  const std::uint64_t mask = (std::uint64_t{1} << level) - 1;
  return (h & mask) == 0;
}

void UnivMon::track_top(Level& lvl, const FlowKeyValue& key) {
  const std::int64_t est = std::max<std::int64_t>(0, lvl.cs.query(bytes_of(key)));
  auto it = lvl.top.find(key);
  if (it != lvl.top.end()) {
    it->second = est;
    if (est < lvl.cached_min) lvl.cached_min = est;  // keep the lower bound
    return;
  }
  if (lvl.top.size() < top_k_) {
    lvl.top.emplace(key, est);
    return;
  }
  // Fast reject: cached_min is a lower bound on the true minimum, so a
  // candidate at or below it can never displace anyone.
  if (est <= lvl.cached_min) return;
  auto min_it = lvl.top.begin();
  std::int64_t second_min = std::numeric_limits<std::int64_t>::max();
  for (auto i = lvl.top.begin(); i != lvl.top.end(); ++i) {
    if (i->second < min_it->second) {
      second_min = min_it->second;
      min_it = i;
    } else if (i->second < second_min) {
      second_min = i->second;
    }
  }
  if (est > min_it->second) {
    lvl.top.erase(min_it);
    lvl.top.emplace(key, est);
    lvl.cached_min = std::min(second_min, est);
  } else {
    lvl.cached_min = min_it->second;
  }
}

void UnivMon::update(const FlowKeyValue& key, std::uint32_t inc) {
  total_ += inc;
  for (unsigned l = 0; l < levels_.size(); ++l) {
    if (!sampled_at(key, l)) break;  // nested sampling: stop at first miss
    levels_[l].cs.update(bytes_of(key), inc);
    track_top(levels_[l], key);
  }
}

double UnivMon::g_sum(const std::function<double(double)>& g) const {
  // Recursive estimator (UnivMon §4): Y_L = sum of g over level-L HHs;
  // Y_l = 2 Y_{l+1} + sum_{HH at l} (1 - 2 * sampled_{l+1}(key)) * g(est).
  const unsigned L = static_cast<unsigned>(levels_.size());
  double y = 0;
  for (const auto& [key, est] : levels_[L - 1].top) {
    if (est > 0) y += g(static_cast<double>(est));
  }
  for (int l = static_cast<int>(L) - 2; l >= 0; --l) {
    double yl = 2.0 * y;
    for (const auto& [key, est] : levels_[l].top) {
      if (est <= 0) continue;
      const double indicator = sampled_at(key, static_cast<unsigned>(l) + 1) ? 1.0 : 0.0;
      yl += (1.0 - 2.0 * indicator) * g(static_cast<double>(est));
    }
    y = std::max(0.0, yl);
  }
  return y;
}

double UnivMon::estimate_entropy() const {
  if (total_ == 0) return 0;
  const double n = static_cast<double>(total_);
  const double y = g_sum([](double x) { return x * std::log(x); });
  return std::log(n) - y / n;
}

double UnivMon::estimate_cardinality() const {
  return g_sum([](double) { return 1.0; });
}

std::vector<std::pair<FlowKeyValue, std::uint64_t>> UnivMon::heavy_hitters(
    std::uint64_t threshold) const {
  std::vector<std::pair<FlowKeyValue, std::uint64_t>> out;
  for (const auto& [key, est] : levels_[0].top) {
    if (est >= static_cast<std::int64_t>(threshold)) {
      out.emplace_back(key, static_cast<std::uint64_t>(est));
    }
  }
  return out;
}

std::size_t UnivMon::memory_bytes() const noexcept {
  std::size_t s = 0;
  for (const auto& lvl : levels_) s += lvl.cs.memory_bytes() + lvl.top.size() * 25;
  return s;
}

void UnivMon::clear() {
  for (auto& lvl : levels_) {
    lvl.cs.clear();
    lvl.top.clear();
  }
  total_ = 0;
}

}  // namespace flymon::sketch
