#include "exec/sharded_runtime.hpp"

#include <algorithm>

#include "core/flymon_dataplane.hpp"

namespace flymon::exec {

RegisterShard::RegisterShard(const FlyMonDataPlane& dp) {
  std::size_t total_cmus = 0;
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    total_cmus += dp.group(g).num_cmus();
  }
  regs_.reserve(total_cmus);
  reg_ptrs_.reserve(total_cmus);
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    const CmuGroup& grp = dp.group(g);
    for (unsigned c = 0; c < grp.num_cmus(); ++c) {
      const dataplane::RegisterArray& live = grp.cmu(c).reg();
      regs_.emplace_back(live.size(), live.bit_width());
    }
  }
  for (dataplane::RegisterArray& r : regs_) reg_ptrs_.push_back(&r);
  counters_.assign(dp.num_groups() * 2 + total_cmus * 8, 0);
}

void RegisterShard::merge_into(const ExecPlan& plan) {
  if (!dirty_) return;
  for (const MergeRegion& region : plan.merge_regions()) {
    dataplane::RegisterArray& shard = regs_[region.cmu];
    dataplane::RegisterArray* live = plan.live_register(region.cmu);
    const std::uint32_t end = region.base + region.size;
    for (std::uint32_t addr = region.base; addr < end; ++addr) {
      const std::uint32_t v = shard.load_relaxed(addr);
      if (v == 0) continue;  // 0 is the identity for every MergeKind
      const std::uint32_t cur = live->load_relaxed(addr);
      std::uint32_t next = cur;
      switch (region.kind) {
        case MergeKind::kSum: {
          const std::uint64_t sum = std::uint64_t{cur} + v;
          next = sum > region.value_mask
                     ? region.value_mask
                     : static_cast<std::uint32_t>(sum);
          break;
        }
        case MergeKind::kMax:
          next = std::max(cur, v);
          break;
        case MergeKind::kOr:
          next = cur | v;
          break;
        case MergeKind::kXor:
          next = (cur ^ v) & region.value_mask;
          break;
      }
      if (next != cur) live->store_relaxed(addr, next);
      shard.store_relaxed(addr, 0);  // overlapping regions fold once
    }
  }
  plan.flush_counter_block(counters_);
  dirty_ = false;
}

void RegisterShard::discard() {
  if (!dirty_) return;
  for (dataplane::RegisterArray& r : regs_) r.clear();
  std::fill(counters_.begin(), counters_.end(), 0);
  dirty_ = false;
}

}  // namespace flymon::exec
