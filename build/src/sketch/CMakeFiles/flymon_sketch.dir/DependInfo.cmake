
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/beaucoup.cpp" "src/sketch/CMakeFiles/flymon_sketch.dir/beaucoup.cpp.o" "gcc" "src/sketch/CMakeFiles/flymon_sketch.dir/beaucoup.cpp.o.d"
  "/root/repo/src/sketch/bloom_filter.cpp" "src/sketch/CMakeFiles/flymon_sketch.dir/bloom_filter.cpp.o" "gcc" "src/sketch/CMakeFiles/flymon_sketch.dir/bloom_filter.cpp.o.d"
  "/root/repo/src/sketch/count_min.cpp" "src/sketch/CMakeFiles/flymon_sketch.dir/count_min.cpp.o" "gcc" "src/sketch/CMakeFiles/flymon_sketch.dir/count_min.cpp.o.d"
  "/root/repo/src/sketch/count_sketch.cpp" "src/sketch/CMakeFiles/flymon_sketch.dir/count_sketch.cpp.o" "gcc" "src/sketch/CMakeFiles/flymon_sketch.dir/count_sketch.cpp.o.d"
  "/root/repo/src/sketch/counter_braids.cpp" "src/sketch/CMakeFiles/flymon_sketch.dir/counter_braids.cpp.o" "gcc" "src/sketch/CMakeFiles/flymon_sketch.dir/counter_braids.cpp.o.d"
  "/root/repo/src/sketch/hyperloglog.cpp" "src/sketch/CMakeFiles/flymon_sketch.dir/hyperloglog.cpp.o" "gcc" "src/sketch/CMakeFiles/flymon_sketch.dir/hyperloglog.cpp.o.d"
  "/root/repo/src/sketch/linear_counting.cpp" "src/sketch/CMakeFiles/flymon_sketch.dir/linear_counting.cpp.o" "gcc" "src/sketch/CMakeFiles/flymon_sketch.dir/linear_counting.cpp.o.d"
  "/root/repo/src/sketch/mrac.cpp" "src/sketch/CMakeFiles/flymon_sketch.dir/mrac.cpp.o" "gcc" "src/sketch/CMakeFiles/flymon_sketch.dir/mrac.cpp.o.d"
  "/root/repo/src/sketch/odd_sketch.cpp" "src/sketch/CMakeFiles/flymon_sketch.dir/odd_sketch.cpp.o" "gcc" "src/sketch/CMakeFiles/flymon_sketch.dir/odd_sketch.cpp.o.d"
  "/root/repo/src/sketch/sumax.cpp" "src/sketch/CMakeFiles/flymon_sketch.dir/sumax.cpp.o" "gcc" "src/sketch/CMakeFiles/flymon_sketch.dir/sumax.cpp.o.d"
  "/root/repo/src/sketch/tower.cpp" "src/sketch/CMakeFiles/flymon_sketch.dir/tower.cpp.o" "gcc" "src/sketch/CMakeFiles/flymon_sketch.dir/tower.cpp.o.d"
  "/root/repo/src/sketch/univmon.cpp" "src/sketch/CMakeFiles/flymon_sketch.dir/univmon.cpp.o" "gcc" "src/sketch/CMakeFiles/flymon_sketch.dir/univmon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flymon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/flymon_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
