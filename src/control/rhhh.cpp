#include "control/rhhh.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace flymon::control {

RhhhTask RhhhTask::deploy(Controller& ctl, std::vector<std::uint8_t> levels,
                          std::uint32_t memory_buckets, unsigned rows) {
  RhhhTask t;
  std::sort(levels.begin(), levels.end());
  if (levels.empty()) {
    t.error_ = "RHHH needs at least one prefix level";
    return t;
  }
  const std::size_t L = levels.size();
  // A CMU tries its entries in priority order and each entry tosses its own
  // coin, so an entry at fall-through position j must use the conditional
  // probability 1/(L-j) for every level to execute with the same
  // unconditional probability 1/L.  The position is only known after
  // placement, so deploy with a trial probability, inspect where the task
  // landed, and redeploy with the correct value (placement is
  // deterministic, so the redeploy lands on the same CMUs).
  auto chain_position = [&ctl](std::uint32_t task_id) -> std::size_t {
    const DeployedTask* dt = ctl.task(task_id);
    const UnitPlacement& up = dt->rows.front().units.front();
    const auto& entries = ctl.dataplane().group(up.group).cmu(up.cmu).entries();
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (entries[j].task_id == up.phys_id) return j;
    }
    return 0;
  };

  for (std::uint8_t len : levels) {
    TaskSpec s;
    s.name = "rhhh/" + std::to_string(len);
    s.key = FlowKeySpec::src_ip(len);
    s.attribute = AttributeKind::kFrequency;
    s.memory_buckets = memory_buckets;
    s.rows = rows;
    s.sample_probability = 0.5;  // trial value, corrected below
    DeployResult r = ctl.add_task(s);
    if (!r.ok) {
      t.error_ = "level /" + std::to_string(len) + ": " + r.error;
      for (std::uint32_t id : t.task_ids_) ctl.remove_task(id);
      t.task_ids_.clear();
      return t;
    }
    const std::size_t pos = chain_position(r.task_id);
    const double p = pos + 1 >= L ? 1.0 : 1.0 / static_cast<double>(L - pos);
    if (p != s.sample_probability) {
      ctl.remove_task(r.task_id);
      s.sample_probability = p;
      r = ctl.add_task(s);
      if (!r.ok) {
        t.error_ = "level /" + std::to_string(len) + " (redeploy): " + r.error;
        for (std::uint32_t id : t.task_ids_) ctl.remove_task(id);
        t.task_ids_.clear();
        return t;
      }
    }
    t.levels_.push_back(len);
    t.task_ids_.push_back(r.task_id);
  }
  t.ok_ = true;
  return t;
}

std::uint64_t RhhhTask::query_level(const Controller& ctl, std::uint8_t prefix_len,
                                    const Packet& probe) const {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i] != prefix_len) continue;
    const std::uint64_t sampled = ctl.query_value(task_ids_[i], probe);
    return sampled * levels_.size();  // undo the 1/L sampling
  }
  return 0;
}

std::vector<RhhhTask::Report> RhhhTask::hierarchical_heavy_hitters(
    const Controller& ctl, const std::vector<FlowKeyValue>& flow_candidates,
    std::uint64_t threshold) const {
  std::vector<Report> out;
  // Residual bookkeeping: a child reported at a finer level discounts its
  // ancestors at every coarser level.
  std::unordered_map<FlowKeyValue, std::uint64_t> discount;

  // Walk levels finest-first so descendants are known before ancestors.
  for (std::size_t li = levels_.size(); li-- > 0;) {
    const std::uint8_t len = levels_[li];
    const FlowKeySpec level_spec = FlowKeySpec::src_ip(len);

    // Distinct prefixes of this level among the candidates.
    std::unordered_set<FlowKeyValue> prefixes;
    for (const FlowKeyValue& flow : flow_candidates) {
      prefixes.insert(mask_candidate_key(flow.bytes, level_spec));
    }
    for (const FlowKeyValue& prefix : prefixes) {
      const Packet probe = packet_from_candidate_key(prefix.bytes);
      const std::uint64_t total = query_level(ctl, len, probe);
      const auto it = discount.find(prefix);
      const std::uint64_t discounted = it == discount.end() ? 0 : it->second;
      const std::uint64_t residual = total > discounted ? total - discounted : 0;
      if (residual < threshold) continue;
      out.push_back(Report{len, prefix, residual});
      // Charge this report to every coarser ancestor prefix.
      for (std::size_t aj = 0; aj < li; ++aj) {
        const FlowKeyValue ancestor =
            mask_candidate_key(prefix.bytes, FlowKeySpec::src_ip(levels_[aj]));
        discount[ancestor] += residual;
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Report& a, const Report& b) {
    return a.prefix_len != b.prefix_len ? a.prefix_len < b.prefix_len
                                        : a.estimate > b.estimate;
  });
  return out;
}

void RhhhTask::remove(Controller& ctl) const {
  for (std::uint32_t id : task_ids_) ctl.remove_task(id);
}

}  // namespace flymon::control
