#include "verify/verifier.hpp"

#include <stdexcept>

#include "verify/translate/translate.hpp"

namespace flymon::verify {

Verifier::Verifier() {
  add(make_resource_analyzer());
  add(make_tcam_analyzer());
  add(make_memory_analyzer());
  add(make_task_analyzer());
  add(make_dataflow_key_analyzer());
  add(make_dataflow_range_analyzer());
  add(make_dataflow_accuracy_analyzer());
  add(make_translation_analyzer());
  add(make_merge_soundness_analyzer());
}

void Verifier::add(std::unique_ptr<Analyzer> analyzer) {
  analyzers_.push_back(std::move(analyzer));
}

const Analyzer* Verifier::find(std::string_view name) const noexcept {
  for (const auto& a : analyzers_) {
    if (a->name() == name) return a.get();
  }
  return nullptr;
}

VerifyReport Verifier::run(const VerifyContext& ctx) const {
  VerifyReport report;
  for (const auto& a : analyzers_) {
    a->run(ctx, report);
    report.analyzers_run.emplace_back(a->name());
  }
  return report;
}

VerifyReport Verifier::run_one(std::string_view name,
                               const VerifyContext& ctx) const {
  const Analyzer* a = find(name);
  if (a == nullptr) {
    throw std::invalid_argument("unknown analyzer: " + std::string(name));
  }
  VerifyReport report;
  a->run(ctx, report);
  report.analyzers_run.emplace_back(a->name());
  return report;
}

VerifyReport verify_deployment(const control::Controller& ctl,
                               const control::CrossStackPlan* plan,
                               bool allow_wrap) {
  VerifyContext ctx;
  ctx.controller = &ctl;
  ctx.dataplane = &ctl.dataplane();
  ctx.plan = plan;
  ctx.allow_wrap = allow_wrap;
  return Verifier{}.run(ctx);
}

}  // namespace flymon::verify

namespace flymon::control {

// Implemented here (not in controller.cpp) so the controller translation
// unit stays free of the analyzer headers.
std::string Controller::run_verify_gate() const {
  const verify::VerifyReport report = verify::verify_deployment(*this);
  return report.format(verify::Severity::kError);
}

// Implemented here for the same reason: installing the publish-time
// translation-validation gate pulls in verify::validate_plan.
void Controller::set_paranoid(bool on) {
  paranoid_ = on;
  if (on) {
    dp_->set_plan_validator(
        [](const FlyMonDataPlane& dp, const exec::ExecPlan& plan) {
          return verify::validate_plan(dp, plan).format(
              verify::Severity::kError);
        });
  } else {
    dp_->set_plan_validator({});
  }
}

}  // namespace flymon::control
