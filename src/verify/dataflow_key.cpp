// Hash-bit provenance (taint) analyzer over the pipeline IR: every dynamic
// key must carry entropy from the candidate-key bits its task asked for.
// Flags fully-masked (zero-entropy) hash units, XOR self-cancellation
// between the two compressed keys of a selector, dead requested key bits
// that cannot influence the address, and same-task rows whose keys alias
// (identical selector + slice => the rows are copies, not independent
// estimators).
#include <string>

#include "ir/ir.hpp"
#include "verify/verifier.hpp"

namespace flymon::verify {
namespace {

std::string cmu_site(unsigned g, unsigned c) {
  return "g" + std::to_string(g) + ".cmu" + std::to_string(c);
}

class DataflowKeyAnalyzer final : public Analyzer {
 public:
  std::string_view name() const noexcept override { return "dataflow-key"; }
  std::string_view description() const noexcept override {
    return "hash-bit provenance: zero-entropy masks, XOR self-cancellation, "
           "dead key bits, aliased task rows";
  }

  void run(const VerifyContext& ctx, VerifyReport& report) const override {
    if (ctx.dataplane == nullptr) return;
    const ir::PipelineIr irx =
        ir::extract_ir(*ctx.dataplane, ctx.controller, ctx.packets_per_epoch);
    check_units(irx, report);
    check_entries(irx, report);
    check_row_aliasing(irx, report);
  }

 private:
  /// A configured hash unit whose mask selects no candidate-key bit hashes
  /// a constant: every packet lands in the same bucket.
  void check_units(const ir::PipelineIr& irx, VerifyReport& report) const {
    for (const ir::HashUnitNode& u : irx.units) {
      if (u.configured && u.sources.none()) {
        report.add(Severity::kError, "dataflow.key.entropy",
                   "g" + std::to_string(u.group) + ".unit" +
                       std::to_string(u.unit),
                   "hash unit is configured with an all-zero mask; its "
                   "compressed key is a constant (zero entropy)",
                   "configure the unit with a non-empty flow-key spec or "
                   "clear it");
      }
    }
  }

  void check_entries(const ir::PipelineIr& irx, VerifyReport& report) const {
    for (const ir::EntryNode& e : irx.entries) {
      const std::string site = cmu_site(e.group, e.cmu);
      const std::string who = "task " + std::to_string(e.phys_id);
      if (e.key.self_cancelling) {
        report.add(Severity::kError, "dataflow.key.cancel", site,
                   who + " XORs compressed-key unit " +
                       std::to_string(e.key.sel.unit_a) +
                       " with itself; the dynamic key cancels to the "
                       "constant 0",
                   "select two distinct units or a single unit");
        continue;
      }
      // An unconfigured unit is already a task.selector error; an entry
      // whose whole selector carries no entropy collapses every flow into
      // one bucket.
      if (!e.key.reads_unconfigured && e.key.sel.valid() &&
          e.key.sources.none()) {
        report.add(Severity::kError, "dataflow.key.entropy", site,
                   who + " dynamic key has no candidate-key provenance; all "
                         "packets hash identically",
                   "check the hash-unit masks feeding this selector");
      }
    }
    check_dead_bits(irx, report);
  }

  /// Requested key bits that cannot influence the dynamic key.  Only
  /// straight-line entries are compared against the task's addressed key:
  /// chained / prep-rewritten entries key by stage-specific specs by
  /// design (e.g. a coupon table keyed by the parameter key).
  void check_dead_bits(const ir::PipelineIr& irx, VerifyReport& report) const {
    for (const ir::TaskNode& t : irx.tasks) {
      const ir::KeyBitSet requested = ir::spec_bits(ir::addressed_key(t.spec));
      if (requested.none()) continue;
      for (const std::size_t i : t.entries) {
        const ir::EntryNode& e = irx.entries[i];
        if (e.chained || e.prep != PrepFn::kNone) continue;
        if (e.key.self_cancelling || e.key.reads_unconfigured) continue;
        const ir::KeyBitSet dead = requested & ~e.key.sources;
        if (dead.none()) continue;
        report.add(Severity::kWarning, "dataflow.key.dead",
                   cmu_site(e.group, e.cmu),
                   "task " + std::to_string(t.id) + " requests key " +
                       ir::addressed_key(t.spec).name() + " but " +
                       std::to_string(dead.count()) +
                       " of its bits never reach the hash input (dead key "
                       "bits)",
                   "reconfigure the hash-unit masks to cover the full key");
      }
    }
  }

  /// Two rows of one task inside one group selecting the same compressed
  /// key *and* the same slice compute identical addresses: the rows are
  /// correlated copies and the min-across-rows estimate degenerates.
  void check_row_aliasing(const ir::PipelineIr& irx, VerifyReport& report) const {
    for (const ir::TaskNode& t : irx.tasks) {
      for (std::size_t a = 0; a < t.entries.size(); ++a) {
        for (std::size_t b = a + 1; b < t.entries.size(); ++b) {
          const ir::EntryNode& ea = irx.entries[t.entries[a]];
          const ir::EntryNode& eb = irx.entries[t.entries[b]];
          if (ea.group != eb.group) continue;
          if (ea.row == eb.row) continue;  // chained units of one row
          if (ea.key.sel == eb.key.sel && ea.key.slice == eb.key.slice) {
            report.add(
                Severity::kError, "dataflow.key.alias",
                cmu_site(ea.group, ea.cmu) + "+" + cmu_site(eb.group, eb.cmu),
                "task " + std::to_string(t.id) + " rows " +
                    std::to_string(ea.row) + " and " + std::to_string(eb.row) +
                    " select the same compressed key and slice; the rows "
                    "are not independent",
                "give each row a distinct key slice");
          }
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Analyzer> make_dataflow_key_analyzer() {
  return std::make_unique<DataflowKeyAnalyzer>();
}

}  // namespace flymon::verify
