// Interactive control plane: type `help` for the command set.  Traffic can
// be injected between commands with `traffic <flows> <packets>` so the
// whole measure-query loop is explorable from a terminal:
//
//   $ ./flymon_shell
//   flymon> add key=SrcIP attr=Frequency mem=16384 rows=3
//   task 1 deployed: 21 table rules, 1 hash masks, 3 CMUs, 29.4 ms
//   flymon> traffic 5000 200000
//   processed 200000 packets (5000 flows)
//   flymon> query 1 src=10.1.2.3
//   value 137
#include <cstdio>
#include <iostream>
#include <string>

#include "control/shell.hpp"
#include "packet/trace_gen.hpp"
#include "telemetry/telemetry.hpp"

using namespace flymon;

int main() {
  telemetry::init_from_env();  // FLYMON_TELEMETRY=1 enables counters
  FlyMonDataPlane dataplane(9);
  control::Controller controller(dataplane);
  control::Shell shell(controller);

  std::printf("FlyMon interactive control plane -- 'help' for commands, "
              "'traffic N M' to inject a trace, 'quit' to exit\n");
  std::string line;
  std::uint64_t seed = 1;
  while (true) {
    std::printf("flymon> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == "quit" || line == "exit") break;
    if (line.rfind("traffic", 0) == 0) {
      std::size_t flows = 5000, packets = 100'000;
      std::sscanf(line.c_str(), "traffic %zu %zu", &flows, &packets);
      TraceConfig cfg;
      cfg.num_flows = flows;
      cfg.num_packets = packets;
      cfg.seed = seed++;
      dataplane.process_all(TraceGenerator::generate(cfg));
      std::printf("processed %zu packets (%zu flows)\n", packets, flows);
      continue;
    }
    if (line == "clear") {
      dataplane.clear_registers();
      std::printf("registers cleared\n");
      continue;
    }
    const std::string out = shell.execute(line);
    if (!out.empty()) std::printf("%s\n", out.c_str());
  }
  return 0;
}
