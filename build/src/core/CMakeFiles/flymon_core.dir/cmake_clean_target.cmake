file(REMOVE_RECURSE
  "libflymon_core.a"
)
