file(REMOVE_RECURSE
  "../bench/ablation_key_slices"
  "../bench/ablation_key_slices.pdb"
  "CMakeFiles/ablation_key_slices.dir/ablation_key_slices.cpp.o"
  "CMakeFiles/ablation_key_slices.dir/ablation_key_slices.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_key_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
