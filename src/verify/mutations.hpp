// Mutation self-test harness: a catalogue of seeded deployment corruptions,
// each of which the static verifier must flag with a specific check id.
// Exercised by tests/test_verify.cpp and `flymon_verify --selftest`.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "control/crossstack.hpp"
#include "core/flymon_dataplane.hpp"

namespace flymon::verify {

/// The fresh world a mutation corrupts: a 9-group data plane with a mixed
/// Table-1 deployment plus its cross-stacking plan.
struct MutableWorld {
  FlyMonDataPlane& dp;
  control::Controller& ctl;
  control::CrossStackPlan& plan;
};

struct Mutation {
  std::string name;
  std::string expected_check;  ///< dotted diagnostic id that must appear
  std::string description;
  std::function<void(MutableWorld&)> apply;
};

/// The seeded-corruption catalogue (10 mutations).
std::vector<Mutation> mutation_catalogue();

struct SelfTestCase {
  std::string mutation;
  std::string expected_check;
  bool detected = false;
  std::string diagnostics;  ///< full formatted report of the mutated world
};

struct SelfTestResult {
  bool baseline_clean = false;  ///< unmutated world verifies empty
  std::string baseline_diagnostics;
  std::vector<SelfTestCase> cases;

  bool passed() const noexcept;
};

/// Build a fresh world per mutation, corrupt it, verify, and require the
/// expected diagnostic.  The unmutated baseline must verify clean.
SelfTestResult run_mutation_self_test();

std::string format(const SelfTestResult& result);

}  // namespace flymon::verify
