// Forwarding-impact simulation (paper Fig 12a): compare traffic throughput
// while reconfiguration events are applied with FlyMon (runtime rules, no
// interruption) versus static redeployment (P4 reload, traffic stalls for
// several seconds).
#pragma once

#include <cstdint>
#include <vector>

namespace flymon::control {

enum class ReconfigEventKind : std::uint8_t { kAddTask, kDeleteTask, kReallocMemory };

struct ReconfigEvent {
  double time_s = 0;
  ReconfigEventKind kind = ReconfigEventKind::kAddTask;
};

struct ForwardingSimConfig {
  double duration_s = 100.0;
  double sample_period_s = 0.5;
  double line_rate_gbps = 90.0;   ///< iPerf aggregate in the paper: 80-93 G
  double noise_gbps = 5.0;
  double reload_outage_min_s = 4.0;  ///< static redeploy stall (paper: 4-8 s)
  double reload_outage_max_s = 8.0;
  std::uint64_t seed = 42;
};

struct ThroughputSample {
  double time_s = 0;
  double bare_gbps = 0;     ///< no measurement functions
  double flymon_gbps = 0;   ///< FlyMon runtime reconfiguration
  double static_gbps = 0;   ///< reload-based reconfiguration
};

struct ForwardingSimResult {
  std::vector<ThroughputSample> samples;
  double flymon_outage_s = 0;
  double static_outage_s = 0;
  unsigned static_reloads = 0;
};

/// The paper's event schedule: 9 events, one every 10 s, cycling
/// add / realloc / delete.
std::vector<ReconfigEvent> paper_event_schedule();

/// Run the simulation.  Static optimisations from the paper are applied:
/// deletions trigger no reload, and consecutive critical events are batched
/// two-per-reload.
ForwardingSimResult simulate_forwarding(const ForwardingSimConfig& cfg,
                                        const std::vector<ReconfigEvent>& events);

}  // namespace flymon::control
