// Symbolic 32-bit words over GF(2) affine bit expressions — the abstract
// domain of the translation validator (translate.hpp).
//
// Every pipeline value the compiled and interpreted paths derive a register
// address or parameter from is built from hash-lane words by XOR, AND with
// a constant mask, and logical right shift.  Each of those operators is
// bit-linear over GF(2), so a bit is represented *exactly* as
//
//     constant  XOR  (xor of symbolic input bits)
//
// where a symbolic input bit is `lane_id * 32 + bit` for an opaque hash
// lane (interned by hash-unit identity + configured mask, see
// translate.cpp).  Two SymWords compare equal iff the concrete expressions
// agree on every input valuation — no approximation, no false equalities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flymon::verify::translate {

/// One bit as a GF(2) affine form: `constant ^ XOR(vars)`.  `vars` is a
/// sorted, duplicate-free set of symbolic input-bit ids (XOR is idempotent
/// on equal terms, so a set is canonical).
struct SymBit {
  bool constant = false;
  std::vector<std::uint32_t> vars;

  bool is_constant() const noexcept { return vars.empty(); }
  friend bool operator==(const SymBit&, const SymBit&) = default;
};

/// A 32-bit word of SymBits, bit 0 = LSB.
class SymWord {
 public:
  /// All bits constant: the word `v`.
  static SymWord constant(std::uint32_t v);
  /// Bit i = the single symbolic variable `lane_id * 32 + i`.
  static SymWord lane(std::uint32_t lane_id);

  /// Bitwise XOR (GF(2) addition, per bit).
  SymWord operator^(const SymWord& o) const;
  /// AND with a constant mask: masked-out bits collapse to constant 0.
  SymWord operator&(std::uint32_t mask) const;
  /// Logical right shift by `n` (n >= 32 yields constant 0).
  SymWord operator>>(unsigned n) const;

  const SymBit& bit(unsigned i) const { return bits_[i]; }

  /// Index of the lowest bit where the two words differ, or -1 when
  /// equivalent.  Equality here is semantic equality of the concrete
  /// functions (the representation is canonical).
  static int first_divergent_bit(const SymWord& a, const SymWord& b);

  friend bool operator==(const SymWord&, const SymWord&) = default;

  /// Compact rendering for diagnostics: constant part in hex plus the
  /// symbolic terms of the diverging bits, e.g. "0x00000000 ^ {L1.b3}".
  std::string to_string() const;

 private:
  SymBit bits_[32];
};

}  // namespace flymon::verify::translate
