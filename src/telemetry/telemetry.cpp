#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace flymon::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool init_from_env() noexcept {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): start-up only, pre-thread-spawn
  const char* v = std::getenv("FLYMON_TELEMETRY");
  if (v != nullptr) {
    const bool on = std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
                    std::strcmp(v, "true") == 0;
    set_enabled(on);
  }
  return enabled();
}

// ---------- Histogram ----------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be ascending");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) noexcept {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  unsigned n) {
  std::vector<double> out;
  out.reserve(n);
  double v = start;
  for (unsigned i = 0; i < n; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

std::vector<double> Histogram::default_bounds() {
  return exponential_bounds(1.0, 4.0, 12);  // 1 .. 4M
}

// ---------- Registry ----------

std::string metric_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) key += ',';
    key += labels[i].first;
    key += "=\"";
    key += labels[i].second;
    key += '"';
  }
  key += '}';
  return key;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Registry::Entry& Registry::find_or_create(const std::string& name,
                                          const Labels& labels, MetricKind kind) {
  // Caller holds mu_ (FLYMON_REQUIRES on the declaration).
  const std::string key = metric_key(name, labels);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry e;
    e.name = name;
    e.labels = labels;
    e.kind = kind;
    it = entries_.emplace(key, std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw std::invalid_argument("Registry: metric '" + key +
                                "' re-registered with a different kind");
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  common::MutexLock lock(mu_);
  Entry& e = find_or_create(name, labels, MetricKind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  common::MutexLock lock(mu_);
  Entry& e = find_or_create(name, labels, MetricKind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels,
                               std::vector<double> bounds) {
  common::MutexLock lock(mu_);
  Entry& e = find_or_create(name, labels, MetricKind::kHistogram);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

std::vector<MetricSample> Registry::snapshot() const {
  common::MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  // entries_ is keyed by the canonical "name{labels}" string, so iteration
  // order — and therefore exposition order — is deterministic.
  for (const auto& [key, e] : entries_) {
    MetricSample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = e.counter ? static_cast<double>(e.counter->value()) : 0.0;
        break;
      case MetricKind::kGauge:
        s.value = e.gauge ? e.gauge->value() : 0.0;
        break;
      case MetricKind::kHistogram:
        if (e.histogram) s.hist = e.histogram->snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t Registry::size() const {
  common::MutexLock lock(mu_);
  return entries_.size();
}

void Registry::reset_values() {
  common::MutexLock lock(mu_);
  for (auto& [key, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

}  // namespace flymon::telemetry
