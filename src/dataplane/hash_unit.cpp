#include "dataplane/hash_unit.hpp"

#include "common/hash.hpp"

namespace flymon::dataplane {

HashUnit::HashUnit(unsigned unit_index) noexcept
    : unit_index_(unit_index),
      poly_(crc_polynomial(unit_index)),
      // Perturb init per unit so more than 8 units remain distinct.
      init_(0xFFFFFFFFu ^ static_cast<std::uint32_t>(mix64(unit_index) >> 32)) {}

std::uint32_t HashUnit::compute(const CandidateKey& key) const noexcept {
  CandidateKey masked{};
  for (std::size_t i = 0; i < key.size(); ++i) masked[i] = key[i] & mask_[i];
  return crc32(std::span<const std::uint8_t>(masked.data(), masked.size()), poly_, init_);
}

}  // namespace flymon::dataplane
