file(REMOVE_RECURSE
  "CMakeFiles/ddos_hunt.dir/ddos_hunt.cpp.o"
  "CMakeFiles/ddos_hunt.dir/ddos_hunt.cpp.o.d"
  "ddos_hunt"
  "ddos_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
