// Multitasking stress (paper §5.1): split each CMU into 32 memory
// partitions and run up to 96 isolated measurement tasks concurrently on a
// single CMU Group, deploying and retiring tasks at the millisecond level.
#include <cstdio>
#include <vector>

#include "control/controller.hpp"
#include "packet/trace_gen.hpp"

using namespace flymon;

int main() {
  // One CMU Group only: the paper's claim is 96 tasks on a single group.
  FlyMonDataPlane dataplane(1);
  control::Controller controller(dataplane);

  // 96 single-row tasks, each with a disjoint /16-within-/8 source filter
  // so they can share CMUs (one memory access per packet per CMU).
  const std::uint32_t total = dataplane.group(0).config().register_buckets;
  const std::uint32_t buckets = total / 32;  // 32 partitions per CMU
  std::vector<std::uint32_t> ids;
  double total_delay = 0;
  for (unsigned i = 0; i < 96; ++i) {
    TaskSpec t;
    t.name = "slice-" + std::to_string(i);
    t.filter = TaskFilter::src(0x0A00'0000u | (static_cast<std::uint32_t>(i) << 16), 16);
    t.key = FlowKeySpec::five_tuple();
    t.attribute = AttributeKind::kFrequency;
    t.memory_buckets = buckets;
    t.rows = 1;
    const auto r = controller.add_task(t);
    if (!r.ok) {
      std::printf("task %u failed: %s\n", i, r.error.c_str());
      break;
    }
    ids.push_back(r.task_id);
    total_delay += r.report.delay_ms();
  }
  std::printf("deployed %zu concurrent isolated tasks on 1 CMU Group\n", ids.size());
  std::printf("mean deployment delay: %.2f ms\n",
              ids.empty() ? 0.0 : total_delay / ids.size());
  for (unsigned c = 0; c < 3; ++c) {
    std::printf("CMU %u free buckets: %u / %u\n", c, controller.free_buckets(0, c), total);
  }

  // Traffic across all 96 slices.
  TraceConfig cfg;
  cfg.num_flows = 9600;
  cfg.num_packets = 300'000;
  cfg.src_ip_base = 0x0A00'0000;  // 10.x covers all slice filters
  const auto trace = TraceGenerator::generate(cfg);
  dataplane.process_all(trace);

  // Spot-check isolation: each task only sees its own slice.
  unsigned checked = 0, correct = 0;
  const FreqMap truth = ExactStats::frequency(trace, FlowKeySpec::five_tuple());
  for (const auto& [key, count] : truth) {
    const Packet p = packet_from_candidate_key(key.bytes);
    const unsigned slice = (p.ft.src_ip >> 16) & 0xFF;
    if (slice >= ids.size()) continue;
    const std::uint64_t est = controller.query_value(ids[slice], p);
    ++checked;
    if (est >= count && est <= count + 64) ++correct;  // small collision slack
    if (checked == 2000) break;
  }
  std::printf("isolation spot-check: %u/%u flows within tolerance\n", correct, checked);

  // Retire half the tasks; memory coalesces back.
  for (unsigned i = 0; i < ids.size(); i += 2) controller.remove_task(ids[i]);
  std::printf("after retiring half: %zu tasks, CMU0 free %u buckets\n",
              controller.num_tasks(), controller.free_buckets(0, 0));
  return 0;
}
