# Empty dependencies file for test_trace_exact.
# This may be replaced when dependencies are built.
