#include <gtest/gtest.h>

#include <bit>

#include "packet/exact.hpp"
#include "packet/flowkey.hpp"
#include "packet/packet.hpp"

namespace flymon {
namespace {

Packet sample_packet() {
  Packet p;
  p.ft = FiveTuple{0x0A01'0203, 0xC0A8'0102, 443, 51000, 6};
  p.wire_bytes = 1200;
  p.ts_ns = 123'456'789;
  return p;
}

TEST(Packet, CandidateKeyLayout) {
  const Packet p = sample_packet();
  const CandidateKey k = serialize_candidate_key(p);
  EXPECT_EQ(k[0], 0x0A);  // SrcIP big-endian
  EXPECT_EQ(k[1], 0x01);
  EXPECT_EQ(k[2], 0x02);
  EXPECT_EQ(k[3], 0x03);
  EXPECT_EQ(k[4], 0xC0);  // DstIP
  EXPECT_EQ(k[8], 443 >> 8);
  EXPECT_EQ(k[9], 443 & 0xFF);
  EXPECT_EQ(k[12], 6);
}

TEST(Packet, RoundTripThroughCandidateKey) {
  const Packet p = sample_packet();
  const Packet q = packet_from_candidate_key(serialize_candidate_key(p));
  EXPECT_EQ(q.ft, p.ft);
  // Timestamp round-trips at kTsShift granularity.
  EXPECT_EQ(q.ts_ns >> kTsShift, p.ts_ns >> kTsShift);
}

TEST(FlowKeySpec, TotalBits) {
  EXPECT_EQ(FlowKeySpec::src_ip().total_bits(), 32u);
  EXPECT_EQ(FlowKeySpec::src_ip(24).total_bits(), 24u);
  EXPECT_EQ(FlowKeySpec::ip_pair().total_bits(), 64u);
  EXPECT_EQ(FlowKeySpec::five_tuple().total_bits(), 104u);
  EXPECT_TRUE(FlowKeySpec{}.empty());
}

TEST(FlowKeySpec, Names) {
  EXPECT_EQ(FlowKeySpec::src_ip().name(), "SrcIP");
  EXPECT_EQ(FlowKeySpec::src_ip(24).name(), "SrcIP/24");
  EXPECT_EQ(FlowKeySpec::ip_pair().name(), "SrcIP+DstIP");
  EXPECT_EQ(FlowKeySpec{}.name(), "<empty>");
}

TEST(FlowKeySpec, FullFieldMask) {
  const CandidateKey m = FlowKeySpec::src_ip().mask();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(m[i], 0xFF);
  for (std::size_t i = 4; i < kCandidateKeyBytes; ++i) EXPECT_EQ(m[i], 0x00);
}

TEST(FlowKeySpec, PrefixMask) {
  const CandidateKey m = FlowKeySpec::src_ip(20).mask();
  EXPECT_EQ(m[0], 0xFF);
  EXPECT_EQ(m[1], 0xFF);
  EXPECT_EQ(m[2], 0xF0);  // 4 bits of the third byte
  EXPECT_EQ(m[3], 0x00);
}

TEST(FlowKey, ExtractMasksNonKeyFields) {
  const Packet p = sample_packet();
  const FlowKeyValue k = extract_flow_key(p, FlowKeySpec::src_ip());
  EXPECT_EQ(k.bytes[0], 0x0A);
  EXPECT_EQ(k.bytes[4], 0x00);  // DstIP masked out
  EXPECT_EQ(k.bytes[12], 0x00);
}

TEST(FlowKey, PrefixGroupsNearbyAddresses) {
  Packet a = sample_packet();
  Packet b = sample_packet();
  b.ft.src_ip = a.ft.src_ip ^ 0x1;  // same /24, different host
  EXPECT_NE(extract_flow_key(a, FlowKeySpec::src_ip()),
            extract_flow_key(b, FlowKeySpec::src_ip()));
  EXPECT_EQ(extract_flow_key(a, FlowKeySpec::src_ip(24)),
            extract_flow_key(b, FlowKeySpec::src_ip(24)));
}

TEST(FlowKey, HashUsableInContainers) {
  const Packet p = sample_packet();
  const FlowKeyValue a = extract_flow_key(p, FlowKeySpec::five_tuple());
  const FlowKeyValue b = extract_flow_key(p, FlowKeySpec::five_tuple());
  EXPECT_EQ(std::hash<FlowKeyValue>{}(a), std::hash<FlowKeyValue>{}(b));
}

TEST(MetaField, ReadMeta) {
  const Packet p = sample_packet();
  EXPECT_EQ(read_meta(p, MetaField::kOne), 1u);
  EXPECT_EQ(read_meta(p, MetaField::kWireBytes), 1200u);
  EXPECT_EQ(read_meta(p, MetaField::kTimestamp), p.ts_ns >> kTsShift);
}

class PrefixSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefixSweep, MaskHasExactlyPrefixBits) {
  const auto bits = static_cast<std::uint8_t>(GetParam());
  const CandidateKey m = FlowKeySpec::src_ip(bits).mask();
  unsigned set = 0;
  for (int i = 0; i < 4; ++i) set += static_cast<unsigned>(std::popcount(m[i]));
  EXPECT_EQ(set, bits);
  // Prefix property: set bits are contiguous from the MSB.
  std::uint32_t v = (std::uint32_t{m[0]} << 24) | (std::uint32_t{m[1]} << 16) |
                    (std::uint32_t{m[2]} << 8) | m[3];
  if (bits > 0) {
    EXPECT_EQ(static_cast<unsigned>(std::countl_one(v)), bits);
  } else {
    EXPECT_EQ(v, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrefixLengths, PrefixSweep,
                         ::testing::Values(0, 1, 4, 7, 8, 9, 15, 16, 17, 23, 24, 25,
                                           31, 32));

}  // namespace
}  // namespace flymon
