#include "sketch/count_min.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace flymon::sketch {

CountMin::CountMin(unsigned d, std::uint32_t w) : d_(d), w_(w) {
  if (d == 0 || w == 0) throw std::invalid_argument("CountMin: d and w must be > 0");
  cells_.assign(std::size_t{d} * w, 0u);
}

CountMin CountMin::with_memory(unsigned d, std::size_t bytes) {
  const std::size_t w = bytes / (std::size_t{4} * d);
  return CountMin(d, static_cast<std::uint32_t>(std::max<std::size_t>(1, w)));
}

void CountMin::update(KeyBytes key, std::uint32_t inc) {
  for (unsigned r = 0; r < d_; ++r) {
    auto& c = cells_[std::size_t{r} * w_ + row_hash(key, r) % w_];
    const std::uint64_t sum = std::uint64_t{c} + inc;
    c = sum > std::numeric_limits<std::uint32_t>::max()
            ? std::numeric_limits<std::uint32_t>::max()
            : static_cast<std::uint32_t>(sum);
  }
}

std::uint32_t CountMin::query(KeyBytes key) const {
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  for (unsigned r = 0; r < d_; ++r) {
    best = std::min(best, cells_[std::size_t{r} * w_ + row_hash(key, r) % w_]);
  }
  return best;
}

void CountMin::clear() { std::fill(cells_.begin(), cells_.end(), 0u); }

}  // namespace flymon::sketch
