#include "sketch/mrac.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace flymon::sketch {

Mrac::Mrac(std::uint32_t m) {
  if (m == 0) throw std::invalid_argument("Mrac: m must be > 0");
  cells_.assign(m, 0u);
}

Mrac Mrac::with_memory(std::size_t bytes) {
  return Mrac(static_cast<std::uint32_t>(std::max<std::size_t>(1, bytes / 4)));
}

void Mrac::update(KeyBytes key, std::uint32_t inc) {
  auto& c = cells_[row_hash(key, 0, 0x33AACull) % cells_.size()];
  const std::uint64_t sum = std::uint64_t{c} + inc;
  c = sum > std::numeric_limits<std::uint32_t>::max()
          ? std::numeric_limits<std::uint32_t>::max()
          : static_cast<std::uint32_t>(sum);
}

void Mrac::load_counter(std::size_t idx, std::uint32_t value) { cells_.at(idx) = value; }

void Mrac::clear() { std::fill(cells_.begin(), cells_.end(), 0u); }

double Mrac::estimate_flow_count() const {
  const double m = static_cast<double>(cells_.size());
  std::size_t zeros = 0;
  for (std::uint32_t c : cells_) zeros += (c == 0);
  if (zeros == 0) return m * std::log(m);  // saturated; best effort
  return m * std::log(m / static_cast<double>(zeros));
}

std::map<std::uint32_t, double> Mrac::estimate_size_distribution(
    unsigned em_iterations, std::uint32_t max_split_value) const {
  // Histogram of non-zero counter values.
  std::map<std::uint32_t, std::uint64_t> hist;
  for (std::uint32_t c : cells_) {
    if (c > 0) ++hist[c];
  }
  if (hist.empty()) return {};

  const double n_hat = std::max(1.0, estimate_flow_count());
  const double lambda = n_hat / static_cast<double>(cells_.size());
  // A non-empty counter holds 1 flow w.p. p1, 2 flows w.p. p2 (truncated
  // Poisson; 3+ collisions ignored — negligible when lambda << 1).
  const double pois1 = lambda * std::exp(-lambda);
  const double pois2 = lambda * lambda / 2.0 * std::exp(-lambda);
  const double p2_prior = pois2 / (pois1 + pois2);

  // phi[s] = probability a random flow has size s.
  std::map<std::uint32_t, double> phi;
  double norm = 0;
  for (const auto& [v, cnt] : hist) {
    phi[v] += static_cast<double>(cnt);
    norm += static_cast<double>(cnt);
  }
  for (auto& [s, w] : phi) w /= norm;

  for (unsigned iter = 0; iter < em_iterations; ++iter) {
    std::map<std::uint32_t, double> next;  // expected flow counts per size
    for (const auto& [v, cnt] : hist) {
      const double weight = static_cast<double>(cnt);
      if (v > max_split_value || v < 2) {
        next[v] += weight;
        continue;
      }
      // Probability mass of all 2-way splits a + (v-a) = v.
      double split_mass = 0;
      for (std::uint32_t a = 1; a <= v / 2; ++a) {
        const auto ia = phi.find(a);
        const auto ib = phi.find(v - a);
        if (ia != phi.end() && ib != phi.end()) split_mass += ia->second * ib->second;
      }
      const auto iv = phi.find(v);
      const double single_mass = iv != phi.end() ? iv->second : 0.0;
      const double w2 = p2_prior * split_mass;
      const double w1 = (1.0 - p2_prior) * single_mass;
      const double total = w1 + w2;
      if (total <= 0) {
        next[v] += weight;
        continue;
      }
      next[v] += weight * (w1 / total);
      if (w2 > 0) {
        for (std::uint32_t a = 1; a <= v / 2; ++a) {
          const auto ia = phi.find(a);
          const auto ib = phi.find(v - a);
          if (ia == phi.end() || ib == phi.end()) continue;
          const double frac =
              weight * (w2 / total) * (ia->second * ib->second) / split_mass;
          next[a] += frac;
          next[v - a] += frac;
        }
      }
    }
    // M step: renormalise into phi.
    double total_flows = 0;
    for (const auto& [s, w] : next) total_flows += w;
    phi.clear();
    for (const auto& [s, w] : next) {
      if (w > 1e-12) phi[s] = w / total_flows;
    }
  }

  // Scale probabilities to estimated flow counts.
  std::map<std::uint32_t, double> dist;
  for (const auto& [s, w] : phi) dist[s] = w * n_hat;
  return dist;
}

double Mrac::entropy_of_distribution(const std::map<std::uint32_t, double>& dist) {
  double total_pkts = 0;
  for (const auto& [s, n] : dist) total_pkts += n * static_cast<double>(s);
  if (total_pkts <= 0) return 0;
  double h = 0;
  for (const auto& [s, n] : dist) {
    if (s == 0 || n <= 0) continue;
    const double p = static_cast<double>(s) / total_pkts;
    h -= n * p * std::log(p);
  }
  return h;
}

double Mrac::estimate_entropy(unsigned em_iterations) const {
  return entropy_of_distribution(estimate_size_distribution(em_iterations));
}

}  // namespace flymon::sketch
