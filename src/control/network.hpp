// Network-wide measurement (paper §3.4 / §7: FlyMon supplies the flexible
// hardware data plane for software-defined-measurement controllers such as
// DREAM/SCREAM).  This layer manages a fleet of FlyMon switches, deploys a
// task on all of them, ECMP-routes traffic, and merges per-switch readouts
// into network-wide answers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "control/controller.hpp"

namespace flymon::control {

class NetworkFlyMon {
 public:
  explicit NetworkFlyMon(unsigned num_switches, unsigned groups_per_switch = 9,
                         const CmuGroupConfig& cfg = {});

  unsigned num_switches() const noexcept { return static_cast<unsigned>(nodes_.size()); }
  Controller& controller(unsigned i) { return *nodes_.at(i).ctl; }
  FlyMonDataPlane& switch_at(unsigned i) { return *nodes_.at(i).dp; }

  /// A task instantiated on every switch.
  struct NetworkTask {
    bool ok = false;
    std::string error;
    TaskSpec spec;
    std::vector<std::uint32_t> per_switch_id;
    double worst_deploy_ms = 0;
  };

  /// Deploy `spec` on all switches; all-or-nothing.
  NetworkTask deploy_everywhere(const TaskSpec& spec);
  void remove_everywhere(const NetworkTask& t);

  /// ECMP: a flow (5-tuple) is pinned to one switch by hash.
  unsigned route(const Packet& p) const noexcept;
  void process(const Packet& p);
  template <typename Range>
  void process_all(const Range& trace) {
    for (const Packet& p : trace) process(p);
  }
  void clear_all_registers();

  // ---- merged network-wide readout ----
  /// Frequency: a flow's packets live on its ECMP switch; summing the
  /// per-switch estimates covers multi-path deployments too.
  std::uint64_t query_value_sum(const NetworkTask& t, const Packet& probe) const;
  /// Max attribute: maximum across switches.
  std::uint64_t query_value_max(const NetworkTask& t, const Packet& probe) const;
  /// Existence: present anywhere.
  bool query_existence_any(const NetworkTask& t, const Packet& probe) const;
  /// Cardinality: ECMP partitions the flow space, so per-switch
  /// cardinalities add up.
  double estimate_cardinality_sum(const NetworkTask& t) const;
  /// Distinct-count report (DDoS victims): reported by any switch.
  bool distinct_over_threshold_any(const NetworkTask& t, const Packet& probe) const;
  /// Network-wide heavy hitters over a candidate set.
  std::vector<FlowKeyValue> detect_over_threshold(
      const NetworkTask& t, const std::vector<FlowKeyValue>& candidates,
      std::uint64_t threshold) const;

 private:
  struct Node {
    std::unique_ptr<FlyMonDataPlane> dp;
    std::unique_ptr<Controller> ctl;
  };
  std::vector<Node> nodes_;
};

}  // namespace flymon::control
