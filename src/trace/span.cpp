#include "trace/span.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "telemetry/telemetry.hpp"

namespace flymon::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
thread_local std::uint16_t t_depth = 0;
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool init_from_env() noexcept {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): start-up only, pre-thread-spawn
  const char* v = std::getenv("FLYMON_TRACE");
  if (v != nullptr) {
    const bool on = std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
                    std::strcmp(v, "true") == 0;
    set_enabled(on);
  }
  return enabled();
}

// ---------- clock ----------

namespace {
std::atomic<ClockFn> g_clock{nullptr};
}  // namespace

std::uint64_t monotonic_now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           origin)
          .count());
}

void set_clock(ClockFn fn) noexcept {
  g_clock.store(fn, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  const ClockFn fn = g_clock.load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : monotonic_now_ns();
}

// ---------- collector ----------

// Slot fields are individual relaxed atomics: stores compile to plain MOVs
// on x86 yet keep concurrent collect() TSan-clean.  head_ is released
// after the slot is complete, so a reader that acquires head sees every
// field of the events below it; a slot being overwritten concurrently is
// detected by re-reading head after the copy (see collect()).
struct SpanCollector::ThreadRing {
  struct Slot {
    std::atomic<const char*> name{""};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::uint64_t> gen{0};
    std::atomic<std::uint64_t> arg{0};
    std::atomic<std::uint32_t> meta{0};  ///< depth << 8 | kind
  };

  explicit ThreadRing(std::uint32_t tid)
      : slots(std::make_unique<Slot[]>(kRingCapacity)), tid(tid) {}

  std::unique_ptr<Slot[]> slots;
  std::atomic<std::uint64_t> head{0};  ///< total events written
  std::uint32_t tid;
};

thread_local SpanCollector::ThreadRing* SpanCollector::t_ring = nullptr;
thread_local SpanCollector* SpanCollector::t_ring_owner = nullptr;

SpanCollector::SpanCollector() = default;

SpanCollector& SpanCollector::global() {
  static SpanCollector* c = new SpanCollector();  // immortal: worker threads
  return *c;                                      // may outlive static dtors
}

SpanCollector::ThreadRing& SpanCollector::ring_for_this_thread() {
  if (t_ring != nullptr && t_ring_owner == this) return *t_ring;
  common::MutexLock lock(mu_);
  rings_.push_back(
      std::make_unique<ThreadRing>(static_cast<std::uint32_t>(rings_.size())));
  flushed_.push_back(0);
  t_ring = rings_.back().get();
  t_ring_owner = this;
  return *t_ring;
}

void SpanCollector::emit(const char* name, std::uint64_t start_ns,
                         std::uint64_t dur_ns, std::uint64_t gen,
                         std::uint64_t arg, std::uint16_t depth,
                         EventKind kind) noexcept {
  ThreadRing& r = ring_for_this_thread();
  const std::uint64_t h = r.head.load(std::memory_order_relaxed);
  ThreadRing::Slot& s = r.slots[h % kRingCapacity];
  s.name.store(name, std::memory_order_relaxed);
  s.start_ns.store(start_ns, std::memory_order_relaxed);
  s.dur_ns.store(dur_ns, std::memory_order_relaxed);
  s.gen.store(gen, std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  s.meta.store((static_cast<std::uint32_t>(depth) << 8) |
                   static_cast<std::uint32_t>(kind),
               std::memory_order_relaxed);
  r.head.store(h + 1, std::memory_order_release);
}

SpanCollector::Stats SpanCollector::stats() const {
  common::MutexLock lock(mu_);
  Stats s;
  s.threads = rings_.size();
  for (const auto& r : rings_) {
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    s.emitted += h;
    if (h > kRingCapacity) s.dropped += h - kRingCapacity;
  }
  return s;
}

std::vector<SpanEvent> SpanCollector::collect() const {
  std::vector<SpanEvent> out;
  common::MutexLock lock(mu_);
  for (const auto& r : rings_) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t first = head > kRingCapacity ? head - kRingCapacity : 0;
    for (std::uint64_t i = first; i < head; ++i) {
      const ThreadRing::Slot& s = r->slots[i % kRingCapacity];
      SpanEvent e;
      e.name = s.name.load(std::memory_order_relaxed);
      e.start_ns = s.start_ns.load(std::memory_order_relaxed);
      e.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      e.gen = s.gen.load(std::memory_order_relaxed);
      e.arg = s.arg.load(std::memory_order_relaxed);
      const std::uint32_t meta = s.meta.load(std::memory_order_relaxed);
      e.depth = static_cast<std::uint16_t>(meta >> 8);
      e.kind = static_cast<EventKind>(meta & 0xFF);
      e.tid = r->tid;
      // Validity: the writer may have wrapped onto this slot while we were
      // copying it.  head2 - i == kRingCapacity means slot i's cell is (or
      // may be, for an unpublished in-flight write of index i + capacity)
      // being rewritten — discard the possibly-torn copy.
      const std::uint64_t head2 = r->head.load(std::memory_order_acquire);
      if (head2 - i >= kRingCapacity) continue;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.dur_ns > b.dur_ns;  // parents before children at equal start
  });
  return out;
}

void SpanCollector::clear() {
  common::MutexLock lock(mu_);
  for (auto& r : rings_) r->head.store(0, std::memory_order_release);
  std::fill(flushed_.begin(), flushed_.end(), 0);
  flushed_drops_ = 0;
}

void SpanCollector::flush_to_registry(telemetry::Registry& registry) {
  common::MutexLock lock(mu_);
  // No thread ever recorded a span: leave the registry untouched so trace
  // metrics only appear once tracing has actually been used.
  if (rings_.empty()) return;
  telemetry::Counter& total = registry.counter("flymon_trace_spans_total");
  telemetry::Counter& drops = registry.counter("flymon_trace_span_drops_total");
  // Span-duration histograms in microseconds, 0.25us .. ~4s.
  const auto bounds = telemetry::Histogram::exponential_bounds(0.25, 4.0, 17);
  std::uint64_t dropped_now = 0;
  for (std::size_t ri = 0; ri < rings_.size(); ++ri) {
    ThreadRing& r = *rings_[ri];
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::uint64_t first =
        std::max(flushed_[ri], head > kRingCapacity ? head - kRingCapacity : 0);
    if (head > kRingCapacity) dropped_now += head - kRingCapacity;
    for (std::uint64_t i = first; i < head; ++i) {
      const ThreadRing::Slot& s = r.slots[i % kRingCapacity];
      const char* name = s.name.load(std::memory_order_relaxed);
      const std::uint64_t dur = s.dur_ns.load(std::memory_order_relaxed);
      const std::uint32_t meta = s.meta.load(std::memory_order_relaxed);
      const std::uint64_t head2 = r.head.load(std::memory_order_acquire);
      if (head2 - i >= kRingCapacity) continue;  // overwritten mid-read
      if (static_cast<EventKind>(meta & 0xFF) != EventKind::kSpan) continue;
      registry.histogram("flymon_span_duration_us", {{"span", name}}, bounds)
          .observe(static_cast<double>(dur) / 1000.0);
      total.inc();
    }
    flushed_[ri] = head;
  }
  if (dropped_now > flushed_drops_) {
    drops.inc(dropped_now - flushed_drops_);
    flushed_drops_ = dropped_now;
  }
}

// ---------- instants / reconfiguration tags ----------

namespace {
std::atomic<std::uint64_t> g_reconfig{0};
thread_local std::uint64_t t_reconfig_tag = 0;
thread_local unsigned t_reconfig_depth = 0;
}  // namespace

void instant(const char* name, std::uint64_t arg) noexcept {
  if (!enabled()) return;
  SpanCollector::global().emit(name, now_ns(), 0, t_reconfig_tag, arg,
                               detail::t_depth, EventKind::kInstant);
}

ReconfigScope::ReconfigScope() noexcept {
  if (t_reconfig_depth++ == 0) {
    t_reconfig_tag = g_reconfig.fetch_add(1, std::memory_order_relaxed) + 1;
    top_ = true;
  }
  tag_ = t_reconfig_tag;
}

ReconfigScope::~ReconfigScope() {
  if (--t_reconfig_depth == 0 && top_) t_reconfig_tag = 0;
}

std::uint64_t current_reconfig() noexcept { return t_reconfig_tag; }

std::uint64_t latest_reconfig() noexcept {
  return g_reconfig.load(std::memory_order_relaxed);
}

// ---------- Span ----------

void Span::open(const char* name, std::uint64_t arg) noexcept {
  live_ = true;
  name_ = name;
  arg_ = arg;
  depth_ = detail::t_depth++;
  start_ns_ = now_ns();
}

void Span::close() noexcept {
  if (!live_) return;
  live_ = false;
  const std::uint64_t end = now_ns();
  --detail::t_depth;
  SpanCollector::global().emit(name_, start_ns_,
                               end > start_ns_ ? end - start_ns_ : 0,
                               t_reconfig_tag, arg_, depth_, EventKind::kSpan);
}

// ---------- timeline analysis ----------

double child_coverage(const std::vector<SpanEvent>& events,
                      const SpanEvent& parent) {
  if (parent.dur_ns == 0) return 0.0;
  const std::uint64_t p_end = parent.start_ns + parent.dur_ns;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> iv;
  for (const SpanEvent& e : events) {
    if (e.kind != EventKind::kSpan || e.tid != parent.tid) continue;
    if (e.depth <= parent.depth) continue;
    if (e.start_ns < parent.start_ns || e.start_ns >= p_end) continue;
    iv.emplace_back(e.start_ns, std::min(e.start_ns + e.dur_ns, p_end));
  }
  std::sort(iv.begin(), iv.end());
  std::uint64_t covered = 0, cur_begin = 0, cur_end = 0;
  bool open = false;
  for (const auto& [b, e] : iv) {
    if (!open || b > cur_end) {
      if (open) covered += cur_end - cur_begin;
      cur_begin = b;
      cur_end = e;
      open = true;
    } else {
      cur_end = std::max(cur_end, e);
    }
  }
  if (open) covered += cur_end - cur_begin;
  return static_cast<double>(covered) / static_cast<double>(parent.dur_ns);
}

}  // namespace flymon::trace
