#include "sketch/hyperloglog.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/bits.hpp"

namespace flymon::sketch {

HyperLogLog::HyperLogLog(unsigned b) : b_(b) {
  if (b < 2 || b > 20) throw std::invalid_argument("HyperLogLog: b must be 2..20");
  regs_.assign(std::size_t{1} << b, 0u);
}

HyperLogLog HyperLogLog::with_memory(std::size_t bytes) {
  const unsigned b = std::max(2u, log2_floor(std::max<std::size_t>(4, bytes)));
  return HyperLogLog(std::min(20u, b));
}

void HyperLogLog::insert(KeyBytes key) {
  const std::uint64_t h = hash64(key, 0x4C0Full);
  const std::size_t idx = h >> (64 - b_);
  const std::uint64_t rest = (h << b_) | (std::uint64_t{1} << (b_ - 1));  // sentinel
  const std::uint8_t rho = static_cast<std::uint8_t>(std::countl_zero(rest) + 1);
  regs_[idx] = std::max(regs_[idx], rho);
}

double HyperLogLog::estimate() const {
  const double m = static_cast<double>(regs_.size());
  const double alpha = m <= 16 ? 0.673 : m <= 32 ? 0.697 : m <= 64 ? 0.709
                                                        : 0.7213 / (1.0 + 1.079 / m);
  double inv_sum = 0.0;
  std::size_t zeros = 0;
  for (std::uint8_t r : regs_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double e = alpha * m * m / inv_sum;
  if (e <= 2.5 * m && zeros > 0) {
    // Small-range correction: linear counting over empty registers.
    e = m * std::log(m / static_cast<double>(zeros));
  }
  return e;
}

void HyperLogLog::clear() { std::fill(regs_.begin(), regs_.end(), 0u); }

void HyperLogLog::load_register(std::size_t idx, std::uint8_t rho) {
  regs_.at(idx) = std::max(regs_.at(idx), rho);
}

}  // namespace flymon::sketch
