// Address translation (paper §3.3, Fig 9): maps a task's full hash-address
// range onto its allocated power-of-two memory partition.  Two hardware
// strategies exist — shift-based (extra stage or PHV) and TCAM-based
// (range-expansion entries); both compute the same function, so the data
// path here is shared and the strategies differ in resource accounting.
#pragma once

#include <cstdint>

#include "core/compression.hpp"
#include "core/memory_partition.hpp"

namespace flymon {

enum class TranslationStrategy : std::uint8_t { kShift, kTcam };

/// Translate a sliced dynamic key (`slice_width` significant bits) into an
/// address inside `part` (the shift-based view: keep the top log2(size)
/// bits, then add the base).
std::uint32_t translate_address(std::uint32_t sliced_key, unsigned slice_width,
                                const MemoryPartition& part) noexcept;

/// Resource accounting for the two strategies.
struct TranslationCost {
  unsigned tcam_entries = 0;  ///< preparation-stage TCAM entries
  unsigned phv_bits = 0;      ///< extra PHV for pre-computed offsets
  unsigned extra_stages = 0;  ///< extra MAU stages consumed
};

/// Cost of supporting one task whose partition is `part` within a CMU of
/// `total_buckets` buckets.
TranslationCost translation_cost(TranslationStrategy strategy,
                                 std::uint32_t total_buckets,
                                 const MemoryPartition& part) noexcept;

/// Aggregate cost of splitting a CMU into `partitions` equal partitions
/// with one task each (the paper's Fig 11 experiment).
TranslationCost translation_cost_for_partitions(TranslationStrategy strategy,
                                                std::uint32_t total_buckets,
                                                unsigned partitions) noexcept;

}  // namespace flymon
