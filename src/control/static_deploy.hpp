// Static (compile-time) sketch deployment model — the conventional
// alternative FlyMon replaces.  Used by the Fig 2 / Fig 13a experiments:
// each sketch instance hardwires its own hash units, SALUs, memory and
// tables for one fixed key.
#pragma once

#include <string>
#include <vector>

#include "dataplane/mau_stage.hpp"
#include "dataplane/pipeline.hpp"

namespace flymon::control {

/// Whole-pipeline demand of one statically-deployed sketch instance, plus
/// the per-row granularity needed for stage packing.
struct StaticSketchFootprint {
  std::string name;
  unsigned rows = 0;               ///< d (each row = 1 SALU + registers)
  unsigned hash_units_per_row = 2; ///< wide 5-tuple keys span 2 units
  unsigned sram_blocks_total = 0;
  unsigned tcam_blocks_total = 0;
  unsigned vliw_slots_total = 0;
  unsigned logical_tables_total = 0;
  unsigned phv_bits = 0;           ///< key copy + metadata

  /// Demand of one row (registers divided evenly across rows).
  dataplane::StageDemand row_demand() const;
};

/// Footprints of the four single-key sketches evaluated in paper Fig 2
/// (Bloom Filter, CMS, HLL, MRAC), sized as in the paper's setting.
std::vector<StaticSketchFootprint> fig2_sketches();

/// switch.p4 baseline occupancy per MAU stage (calibrated to the baseline
/// bars of paper Fig 13a) and its PHV usage.
dataplane::StageDemand switch_p4_baseline_per_stage();
unsigned switch_p4_baseline_phv_bits();

/// Pack rows of `sketches` (cycled `instances` times) into a pipeline with
/// the given per-stage baseline; returns how many whole sketch instances fit.
unsigned max_static_instances(const std::vector<StaticSketchFootprint>& sketches,
                              unsigned num_stages,
                              const dataplane::StageDemand& baseline_per_stage,
                              unsigned baseline_phv_bits);

}  // namespace flymon::control
