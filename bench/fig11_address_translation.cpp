// Paper Figure 11: resource overhead of the two address-translation
// mechanisms as the number of memory partitions per CMU grows.
//   (a) TCAM-based: fraction of one MAU stage's TCAM
//   (b) shift-based: extra PHV bits for pre-computed offsets
#include "bench/bench_util.hpp"
#include "core/address_translation.hpp"
#include "dataplane/tcam.hpp"
#include "dataplane/tofino_model.hpp"

using namespace flymon;
using dataplane::TofinoModel;

int main(int argc, char** argv) {
  const std::string json_path = bench::extract_json_path(argc, argv);
  bench::JsonReport report("fig11_address_translation");
  bench::header("Figure 11", "Address-translation overhead vs #memory partitions");

  constexpr std::uint32_t kBuckets = 65536;  // one CMU register
  constexpr double kStageTcamEntries =
      double{TofinoModel::kTcamBlocksPerStage} * TofinoModel::kTcamBlockEntries;

  std::printf("%-12s %18s %14s %18s\n", "partitions", "TCAM entries", "TCAM usage",
              "shift PHV (bits)");
  for (unsigned parts : {8u, 16u, 32u, 64u}) {
    const TranslationCost tcam =
        translation_cost_for_partitions(TranslationStrategy::kTcam, kBuckets, parts);
    const TranslationCost shift =
        translation_cost_for_partitions(TranslationStrategy::kShift, kBuckets, parts);
    std::printf("%-12u %18u %13.1f%% %18u\n", parts, tcam.tcam_entries,
                100.0 * tcam.tcam_entries / kStageTcamEntries, shift.phv_bits);
    bench::JsonRow& row = report.row("partitions_" + std::to_string(parts));
    row.add("partitions", parts);
    row.add("tcam_entries", tcam.tcam_entries);
    row.add("tcam_usage", tcam.tcam_entries / kStageTcamEntries);
    row.add("shift_phv_bits", shift.phv_bits);
  }
  std::printf("\n(paper: 32 partitions need ~12.5%% of one stage's TCAM; with 32\n"
              " partitions per CMU a 3-CMU group runs up to 96 isolated tasks)\n");
  if (!report.write(json_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }

  // Range-expansion sanity: every power-of-two partition expands to exactly
  // one ternary entry per displaced source block.
  const auto patterns = dataplane::range_to_ternary(16384, 32767, 16);
  std::printf("\nrange [16384,32767] over 16-bit key expands to %zu ternary entry(ies)\n",
              patterns.size());
  return 0;
}
