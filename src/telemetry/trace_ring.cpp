#include "telemetry/trace_ring.hpp"

#include <cstdio>

#include "telemetry/export.hpp"

namespace flymon::telemetry {

PacketTracer::PacketTracer(std::size_t capacity, std::uint64_t sample_every)
    : capacity_(capacity == 0 ? 1 : capacity),
      ring_(capacity_),
      every_(sample_every == 0 ? 1 : sample_every) {}

TraceRecord* PacketTracer::begin(const Packet& pkt) {
  scratch_ = TraceRecord{};
  const std::uint64_t seen = seen_.load(std::memory_order_relaxed);
  scratch_.seq = seen == 0 ? 0 : seen - 1;  // seq of the packet just sampled
  scratch_.ts_ns = pkt.ts_ns;
  scratch_.ft = pkt.ft;
  scratch_live_ = true;
  return &scratch_;
}

void PacketTracer::commit() {
  if (!scratch_live_) return;
  scratch_live_ = false;
  const common::MutexLock lock(mu_);
  ring_[head_] = std::move(scratch_);
  head_ = (head_ + 1) % ring_.size();
  if (filled_ < ring_.size()) ++filled_;
  taken_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t PacketTracer::size() const {
  const common::MutexLock lock(mu_);
  return filled_;
}

void PacketTracer::clear() {
  const common::MutexLock lock(mu_);
  for (TraceRecord& r : ring_) r = TraceRecord{};
  head_ = 0;
  filled_ = 0;
  scratch_live_ = false;
  seen_.store(0, std::memory_order_relaxed);
  taken_.store(0, std::memory_order_relaxed);
}

std::vector<TraceRecord> PacketTracer::records() const {
  const common::MutexLock lock(mu_);
  std::vector<TraceRecord> out;
  out.reserve(filled_);
  // Oldest record: when the ring has wrapped it sits at head_, otherwise at 0.
  const std::size_t start = filled_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < filled_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

namespace {

std::string ip_str(std::uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 255, (ip >> 16) & 255,
                (ip >> 8) & 255, ip & 255);
  return buf;
}

}  // namespace

std::string PacketTracer::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const TraceRecord& r : records()) {
    if (!first) out += ',';
    first = false;
    out += "{\"seq\":" + std::to_string(r.seq);
    out += ",\"ts_ns\":" + std::to_string(r.ts_ns);
    out += ",\"src\":\"" + ip_str(r.ft.src_ip) + "\"";
    out += ",\"dst\":\"" + ip_str(r.ft.dst_ip) + "\"";
    out += ",\"sport\":" + std::to_string(r.ft.src_port);
    out += ",\"dport\":" + std::to_string(r.ft.dst_port);
    out += ",\"proto\":" + std::to_string(r.ft.protocol);
    out += ",\"compressed_keys\":[";
    bool kf = true;
    for (const GroupKeys& g : r.keys) {
      if (!kf) out += ',';
      kf = false;
      out += "{\"group\":" + std::to_string(g.group) + ",\"keys\":[";
      for (std::size_t i = 0; i < g.unit_keys.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(g.unit_keys[i]);
      }
      out += "]}";
    }
    out += "],\"steps\":[";
    bool sf = true;
    for (const CmuTraceStep& s : r.steps) {
      if (!sf) out += ',';
      sf = false;
      out += "{\"group\":" + std::to_string(s.group);
      out += ",\"cmu\":" + std::to_string(s.cmu);
      out += ",\"task\":" + std::to_string(s.task_id);
      out += ",\"selected_key\":" + std::to_string(s.selected_key);
      out += ",\"sliced_key\":" + std::to_string(s.sliced_key);
      out += ",\"address\":" + std::to_string(s.address);
      out += ",\"op\":\"" + json_escape(s.op) + "\"";
      out += ",\"p1\":" + std::to_string(s.p1);
      out += ",\"p2\":" + std::to_string(s.p2);
      out += ",\"result\":" + std::to_string(s.result);
      out += ",\"aborted\":";
      out += s.aborted ? "true" : "false";
      out += '}';
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace flymon::telemetry
