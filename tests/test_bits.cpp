#include <gtest/gtest.h>

#include "common/bits.hpp"

namespace flymon {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
  EXPECT_TRUE(is_pow2(1ull << 63));
}

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4), 2u);
  EXPECT_EQ(log2_floor(65536), 16u);
  EXPECT_EQ(log2_floor(~0ull), 63u);
}

TEST(Bits, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
  EXPECT_EQ(log2_ceil(65537), 17u);
}

TEST(Bits, Pow2Ceil) {
  EXPECT_EQ(pow2_ceil(1), 1ull);
  EXPECT_EQ(pow2_ceil(2), 2ull);
  EXPECT_EQ(pow2_ceil(3), 4ull);
  EXPECT_EQ(pow2_ceil(1000), 1024ull);
  EXPECT_EQ(pow2_ceil(1024), 1024ull);
}

TEST(Bits, Pow2Floor) {
  EXPECT_EQ(pow2_floor(1), 1ull);
  EXPECT_EQ(pow2_floor(3), 2ull);
  EXPECT_EQ(pow2_floor(1000), 512ull);
  EXPECT_EQ(pow2_floor(1024), 1024ull);
}

TEST(Bits, LeftmostOnePos) {
  EXPECT_EQ(leftmost_one_pos(0), 0u);
  EXPECT_EQ(leftmost_one_pos(0x8000'0000u), 1u);
  EXPECT_EQ(leftmost_one_pos(0x4000'0000u), 2u);
  EXPECT_EQ(leftmost_one_pos(1u), 32u);
  // Narrower width: the position is relative to the value's own width.
  EXPECT_EQ(leftmost_one_pos(0x8000u, 16), 1u);
  EXPECT_EQ(leftmost_one_pos(1u, 16), 16u);
}

TEST(Bits, OneHot32) {
  EXPECT_EQ(one_hot32(0), 1u);
  EXPECT_EQ(one_hot32(5), 32u);
  EXPECT_EQ(one_hot32(31), 0x8000'0000u);
}

TEST(Bits, BitSlice) {
  EXPECT_EQ(bit_slice(0xABCD'1234ull, 0, 16), 0x1234u);
  EXPECT_EQ(bit_slice(0xABCD'1234ull, 16, 16), 0xABCDu);
  EXPECT_EQ(bit_slice(0xFFull, 4, 4), 0xFu);
  EXPECT_EQ(bit_slice(0xFFull, 8, 8), 0u);
  EXPECT_EQ(bit_slice(~0ull, 0, 64), 0xFFFF'FFFFu);  // truncated to 32 bits
}

TEST(Bits, LowMask32) {
  EXPECT_EQ(low_mask32(0), 0u);
  EXPECT_EQ(low_mask32(1), 1u);
  EXPECT_EQ(low_mask32(8), 0xFFu);
  EXPECT_EQ(low_mask32(32), 0xFFFF'FFFFu);
  EXPECT_EQ(low_mask32(33), 0xFFFF'FFFFu);
}

class Pow2Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Pow2Property, CeilFloorBracketValue) {
  const std::uint64_t v = GetParam();
  EXPECT_LE(pow2_floor(v), v);
  EXPECT_GE(pow2_ceil(v), v);
  EXPECT_TRUE(is_pow2(pow2_floor(v)));
  EXPECT_TRUE(is_pow2(pow2_ceil(v)));
  EXPECT_LE(pow2_ceil(v), 2 * pow2_floor(v));
  EXPECT_EQ(log2_floor(pow2_floor(v)), log2_floor(v));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Pow2Property,
                         ::testing::Values(1, 2, 3, 5, 7, 16, 17, 100, 255, 256, 257,
                                           1023, 1024, 1025, 65535, 65536, 1u << 30));

}  // namespace
}  // namespace flymon
