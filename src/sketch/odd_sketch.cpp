#include "sketch/odd_sketch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace flymon::sketch {

OddSketch::OddSketch(std::uint64_t m_bits) : m_(m_bits) {
  if (m_bits == 0) throw std::invalid_argument("OddSketch: m must be > 0");
  bits_.assign((m_bits + 63) / 64, 0ull);
}

OddSketch OddSketch::with_memory(std::size_t bytes) {
  return OddSketch(std::max<std::uint64_t>(64, std::uint64_t{bytes} * 8));
}

void OddSketch::toggle(KeyBytes key) {
  const std::uint64_t b = row_hash(key, 0, 0x0DD5ull) % m_;
  bits_[b >> 6] ^= (1ull << (b & 63));
}

void OddSketch::load_parity(std::uint64_t idx, bool parity) {
  const std::uint64_t bit = 1ull << (idx & 63);
  if (parity) {
    bits_.at(idx >> 6) |= bit;
  } else {
    bits_.at(idx >> 6) &= ~bit;
  }
}

std::uint64_t OddSketch::odd_bits() const noexcept {
  std::uint64_t z = 0;
  for (std::uint64_t w : bits_) z += static_cast<std::uint64_t>(std::popcount(w));
  return z;
}

double OddSketch::invert(double m, double odd) {
  // E[z] = (m/2)(1 - (1-2/m)^n)  =>  n-hat = -(m/2) ln(1 - 2z/m).
  const double arg = 1.0 - 2.0 * odd / m;
  if (arg <= 0) return m;  // saturated: estimate capped at capacity scale
  return -0.5 * m * std::log(arg);
}

double OddSketch::estimate_size() const {
  return invert(static_cast<double>(m_), static_cast<double>(odd_bits()));
}

double OddSketch::estimate_symmetric_difference(const OddSketch& other) const {
  if (other.m_ != m_) throw std::invalid_argument("OddSketch: geometry mismatch");
  std::uint64_t z = 0;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    z += static_cast<std::uint64_t>(std::popcount(bits_[i] ^ other.bits_[i]));
  }
  return invert(static_cast<double>(m_), static_cast<double>(z));
}

double OddSketch::estimate_jaccard(const OddSketch& other) const {
  const double na = estimate_size();
  const double nb = other.estimate_size();
  const double sd = estimate_symmetric_difference(other);
  const double denom = na + nb + sd;
  if (denom <= 0) return 1.0;
  return std::max(0.0, (na + nb - sd) / denom);
}

void OddSketch::clear() { std::fill(bits_.begin(), bits_.end(), 0ull); }

}  // namespace flymon::sketch
