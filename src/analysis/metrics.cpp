#include "analysis/metrics.hpp"

#include <cmath>

namespace flymon::analysis {

double relative_error(double truth, double estimate) {
  if (truth == 0) return estimate == 0 ? 0.0 : 1.0;
  return std::abs(estimate - truth) / std::abs(truth);
}

double average_relative_error(const std::vector<std::pair<double, double>>& pairs) {
  if (pairs.empty()) return 0.0;
  double sum = 0;
  std::size_t n = 0;
  for (const auto& [truth, est] : pairs) {
    if (truth == 0) continue;
    sum += relative_error(truth, est);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double ClassificationScore::precision() const {
  const std::size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
}

double ClassificationScore::recall() const {
  const std::size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
}

double ClassificationScore::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0 ? 0.0 : 2 * p * r / (p + r);
}

ClassificationScore score_detection(const std::vector<FlowKeyValue>& truth,
                                    const std::vector<FlowKeyValue>& reported) {
  std::unordered_set<FlowKeyValue> truth_set(truth.begin(), truth.end());
  ClassificationScore s;
  std::unordered_set<FlowKeyValue> seen;
  for (const FlowKeyValue& k : reported) {
    if (!seen.insert(k).second) continue;  // dedupe reports
    if (truth_set.count(k)) {
      ++s.true_positives;
    } else {
      ++s.false_positives;
    }
  }
  s.false_negatives = truth_set.size() - s.true_positives;
  return s;
}

double false_positive_rate(std::size_t false_positives, std::size_t negatives_total) {
  return negatives_total == 0
             ? 0.0
             : static_cast<double>(false_positives) / static_cast<double>(negatives_total);
}

}  // namespace flymon::analysis
