# Empty compiler generated dependencies file for fig14b_probabilistic.
# This may be replaced when dependencies are built.
