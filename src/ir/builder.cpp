#include "ir/ir.hpp"

#include <bit>
#include <limits>

#include "control/controller.hpp"
#include "core/flymon_dataplane.hpp"

namespace flymon::ir {
namespace {

using dataplane::StatefulOp;

Interval meta_range(MetaField f) noexcept {
  switch (f) {
    case MetaField::kOne: return Interval::exact(1);
    case MetaField::kWireBytes: return {0, 0xFFFFull};  // jumbo-frame bound
    case MetaField::kQueueLen:
    case MetaField::kQueueDelay:
    case MetaField::kTimestamp: return Interval::full32();
  }
  return Interval::full32();
}

Interval slice_range(const KeySlice& slice) noexcept {
  const unsigned eff = slice.offset >= 32
                           ? 0u
                           : std::min<unsigned>(slice.width, 32u - slice.offset);
  if (eff >= 32) return Interval::full32();
  return {0, (1ull << eff) - 1};
}

Interval param_range(const ParamSelect& sel) noexcept {
  switch (sel.source) {
    case ParamSelect::Source::kConst: return Interval::exact(sel.const_value);
    case ParamSelect::Source::kMeta: return meta_range(sel.meta);
    case ParamSelect::Source::kCompressedKey: return slice_range(sel.slice);
    case ParamSelect::Source::kChain: return Interval::full32();
  }
  return Interval::full32();
}

ParamExpr lower_param(const ParamSelect& sel) {
  ParamExpr p;
  p.source = sel.source;
  p.range = param_range(sel);
  p.chain_derived = sel.source == ParamSelect::Source::kChain;
  return p;
}

/// The preparation stage rewrites p1 before the SALU sees it.
void apply_prep(PrepFn prep, ParamExpr& p1) {
  switch (prep) {
    case PrepFn::kNone:
      break;
    case PrepFn::kCouponOneHot:
    case PrepFn::kBitSelectOneHot:
    case PrepFn::kBitSelectOneHotGated:
      // One-hot rewrite (or 0 when the update aborts).
      p1.range = {0, 1ull << 31};
      break;
    case PrepFn::kSubtractGated:
    case PrepFn::kKeepOnChainZero:
      // Gated passthrough / saturating subtraction: never exceeds p1.
      p1.range.lo = 0;
      break;
  }
}

KeyExpr lower_key(const CompressionStage& comp, const CompressedKeySelector& sel,
                  const KeySlice& slice) {
  KeyExpr k;
  k.sel = sel;
  k.slice = slice;
  auto unit_sources = [&](std::int8_t u) -> std::optional<KeyBitSet> {
    if (u < 0 || static_cast<unsigned>(u) >= comp.num_units()) return std::nullopt;
    const auto& spec = comp.spec_of(static_cast<unsigned>(u));
    if (!spec) return std::nullopt;
    return spec_bits(*spec);
  };
  if (sel.unit_a >= 0 && sel.unit_a == sel.unit_b) {
    // XOR of a unit with itself: the dynamic key is the constant 0.
    k.self_cancelling = true;
    return k;
  }
  const auto a = unit_sources(sel.unit_a);
  if (!a) {
    k.reads_unconfigured = sel.unit_a >= 0;
    return k;
  }
  k.sources = *a;
  if (sel.unit_b >= 0) {
    const auto b = unit_sources(sel.unit_b);
    if (!b) {
      k.reads_unconfigured = true;
      return k;
    }
    // CRC32 fully diffuses its unmasked input bits, so the XOR of two
    // distinct units depends on the union of both masks.
    k.sources |= *b;
  }
  return k;
}

AddressExpr lower_address(const KeySlice& slice, const MemoryPartition& part,
                          std::uint64_t register_size) {
  AddressExpr a;
  a.eff_width = slice.offset >= 32
                    ? 0u
                    : std::min<unsigned>(slice.width, 32u - slice.offset);
  a.in_bounds = part.size != 0 && std::has_single_bit(part.size) &&
                static_cast<std::uint64_t>(part.base) + part.size <= register_size;
  if (part.size == 0) {
    a.reachable_cells = 0;
    return a;
  }
  const unsigned size_log =
      static_cast<unsigned>(std::bit_width(part.size)) - 1u;
  // translate_address keeps the top size_log slice bits when the slice is
  // wide enough; a narrower slice indexes the low cells only.
  a.reachable_cells = a.eff_width >= size_log
                          ? part.size
                          : (1ull << a.eff_width);
  return a;
}

}  // namespace

KeyBitSet key_bits(const CandidateKey& mask) noexcept {
  KeyBitSet bits;
  for (std::size_t byte = 0; byte < mask.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      if (mask[byte] & (1u << bit)) bits.set(byte * 8 + bit);
    }
  }
  return bits;
}

KeyBitSet spec_bits(const FlowKeySpec& spec) noexcept {
  return key_bits(spec.mask());
}

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return s < a ? std::numeric_limits<std::uint64_t>::max() : s;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<std::uint64_t>::max() / b) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

const HashUnitNode* PipelineIr::unit(unsigned group, unsigned unit) const noexcept {
  const std::size_t i =
      static_cast<std::size_t>(group) * units_per_group + unit;
  return i < units.size() ? &units[i] : nullptr;
}

const EntryNode* PipelineIr::find_entry(unsigned group, unsigned cmu,
                                        std::uint32_t phys_id) const noexcept {
  for (const EntryNode& e : entries) {
    if (e.group == group && e.cmu == cmu && e.phys_id == phys_id) return &e;
  }
  return nullptr;
}

PipelineIr extract_ir(const FlyMonDataPlane& dp, const control::Controller* ctl,
                      std::uint64_t packets_per_epoch) {
  PipelineIr irx;
  irx.packets_per_epoch = packets_per_epoch;
  if (dp.num_groups() == 0) return irx;
  irx.units_per_group = dp.group(0).compression().num_units();

  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    const CompressionStage& comp = dp.group(g).compression();
    for (unsigned u = 0; u < comp.num_units(); ++u) {
      HashUnitNode n;
      n.group = g;
      n.unit = u;
      const auto& spec = comp.spec_of(u);
      n.configured = spec.has_value();
      if (spec) {
        n.spec = *spec;
        n.sources = spec_bits(*spec);
      }
      irx.units.push_back(std::move(n));
    }
  }

  for_each_installed_entry(
      dp, [&](unsigned g, unsigned c, const Cmu& cmu, const CmuTaskEntry& e) {
        EntryNode n;
        n.group = g;
        n.cmu = c;
        n.phys_id = e.task_id;
        n.key = lower_key(dp.group(g).compression(), e.key_sel, e.key_slice);
        n.p1 = lower_param(e.p1);
        n.p2 = lower_param(e.p2);
        n.prep = e.prep;
        apply_prep(e.prep, n.p1);
        n.chained = n.p1.chain_derived || n.p2.chain_derived ||
                    e.chain_out != 0 || e.chain_gate != 0 || e.chain_fallback ||
                    e.prep == PrepFn::kSubtractGated ||
                    e.prep == PrepFn::kKeepOnChainZero ||
                    e.prep == PrepFn::kBitSelectOneHotGated;
        n.op = e.op;
        n.partition = e.partition;
        n.value_mask = cmu.reg().value_mask();
        n.register_size = cmu.reg().size();
        n.address = lower_address(e.key_slice, e.partition, n.register_size);
        irx.entries.push_back(std::move(n));
      });

  if (ctl != nullptr) {
    for (const std::uint32_t id : ctl->task_ids()) {
      const control::DeployedTask* t = ctl->task(id);
      if (t == nullptr) continue;
      TaskNode tn;
      tn.id = id;
      tn.algorithm = t->algorithm;
      tn.spec = t->spec;
      tn.buckets = t->buckets;
      tn.rows = static_cast<unsigned>(t->rows.size());
      for (std::size_t r = 0; r < t->rows.size(); ++r) {
        for (const control::UnitPlacement& up : t->rows[r].units) {
          for (std::size_t i = 0; i < irx.entries.size(); ++i) {
            EntryNode& en = irx.entries[i];
            if (en.group == up.group && en.cmu == up.cmu &&
                en.phys_id == up.phys_id) {
              en.owned = true;
              en.task_id = id;
              en.row = r;
              tn.entries.push_back(i);
            }
          }
        }
      }
      irx.tasks.push_back(std::move(tn));
    }
  }
  return irx;
}

}  // namespace flymon::ir
