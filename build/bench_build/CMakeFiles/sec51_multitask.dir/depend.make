# Empty dependencies file for sec51_multitask.
# This may be replaced when dependencies are built.
