// The FlyMon data plane: a set of cross-stacked CMU Groups processed in
// pipeline order, sharing one PHV context per packet so CMUs in later
// groups can consume results of earlier ones (SuMax chaining, max
// inter-arrival, Counter Braids carries).
#pragma once

#include <cstdint>
#include <vector>

#include "core/cmu_group.hpp"

namespace flymon {

class FlyMonDataPlane {
 public:
  explicit FlyMonDataPlane(unsigned num_groups = 9, const CmuGroupConfig& cfg = {});

  unsigned num_groups() const noexcept { return static_cast<unsigned>(groups_.size()); }
  CmuGroup& group(unsigned i) { return groups_.at(i); }
  const CmuGroup& group(unsigned i) const { return groups_.at(i); }

  /// Process one packet through every group in pipeline order.
  void process(const Packet& pkt);

  /// Process a whole trace.
  template <typename Range>
  void process_all(const Range& trace) {
    for (const Packet& p : trace) process(p);
  }

  std::uint64_t packets_processed() const noexcept { return packets_; }

  /// Clear all registers (start of a measurement epoch).
  void clear_registers();

 private:
  std::vector<CmuGroup> groups_;
  std::uint64_t packets_ = 0;
};

}  // namespace flymon
