#include "sketch/beaucoup.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace flymon::sketch {

double CouponConfig::expected_items_to_collect(unsigned j) const {
  // Each distinct item draws coupon i (uniform among c) with probability p.
  // E[items to go from i collected to i+1] = 1 / (p * (c - i)).
  double e = 0;
  for (unsigned i = 0; i < j && i < num_coupons; ++i) {
    e += 1.0 / (draw_probability * (num_coupons - i));
  }
  return e;
}

CouponConfig CouponConfig::for_threshold(double threshold, unsigned c, unsigned ct) {
  if (threshold < 1 || c == 0 || c > 32 || ct == 0 || ct > c)
    throw std::invalid_argument("CouponConfig::for_threshold");
  CouponConfig cfg;
  cfg.num_coupons = c;
  cfg.collect_threshold = ct;
  double harmonic = 0;
  for (unsigned i = 0; i < ct; ++i) harmonic += 1.0 / (c - i);
  cfg.draw_probability = std::min(1.0 / c, harmonic / threshold);
  return cfg;
}

BeauCoupTable::BeauCoupTable(std::uint32_t num_slots, CouponConfig cfg,
                             unsigned table_id, bool use_checksum)
    : slots_(num_slots), cfg_(cfg), table_id_(table_id), use_checksum_(use_checksum) {
  if (num_slots == 0) throw std::invalid_argument("BeauCoupTable: zero slots");
}

BeauCoupTable BeauCoupTable::with_memory(std::size_t bytes, CouponConfig cfg,
                                         unsigned table_id, bool use_checksum) {
  // A slot is 8 B with checksum (32b checksum + 32b bitmap), 4 B without.
  const std::size_t slot_bytes = use_checksum ? 8 : 4;
  const std::size_t n = std::max<std::size_t>(1, bytes / slot_bytes);
  return BeauCoupTable(static_cast<std::uint32_t>(n), cfg, table_id, use_checksum);
}

std::optional<unsigned> BeauCoupTable::draw_coupon(KeyBytes attr_value) const {
  // A single hash of the attribute value decides draw-or-not and which
  // coupon: the value space [0,1) is split into c windows of width p.
  const std::uint64_t h = row_hash(attr_value, table_id_, 0xC0570ull);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double total = cfg_.draw_probability * cfg_.num_coupons;
  if (u >= total) return std::nullopt;
  const auto idx = static_cast<unsigned>(u / cfg_.draw_probability);
  return std::min(idx, cfg_.num_coupons - 1);
}

void BeauCoupTable::update(KeyBytes flow_key, KeyBytes attr_value) {
  const auto coupon = draw_coupon(attr_value);
  if (!coupon) return;
  const std::uint64_t kh = row_hash(flow_key, table_id_, 0x5107ull);
  Slot& s = slots_[kh % slots_.size()];
  const auto csum = static_cast<std::uint32_t>(row_hash(flow_key, table_id_, 0xC5D7ull));
  if (!s.occupied) {
    s.occupied = true;
    s.checksum = csum;
    s.bitmap = 0;
  } else if (use_checksum_ && s.checksum != csum) {
    return;  // collision: original BeauCoup drops the update
  }
  s.bitmap |= (1u << *coupon);
}

unsigned BeauCoupTable::coupons(KeyBytes flow_key) const {
  const std::uint64_t kh = row_hash(flow_key, table_id_, 0x5107ull);
  const Slot& s = slots_[kh % slots_.size()];
  if (!s.occupied) return 0;
  if (use_checksum_) {
    const auto csum = static_cast<std::uint32_t>(row_hash(flow_key, table_id_, 0xC5D7ull));
    if (s.checksum != csum) return 0;
  }
  return static_cast<unsigned>(std::popcount(s.bitmap));
}

double BeauCoupTable::estimate(KeyBytes flow_key) const {
  return cfg_.expected_items_to_collect(coupons(flow_key));
}

std::size_t BeauCoupTable::reported_slots() const {
  std::size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.occupied &&
        static_cast<unsigned>(std::popcount(s.bitmap)) >= cfg_.collect_threshold)
      ++n;
  }
  return n;
}

std::size_t BeauCoupTable::memory_bytes() const noexcept {
  return slots_.size() * (use_checksum_ ? 8 : 4);
}

void BeauCoupTable::clear() { std::fill(slots_.begin(), slots_.end(), Slot{}); }

BeauCoup::BeauCoup(unsigned d, std::uint32_t slots_per_table, CouponConfig cfg,
                   bool use_checksum)
    : cfg_(cfg) {
  if (d == 0) throw std::invalid_argument("BeauCoup: d must be > 0");
  tables_.reserve(d);
  for (unsigned i = 0; i < d; ++i) tables_.emplace_back(slots_per_table, cfg, i, use_checksum);
}

BeauCoup BeauCoup::with_memory(unsigned d, std::size_t total_bytes, CouponConfig cfg,
                               bool use_checksum) {
  const std::size_t slot_bytes = use_checksum ? 8 : 4;
  const std::size_t per_table = std::max<std::size_t>(1, total_bytes / (d * slot_bytes));
  return BeauCoup(d, static_cast<std::uint32_t>(per_table), cfg, use_checksum);
}

void BeauCoup::update(KeyBytes flow_key, KeyBytes attr_value) {
  for (auto& t : tables_) t.update(flow_key, attr_value);
}

bool BeauCoup::reported(KeyBytes flow_key) const {
  for (const auto& t : tables_) {
    if (t.coupons(flow_key) < cfg_.collect_threshold) return false;
  }
  return true;
}

double BeauCoup::estimate(KeyBytes flow_key) const {
  double best = std::numeric_limits<double>::max();
  for (const auto& t : tables_) best = std::min(best, t.estimate(flow_key));
  return best;
}

std::size_t BeauCoup::memory_bytes() const noexcept {
  std::size_t s = 0;
  for (const auto& t : tables_) s += t.memory_bytes();
  return s;
}

void BeauCoup::clear() {
  for (auto& t : tables_) t.clear();
}

}  // namespace flymon::sketch
