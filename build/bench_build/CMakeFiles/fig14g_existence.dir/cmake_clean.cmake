file(REMOVE_RECURSE
  "../bench/fig14g_existence"
  "../bench/fig14g_existence.pdb"
  "CMakeFiles/fig14g_existence.dir/fig14g_existence.cpp.o"
  "CMakeFiles/fig14g_existence.dir/fig14g_existence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14g_existence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
