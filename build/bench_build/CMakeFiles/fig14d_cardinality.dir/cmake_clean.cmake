file(REMOVE_RECURSE
  "../bench/fig14d_cardinality"
  "../bench/fig14d_cardinality.pdb"
  "CMakeFiles/fig14d_cardinality.dir/fig14d_cardinality.cpp.o"
  "CMakeFiles/fig14d_cardinality.dir/fig14d_cardinality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14d_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
