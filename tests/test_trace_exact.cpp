#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <unistd.h>
#include <unordered_set>

#include "packet/exact.hpp"
#include "packet/trace_gen.hpp"
#include "packet/trace_io.hpp"

namespace flymon {
namespace {

// -------- trace generation --------

TEST(TraceGen, ProducesRequestedCounts) {
  TraceConfig cfg;
  cfg.num_flows = 100;
  cfg.num_packets = 5000;
  const auto trace = TraceGenerator::generate(cfg);
  EXPECT_EQ(trace.size(), 5000u);
  EXPECT_LE(ExactStats::cardinality(trace, FlowKeySpec::five_tuple()), 100u);
}

TEST(TraceGen, DeterministicBySeed) {
  TraceConfig cfg;
  cfg.num_flows = 50;
  cfg.num_packets = 500;
  const auto a = TraceGenerator::generate(cfg);
  const auto b = TraceGenerator::generate(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ft, b[i].ft);
    EXPECT_EQ(a[i].ts_ns, b[i].ts_ns);
  }
}

TEST(TraceGen, SeedsChangeTrace) {
  TraceConfig cfg;
  cfg.num_flows = 50;
  cfg.num_packets = 500;
  const auto a = TraceGenerator::generate(cfg);
  cfg.seed = 999;
  const auto b = TraceGenerator::generate(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_diff |= !(a[i].ft == b[i].ft);
  EXPECT_TRUE(any_diff);
}

TEST(TraceGen, TimestampsNonDecreasing) {
  TraceConfig cfg;
  cfg.num_packets = 2000;
  const auto trace = TraceGenerator::generate(cfg);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].ts_ns, trace[i].ts_ns + cfg.duration_ns / cfg.num_packets);
  }
}

TEST(TraceGen, ZipfSkewProducesElephants) {
  TraceConfig cfg;
  cfg.num_flows = 1000;
  cfg.num_packets = 100'000;
  cfg.zipf_alpha = 1.2;
  const auto trace = TraceGenerator::generate(cfg);
  const FreqMap freq = ExactStats::frequency(trace, FlowKeySpec::five_tuple());
  std::uint64_t biggest = 0;
  for (const auto& [k, f] : freq) biggest = std::max(biggest, f);
  EXPECT_GT(biggest, 100'000u / 100) << "top flow should dominate under Zipf";
}

TEST(TraceGen, DdosInjectionCreatesVictims) {
  TraceConfig cfg;
  cfg.num_flows = 100;
  cfg.num_packets = 1000;
  auto trace = TraceGenerator::generate(cfg);
  DdosConfig ddos;
  ddos.num_victims = 3;
  ddos.spreaders_per_victim = 700;
  TraceGenerator::inject_ddos(trace, ddos, cfg.duration_ns);
  const FreqMap spread =
      ExactStats::distinct(trace, FlowKeySpec::dst_ip(), FlowKeySpec::src_ip());
  EXPECT_EQ(ExactStats::over_threshold(spread, 512).size(), 3u);
}

TEST(TraceGen, SpikeAddsFlowsInWindow) {
  TraceConfig cfg;
  cfg.num_flows = 100;
  cfg.num_packets = 1000;
  auto trace = TraceGenerator::generate(cfg);
  const auto before = ExactStats::cardinality(trace, FlowKeySpec::five_tuple());
  TraceGenerator::inject_spike(trace, 500, 100'000'000, 200'000'000, 5);
  const auto after = ExactStats::cardinality(trace, FlowKeySpec::five_tuple());
  EXPECT_GE(after, before + 400);
  // Spike packets live inside the window.
  for (const Packet& p : TraceGenerator::slice(trace, 200'000'000, cfg.duration_ns)) {
    EXPECT_NE((p.ft.src_ip >> 24), 0x2Du) << "spike flow outside its window";
  }
}

TEST(TraceGen, SliceBoundaries) {
  TraceConfig cfg;
  cfg.num_packets = 1000;
  cfg.duration_ns = 1'000'000;
  const auto trace = TraceGenerator::generate(cfg);
  const auto sl = TraceGenerator::slice(trace, 200'000, 400'000);
  for (const Packet& p : sl) {
    EXPECT_GE(p.ts_ns, 200'000u);
    EXPECT_LT(p.ts_ns, 400'000u);
  }
  EXPECT_FALSE(sl.empty());
}

// -------- exact statistics --------

Packet mk(std::uint32_t src, std::uint32_t dst, std::uint64_t ts = 0,
          std::uint32_t bytes = 100, std::uint32_t qlen = 0) {
  Packet p;
  p.ft.src_ip = src;
  p.ft.dst_ip = dst;
  p.ft.protocol = 6;
  p.ts_ns = ts;
  p.wire_bytes = bytes;
  p.queue_len = qlen;
  return p;
}

TEST(ExactStats, FrequencyCountsPackets) {
  std::vector<Packet> t = {mk(1, 9), mk(1, 9), mk(2, 9)};
  const FreqMap f = ExactStats::frequency(t, FlowKeySpec::src_ip());
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.at(extract_flow_key(t[0], FlowKeySpec::src_ip())), 2u);
}

TEST(ExactStats, FrequencySumsBytes) {
  std::vector<Packet> t = {mk(1, 9, 0, 100), mk(1, 9, 0, 250)};
  const FreqMap f = ExactStats::frequency(t, FlowKeySpec::src_ip(), MetaField::kWireBytes);
  EXPECT_EQ(f.at(extract_flow_key(t[0], FlowKeySpec::src_ip())), 350u);
}

TEST(ExactStats, DistinctCountsUniqueParams) {
  std::vector<Packet> t = {mk(1, 9), mk(2, 9), mk(2, 9), mk(3, 9), mk(1, 8)};
  const FreqMap d = ExactStats::distinct(t, FlowKeySpec::dst_ip(), FlowKeySpec::src_ip());
  EXPECT_EQ(d.at(extract_flow_key(t[0], FlowKeySpec::dst_ip())), 3u);
  EXPECT_EQ(d.at(extract_flow_key(t[4], FlowKeySpec::dst_ip())), 1u);
}

TEST(ExactStats, MaxValue) {
  std::vector<Packet> t = {mk(1, 9, 0, 100, 5), mk(1, 9, 0, 100, 42), mk(1, 9, 0, 100, 7)};
  const FreqMap m = ExactStats::max_value(t, FlowKeySpec::src_ip(), MetaField::kQueueLen);
  EXPECT_EQ(m.at(extract_flow_key(t[0], FlowKeySpec::src_ip())), 42u);
}

TEST(ExactStats, MaxInterarrival) {
  std::vector<Packet> t = {mk(1, 9, 1000), mk(1, 9, 5000), mk(1, 9, 6000), mk(2, 9, 0)};
  const FreqMap g = ExactStats::max_interarrival(t, FlowKeySpec::src_ip());
  EXPECT_EQ(g.at(extract_flow_key(t[0], FlowKeySpec::src_ip())), 4000u);
  EXPECT_EQ(g.at(extract_flow_key(t[3], FlowKeySpec::src_ip())), 0u);
}

TEST(ExactStats, Cardinality) {
  std::vector<Packet> t = {mk(1, 9), mk(1, 9), mk(2, 9), mk(3, 7)};
  EXPECT_EQ(ExactStats::cardinality(t, FlowKeySpec::src_ip()), 3u);
  EXPECT_EQ(ExactStats::cardinality(t, FlowKeySpec::dst_ip()), 2u);
}

TEST(ExactStats, SizeDistribution) {
  std::vector<Packet> t = {mk(1, 9), mk(1, 9), mk(2, 9), mk(3, 9)};
  const auto dist =
      ExactStats::size_distribution(ExactStats::frequency(t, FlowKeySpec::src_ip()));
  EXPECT_EQ(dist.at(1), 2u);  // two flows of size 1
  EXPECT_EQ(dist.at(2), 1u);  // one flow of size 2
}

TEST(ExactStats, EntropyUniformFlows) {
  // Four flows of equal size: H = ln(4).
  std::vector<Packet> t = {mk(1, 9), mk(2, 9), mk(3, 9), mk(4, 9)};
  const double h = ExactStats::flow_entropy(ExactStats::frequency(t, FlowKeySpec::src_ip()));
  EXPECT_NEAR(h, std::log(4.0), 1e-9);
}

TEST(ExactStats, EntropySingleFlowIsZero) {
  std::vector<Packet> t = {mk(1, 9), mk(1, 9), mk(1, 9)};
  EXPECT_NEAR(ExactStats::flow_entropy(ExactStats::frequency(t, FlowKeySpec::src_ip())),
              0.0, 1e-12);
}

// -------- trace persistence --------

class TraceIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "flymon_trace_io_test.bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceIoTest, RoundTrip) {
  TraceConfig cfg;
  cfg.num_flows = 50;
  cfg.num_packets = 500;
  const auto original = TraceGenerator::generate(cfg);
  TraceIo::save(path_, original);
  const auto loaded = TraceIo::load(path_);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].ft, original[i].ft);
    EXPECT_EQ(loaded[i].ts_ns, original[i].ts_ns);
    EXPECT_EQ(loaded[i].wire_bytes, original[i].wire_bytes);
    EXPECT_EQ(loaded[i].queue_len, original[i].queue_len);
    EXPECT_EQ(loaded[i].queue_delay_ns, original[i].queue_delay_ns);
  }
}

TEST_F(TraceIoTest, EmptyTrace) {
  TraceIo::save(path_, {});
  EXPECT_TRUE(TraceIo::load(path_).empty());
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(TraceIo::load("/nonexistent/nope.bin"), std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicRejected) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[32] = "definitely not a trace file....";
  std::fwrite(junk, 1, sizeof junk, f);
  std::fclose(f);
  EXPECT_THROW(TraceIo::load(path_), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedFileRejected) {
  TraceConfig cfg;
  cfg.num_flows = 10;
  cfg.num_packets = 100;
  TraceIo::save(path_, TraceGenerator::generate(cfg));
  // Truncate in the middle of the records.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  ASSERT_EQ(truncate(path_.c_str(), 16 + 50), 0);
  EXPECT_THROW(TraceIo::load(path_), std::runtime_error);
}

TEST(ExactStats, OverThreshold) {
  std::vector<Packet> t = {mk(1, 9), mk(1, 9), mk(1, 9), mk(2, 9)};
  const FreqMap f = ExactStats::frequency(t, FlowKeySpec::src_ip());
  EXPECT_EQ(ExactStats::over_threshold(f, 3).size(), 1u);
  EXPECT_EQ(ExactStats::over_threshold(f, 1).size(), 2u);
  EXPECT_EQ(ExactStats::over_threshold(f, 99).size(), 0u);
}

}  // namespace
}  // namespace flymon
