#include "exec/exec_plan.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "exec/plan_cell.hpp"
#include "trace/stage_profiler.hpp"

namespace flymon::exec {

bool PlanCell::store_if_newer(std::shared_ptr<const ExecPlan> next) noexcept {
  {
    common::MutexLock lk(mu_);
    if (plan_ == nullptr || next == nullptr ||
        next->generation() > plan_->generation()) {
      plan_.swap(next);  // `next` now carries the displaced snapshot
    } else {
      return false;  // stale publish: keep the newer snapshot
    }
  }
  return true;
}

namespace {

inline std::uint32_t resolve(const CompiledParam& p, const Packet& pkt,
                             const std::uint32_t* lanes,
                             const std::uint32_t* chains) noexcept {
  switch (p.kind) {
    case CompiledParam::Kind::kConst:
      return p.value;
    case CompiledParam::Kind::kMeta:
      return static_cast<std::uint32_t>(read_meta(pkt, p.meta));
    case CompiledParam::Kind::kKey:
      return ((lanes[p.slot_a] ^ lanes[p.slot_b]) >> p.shift) & p.mask;
    case CompiledParam::Kind::kChain:
      return chains[p.value];
  }
  return 0;
}

}  // namespace

const char* to_string(MergeKind k) noexcept {
  switch (k) {
    case MergeKind::kSum: return "sum";
    case MergeKind::kMax: return "max";
    case MergeKind::kOr: return "or";
    case MergeKind::kXor: return "xor";
  }
  return "?";
}

const char* to_string(MergeBlockerKind k) noexcept {
  switch (k) {
    case MergeBlockerKind::kChainOutput: return "chain_output";
    case MergeBlockerKind::kGatedCondAdd: return "gated_cond_add";
    case MergeBlockerKind::kAndMode: return "and_mode";
    case MergeBlockerKind::kMixedWindow: return "mixed_window";
  }
  return "?";
}

template <bool kProfiled>
void ExecPlan::run_cmu(const CompiledCmu& cmu, dataplane::RegisterArray& reg,
                       const Packet& pkt, const CandidateKey& key,
                       const std::uint32_t* lanes, std::uint32_t* chains,
                       std::uint64_t& updates, std::uint64_t& sampled_out,
                       std::uint64_t& prep_aborts,
                       std::array<std::uint64_t, 5>& op_counts,
                       [[maybe_unused]] trace::BatchStageSample* prof) const {
  // Stage lap timer: compiles to nothing in the <false> instantiation, so
  // the un-sampled hot path is the exact pre-profiler code.
  [[maybe_unused]] std::uint64_t lap_t = 0;
  if constexpr (kProfiled) lap_t = trace::now_cycles();
  const auto lap = [&]([[maybe_unused]] trace::Stage st,
                       [[maybe_unused]] std::uint64_t items) {
    if constexpr (kProfiled) {
      const std::uint64_t now = trace::now_cycles();
      prof->add(st, now - lap_t, items);
      lap_t = now;
    }
  };

  for (std::uint32_t i = cmu.entry_begin; i < cmu.entry_end; ++i) {
    const CompiledEntry& e = entries_[i];

    // Initialization: filter match (first match wins) + sampling coin.
    if (((pkt.ft.src_ip ^ e.filter_src_ip) & e.filter_src_mask) != 0) {
      lap(trace::Stage::kFilter, 1);
      continue;
    }
    if (((pkt.ft.dst_ip ^ e.filter_dst_ip) & e.filter_dst_mask) != 0) {
      lap(trace::Stage::kFilter, 1);
      continue;
    }
    if (e.sampled) {
      const std::uint64_t h = hash64(
          std::span<const std::uint8_t>(key.data(), key.size()), e.sample_seed);
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (u >= e.sample_probability) {
        ++sampled_out;
        lap(trace::Stage::kFilter, 1);
        continue;  // next matching task may run
      }
    }
    lap(trace::Stage::kFilter, 1);

    // Preparation: pre-shifted address translation + parameter resolution.
    const std::uint32_t selected = lanes[e.key_slot_a] ^ lanes[e.key_slot_b];
    const std::uint32_t sliced = (selected >> e.key_shift) & e.key_mask;
    const std::uint32_t addr =
        e.addr_base + ((sliced >> e.addr_shift) & e.addr_mask);
    std::uint32_t p1 = resolve(e.p1, pkt, lanes, chains);
    std::uint32_t p2 = resolve(e.p2, pkt, lanes, chains);
    const std::uint32_t p2_raw = p2;

    switch (e.prep) {
      case PrepFn::kNone:
        break;
      case PrepFn::kCouponOneHot: {
        p1 ^= (p1 >> 16) | (p1 << 16);
        const double u = static_cast<double>(p1) * 0x1.0p-32;
        if (u >= e.coupon_total) {  // no coupon drawn: no update
          ++prep_aborts;
          lap(trace::Stage::kAddress, 1);
          return;
        }
        const auto idx =
            std::min<unsigned>(static_cast<unsigned>(u / e.coupon_probability),
                               e.coupon_count - 1);
        p1 = 1u << idx;
        p2 = 1;
        break;
      }
      case PrepFn::kBitSelectOneHot:
        p1 = 1u << (p1 & 31u);
        p2 = 1;
        break;
      case PrepFn::kSubtractGated: {
        const std::uint32_t gate = chains[e.gate_chain];
        p1 = gate != 0 ? (p1 > p2 ? p1 - p2 : 0u) : 0u;
        p2 = 0;
        break;
      }
      case PrepFn::kKeepOnChainZero:
        if (chains[e.gate_chain] != 0) p1 = 0;
        break;
      case PrepFn::kBitSelectOneHotGated:
        p1 = chains[e.gate_chain] == 0 ? (1u << (p1 & 31u)) : 0u;
        break;
    }
    lap(trace::Stage::kAddress, 1);

    // Operation: inlined SALU semantics (same arithmetic as Salu::execute,
    // on the shared register, without touching any mutable SALU state).
    const std::uint32_t mask = e.value_mask;
    const std::uint32_t cur = reg.load_relaxed(addr);
    std::uint32_t result = 0;
    switch (e.op) {
      case dataplane::StatefulOp::kNop:
        result = cur;
        break;
      case dataplane::StatefulOp::kCondAdd:
        if (cur < p2) {
          const std::uint64_t sum = std::uint64_t{cur} + p1;
          const std::uint32_t next =
              sum > mask ? mask : static_cast<std::uint32_t>(sum);
          reg.store_relaxed(addr, next & mask);
          result = next;
        }
        break;
      case dataplane::StatefulOp::kMax:
        if (cur < (p1 & mask)) {
          reg.store_relaxed(addr, p1 & mask);
          result = p1 & mask;
        }
        break;
      case dataplane::StatefulOp::kAndOr: {
        const std::uint32_t next = (p2 == 0) ? (cur & p1) : (cur | p1);
        reg.store_relaxed(addr, next & mask);
        result = next;
        break;
      }
      case dataplane::StatefulOp::kXor: {
        const std::uint32_t next = cur ^ (p1 & mask);
        reg.store_relaxed(addr, next & mask);
        result = next;
        break;
      }
    }

    std::uint32_t out = result;
    if (e.output_old_value) {
      out = e.one_hot_export ? ((cur & p1) != 0 ? 1u : 0u) : cur;
    }
    if (e.chain_out != kNoChain) {
      chains[e.chain_out] = (e.chain_fallback && result == 0) ? p2_raw : out;
    }
    ++updates;
    ++op_counts[static_cast<std::size_t>(e.op)];
    lap(trace::Stage::kSalu, 1);
    return;  // at most one entry executes per CMU per packet
  }
}

void ExecPlan::run_batch(std::span<const Packet> pkts, BatchScratch& s) const {
  if (trace::StageProfiler::global().sample_batch()) {
    run_batch_impl<true>(pkts, s, nullptr);
  } else {
    run_batch_impl<false>(pkts, s, nullptr);
  }
}

void ExecPlan::run_batch_sharded(std::span<const Packet> pkts, BatchScratch& s,
                                 const ShardBinding& binding) const {
  if (trace::StageProfiler::global().sample_batch()) {
    run_batch_impl<true>(pkts, s, &binding);
  } else {
    run_batch_impl<false>(pkts, s, &binding);
  }
}

template <bool kProfiled>
void ExecPlan::run_batch_impl(std::span<const Packet> pkts, BatchScratch& s,
                              const ShardBinding* b) const {
  const std::size_t n = pkts.size();
  if (n == 0) return;
  const std::size_t num_slots = slots_.size();
  const std::size_t num_chains = chain_count_;

  trace::BatchStageSample sample;
  trace::BatchStageSample* const prof = kProfiled ? &sample : nullptr;
  [[maybe_unused]] std::uint64_t t0 = 0;
  if constexpr (kProfiled) t0 = trace::now_cycles();

  // Compression stage, batched: serialize and hash every packet up front.
  // Lane 0 stays zero (the "unconfigured unit / no selector" lane).
  s.keys.resize(n);
  s.lanes.assign(n * num_slots, 0u);
  s.chains.assign(n * num_chains, 0u);
  for (std::size_t p = 0; p < n; ++p) {
    s.keys[p] = serialize_candidate_key(pkts[p]);
    std::uint32_t* lane = &s.lanes[p * num_slots];
    for (std::size_t sl = 1; sl < num_slots; ++sl) {
      lane[sl] = slots_[sl].unit.compute(s.keys[p]);
    }
  }
  if constexpr (kProfiled) {
    sample.add(trace::Stage::kCompression, trace::now_cycles() - t0, n);
  }

  // Attribute stages, group-major.  Within a CMU packets run in trace
  // order, so final register state is byte-identical to per-packet
  // processing; chain channels are per-packet, so reordering across CMUs
  // of different packets cannot be observed.  Counter totals aggregate per
  // batch and flush once — into the shared atomics on the live path, into
  // the shard's private block (slot layout: see counter_slots()) when a
  // binding is given.
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    const CompiledGroup& g = groups_[gi];
    const std::uint64_t hashes =
        static_cast<std::uint64_t>(n) * g.configured_units;
    if (b != nullptr) {
      b->counters[gi * 2] += n;
      b->counters[gi * 2 + 1] += hashes;
    } else {
      if (g.packets != nullptr) g.packets->inc(n);
      if (g.hashes != nullptr && hashes != 0) g.hashes->inc(hashes);
    }
    for (std::uint32_t c = g.cmu_begin; c < g.cmu_end; ++c) {
      const CompiledCmu& cmu = cmus_[c];
      if (cmu.entry_begin == cmu.entry_end) continue;
      dataplane::RegisterArray& reg = b != nullptr ? *b->regs[c] : *cmu.reg;
      std::uint64_t updates = 0, sampled_out = 0, prep_aborts = 0;
      std::array<std::uint64_t, 5> op_counts{};
      for (std::size_t p = 0; p < n; ++p) {
        run_cmu<kProfiled>(cmu, reg, pkts[p], s.keys[p],
                           &s.lanes[p * num_slots], &s.chains[p * num_chains],
                           updates, sampled_out, prep_aborts, op_counts, prof);
      }
      if (b != nullptr) {
        std::uint64_t* slot = &b->counters[groups_.size() * 2 + c * 8];
        slot[0] += updates;
        slot[1] += sampled_out;
        slot[2] += prep_aborts;
        for (std::size_t op = 0; op < op_counts.size(); ++op) {
          slot[3 + op] += op_counts[op];
        }
        continue;
      }
      // Flush the batch-aggregated counters (Counter::inc self-gates on
      // telemetry::enabled()).
      if (updates != 0 && cmu.updates != nullptr) cmu.updates->inc(updates);
      if (sampled_out != 0 && cmu.sampled_out != nullptr)
        cmu.sampled_out->inc(sampled_out);
      if (prep_aborts != 0 && cmu.prep_aborts != nullptr)
        cmu.prep_aborts->inc(prep_aborts);
      for (std::size_t op = 0; op < op_counts.size(); ++op) {
        if (op_counts[op] != 0 && cmu.op_counters[op] != nullptr) {
          cmu.op_counters[op]->inc(op_counts[op]);
        }
      }
    }
  }

  if constexpr (kProfiled) {
    trace::StageProfiler::global().record_batch(sample);
  }
}

void ExecPlan::flush_counter_block(std::span<std::uint64_t> block) const {
  const auto flush = [&](std::size_t slot, telemetry::Counter* c) {
    if (block[slot] != 0) {
      if (c != nullptr) c->inc(block[slot]);
      block[slot] = 0;
    }
  };
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    flush(gi * 2, groups_[gi].packets);
    flush(gi * 2 + 1, groups_[gi].hashes);
  }
  for (std::size_t c = 0; c < cmus_.size(); ++c) {
    const std::size_t base = groups_.size() * 2 + c * 8;
    flush(base, cmus_[c].updates);
    flush(base + 1, cmus_[c].sampled_out);
    flush(base + 2, cmus_[c].prep_aborts);
    for (std::size_t op = 0; op < 5; ++op) {
      flush(base + 3 + op, cmus_[c].op_counters[op]);
    }
  }
}

}  // namespace flymon::exec
