# Empty compiler generated dependencies file for flymon_shell.
# This may be replaced when dependencies are built.
