file(REMOVE_RECURSE
  "../bench/fig14f_interarrival"
  "../bench/fig14f_interarrival.pdb"
  "CMakeFiles/fig14f_interarrival.dir/fig14f_interarrival.cpp.o"
  "CMakeFiles/fig14f_interarrival.dir/fig14f_interarrival.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14f_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
