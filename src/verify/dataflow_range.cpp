// Value-range analyzer over the pipeline IR: interval analysis of SALU
// parameters proving Cond-ADD counters cannot overflow their register's
// value mask within an epoch, and that address translation lands every
// entry inside its partition with enough sliced-key bits to reach all of
// it (paper §3.3).
#include <string>

#include "ir/ir.hpp"
#include "verify/verifier.hpp"

namespace flymon::verify {
namespace {

std::string cmu_site(unsigned g, unsigned c) {
  return "g" + std::to_string(g) + ".cmu" + std::to_string(c);
}

class DataflowRangeAnalyzer final : public Analyzer {
 public:
  std::string_view name() const noexcept override { return "dataflow-range"; }
  std::string_view description() const noexcept override {
    return "SALU interval analysis: Cond-ADD overflow within an epoch, "
           "address-translation bounds and reachability";
  }

  void run(const VerifyContext& ctx, VerifyReport& report) const override {
    if (ctx.dataplane == nullptr) return;
    const ir::PipelineIr irx =
        ir::extract_ir(*ctx.dataplane, ctx.controller, ctx.packets_per_epoch);
    for (const ir::EntryNode& e : irx.entries) {
      check_overflow(irx, e, report);
      check_address(e, report);
    }
  }

 private:
  /// Cond-ADD adds p1 while the bucket value is below the p2 guard.  The
  /// largest value ever stored is bounded two ways: the guard admits one
  /// final add from just below it (min(p2.hi-1, mask) + p1.hi), and an
  /// epoch admits at most packets_per_epoch increments of p1.hi from zero.
  /// If the tighter of the two still exceeds the register's value mask the
  /// counter wraps mid-epoch and every read-out under-reports.
  void check_overflow(const ir::PipelineIr& irx, const ir::EntryNode& e,
                      VerifyReport& report) const {
    if (e.op != dataplane::StatefulOp::kCondAdd) return;
    // A chain-fed increment is bounded by the upstream stage, not by the
    // packet stream; the interval for it is already the full 32-bit range
    // and flagging it would condemn every composite algorithm.
    if (e.p1.chain_derived) return;
    const std::uint64_t mask = e.value_mask;
    if (mask == 0) return;
    const std::uint64_t guard_hi = e.p2.range.hi == 0 ? 0 : e.p2.range.hi - 1;
    const std::uint64_t guard_bound =
        ir::sat_add(guard_hi < mask ? guard_hi : mask, e.p1.range.hi);
    const std::uint64_t epoch_bound =
        ir::sat_mul(irx.packets_per_epoch, e.p1.range.hi);
    const std::uint64_t reachable =
        guard_bound < epoch_bound ? guard_bound : epoch_bound;
    if (reachable > mask) {
      report.add(Severity::kError, "dataflow.range.overflow",
                 cmu_site(e.group, e.cmu),
                 "task " + std::to_string(e.phys_id) +
                     " Cond-ADD can reach " + std::to_string(reachable) +
                     " within one epoch but the register value mask is " +
                     std::to_string(mask) + "; the counter wraps",
                 "lower the p2 guard or the p1 increment so the maximum "
                 "reachable value fits the value mask");
    }
  }

  void check_address(const ir::EntryNode& e, VerifyReport& report) const {
    const std::string site = cmu_site(e.group, e.cmu);
    const std::string who = "task " + std::to_string(e.phys_id);
    if (!e.address.in_bounds) {
      report.add(Severity::kError, "dataflow.range.address", site,
                 who + " partition [" + std::to_string(e.partition.base) +
                     ", +" + std::to_string(e.partition.size) +
                     ") is not a power-of-two range inside the " +
                     std::to_string(e.register_size) +
                     "-bucket register array",
                 "re-allocate the partition from the buddy allocator");
      return;
    }
    if (e.key.sel.valid() && !e.key.self_cancelling &&
        e.address.reachable_cells < e.partition.size) {
      report.add(Severity::kWarning, "dataflow.range.address", site,
                 who + " key slice yields " +
                     std::to_string(e.address.eff_width) +
                     " effective bits, reaching only " +
                     std::to_string(e.address.reachable_cells) + " of " +
                     std::to_string(e.partition.size) +
                     " partition cells; upper cells stay cold",
                 "widen the key slice or shrink the partition");
    }
  }
};

}  // namespace

std::unique_ptr<Analyzer> make_dataflow_range_analyzer() {
  return std::make_unique<DataflowRangeAnalyzer>();
}

}  // namespace flymon::verify
