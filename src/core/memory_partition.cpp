#include "core/memory_partition.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bits.hpp"

namespace flymon {

std::uint32_t quantize_buckets(std::uint32_t requested, AllocMode mode) noexcept {
  if (requested <= 1) return 1;
  const std::uint32_t up = static_cast<std::uint32_t>(pow2_ceil(requested));
  if (mode == AllocMode::kAccurate) return up;
  const std::uint32_t down = static_cast<std::uint32_t>(pow2_floor(requested));
  // Efficient mode: nearest power of two.
  return (requested - down) <= (up - requested) ? down : up;
}

BuddyAllocator::BuddyAllocator(std::uint32_t total, std::uint32_t min_block)
    : total_(total), min_block_(min_block), free_total_(total) {
  if (!is_pow2(total)) throw std::invalid_argument("BuddyAllocator: total not power of 2");
  if (!is_pow2(min_block) || min_block > total)
    throw std::invalid_argument("BuddyAllocator: bad min_block");
  free_[total].push_back(0);
}

std::optional<MemoryPartition> BuddyAllocator::allocate(std::uint32_t size) {
  if (size == 0 || !is_pow2(size) || size > total_) return std::nullopt;
  size = std::max(size, min_block_);

  // Find the smallest free block >= size.
  auto it = free_.lower_bound(size);
  while (it != free_.end() && it->second.empty()) ++it;
  if (it == free_.end()) return std::nullopt;

  std::uint32_t block_size = it->first;
  std::uint32_t base = it->second.back();
  it->second.pop_back();

  // Split down to the requested size, returning buddies to the free lists.
  while (block_size > size) {
    block_size /= 2;
    free_[block_size].push_back(base + block_size);
  }
  free_total_ -= size;
  live_blocks_.emplace(base, size);
  return MemoryPartition{base, size};
}

void BuddyAllocator::release(const MemoryPartition& p) {
  if (p.size == 0 || !is_pow2(p.size) || p.end() > total_)
    throw std::invalid_argument("BuddyAllocator::release: bad partition");
  // Guard against double release: the block must not already sit (whole or
  // as part of a larger free block) in a free list.
  for (const auto& [size, bases] : free_) {
    for (std::uint32_t b : bases) {
      if (p.base >= b && p.end() <= b + size)
        throw std::logic_error("BuddyAllocator::release: double release");
    }
  }
  // Only exact blocks previously handed out by allocate() may come back.
  const auto lit = live_blocks_.find(p.base);
  if (lit == live_blocks_.end() || lit->second != p.size)
    throw std::logic_error("BuddyAllocator::release: not a live block");
  live_blocks_.erase(lit);
  std::uint32_t base = p.base;
  std::uint32_t size = p.size;
  // Coalesce with the buddy while it is free.
  while (size < total_) {
    const std::uint32_t buddy = base ^ size;
    auto& list = free_[size];
    const auto bit = std::find(list.begin(), list.end(), buddy);
    if (bit == list.end()) break;
    list.erase(bit);
    base = std::min(base, buddy);
    size *= 2;
  }
  free_[size].push_back(base);
  free_total_ += p.size;
}

bool BuddyAllocator::is_live(const MemoryPartition& p) const noexcept {
  const auto it = live_blocks_.find(p.base);
  return it != live_blocks_.end() && it->second == p.size;
}

std::vector<MemoryPartition> BuddyAllocator::live_partitions() const {
  std::vector<MemoryPartition> out;
  out.reserve(live_blocks_.size());
  for (const auto& [base, size] : live_blocks_) out.push_back({base, size});
  return out;
}

std::uint32_t BuddyAllocator::largest_free_block() const noexcept {
  for (auto it = free_.rbegin(); it != free_.rend(); ++it) {
    if (!it->second.empty()) return it->first;
  }
  return 0;
}

}  // namespace flymon
