// Odd Sketch (Mitzenmacher, Pagh & Pham, WWW 2014): an m-bit parity bitmap
// over a *set* — each distinct element toggles one bit.  The XOR of two odd
// sketches is the odd sketch of the symmetric difference, enabling cheap
// set-similarity (Jaccard) estimation.  This is the algorithm the FlyMon
// paper names as the natural use of the reserved XOR stateful operation
// (§6, "Expressiveness of FlyMon").
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/sketch_common.hpp"

namespace flymon::sketch {

class OddSketch {
 public:
  explicit OddSketch(std::uint64_t m_bits);

  static OddSketch with_memory(std::size_t bytes);

  /// Toggle the element's bit.  Callers must insert each set element
  /// exactly once (duplicates cancel) — the FlyMon deployment gates the
  /// toggle behind a Bloom-filter "new flow" check for exactly this reason.
  void toggle(KeyBytes key);

  /// Estimated set size: n-hat = -(m/2) ln(1 - 2z/m), z = #odd bits.
  double estimate_size() const;

  /// Estimated |A (symmetric difference) B| from two same-geometry sketches.
  double estimate_symmetric_difference(const OddSketch& other) const;

  /// Jaccard similarity J = (|A|+|B|-|AdB|) / (|A|+|B|+|AdB|).
  double estimate_jaccard(const OddSketch& other) const;

  std::uint64_t bit_count() const noexcept { return m_; }
  std::uint64_t odd_bits() const noexcept;
  std::size_t memory_bytes() const noexcept { return bits_.size() * 8; }
  void clear();

  /// Load a raw parity bit collected from a FlyMon CMU register.
  void load_parity(std::uint64_t idx, bool parity);

 private:
  static double invert(double m, double odd);

  std::uint64_t m_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace flymon::sketch
