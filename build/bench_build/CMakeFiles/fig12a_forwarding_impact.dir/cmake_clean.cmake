file(REMOVE_RECURSE
  "../bench/fig12a_forwarding_impact"
  "../bench/fig12a_forwarding_impact.pdb"
  "CMakeFiles/fig12a_forwarding_impact.dir/fig12a_forwarding_impact.cpp.o"
  "CMakeFiles/fig12a_forwarding_impact.dir/fig12a_forwarding_impact.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_forwarding_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
