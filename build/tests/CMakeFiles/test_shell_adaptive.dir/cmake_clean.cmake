file(REMOVE_RECURSE
  "CMakeFiles/test_shell_adaptive.dir/test_shell_adaptive.cpp.o"
  "CMakeFiles/test_shell_adaptive.dir/test_shell_adaptive.cpp.o.d"
  "test_shell_adaptive"
  "test_shell_adaptive.pdb"
  "test_shell_adaptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shell_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
