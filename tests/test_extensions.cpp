// Tests for the paper's §6 / appendix extensions: the XOR reserved-slot
// operation and Odd Sketch similarity, spliced cross-stacking (Appendix E),
// task splitting (§3.1.1), the network-wide layer, and the epoch runner.
#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/metrics.hpp"
#include "control/controller.hpp"
#include "control/crossstack.hpp"
#include "control/epoch.hpp"
#include "control/network.hpp"
#include "packet/trace_gen.hpp"
#include "sketch/odd_sketch.hpp"

namespace flymon {
namespace {

std::vector<std::uint8_t> key(std::uint64_t id) {
  std::vector<std::uint8_t> k(8);
  for (int i = 0; i < 8; ++i) k[i] = static_cast<std::uint8_t>(id >> (8 * i));
  return k;
}

// -------- XOR stateful op --------

TEST(XorOp, TogglesRegisterBits) {
  dataplane::RegisterArray r(4);
  dataplane::Salu s(r);
  s.preload(dataplane::StatefulOp::kXor);
  EXPECT_EQ(s.execute(dataplane::StatefulOp::kXor, 0, 0b101, 0), 0b101u);
  EXPECT_EQ(s.execute(dataplane::StatefulOp::kXor, 0, 0b001, 0), 0b100u);
  EXPECT_EQ(s.execute(dataplane::StatefulOp::kXor, 0, 0b100, 0), 0b000u);
}

TEST(XorOp, FitsInReservedSlot) {
  Cmu cmu(64);  // three reduced ops pre-loaded
  EXPECT_NO_THROW(cmu.preload_op(dataplane::StatefulOp::kXor));
  EXPECT_NO_THROW(cmu.preload_op(dataplane::StatefulOp::kXor));  // idempotent
  EXPECT_THROW(cmu.preload_op(dataplane::StatefulOp::kNop), std::runtime_error)
      << "only one reserved slot exists";
}

// -------- Odd Sketch baseline --------

TEST(OddSketch, SizeEstimate) {
  sketch::OddSketch os(1 << 16);
  for (std::uint64_t i = 0; i < 5000; ++i) os.toggle(key(i));
  EXPECT_NEAR(os.estimate_size(), 5000.0, 500.0);
}

TEST(OddSketch, DuplicateTogglesCancel) {
  sketch::OddSketch os(4096);
  os.toggle(key(1));
  os.toggle(key(1));
  EXPECT_EQ(os.odd_bits(), 0u);
}

TEST(OddSketch, SymmetricDifference) {
  sketch::OddSketch a(1 << 16), b(1 << 16);
  // A = [0,3000), B = [1000,4000): |A delta B| = 2000.
  for (std::uint64_t i = 0; i < 3000; ++i) a.toggle(key(i));
  for (std::uint64_t i = 1000; i < 4000; ++i) b.toggle(key(i));
  EXPECT_NEAR(a.estimate_symmetric_difference(b), 2000.0, 300.0);
}

TEST(OddSketch, JaccardEndpoints) {
  sketch::OddSketch a(1 << 14), b(1 << 14), c(1 << 14);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    a.toggle(key(i));
    b.toggle(key(i));           // identical set
    c.toggle(key(100000 + i));  // disjoint set
  }
  EXPECT_GT(a.estimate_jaccard(b), 0.9);
  EXPECT_LT(a.estimate_jaccard(c), 0.15);
}

TEST(OddSketch, GeometryMismatchRejected) {
  sketch::OddSketch a(1024), b(2048);
  EXPECT_THROW((void)a.estimate_symmetric_difference(b), std::invalid_argument);
}

// -------- FlyMon-OddSketch end-to-end --------

TEST(FlyMonOddSketch, JaccardOfTwoTrafficSets) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);

  // The set element is the flow identity *excluding* the filtered source
  // dimension, so flows from the two sets can genuinely coincide.
  const FlowKeySpec element{0, 32, 16, 16, 8, 0};  // DstIP+ports+proto
  auto mk_spec = [&](std::uint32_t src_base) {
    TaskSpec s;
    s.name = "set";
    s.filter = TaskFilter::src(src_base, 8);
    s.key = element;
    s.attribute = AttributeKind::kSimilarity;
    s.memory_buckets = 8192;
    return s;
  };
  const auto ra = ctl.add_task(mk_spec(0x0A00'0000));
  const auto rb = ctl.add_task(mk_spec(0x0B00'0000));
  ASSERT_TRUE(ra.ok) << ra.error;
  ASSERT_TRUE(rb.ok) << rb.error;
  EXPECT_EQ(ctl.task(ra.task_id)->algorithm, Algorithm::kOddSketch);

  // Two traffic sets with exactly 50% flow overlap (same dst identity;
  // flows differ only in the filtered source octet).
  std::vector<Packet> trace;

  for (std::uint32_t f = 0; f < 4000; ++f) {
    Packet p;
    p.ft.dst_ip = 0xC0A80000 + f;
    p.ft.src_port = 1000;
    p.ft.dst_port = 80;
    p.ft.protocol = 6;
    p.ts_ns = f * 1000;
    p.ft.src_ip = 0x0A000000 | (f & 0xFFFF);  // set A member
    trace.push_back(p);
    if (f < 2000) {  // half of B equals A modulo the source octet...
      p.ft.src_ip = 0x0B000000 | (f & 0xFFFF);
      trace.push_back(p);
    } else {  // ...half is disjoint
      p.ft.src_ip = 0x0B000000 | ((f + 50000) & 0xFFFF);
      p.ft.dst_ip = 0xC0A90000 + f;
      trace.push_back(p);
    }
  }
  dp.process_all(trace);

  // |A| = |B| = 4000, |A and B| = 2000 => |A delta B| = 4000, J = 1/3.
  const double size_a = ctl.estimate_set_size(ra.task_id);
  EXPECT_NEAR(size_a, 4000.0, 700.0);
  const double sd = ctl.estimate_symmetric_difference(ra.task_id, rb.task_id);
  EXPECT_NEAR(sd, 4000.0, 1200.0);
  EXPECT_NEAR(ctl.estimate_jaccard(ra.task_id, rb.task_id), 1.0 / 3, 0.15);
}

TEST(FlyMonOddSketch, IncomparablePlacementsRejected) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  TaskSpec a;
  a.filter = TaskFilter::src(0x0A000000, 8);
  a.key = FlowKeySpec::five_tuple();
  a.attribute = AttributeKind::kSimilarity;
  a.memory_buckets = 8192;
  TaskSpec b = a;
  b.filter = TaskFilter::src(0x0B000000, 8);
  b.memory_buckets = 32768;  // different geometry
  const auto ra = ctl.add_task(a);
  const auto rb = ctl.add_task(b);
  ASSERT_TRUE(ra.ok && rb.ok);
  EXPECT_THROW((void)ctl.estimate_jaccard(ra.task_id, rb.task_id),
               std::invalid_argument);
}

// -------- Appendix E: spliced stacking --------

TEST(SplicedStack, ThreeExtraGroupsViaRecirculation) {
  const auto sp = control::cross_stack_spliced(12);
  EXPECT_EQ(sp.straight_groups, 9u);
  EXPECT_EQ(sp.spliced_groups, 3u);
  EXPECT_EQ(sp.plan.groups_placed, 12u);
  EXPECT_NEAR(sp.recirculated_fraction(), 0.25, 1e-9);
}

TEST(SplicedStack, FullPipeHashUtilization) {
  const auto sp = control::cross_stack_spliced(12);
  EXPECT_DOUBLE_EQ(sp.plan.pipeline.utilization(dataplane::Resource::kHashUnit), 1.0)
      << "12 groups x 6 units = all 72 hash units";
  EXPECT_DOUBLE_EQ(sp.plan.pipeline.utilization(dataplane::Resource::kSalu), 0.75);
}

TEST(SplicedStack, NoSplicingWhenPipeTooSmall) {
  const auto sp = control::cross_stack_spliced(4);
  EXPECT_LE(sp.spliced_groups, 3u);
  EXPECT_GE(sp.plan.groups_placed, sp.straight_groups);
}

// -------- task splitting --------

TEST(SplitTask, HalvesTheFilter) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  TaskSpec s;
  s.filter = TaskFilter::src(0x0A000000, 8);
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 8192;
  s.rows = 3;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);
  const auto [lo, hi] = ctl.split_task(r.task_id);
  ASSERT_TRUE(lo.ok) << lo.error;
  ASSERT_TRUE(hi.ok) << hi.error;
  EXPECT_EQ(ctl.task(r.task_id), nullptr) << "original reclaimed";
  const auto* tl = ctl.task(lo.task_id);
  const auto* th = ctl.task(hi.task_id);
  EXPECT_EQ(tl->spec.filter.src_len, 9);
  EXPECT_EQ(th->spec.filter.src_len, 9);
  EXPECT_EQ(th->spec.filter.src_ip, 0x0A800000u);
  EXPECT_FALSE(tl->spec.filter.intersects(th->spec.filter));
}

TEST(SplitTask, RejectsHostRouteAndUnknown) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  EXPECT_FALSE(ctl.split_task(99).first.ok);
  TaskSpec s;
  s.filter = TaskFilter{0x0A000001, 32, 0xC0A80001, 32};
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 4096;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(ctl.split_task(r.task_id).first.ok);
  EXPECT_NE(ctl.task(r.task_id), nullptr) << "failed split must not drop the task";
}

TEST(SplitTask, ReducesCollisionError) {
  // Same total per-subtask memory, half the flows each: ARE must drop.
  TraceConfig cfg;
  cfg.num_flows = 20'000;
  cfg.num_packets = 200'000;
  const auto trace = TraceGenerator::generate(cfg);

  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  TaskSpec s;
  s.filter = TaskFilter::src(0x0A000000, 8);
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 2048;  // deliberately tight
  s.rows = 3;
  const auto whole = ctl.add_task(s);
  ASSERT_TRUE(whole.ok);
  dp.process_all(trace);
  const FreqMap truth = ExactStats::frequency(trace, s.key);
  const double are_whole = analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
    return ctl.query_value(whole.task_id, packet_from_candidate_key(k.bytes));
  });

  FlyMonDataPlane dp2(9);
  control::Controller ctl2(dp2);
  const auto base = ctl2.add_task(s);
  ASSERT_TRUE(base.ok);
  const auto [lo, hi] = ctl2.split_task(base.task_id);
  ASSERT_TRUE(lo.ok && hi.ok);
  dp2.process_all(trace);
  const double are_split = analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
    const Packet probe = packet_from_candidate_key(k.bytes);
    const auto id = ctl2.task(lo.task_id)->spec.filter.matches(probe.ft) ? lo.task_id
                                                                         : hi.task_id;
    return ctl2.query_value(id, probe);
  });
  EXPECT_LT(are_split, are_whole);
}

// -------- network-wide layer --------

TEST(Network, DeployEverywhereAllOrNothing) {
  control::NetworkFlyMon net(3, 1);  // tiny switches
  TaskSpec big;
  big.key = FlowKeySpec::five_tuple();
  big.attribute = AttributeKind::kFrequency;
  big.memory_buckets = 65536;
  big.rows = 3;
  const auto t1 = net.deploy_everywhere(big);
  ASSERT_TRUE(t1.ok) << t1.error;
  EXPECT_EQ(t1.per_switch_id.size(), 3u);
  // A second identical wildcard task cannot fit anywhere (memory + filter
  // conflicts): all-or-nothing must leave every switch unchanged.
  const auto t2 = net.deploy_everywhere(big);
  EXPECT_FALSE(t2.ok);
  for (unsigned i = 0; i < 3; ++i) EXPECT_EQ(net.controller(i).num_tasks(), 1u);
}

TEST(Network, EcmpPinsFlows) {
  control::NetworkFlyMon net(4, 1);
  TraceConfig cfg;
  cfg.num_flows = 200;
  cfg.num_packets = 2000;
  const auto trace = TraceGenerator::generate(cfg);
  std::unordered_map<FlowKeyValue, unsigned> first_seen;
  for (const Packet& p : trace) {
    const auto k = extract_flow_key(p, FlowKeySpec::five_tuple());
    const unsigned sw = net.route(p);
    const auto [it, fresh] = first_seen.try_emplace(k, sw);
    EXPECT_EQ(it->second, sw) << "a flow must always take the same path";
  }
  // And the load should spread across switches.
  std::array<unsigned, 4> load{};
  for (const auto& [k, sw] : first_seen) ++load[sw];
  for (unsigned l : load) EXPECT_GT(l, 20u);
}

TEST(Network, NetworkWideHeavyHitters) {
  control::NetworkFlyMon net(3, 9);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 16384;
  s.rows = 3;
  const auto t = net.deploy_everywhere(s);
  ASSERT_TRUE(t.ok) << t.error;

  TraceConfig cfg;
  cfg.num_flows = 5000;
  cfg.num_packets = 300'000;
  const auto trace = TraceGenerator::generate(cfg);
  net.process_all(trace);

  const FreqMap truth = ExactStats::frequency(trace, s.key);
  const auto hh_true = ExactStats::over_threshold(truth, 1024);
  std::vector<FlowKeyValue> candidates;
  for (const auto& [k, f] : truth) candidates.push_back(k);
  const auto reported = net.detect_over_threshold(t, candidates, 1024);
  const auto score = analysis::score_detection(hh_true, reported);
  EXPECT_GT(score.f1(), 0.95);
}

TEST(Network, CardinalitySumAcrossSwitches) {
  control::NetworkFlyMon net(3, 9);
  TaskSpec s;
  s.attribute = AttributeKind::kDistinct;
  s.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  s.algorithm = Algorithm::kHyperLogLog;
  s.memory_buckets = 2048;
  const auto t = net.deploy_everywhere(s);
  ASSERT_TRUE(t.ok) << t.error;

  TraceConfig cfg;
  cfg.num_flows = 30'000;
  cfg.num_packets = 90'000;
  cfg.zipf_alpha = 0.3;
  const auto trace = TraceGenerator::generate(cfg);
  net.process_all(trace);
  const double truth =
      static_cast<double>(ExactStats::cardinality(trace, FlowKeySpec::five_tuple()));
  EXPECT_NEAR(net.estimate_cardinality_sum(t), truth, 0.1 * truth);
}

// -------- epoch runner --------

TEST(EpochRunner, SplitsTraceIntoWindows) {
  FlyMonDataPlane dp(1);
  control::EpochRunner runner(dp, 100'000'000);  // 100 ms epochs
  TraceConfig cfg;
  cfg.num_packets = 10'000;
  cfg.duration_ns = 1'000'000'000;
  const auto trace = TraceGenerator::generate(cfg);
  std::size_t seen = 0;
  unsigned calls = 0;
  const unsigned epochs = runner.run(trace, [&](unsigned e, std::span<const Packet> pkts) {
    EXPECT_EQ(e, calls);
    ++calls;
    seen += pkts.size();
    for (const Packet& p : pkts) {
      EXPECT_GE(p.ts_ns, std::uint64_t{e} * 100'000'000);
      EXPECT_LT(p.ts_ns, std::uint64_t{e + 1} * 100'000'000);
    }
  });
  EXPECT_EQ(seen, trace.size());
  EXPECT_EQ(epochs, calls);
  EXPECT_GE(epochs, 9u);
}

TEST(EpochRunner, AlignsToFirstPacket) {
  // A trace whose timestamps start at a large absolute value (e.g. CAIDA
  // epoch-relative nanoseconds) must not spin through tens of thousands of
  // empty leading windows: windows are aligned to the first packet's
  // timestamp rounded down to a whole epoch.
  FlyMonDataPlane dp(1);
  control::EpochRunner runner(dp, 100'000'000);  // 100 ms epochs
  const std::uint64_t base = 7'777'000'000'123;  // ~2.2 hours in
  std::vector<Packet> trace(4);
  trace[0].ts_ns = base;
  trace[1].ts_ns = base + 50'000'000;
  trace[2].ts_ns = base + 150'000'000;
  trace[3].ts_ns = base + 320'000'000;
  std::vector<std::size_t> per_epoch;
  const unsigned epochs = runner.run(trace, [&](unsigned, std::span<const Packet> pkts) {
    per_epoch.push_back(pkts.size());
  });
  EXPECT_EQ(epochs, 4u);
  ASSERT_EQ(per_epoch.size(), 4u);
  EXPECT_EQ(per_epoch[0], 2u);
  EXPECT_EQ(per_epoch[1], 1u);
  EXPECT_EQ(per_epoch[2], 0u);  // interior empty window still reported
  EXPECT_EQ(per_epoch[3], 1u);
}

TEST(EpochRunner, EmptyTraceIsZeroEpochs) {
  FlyMonDataPlane dp(1);
  control::EpochRunner runner(dp, 100'000'000);
  const unsigned epochs =
      runner.run(std::span<const Packet>{}, [](unsigned, auto) { FAIL(); });
  EXPECT_EQ(epochs, 0u);
}

TEST(EpochRunner, RegistersClearedBetweenEpochs) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 16384;
  s.rows = 3;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);

  TraceConfig cfg;
  cfg.num_flows = 300;
  cfg.num_packets = 30'000;
  cfg.duration_ns = 1'000'000'000;
  const auto trace = TraceGenerator::generate(cfg);
  control::EpochRunner runner(dp, 250'000'000);
  runner.run(trace, [&](unsigned, std::span<const Packet> pkts) {
    // Within each epoch the estimates match the *epoch* ground truth —
    // proof that the previous epoch's state is gone.
    const FreqMap truth = ExactStats::frequency(pkts, s.key);
    const double are = analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
      return ctl.query_value(r.task_id, packet_from_candidate_key(k.bytes));
    });
    EXPECT_LT(are, 0.02);
  });
}

}  // namespace
}  // namespace flymon
