// Tests for the runtime-rule renderer: the southbound rules of a deployed
// task must be consistent with the deployment report and the data-plane
// state they describe.
#include <gtest/gtest.h>

#include "control/rules.hpp"

namespace flymon::control {
namespace {

struct World {
  FlyMonDataPlane dp{9};
  Controller ctl{dp};
};

unsigned count_kind(const std::vector<RuntimeRule>& rules, RuntimeRule::Kind kind) {
  unsigned n = 0;
  for (const auto& r : rules) n += (r.kind == kind);
  return n;
}

unsigned count_table(const std::vector<RuntimeRule>& rules, const std::string& suffix) {
  unsigned n = 0;
  for (const auto& r : rules) {
    if (r.table.size() >= suffix.size() &&
        r.table.compare(r.table.size() - suffix.size(), suffix.size(), suffix) == 0) {
      ++n;
    }
  }
  return n;
}

TEST(Rules, CmsTaskRuleShape) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::src_ip();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 65536;  // full register: no address translation entries
  s.rows = 3;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok);
  const auto rules = render_rules(w.ctl, r.task_id);

  EXPECT_EQ(count_kind(rules, RuntimeRule::Kind::kHashMask), 1u)
      << "one compressed key serves all three rows";
  EXPECT_EQ(count_table(rules, ".init"), 3u);
  EXPECT_EQ(count_table(rules, ".op"), 3u);
  EXPECT_EQ(count_table(rules, ".prep.addr"), 0u) << "full-size partition";
  for (const auto& rule : rules) {
    if (rule.table.find(".op") != std::string::npos) {
      EXPECT_NE(rule.action.find("Cond-ADD"), std::string::npos);
    }
  }
}

TEST(Rules, PartitionedTaskEmitsTranslationEntries) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::src_ip();
  s.filter = TaskFilter::src(0x0A000000, 8);
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 16384;  // quarter of the register
  s.rows = 1;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok);
  const auto rules = render_rules(w.ctl, r.task_id);
  // 3 displaced source blocks (power-of-two aligned: 1 entry each) + default.
  EXPECT_EQ(count_table(rules, ".prep.addr"), 4u);
}

TEST(Rules, BeauCoupEmitsCouponWindows) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::dst_ip();
  s.attribute = AttributeKind::kDistinct;
  s.param = ParamSpec::compressed(FlowKeySpec::src_ip());
  s.algorithm = Algorithm::kBeauCoup;
  s.report_threshold = 512;
  s.memory_buckets = 65536;
  s.rows = 3;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok);
  const auto rules = render_rules(w.ctl, r.task_id);
  const auto* t = w.ctl.task(r.task_id);
  // One window per coupon plus the default abort, per CMU row.
  EXPECT_EQ(count_table(rules, ".prep.coupon"), 3u * (t->coupon_count + 1));
  EXPECT_EQ(count_kind(rules, RuntimeRule::Kind::kHashMask), 2u)
      << "DstIP key + SrcIP parameter";
}

TEST(Rules, XorComposedKeyListsBothUnits) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::ip_pair();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 65536;
  s.rows = 1;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok);
  const auto rules = render_rules(w.ctl, r.task_id);
  bool has_xor_key = false;
  for (const auto& rule : rules) {
    if (rule.table.find(".init") != std::string::npos) {
      has_xor_key |= rule.action.find('^') != std::string::npos ||
                     rule.action.find("set_key(H") != std::string::npos;
    }
  }
  EXPECT_TRUE(has_xor_key);
}

TEST(Rules, UnknownTaskThrows) {
  World w;
  EXPECT_THROW(render_rules(w.ctl, 99), std::out_of_range);
}

TEST(Rules, FormatIsLinePerRule) {
  World w;
  TaskSpec s;
  s.key = FlowKeySpec::src_ip();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 65536;
  s.rows = 1;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok);
  const auto rules = render_rules(w.ctl, r.task_id);
  const std::string text = format_rules(rules);
  std::size_t lines = 0;
  for (char c : text) lines += (c == '\n');
  EXPECT_EQ(lines, rules.size());
  EXPECT_NE(text.find("set_dyn_hash_mask(SrcIP)"), std::string::npos) << text;
}

}  // namespace
}  // namespace flymon::control
