// Paper Table 3: built-in algorithms — CMU Group usage and deployment
// delay.  Delay comes from the calibrated rule-install model (3 ms/table
// rule, 16 ms/hash-mask rule, batched) applied to the rules each
// algorithm's compilation actually generates.
#include "bench/bench_util.hpp"

using namespace flymon;

namespace {

struct Row {
  const char* name;
  const char* attribute;
  TaskSpec spec;
};

}  // namespace

int main() {
  bench::header("Table 3", "Built-in algorithms: CMU-Group usage & deployment delay");

  const std::uint32_t full = 65536;  // full-register tasks, as in the paper
  std::vector<Row> rows;

  {
    TaskSpec s;
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kFrequency;
    s.algorithm = Algorithm::kCms;
    s.memory_buckets = full;
    s.rows = 3;
    rows.push_back({"CMS (d=3)", "Frequency", s});
  }
  {
    TaskSpec s;
    s.key = FlowKeySpec::dst_ip();
    s.attribute = AttributeKind::kDistinct;
    s.param = ParamSpec::compressed(FlowKeySpec::src_ip());
    s.algorithm = Algorithm::kBeauCoup;
    s.report_threshold = 512;
    s.memory_buckets = full;
    s.rows = 3;
    rows.push_back({"BeauCoup (d=3)", "Distinct (multi-key)", s});
  }
  {
    TaskSpec s;
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kExistence;
    s.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
    s.algorithm = Algorithm::kBloomFilter;
    s.memory_buckets = full;
    s.rows = 3;
    rows.push_back({"Bloom Filter (d=3)", "Existence", s});
  }
  {
    TaskSpec s;
    s.key = FlowKeySpec::ip_pair();
    s.attribute = AttributeKind::kMax;
    s.param = ParamSpec::metadata(MetaField::kQueueLen);
    s.algorithm = Algorithm::kSuMaxMax;
    s.memory_buckets = full;
    s.rows = 3;
    rows.push_back({"SuMax(Max) (d=3)", "Max", s});
  }
  {
    TaskSpec s;
    s.attribute = AttributeKind::kDistinct;
    s.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
    s.algorithm = Algorithm::kHyperLogLog;
    s.memory_buckets = 16384;
    rows.push_back({"HyperLogLog", "Distinct (single-key)", s});
  }
  {
    TaskSpec s;
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kFrequency;
    s.algorithm = Algorithm::kSuMaxSum;
    s.memory_buckets = full;
    s.rows = 3;
    rows.push_back({"SuMax(Sum) (d=3)", "Frequency", s});
  }
  {
    TaskSpec s;
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kFrequency;
    s.algorithm = Algorithm::kMrac;
    s.memory_buckets = full;
    rows.push_back({"MRAC", "Frequency (distribution)", s});
  }
  {
    TaskSpec s;
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kMax;
    s.algorithm = Algorithm::kMaxInterarrival;
    s.memory_buckets = full;
    s.rows = 1;
    rows.push_back({"MaxInterarrival", "Max (composite)", s});
  }
  {
    TaskSpec s;
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kFrequency;
    s.algorithm = Algorithm::kTowerSketch;
    s.memory_buckets = full;
    s.rows = 3;
    rows.push_back({"TowerSketch (d=3)", "Frequency", s});
  }
  {
    TaskSpec s;
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kFrequency;
    s.algorithm = Algorithm::kCounterBraids;
    s.memory_buckets = full;
    rows.push_back({"CounterBraids", "Frequency (2-layer)", s});
  }

  std::printf("%-20s %-24s %6s %6s %6s %10s\n", "algorithm", "attribute", "CMUG",
              "CMUs", "rules", "delay (ms)");
  for (const Row& row : rows) {
    auto inst = bench::deploy_flymon(row.spec);
    if (!inst.ok) {
      std::printf("%-20s deployment failed: %s\n", row.name, inst.error.c_str());
      continue;
    }
    const auto* t = inst.ctl->task(inst.task_id);
    // Single-group algorithms report groups_used = 1; chained ones use one
    // group per CMU.
    const unsigned groups = t->report.groups_used;
    std::printf("%-20s %-24s %6u %6u %6u %10.2f\n", row.name, row.attribute,
                groups, t->report.cmus_used,
                t->report.table_rules + t->report.hash_mask_rules,
                t->report.delay_ms());
  }
  std::printf("\n(paper Table 3: delays 5.98-40.18 ms; all deployable <100 ms "
              "without traffic interruption)\n");
  return 0;
}
