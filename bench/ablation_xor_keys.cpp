// Ablation (paper §3.1.1): composite keys built by XOR-ing two compressed
// keys (C(SrcIP) xor C(DstIP)) versus a hash unit configured directly for
// the composite key (SrcIP-DstIP).  XOR composition saves hash units; this
// measures what it costs in accuracy.
#include "bench/bench_util.hpp"

using namespace flymon;

namespace {

double are_for(bool force_xor, std::uint32_t buckets, const std::vector<Packet>& trace,
               const FreqMap& truth) {
  CmuGroupConfig cfg;
  cfg.register_buckets = static_cast<std::uint32_t>(pow2_ceil(std::max(32u, buckets)));
  FlyMonDataPlane dp(9, cfg);
  control::Controller ctl(dp);
  if (force_xor) {
    // Pre-deploy throwaway tasks so SrcIP and DstIP units already exist;
    // the greedy compiler then builds IP-pair as their XOR.
    TaskSpec warm;
    warm.key = FlowKeySpec::src_ip();
    warm.filter = TaskFilter::src(0x7F000000, 8);  // loopback: matches nothing
    warm.attribute = AttributeKind::kFrequency;
    warm.memory_buckets = 32;
    warm.rows = 1;
    ctl.add_task(warm);
    warm.key = FlowKeySpec::dst_ip();
    warm.filter = TaskFilter::src(0x7F800000, 9);
    ctl.add_task(warm);
  }
  TaskSpec spec;
  spec.key = FlowKeySpec::ip_pair();
  spec.attribute = AttributeKind::kFrequency;
  spec.memory_buckets = buckets;
  spec.rows = 3;
  const auto r = ctl.add_task(spec);
  if (!r.ok) return -1;
  dp.process_all(trace);
  return analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
    return ctl.query_value(r.task_id, packet_from_candidate_key(k.bytes));
  });
}

}  // namespace

int main() {
  bench::header("Ablation: XOR-composed keys",
                "IP-pair via C(SrcIP) xor C(DstIP) vs a directly-hashed pair key");

  TraceConfig cfg;
  cfg.num_flows = 20'000;
  cfg.num_packets = 600'000;
  const auto trace = TraceGenerator::generate(cfg);
  const FreqMap truth = ExactStats::frequency(trace, FlowKeySpec::ip_pair());

  std::printf("%12s %12s %12s\n", "buckets/row", "direct", "XOR");
  for (std::uint32_t buckets : {4096u, 8192u, 16384u, 32768u}) {
    std::printf("%12u %12.4f %12.4f\n", buckets,
                are_for(false, buckets, trace, truth),
                are_for(true, buckets, trace, truth));
  }
  std::printf("\n(XOR composition saves one hash unit per composite key at "
              "negligible accuracy cost)\n");
  return 0;
}
