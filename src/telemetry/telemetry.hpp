// Process-wide metrics registry: cheap atomic counters / gauges / histograms
// with Prometheus-style names and labels.  Hot-path mutation (Counter::inc,
// Histogram::observe) is gated on one relaxed atomic flag so that a disabled
// build costs a predicted-not-taken branch per instrumentation site; gauges
// are control-plane-only and always writable.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/annotated_mutex.hpp"
#include "common/thread_annotations.hpp"

namespace flymon::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Global runtime switch (default off).  Counters and histograms silently
/// drop updates while disabled; gauges and registry structure are unaffected.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// Honour the FLYMON_TELEMETRY environment variable (1/on/true enables).
/// Returns the resulting state.
bool init_from_env() noexcept;

/// label set: ordered (key, value) pairs.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value set by collectors (occupancy, saturation, ...).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bound histogram (Prometheus bucket semantics: counts are cumulative
/// at export time; stored per-bucket here).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  struct Snapshot {
    std::vector<double> bounds;        ///< ascending upper bounds
    std::vector<std::uint64_t> counts; ///< per-bucket, last one = +Inf bucket
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;
  void reset() noexcept;

  /// {start, start*factor, ...} with `n` bounds.
  static std::vector<double> exponential_bounds(double start, double factor, unsigned n);
  static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One exported sample, snapshot from a live metric.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;           ///< counter / gauge
  Histogram::Snapshot hist;     ///< histogram only
};

/// Named metric store.  Lookup is mutex-protected (registration happens at
/// bind/deploy time, never per packet); returned references are stable for
/// the registry's lifetime.  `global()` is the default process-wide instance;
/// tests and exporters can also own private registries.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bounds = Histogram::default_bounds());

  /// Deterministic snapshot: samples sorted by (name, labels).
  std::vector<MetricSample> snapshot() const;

  std::size_t size() const;

  /// Zero every counter/gauge/histogram (metrics stay registered).
  void reset_values();

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, const Labels& labels,
                        MetricKind kind) FLYMON_REQUIRES(mu_);

  mutable common::Mutex mu_;
  std::map<std::string, Entry> entries_
      FLYMON_GUARDED_BY(mu_);  // key = canonical "name{labels}"
};

/// Canonical metric identity, also the Prometheus exposition form:
/// name{k1="v1",k2="v2"} (labels in given order; empty -> bare name).
std::string metric_key(const std::string& name, const Labels& labels);

}  // namespace flymon::telemetry
