#include "common/hash.hpp"

#include <array>

namespace flymon {
namespace {

// Table cache: one 256-entry table per polynomial actually used.
struct CrcTable {
  std::uint32_t poly = 0;
  std::array<std::uint32_t, 256> table{};
};

CrcTable make_table(std::uint32_t poly) {
  CrcTable t;
  t.poly = poly;
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? poly ^ (c >> 1) : (c >> 1);
    t.table[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& table_for(std::uint32_t poly) {
  // Small rotating cache; hash units use a handful of fixed polynomials.
  static thread_local std::array<CrcTable, 12> cache{};
  static thread_local unsigned next = 0;
  for (const auto& e : cache) {
    if (e.poly == poly) return e.table;
  }
  cache[next] = make_table(poly);
  const auto& ref = cache[next].table;
  next = (next + 1) % cache.size();
  return ref;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t poly_reflected,
                    std::uint32_t init) noexcept {
  const auto& table = table_for(poly_reflected);
  std::uint32_t c = init;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc_polynomial(unsigned unit_index) noexcept {
  // Reflected polynomials of well-known CRC-32 variants.  Units cycle
  // through them; the init value is additionally perturbed per unit by
  // callers that need more than `size()` independent units.
  static constexpr std::array<std::uint32_t, 8> kPolys = {
      0xEDB88320u,  // CRC-32 (IEEE)
      0x82F63B78u,  // CRC-32C (Castagnoli)
      0xEB31D82Eu,  // CRC-32K (Koopman)
      0xD5828281u,  // CRC-32Q
      0x992C1A4Cu,  // CRC-32/AUTOSAR (reflected)
      0xBA0DC66Bu,  // CRC-32K/2
      0x76DC4190u,  // degenerate shift of IEEE (distinct table)
      0xA833982Bu,  // CRC-32D
  };
  return kPolys[unit_index % kPolys.size()];
}

std::uint64_t hash64(std::span<const std::uint8_t> data, std::uint64_t seed) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull ^ mix64(seed);
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return mix64(h);
}

}  // namespace flymon
