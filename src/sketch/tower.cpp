#include "sketch/tower.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/bits.hpp"

namespace flymon::sketch {

TowerSketch::TowerSketch(std::vector<unsigned> level_bits, std::size_t total_bytes)
    : level_bits_(std::move(level_bits)) {
  if (level_bits_.empty()) throw std::invalid_argument("TowerSketch: no levels");
  const std::size_t bytes_per_level = std::max<std::size_t>(4, total_bytes / level_bits_.size());
  for (unsigned bits : level_bits_) {
    if (bits == 0 || bits > 32) throw std::invalid_argument("TowerSketch: counter width");
    const std::uint64_t w = std::max<std::uint64_t>(1, bytes_per_level * 8 / bits);
    level_width_.push_back(static_cast<std::uint32_t>(w));
    cells_.emplace_back(w, 0u);
    memory_bytes_ += static_cast<std::size_t>(w) * bits / 8;
  }
}

void TowerSketch::update(KeyBytes key, std::uint32_t inc) {
  for (std::size_t l = 0; l < cells_.size(); ++l) {
    const std::uint32_t cap = low_mask32(level_bits_[l]);
    auto& c = cells_[l][row_hash(key, static_cast<unsigned>(l), 0x70ull) % level_width_[l]];
    const std::uint64_t sum = std::uint64_t{c} + inc;
    c = sum >= cap ? cap : static_cast<std::uint32_t>(sum);  // saturate
  }
}

std::uint32_t TowerSketch::query(KeyBytes key) const {
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  bool found = false;
  std::uint32_t max_saturated = 0;
  for (std::size_t l = 0; l < cells_.size(); ++l) {
    const std::uint32_t cap = low_mask32(level_bits_[l]);
    const std::uint32_t v =
        cells_[l][row_hash(key, static_cast<unsigned>(l), 0x70ull) % level_width_[l]];
    if (v < cap) {
      best = std::min(best, v);
      found = true;
    } else {
      max_saturated = std::max(max_saturated, cap);
    }
  }
  return found ? best : max_saturated;
}

void TowerSketch::clear() {
  for (auto& lvl : cells_) std::fill(lvl.begin(), lvl.end(), 0u);
}

}  // namespace flymon::sketch
