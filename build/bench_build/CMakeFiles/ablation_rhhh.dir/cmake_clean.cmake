file(REMOVE_RECURSE
  "../bench/ablation_rhhh"
  "../bench/ablation_rhhh.pdb"
  "CMakeFiles/ablation_rhhh.dir/ablation_rhhh.cpp.o"
  "CMakeFiles/ablation_rhhh.dir/ablation_rhhh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rhhh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
