// Power-of-two buddy allocation of CMU register space — the control-plane
// half of FlyMon's dynamic memory management (paper §3.3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace flymon {

/// A contiguous, power-of-two-aligned slice of one CMU's register.
struct MemoryPartition {
  std::uint32_t base = 0;
  std::uint32_t size = 0;  ///< power of two

  std::uint32_t end() const noexcept { return base + size; }
  friend bool operator==(const MemoryPartition&, const MemoryPartition&) = default;
};

/// Memory-allocation modes (paper §3.4): `accurate` rounds the request up to
/// the next power of two; `efficient` rounds to the nearest power of two.
enum class AllocMode : std::uint8_t { kAccurate, kEfficient };

/// Round a bucket request according to the mode.
std::uint32_t quantize_buckets(std::uint32_t requested, AllocMode mode) noexcept;

/// Classic buddy allocator over [0, total_buckets).  Only 2^n partitions are
/// supported, matching the shift/TCAM address-translation constraint.
class BuddyAllocator {
 public:
  /// `total` must be a power of two; `min_block` bounds fragmentation
  /// (paper: at most 32 partitions per CMU => min_block = total/32).
  explicit BuddyAllocator(std::uint32_t total, std::uint32_t min_block = 1);

  /// Allocate a block of exactly `size` buckets (power of two).
  std::optional<MemoryPartition> allocate(std::uint32_t size);

  /// Release a block previously returned by allocate (merges buddies).
  void release(const MemoryPartition& p);

  std::uint32_t total() const noexcept { return total_; }
  std::uint32_t free_buckets() const noexcept { return free_total_; }
  std::uint32_t largest_free_block() const noexcept;
  /// Number of live allocations.
  std::size_t allocations() const noexcept { return live_blocks_.size(); }

  /// True iff `p` is exactly a block handed out by allocate() and not yet
  /// released — the ground truth the static verifier audits placements
  /// against.
  bool is_live(const MemoryPartition& p) const noexcept;
  /// Every live block, sorted by base address.
  std::vector<MemoryPartition> live_partitions() const;

 private:
  std::uint32_t total_;
  std::uint32_t min_block_;
  std::uint32_t free_total_;
  // free lists: size -> sorted bases
  std::map<std::uint32_t, std::vector<std::uint32_t>> free_;
  // live allocations: base -> size (exact blocks returned by allocate)
  std::map<std::uint32_t, std::uint32_t> live_blocks_;
};

}  // namespace flymon
