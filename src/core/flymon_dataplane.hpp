// The FlyMon data plane: a set of cross-stacked CMU Groups processed in
// pipeline order, sharing one PHV context per packet so CMUs in later
// groups can consume results of earlier ones (SuMax chaining, max
// inter-arrival, Counter Braids carries).
//
// Two execution paths share the same registers and counters:
//   - the interpreted path walks the mutable Cmu/CompressionStage objects
//     per packet (control-plane probes, traced packets, no plan published);
//   - the compiled path executes an immutable exec::ExecPlan snapshot held
//     behind an RCU-style atomic shared_ptr.  The controller republishes a
//     freshly compiled plan after every reconfiguration; in-flight batches
//     keep running against the plan they acquire-loaded, so reconfiguration
//     never stalls or tears the packet path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/annotated_mutex.hpp"
#include "common/thread_annotations.hpp"
#include "core/cmu_group.hpp"
#include "exec/exec_plan.hpp"
#include "exec/plan_cell.hpp"
#include "telemetry/trace_ring.hpp"

namespace flymon::exec {
class WorkerPool;
struct ParallelStats;
}  // namespace flymon::exec

namespace flymon {

class FlyMonDataPlane {
 public:
  explicit FlyMonDataPlane(unsigned num_groups = 9, const CmuGroupConfig& cfg = {});
  ~FlyMonDataPlane();

  FlyMonDataPlane(const FlyMonDataPlane&) = delete;
  FlyMonDataPlane& operator=(const FlyMonDataPlane&) = delete;

  unsigned num_groups() const noexcept { return static_cast<unsigned>(groups_.size()); }
  CmuGroup& group(unsigned i) { return groups_.at(i); }
  const CmuGroup& group(unsigned i) const { return groups_.at(i); }

  /// Process one packet (single-packet batch).
  void process(const Packet& pkt);

  /// Process a batch: compression (hashing) runs for the whole batch before
  /// the attribute stages when a compiled plan is published; falls back to
  /// the per-packet interpreted path otherwise (and for traced packets).
  /// Returns the plan generation the batch executed under (0 = interpreted).
  std::uint64_t process_batch(std::span<const Packet> pkts);

  /// Process a whole trace through the batched path.  Returns what
  /// process_batch returns: the plan generation the trace executed under
  /// (0 = interpreted).
  std::uint64_t process_all(std::span<const Packet> trace) {
    return process_batch(trace);
  }

  std::uint64_t packets_processed() const noexcept {
    return packets_.load(std::memory_order_relaxed);
  }

  /// Clear all registers (start of a measurement epoch); un-merged shard
  /// deltas are discarded with them.
  void clear_registers();

  // ---- multi-core sharded execution ----

  /// Spin up a persistent pool of `num_workers` executors (the submitting
  /// thread participates as the last one, so 1 spawns no threads).  Each
  /// executor owns a private replica of every CMU register bank; batches
  /// submitted via process_batch_parallel fan out across them and fold
  /// back into the live registers at merge points.  Replaces any existing
  /// pool (merging its shards first).
  void enable_parallel(unsigned num_workers);

  /// Merge outstanding shard deltas and tear the pool down.
  void disable_parallel();

  /// Executors in the active pool (0 = no pool).
  unsigned parallel_workers() const noexcept;

  /// Parallel entry point: fan the batch across the worker pool.  Falls
  /// back to process_batch when no pool is enabled; the pool itself falls
  /// back (sequentially, exact) when no plan is published, the plan is not
  /// shard-mergeable, or a tracer is attached.  Like process_batch this is
  /// a single-submitter API: one thread feeds packets.
  std::uint64_t process_batch_parallel(std::span<const Packet> pkts);

  /// Fold every dirty shard into the live registers under the current
  /// plan (no-op without a pool).  Read-side paths — controller readouts,
  /// telemetry collection, epoch boundaries — call this before trusting
  /// register contents.
  void merge_shards();

  /// Pool observability snapshot (zeroes without a pool).
  exec::ParallelStats parallel_stats() const;

  /// Execution tunables shared by the sequential batched path and the
  /// sharded pool (one chunk-size knob for both).
  void set_batch_options(const exec::BatchOptions& opts) noexcept {
    batch_opts_ = opts;
  }
  const exec::BatchOptions& batch_options() const noexcept {
    return batch_opts_;
  }

  /// Pool bookkeeping hook: account a parallel batch on the pipeline
  /// totals (per-group/per-CMU counters travel through the shard counter
  /// blocks instead).
  void note_parallel_batch(std::size_t packets) noexcept;

  // ---- compiled-plan publication (RCU-style snapshot swap) ----

  /// Compile the current deployment into a fresh ExecPlan (tagging entries
  /// with `owners`) and publish it with a release store.  Returns the new
  /// plan generation.  Call from the control thread after reconfiguring.
  std::uint64_t republish_plan(std::span<const exec::EntryOwnership> owners);

  /// Recompile with the ownership labels of the currently published plan
  /// (used after telemetry rebinding; publishes an empty-ownership plan if
  /// none was published before).
  std::uint64_t republish_plan();

  /// Drop the published plan: processing reverts to the interpreted path.
  void unpublish_plan() noexcept;

  // ---- publish-time plan validation (translation-validation gate) ----

  /// Validator invoked on every freshly compiled plan between compilation
  /// and the RCU store, under publish_mu_ and the worker-pool fence.  An
  /// empty return admits the plan; any non-empty string (formatted
  /// diagnostics) VETOES publication: the plan is discarded, the previously
  /// published plan is dropped too (the interpreted path — the semantic
  /// ground truth the validator compared against — serves traffic instead),
  /// republish_plan returns 0, and the string is kept in
  /// last_publish_veto().  Installed by Controller::set_paranoid with the
  /// verify::validate_plan translation validator.
  using PlanValidator =
      std::function<std::string(const FlyMonDataPlane&, const exec::ExecPlan&)>;

  /// Install (or, with an empty function, clear) the publish-time
  /// validator.  Takes effect from the next republish_plan call.
  void set_plan_validator(PlanValidator validator);

  /// Diagnostics of the most recent vetoed publication; empty when the
  /// last publish was admitted (or no validator is installed).
  std::string last_publish_veto() const;

  /// The currently published plan (nullptr = interpreted execution).
  std::shared_ptr<const exec::ExecPlan> current_plan() const noexcept;

  /// Generation of the published plan, 0 when none.
  std::uint64_t plan_generation() const noexcept;

  /// Rebind all instrumentation counters (groups, CMUs, pipeline totals)
  /// into `registry` and recompile the published plan against the new
  /// counter handles.  Construction binds to telemetry::Registry::global().
  void bind_telemetry(telemetry::Registry& registry);
  telemetry::Registry& registry() const noexcept { return *registry_; }

  /// Attach / detach a sampled-packet tracer (not owned).  While attached,
  /// 1-in-N packets record their PHV transformations into the ring; traced
  /// packets always run the interpreted path (the compiled path does not
  /// trace), batches split around them.
  void set_tracer(telemetry::PacketTracer* tracer) noexcept { tracer_ = tracer; }
  telemetry::PacketTracer* tracer() const noexcept { return tracer_; }

 private:
  /// Legacy per-packet path against the mutable objects.
  void interpret(const Packet& pkt, bool traced);
  /// Run `pkts` through `plan` in bounded chunks (reusing scratch_).
  void run_plan(const exec::ExecPlan& plan, std::span<const Packet> pkts);

  std::vector<CmuGroup> groups_;
  std::atomic<std::uint64_t> packets_{0};
  // The RCU cell: packet path acquire-loads, control plane release-stores.
  exec::PlanCell plan_;
  /// Serialises compile+publish and pool fencing.  mutable so read-only
  /// accessors (last_publish_veto) can lock it on a const data plane.
  mutable common::Mutex publish_mu_;
  std::uint64_t next_generation_ FLYMON_GUARDED_BY(publish_mu_) = 0;
  PlanValidator validator_ FLYMON_GUARDED_BY(publish_mu_);
  std::string last_publish_veto_ FLYMON_GUARDED_BY(publish_mu_);
  std::unique_ptr<exec::BatchScratch> scratch_;  ///< processing-thread only
  exec::BatchOptions batch_opts_;
  telemetry::Registry* registry_ = nullptr;
  telemetry::Counter* packets_counter_ = nullptr;
  telemetry::PacketTracer* tracer_ = nullptr;
  // Declared last so the pool (and its threads) dies before the registers
  // and counters the shards reference.
  std::unique_ptr<exec::WorkerPool> pool_;
};

/// Set point-in-time dataplane gauges (per-CMU register occupancy, installed
/// rules, configured hash units) in `registry`.  Cheap enough to call from a
/// shell command; not meant for the packet path.
void collect_dataplane_telemetry(const FlyMonDataPlane& dp,
                                 telemetry::Registry& registry);

/// Same, but first folds outstanding shard deltas into the live counters
/// so the gauges and exported counter values include parallel batches.
void collect_dataplane_telemetry(FlyMonDataPlane& dp,
                                 telemetry::Registry& registry);

}  // namespace flymon
