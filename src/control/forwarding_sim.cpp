#include "control/forwarding_sim.hpp"

#include "common/rng.hpp"

namespace flymon::control {

std::vector<ReconfigEvent> paper_event_schedule() {
  std::vector<ReconfigEvent> events;
  constexpr ReconfigEventKind cycle[3] = {ReconfigEventKind::kAddTask,
                                          ReconfigEventKind::kReallocMemory,
                                          ReconfigEventKind::kDeleteTask};
  for (unsigned i = 0; i < 9; ++i) {
    events.push_back(ReconfigEvent{10.0 * (i + 1) - 5.0, cycle[i % 3]});
  }
  return events;
}

ForwardingSimResult simulate_forwarding(const ForwardingSimConfig& cfg,
                                        const std::vector<ReconfigEvent>& events) {
  Rng rng(cfg.seed);
  ForwardingSimResult result;

  // Static redeployment: deletions are skipped; remaining critical events
  // are batched pairwise into single reloads (paper's two optimisations).
  struct Outage {
    double begin, end;
  };
  std::vector<Outage> outages;
  unsigned pending_critical = 0;
  for (const ReconfigEvent& e : events) {
    if (e.kind == ReconfigEventKind::kDeleteTask) continue;
    ++pending_critical;
    if (pending_critical == 2) {
      pending_critical = 0;
      const double span = cfg.reload_outage_min_s +
                          rng.next_double() *
                              (cfg.reload_outage_max_s - cfg.reload_outage_min_s);
      outages.push_back(Outage{e.time_s, e.time_s + span});
      ++result.static_reloads;
    }
  }
  if (pending_critical > 0) {  // trailing unbatched event still reloads
    const double t = events.empty() ? 0.0 : events.back().time_s;
    const double span =
        cfg.reload_outage_min_s +
        rng.next_double() * (cfg.reload_outage_max_s - cfg.reload_outage_min_s);
    outages.push_back(Outage{t, t + span});
    ++result.static_reloads;
  }

  for (double t = 0; t < cfg.duration_s; t += cfg.sample_period_s) {
    ThroughputSample s;
    s.time_s = t;
    const double base = cfg.line_rate_gbps - cfg.noise_gbps * rng.next_double();
    s.bare_gbps = base;
    // FlyMon reconfiguration = runtime rule installs: no data-plane impact.
    s.flymon_gbps = cfg.line_rate_gbps - cfg.noise_gbps * rng.next_double();
    s.static_gbps = cfg.line_rate_gbps - cfg.noise_gbps * rng.next_double();
    for (const Outage& o : outages) {
      if (t >= o.begin && t < o.end) {
        s.static_gbps = 0.0;
        break;
      }
    }
    result.samples.push_back(s);
  }
  for (const Outage& o : outages) result.static_outage_s += o.end - o.begin;
  result.flymon_outage_s = 0.0;
  return result;
}

}  // namespace flymon::control
