#include "core/flymon_dataplane.hpp"

namespace flymon {

FlyMonDataPlane::FlyMonDataPlane(unsigned num_groups, const CmuGroupConfig& cfg) {
  groups_.reserve(num_groups);
  for (unsigned g = 0; g < num_groups; ++g) groups_.emplace_back(g, cfg);
}

void FlyMonDataPlane::process(const Packet& pkt) {
  PhvContext ctx;
  for (CmuGroup& g : groups_) g.process(pkt, ctx);
  ++packets_;
}

void FlyMonDataPlane::clear_registers() {
  for (CmuGroup& g : groups_) {
    for (unsigned i = 0; i < g.num_cmus(); ++i) g.cmu(i).reg().clear();
  }
}

}  // namespace flymon
