// HyperLogLog (Flajolet et al., 2007) with small-range linear-counting
// correction.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/sketch_common.hpp"

namespace flymon::sketch {

class HyperLogLog {
 public:
  /// 2^b registers, each tracking the max rho (position of leftmost 1-bit).
  explicit HyperLogLog(unsigned b);

  /// Construct with at least `bytes` of register memory (1 byte/register).
  static HyperLogLog with_memory(std::size_t bytes);

  void insert(KeyBytes key);
  /// Harmonic-mean cardinality estimate with bias/small-range corrections.
  double estimate() const;

  unsigned precision() const noexcept { return b_; }
  std::size_t memory_bytes() const noexcept { return regs_.size(); }
  void clear();

  /// Direct register write — used to load state collected by a FlyMon CMU
  /// (the data plane tracks max rho, the control plane runs this estimator).
  void load_register(std::size_t idx, std::uint8_t rho);
  std::uint8_t register_at(std::size_t idx) const { return regs_.at(idx); }

 private:
  unsigned b_;
  std::vector<std::uint8_t> regs_;
};

}  // namespace flymon::sketch
