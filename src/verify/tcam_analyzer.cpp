// TCAM lint analyzer: per-CMU initialization rules linted for shadowed /
// unreachable entries and order-dependent same-priority conflicts, plus
// address-translation range expansions checked for exact reassembly and the
// preparation stage's TCAM block budget (paper §3.3).
#include <sstream>
#include <string>

#include "common/bits.hpp"
#include "verify/tcam_lint.hpp"
#include "verify/verifier.hpp"

namespace flymon::verify {
namespace {

using dataplane::TernaryPattern;

std::string cmu_site(unsigned g, unsigned c) {
  return "g" + std::to_string(g) + ".cmu" + std::to_string(c);
}

/// A task filter as the 64-bit ternary key the initialization table
/// matches: src prefix in the high word, dst prefix in the low word.
TernaryPattern filter_pattern(const TaskFilter& f) {
  auto prefix_mask = [](std::uint8_t len) -> std::uint64_t {
    if (len == 0) return 0;
    return (0xFFFF'FFFFull << (32u - len)) & 0xFFFF'FFFFull;
  };
  TernaryPattern p;
  p.mask = (prefix_mask(f.src_len) << 32) | prefix_mask(f.dst_len);
  p.value = ((std::uint64_t{f.src_ip} << 32) | f.dst_ip) & p.mask;
  return p;
}

std::string action_tag(const CmuTaskEntry& e) {
  std::ostringstream out;
  out << dataplane::to_string(e.op) << "@[" << e.partition.base << "+"
      << e.partition.size << "]";
  return out.str();
}

class TcamAnalyzer final : public Analyzer {
 public:
  std::string_view name() const noexcept override { return "tcam"; }
  std::string_view description() const noexcept override {
    return "shadowed/conflicting ternary rules, range-expansion reassembly, "
           "preparation TCAM budget";
  }

  void run(const VerifyContext& ctx, VerifyReport& report) const override {
    const FlyMonDataPlane& dp = *ctx.dataplane;
    const bool tcam_translation =
        ctx.controller == nullptr ||
        ctx.controller->strategy() == TranslationStrategy::kTcam;

    for (unsigned g = 0; g < dp.num_groups(); ++g) {
      const auto prep_budget =
          CmuGroup::stage_demands(dp.group(g).config())
              [static_cast<unsigned>(GroupStage::kPreparation)]
              [dataplane::Resource::kTcamBlock];
      std::size_t group_addr_entries = 0;
      unsigned addr_key_bits = 1;

      for (unsigned c = 0; c < dp.group(g).num_cmus(); ++c) {
        const Cmu& cmu = dp.group(g).cmu(c);
        const std::string site = cmu_site(g, c);

        // Entries are stored priority-sorted (install order breaking
        // ties) — exactly the order Cmu::process scans, so lint them as-is.
        std::vector<LintEntry> lint;
        lint.reserve(cmu.entries().size());
        for (const CmuTaskEntry& e : cmu.entries()) {
          lint.push_back(LintEntry{filter_pattern(e.filter), e.priority,
                                   action_tag(e), e.sample_probability >= 1.0,
                                   "task " + std::to_string(e.task_id)});
        }
        for (const LintFinding& f : lint_entries(lint)) {
          if (f.kind == LintFinding::Kind::kShadowed) {
            report.add(Severity::kError, "tcam.shadow", site,
                       lint[f.entry].label + " can never match: " +
                           lint[f.blocker].label +
                           " matches first and covers its filter",
                       "tighten the earlier filter or raise this priority");
          } else {
            report.add(Severity::kWarning, "tcam.conflict", site,
                       lint[f.entry].label + " and " + lint[f.blocker].label +
                           " overlap at priority " +
                           std::to_string(lint[f.entry].priority) +
                           " with different actions (" + lint[f.entry].action +
                           " vs " + lint[f.blocker].action + ")",
                       "the winner depends on install order; use distinct "
                       "priorities");
          }
        }

        // Address-translation range expansion: each relocated block of a
        // sub-register partition must reassemble exactly (paper Fig 9).
        if (!tcam_translation) continue;
        const std::uint32_t total = cmu.reg().size();
        addr_key_bits = total > 1 ? log2_floor(total) : 1;
        for (const CmuTaskEntry& e : cmu.entries()) {
          const MemoryPartition& p = e.partition;
          if (p.size == 0 || !is_pow2(p.size) || p.size >= total) continue;
          const std::uint32_t blocks = total / p.size;
          for (std::uint32_t b = 0; b < blocks; ++b) {
            if (b == p.base / p.size) continue;  // home block: default entry
            const std::uint64_t lo = std::uint64_t{b} * p.size;
            const std::uint64_t hi = lo + p.size - 1;
            const auto patterns =
                dataplane::range_to_ternary(lo, hi, addr_key_bits);
            group_addr_entries += patterns.size();
            const std::string defect =
                check_range_reassembly(patterns, lo, hi, addr_key_bits);
            if (!defect.empty()) {
              report.add(Severity::kError, "tcam.range", site,
                         "task " + std::to_string(e.task_id) +
                             " block " + std::to_string(b) +
                             " expansion broken: " + defect);
            }
          }
        }
      }

      // The group's preparation stage reserves a fixed TCAM slice; warn
      // when the rendered address entries would not fit it.
      if (group_addr_entries > 0) {
        const unsigned need = dataplane::tcam_blocks_for(
            group_addr_entries, addr_key_bits);
        if (need > prep_budget) {
          report.add(Severity::kWarning, "tcam.budget",
                     "g" + std::to_string(g) + ".prep",
                     std::to_string(group_addr_entries) +
                         " address-translation entries need " +
                         std::to_string(need) + " TCAM blocks, stage budget is " +
                         std::to_string(prep_budget),
                     "coarsen partitions or switch to shift translation");
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Analyzer> make_tcam_analyzer() {
  return std::make_unique<TcamAnalyzer>();
}

}  // namespace flymon::verify
