#include "verify/mutations.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "exec/exec_plan.hpp"
#include "telemetry/export.hpp"
#include "verify/translate/translate.hpp"
#include "verify/verifier.hpp"

namespace flymon::verify {
namespace {

using control::Controller;
using control::DeployedTask;
using control::UnitPlacement;
using dataplane::StatefulOp;

/// First placed unit of the first deployed task.
const UnitPlacement& first_placement(const Controller& ctl) {
  for (const std::uint32_t id : ctl.task_ids()) {
    const DeployedTask* t = ctl.task(id);
    if (t != nullptr && !t->rows.empty() && !t->rows[0].units.empty()) {
      return t->rows[0].units[0];
    }
  }
  throw std::logic_error("mutation harness: no deployed placement");
}

const CmuTaskEntry& placed_entry(const MutableWorld& w, const UnitPlacement& up) {
  const CmuTaskEntry* e = w.dp.group(up.group).cmu(up.cmu).find(up.phys_id);
  if (e == nullptr) throw std::logic_error("mutation harness: entry missing");
  return *e;
}

/// A raw entry installed behind the controller's back, reusing the placed
/// entry's compressed key.  Sampled (< 1.0) so Cmu::install accepts it next
/// to the deployment's full-rate filters.
CmuTaskEntry raw_entry(const CmuTaskEntry& like, std::uint32_t task_id,
                       TaskFilter filter, MemoryPartition part,
                       std::uint32_t priority = 500) {
  CmuTaskEntry e;
  e.task_id = task_id;
  e.filter = filter;
  e.priority = priority;
  e.sample_probability = 0.5;
  e.key_sel = like.key_sel;
  e.key_slice = like.key_slice;
  e.partition = part;
  e.op = StatefulOp::kCondAdd;
  return e;
}

/// Configure one compression unit on an otherwise untouched group and hand
/// back a selector for it (for mutations that build entries from scratch).
CompressedKeySelector configure_unit(MutableWorld& w, unsigned group,
                                     const FlowKeySpec& spec) {
  auto& comp = w.dp.group(group).compression();
  const auto u = comp.free_unit();
  if (!u) throw std::logic_error("mutation harness: no free hash unit");
  comp.configure(*u, spec);
  return CompressedKeySelector{static_cast<std::int8_t>(*u), -1};
}

}  // namespace

std::vector<Mutation> mutation_catalogue() {
  std::vector<Mutation> cat;

  cat.push_back({"overlapping-partition", "memory.overlap",
                 "raw entry whose partition collides with a deployed task's block",
                 [](MutableWorld& w) {
                   const auto& up = first_placement(w.ctl);
                   const auto& e = placed_entry(w, up);
                   w.dp.group(up.group).cmu(up.cmu).install(raw_entry(
                       e, 9001, TaskFilter::src(0xAC10'0000u, 12), e.partition));
                 }});

  cat.push_back({"non-pow2-partition", "memory.pow2",
                 "entry with a 24-bucket partition (not a power of two)",
                 [](MutableWorld& w) {
                   const auto& up = first_placement(w.ctl);
                   const auto& e = placed_entry(w, up);
                   const std::uint32_t total =
                       w.dp.group(up.group).cmu(up.cmu).reg().size();
                   w.dp.group(up.group).cmu(up.cmu).install(
                       raw_entry(e, 9002, TaskFilter::src(0xC0A8'0000u, 16),
                                 MemoryPartition{total - 32, 24}));
                 }});

  cat.push_back({"misaligned-partition", "memory.align",
                 "1024-bucket partition whose base is not size-aligned",
                 [](MutableWorld& w) {
                   const auto& up = first_placement(w.ctl);
                   const auto& e = placed_entry(w, up);
                   const std::uint32_t total =
                       w.dp.group(up.group).cmu(up.cmu).reg().size();
                   w.dp.group(up.group).cmu(up.cmu).install(
                       raw_entry(e, 9003, TaskFilter::src(0xC0A8'0000u, 16),
                                 MemoryPartition{total / 2 + 512, 1024}));
                 }});

  cat.push_back({"orphaned-placement", "task.placement",
                 "table entry removed behind the controller's back",
                 [](MutableWorld& w) {
                   const auto& up = first_placement(w.ctl);
                   w.dp.group(up.group).cmu(up.cmu).remove(up.phys_id);
                 }});

  cat.push_back({"shadowed-entry", "tcam.shadow",
                 "sampled entry installed under a covering full-rate wildcard",
                 [](MutableWorld& w) {
                   const auto& up = first_placement(w.ctl);
                   const auto& e = placed_entry(w, up);
                   w.dp.group(up.group).cmu(up.cmu).install(
                       raw_entry(e, 9005, TaskFilter::src(0x0A00'0000u, 8),
                                 MemoryPartition{32768, 1024}, 500));
                 }});

  cat.push_back({"conflicting-priority", "tcam.conflict",
                 "overlapping same-priority entries with divergent actions",
                 [](MutableWorld& w) {
                   const unsigned g = w.dp.num_groups() - 1;
                   const auto sel =
                       configure_unit(w, g, FlowKeySpec::src_ip());
                   Cmu& cmu = w.dp.group(g).cmu(2);
                   CmuTaskEntry a;
                   a.task_id = 9006;
                   a.filter = TaskFilter::src(0x0A00'0000u, 8);
                   a.priority = 100;
                   a.sample_probability = 0.5;
                   a.key_sel = sel;
                   a.partition = {0, 1024};
                   a.op = StatefulOp::kCondAdd;
                   CmuTaskEntry b = a;
                   b.task_id = 9007;
                   b.filter = TaskFilter::src(0x0A01'0000u, 16);
                   b.partition = {1024, 1024};
                   b.op = StatefulOp::kMax;
                   cmu.install(a);
                   cmu.install(b);
                 }});

  cat.push_back({"unloaded-operation", "task.op",
                 "entry selecting XOR on a SALU that never pre-loaded it",
                 [](MutableWorld& w) {
                   const unsigned g = w.dp.num_groups() - 1;
                   const auto sel =
                       configure_unit(w, g, FlowKeySpec::dst_ip());
                   Cmu& cmu = w.dp.group(g).cmu(1);
                   CmuTaskEntry e;
                   e.task_id = 9008;
                   e.filter = TaskFilter::src(0x0A00'0000u, 8);
                   e.sample_probability = 0.5;
                   e.key_sel = sel;
                   e.partition = {0, 1024};
                   e.op = StatefulOp::kXor;
                   cmu.install(e);
                 }});

  cat.push_back({"cleared-selector", "task.selector",
                 "hash unit cleared while a deployed entry still reads it",
                 [](MutableWorld& w) {
                   const auto& up = first_placement(w.ctl);
                   const auto& e = placed_entry(w, up);
                   w.dp.group(up.group).compression().clear_unit(
                       static_cast<unsigned>(e.key_sel.unit_a));
                 }});

  cat.push_back({"aliased-hash-specs", "task.alias",
                 "two hash units of one group configured with the same key spec",
                 [](MutableWorld& w) {
                   const unsigned g = w.dp.num_groups() - 1;
                   configure_unit(w, g, FlowKeySpec::five_tuple());
                   configure_unit(w, g, FlowKeySpec::five_tuple());
                 }});

  cat.push_back({"plan-stage-collision", "resources.stage",
                 "two groups cross-stacked onto the same start stage",
                 [](MutableWorld& w) {
                   if (w.plan.start_stage.size() < 2) {
                     throw std::logic_error("mutation harness: plan too small");
                   }
                   w.plan.start_stage[1] = w.plan.start_stage[0];
                 }});

  // ---- semantic-dataflow mutations (src/verify/dataflow_*.cpp) ----

  cat.push_back({"dataflow-zeroed-hash-mask", "dataflow.key.entropy",
                 "hash unit configured with an all-zero mask (constant key)",
                 [](MutableWorld& w) {
                   configure_unit(w, w.dp.num_groups() - 1, FlowKeySpec{});
                 }});

  cat.push_back({"dataflow-self-cancelling-key", "dataflow.key.cancel",
                 "entry XORing a compressed key with itself (constant-0 key)",
                 [](MutableWorld& w) {
                   const unsigned g = w.dp.num_groups() - 1;
                   const auto sel =
                       configure_unit(w, g, FlowKeySpec::src_ip());
                   CmuTaskEntry e;
                   e.task_id = 9011;
                   e.filter = TaskFilter::src(0x0A00'0000u, 8);
                   e.sample_probability = 0.5;
                   e.key_sel = {sel.unit_a, sel.unit_a};  // XOR with itself
                   e.partition = {0, 1024};
                   e.op = StatefulOp::kCondAdd;
                   w.dp.group(g).cmu(2).install(e);
                 }});

  cat.push_back({"dataflow-undersized-partition", "dataflow.accuracy.epsilon",
                 "CMS task whose 64 buckets/row cannot reach epsilon=1e-6",
                 [](MutableWorld& w) {
                   TaskSpec tiny;
                   tiny.name = "tiny-hh";
                   tiny.filter = TaskFilter::src(0xAC10'0000u, 12);
                   tiny.key = FlowKeySpec::src_ip();
                   tiny.attribute = AttributeKind::kFrequency;
                   tiny.algorithm = Algorithm::kCms;
                   tiny.memory_buckets = 64;
                   tiny.target_epsilon = 1e-6;
                   const auto r = w.ctl.add_task(tiny);
                   if (!r.ok) {
                     throw std::logic_error(
                         "mutation harness: tiny CMS deploy failed: " + r.error);
                   }
                 }});

  cat.push_back({"dataflow-overflow-preload", "dataflow.range.overflow",
                 "Cond-ADD whose 2^30 increment can exceed the value mask",
                 [](MutableWorld& w) {
                   const auto& up = first_placement(w.ctl);
                   const auto& e = placed_entry(w, up);
                   CmuTaskEntry bad =
                       raw_entry(e, 9014, TaskFilter::src(0xC0A8'0000u, 16),
                                 MemoryPartition{32768, 1024});
                   bad.p1 = ParamSelect::constant(0x4000'0000u);
                   w.dp.group(up.group).cmu(up.cmu).install(bad);
                 }});

  cat.push_back({"dataflow-aliased-task-rows", "dataflow.key.alias",
                 "two rows of one task rewritten onto the same key slice",
                 [](MutableWorld& w) {
                   for (const std::uint32_t id : w.ctl.task_ids()) {
                     const DeployedTask* t = w.ctl.task(id);
                     if (t == nullptr || t->rows.size() < 2) continue;
                     const auto& u0 = t->rows[0].units[0];
                     const auto& u1 = t->rows[1].units[0];
                     if (u0.group != u1.group) continue;
                     const CmuTaskEntry& e0 = placed_entry(w, u0);
                     CmuTaskEntry moved = placed_entry(w, u1);
                     w.dp.group(u1.group).cmu(u1.cmu).remove(u1.phys_id);
                     moved.key_slice = e0.key_slice;  // collapse onto row 0
                     w.dp.group(u1.group).cmu(u1.cmu).install(moved);
                     return;
                   }
                   throw std::logic_error(
                       "mutation harness: no same-group multi-row task");
                 }});

  return cat;
}

namespace {

/// First compiled entry satisfying `pred`; throws when the base scenario
/// lacks one (harness bug, not a detection failure).
template <typename Pred>
exec::CompiledEntry& find_entry(exec::ExecPlan& plan, Pred pred,
                                const char* what) {
  for (exec::CompiledEntry& e : exec::PlanMutator::entries(plan)) {
    if (pred(e)) return e;
  }
  throw std::logic_error(std::string("plan mutation harness: no entry ") +
                         what);
}

}  // namespace

std::vector<PlanMutation> plan_mutation_catalogue() {
  std::vector<PlanMutation> cat;

  cat.push_back(
      {"miscompile-wrong-preshift", "translate.address",
       "address pre-shift off by one: every packet lands in the wrong bucket",
       [](exec::ExecPlan& plan) {
         exec::CompiledEntry& e = find_entry(
             plan,
             [](const exec::CompiledEntry& ce) {
               return (ce.key_slot_a != 0 || ce.key_slot_b != 0) &&
                      ce.addr_mask != 0;
             },
             "with a hashed multi-bucket partition");
         e.addr_shift += 1;
       }});

  cat.push_back(
      {"miscompile-dropped-filter", "translate.filter",
       "filter prefix term dropped: the entry matches traffic it must not",
       [](exec::ExecPlan& plan) {
         exec::CompiledEntry& e = find_entry(
             plan,
             [](const exec::CompiledEntry& ce) {
               return ce.filter_src_mask != 0 || ce.filter_dst_mask != 0;
             },
             "with a non-wildcard filter");
         e.filter_src_mask = 0;
         e.filter_dst_mask = 0;
       }});

  cat.push_back(
      {"miscompile-swapped-opcode", "translate.op",
       "Cond-ADD lowered to MAX: counts silently become maxima",
       [](exec::ExecPlan& plan) {
         exec::CompiledEntry& e = find_entry(
             plan,
             [](const exec::CompiledEntry& ce) {
               return ce.op == StatefulOp::kCondAdd;
             },
             "with a Cond-ADD op");
         e.op = StatefulOp::kMax;
       }});

  cat.push_back(
      {"miscompile-cleared-blockers", "translate.merge.unsound",
       "merge blockers wiped: a register-gated plan claims to shard-merge "
       "exactly",
       [](exec::ExecPlan& plan) {
         if (plan.merge_blockers().empty()) {
           throw std::logic_error(
               "plan mutation harness: base scenario has no merge blockers");
         }
         exec::PlanMutator::merge_blockers(plan).clear();
         exec::PlanMutator::merge_blocker_kinds(plan).clear();
       }});

  cat.push_back(
      {"miscompile-merge-identity", "translate.merge.law",
       "merge region saturation mask narrowed: the fold loses its identity "
       "over the register domain",
       [](exec::ExecPlan& plan) {
         for (exec::MergeRegion& r : exec::PlanMutator::merge_regions(plan)) {
           // Only kSum / kXor folds consult the mask; narrow one of those.
           if (r.kind == exec::MergeKind::kSum ||
               r.kind == exec::MergeKind::kXor) {
             r.value_mask >>= 16;
             return;
           }
         }
         throw std::logic_error(
             "plan mutation harness: no mask-sensitive merge region");
       }});

  cat.push_back(
      {"miscompile-stale-lane", "translate.lane",
       "hash-lane snapshot cleared: compiled hashing diverges from the live "
       "compression stage",
       [](exec::ExecPlan& plan) {
         auto& slots = exec::PlanMutator::hash_slots(plan);
         if (slots.size() < 2) {
           throw std::logic_error(
               "plan mutation harness: no configured hash slot");
         }
         slots[1].unit.clear_mask();
       }});

  cat.push_back(
      {"miscompile-bogus-chain", "translate.chain",
       "entry rewired to publish on a chain channel the deployment never "
       "writes",
       [](exec::ExecPlan& plan) {
         exec::CompiledEntry& e = find_entry(
             plan,
             [](const exec::CompiledEntry& ce) {
               return ce.chain_out == exec::kNoChain;
             },
             "without a chain output");
         e.chain_out = 7;
       }});

  return cat;
}

namespace {

/// Deploy the mixed Table-1 scenario every mutation corrupts: a wildcard
/// heavy-hitter CMS, a filtered Bloom filter, and a chained Odd Sketch
/// (which also exercises the reserved XOR slot and chain channels).
void deploy_base_scenario(Controller& ctl) {
  TaskSpec cms;
  cms.name = "hh";
  cms.key = FlowKeySpec::src_ip();
  cms.attribute = AttributeKind::kFrequency;
  cms.algorithm = Algorithm::kCms;
  cms.memory_buckets = 4096;

  TaskSpec bloom;
  bloom.name = "blacklist";
  bloom.filter = TaskFilter::src(0x0A00'0000u, 8);
  bloom.key = FlowKeySpec::ip_pair();
  bloom.attribute = AttributeKind::kExistence;
  bloom.algorithm = Algorithm::kBloomFilter;
  bloom.memory_buckets = 16384;

  TaskSpec odd;
  odd.name = "similarity";
  odd.filter = TaskFilter::dst(0xC0A8'0000u, 16);
  odd.key = FlowKeySpec::src_ip();
  odd.attribute = AttributeKind::kSimilarity;
  odd.algorithm = Algorithm::kOddSketch;
  odd.memory_buckets = 8192;

  for (const TaskSpec& spec : {cms, bloom, odd}) {
    const auto r = ctl.add_task(spec);
    if (!r.ok) {
      throw std::logic_error("mutation harness: base deploy failed: " + r.error);
    }
  }
}

}  // namespace

bool SelfTestResult::passed() const noexcept {
  return baseline_clean &&
         std::all_of(cases.begin(), cases.end(),
                     [](const SelfTestCase& c) { return c.detected; });
}

namespace {

/// Corrupt a fresh base world with `m` and verify it.
VerifyReport verify_mutated_world(const Mutation& m) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  deploy_base_scenario(ctl);
  auto plan = control::cross_stack(dataplane::TofinoModel::kNumStages,
                                   dp.group(0).config());
  MutableWorld world{dp, ctl, plan};
  m.apply(world);
  return verify_deployment(ctl, &plan);
}

/// Corrupt a fresh base world's PUBLISHED plan with `m` and run the
/// translation validator over it.  The const_cast is confined to the
/// self-test: nothing processes packets against the plan while it mutates.
VerifyReport verify_mutated_plan(const PlanMutation& m) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  deploy_base_scenario(ctl);  // every add_task republishes the plan
  const auto plan =
      std::const_pointer_cast<exec::ExecPlan>(dp.current_plan());
  if (plan == nullptr) {
    throw std::logic_error("plan mutation harness: no published plan");
  }
  m.apply(*plan);
  return validate_plan(dp, *plan);
}

}  // namespace

SelfTestResult run_mutation_self_test(std::string_view name_prefix) {
  SelfTestResult result;
  {
    FlyMonDataPlane dp(9);
    Controller ctl(dp);
    deploy_base_scenario(ctl);
    auto plan = control::cross_stack(dataplane::TofinoModel::kNumStages,
                                     dp.group(0).config());
    VerifyReport report = verify_deployment(ctl, &plan);
    // The published compiled plan must also translate clean — the plan
    // mutations below only prove detection if the unmutated plan doesn't
    // already diagnose.
    if (const auto compiled = dp.current_plan(); compiled != nullptr) {
      report.merge(validate_plan(dp, *compiled));
    }
    result.baseline_clean = report.empty();
    result.baseline_diagnostics = report.format();
  }

  const auto matches = [&](const std::string& name) {
    return name_prefix.empty() ||
           std::string_view(name).substr(0, name_prefix.size()) == name_prefix;
  };
  for (const Mutation& m : mutation_catalogue()) {
    if (!matches(m.name)) continue;
    const VerifyReport report = verify_mutated_world(m);
    SelfTestCase c;
    c.mutation = m.name;
    c.expected_check = m.expected_check;
    c.detected = report.has_check(m.expected_check);
    c.diagnostics = report.format();
    result.cases.push_back(std::move(c));
  }
  for (const PlanMutation& m : plan_mutation_catalogue()) {
    if (!matches(m.name)) continue;
    const VerifyReport report = verify_mutated_plan(m);
    SelfTestCase c;
    c.mutation = m.name;
    c.expected_check = m.expected_check;
    c.detected = report.has_check(m.expected_check);
    c.diagnostics = report.format();
    result.cases.push_back(std::move(c));
  }
  return result;
}

std::optional<VerifyReport> run_single_mutation(std::string_view name) {
  for (const Mutation& m : mutation_catalogue()) {
    if (m.name == name) return verify_mutated_world(m);
  }
  for (const PlanMutation& m : plan_mutation_catalogue()) {
    if (m.name == name) return verify_mutated_plan(m);
  }
  return std::nullopt;
}

std::string format(const SelfTestResult& result) {
  std::ostringstream out;
  out << "baseline: " << (result.baseline_clean ? "clean" : "NOT CLEAN") << '\n';
  if (!result.baseline_clean) out << result.baseline_diagnostics;
  for (const SelfTestCase& c : result.cases) {
    out << (c.detected ? "caught " : "MISSED ") << c.mutation << " (expected "
        << c.expected_check << ")\n";
    if (!c.detected) out << c.diagnostics;
  }
  return out.str();
}

std::string to_json(const SelfTestResult& result) {
  std::ostringstream out;
  out << "{\"baseline_clean\":" << (result.baseline_clean ? "true" : "false")
      << ",\"passed\":" << (result.passed() ? "true" : "false")
      << ",\"cases\":[";
  bool first = true;
  for (const SelfTestCase& c : result.cases) {
    if (!first) out << ',';
    first = false;
    out << "{\"mutation\":\"" << telemetry::json_escape(c.mutation)
        << "\",\"expected_check\":\"" << telemetry::json_escape(c.expected_check)
        << "\",\"detected\":" << (c.detected ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace flymon::verify
