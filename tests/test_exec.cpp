// Tests for the compiled ExecPlan hot path:
//   - golden equivalence: the interpreted per-packet path, the compiled
//     per-packet path and the compiled batched path must leave byte-identical
//     register state and identical telemetry counts for the same trace;
//   - tracer fallback: traced packets run the interpreted slow path even
//     when a plan is published, producing the same trace records;
//   - plan generations across controller reconfiguration;
//   - RCU snapshot swap under a concurrent reconfiguration thread (the
//     interesting assertions fire under TSan: no data race, no torn plan).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "control/controller.hpp"
#include "exec/exec_plan.hpp"
#include "packet/trace_gen.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_ring.hpp"
#include "verify/planner.hpp"

namespace flymon {
namespace {

/// Flip the global telemetry switch for one test, restoring on exit.
struct EnabledGuard {
  explicit EnabledGuard(bool on) : prev_(telemetry::enabled()) {
    telemetry::set_enabled(on);
  }
  ~EnabledGuard() { telemetry::set_enabled(prev_); }
  bool prev_;
};

/// A pipeline + controller bound to a private registry, so counter
/// comparisons between worlds are not polluted by other tests.
struct World {
  telemetry::Registry registry;
  FlyMonDataPlane dp{9};
  control::Controller ctl{dp};

  World() {
    dp.bind_telemetry(registry);
    ctl.bind_telemetry(registry);
  }
};

std::vector<Packet> make_trace(std::size_t flows, std::size_t pkts,
                               std::uint64_t seed = 7) {
  TraceConfig cfg;
  cfg.num_flows = flows;
  cfg.num_packets = pkts;
  cfg.zipf_alpha = 1.05;
  cfg.seed = seed;
  return TraceGenerator::generate(cfg);
}

/// The golden mix: every stateful op, both gated preparations, composite
/// chains, a sampled task and a filtered task.  Deployed in the same order
/// everywhere so public task ids (and thus sampling seeds) line up.
void deploy_mix(control::Controller& ctl) {
  {
    TaskSpec s;
    s.name = "cms";
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kFrequency;
    s.memory_buckets = 8192;
    s.rows = 3;
    const auto r = ctl.add_task(s);
    ASSERT_TRUE(r.ok) << "cms: " << r.error;
  }
  {
    TaskSpec s;
    s.name = "bloom";
    s.key = FlowKeySpec::src_ip();
    s.attribute = AttributeKind::kExistence;
    s.memory_buckets = 8192;
    s.rows = 2;
    const auto r = ctl.add_task(s);
    ASSERT_TRUE(r.ok) << "bloom: " << r.error;
  }
  {
    TaskSpec s;
    s.name = "beaucoup";
    s.key = FlowKeySpec::dst_ip();
    s.attribute = AttributeKind::kDistinct;
    s.param = ParamSpec::compressed(FlowKeySpec::src_ip());
    s.algorithm = Algorithm::kBeauCoup;
    s.report_threshold = 100;
    s.memory_buckets = 8192;
    s.rows = 2;
    const auto r = ctl.add_task(s);
    ASSERT_TRUE(r.ok) << "beaucoup: " << r.error;
  }
  {
    TaskSpec s;
    s.name = "maxq";
    s.key = FlowKeySpec::ip_pair();
    s.attribute = AttributeKind::kMax;
    s.param = ParamSpec::metadata(MetaField::kQueueLen);
    s.memory_buckets = 4096;
    s.rows = 2;
    const auto r = ctl.add_task(s);
    ASSERT_TRUE(r.ok) << "maxq: " << r.error;
  }
  {
    TaskSpec s;
    s.name = "maxgap";
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kMax;
    s.algorithm = Algorithm::kMaxInterarrival;
    s.memory_buckets = 16384;
    s.rows = 1;
    const auto r = ctl.add_task(s);
    ASSERT_TRUE(r.ok) << "maxgap: " << r.error;
  }
  {
    TaskSpec s;
    s.name = "braids";
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kFrequency;
    s.algorithm = Algorithm::kCounterBraids;
    s.memory_buckets = 8192;
    s.rows = 1;
    const auto r = ctl.add_task(s);
    ASSERT_TRUE(r.ok) << "braids: " << r.error;
  }
  {
    TaskSpec s;
    s.name = "sampled";
    s.key = FlowKeySpec::src_ip();
    s.attribute = AttributeKind::kFrequency;
    s.memory_buckets = 4096;
    s.rows = 1;
    s.sample_probability = 0.5;
    const auto r = ctl.add_task(s);
    ASSERT_TRUE(r.ok) << "sampled: " << r.error;
  }
  {
    TaskSpec s;
    s.name = "filtered";
    s.filter = TaskFilter::src(0x0A000000, 8);
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kFrequency;
    s.memory_buckets = 4096;
    s.rows = 1;
    const auto r = ctl.add_task(s);
    ASSERT_TRUE(r.ok) << "filtered: " << r.error;
  }
}

void deploy_cms(control::Controller& ctl, const char* name = "cms") {
  TaskSpec s;
  s.name = name;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 4096;
  s.rows = 3;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;
}

void expect_identical_registers(const FlyMonDataPlane& a,
                                const FlyMonDataPlane& b, const char* what) {
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (unsigned g = 0; g < a.num_groups(); ++g) {
    ASSERT_EQ(a.group(g).num_cmus(), b.group(g).num_cmus());
    for (unsigned c = 0; c < a.group(g).num_cmus(); ++c) {
      const auto& ra = a.group(g).cmu(c).reg();
      const auto& rb = b.group(g).cmu(c).reg();
      ASSERT_EQ(ra.size(), rb.size());
      EXPECT_EQ(ra.read_range(0, ra.size()), rb.read_range(0, rb.size()))
          << what << ": registers differ at group " << g << " cmu " << c;
    }
  }
}

/// Compare every hot-path counter series by direct registry lookup (lookups
/// auto-register a zero-valued series, so eager registration on the
/// compiled path vs lazy on the interpreted path cannot skew the result).
void expect_identical_counters(World& a, World& b, const char* what) {
  const auto eq = [&](const std::string& name,
                      const telemetry::Labels& labels) {
    EXPECT_EQ(a.registry.counter(name, labels).value(),
              b.registry.counter(name, labels).value())
        << what << ": counter " << name << " differs";
  };
  eq("flymon_packets_total", {});
  for (unsigned g = 0; g < a.dp.num_groups(); ++g) {
    const telemetry::Labels gl = {{"group", std::to_string(g)}};
    eq("flymon_group_packets_total", gl);
    eq("flymon_hash_invocations_total", gl);
    for (unsigned c = 0; c < a.dp.group(g).num_cmus(); ++c) {
      const telemetry::Labels cl = {{"group", std::to_string(g)},
                                    {"cmu", std::to_string(c)}};
      eq("flymon_cmu_updates_total", cl);
      eq("flymon_cmu_sampled_out_total", cl);
      eq("flymon_cmu_prep_aborts_total", cl);
      for (const dataplane::StatefulOp op :
           {dataplane::StatefulOp::kNop, dataplane::StatefulOp::kCondAdd,
            dataplane::StatefulOp::kMax, dataplane::StatefulOp::kAndOr,
            dataplane::StatefulOp::kXor}) {
        eq("flymon_salu_op_total",
           {{"group", std::to_string(g)},
            {"cmu", std::to_string(c)},
            {"op", dataplane::to_string(op)}});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Golden equivalence: interpreted vs compiled vs compiled-batched.
// ---------------------------------------------------------------------------

TEST(ExecGolden, CompiledAndBatchedMatchInterpretedByteForByte) {
  EnabledGuard on(true);
  const std::vector<Packet> trace = make_trace(2000, 40'000);

  World wi, wc, wb;
  ASSERT_NO_FATAL_FAILURE(deploy_mix(wi.ctl));
  ASSERT_NO_FATAL_FAILURE(deploy_mix(wc.ctl));
  ASSERT_NO_FATAL_FAILURE(deploy_mix(wb.ctl));

  // World A: interpreted per-packet path (plan dropped).
  wi.dp.unpublish_plan();
  ASSERT_EQ(wi.dp.plan_generation(), 0u);
  for (const Packet& p : trace) wi.dp.process(p);

  // World B: compiled path, one packet at a time.
  ASSERT_GT(wc.dp.plan_generation(), 0u);
  for (const Packet& p : trace) wc.dp.process(p);

  // World C: compiled path, whole trace as one batch.
  const std::uint64_t gen = wb.dp.process_batch(trace);
  EXPECT_GT(gen, 0u);
  EXPECT_EQ(gen, wb.dp.plan_generation());

  EXPECT_EQ(wi.dp.packets_processed(), trace.size());
  EXPECT_EQ(wc.dp.packets_processed(), trace.size());
  EXPECT_EQ(wb.dp.packets_processed(), trace.size());

  expect_identical_registers(wi.dp, wc.dp, "interpreted vs compiled");
  expect_identical_registers(wi.dp, wb.dp, "interpreted vs batched");
  expect_identical_counters(wi, wc, "interpreted vs compiled");
  expect_identical_counters(wi, wb, "interpreted vs batched");
}

// ---------------------------------------------------------------------------
// Tracer fallback: traced packets take the interpreted slow path and record
// the same PHV transformations as a fully interpreted run.
// ---------------------------------------------------------------------------

TEST(ExecTracer, TracedPacketsFallBackToInterpretedPath) {
  EnabledGuard on(true);
  const std::vector<Packet> trace = make_trace(50, 200, 3);

  World wi, wb;
  ASSERT_NO_FATAL_FAILURE(deploy_cms(wi.ctl));
  ASSERT_NO_FATAL_FAILURE(deploy_cms(wb.ctl));

  telemetry::PacketTracer ti(256, 4), tb(256, 4);
  wi.dp.set_tracer(&ti);
  wi.dp.unpublish_plan();
  for (const Packet& p : trace) wi.dp.process(p);

  wb.dp.set_tracer(&tb);
  ASSERT_GT(wb.dp.process_batch(trace), 0u);

  EXPECT_EQ(ti.packets_seen(), tb.packets_seen());
  EXPECT_EQ(ti.records_taken(), tb.records_taken());
  EXPECT_GT(tb.records_taken(), 0u);
  expect_identical_registers(wi.dp, wb.dp, "tracer fallback");

  const auto ra = ti.records();
  const auto rb = tb.records();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].seq, rb[i].seq);
    ASSERT_EQ(ra[i].steps.size(), rb[i].steps.size());
    for (std::size_t j = 0; j < ra[i].steps.size(); ++j) {
      const auto& sa = ra[i].steps[j];
      const auto& sb = rb[i].steps[j];
      EXPECT_EQ(sa.group, sb.group);
      EXPECT_EQ(sa.cmu, sb.cmu);
      EXPECT_EQ(sa.task_id, sb.task_id);
      EXPECT_EQ(sa.selected_key, sb.selected_key);
      EXPECT_EQ(sa.sliced_key, sb.sliced_key);
      EXPECT_EQ(sa.address, sb.address);
      EXPECT_STREQ(sa.op, sb.op);
      EXPECT_EQ(sa.p1, sb.p1);
      EXPECT_EQ(sa.p2, sb.p2);
      EXPECT_EQ(sa.result, sb.result);
      EXPECT_EQ(sa.aborted, sb.aborted);
    }
  }
}

// ---------------------------------------------------------------------------
// Plan lifecycle: generations advance with every reconfiguration, unpublish
// reverts to interpreted execution.
// ---------------------------------------------------------------------------

TEST(ExecPlanApi, GenerationAdvancesAcrossReconfiguration) {
  World w;
  EXPECT_EQ(w.dp.plan_generation(), 0u);
  EXPECT_EQ(w.dp.current_plan(), nullptr);

  ASSERT_NO_FATAL_FAILURE(deploy_cms(w.ctl, "first"));
  const std::uint64_t g1 = w.dp.plan_generation();
  ASSERT_GT(g1, 0u);

  const std::shared_ptr<const exec::ExecPlan> plan = w.dp.current_plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->generation(), g1);
  EXPECT_GT(plan->num_entries(), 0u);
  ASSERT_FALSE(plan->ownership().empty());
  bool named = false;
  for (const std::string& line : plan->signature()) {
    if (line.find("\"first\"") != std::string::npos) named = true;
  }
  EXPECT_TRUE(named) << "signature lines carry the owning task name";

  TaskSpec s;
  s.name = "second";
  s.key = FlowKeySpec::src_ip();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 2048;
  s.rows = 1;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;
  const std::uint64_t g2 = w.dp.plan_generation();
  EXPECT_GT(g2, g1);

  const auto rr = w.ctl.resize_task(r.task_id, 4096);
  ASSERT_TRUE(rr.ok) << rr.error;
  const std::uint64_t g3 = w.dp.plan_generation();
  EXPECT_GT(g3, g2);

  ASSERT_TRUE(w.ctl.remove_task(rr.task_id));
  const std::uint64_t g4 = w.dp.plan_generation();
  EXPECT_GT(g4, g3);

  // The old snapshot is immutable: its generation is untouched by later
  // publishes, readers holding it keep a consistent view.
  EXPECT_EQ(plan->generation(), g1);

  w.dp.unpublish_plan();
  EXPECT_EQ(w.dp.plan_generation(), 0u);
  const std::vector<Packet> trace = make_trace(10, 32, 5);
  EXPECT_EQ(w.dp.process_batch(trace), 0u);  // interpreted fallback
  EXPECT_EQ(w.dp.packets_processed(), trace.size());

  EXPECT_GT(w.dp.republish_plan(), g4);
}

TEST(ExecPlanApi, ProcessAllRoutesThroughBatchedPath) {
  World w;
  ASSERT_NO_FATAL_FAILURE(deploy_cms(w.ctl));
  const std::vector<Packet> trace = make_trace(100, 1000, 11);
  // process_all forwards process_batch's return: the executing generation.
  EXPECT_EQ(w.dp.process_all(trace), w.dp.plan_generation());
  EXPECT_GT(w.dp.plan_generation(), 0u);
  EXPECT_EQ(w.dp.packets_processed(), trace.size());
  // Batched and per-packet runs agree (same world, doubled state).
  World w2;
  ASSERT_NO_FATAL_FAILURE(deploy_cms(w2.ctl));
  for (const Packet& p : trace) w2.dp.process(p);
  expect_identical_registers(w.dp, w2.dp, "process_all vs per-packet");
}

// ---------------------------------------------------------------------------
// RCU snapshot swap: a processing thread hammers process_batch while the
// controller thread reconfigures.  Under TSan this is the no-data-race /
// no-torn-read regression test; everywhere it checks generations observed
// by the packet path are monotone (read-read coherence on the plan cell).
// ---------------------------------------------------------------------------

TEST(ExecRcu, PlanSwapUnderConcurrentReconfigIsRaceFree) {
  World w;
  ASSERT_NO_FATAL_FAILURE(deploy_cms(w.ctl, "base"));
  const std::vector<Packet> trace = make_trace(256, 2048, 9);

  std::atomic<bool> stop{false};
  std::uint64_t last_gen = 0;
  std::uint64_t batches = 0;
  bool monotone = true;
  std::thread proc([&] {
    while (true) {
      const std::uint64_t gen = w.dp.process_batch(trace);
      if (gen == 0 || gen < last_gen) {
        monotone = false;
        break;
      }
      last_gen = gen;
      ++batches;
      if (stop.load(std::memory_order_acquire) && batches >= 8) break;
    }
  });

  constexpr int kChurn = 25;
  for (int i = 0; i < kChurn; ++i) {
    TaskSpec s;
    s.name = "churn";
    s.key = FlowKeySpec::src_ip();
    s.attribute = AttributeKind::kFrequency;
    s.memory_buckets = 2048;
    s.rows = 1;
    const auto r = w.ctl.add_task(s);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(w.ctl.remove_task(r.task_id));
  }
  stop.store(true, std::memory_order_release);
  proc.join();

  EXPECT_TRUE(monotone) << "packet path observed a zero or decreasing "
                           "plan generation";
  EXPECT_GE(batches, 8u);
  // Deploy + kChurn * (add publish + remove publish) at minimum.
  EXPECT_GE(w.dp.plan_generation(), 1u + 2u * kChurn);
  EXPECT_EQ(w.dp.packets_processed(), batches * trace.size());
}

// ---------------------------------------------------------------------------
// Concurrent publishers: republish_plan from several threads must keep the
// published generation strictly monotone (publish_mu_ serialises compiles;
// PlanCell::store_if_newer is the belt-and-braces ordering check) and land
// on exactly initial + publishers * publishes.
// ---------------------------------------------------------------------------

TEST(ExecRcu, ConcurrentPublishersKeepGenerationsMonotone) {
  World w;
  ASSERT_NO_FATAL_FAILURE(deploy_cms(w.ctl, "base"));
  const std::uint64_t start = w.dp.plan_generation();
  ASSERT_GT(start, 0u);

  constexpr unsigned kPublishers = 4;
  constexpr unsigned kPublishes = 50;
  std::atomic<bool> stop{false};
  std::atomic<bool> monotone{true};
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t gen = w.dp.plan_generation();
      if (gen < last) {
        monotone.store(false, std::memory_order_relaxed);
        break;
      }
      last = gen;
    }
  });
  std::vector<std::thread> publishers;
  for (unsigned t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&] {
      for (unsigned i = 0; i < kPublishes; ++i) w.dp.republish_plan();
    });
  }
  for (std::thread& t : publishers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_TRUE(monotone.load()) << "a reader observed a decreasing generation";
  EXPECT_EQ(w.dp.plan_generation(), start + kPublishers * kPublishes);
}

// ---------------------------------------------------------------------------
// Dry-run plan diff: a staged batch reports exactly which compiled entries
// it would add/remove, without touching the live pipeline.
// ---------------------------------------------------------------------------

TEST(ExecPlanDiff, StagedBatchReportsCompiledEntryChanges) {
  World w;
  ASSERT_NO_FATAL_FAILURE(deploy_cms(w.ctl, "keep"));
  TaskSpec s;
  s.name = "drop";
  s.key = FlowKeySpec::src_ip();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 2048;
  s.rows = 2;
  const auto r = w.ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;
  const std::uint64_t live_gen = w.dp.plan_generation();

  const auto res = w.ctl.plan({control::PlanOp::remove(r.task_id)});
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.compiled_before.size(), w.dp.current_plan()->num_entries());
  EXPECT_LT(res.compiled_after.size(), res.compiled_before.size());

  const std::string diff =
      verify::format_plan_diff(res.compiled_before, res.compiled_after);
  EXPECT_NE(diff.find("\"drop\""), std::string::npos) << diff;
  EXPECT_EQ(diff.find("+ "), std::string::npos) << "removal adds nothing";

  // Dry run: the live plan was not republished.
  EXPECT_EQ(w.dp.plan_generation(), live_gen);

  // An empty batch diffs to no changes.
  const auto noop = w.ctl.plan({});
  ASSERT_TRUE(noop.ok) << noop.error;
  const std::string nodiff =
      verify::format_plan_diff(noop.compiled_before, noop.compiled_after);
  EXPECT_NE(nodiff.find("no compiled-entry changes"), std::string::npos)
      << nodiff;
}

}  // namespace
}  // namespace flymon
