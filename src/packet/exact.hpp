// Exact (ground-truth) statistics computed with unbounded memory.
// Every accuracy experiment compares a sketch estimate against these.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "packet/flowkey.hpp"
#include "packet/packet.hpp"

namespace flymon {

/// Scalar per-packet values a measurement task can accumulate.
enum class MetaField : std::uint8_t {
  kOne,          ///< constant 1 (packet count)
  kWireBytes,    ///< packet length
  kQueueLen,     ///< queue occupancy
  kQueueDelay,   ///< queueing delay (ns)
  kTimestamp,    ///< coarse arrival timestamp (ts_ns >> kTsShift)
};

/// Read a MetaField off a packet.
std::uint64_t read_meta(const Packet& p, MetaField f) noexcept;

using FreqMap = std::unordered_map<FlowKeyValue, std::uint64_t>;

/// Ground-truth calculators.  All take a packet span and group by a
/// FlowKeySpec exactly (no compression, no collisions).
class ExactStats {
 public:
  /// Sum of `param` per flow key (Frequency attribute).
  static FreqMap frequency(std::span<const Packet> trace, const FlowKeySpec& key,
                           MetaField param = MetaField::kOne);

  /// Number of distinct `param_key` values per flow key (Distinct attribute).
  static FreqMap distinct(std::span<const Packet> trace, const FlowKeySpec& key,
                          const FlowKeySpec& param_key);

  /// Maximum `param` per flow key (Max attribute).
  static FreqMap max_value(std::span<const Packet> trace, const FlowKeySpec& key,
                           MetaField param);

  /// Maximum inter-arrival gap (ns) per flow key; flows with one packet
  /// have gap 0.
  static FreqMap max_interarrival(std::span<const Packet> trace,
                                  const FlowKeySpec& key);

  /// Number of distinct flows under `key` (Cardinality).
  static std::uint64_t cardinality(std::span<const Packet> trace,
                                   const FlowKeySpec& key);

  /// Flow-size distribution: size -> number of flows of that size.
  static std::map<std::uint64_t, std::uint64_t> size_distribution(const FreqMap& freq);

  /// Shannon entropy (nats) of the flow-size empirical distribution:
  /// H = -sum_i (f_i/N) ln(f_i/N) over flows i, N = total packets.
  static double flow_entropy(const FreqMap& freq);

  /// Keys whose frequency >= threshold (heavy hitters / DDoS victims).
  static std::vector<FlowKeyValue> over_threshold(const FreqMap& freq,
                                                  std::uint64_t threshold);
};

}  // namespace flymon
