// Merge-soundness prover (DESIGN.md §13): proves the compiled plan's shard
// merge is exact.
//
// Part A checks each MergeRegion describes a fold that is a commutative,
// associative monoid with identity 0 over the *register's* value domain
// (probing the exact RegisterShard::merge_into fold, including the v == 0
// identity skip and the region's saturation mask), that the region metadata
// is structurally sound (bounds, value mask = register mask), and that
// every state-writing compiled entry is covered by a matching region — an
// uncovered entry's shard writes would be silently dropped at merge time.
//
// Part B independently re-derives the merge blockers from the *interpreted*
// deployment: ir::extract_ir's value intervals (PR 3) give each entry's
// effective p2 range after prep rewrites, from which the Cond-ADD
// unconditionality and AND-OR pinning conditions follow semantically rather
// than from the compiler's const-only syntactic rule.  The two answers are
// cross-checked in both directions:
//
//   derived > compiled  ->  translate.merge.unsound (ERROR): the compiler
//       believes a fold is exact that the semantics say is register-gated;
//       sharded execution would diverge from sequential execution.
//   compiled > derived  ->  translate.merge.spurious (WARNING): the
//       compiler is more conservative than necessary; the plan falls back
//       to sequential execution it could have avoided.
#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <sstream>
#include <vector>

#include "core/flymon_dataplane.hpp"
#include "exec/exec_plan.hpp"
#include "ir/ir.hpp"
#include "verify/translate/translate.hpp"

namespace flymon::verify::translate {
namespace {

using exec::CompiledCmu;
using exec::CompiledEntry;
using exec::ExecPlan;
using exec::MergeBlockerKind;
using exec::MergeKind;
using exec::MergeRegion;

/// The exact merge step RegisterShard::merge_into performs for one cell:
/// fold shard value `v` into live value `cur`.  Mirrored, not shared — the
/// point of translation validation is an independent implementation to
/// check the production one against.
std::uint32_t fold(MergeKind kind, std::uint32_t cur, std::uint32_t v,
                   std::uint32_t value_mask) {
  if (v == 0) return cur;  // merge_into skips zero shard cells
  switch (kind) {
    case MergeKind::kSum: {
      const std::uint64_t sum = std::uint64_t{cur} + v;
      return sum > value_mask ? value_mask : static_cast<std::uint32_t>(sum);
    }
    case MergeKind::kMax:
      return std::max(cur, v);
    case MergeKind::kOr:
      return cur | v;
    case MergeKind::kXor:
      return (cur ^ v) & value_mask;
  }
  return cur;
}

/// The reduction a SALU op folds under across shards; nullopt for kNop
/// (reads nothing, writes nothing).
std::optional<MergeKind> kind_of(dataplane::StatefulOp op) {
  switch (op) {
    case dataplane::StatefulOp::kNop:
      return std::nullopt;
    case dataplane::StatefulOp::kCondAdd:
      return MergeKind::kSum;
    case dataplane::StatefulOp::kMax:
      return MergeKind::kMax;
    case dataplane::StatefulOp::kAndOr:
      return MergeKind::kOr;
    case dataplane::StatefulOp::kXor:
      return MergeKind::kXor;
  }
  return std::nullopt;
}

/// Probe values spanning the register's value domain [0, domain_mask]:
/// identities, saturation boundaries, and alternating bit patterns.
std::vector<std::uint32_t> probe_values(std::uint32_t domain_mask) {
  std::vector<std::uint32_t> probes = {
      0u,          1u,          2u,           3u,
      domain_mask, domain_mask - 1u,          domain_mask >> 1,
      (domain_mask >> 1) + 1u,  0x5555'5555u, 0xAAAA'AAAAu,
      0x0F0F'0F0Fu, 0xFFFFu};
  for (std::uint32_t& p : probes) p &= domain_mask;
  std::sort(probes.begin(), probes.end());
  probes.erase(std::unique(probes.begin(), probes.end()), probes.end());
  return probes;
}

std::string region_site(const MergeRegion& r) {
  std::ostringstream os;
  os << "cmu " << r.cmu << " [" << r.base << ", " << (r.base + r.size) << ")";
  return os.str();
}

/// Prove the region's fold is a commutative/associative monoid with
/// identity 0 over the register's value domain: merging any multiset of
/// shard values must yield one result regardless of merge order.  Probed
/// exhaustively over representative triples; the first violated law is
/// reported with its counterexample.
void prove_monoid_laws(const MergeRegion& region, std::uint32_t domain_mask,
                       VerifyReport& report) {
  const std::vector<std::uint32_t> probes = probe_values(domain_mask);
  const auto law_failed = [&](const char* law, std::uint32_t a,
                              std::uint32_t b, std::uint32_t c,
                              std::uint32_t lhs, std::uint32_t rhs) {
    std::ostringstream os;
    os << to_string(region.kind) << " fold violates " << law << " over [0, "
       << domain_mask << "]: probes (" << a << ", " << b << ", " << c
       << ") give " << lhs << " vs " << rhs;
    report.add(Severity::kError, "translate.merge.law", region_site(region),
               os.str(),
               "shard merge order would change the register contents; the "
               "fold is not an exact reduction over this domain");
  };

  for (const std::uint32_t a : probes) {
    // Identity: folding one shard value into an untouched live cell must
    // reproduce the value (0 is both the fresh-cell state and the shard
    // identity the v == 0 skip assumes).
    if (fold(region.kind, 0, a, region.value_mask) != a ||
        fold(region.kind, a, 0, region.value_mask) != a) {
      law_failed("the identity law", a, 0, 0,
                 fold(region.kind, 0, a, region.value_mask),
                 fold(region.kind, a, 0, region.value_mask));
      return;
    }
    for (const std::uint32_t b : probes) {
      const std::uint32_t ab =
          fold(region.kind, fold(region.kind, 0, a, region.value_mask), b,
               region.value_mask);
      const std::uint32_t ba =
          fold(region.kind, fold(region.kind, 0, b, region.value_mask), a,
               region.value_mask);
      if (ab != ba) {
        law_failed("commutativity", a, b, 0, ab, ba);
        return;
      }
      for (const std::uint32_t c : probes) {
        // Merge-order exchange over three shards: (a then b then c) must
        // equal (c then b then a) — with commutativity above this covers
        // every merge order of three replicas.
        const std::uint32_t abc = fold(region.kind, ab, c, region.value_mask);
        const std::uint32_t cba = fold(
            region.kind,
            fold(region.kind, fold(region.kind, 0, c, region.value_mask), b,
                 region.value_mask),
            a, region.value_mask);
        if (abc != cba) {
          law_failed("associativity", a, b, c, abc, cba);
          return;
        }
      }
    }
  }
}

/// Effective p2 range after the preparation stage, mirroring Cmu::process:
/// the one-hot preps rewrite p2 to 1, SubtractGated consumes it as the
/// subtrahend and leaves 0 for the SALU, every other prep passes the raw
/// parameter through (KeepOnChainZero / BitSelectOneHotGated gate p1 only).
ir::Interval effective_p2(PrepFn prep, const ir::Interval& raw) {
  switch (prep) {
    case PrepFn::kCouponOneHot:
    case PrepFn::kBitSelectOneHot:
      return ir::Interval::exact(1);
    case PrepFn::kSubtractGated:
      return ir::Interval::exact(0);
    default:
      return raw;
  }
}

struct BlockerCounts {
  std::array<std::size_t, 4> by_kind{};

  std::size_t& operator[](MergeBlockerKind k) {
    return by_kind[static_cast<std::size_t>(k)];
  }
  std::size_t operator[](MergeBlockerKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }
};

constexpr std::array<MergeBlockerKind, 4> kAllBlockerKinds = {
    MergeBlockerKind::kChainOutput, MergeBlockerKind::kGatedCondAdd,
    MergeBlockerKind::kAndMode, MergeBlockerKind::kMixedWindow};

}  // namespace

void prove_merge_soundness(const FlyMonDataPlane& dp, const ExecPlan& plan,
                           VerifyReport& report) {
  const auto cmus = plan.compiled_cmus();
  const auto entries = plan.entries();

  if (plan.merge_blockers().size() != plan.merge_blocker_kinds().size()) {
    report.add(Severity::kError, "translate.merge.region", "plan",
               "merge blocker strings and kinds are not parallel arrays",
               "per-cause fallback accounting would misreport; the plan's "
               "merge metadata is corrupt");
  }

  // ---- Part A: region structure, monoid laws, entry coverage ----

  for (const MergeRegion& region : plan.merge_regions()) {
    if (region.cmu >= cmus.size()) {
      report.add(Severity::kError, "translate.merge.region",
                 region_site(region),
                 "region names a CMU outside the compiled plan");
      continue;
    }
    const dataplane::RegisterArray* reg = plan.live_register(region.cmu);
    if (reg == nullptr) {
      report.add(Severity::kError, "translate.merge.region",
                 region_site(region), "region's CMU has no bound register");
      continue;
    }
    if (region.size == 0 ||
        std::uint64_t{region.base} + region.size > reg->size()) {
      std::ostringstream os;
      os << "region window is empty or escapes the register ("
         << reg->size() << " cells)";
      report.add(Severity::kError, "translate.merge.region",
                 region_site(region), os.str(),
                 "merge_into would fold cells belonging to other partitions");
    }
    if (region.value_mask != reg->value_mask()) {
      std::ostringstream os;
      os << "region saturation mask 0x" << std::hex << region.value_mask
         << " differs from the register's value mask 0x" << reg->value_mask();
      report.add(Severity::kError, "translate.merge.mask", region_site(region),
                 os.str(),
                 "the merge fold would saturate/mask at a different bound "
                 "than the per-packet SALU");
    }
    // Laws are probed over the REGISTER's domain: that is what shard cells
    // actually hold, so a region mask narrower than the register also
    // surfaces here as an identity violation.
    prove_monoid_laws(region, reg->value_mask(), report);
  }

  // Coverage: every state-writing compiled entry must fold under exactly
  // the region its partition and op demand.
  for (std::uint32_t fc = 0; fc < cmus.size(); ++fc) {
    const CompiledCmu& cc = cmus[fc];
    if (cc.entry_end < cc.entry_begin || cc.entry_end > entries.size()) {
      continue;  // reported by validate_translation
    }
    for (std::uint32_t i = cc.entry_begin; i < cc.entry_end; ++i) {
      const CompiledEntry& ce = entries[i];
      const std::optional<MergeKind> want = kind_of(ce.op);
      if (!want) continue;  // kNop writes no state
      const bool covered = std::any_of(
          plan.merge_regions().begin(), plan.merge_regions().end(),
          [&](const MergeRegion& r) {
            return r.cmu == fc && r.base == ce.addr_base &&
                   r.size == ce.addr_mask + 1u && r.kind == *want &&
                   r.value_mask == ce.value_mask;
          });
      if (!covered) {
        std::ostringstream os;
        os << "state-writing entry " << i << " (op "
           << dataplane::to_string(ce.op) << ", window [" << ce.addr_base
           << ", " << (std::uint64_t{ce.addr_base} + ce.addr_mask + 1)
           << ")) is not covered by any matching merge region";
        std::ostringstream site;
        site << "cmu " << fc << " entry " << i;
        report.add(Severity::kError, "translate.merge.region", site.str(),
                   os.str(),
                   "its shard-replica writes would be dropped (or folded "
                   "under the wrong reduction) at merge time");
      }
    }
  }

  // ---- Part B: independent blocker derivation + two-way cross-check ----

  // Raw installed entries in pipeline order with their flat CMU index —
  // the same enumeration the compiler lowered from.
  struct RawEntry {
    unsigned group;
    unsigned cmu;
    std::uint32_t flat_cmu;
    const CmuTaskEntry* e;
    std::uint32_t register_value_mask;
    std::uint32_t register_size;
  };
  std::vector<RawEntry> raw;
  {
    std::vector<std::uint32_t> group_base(dp.num_groups() + 1, 0);
    for (unsigned g = 0; g < dp.num_groups(); ++g) {
      group_base[g + 1] = group_base[g] + dp.group(g).num_cmus();
    }
    ir::for_each_installed_entry(dp, [&](unsigned g, unsigned c,
                                         const Cmu& cmu,
                                         const CmuTaskEntry& e) {
      raw.push_back({g, c, group_base[g] + c, &e, cmu.reg().value_mask(),
                     cmu.reg().size()});
    });
  }

  // Interval facts from the interpreted deployment.  The controller handle
  // is not needed: blocker derivation only consumes per-entry value ranges,
  // not task ownership.
  const ir::PipelineIr pir = ir::extract_ir(dp, nullptr, 1ull << 26);
  if (pir.entries.size() != raw.size()) {
    report.add(Severity::kError, "translate.merge.unsound", "plan",
               "IR extraction and the raw entry walk disagree on the entry "
               "set; blocker cross-check impossible",
               "ir::extract_ir must enumerate via for_each_installed_entry");
    return;
  }

  BlockerCounts derived;
  std::vector<MergeRegion> derived_regions;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const RawEntry& r = raw[i];
    const ir::EntryNode& n = pir.entries[i];
    if (n.group != r.group || n.cmu != r.cmu || n.phys_id != r.e->task_id) {
      report.add(Severity::kError, "translate.merge.unsound", "plan",
                 "IR extraction and the raw entry walk are misaligned; "
                 "blocker cross-check impossible");
      return;
    }
    const CmuTaskEntry& e = *r.e;
    if (e.chain_out != 0) derived[MergeBlockerKind::kChainOutput] += 1;

    const ir::Interval p2 = effective_p2(e.prep, n.p2.range);
    if (e.op == dataplane::StatefulOp::kCondAdd &&
        p2.lo < r.register_value_mask) {
      // `cur < p2` can be false below saturation: the add is gated on the
      // register value, which is not a monoid over shards.
      derived[MergeBlockerKind::kGatedCondAdd] += 1;
    }
    if (e.op == dataplane::StatefulOp::kAndOr && p2.lo < 1) {
      derived[MergeBlockerKind::kAndMode] += 1;
    }

    if (const std::optional<MergeKind> k = kind_of(e.op); k && e.partition.size != 0) {
      derived_regions.push_back({r.flat_cmu, e.partition.base,
                                 e.partition.size, *k,
                                 r.register_value_mask});
    }
  }

  // Mixed-window derivation: identical collapse + overlap scan to the
  // compiler's, but over regions derived from the installed partitions.
  std::sort(derived_regions.begin(), derived_regions.end(),
            [](const MergeRegion& a, const MergeRegion& b) {
              if (a.cmu != b.cmu) return a.cmu < b.cmu;
              if (a.base != b.base) return a.base < b.base;
              if (a.size != b.size) return a.size < b.size;
              return a.kind < b.kind;
            });
  derived_regions.erase(
      std::unique(derived_regions.begin(), derived_regions.end(),
                  [](const MergeRegion& a, const MergeRegion& b) {
                    return a.cmu == b.cmu && a.base == b.base &&
                           a.size == b.size && a.kind == b.kind;
                  }),
      derived_regions.end());
  for (std::size_t i = 0; i + 1 < derived_regions.size(); ++i) {
    for (std::size_t j = i + 1; j < derived_regions.size(); ++j) {
      const MergeRegion& a = derived_regions[i];
      const MergeRegion& b = derived_regions[j];
      if (a.cmu != b.cmu || a.base + a.size <= b.base) break;
      if (a.kind != b.kind) derived[MergeBlockerKind::kMixedWindow] += 1;
    }
  }

  BlockerCounts compiled;
  for (const MergeBlockerKind k : plan.merge_blocker_kinds()) compiled[k] += 1;

  for (const MergeBlockerKind k : kAllBlockerKinds) {
    if (derived[k] > compiled[k]) {
      std::ostringstream os;
      os << "interpreted semantics require " << derived[k] << " "
         << to_string(k) << " merge blocker(s) but the compiler recorded "
         << compiled[k];
      report.add(Severity::kError, "translate.merge.unsound", "plan", os.str(),
                 "the plan would shard-merge a fold the semantics say is "
                 "register-gated; sharded and sequential execution would "
                 "diverge");
    } else if (compiled[k] > derived[k]) {
      std::ostringstream os;
      os << "compiler recorded " << compiled[k] << " " << to_string(k)
         << " merge blocker(s) where the interval derivation proves only "
         << derived[k] << " necessary";
      report.add(Severity::kWarning, "translate.merge.spurious", "plan",
                 os.str(),
                 "harmless but wasteful: the plan falls back to sequential "
                 "execution it could avoid (the compiler's const-only rule "
                 "is coarser than the interval analysis)");
    }
  }
}

}  // namespace flymon::verify::translate
