// Property-based suites: cross-module invariants checked over parameter
// sweeps and randomized operation sequences.
#include <gtest/gtest.h>

#include <set>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "control/controller.hpp"
#include "dataplane/tcam.hpp"
#include "packet/trace_gen.hpp"
#include "sketch/count_min.hpp"
#include "sketch/hyperloglog.hpp"

namespace flymon {
namespace {

// -------- SALU operation algebra --------

TEST(SaluProperty, CondAddRegisterIsMonotone) {
  dataplane::RegisterArray reg(8);
  dataplane::Salu salu(reg);
  salu.preload(dataplane::StatefulOp::kCondAdd);
  Rng rng(1);
  std::uint32_t prev = 0;
  for (int i = 0; i < 2000; ++i) {
    salu.execute(dataplane::StatefulOp::kCondAdd, 3,
                 static_cast<std::uint32_t>(rng.next_below(100)),
                 static_cast<std::uint32_t>(rng.next_below(100000)));
    const std::uint32_t cur = reg.read(3);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(SaluProperty, MaxIsIdempotentAndMonotone) {
  dataplane::RegisterArray reg(8);
  dataplane::Salu salu(reg);
  salu.preload(dataplane::StatefulOp::kMax);
  Rng rng(2);
  std::uint32_t prev = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.next_below(1 << 20));
    salu.execute(dataplane::StatefulOp::kMax, 0, v, 0);
    const std::uint32_t once = reg.read(0);
    salu.execute(dataplane::StatefulOp::kMax, 0, v, 0);
    EXPECT_EQ(reg.read(0), once) << "re-applying the same value is a no-op";
    EXPECT_GE(once, prev);
    prev = once;
  }
}

TEST(SaluProperty, OrOnlyAddsBitsAndOnlyRemoves) {
  dataplane::RegisterArray reg(8);
  dataplane::Salu salu(reg);
  salu.preload(dataplane::StatefulOp::kAndOr);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t before = reg.read(1);
    const auto v = rng.next_u32();
    salu.execute(dataplane::StatefulOp::kAndOr, 1, v, 1);  // OR
    EXPECT_EQ(reg.read(1) & before, before) << "OR never clears bits";
  }
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t before = reg.read(1);
    const auto v = rng.next_u32();
    salu.execute(dataplane::StatefulOp::kAndOr, 1, v, 0);  // AND
    EXPECT_EQ(reg.read(1) | before, before) << "AND never sets bits";
  }
}

TEST(SaluProperty, XorIsInvolutive) {
  dataplane::RegisterArray reg(8);
  dataplane::Salu salu(reg);
  salu.preload(dataplane::StatefulOp::kXor);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t before = reg.read(2);
    const auto v = rng.next_u32();
    salu.execute(dataplane::StatefulOp::kXor, 2, v, 0);
    salu.execute(dataplane::StatefulOp::kXor, 2, v, 0);
    EXPECT_EQ(reg.read(2), before);
  }
}

// -------- address translation --------

class TranslationProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TranslationProperty, BijectiveOntoPartition) {
  const std::uint32_t size = GetParam();
  const unsigned slice_width = log2_floor(size);
  for (std::uint32_t base : {0u, size, 4 * size}) {
    const MemoryPartition part{base, size};
    std::set<std::uint32_t> seen;
    for (std::uint32_t key = 0; key < size; ++key) {
      const std::uint32_t addr = translate_address(key, slice_width, part);
      EXPECT_GE(addr, base);
      EXPECT_LT(addr, base + size);
      seen.insert(addr);
    }
    EXPECT_EQ(seen.size(), size) << "width-matched slices map 1:1";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TranslationProperty,
                         ::testing::Values(2u, 8u, 64u, 256u, 2048u));

// -------- TCAM range expansion bounds --------

TEST(TcamProperty, ExpansionNeverExceedsTwoW) {
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const unsigned width = 4 + static_cast<unsigned>(rng.next_below(28));
    const std::uint64_t max_key = (1ull << width) - 1;
    std::uint64_t lo = rng.next() & max_key;
    std::uint64_t hi = rng.next() & max_key;
    if (lo > hi) std::swap(lo, hi);
    const auto patterns = dataplane::range_to_ternary(lo, hi, width);
    EXPECT_LE(patterns.size(), 2 * width) << "classic prefix-expansion bound";
    EXPECT_GE(patterns.size(), 1u);
  }
}

// -------- buddy allocator alignment --------

TEST(BuddyProperty, BlocksAreSizeAligned) {
  BuddyAllocator b(1 << 16);
  Rng rng(6);
  std::vector<MemoryPartition> live;
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t size = 1u << rng.next_below(12);
    if (const auto p = b.allocate(size)) {
      EXPECT_EQ(p->base % p->size, 0u) << "buddy blocks are naturally aligned";
      live.push_back(*p);
    } else if (!live.empty()) {
      b.release(live.back());
      live.pop_back();
    }
  }
}

// -------- flow-key masking --------

TEST(FlowKeyProperty, MaskingIsIdempotent) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    Packet p;
    p.ft.src_ip = rng.next_u32();
    p.ft.dst_ip = rng.next_u32();
    p.ft.src_port = static_cast<std::uint16_t>(rng.next());
    p.ft.dst_port = static_cast<std::uint16_t>(rng.next());
    p.ft.protocol = static_cast<std::uint8_t>(rng.next());
    const FlowKeySpec spec{static_cast<std::uint8_t>(rng.next_below(33)),
                           static_cast<std::uint8_t>(rng.next_below(33)),
                           static_cast<std::uint8_t>(rng.next_below(17)),
                           0,
                           0,
                           0};
    const FlowKeyValue once = extract_flow_key(p, spec);
    const FlowKeyValue twice = mask_candidate_key(once.bytes, spec);
    EXPECT_EQ(once, twice);
  }
}

TEST(FlowKeyProperty, NarrowerPrefixIsCoarser) {
  // If two packets agree under /n they agree under every /m with m <= n.
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    Packet a, b;
    a.ft.src_ip = rng.next_u32();
    b.ft.src_ip = a.ft.src_ip ^ static_cast<std::uint32_t>(rng.next_below(1 << 12));
    for (std::uint8_t n = 32; n > 0; --n) {
      if (extract_flow_key(a, FlowKeySpec::src_ip(n)) ==
          extract_flow_key(b, FlowKeySpec::src_ip(n))) {
        for (std::uint8_t m = 0; m < n; ++m) {
          EXPECT_EQ(extract_flow_key(a, FlowKeySpec::src_ip(m)),
                    extract_flow_key(b, FlowKeySpec::src_ip(m)));
        }
        break;
      }
    }
  }
}

// -------- sketch monotonicity --------

TEST(SketchProperty, CmsEstimatesMonotoneInTraffic) {
  sketch::CountMin cms(3, 512);
  Rng rng(9);
  std::vector<std::uint8_t> probe = {1, 2, 3, 4};
  std::uint32_t prev = 0;
  for (int i = 0; i < 3000; ++i) {
    std::uint8_t k[4] = {static_cast<std::uint8_t>(rng.next()), 2, 3, 4};
    cms.update(std::span<const std::uint8_t>(k, 4));
    const std::uint32_t est = cms.query(probe);
    EXPECT_GE(est, prev) << "more traffic can only raise CMS estimates";
    prev = est;
  }
}

TEST(SketchProperty, HllUnionEqualsRegisterMax) {
  sketch::HyperLogLog a(10), b(10), u(10);
  auto key = [](std::uint64_t id) {
    static std::vector<std::uint8_t> k(8);
    for (int i = 0; i < 8; ++i) k[i] = static_cast<std::uint8_t>(id >> (8 * i));
    return std::span<const std::uint8_t>(k.data(), 8);
  };
  for (std::uint64_t i = 0; i < 4000; ++i) {
    a.insert(key(i));
    u.insert(key(i));
  }
  for (std::uint64_t i = 2000; i < 8000; ++i) {
    b.insert(key(i));
    u.insert(key(i));
  }
  sketch::HyperLogLog merged(10);
  for (std::size_t r = 0; r < (1u << 10); ++r) {
    merged.load_register(r, std::max(a.register_at(r), b.register_at(r)));
  }
  EXPECT_NEAR(merged.estimate(), u.estimate(), 1e-9)
      << "register-wise max is exactly the union sketch";
}

// -------- controller resource conservation --------

TEST(ControllerProperty, ChurnConservesResources) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  Rng rng(10);
  std::vector<std::uint32_t> live;
  for (int step = 0; step < 120; ++step) {
    if (live.size() < 8 && rng.next_bool(0.6)) {
      TaskSpec s;
      s.filter = TaskFilter::src(0x0A000000 | (rng.next_u32() & 0x00FF0000), 16);
      s.key = rng.next_bool(0.5) ? FlowKeySpec::five_tuple() : FlowKeySpec::src_ip();
      s.attribute = AttributeKind::kFrequency;
      s.memory_buckets = 1u << (11 + rng.next_below(4));
      s.rows = 1 + static_cast<unsigned>(rng.next_below(3));
      const auto r = ctl.add_task(s);
      if (r.ok) live.push_back(r.task_id);
    } else if (!live.empty()) {
      const std::size_t i = rng.next_below(live.size());
      EXPECT_TRUE(ctl.remove_task(live[i]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  for (std::uint32_t id : live) ctl.remove_task(id);
  // Every bucket everywhere must be free again, and every hash unit clear.
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    for (unsigned c = 0; c < dp.group(g).num_cmus(); ++c) {
      EXPECT_EQ(ctl.free_buckets(g, c), dp.group(g).config().register_buckets)
          << "group " << g << " cmu " << c;
      EXPECT_TRUE(dp.group(g).cmu(c).entries().empty());
    }
    for (unsigned u = 0; u < dp.group(g).compression().num_units(); ++u) {
      EXPECT_FALSE(dp.group(g).compression().spec_of(u).has_value());
    }
  }
}

// -------- end-to-end determinism --------

TEST(SystemProperty, IdenticalDataplanesStayIdentical) {
  auto build = []() {
    auto dp = std::make_unique<FlyMonDataPlane>(3);
    auto ctl = std::make_unique<control::Controller>(*dp);
    TaskSpec s;
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kFrequency;
    s.memory_buckets = 8192;
    s.rows = 3;
    ctl->add_task(s);
    return std::make_pair(std::move(dp), std::move(ctl));
  };
  auto [dp1, ctl1] = build();
  auto [dp2, ctl2] = build();

  TraceConfig cfg;
  cfg.num_flows = 500;
  cfg.num_packets = 20'000;
  const auto trace = TraceGenerator::generate(cfg);
  dp1->process_all(trace);
  dp2->process_all(trace);

  for (unsigned g = 0; g < 3; ++g) {
    for (unsigned c = 0; c < 3; ++c) {
      const auto& r1 = dp1->group(g).cmu(c).reg();
      const auto& r2 = dp2->group(g).cmu(c).reg();
      ASSERT_EQ(r1.size(), r2.size());
      for (std::uint32_t i = 0; i < r1.size(); i += 97) {
        ASSERT_EQ(r1.read(i), r2.read(i)) << "g" << g << " c" << c << " @" << i;
      }
    }
  }
}

// -------- BeauCoup coupon monotonicity --------

TEST(SystemProperty, CouponBitmapsOnlyGrow) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  TaskSpec s;
  s.key = FlowKeySpec::dst_ip();
  s.attribute = AttributeKind::kDistinct;
  s.param = ParamSpec::compressed(FlowKeySpec::src_ip());
  s.report_threshold = 128;
  s.memory_buckets = 8192;
  s.rows = 3;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);

  Packet probe;
  probe.ft.dst_ip = 0xC0A80001;
  Rng rng(11);
  double prev = 0;
  for (int i = 0; i < 3000; ++i) {
    Packet p;
    p.ft.dst_ip = 0xC0A80001;
    p.ft.src_ip = rng.next_u32();
    dp.process(p);
    const double est = ctl.estimate_distinct(r.task_id, probe);
    EXPECT_GE(est, prev);
    prev = est;
  }
}

}  // namespace
}  // namespace flymon
