// The Composable Measurement Unit (paper §3.1): a runtime-reconfigurable
// operation unit whose per-packet pipeline is
//   initialization  — match the task filter, select dynamic key & params
//   preparation     — address translation + parameter pre-processing
//   operation       — one stateful op on the bound register
// The compression stage is shared at the CMU-Group level (compression.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/address_translation.hpp"
#include "core/compression.hpp"
#include "core/memory_partition.hpp"
#include "core/task.hpp"
#include "dataplane/salu.hpp"
#include "packet/exact.hpp"
#include "packet/packet.hpp"
#include "telemetry/telemetry.hpp"

namespace flymon::telemetry {
struct TraceRecord;
}  // namespace flymon::telemetry

namespace flymon {

/// Where a CMU parameter (p1/p2) comes from at packet time.
struct ParamSelect {
  enum class Source : std::uint8_t { kConst, kMeta, kCompressedKey, kChain };

  Source source = Source::kConst;
  std::uint32_t const_value = 0;   ///< kConst value / kChain channel id
  MetaField meta = MetaField::kOne;
  CompressedKeySelector key_sel{};
  KeySlice slice{0, 32};

  static ParamSelect constant(std::uint32_t v) {
    ParamSelect p;
    p.source = Source::kConst;
    p.const_value = v;
    return p;
  }
  static ParamSelect metadata(MetaField f) {
    ParamSelect p;
    p.source = Source::kMeta;
    p.meta = f;
    return p;
  }
  static ParamSelect compressed(CompressedKeySelector sel, KeySlice slice = {0, 32}) {
    ParamSelect p;
    p.source = Source::kCompressedKey;
    p.key_sel = sel;
    p.slice = slice;
    return p;
  }
  static ParamSelect chain(std::uint32_t channel) {
    ParamSelect p;
    p.source = Source::kChain;
    p.const_value = channel;
    return p;
  }
};

/// Preparation-stage parameter processing (TCAM-backed in hardware).
enum class PrepFn : std::uint8_t {
  kNone = 0,
  /// BeauCoup: treat p1 as a uniform hash; draw a coupon with total
  /// probability c*p and rewrite p1 to its one-hot encoding, or abort the
  /// update when no coupon is drawn.  p2 is forced to 1 (selects OR).
  kCouponOneHot,
  /// Bit-packed Bloom filter: p1 -> 1 << (p1 mod 32); p2 forced to 1.
  kBitSelectOneHot,
  /// Max inter-arrival: p1 = gate ? saturating(p1 - chain_in) : 0, where
  /// `gate` is the chain channel in `chain_gate` (0 means "new flow").
  kSubtractGated,
  /// Counter Braids layer 2: keep p1 only when the chained upstream result
  /// is zero (upstream Cond-ADD returned 0 = its counter saturated).
  kKeepOnChainZero,
  /// Odd Sketch toggle: one-hot of p1 gated on chain_gate == 0 (the
  /// upstream Bloom filter reporting a first-seen flow); otherwise p1 = 0
  /// so the XOR leaves the register untouched.
  kBitSelectOneHotGated,
};

/// Coupon parameters for PrepFn::kCouponOneHot.
struct CouponPrep {
  unsigned num_coupons = 32;
  double draw_probability = 0.0;  ///< per-coupon probability
};

/// One installed measurement task on one CMU: the runtime rules of the
/// initialization, preparation and operation stages for this task.
struct CmuTaskEntry {
  std::uint32_t task_id = 0;
  TaskFilter filter{};
  std::uint32_t priority = 100;          ///< lower wins among matches
  double sample_probability = 1.0;       ///< probabilistic execution (§5.3)

  CompressedKeySelector key_sel{};
  KeySlice key_slice{0, 16};
  MemoryPartition partition{};

  ParamSelect p1 = ParamSelect::constant(1);
  ParamSelect p2 = ParamSelect::constant(0xFFFF'FFFFu);
  PrepFn prep = PrepFn::kNone;
  CouponPrep coupon{};
  std::uint32_t chain_gate = 0;          ///< secondary chain channel (prep)

  dataplane::StatefulOp op = dataplane::StatefulOp::kNop;
  bool output_old_value = false;         ///< SALU result = pre-update value
  std::uint32_t chain_out = 0;           ///< publish result on this channel
  bool chain_fallback = false;           ///< publish chain-in when result==0
};

/// Per-packet metadata carried between CMUs (PHV fields in hardware).
struct PhvContext {
  std::unordered_map<std::uint32_t, std::uint32_t> chain;
  /// Set when this packet is sampled for tracing; groups/CMUs append what
  /// they did to the record.  Null for untraced packets.
  telemetry::TraceRecord* trace = nullptr;

  std::uint32_t get(std::uint32_t channel) const noexcept {
    const auto it = chain.find(channel);
    return it == chain.end() ? 0u : it->second;
  }
};

class Cmu {
 public:
  /// A CMU owns one register (uniform 32-bit buckets) and its SALU with the
  /// reduced operation set pre-loaded.
  explicit Cmu(std::uint32_t register_buckets);

  // Movable (vector<Cmu> growth during group construction) but not
  // copyable: the register's atomic cells are unique and the SALU must be
  // re-pointed at the relocated register.
  Cmu(Cmu&& other) noexcept;
  Cmu(const Cmu&) = delete;
  Cmu& operator=(const Cmu&) = delete;
  Cmu& operator=(Cmu&&) = delete;

  /// Load an extra operation into the SALU's reserved fourth action slot
  /// (e.g. XOR for Odd Sketch, paper §6).  Throws when slots are exhausted.
  void preload_op(dataplane::StatefulOp op);

  /// Install / remove task rules.  Installation rejects tasks whose filter
  /// intersects an already-installed task (a SALU performs only one access
  /// per packet, paper §3.3).
  void install(const CmuTaskEntry& entry);
  bool remove(std::uint32_t task_id);
  const CmuTaskEntry* find(std::uint32_t task_id) const noexcept;
  const std::vector<CmuTaskEntry>& entries() const noexcept { return entries_; }

  /// Process one packet given the group's compressed keys.  Returns the
  /// SALU result if some task matched and executed.
  std::optional<std::uint32_t> process(const Packet& pkt,
                                       const std::vector<std::uint32_t>& unit_keys,
                                       PhvContext& ctx);

  /// Memory address a probe flow maps to under `entry` (control-plane
  /// readout uses the same hash configuration as the data plane).
  std::uint32_t probe_address(const CmuTaskEntry& entry,
                              const std::vector<std::uint32_t>& unit_keys) const noexcept;

  dataplane::RegisterArray& reg() noexcept { return reg_; }
  const dataplane::RegisterArray& reg() const noexcept { return reg_; }
  /// Read-only SALU view (the verifier audits pre-loaded action slots).
  const dataplane::Salu& salu() const noexcept { return salu_; }

  /// Bind this CMU's instrumentation counters into `registry` under labels
  /// group=`group`, cmu=`index`.  Called by CmuGroup at construction (to the
  /// global registry) and again when a private registry is attached.
  void bind_telemetry(telemetry::Registry& registry, unsigned group, unsigned index);

  /// Fraction of register cells that are non-zero (computed on demand).
  double register_occupancy() const noexcept;

  /// Evaluate a parameter selection for a probe packet (control-plane
  /// readout re-derives data-plane inputs, e.g. Bloom-filter bit indices).
  std::uint32_t resolve_param(const ParamSelect& sel, const Packet& pkt,
                              const std::vector<std::uint32_t>& unit_keys,
                              const PhvContext& ctx) const noexcept;

  // ---- snapshot accessors for the plan compiler (src/exec) ----
  /// Pre-resolved counter handles; non-null once bind_telemetry ran (the
  /// group binds at construction).  The compiled plan aggregates into the
  /// very same counters the interpreted path increments.
  telemetry::Counter* updates_counter() const noexcept { return tel_.updates; }
  telemetry::Counter* sampled_out_counter() const noexcept { return tel_.sampled_out; }
  telemetry::Counter* prep_aborts_counter() const noexcept { return tel_.prep_aborts; }
  /// Lazily-registered per-op counter series, shared between the
  /// interpreted path (first execution registers it) and the compiled plan
  /// (registration moves to publish time).
  telemetry::Counter* op_counter(dataplane::StatefulOp op);

 private:
  /// Pre-resolved counters (no registry lookup on the packet path).  Per-op
  /// counters are resolved lazily so only executed op kinds get a series.
  struct Telemetry {
    telemetry::Registry* registry = nullptr;
    unsigned group = 0;
    unsigned index = 0;
    telemetry::Counter* updates = nullptr;       ///< matched + executed
    telemetry::Counter* sampled_out = nullptr;   ///< matched, skipped by coin
    telemetry::Counter* prep_aborts = nullptr;   ///< prep cancelled the update
    std::array<telemetry::Counter*, 5> ops{};    ///< per StatefulOp kind
  };

  dataplane::RegisterArray reg_;
  dataplane::Salu salu_;
  std::vector<CmuTaskEntry> entries_;
  Telemetry tel_;
};

}  // namespace flymon
