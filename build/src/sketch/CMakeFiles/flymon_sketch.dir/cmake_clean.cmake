file(REMOVE_RECURSE
  "CMakeFiles/flymon_sketch.dir/beaucoup.cpp.o"
  "CMakeFiles/flymon_sketch.dir/beaucoup.cpp.o.d"
  "CMakeFiles/flymon_sketch.dir/bloom_filter.cpp.o"
  "CMakeFiles/flymon_sketch.dir/bloom_filter.cpp.o.d"
  "CMakeFiles/flymon_sketch.dir/count_min.cpp.o"
  "CMakeFiles/flymon_sketch.dir/count_min.cpp.o.d"
  "CMakeFiles/flymon_sketch.dir/count_sketch.cpp.o"
  "CMakeFiles/flymon_sketch.dir/count_sketch.cpp.o.d"
  "CMakeFiles/flymon_sketch.dir/counter_braids.cpp.o"
  "CMakeFiles/flymon_sketch.dir/counter_braids.cpp.o.d"
  "CMakeFiles/flymon_sketch.dir/hyperloglog.cpp.o"
  "CMakeFiles/flymon_sketch.dir/hyperloglog.cpp.o.d"
  "CMakeFiles/flymon_sketch.dir/linear_counting.cpp.o"
  "CMakeFiles/flymon_sketch.dir/linear_counting.cpp.o.d"
  "CMakeFiles/flymon_sketch.dir/mrac.cpp.o"
  "CMakeFiles/flymon_sketch.dir/mrac.cpp.o.d"
  "CMakeFiles/flymon_sketch.dir/odd_sketch.cpp.o"
  "CMakeFiles/flymon_sketch.dir/odd_sketch.cpp.o.d"
  "CMakeFiles/flymon_sketch.dir/sumax.cpp.o"
  "CMakeFiles/flymon_sketch.dir/sumax.cpp.o.d"
  "CMakeFiles/flymon_sketch.dir/tower.cpp.o"
  "CMakeFiles/flymon_sketch.dir/tower.cpp.o.d"
  "CMakeFiles/flymon_sketch.dir/univmon.cpp.o"
  "CMakeFiles/flymon_sketch.dir/univmon.cpp.o.d"
  "libflymon_sketch.a"
  "libflymon_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flymon_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
