# Empty compiler generated dependencies file for flymon_dataplane.
# This may be replaced when dependencies are built.
