#include "control/static_deploy.hpp"

#include "dataplane/tofino_model.hpp"

namespace flymon::control {

using dataplane::Resource;
using dataplane::StageDemand;
using dataplane::TofinoModel;

StageDemand StaticSketchFootprint::row_demand() const {
  StageDemand d;
  d.add(Resource::kHashUnit, hash_units_per_row);
  d.add(Resource::kSalu, 1);
  d.add(Resource::kSramBlock, rows == 0 ? 0 : (sram_blocks_total + rows - 1) / rows);
  d.add(Resource::kTcamBlock, rows == 0 ? 0 : (tcam_blocks_total + rows - 1) / rows);
  d.add(Resource::kVliwSlot, rows == 0 ? 0 : (vliw_slots_total + rows - 1) / rows);
  d.add(Resource::kLogicalTable, rows == 0 ? 0 : (logical_tables_total + rows - 1) / rows);
  return d;
}

std::vector<StaticSketchFootprint> fig2_sketches() {
  // Sizing as in the paper's setting: 5-tuple (104-bit) keys, d=3 rows,
  // 64K x 32-bit counters for counter sketches, 512K-bit Bloom filter,
  // 16K HLL registers.  Per row: a 104-bit key spans two 52-bit hash-unit
  // inputs plus the hash distribution unit the SALU always consumes for
  // register addressing (paper footnote 4); per row the compiler emits a
  // key-build table, a hash table, a register table and a readout action.
  std::vector<StaticSketchFootprint> out;

  StaticSketchFootprint bf;
  bf.name = "BloomFilter";
  bf.rows = 3;
  bf.hash_units_per_row = 3;
  bf.sram_blocks_total = 3 * TofinoModel::sram_blocks_for(512 * 1024, 1) / 1;
  bf.vliw_slots_total = 12;
  bf.logical_tables_total = 12;
  bf.phv_bits = 104 + 32;
  out.push_back(bf);

  StaticSketchFootprint cms;
  cms.name = "CMS";
  cms.rows = 3;
  cms.hash_units_per_row = 3;
  cms.sram_blocks_total = 3 * TofinoModel::sram_blocks_for(65536, 32);
  cms.vliw_slots_total = 12;
  cms.logical_tables_total = 12;
  cms.phv_bits = 104 + 32;
  out.push_back(cms);

  StaticSketchFootprint hll;
  hll.name = "HLL";
  hll.rows = 1;
  hll.hash_units_per_row = 3;
  hll.sram_blocks_total = TofinoModel::sram_blocks_for(16384, 32);
  hll.tcam_blocks_total = 1;  // rho tracking via TCAM priority entries
  hll.vliw_slots_total = 4;
  hll.logical_tables_total = 4;
  hll.phv_bits = 104 + 32;
  out.push_back(hll);

  StaticSketchFootprint mrac;
  mrac.name = "MRAC";
  mrac.rows = 1;
  mrac.hash_units_per_row = 3;
  mrac.sram_blocks_total = TofinoModel::sram_blocks_for(65536, 32);
  mrac.vliw_slots_total = 4;
  mrac.logical_tables_total = 4;
  mrac.phv_bits = 104 + 32;
  out.push_back(mrac);
  return out;
}

StageDemand switch_p4_baseline_per_stage() {
  // Calibrated to the switch.p4 bars of paper Fig 13a: hash ~33%,
  // SALU ~25%, SRAM ~30%, TCAM ~29%, VLIW ~34%, logical tables ~44%.
  StageDemand d;
  d.add(Resource::kHashUnit, 2);
  d.add(Resource::kSalu, 1);
  d.add(Resource::kSramBlock, 24);
  d.add(Resource::kTcamBlock, 7);
  d.add(Resource::kVliwSlot, 11);
  d.add(Resource::kLogicalTable, 7);
  return d;
}

unsigned switch_p4_baseline_phv_bits() {
  // L2/L3/ACL metadata of the baseline program.
  return TofinoModel::kPhvBits * 55 / 100;
}

unsigned max_static_instances(const std::vector<StaticSketchFootprint>& sketches,
                              unsigned num_stages,
                              const StageDemand& baseline_per_stage,
                              unsigned baseline_phv_bits) {
  dataplane::Pipeline pipe(num_stages, TofinoModel::kPhvBits);
  for (unsigned s = 0; s < num_stages; ++s) pipe.stage(s).allocate(baseline_per_stage);
  pipe.allocate_phv(baseline_phv_bits);

  unsigned instances = 0;
  while (true) {
    const StaticSketchFootprint& sk = sketches[instances % sketches.size()];
    if (!pipe.allocate_phv(sk.phv_bits)) break;
    // Each row needs one stage with room; rows of one sketch must sit in
    // distinct stages (a register is read once per packet pass).
    std::vector<unsigned> used_stage;
    bool ok = true;
    const StageDemand row = sk.row_demand();
    for (unsigned r = 0; r < sk.rows && ok; ++r) {
      bool placed = false;
      for (unsigned s = 0; s < num_stages && !placed; ++s) {
        bool clash = false;
        for (unsigned u : used_stage) {
          if (u == s) {
            clash = true;
            break;
          }
        }
        if (clash) continue;
        if (pipe.stage(s).allocate(row)) {
          used_stage.push_back(s);
          placed = true;
        }
      }
      ok = placed;
    }
    if (!ok) {
      pipe.release_phv(sk.phv_bits);
      const StageDemand row_d = sk.row_demand();
      for (unsigned s : used_stage) pipe.stage(s).release(row_d);
      break;
    }
    ++instances;
  }
  return instances;
}

}  // namespace flymon::control
