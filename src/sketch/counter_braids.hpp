// Counter Braids (Lu et al., SIGMETRICS 2008): two-layer braided counters
// with overflow carry from layer 1 to layer 2 and iterative message-passing
// decoding toward zero-error per-flow counts.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "packet/flowkey.hpp"
#include "sketch/sketch_common.hpp"

namespace flymon::sketch {

class CounterBraids {
 public:
  /// Layer 1: m1 counters of b1 bits, each flow hashes to d1 of them.
  /// Layer 2: m2 counters of b2 bits, each layer-1 counter hashes to d2.
  CounterBraids(std::uint32_t m1, unsigned b1, unsigned d1, std::uint32_t m2,
                unsigned b2, unsigned d2);

  /// Split `bytes` 7:1 between layers with the classic 8-bit/32-bit widths.
  static CounterBraids with_memory(std::size_t bytes);

  void update(KeyBytes key, std::uint32_t inc = 1);

  /// Sketch-only upper-bound estimate (min over layer-1 counters, each
  /// reconstructed as low bits + decoded carries x 2^b1).  Biased up under
  /// collisions; decode() removes the bias given the flow list.
  std::uint64_t query_upper_bound(KeyBytes key) const;

  /// Full message-passing decode: given the complete list of flow keys,
  /// iteratively reconcile flow estimates against both layers.  Returns the
  /// per-flow estimates, exact when the braid load is feasible.
  std::unordered_map<FlowKeyValue, std::uint64_t> decode(
      const std::vector<FlowKeyValue>& flows, unsigned max_iterations = 50) const;

  std::size_t memory_bytes() const noexcept;
  void clear();

 private:
  std::vector<std::uint32_t> layer1_indices(KeyBytes key) const;
  std::vector<std::uint32_t> layer2_indices(std::uint32_t l1_index) const;
  /// Reconstructed full value of layer-1 counter i (low bits + carries).
  std::vector<std::uint64_t> reconstruct_layer1(unsigned max_iterations) const;

  std::uint32_t m1_, m2_;
  unsigned b1_, d1_, b2_, d2_;
  std::uint32_t cap1_;  // saturation/wrap point of layer-1 counters
  std::vector<std::uint32_t> layer1_;
  std::vector<std::uint64_t> layer2_;
};

}  // namespace flymon::sketch
