#include "control/controller.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/bits.hpp"
#include "exec/exec_plan.hpp"
#include "sketch/beaucoup.hpp"
#include "trace/span.hpp"
#include "trace/stage_profiler.hpp"
#include "sketch/hyperloglog.hpp"
#include "sketch/mrac.hpp"
#include "sketch/odd_sketch.hpp"

namespace flymon::control {
namespace {

using dataplane::StatefulOp;

/// Key-slice offsets used by the rows of one group (paper §3.2: e.g. bits
/// 0-15 / 8-23 / 16-31 of the 32-bit compressed key).
constexpr std::uint8_t kRowSliceOffset[3] = {0, 8, 16};
constexpr std::uint8_t kKeySliceWidth = 16;

/// TowerSketch row counter widths (left-aligned in the 32-bit bucket).
constexpr unsigned kTowerWidths[3] = {32, 16, 8};

/// Counter Braids layer-1 saturation value.
constexpr std::uint32_t kBraidsLayer1Cap = 1024;

Algorithm resolve_algorithm(const TaskSpec& spec) {
  if (spec.algorithm != Algorithm::kAuto) return spec.algorithm;
  switch (spec.attribute) {
    case AttributeKind::kFrequency: return Algorithm::kCms;
    case AttributeKind::kDistinct:
      return spec.key.empty() ? Algorithm::kHyperLogLog : Algorithm::kBeauCoup;
    case AttributeKind::kExistence: return Algorithm::kBloomFilter;
    case AttributeKind::kMax: return Algorithm::kSuMaxMax;
    case AttributeKind::kSimilarity: return Algorithm::kOddSketch;
  }
  return Algorithm::kCms;
}

/// The flow-key spec actually hashed for addressing: single-key tasks
/// (cardinality: key = N/A) locate buckets by the parameter's key.
FlowKeySpec effective_key(const TaskSpec& spec) {
  if (!spec.key.empty()) return spec.key;
  return spec.param.key_spec;
}

/// `part` = `whole` minus some fields?  Returns the complement when `part`
/// covers a strict, field-aligned subset of `whole`.
std::optional<FlowKeySpec> spec_complement(const FlowKeySpec& whole,
                                           const FlowKeySpec& part) {
  auto field_ok = [](std::uint8_t w, std::uint8_t p) { return p == 0 || p == w; };
  if (!field_ok(whole.src_ip_bits, part.src_ip_bits) ||
      !field_ok(whole.dst_ip_bits, part.dst_ip_bits) ||
      !field_ok(whole.src_port_bits, part.src_port_bits) ||
      !field_ok(whole.dst_port_bits, part.dst_port_bits) ||
      !field_ok(whole.proto_bits, part.proto_bits) ||
      !field_ok(whole.ts_bits, part.ts_bits)) {
    return std::nullopt;
  }
  FlowKeySpec c;
  c.src_ip_bits = part.src_ip_bits ? 0 : whole.src_ip_bits;
  c.dst_ip_bits = part.dst_ip_bits ? 0 : whole.dst_ip_bits;
  c.src_port_bits = part.src_port_bits ? 0 : whole.src_port_bits;
  c.dst_port_bits = part.dst_port_bits ? 0 : whole.dst_port_bits;
  c.proto_bits = part.proto_bits ? 0 : whole.proto_bits;
  c.ts_bits = part.ts_bits ? 0 : whole.ts_bits;
  if (c.empty() || c == whole) return std::nullopt;
  return c;
}

ParamSelect lower_param(const ParamSpec& p, const CompressedKeySelector& param_sel) {
  switch (p.source) {
    case ParamSource::kConst: return ParamSelect::constant(p.const_value);
    case ParamSource::kMeta: return ParamSelect::metadata(p.meta);
    case ParamSource::kCompressedKey:
      return ParamSelect::compressed(param_sel, KeySlice{0, 32});
  }
  return ParamSelect::constant(1);
}

/// Largest power-of-two probability <= p (so each coupon window expands to
/// exactly one ternary entry).
double quantize_probability_pow2(double p) {
  if (p >= 1.0) return 1.0;
  double q = 1.0;
  while (q > p) q /= 2;
  return q;
}

std::uint8_t rho_of_slice(std::uint32_t v, unsigned width) {
  if (v == 0) return 0;
  const std::uint32_t aligned = v << (32 - width);
  return static_cast<std::uint8_t>(std::countl_one(aligned) + 1);
}

}  // namespace

Controller::Controller(FlyMonDataPlane& dp, TranslationStrategy strategy, AllocMode mode)
    : dp_(&dp), strategy_(strategy), mode_(mode) {
  bind_telemetry(telemetry::Registry::global());
}

void Controller::bind_telemetry(telemetry::Registry& registry) {
  registry_ = &registry;
  deploys_counter_ = &registry.counter("flymon_task_deploys_total");
  deploy_failures_counter_ = &registry.counter("flymon_task_deploy_failures_total");
  removals_counter_ = &registry.counter("flymon_task_removals_total");
  resizes_counter_ = &registry.counter("flymon_task_resizes_total");
}

BuddyAllocator& Controller::allocator(unsigned group, unsigned cmu) {
  const auto key = std::make_pair(group, cmu);
  auto it = allocators_.find(key);
  if (it == allocators_.end()) {
    const std::uint32_t total = dp_->group(group).config().register_buckets;
    it = allocators_.emplace(key, BuddyAllocator(total, std::max(1u, total / 32))).first;
  }
  return it->second;
}

const BuddyAllocator* Controller::find_allocator(unsigned group,
                                                 unsigned cmu) const noexcept {
  const auto it = allocators_.find(std::make_pair(group, cmu));
  return it == allocators_.end() ? nullptr : &it->second;
}

std::optional<CompressedKeySelector> Controller::ensure_selector(
    unsigned group, const FlowKeySpec& spec, unsigned& mask_rules) {
  if (spec.empty()) return std::nullopt;
  auto& comp = dp_->group(group).compression();
  if (auto sel = comp.find_selector(spec)) return sel;
  // Greedy reuse (paper §3.4): build on a unit that already covers part of
  // the key, configuring one free unit with the complement and XOR-ing.
  for (unsigned u = 0; u < comp.num_units(); ++u) {
    if (!comp.spec_of(u)) continue;
    if (auto complement = spec_complement(spec, *comp.spec_of(u))) {
      if (auto free_u = comp.free_unit()) {
        comp.configure(*free_u, *complement);
        ++mask_rules;
        return CompressedKeySelector{static_cast<std::int8_t>(u),
                                     static_cast<std::int8_t>(*free_u)};
      }
    }
  }
  if (auto free_u = comp.free_unit()) {
    comp.configure(*free_u, spec);
    ++mask_rules;
    return CompressedKeySelector{static_cast<std::int8_t>(*free_u), -1};
  }
  return std::nullopt;
}

void Controller::ref_selector(unsigned group, const CompressedKeySelector& sel) {
  if (sel.unit_a >= 0) ++unit_refs_[{group, static_cast<unsigned>(sel.unit_a)}];
  if (sel.unit_b >= 0) ++unit_refs_[{group, static_cast<unsigned>(sel.unit_b)}];
}

void Controller::unref_selector(unsigned group, const CompressedKeySelector& sel) {
  auto drop = [&](std::int8_t unit) {
    if (unit < 0) return;
    const auto key = std::make_pair(group, static_cast<unsigned>(unit));
    auto it = unit_refs_.find(key);
    if (it == unit_refs_.end()) return;
    if (--it->second == 0) {
      unit_refs_.erase(it);
      dp_->group(group).compression().clear_unit(static_cast<unsigned>(unit));
    }
  };
  drop(sel.unit_a);
  drop(sel.unit_b);
}

std::vector<exec::EntryOwnership> Controller::entry_ownership() const {
  std::vector<exec::EntryOwnership> owners;
  for (const auto& [id, t] : tasks_) {
    for (std::size_t r = 0; r < t.rows.size(); ++r) {
      const RowPlacement& row = t.rows[r];
      for (std::size_t u = 0; u < row.units.size(); ++u) {
        const UnitPlacement& up = row.units[u];
        exec::EntryOwnership o;
        o.group = up.group;
        o.cmu = up.cmu;
        o.phys_id = up.phys_id;
        o.task_id = id;
        o.row = r;
        o.unit = u;
        o.name = t.spec.name;
        owners.push_back(std::move(o));
      }
    }
  }
  return owners;
}

void Controller::recompile_and_publish() {
  const std::vector<exec::EntryOwnership> owners = entry_ownership();
  if (dp_->republish_plan(owners) == 0) {
    // The publish-time translation validator vetoed the compiled plan
    // (generation 0 = nothing published, interpreted path serves traffic).
    // Surface the divergence diagnostics the same way the deploy gates do;
    // the deployment itself stands — a miscompile is a compiler bug, not a
    // deployment bug.
    last_verify_errors_ = dp_->last_publish_veto();
  }
}

DeployResult Controller::add_task(const TaskSpec& spec) {
  trace::ReconfigScope reconfig;
  trace::Span span("ctl.add_task", reconfig.tag());
  // Fold outstanding shard deltas before the deployment mutates register
  // layout: the end-of-mutation publish fence also merges, but by then
  // this mutation may already have cleared/reused the very cells the
  // deltas target (merge-after-clear would resurrect pre-mutation state).
  dp_->merge_shards();
  if (paranoid_) {
    // Pre-flight: dry-run the add against a shadow world before touching
    // the live pipeline.  The post-commit gate in deploy() still runs —
    // the pre-flight proves intent, the post-commit gate proves the
    // commit — but a bad spec is now rejected with the live data plane
    // never modified.
    trace::Span gate("ctl.plan_gate");
    last_verify_errors_ = run_plan_gate(spec);
    if (!last_verify_errors_.empty()) {
      deploy_failures_counter_->inc();
      DeployResult r;
      r.error = "plan gate rejected deployment:\n" + last_verify_errors_;
      return r;
    }
  }
  DeployResult r = deploy(spec, next_id_);
  if (r.ok) {
    ++next_id_;
    recompile_and_publish();
  }
  return r;
}

void Controller::undo_deployment(DeployedTask& t) {
  for (const RowPlacement& row : t.rows) {
    for (const UnitPlacement& up : row.units) {
      Cmu& cmu = dp_->group(up.group).cmu(up.cmu);
      const CmuTaskEntry* e = cmu.find(up.phys_id);
      if (e != nullptr) {
        unref_selector(up.group, e->key_sel);
        if (e->p1.source == ParamSelect::Source::kCompressedKey) {
          unref_selector(up.group, e->p1.key_sel);
        }
        cmu.remove(up.phys_id);
      }
      if (up.partition.size != 0) {
        cmu.reg().clear_range(up.partition.base, up.partition.end());
        allocator(up.group, up.cmu).release(up.partition);
      }
    }
  }
  t.rows.clear();
  gc_unreferenced_units();
}

void Controller::gc_unreferenced_units() {
  // Clear hash units configured during placement probes that ended up
  // unused (e.g. a group that offered a selector but had no free CMU).
  for (unsigned g = 0; g < dp_->num_groups(); ++g) {
    auto& comp = dp_->group(g).compression();
    for (unsigned u = 0; u < comp.num_units(); ++u) {
      if (comp.spec_of(u) && unit_refs_.find({g, u}) == unit_refs_.end()) {
        comp.clear_unit(u);
      }
    }
  }
}

DeployResult Controller::deploy(const TaskSpec& spec, std::uint32_t public_id) {
  trace::Span span("ctl.deploy", public_id);
  DeployedTask staged;
  DeployResult result;
  try {
    result = deploy_impl(spec, public_id, staged);
  } catch (const std::exception& ex) {
    // No task-mutation path may leak an exception mid-operation: undo every
    // unit/partition staged so far so the data plane is byte-identical to
    // its pre-deploy state, then fail the result instead.
    undo_deployment(staged);
    tasks_.erase(public_id);
    gc_unreferenced_units();
    deploy_failures_counter_->inc();
    result = DeployResult{};
    result.error = std::string("deployment aborted: ") + ex.what();
    return result;
  }
  if (!result.ok || !paranoid_) return result;
  // Paranoid gate: dry-run the static verifier over the committed state;
  // any error diagnostic rolls the deployment back.
  trace::Span gate("ctl.verify_gate");
  last_verify_errors_ = run_verify_gate();
  gate.close();
  if (last_verify_errors_.empty()) return result;
  auto it = tasks_.find(public_id);
  if (it != tasks_.end()) {
    undo_deployment(it->second);
    tasks_.erase(it);
  }
  deploy_failures_counter_->inc();
  result = DeployResult{};
  result.error = "paranoid verify rejected deployment:\n" + last_verify_errors_;
  return result;
}

DeployResult Controller::deploy_impl(const TaskSpec& spec, std::uint32_t public_id,
                                     DeployedTask& t) {
  DeployResult result;
  const Algorithm algo = resolve_algorithm(spec);
  const FlowKeySpec key_spec = effective_key(spec);
  if (key_spec.empty()) {
    result.error = "task has neither a key nor a key-valued parameter";
    return result;
  }
  unsigned rows = std::max(1u, spec.rows);

  t.id = public_id;
  t.spec = spec;
  t.algorithm = algo;
  t.buckets = quantize_buckets(spec.memory_buckets, mode_);

  // BeauCoup coupon configuration from the report threshold.
  if (algo == Algorithm::kBeauCoup) {
    const double threshold = spec.report_threshold > 0
                                 ? static_cast<double>(spec.report_threshold)
                                 : 512.0;
    auto cfg = sketch::CouponConfig::for_threshold(threshold, 32, 32);
    t.coupon_count = cfg.num_coupons;
    t.coupon_probability = quantize_probability_pow2(cfg.draw_probability);
    // Re-derive the collection threshold under the quantized probability.
    sketch::CouponConfig q = cfg;
    q.draw_probability = t.coupon_probability;
    unsigned best_ct = 1;
    double best_err = std::numeric_limits<double>::max();
    for (unsigned ct = 1; ct <= q.num_coupons; ++ct) {
      const double err = std::abs(q.expected_items_to_collect(ct) - threshold);
      if (err < best_err) {
        best_err = err;
        best_ct = ct;
      }
    }
    t.coupon_threshold = best_ct;
  }

  // ------- entry construction helpers -------
  auto base_entry = [&](const CompressedKeySelector& key_sel, unsigned row_idx,
                        const MemoryPartition& part) {
    CmuTaskEntry e;
    e.task_id = 0;  // filled at install
    e.filter = spec.filter;
    e.priority = public_id;
    e.sample_probability = spec.sample_probability;
    e.key_sel = key_sel;
    // Rows slice different sub-parts of the 32-bit compressed key; widen
    // the slice when the partition needs more than 16 address bits.
    const std::uint8_t offset = kRowSliceOffset[row_idx % 3];
    const unsigned size_log = part.size > 1 ? log2_floor(part.size) : 1;
    const auto width = static_cast<std::uint8_t>(
        std::min<unsigned>(32u - offset, std::max<unsigned>(kKeySliceWidth, size_log)));
    e.key_slice = KeySlice{offset, width};
    e.partition = part;
    return e;
  };

  auto install_unit = [&](unsigned g, unsigned c, CmuTaskEntry e,
                          const MemoryPartition& part,
                          const CompressedKeySelector& param_sel_used)
      -> std::optional<UnitPlacement> {
    e.task_id = next_phys_;
    try {
      dp_->group(g).cmu(c).install(e);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    ref_selector(g, e.key_sel);
    if (e.p1.source == ParamSelect::Source::kCompressedKey) ref_selector(g, param_sel_used);
    UnitPlacement up{g, c, next_phys_, part};
    ++next_phys_;
    return up;
  };

  // Per-unit rule count: init (key+param select) + param preparation +
  // operation select + address translation.
  auto unit_rules = [&](unsigned group, const MemoryPartition& part) {
    const std::uint32_t total = dp_->group(group).config().register_buckets;
    unsigned addr = 1;
    if (strategy_ == TranslationStrategy::kTcam && part.size != 0) {
      addr = (total / part.size - 1) + 1;
    }
    return 3u + addr;
  };

  // ------- placement -------
  const bool chained = algo == Algorithm::kSuMaxSum ||
                       algo == Algorithm::kMaxInterarrival ||
                       algo == Algorithm::kCounterBraids ||
                       algo == Algorithm::kOddSketch;

  bool placed = false;
  if (!chained) {
    // All rows in one CMU Group, one CMU per row.
    if (rows > 3) rows = 3;
    if (algo == Algorithm::kMrac || algo == Algorithm::kHyperLogLog ||
        algo == Algorithm::kLinearCounting) {
      rows = 1;  // single-array algorithms
    }
    for (unsigned g = 0; g < dp_->num_groups() && !placed; ++g) {
      unsigned mask_rules = 0;
      const auto key_sel = ensure_selector(g, key_spec, mask_rules);
      if (!key_sel) {
        undo_deployment(t);
        continue;
      }
      CompressedKeySelector param_sel{};
      if (spec.param.source == ParamSource::kCompressedKey &&
          !(spec.param.key_spec == key_spec)) {
        const auto ps = ensure_selector(g, spec.param.key_spec, mask_rules);
        if (!ps) {
          undo_deployment(t);
          continue;
        }
        param_sel = *ps;
      } else {
        param_sel = *key_sel;  // parameter derived from the key itself
      }

      // Pick `rows` CMUs with space and no filter conflict.
      std::vector<unsigned> chosen;
      std::vector<MemoryPartition> parts;
      for (unsigned c = 0; c < dp_->group(g).num_cmus() && chosen.size() < rows; ++c) {
        bool conflict = false;
        for (const CmuTaskEntry& e : dp_->group(g).cmu(c).entries()) {
          if (e.filter.intersects(spec.filter) && e.sample_probability >= 1.0 &&
              spec.sample_probability >= 1.0) {
            conflict = true;
            break;
          }
        }
        if (conflict) continue;
        if (auto part = allocator(g, c).allocate(t.buckets)) {
          chosen.push_back(c);
          parts.push_back(*part);
        }
      }
      if (chosen.size() < rows) {
        for (std::size_t i = 0; i < chosen.size(); ++i) {
          allocator(g, chosen[i]).release(parts[i]);
        }
        undo_deployment(t);
        continue;
      }

      // Build and install one entry per row.
      bool ok = true;
      for (unsigned r = 0; r < rows && ok; ++r) {
        CmuTaskEntry e = base_entry(*key_sel, r, parts[r]);
        switch (algo) {
          case Algorithm::kCms:
          case Algorithm::kMrac:
            e.op = StatefulOp::kCondAdd;
            e.p1 = lower_param(spec.param, param_sel);
            e.p2 = ParamSelect::constant(0xFFFF'FFFFu);
            break;
          case Algorithm::kSuMaxMax:
            e.op = StatefulOp::kMax;
            e.p1 = lower_param(spec.param, param_sel);
            break;
          case Algorithm::kTowerSketch:
            e.op = StatefulOp::kCondAdd;
            e.p1 = ParamSelect::constant(1u << (32 - kTowerWidths[r]));
            e.p2 = ParamSelect::constant(
                low_mask32(kTowerWidths[r]) << (32 - kTowerWidths[r]));
            break;
          case Algorithm::kBloomFilter:
          case Algorithm::kLinearCounting:
            e.op = StatefulOp::kAndOr;
            if (spec.bloom_bit_packed) {
              e.prep = PrepFn::kBitSelectOneHot;
              e.p1 = ParamSelect::compressed(
                  param_sel, KeySlice{static_cast<std::uint8_t>(16 + 5 * (r % 3)), 5});
            } else {
              e.p1 = ParamSelect::constant(1);
              e.p2 = ParamSelect::constant(1);
            }
            break;
          case Algorithm::kHyperLogLog:
            e.op = StatefulOp::kMax;
            e.p1 = ParamSelect::compressed(param_sel, KeySlice{16, 16});
            break;
          case Algorithm::kBeauCoup:
            e.op = StatefulOp::kAndOr;
            e.prep = PrepFn::kCouponOneHot;
            e.coupon = CouponPrep{t.coupon_count, t.coupon_probability};
            e.p1 = ParamSelect::compressed(param_sel, KeySlice{0, 32});
            break;
          default:
            ok = false;
            continue;
        }
        const auto up = install_unit(g, chosen[r], e, parts[r], param_sel);
        if (!up) {
          ok = false;
          break;
        }
        RowPlacement row;
        row.units.push_back(*up);
        t.rows.push_back(row);
        t.report.table_rules += unit_rules(g, parts[r]);
      }
      if (!ok) {
        // Release partitions not yet bound into t.rows (the bound ones are
        // reclaimed by undo_deployment below).
        for (std::size_t i = t.rows.size(); i < chosen.size(); ++i) {
          allocator(g, chosen[i]).release(parts[i]);
        }
        undo_deployment(t);
        t.report = DeploymentReport{};
        continue;
      }
      if (algo == Algorithm::kBeauCoup) {
        t.report.table_rules += t.coupon_count + 1;  // one-hot window entries
      }
      t.report.hash_mask_rules += mask_rules;
      t.report.groups_used = 1;
      t.report.cmus_used = rows;
      placed = true;
    }
  } else {
    // Chained algorithms: units spread over distinct groups in pipeline
    // order.  SuMaxSum: `rows` arrays = `rows` units, one chain.
    // CounterBraids: 2 units.  MaxInterarrival: per row, 3 units.
    const unsigned units_per_chain =
        (algo == Algorithm::kCounterBraids || algo == Algorithm::kOddSketch) ? 2
        : algo == Algorithm::kSuMaxSum ? std::min(rows, 3u)
                                       : 3;
    const unsigned num_chains = algo == Algorithm::kMaxInterarrival ? std::min(rows, 3u) : 1;

    std::vector<RowPlacement> chains;
    unsigned total_mask_rules = 0;
    unsigned next_group = 0;
    bool ok = true;
    for (unsigned chain_idx = 0; chain_idx < num_chains && ok; ++chain_idx) {
      const std::uint32_t ch_a = next_chain_++;
      const std::uint32_t ch_b = next_chain_++;
      RowPlacement row;
      for (unsigned u = 0; u < units_per_chain && ok; ++u) {
        bool unit_placed = false;
        for (unsigned g = next_group; g < dp_->num_groups() && !unit_placed; ++g) {
          unsigned mask_rules = 0;
          const auto key_sel = ensure_selector(g, key_spec, mask_rules);
          if (!key_sel) continue;
          for (unsigned c = 0; c < dp_->group(g).num_cmus() && !unit_placed; ++c) {
            bool conflict = false;
            for (const CmuTaskEntry& e : dp_->group(g).cmu(c).entries()) {
              if (e.filter.intersects(spec.filter) && e.sample_probability >= 1.0 &&
                  spec.sample_probability >= 1.0) {
                conflict = true;
                break;
              }
            }
            if (conflict) continue;
            auto part = allocator(g, c).allocate(t.buckets);
            if (!part) continue;

            CmuTaskEntry e = base_entry(*key_sel, u, *part);
            switch (algo) {
              case Algorithm::kSuMaxSum:
                e.op = StatefulOp::kCondAdd;
                e.p1 = lower_param(spec.param, *key_sel);
                e.p2 = u == 0 ? ParamSelect::constant(0xFFFF'FFFFu)
                              : ParamSelect::chain(ch_a);
                e.chain_out = ch_a;
                e.chain_fallback = u != 0;  // keep running min on no-update
                break;
              case Algorithm::kCounterBraids:
                e.op = StatefulOp::kCondAdd;
                e.p1 = lower_param(spec.param, *key_sel);
                if (u == 0) {
                  e.p2 = ParamSelect::constant(kBraidsLayer1Cap);
                  e.chain_out = ch_a;
                } else {
                  e.p2 = ParamSelect::constant(0xFFFF'FFFFu);
                  e.prep = PrepFn::kKeepOnChainZero;
                  e.chain_gate = ch_a;
                }
                break;
              case Algorithm::kOddSketch:
                if (u == 0) {  // dedup gate: has this flow toggled already?
                  e.op = StatefulOp::kAndOr;
                  e.prep = PrepFn::kBitSelectOneHot;
                  e.p1 = ParamSelect::compressed(*key_sel, KeySlice{17, 5});
                  e.output_old_value = true;
                  e.chain_out = ch_a;
                } else {  // parity toggle in the reserved XOR slot
                  // The toggle needs the fourth SALU action slot; skip CMUs
                  // whose slot is already taken by another preload instead
                  // of letting preload_op throw mid-deployment.
                  if (!dp_->group(g).cmu(c).salu().has_op(StatefulOp::kXor) &&
                      dp_->group(g).cmu(c).salu().loaded_ops() >=
                          dataplane::TofinoModel::kMaxRegisterActions) {
                    allocator(g, c).release(*part);
                    continue;
                  }
                  dp_->group(g).cmu(c).preload_op(StatefulOp::kXor);
                  e.op = StatefulOp::kXor;
                  e.prep = PrepFn::kBitSelectOneHotGated;
                  e.chain_gate = ch_a;
                  e.p1 = ParamSelect::compressed(*key_sel, KeySlice{22, 5});
                }
                break;
              case Algorithm::kMaxInterarrival:
                if (u == 0) {  // Bloom filter: have we seen this flow?
                  e.op = StatefulOp::kAndOr;
                  e.prep = PrepFn::kBitSelectOneHot;
                  e.p1 = ParamSelect::compressed(*key_sel, KeySlice{17, 5});
                  e.output_old_value = true;
                  e.chain_out = ch_a;  // gate: 1 = seen before
                } else if (u == 1) {  // last-arrival timestamp
                  e.op = StatefulOp::kMax;
                  e.p1 = ParamSelect::metadata(MetaField::kTimestamp);
                  e.output_old_value = true;
                  e.chain_out = ch_b;  // previous timestamp
                } else {  // max inter-arrival
                  e.op = StatefulOp::kMax;
                  e.prep = PrepFn::kSubtractGated;
                  e.chain_gate = ch_a;
                  e.p1 = ParamSelect::metadata(MetaField::kTimestamp);
                  e.p2 = ParamSelect::chain(ch_b);
                }
                break;
              default:
                break;
            }
            const auto up = install_unit(g, c, e, *part, *key_sel);
            if (!up) {
              allocator(g, c).release(*part);
              continue;
            }
            row.units.push_back(*up);
            t.report.table_rules += unit_rules(g, *part);
            total_mask_rules += mask_rules;
            next_group = g + 1;  // chain flows strictly forward
            unit_placed = true;
          }
        }
        if (!unit_placed) ok = false;
      }
      if (ok) {
        chains.push_back(row);
        next_group = algo == Algorithm::kMaxInterarrival ? next_group : 0;
      }
    }
    if (ok && !chains.empty()) {
      t.rows = std::move(chains);
      t.report.hash_mask_rules = total_mask_rules;
      unsigned cmus = 0;
      for (const auto& r : t.rows) cmus += static_cast<unsigned>(r.units.size());
      t.report.cmus_used = cmus;
      t.report.groups_used = cmus;  // one group per chained unit
      placed = true;
    } else {
      undo_deployment(t);
    }
  }

  gc_unreferenced_units();
  if (!placed) {
    deploy_failures_counter_->inc();
    result.error = "insufficient resources (keys / CMUs / memory)";
    return result;
  }
  t.cumulative_delay_ms = t.report.delay_ms();
  tasks_[public_id] = t;
  deploys_counter_->inc();
  result.ok = true;
  result.task_id = public_id;
  result.report = t.report;
  return result;
}

bool Controller::remove_task(std::uint32_t id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return false;
  trace::ReconfigScope reconfig;
  trace::Span span("ctl.remove_task", id);
  // Merge before undo_deployment clears the task's partitions — see
  // add_task for why merge-after-clear would be wrong.
  dp_->merge_shards();
  undo_deployment(it->second);
  tasks_.erase(it);
  removals_counter_->inc();
  // Removal never rolls back, but paranoid mode still re-verifies so that
  // residual corruption surfaces through last_verify_errors().
  if (paranoid_) {
    trace::Span gate("ctl.verify_gate");
    last_verify_errors_ = run_verify_gate();
  }
  recompile_and_publish();
  return true;
}

DeployResult Controller::resize_task(std::uint32_t id, std::uint32_t new_buckets) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return {false, "unknown task", 0, {}};
  trace::ReconfigScope reconfig;
  trace::Span span("ctl.resize_task", id);
  // Merge before the replacement/reclaim dance rearranges partitions —
  // see add_task for why merge-after-clear would be wrong.
  dp_->merge_shards();
  TaskSpec spec = it->second.spec;
  spec.memory_buckets = new_buckets;
  // Deploy the replacement first (traffic is diverted once it is live),
  // then reclaim the frozen original (paper §6).  The public task id is
  // stable across the swap.
  DeployResult fresh = deploy(spec, next_id_);
  if (!fresh.ok) return fresh;
  ++next_id_;
  const double prior_delay = it->second.cumulative_delay_ms;
  auto node = tasks_.extract(fresh.task_id);
  remove_task(id);
  node.key() = id;
  node.mapped().id = id;
  node.mapped().cumulative_delay_ms += prior_delay;
  tasks_.insert(std::move(node));
  resizes_counter_->inc();
  fresh.task_id = id;
  // The intermediate remove_task() published with the replacement still
  // under its temporary id; republish so the plan's ownership labels carry
  // the preserved public id.
  recompile_and_publish();
  return fresh;
}

std::pair<DeployResult, DeployResult> Controller::split_task(std::uint32_t id) {
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) return {{false, "unknown task", 0, {}}, {}};
  trace::ReconfigScope reconfig;
  trace::Span span("ctl.split_task", id);
  const TaskSpec& spec = it->second.spec;
  const TaskFilter& f = spec.filter;

  TaskSpec a = spec, b = spec;
  if (f.src_len < 32) {
    a.filter.src_len = static_cast<std::uint8_t>(f.src_len + 1);
    b.filter.src_len = a.filter.src_len;
    b.filter.src_ip = f.src_ip | (1u << (31 - f.src_len));
    a.name += "/lo";
    b.name += "/hi";
  } else if (f.dst_len < 32) {
    a.filter.dst_len = static_cast<std::uint8_t>(f.dst_len + 1);
    b.filter.dst_len = a.filter.dst_len;
    b.filter.dst_ip = f.dst_ip | (1u << (31 - f.dst_len));
    a.name += "/lo";
    b.name += "/hi";
  } else {
    return {{false, "filter is a host route; nothing to split", 0, {}}, {}};
  }

  DeployResult ra = deploy(a, next_id_);
  if (!ra.ok) return {ra, {}};
  ++next_id_;
  DeployResult rb = deploy(b, next_id_);
  if (!rb.ok) {
    remove_task(ra.task_id);
    return {rb, {}};
  }
  ++next_id_;
  remove_task(id);
  return {ra, rb};
}

const DeployedTask* Controller::task(std::uint32_t id) const noexcept {
  const auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second;
}

std::vector<std::uint32_t> Controller::task_ids() const {
  std::vector<std::uint32_t> out;
  out.reserve(tasks_.size());
  for (const auto& [id, t] : tasks_) out.push_back(id);
  return out;
}

void Controller::clear_task_state(std::uint32_t id) {
  const DeployedTask& t = require(id);
  for (const RowPlacement& row : t.rows) {
    for (const UnitPlacement& up : row.units) {
      dp_->group(up.group).cmu(up.cmu).reg().clear_range(up.partition.base,
                                                         up.partition.end());
    }
  }
}

void Controller::clear_all_state() {
  for (const auto& [id, t] : tasks_) clear_task_state(id);
}

std::uint32_t Controller::free_buckets(unsigned group, unsigned cmu) const {
  const auto it = allocators_.find({group, cmu});
  return it == allocators_.end() ? dp_->group(group).config().register_buckets
                                 : it->second.free_buckets();
}

// ---------- readout ----------

const DeployedTask& Controller::require(std::uint32_t id) const {
  // Every by-id access can precede a register readout (or clear): fold
  // outstanding shard deltas first so queries always see exactly what a
  // sequential run would have produced.  Cheap when no pool is enabled or
  // no shard is dirty.
  dp_->merge_shards();
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) throw std::out_of_range("Controller: unknown task id");
  return it->second;
}

namespace {

struct ProbeView {
  const Cmu* cmu;
  const CmuTaskEntry* entry;
  std::uint32_t addr;
  std::uint32_t value;
  std::vector<std::uint32_t> unit_keys;
};

}  // namespace

static ProbeView probe_unit(const FlyMonDataPlane& dp, const UnitPlacement& up,
                            const Packet& probe) {
  const CmuGroup& g = dp.group(up.group);
  const Cmu& cmu = g.cmu(up.cmu);
  const CmuTaskEntry* e = cmu.find(up.phys_id);
  if (e == nullptr) throw std::logic_error("Controller: entry vanished");
  ProbeView v;
  v.cmu = &cmu;
  v.entry = e;
  v.unit_keys = g.compute_keys(serialize_candidate_key(probe));
  v.addr = cmu.probe_address(*e, v.unit_keys);
  v.value = cmu.reg().read(v.addr);
  return v;
}

std::uint64_t Controller::read_row_value(const DeployedTask& t, const RowPlacement& row,
                                         const Packet& probe) const {
  switch (t.algorithm) {
    case Algorithm::kCounterBraids: {
      // Layer-1 value saturates at the cap; layer-2 absorbs the rest.
      std::uint64_t total = 0;
      for (const UnitPlacement& up : row.units) total += probe_unit(*dp_, up, probe).value;
      return total;
    }
    case Algorithm::kSuMaxSum: {
      std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
      for (const UnitPlacement& up : row.units) {
        best = std::min<std::uint64_t>(best, probe_unit(*dp_, up, probe).value);
      }
      return best;
    }
    default:
      return probe_unit(*dp_, row.units.at(0), probe).value;
  }
}

std::uint64_t Controller::query_value(std::uint32_t id, const Packet& probe) const {
  const DeployedTask& t = require(id);
  if (t.algorithm == Algorithm::kTowerSketch) {
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_saturated = 0;
    bool found = false;
    for (std::size_t r = 0; r < t.rows.size(); ++r) {
      const unsigned width = kTowerWidths[r % 3];
      const std::uint32_t raw = static_cast<std::uint32_t>(
          probe_unit(*dp_, t.rows[r].units.at(0), probe).value);
      const std::uint32_t v = raw >> (32 - width);
      if (v == low_mask32(width)) {
        max_saturated = std::max<std::uint64_t>(max_saturated, v);
      } else {
        best = std::min<std::uint64_t>(best, v);
        found = true;
      }
    }
    return found ? best : max_saturated;
  }
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (const RowPlacement& row : t.rows) {
    best = std::min(best, read_row_value(t, row, probe));
  }
  return best;
}

bool Controller::query_existence(std::uint32_t id, const Packet& probe) const {
  const DeployedTask& t = require(id);
  for (const RowPlacement& row : t.rows) {
    const ProbeView v = probe_unit(*dp_, row.units.at(0), probe);
    if (t.spec.bloom_bit_packed) {
      PhvContext ctx;
      const std::uint32_t sel =
          v.cmu->resolve_param(v.entry->p1, probe, v.unit_keys, ctx);
      const std::uint32_t bit = 1u << (sel & 31u);
      if ((v.value & bit) == 0) return false;
    } else if (v.value == 0) {
      return false;
    }
  }
  return true;
}

std::uint64_t Controller::query_max_interarrival_ns(std::uint32_t id,
                                                    const Packet& probe) const {
  const DeployedTask& t = require(id);
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (const RowPlacement& row : t.rows) {
    const ProbeView v = probe_unit(*dp_, row.units.back(), probe);
    best = std::min<std::uint64_t>(best, v.value);
  }
  return best << kTsShift;
}

bool Controller::distinct_over_threshold(std::uint32_t id, const Packet& probe) const {
  const DeployedTask& t = require(id);
  for (const RowPlacement& row : t.rows) {
    const ProbeView v = probe_unit(*dp_, row.units.at(0), probe);
    const unsigned coupons = static_cast<unsigned>(
        std::popcount(v.value & low_mask32(t.coupon_count)));
    if (coupons < t.coupon_threshold) return false;
  }
  return true;
}

double Controller::estimate_distinct(std::uint32_t id, const Packet& probe) const {
  const DeployedTask& t = require(id);
  sketch::CouponConfig cfg;
  cfg.num_coupons = t.coupon_count;
  cfg.draw_probability = t.coupon_probability;
  cfg.collect_threshold = t.coupon_threshold;
  double best = std::numeric_limits<double>::max();
  for (const RowPlacement& row : t.rows) {
    const ProbeView v = probe_unit(*dp_, row.units.at(0), probe);
    const unsigned coupons = static_cast<unsigned>(
        std::popcount(v.value & low_mask32(t.coupon_count)));
    best = std::min(best, cfg.expected_items_to_collect(coupons));
  }
  return best;
}

double Controller::estimate_cardinality(std::uint32_t id) const {
  const DeployedTask& t = require(id);
  const UnitPlacement& up = t.rows.at(0).units.at(0);
  const auto& reg = dp_->group(up.group).cmu(up.cmu).reg();
  if (t.algorithm == Algorithm::kLinearCounting) {
    const std::uint64_t total_bits = std::uint64_t{up.partition.size} * 32;
    std::uint64_t set = 0;
    for (std::uint32_t i = up.partition.base; i < up.partition.end(); ++i) {
      set += static_cast<std::uint64_t>(std::popcount(reg.read(i)));
    }
    const std::uint64_t zeros = total_bits - set;
    if (zeros == 0) return static_cast<double>(total_bits);
    return -static_cast<double>(total_bits) *
           std::log(static_cast<double>(zeros) / static_cast<double>(total_bits));
  }
  // HyperLogLog: registers hold max hash slices; rho = leading ones + 1.
  const unsigned b = log2_floor(up.partition.size);
  sketch::HyperLogLog hll(std::max(2u, b));
  for (std::uint32_t i = 0; i < (1u << std::max(2u, b)); ++i) {
    const std::uint32_t v =
        i < up.partition.size ? reg.read(up.partition.base + i) : 0;
    hll.load_register(i, rho_of_slice(v, 16));
  }
  return hll.estimate();
}

double Controller::estimate_entropy(std::uint32_t id) const {
  return sketch::Mrac::entropy_of_distribution(estimate_size_distribution(id));
}

std::map<std::uint32_t, double> Controller::estimate_size_distribution(
    std::uint32_t id) const {
  const DeployedTask& t = require(id);
  const UnitPlacement& up = t.rows.at(0).units.at(0);
  const auto& reg = dp_->group(up.group).cmu(up.cmu).reg();
  sketch::Mrac mrac(up.partition.size);
  for (std::uint32_t i = 0; i < up.partition.size; ++i) {
    mrac.load_counter(i, reg.read(up.partition.base + i));
  }
  return mrac.estimate_size_distribution();
}

Controller::TaskSnapshot Controller::snapshot_task(std::uint32_t id) const {
  const DeployedTask& t = require(id);
  TaskSnapshot snap;
  snap.task_id = id;
  for (const RowPlacement& row : t.rows) {
    const UnitPlacement& up = row.units.at(0);
    const auto& reg = dp_->group(up.group).cmu(up.cmu).reg();
    snap.row_cells.push_back(reg.read_range(up.partition.base, up.partition.end()));
  }
  return snap;
}

std::uint64_t Controller::query_snapshot(const TaskSnapshot& snap,
                                         const Packet& probe) const {
  const DeployedTask& t = require(snap.task_id);
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t r = 0; r < t.rows.size() && r < snap.row_cells.size(); ++r) {
    const UnitPlacement& up = t.rows[r].units.at(0);
    const ProbeView v = probe_unit(*dp_, up, probe);
    const std::uint32_t offset = v.addr - up.partition.base;
    best = std::min<std::uint64_t>(best, snap.row_cells[r].at(offset));
  }
  return best;
}

std::vector<FlowKeyValue> Controller::detect_heavy_changers(
    std::uint32_t id, const TaskSnapshot& previous_epoch,
    const std::vector<FlowKeyValue>& candidates, std::uint64_t threshold) const {
  std::vector<FlowKeyValue> out;
  for (const FlowKeyValue& k : candidates) {
    const Packet probe = packet_from_candidate_key(k.bytes);
    const std::uint64_t now = query_value(id, probe);
    const std::uint64_t before = query_snapshot(previous_epoch, probe);
    const std::uint64_t delta = now > before ? now - before : before - now;
    if (delta >= threshold) out.push_back(k);
  }
  return out;
}

namespace {

/// Load the XOR unit's register partition into an OddSketch (one parity bit
/// per register bit).
sketch::OddSketch load_odd_sketch(const FlyMonDataPlane& dp, const DeployedTask& t) {
  if (t.algorithm != Algorithm::kOddSketch)
    throw std::invalid_argument("Controller: task is not an OddSketch task");
  const UnitPlacement& up = t.rows.at(0).units.back();
  const auto& reg = dp.group(up.group).cmu(up.cmu).reg();
  sketch::OddSketch os(std::uint64_t{up.partition.size} * 32);
  for (std::uint32_t i = 0; i < up.partition.size; ++i) {
    const std::uint32_t v = reg.read(up.partition.base + i);
    for (unsigned b = 0; b < 32; ++b) {
      os.load_parity(std::uint64_t{i} * 32 + b, (v >> b) & 1u);
    }
  }
  return os;
}

/// Two similarity tasks are comparable only when their XOR units share the
/// exact data-plane hash path (same group/CMU, same slices) and geometry.
void require_comparable(const FlyMonDataPlane& dp, const DeployedTask& a,
                        const DeployedTask& b) {
  const UnitPlacement& ua = a.rows.at(0).units.back();
  const UnitPlacement& ub = b.rows.at(0).units.back();
  const CmuTaskEntry* ea = dp.group(ua.group).cmu(ua.cmu).find(ua.phys_id);
  const CmuTaskEntry* eb = dp.group(ub.group).cmu(ub.cmu).find(ub.phys_id);
  if (ea == nullptr || eb == nullptr) throw std::logic_error("entry vanished");
  if (ua.group != ub.group || ua.cmu != ub.cmu ||
      !(ea->key_slice == eb->key_slice) || !(ea->p1.slice == eb->p1.slice) ||
      ua.partition.size != ub.partition.size) {
    throw std::invalid_argument(
        "Controller: similarity tasks have incompatible placements");
  }
}

}  // namespace

double Controller::estimate_set_size(std::uint32_t id) const {
  return load_odd_sketch(*dp_, require(id)).estimate_size();
}

double Controller::estimate_symmetric_difference(std::uint32_t a, std::uint32_t b) const {
  const DeployedTask& ta = require(a);
  const DeployedTask& tb = require(b);
  require_comparable(*dp_, ta, tb);
  return load_odd_sketch(*dp_, ta).estimate_symmetric_difference(load_odd_sketch(*dp_, tb));
}

double Controller::estimate_jaccard(std::uint32_t a, std::uint32_t b) const {
  const DeployedTask& ta = require(a);
  const DeployedTask& tb = require(b);
  require_comparable(*dp_, ta, tb);
  return load_odd_sketch(*dp_, ta).estimate_jaccard(load_odd_sketch(*dp_, tb));
}

// ---------- observability ----------

TaskHealth Controller::task_health(std::uint32_t id) const {
  const DeployedTask& t = require(id);
  TaskHealth h;
  h.task_id = t.id;
  h.name = t.spec.name;
  h.algorithm = t.algorithm;
  h.buckets = t.buckets;
  h.rows = static_cast<unsigned>(t.rows.size());
  h.cmus_used = t.report.cmus_used;
  h.table_rules = t.report.table_rules;
  h.hash_mask_rules = t.report.hash_mask_rules;
  h.cumulative_delay_ms = t.cumulative_delay_ms;
  for (const RowPlacement& row : t.rows) {
    std::uint64_t nonzero = 0;
    std::uint64_t cells = 0;
    for (const UnitPlacement& up : row.units) {
      const auto& reg = dp_->group(up.group).cmu(up.cmu).reg();
      for (std::uint32_t i = up.partition.base; i < up.partition.end(); ++i) {
        if (reg.read(i) != 0) ++nonzero;
      }
      cells += up.partition.size;
    }
    const double sat =
        cells == 0 ? 0.0 : static_cast<double>(nonzero) / static_cast<double>(cells);
    h.row_saturation.push_back(sat);
    h.max_saturation = std::max(h.max_saturation, sat);
  }
  return h;
}

std::vector<TaskHealth> Controller::health() const {
  std::vector<TaskHealth> out;
  out.reserve(tasks_.size());
  for (const auto& [id, t] : tasks_) out.push_back(task_health(id));
  return out;
}

void Controller::collect_telemetry() const {
  collect_dataplane_telemetry(*dp_, *registry_);
  // Surface tracing/profiling data through the same exporters: span
  // durations recorded since the last collection plus the per-stage
  // cycle breakdown.
  trace::SpanCollector::global().flush_to_registry(*registry_);
  trace::StageProfiler::global().flush_to_registry(*registry_);
  registry_->gauge("flymon_tasks_active").set(static_cast<double>(tasks_.size()));
  for (const TaskHealth& h : health()) {
    const std::string id = std::to_string(h.task_id);
    registry_->gauge("flymon_task_buckets", {{"task", id}}).set(h.buckets);
    registry_->gauge("flymon_task_rules",
                     {{"task", id}})
        .set(static_cast<double>(h.table_rules + h.hash_mask_rules));
    registry_->gauge("flymon_task_deploy_delay_ms_total", {{"task", id}})
        .set(h.cumulative_delay_ms);
    registry_->gauge("flymon_task_max_saturation", {{"task", id}})
        .set(h.max_saturation);
    for (std::size_t r = 0; r < h.row_saturation.size(); ++r) {
      registry_->gauge("flymon_task_row_saturation",
                       {{"task", id}, {"row", std::to_string(r)}})
          .set(h.row_saturation[r]);
    }
  }
}

std::vector<FlowKeyValue> Controller::detect_over_threshold(
    std::uint32_t id, const std::vector<FlowKeyValue>& candidates,
    std::uint64_t threshold) const {
  const DeployedTask& t = require(id);
  std::vector<FlowKeyValue> out;
  for (const FlowKeyValue& k : candidates) {
    const Packet probe = packet_from_candidate_key(k.bytes);
    const bool hit = t.algorithm == Algorithm::kBeauCoup
                         ? distinct_over_threshold(id, probe)
                         : query_value(id, probe) >= threshold;
    if (hit) out.push_back(k);
  }
  return out;
}

}  // namespace flymon::control
