// Clang thread-safety-analysis annotation macros (the standard LLVM set,
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed FLYMON_
// and compiled away entirely under other compilers.  The annotations are
// statically checked by `clang++ -Wthread-safety` (the CI thread-safety leg
// builds with -Werror=thread-safety via FLYMON_WERROR_THREAD_SAFETY); GCC
// builds see empty macros and are unaffected.
//
// Annotate against flymon::common::Mutex (annotated_mutex.hpp), not
// std::mutex: libstdc++'s std::mutex does not carry the `capability`
// attribute, so guards written against it are inert.  Mutexes that pair
// with a std::condition_variable stay std::mutex (the analysis cannot see
// through unique_lock handed to a cv) and document their protocol in
// comments instead.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define FLYMON_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#endif
#endif
#ifndef FLYMON_THREAD_ANNOTATION_ATTRIBUTE__
#define FLYMON_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

/// Type is a lockable capability ("mutex").
#define FLYMON_CAPABILITY(x) FLYMON_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// RAII type that acquires a capability at construction, releases at scope
/// exit.
#define FLYMON_SCOPED_CAPABILITY \
  FLYMON_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define FLYMON_GUARDED_BY(x) FLYMON_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose pointee is guarded by `x`.
#define FLYMON_PT_GUARDED_BY(x) \
  FLYMON_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does not
/// release them).
#define FLYMON_REQUIRES(...) \
  FLYMON_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (caller must not hold them).
#define FLYMON_ACQUIRE(...) \
  FLYMON_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define FLYMON_RELEASE(...) \
  FLYMON_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `ret`.
#define FLYMON_TRY_ACQUIRE(...) \
  FLYMON_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define FLYMON_EXCLUDES(...) \
  FLYMON_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model (condition-variable
/// hand-offs, lock transfer across threads).
#define FLYMON_NO_THREAD_SAFETY_ANALYSIS \
  FLYMON_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
