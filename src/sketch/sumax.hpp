// SuMax (from LightGuardian, NSDI 2021): d-row sketch with an approximate
// conservative-update Sum mode and a Max mode.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/sketch_common.hpp"

namespace flymon::sketch {

enum class SuMaxMode : std::uint8_t { kSum, kMax };

class SuMax {
 public:
  SuMax(SuMaxMode mode, unsigned d, std::uint32_t w);

  static SuMax with_memory(SuMaxMode mode, unsigned d, std::size_t bytes);

  /// Sum mode: add `v` only to the row counters currently holding the
  /// minimum among the flow's d counters (approximate conservative update).
  /// Max mode: raise each row counter to max(counter, v).
  void update(KeyBytes key, std::uint32_t v);

  /// Min across rows (both modes).
  std::uint32_t query(KeyBytes key) const;

  SuMaxMode mode() const noexcept { return mode_; }
  unsigned depth() const noexcept { return d_; }
  std::uint32_t width() const noexcept { return w_; }
  std::size_t memory_bytes() const noexcept { return std::size_t{d_} * w_ * 4; }
  void clear();

 private:
  SuMaxMode mode_;
  unsigned d_;
  std::uint32_t w_;
  std::vector<std::uint32_t> cells_;
};

}  // namespace flymon::sketch
