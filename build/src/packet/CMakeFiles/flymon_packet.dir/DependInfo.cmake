
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/exact.cpp" "src/packet/CMakeFiles/flymon_packet.dir/exact.cpp.o" "gcc" "src/packet/CMakeFiles/flymon_packet.dir/exact.cpp.o.d"
  "/root/repo/src/packet/flowkey.cpp" "src/packet/CMakeFiles/flymon_packet.dir/flowkey.cpp.o" "gcc" "src/packet/CMakeFiles/flymon_packet.dir/flowkey.cpp.o.d"
  "/root/repo/src/packet/trace_gen.cpp" "src/packet/CMakeFiles/flymon_packet.dir/trace_gen.cpp.o" "gcc" "src/packet/CMakeFiles/flymon_packet.dir/trace_gen.cpp.o.d"
  "/root/repo/src/packet/trace_io.cpp" "src/packet/CMakeFiles/flymon_packet.dir/trace_io.cpp.o" "gcc" "src/packet/CMakeFiles/flymon_packet.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flymon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
