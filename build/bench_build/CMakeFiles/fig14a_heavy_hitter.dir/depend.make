# Empty dependencies file for fig14a_heavy_hitter.
# This may be replaced when dependencies are built.
