// Paper Figure 12b: impact of reconfiguration events on measurement
// accuracy.  Task A (per-SrcIP frequency) runs for 20 epochs; a traffic
// spike (+30K flows) hits epochs 6-15.  FlyMon inserts/removes a second
// task (epochs 3/10) and grows/shrinks task A's memory (epochs 6/16) on
// the fly; the static deployment cannot adapt without reloading.
#include "bench/bench_util.hpp"
#include "sketch/count_min.hpp"

using namespace flymon;

namespace {

double epoch_are_flymon(control::Controller& ctl, std::uint32_t task_id,
                        const std::vector<Packet>& epoch, const TaskFilter& filter) {
  FreqMap truth;
  for (const Packet& p : epoch) {
    if (filter.matches(p.ft)) truth[extract_flow_key(p, FlowKeySpec::src_ip())] += 1;
  }
  return analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
    return ctl.query_value(task_id, packet_from_candidate_key(k.bytes));
  });
}

double epoch_are_static(const sketch::CountMin& cms, const std::vector<Packet>& epoch,
                        const TaskFilter& filter) {
  FreqMap truth;
  for (const Packet& p : epoch) {
    if (filter.matches(p.ft)) truth[extract_flow_key(p, FlowKeySpec::src_ip())] += 1;
  }
  return analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
    return cms.query({k.bytes.data(), k.bytes.size()});
  });
}

}  // namespace

int main() {
  bench::header("Figure 12b",
                "Task-A ARE across 20 epochs with a traffic spike (epochs 6-15)");

  constexpr unsigned kEpochs = 20;
  constexpr std::uint64_t kEpochNs = 1'000'000'000;
  constexpr std::uint32_t kSmall = 8192, kLarge = 65536;

  // Per-epoch traces: 10K base flows; +30K spike flows in epochs 6..15.
  std::vector<std::vector<Packet>> epochs;
  for (unsigned e = 0; e < kEpochs; ++e) {
    TraceConfig cfg;
    cfg.num_flows = 10'000;
    cfg.num_packets = 120'000;
    cfg.seed = 1000 + e;
    cfg.duration_ns = kEpochNs;
    auto t = TraceGenerator::generate(cfg);
    if (e >= 6 && e <= 15) {
      // Spike flows come from the same 10/8 pool so task A sees them.
      TraceConfig spike = cfg;
      spike.num_flows = 30'000;
      spike.num_packets = 60'000;
      spike.seed = 9000 + e;
      spike.zipf_alpha = 0.2;
      auto extra = TraceGenerator::generate(spike);
      t.insert(t.end(), extra.begin(), extra.end());
      TraceGenerator::sort_by_time(t);
    }
    epochs.push_back(std::move(t));
  }

  // FlyMon: task A per-SrcIP counts on 10/8 traffic.
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  TaskSpec a;
  a.name = "task A";
  a.filter = TaskFilter::src(0x0A00'0000, 8);
  a.key = FlowKeySpec::src_ip();
  a.attribute = AttributeKind::kFrequency;
  a.memory_buckets = kSmall;
  a.rows = 3;
  auto ha = ctl.add_task(a);
  if (!ha.ok) {
    std::fprintf(stderr, "task A failed: %s\n", ha.error.c_str());
    return 1;
  }
  std::uint32_t a_id = ha.task_id;
  std::uint32_t b_id = 0;

  // Static deployment: same initial memory, immutable.
  sketch::CountMin static_cms(3, kSmall);

  std::printf("%6s %14s %14s %10s\n", "epoch", "FlyMon ARE", "Static ARE", "events");
  for (unsigned e = 0; e < kEpochs; ++e) {
    std::string events;
    if (e == 3) {  // insert task B in the same CMU Group (disjoint filter)
      TaskSpec b;
      b.name = "task B";
      b.filter = TaskFilter::src(0x2D00'0000, 8);
      b.key = FlowKeySpec::five_tuple();
      b.attribute = AttributeKind::kFrequency;
      b.memory_buckets = kSmall;
      b.rows = 3;
      const auto hb = ctl.add_task(b);
      if (hb.ok) b_id = hb.task_id;
      events += "+B ";
    }
    if (e == 6) {  // grow task A for the spike
      const auto r = ctl.resize_task(a_id, kLarge);
      if (r.ok) a_id = r.task_id;
      events += "A:mem+ ";
    }
    if (e == 10 && b_id != 0) {
      ctl.remove_task(b_id);
      events += "-B ";
    }
    if (e == 16) {  // shrink back after the spike
      const auto r = ctl.resize_task(a_id, kSmall);
      if (r.ok) a_id = r.task_id;
      events += "A:mem- ";
    }

    // Fresh epoch: clear data-plane state, then measure.
    dp.clear_registers();
    static_cms.clear();
    dp.process_all(epochs[e]);
    for (const Packet& p : epochs[e]) {
      if (a.filter.matches(p.ft)) {
        const FlowKeyValue k = extract_flow_key(p, FlowKeySpec::src_ip());
        static_cms.update({k.bytes.data(), k.bytes.size()});
      }
    }

    std::printf("%6u %14.4f %14.4f %10s%s\n", e,
                epoch_are_flymon(ctl, a_id, epochs[e], a.filter),
                epoch_are_static(static_cms, epochs[e], a.filter),
                e >= 6 && e <= 15 ? "[spike]" : "", events.c_str());
  }
  std::printf("\n(paper: task insert/remove does not disturb task A; during the "
              "spike the static method's ARE is ~15x higher than FlyMon's)\n");
  return 0;
}
