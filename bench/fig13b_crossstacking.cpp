// Paper Figure 13b: hash-unit and SALU utilisation achieved by
// cross-stacking CMU Groups as the number of allocated MAU stages grows.
#include "bench/bench_util.hpp"
#include "control/crossstack.hpp"

using namespace flymon;
using namespace flymon::control;
using dataplane::Resource;

int main() {
  bench::header("Figure 13b", "Cross-stacking: utilisation vs allocated MAU stages");

  std::printf("%8s %8s %10s %10s %14s\n", "stages", "groups", "HASH", "SALU",
              "(sequential)");
  for (unsigned stages : {4u, 6u, 8u, 10u, 12u}) {
    const CrossStackPlan stacked = cross_stack(stages);
    const CrossStackPlan seq = sequential_stack(stages);
    std::printf("%8u %8u %9.2f%% %9.2f%% %10u grp\n", stages, stacked.groups_placed,
                100.0 * stacked.pipeline.utilization(Resource::kHashUnit),
                100.0 * stacked.pipeline.utilization(Resource::kSalu),
                seq.groups_placed);
  }
  std::printf("\n(paper: 12 stages -> 9 groups, 75%% hash and 56.25%% SALU "
              "utilisation;\n sequential placement fits only 3 groups in 12 stages)\n");

  // Appendix E: splice three more groups into the end-of-pipe triangles by
  // mirroring + recirculating their traffic.
  const auto sp = cross_stack_spliced(12);
  std::printf("\nAppendix E splicing: %u straight + %u spliced = %u groups "
              "(%.0f%% of capacity recirculates); hash %.1f%%, SALU %.2f%%\n",
              sp.straight_groups, sp.spliced_groups, sp.plan.groups_placed,
              100.0 * sp.recirculated_fraction(),
              100.0 * sp.plan.pipeline.utilization(Resource::kHashUnit),
              100.0 * sp.plan.pipeline.utilization(Resource::kSalu));
  return 0;
}
