// Paper §5.1 "Dynamic memory and multitasking": one CMU Group runs up to
// 96 (32 partitions x 3 CMUs) isolated measurement tasks concurrently,
// each deployable in milliseconds, with both memory-allocation modes.
#include <algorithm>

#include "bench/bench_util.hpp"

using namespace flymon;

int main() {
  bench::header("Section 5.1", "Multitasking: 96 isolated tasks on one CMU Group");

  FlyMonDataPlane dp(1);
  control::Controller ctl(dp);
  const std::uint32_t total = dp.group(0).config().register_buckets;

  std::vector<double> delays;
  unsigned deployed = 0;
  for (unsigned i = 0; i < 96; ++i) {
    TaskSpec t;
    t.filter = TaskFilter::src(0x0A00'0000u | (static_cast<std::uint32_t>(i) << 16), 16);
    t.key = FlowKeySpec::five_tuple();
    t.attribute = AttributeKind::kFrequency;
    t.memory_buckets = total / 32;
    t.rows = 1;
    const auto r = ctl.add_task(t);
    if (!r.ok) break;
    delays.push_back(r.report.delay_ms());
    ++deployed;
  }
  std::sort(delays.begin(), delays.end());
  std::printf("tasks deployed on 1 group: %u / 96\n", deployed);
  if (!delays.empty()) {
    std::printf("deployment delay: min %.2f ms, median %.2f ms, max %.2f ms\n",
                delays.front(), delays[delays.size() / 2], delays.back());
  }

  // Memory-allocation modes: accurate rounds up, efficient picks nearest.
  std::printf("\nallocation modes (requested -> granted buckets):\n");
  std::printf("%10s %12s %12s\n", "request", "accurate", "efficient");
  for (std::uint32_t req : {1500u, 2048u, 2100u, 3000u, 5000u, 12000u}) {
    std::printf("%10u %12u %12u\n", req, quantize_buckets(req, AllocMode::kAccurate),
                quantize_buckets(req, AllocMode::kEfficient));
  }

  // 97th task must be rejected: all partitions are in use.
  TaskSpec overflow;
  overflow.filter = TaskFilter::src(0x0B00'0000, 8);
  overflow.key = FlowKeySpec::five_tuple();
  overflow.attribute = AttributeKind::kFrequency;
  overflow.memory_buckets = total / 32;
  overflow.rows = 1;
  const auto r = ctl.add_task(overflow);
  std::printf("\n97th task on the saturated group: %s\n",
              r.ok ? "accepted (unexpected!)" : "rejected (memory exhausted)");
  return 0;
}
