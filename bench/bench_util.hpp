// Shared helpers for the experiment-reproduction benches.  Each bench
// binary regenerates one table or figure of the paper and prints the same
// rows/series the paper reports.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "common/bits.hpp"
#include "control/controller.hpp"
#include "packet/trace_gen.hpp"

namespace flymon::bench {

inline void header(const char* experiment, const char* caption) {
  std::printf("================================================================\n");
  std::printf("%s\n%s\n", experiment, caption);
  std::printf("================================================================\n");
}

inline std::string fmt_mem(std::size_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f MB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1f KB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%zu B", bytes);
  }
  return buf;
}

/// Deploy one task on a fresh data plane sized so that `buckets_per_row`
/// fits a register, returning both.  Benches sweep memory by rebuilding.
struct FlyMonInstance {
  std::unique_ptr<FlyMonDataPlane> dp;
  std::unique_ptr<control::Controller> ctl;
  std::uint32_t task_id = 0;
  bool ok = false;
  std::string error;
};

inline FlyMonInstance deploy_flymon(const TaskSpec& spec, unsigned groups = 9) {
  FlyMonInstance inst;
  CmuGroupConfig cfg;
  // Size registers to the sweep point so the granted partition matches the
  // requested memory exactly (the 32-partition floor of a fixed 64K-bucket
  // register would otherwise dominate small-memory sweep points).
  cfg.register_buckets = static_cast<std::uint32_t>(
      pow2_ceil(std::max<std::uint32_t>(32, spec.memory_buckets)));
  inst.dp = std::make_unique<FlyMonDataPlane>(groups, cfg);
  inst.ctl = std::make_unique<control::Controller>(*inst.dp);
  const auto r = inst.ctl->add_task(spec);
  inst.ok = r.ok;
  inst.error = r.error;
  inst.task_id = r.task_id;
  return inst;
}

/// Candidate key list from a ground-truth map (HH-style sweeps query every
/// true flow, the standard evaluation methodology for sketches).
inline std::vector<FlowKeyValue> keys_of(const FreqMap& m) {
  std::vector<FlowKeyValue> out;
  out.reserve(m.size());
  for (const auto& [k, v] : m) out.push_back(k);
  return out;
}

// ---- opt-in machine-readable output (`--json <path>`) ----
//
// Benches keep their human-oriented console tables; a bench that also wants
// machine-readable rows collects them in a JsonReport and writes the file
// only when the user passed `--json <path>`.

/// Extract `--json <path>` from argv, compacting argv in place so the
/// remaining args can be handed to another parser (e.g. google-benchmark).
/// Returns the path, or "" when the flag is absent.
inline std::string extract_json_path(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string arg = argv[r];
    if (arg == "--json" && r + 1 < argc) {
      path = argv[++r];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return path;
}

/// One result row: a name plus numeric fields.  Kept flat so every bench's
/// output has the same shape: {"name": ..., "metric1": v1, ...}.
struct JsonRow {
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
  void add(const std::string& key, double value) { fields.emplace_back(key, value); }
  const double* get(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  JsonRow& row(const std::string& name) {
    rows_.push_back(JsonRow{name, {}});
    return rows_.back();
  }

  /// First row with `name`, nullptr if absent.  Invalidated by row().
  JsonRow* find(const std::string& name) {
    for (JsonRow& r : rows_) {
      if (r.name == name) return &r;
    }
    return nullptr;
  }

  std::string to_string() const {
    std::string out = "{\n  \"bench\": \"" + bench_ + "\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += "    {\"name\": \"" + rows_[i].name + "\"";
      for (const auto& [k, v] : rows_[i].fields) {
        char buf[64];
        if (v == static_cast<double>(static_cast<long long>(v)) &&
            v > -1e15 && v < 1e15) {
          std::snprintf(buf, sizeof buf, "%.0f", v);
        } else {
          std::snprintf(buf, sizeof buf, "%.6g", v);
        }
        out += ", \"" + k + "\": " + buf;
      }
      out += i + 1 < rows_.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  /// Write the report to `path`; no-op (returns true) when path is empty.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const std::string text = to_string();
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    return ok;
  }

 private:
  std::string bench_;
  std::vector<JsonRow> rows_;
};

}  // namespace flymon::bench
