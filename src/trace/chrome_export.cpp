#include "trace/chrome_export.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <string_view>

#include "telemetry/export.hpp"

namespace flymon::trace {

namespace {

constexpr int kThreadPid = 1;
constexpr int kReconfigPid = 2;

/// Microsecond timestamp with fixed 3-decimal formatting ("12.345") so the
/// output is byte-stable across platforms.
std::string us(std::uint64_t ns) {
  std::ostringstream os;
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
  return os.str();
}

void append_event(std::string& out, const SpanEvent& e, int pid,
                  std::uint64_t tid_on_track) {
  out += "    {\"name\":\"";
  out += telemetry::json_escape(e.name);
  out += "\",\"cat\":\"flymon\",\"ph\":\"";
  out += e.kind == EventKind::kSpan ? 'X' : 'i';
  out += "\",\"ts\":";
  out += us(e.start_ns);
  if (e.kind == EventKind::kSpan) {
    out += ",\"dur\":";
    out += us(e.dur_ns);
  } else {
    out += ",\"s\":\"t\"";
  }
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid_on_track);
  out += ",\"args\":{\"gen\":";
  out += std::to_string(e.gen);
  out += ",\"arg\":";
  out += std::to_string(e.arg);
  out += ",\"depth\":";
  out += std::to_string(e.depth);
  out += "}},\n";
}

void append_meta(std::string& out, const char* what, int pid,
                 std::uint64_t tid, const std::string& name) {
  out += "    {\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"args\":{\"name\":\"";
  out += telemetry::json_escape(name);
  out += "\"}},\n";
}

}  // namespace

std::string to_chrome_trace_json(const std::vector<SpanEvent>& events) {
  // Deterministic order regardless of collect()'s: (start, tid, dur desc,
  // name) — Perfetto re-sorts anyway, golden tests compare bytes.
  std::vector<SpanEvent> ev = events;
  std::sort(ev.begin(), ev.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
    return std::string_view(a.name) < std::string_view(b.name);
  });

  std::set<std::uint32_t> tids;
  std::set<std::uint64_t> gens;
  for (const SpanEvent& e : ev) {
    tids.insert(e.tid);
    if (e.gen != 0) gens.insert(e.gen);
  }

  std::string out;
  out.reserve(256 + ev.size() * 160);
  out += "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";
  append_meta(out, "process_name", kThreadPid, 0, "flymon threads");
  for (std::uint32_t t : tids)
    append_meta(out, "thread_name", kThreadPid, t,
                "thread " + std::to_string(t));
  if (!gens.empty()) {
    append_meta(out, "process_name", kReconfigPid, 0,
                "flymon reconfigurations");
    for (std::uint64_t g : gens)
      append_meta(out, "thread_name", kReconfigPid, g,
                  "reconfig #" + std::to_string(g));
  }
  for (const SpanEvent& e : ev) {
    append_event(out, e, kThreadPid, e.tid);
    if (e.gen != 0) append_event(out, e, kReconfigPid, e.gen);
  }
  // Strip the trailing ",\n" so the array is valid JSON.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "  ]\n}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanEvent>& events) {
  return telemetry::write_file(path, to_chrome_trace_json(events));
}

}  // namespace flymon::trace
