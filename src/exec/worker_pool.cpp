#include "exec/worker_pool.hpp"

#include <algorithm>

#include "core/flymon_dataplane.hpp"
#include "trace/span.hpp"
#include "trace/stage_profiler.hpp"

namespace flymon::exec {

WorkerPool::WorkerPool(FlyMonDataPlane& dp, unsigned num_workers)
    : dp_(&dp), num_executors_(std::max(1u, num_workers)) {
  workers_.reserve(num_executors_);
  for (unsigned i = 0; i < num_executors_; ++i) {
    workers_.push_back(std::make_unique<Worker>(dp));
  }
  threads_.reserve(num_executors_ - 1);
  for (unsigned i = 0; i + 1 < num_executors_; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(job_mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::uint64_t WorkerPool::process(std::span<const Packet> pkts) {
  common::MutexLock submit(submit_mu_);
  if (pkts.empty()) return dp_->plan_generation();

  // One snapshot per job: every chunk of this batch executes the same
  // plan, and a concurrent publisher fences on submit_mu_, so shard deltas
  // never straddle a reconfiguration.
  std::shared_ptr<const ExecPlan> plan = dp_->current_plan();
  if (plan == nullptr || !plan->shard_mergeable() || dp_->tracer() != nullptr) {
    fallback_batches_.fetch_add(1, std::memory_order_relaxed);
    count_fallback(plan.get(), dp_->tracer() != nullptr);
    return dp_->process_batch(pkts);
  }

  auto job = std::make_shared<Job>();
  job->plan = plan;
  job->pkts = pkts;
  job->chunk = std::max<std::size_t>(1, dp_->batch_options().chunk_size);
  job->num_chunks = (pkts.size() + job->chunk - 1) / job->chunk;
  job->remaining.store(job->num_chunks, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lk(job_mu_);
    job_ = job;
    ++job_seq_;
  }
  job_cv_.notify_all();

  // The caller is the last executor, on its own shard.
  run_chunks(*job, num_executors_ - 1);

  {
    std::unique_lock<std::mutex> lk(done_mu_);
    done_cv_.wait(lk, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lk(job_mu_);
    job_.reset();  // stragglers keep the Job alive via their own ref
  }

  parallel_batches_.fetch_add(1, std::memory_order_relaxed);
  chunks_.fetch_add(job->num_chunks, std::memory_order_relaxed);
  dp_->note_parallel_batch(pkts.size());
  return plan->generation();
}

void WorkerPool::worker_main(std::size_t shard_idx) {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(job_mu_);
      job_cv_.wait(lk, [&] { return stop_ || job_seq_ != seen; });
      if (stop_) return;
      seen = job_seq_;
      job = job_;
    }
    if (job != nullptr) run_chunks(*job, shard_idx);
  }
}

void WorkerPool::run_chunks(Job& job, std::size_t shard_idx) {
  Worker& w = *workers_[shard_idx];
  const ShardBinding binding = w.shard.binding();
  trace::StageProfiler& prof = trace::StageProfiler::global();
  const bool profiled = prof.enabled();
  for (;;) {
    const std::uint64_t t0 = profiled ? trace::now_cycles() : 0;
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.num_chunks) return;  // nothing claimed: no completion debt
    const std::size_t begin = i * job.chunk;
    const std::size_t len = std::min(job.chunk, job.pkts.size() - begin);
    const std::uint64_t t1 = profiled ? trace::now_cycles() : 0;
    {
      trace::Span span("exec.chunk", job.plan->generation());
      job.plan->run_batch_sharded(job.pkts.subspan(begin, len), w.scratch,
                                  binding);
    }
    if (profiled) {
      const std::uint64_t t2 = trace::now_cycles();
      prof.record(trace::Stage::kClaim, t1 - t0, 1);
      prof.record(trace::Stage::kExecute, t2 - t1, len);
    }
    w.shard.mark_dirty();
    // The release fetch_sub orders this executor's shard writes before the
    // submitter's acquire read of remaining == 0.
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(done_mu_);
      done_cv_.notify_all();
    }
  }
}

void WorkerPool::quiesce_and_merge() {
  common::MutexLock submit(submit_mu_);
  merge_locked();
}

void WorkerPool::discard_shards() {
  common::MutexLock submit(submit_mu_);
  for (auto& w : workers_) w->shard.discard();
}

void WorkerPool::merge_locked() {
  trace::Span span("exec.merge_shards");
  trace::StageProfiler& prof = trace::StageProfiler::global();
  const bool profiled = prof.enabled();
  const std::uint64_t t0 = trace::monotonic_now_ns();
  const std::uint64_t c0 = profiled ? trace::now_cycles() : 0;
  std::shared_ptr<const ExecPlan> plan = dp_->current_plan();
  bool any = false;
  std::uint64_t folded = 0;
  for (auto& w : workers_) {
    if (!w->shard.dirty()) continue;
    if (plan == nullptr) {
      // Cannot happen under the fencing invariant (unpublish merges
      // first); degrade to discarding rather than folding blind.
      w->shard.discard();
      continue;
    }
    w->shard.merge_into(*plan);
    any = true;
    ++folded;
  }
  if (any) {
    merges_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t dt = trace::monotonic_now_ns() - t0;
    if (shard_merge_us_ != nullptr) {
      shard_merge_us_->observe(static_cast<double>(dt) / 1000.0);
    }
    if (profiled) {
      prof.record(trace::Stage::kMerge, trace::now_cycles() - c0, folded);
    }
  }
}

WorkerPool::Fence::Fence(WorkerPool& pool) : pool_(pool) {
  trace::Span span("exec.fence");
  const std::uint64_t t0 = trace::monotonic_now_ns();
  pool_.submit_mu_.lock();
  pool_.note_fence_wait(trace::monotonic_now_ns() - t0);
  pool_.merge_locked();
}

WorkerPool::Fence::~Fence() { pool_.submit_mu_.unlock(); }

void WorkerPool::note_fence_wait(std::uint64_t wait_ns) {
  if (fence_wait_us_ != nullptr) {
    fence_wait_us_->observe(static_cast<double>(wait_ns) / 1000.0);
  }
}

void WorkerPool::count_fallback(const ExecPlan* plan, bool tracer) {
  // Precedence mirrors the process() guard: a null plan is reported as
  // no_plan even if a tracer is also attached.
  if (plan == nullptr) {
    fallback_no_plan_.fetch_add(1, std::memory_order_relaxed);
    if (fallback_counters_[0] != nullptr) fallback_counters_[0]->inc();
    return;
  }
  if (!plan->shard_mergeable()) {
    fallback_unmergeable_.fetch_add(1, std::memory_order_relaxed);
    if (fallback_counters_[1] != nullptr) fallback_counters_[1]->inc();
    for (MergeBlockerKind k : plan->merge_blocker_kinds()) {
      telemetry::Counter* c = blocker_counters_[static_cast<std::size_t>(k)];
      if (c != nullptr) c->inc();
    }
    return;
  }
  if (tracer) {
    fallback_tracer_.fetch_add(1, std::memory_order_relaxed);
    if (fallback_counters_[2] != nullptr) fallback_counters_[2]->inc();
  }
}

void WorkerPool::bind_telemetry(telemetry::Registry* registry) {
  common::MutexLock submit(submit_mu_);
  if (registry == nullptr) {
    for (auto*& c : fallback_counters_) c = nullptr;
    for (auto*& c : blocker_counters_) c = nullptr;
    fence_wait_us_ = nullptr;
    shard_merge_us_ = nullptr;
    return;
  }
  static const char* kReasons[3] = {"no_plan", "unmergeable", "tracer"};
  for (std::size_t i = 0; i < 3; ++i) {
    fallback_counters_[i] = &registry->counter("flymon_sharded_fallback_total",
                                               {{"reason", kReasons[i]}});
  }
  for (std::size_t i = 0; i < 4; ++i) {
    blocker_counters_[i] = &registry->counter(
        "flymon_sharded_merge_blocker_total",
        {{"kind", to_string(static_cast<MergeBlockerKind>(i))}});
  }
  // 0.25us .. ~4s, same spacing as the span-duration histograms.
  const auto bounds = telemetry::Histogram::exponential_bounds(0.25, 4.0, 17);
  fence_wait_us_ = &registry->histogram("flymon_fence_wait_us", {}, bounds);
  shard_merge_us_ = &registry->histogram("flymon_shard_merge_us", {}, bounds);
}

ParallelStats WorkerPool::stats() const noexcept {
  ParallelStats s;
  s.parallel_batches = parallel_batches_.load(std::memory_order_relaxed);
  s.fallback_batches = fallback_batches_.load(std::memory_order_relaxed);
  s.chunks = chunks_.load(std::memory_order_relaxed);
  s.merges = merges_.load(std::memory_order_relaxed);
  s.fallback_no_plan = fallback_no_plan_.load(std::memory_order_relaxed);
  s.fallback_unmergeable =
      fallback_unmergeable_.load(std::memory_order_relaxed);
  s.fallback_tracer = fallback_tracer_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace flymon::exec
