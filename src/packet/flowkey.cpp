#include "packet/flowkey.hpp"

#include "common/hash.hpp"

namespace flymon {
namespace {

/// Write a prefix mask of `bits` bits starting at byte `at` spanning
/// `field_bytes` bytes (big-endian: prefix occupies most-significant bits).
void put_prefix_mask(CandidateKey& m, std::size_t at, unsigned field_bytes,
                     unsigned bits) noexcept {
  for (unsigned i = 0; i < field_bytes; ++i) {
    const unsigned hi = (i + 1) * 8;
    if (bits >= hi) {
      m[at + i] = 0xFF;
    } else if (bits > i * 8) {
      const unsigned partial = bits - i * 8;  // 1..7
      m[at + i] = static_cast<std::uint8_t>(0xFF << (8 - partial));
    } else {
      m[at + i] = 0x00;
    }
  }
}

}  // namespace

CandidateKey FlowKeySpec::mask() const noexcept {
  CandidateKey m{};
  put_prefix_mask(m, 0, 4, src_ip_bits);
  put_prefix_mask(m, 4, 4, dst_ip_bits);
  put_prefix_mask(m, 8, 2, src_port_bits);
  put_prefix_mask(m, 10, 2, dst_port_bits);
  put_prefix_mask(m, 12, 1, proto_bits);
  put_prefix_mask(m, 13, 4, ts_bits);
  return m;
}

std::string FlowKeySpec::name() const {
  std::string out;
  auto add = [&out](const char* base, unsigned bits, unsigned full) {
    if (bits == 0) return;
    if (!out.empty()) out += '+';
    out += base;
    if (bits != full) {
      out += '/';
      out += std::to_string(bits);
    }
  };
  add("SrcIP", src_ip_bits, 32);
  add("DstIP", dst_ip_bits, 32);
  add("SrcPort", src_port_bits, 16);
  add("DstPort", dst_port_bits, 16);
  add("Proto", proto_bits, 8);
  add("Ts", ts_bits, 32);
  if (out.empty()) out = "<empty>";
  return out;
}

FlowKeyValue mask_candidate_key(const CandidateKey& key, const FlowKeySpec& spec) noexcept {
  const CandidateKey m = spec.mask();
  FlowKeyValue out;
  for (std::size_t i = 0; i < kCandidateKeyBytes; ++i) out.bytes[i] = key[i] & m[i];
  return out;
}

FlowKeyValue extract_flow_key(const Packet& p, const FlowKeySpec& spec) noexcept {
  return mask_candidate_key(serialize_candidate_key(p), spec);
}

}  // namespace flymon

std::size_t std::hash<flymon::FlowKeyValue>::operator()(
    const flymon::FlowKeyValue& k) const noexcept {
  return static_cast<std::size_t>(flymon::hash64(
      std::span<const std::uint8_t>(k.bytes.data(), k.bytes.size()), 0x51DEC0DEull));
}
