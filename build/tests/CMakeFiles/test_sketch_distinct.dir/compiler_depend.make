# Empty compiler generated dependencies file for test_sketch_distinct.
# This may be replaced when dependencies are built.
