# Empty compiler generated dependencies file for flymon_packet.
# This may be replaced when dependencies are built.
