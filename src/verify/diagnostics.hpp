// Structured diagnostics emitted by the static deployment verifier
// (src/verify): severity, a dotted check id, the rule/site location, a
// human message and a fix hint.  Reports are produced without executing a
// single packet — the whole point is to catch broken deployments before
// traffic does.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace flymon::verify {

enum class Severity : std::uint8_t { kInfo = 0, kWarning, kError };

const char* to_string(Severity s) noexcept;

/// One finding.  `check` is a stable dotted id ("memory.overlap",
/// "tcam.shadow", ...) that tests and the mutation self-test key on;
/// `site` names the offending location ("g2.cmu1", "task 7", "stage 11").
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string check;
  std::string site;
  std::string message;
  std::string hint;
};

class VerifyReport {
 public:
  void add(Severity severity, std::string check, std::string site,
           std::string message, std::string hint = {});

  const std::vector<Diagnostic>& diagnostics() const noexcept { return diags_; }
  std::size_t count(Severity s) const noexcept;
  bool has_errors() const noexcept { return count(Severity::kError) > 0; }
  bool empty() const noexcept { return diags_.empty(); }

  /// True iff some diagnostic carries this check id (any severity).
  bool has_check(std::string_view check) const noexcept;

  /// Names of the analyzers that contributed to this report.
  std::vector<std::string> analyzers_run;

  /// One line per diagnostic: "error  memory.overlap  g0.cmu1  <msg> (hint: ...)".
  /// `min_severity` filters (e.g. kError renders errors only).
  std::string format(Severity min_severity = Severity::kInfo) const;

  /// Merge another report's findings (used by the registry runner).
  void merge(VerifyReport other);

 private:
  std::vector<Diagnostic> diags_;
};

/// Machine-readable report: {"analyzers": [...], "counts": {...},
/// "diagnostics": [{severity, check, site, message, hint}, ...]}.
/// Consumed by `flymon_verify --json` and the CI artifact upload.
std::string to_json(const VerifyReport& report);

}  // namespace flymon::verify
