// Static deployment verifier (src/verify): report plumbing, the TCAM lint
// library on hand-built rule sets, analyzer registry behaviour, clean
// verification of Table-1 task mixes up to full capacity, the seeded
// mutation catalogue, and the paranoid deploy gate / rollback regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "control/crossstack.hpp"
#include "control/shell.hpp"
#include "core/flymon_dataplane.hpp"
#include "dataplane/tcam.hpp"
#include "verify/diagnostics.hpp"
#include "verify/mutations.hpp"
#include "verify/tcam_lint.hpp"
#include "verify/verifier.hpp"

namespace flymon {
namespace {

using dataplane::TernaryPattern;
using verify::Severity;

TernaryPattern pat(std::uint64_t value, std::uint64_t mask) {
  return TernaryPattern{value, mask};
}

// ---- report plumbing ----

TEST(VerifyReport, CountsAndChecks) {
  verify::VerifyReport r;
  EXPECT_TRUE(r.empty());
  r.add(Severity::kError, "memory.overlap", "g0.cmu0", "two partitions collide");
  r.add(Severity::kWarning, "tcam.conflict", "g1.cmu2", "same priority", "renumber");
  r.add(Severity::kInfo, "resources.note", "pipeline", "fyi");
  EXPECT_EQ(r.count(Severity::kError), 1u);
  EXPECT_EQ(r.count(Severity::kWarning), 1u);
  EXPECT_EQ(r.count(Severity::kInfo), 1u);
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(r.has_check("memory.overlap"));
  EXPECT_TRUE(r.has_check("tcam.conflict"));
  EXPECT_FALSE(r.has_check("memory.pow2"));
}

TEST(VerifyReport, FormatFiltersBySeverity) {
  verify::VerifyReport r;
  r.add(Severity::kError, "memory.overlap", "g0.cmu0", "boom", "fix it");
  r.add(Severity::kWarning, "tcam.conflict", "g1.cmu2", "meh");
  const std::string all = r.format();
  EXPECT_NE(all.find("memory.overlap"), std::string::npos);
  EXPECT_NE(all.find("tcam.conflict"), std::string::npos);
  EXPECT_NE(all.find("(hint: fix it)"), std::string::npos);
  const std::string errors_only = r.format(Severity::kError);
  EXPECT_NE(errors_only.find("memory.overlap"), std::string::npos);
  EXPECT_EQ(errors_only.find("tcam.conflict"), std::string::npos);
}

TEST(VerifyReport, MergeCombinesFindings) {
  verify::VerifyReport a;
  a.add(Severity::kError, "memory.overlap", "g0.cmu0", "boom");
  a.analyzers_run.push_back("memory");
  verify::VerifyReport b;
  b.add(Severity::kWarning, "tcam.conflict", "g1.cmu2", "meh");
  b.analyzers_run.push_back("tcam");
  a.merge(std::move(b));
  EXPECT_EQ(a.diagnostics().size(), 2u);
  EXPECT_EQ(a.analyzers_run.size(), 2u);
}

// ---- ternary cover / overlap relations ----

TEST(TcamLint, CoversAndOverlaps) {
  const auto wildcard = pat(0, 0);
  const auto ten_slash_8 = pat(0x0A000000u, 0xFF000000u);
  const auto ten_one_slash_16 = pat(0x0A010000u, 0xFFFF0000u);
  const auto eleven_slash_8 = pat(0x0B000000u, 0xFF000000u);

  EXPECT_TRUE(verify::covers(wildcard, ten_slash_8));
  EXPECT_FALSE(verify::covers(ten_slash_8, wildcard));
  EXPECT_TRUE(verify::covers(ten_slash_8, ten_one_slash_16));
  EXPECT_FALSE(verify::covers(ten_one_slash_16, ten_slash_8));
  EXPECT_TRUE(verify::covers(ten_slash_8, ten_slash_8));
  EXPECT_FALSE(verify::covers(ten_slash_8, eleven_slash_8));

  EXPECT_TRUE(verify::overlaps(wildcard, ten_slash_8));
  EXPECT_TRUE(verify::overlaps(ten_slash_8, ten_one_slash_16));
  EXPECT_FALSE(verify::overlaps(ten_slash_8, eleven_slash_8));
}

// ---- shadow / conflict lint on hand-built rule sets ----

TEST(TcamLint, EarlierTerminalEntryShadowsLaterCoveredEntry) {
  std::vector<verify::LintEntry> entries;
  entries.push_back({pat(0, 0), 100, "taskA", true, "entry 0"});
  entries.push_back({pat(0x0A000000u, 0xFF000000u), 200, "taskB", true, "entry 1"});
  const auto findings = verify::lint_entries(entries);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, verify::LintFinding::Kind::kShadowed);
  EXPECT_EQ(findings[0].entry, 1u);
  EXPECT_EQ(findings[0].blocker, 0u);
}

TEST(TcamLint, NonTerminalEntryDoesNotShadow) {
  std::vector<verify::LintEntry> entries;
  // A sampled rule (terminal=false) lets unmatched-coin packets fall through,
  // so the later specific entry is still reachable.
  entries.push_back({pat(0, 0), 100, "taskA", false, "entry 0"});
  entries.push_back({pat(0x0A000000u, 0xFF000000u), 200, "taskB", true, "entry 1"});
  EXPECT_TRUE(verify::lint_entries(entries).empty());
}

TEST(TcamLint, SamePriorityOverlapDifferentActionsIsConflict) {
  std::vector<verify::LintEntry> entries;
  entries.push_back({pat(0x0A000000u, 0xFF000000u), 100, "add@0", false, "entry 0"});
  entries.push_back({pat(0x0A010000u, 0xFFFF0000u), 100, "max@4096", false, "entry 1"});
  const auto findings = verify::lint_entries(entries);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, verify::LintFinding::Kind::kConflict);
  EXPECT_EQ(findings[0].entry, 1u);
  EXPECT_EQ(findings[0].blocker, 0u);
}

TEST(TcamLint, SamePrioritySameActionIsNotAConflict) {
  std::vector<verify::LintEntry> entries;
  entries.push_back({pat(0x0A000000u, 0xFF000000u), 100, "add@0", false, "entry 0"});
  entries.push_back({pat(0x0A010000u, 0xFFFF0000u), 100, "add@0", false, "entry 1"});
  EXPECT_TRUE(verify::lint_entries(entries).empty());
}

TEST(TcamLint, DisjointSamePriorityIsNotAConflict) {
  std::vector<verify::LintEntry> entries;
  entries.push_back({pat(0x0A000000u, 0xFF000000u), 100, "add@0", true, "entry 0"});
  entries.push_back({pat(0x0B000000u, 0xFF000000u), 100, "max@64", true, "entry 1"});
  EXPECT_TRUE(verify::lint_entries(entries).empty());
}

TEST(TcamLint, ShadowedEntryIsNotAlsoReportedAsConflict) {
  std::vector<verify::LintEntry> entries;
  entries.push_back({pat(0x0A000000u, 0xFF000000u), 100, "add@0", true, "entry 0"});
  entries.push_back({pat(0x0A010000u, 0xFFFF0000u), 100, "max@64", true, "entry 1"});
  const auto findings = verify::lint_entries(entries);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, verify::LintFinding::Kind::kShadowed);
}

// ---- range-expansion reassembly ----

TEST(TcamLint, RangeExpansionReassemblesExactly) {
  // [3, 12] over 4 bits: the classic aligned-block split.
  const auto patterns = dataplane::range_to_ternary(3, 12, 4);
  EXPECT_TRUE(verify::check_range_reassembly(patterns, 3, 12, 4).empty());
}

TEST(TcamLint, RangeReassemblyDetectsMissingBlock) {
  auto patterns = dataplane::range_to_ternary(3, 12, 4);
  ASSERT_GT(patterns.size(), 1u);
  patterns.pop_back();
  EXPECT_FALSE(verify::check_range_reassembly(patterns, 3, 12, 4).empty());
}

TEST(TcamLint, RangeReassemblyDetectsForeignBlock) {
  auto patterns = dataplane::range_to_ternary(4, 7, 4);  // one aligned block
  ASSERT_EQ(patterns.size(), 1u);
  patterns.push_back(pat(0x8u, 0xCu));  // [8,11]: outside [4,7]
  EXPECT_FALSE(verify::check_range_reassembly(patterns, 4, 7, 4).empty());
}

TEST(TcamLint, RangeReassemblyDetectsDuplicateBlock) {
  auto patterns = dataplane::range_to_ternary(0, 7, 4);
  ASSERT_EQ(patterns.size(), 1u);
  patterns.push_back(patterns.front());
  EXPECT_FALSE(verify::check_range_reassembly(patterns, 0, 7, 4).empty());
}

// ---- analyzer registry ----

TEST(Verifier, RegistersNineBuiltInAnalyzers) {
  const verify::Verifier v;
  ASSERT_EQ(v.analyzers().size(), 9u);
  EXPECT_NE(v.find("resources"), nullptr);
  EXPECT_NE(v.find("tcam"), nullptr);
  EXPECT_NE(v.find("memory"), nullptr);
  EXPECT_NE(v.find("tasks"), nullptr);
  EXPECT_NE(v.find("dataflow-key"), nullptr);
  EXPECT_NE(v.find("dataflow-range"), nullptr);
  EXPECT_NE(v.find("dataflow-accuracy"), nullptr);
  EXPECT_NE(v.find("translate"), nullptr);
  EXPECT_NE(v.find("merge"), nullptr);
  EXPECT_EQ(v.find("nonesuch"), nullptr);
}

TEST(Verifier, RunOneUnknownAnalyzerThrows) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  const verify::Verifier v;
  const verify::VerifyContext ctx{&ctl, &dp, nullptr, false};
  EXPECT_THROW((void)v.run_one("nonesuch", ctx), std::invalid_argument);
}

TEST(Verifier, RunRecordsAnalyzersRun) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  const verify::Verifier v;
  const verify::VerifyContext ctx{&ctl, &dp, nullptr, false};
  const auto report = v.run(ctx);
  EXPECT_EQ(report.analyzers_run.size(), 9u);
  EXPECT_TRUE(report.empty());  // empty deployment is trivially clean
}

// ---- clean deployments (every analyzer must stay silent) ----

TaskSpec make_spec(const std::string& name, FlowKeySpec key, AttributeKind attr,
                   Algorithm algo, std::uint32_t buckets,
                   TaskFilter filter = TaskFilter::any()) {
  TaskSpec s;
  s.name = name;
  s.key = key;
  s.attribute = attr;
  s.algorithm = algo;
  s.memory_buckets = buckets;
  s.filter = filter;
  return s;
}

TEST(VerifyClean, SingleCmsTask) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ASSERT_TRUE(ctl.add_task(make_spec("hh", FlowKeySpec::src_ip(),
                                     AttributeKind::kFrequency, Algorithm::kCms,
                                     4096))
                  .ok);
  const auto report = verify::verify_deployment(ctl);
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(VerifyClean, Table1MixWithChainsAndPlan) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ASSERT_TRUE(ctl.add_task(make_spec("hh", FlowKeySpec::src_ip(),
                                     AttributeKind::kFrequency, Algorithm::kCms,
                                     4096))
                  .ok);
  ASSERT_TRUE(ctl.add_task(make_spec("blacklist", FlowKeySpec::ip_pair(),
                                     AttributeKind::kExistence,
                                     Algorithm::kBloomFilter, 16384,
                                     TaskFilter::src(0x0A000000u, 8)))
                  .ok);
  ASSERT_TRUE(ctl.add_task(make_spec("similarity", FlowKeySpec::src_ip(),
                                     AttributeKind::kSimilarity,
                                     Algorithm::kOddSketch, 8192,
                                     TaskFilter::dst(0xC0A80000u, 16)))
                  .ok);
  auto sumax = make_spec("congestion", FlowKeySpec::dst_ip(), AttributeKind::kMax,
                         Algorithm::kSuMaxMax, 4096,
                         TaskFilter::src(0xAC100000u, 12));
  sumax.param = ParamSpec::metadata(MetaField::kQueueLen);
  ASSERT_TRUE(ctl.add_task(sumax).ok);

  const auto plan = control::cross_stack(dataplane::TofinoModel::kNumStages,
                                         dp.group(0).config());
  const auto report = verify::verify_deployment(ctl, &plan);
  EXPECT_TRUE(report.empty()) << report.format();
}

// The flymon_verify CLI's built-in scenario, driven through the shell: nine
// 3-row tasks with pairwise-intersecting full-rate filters spread one per
// group, occupying all 27 CMUs.  Must verify with zero diagnostics.
TEST(VerifyClean, FullCapacityNineGroupsTwentySevenCmus) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  control::Shell shell(ctl);
  const char* const scenario[] = {
      "add name=heavy-hitter key=SrcIP attr=Frequency algo=CMS mem=4096",
      "add name=size-dist key=SrcIP+DstIP attr=Frequency algo=Tower mem=8192",
      "add name=blacklist key=IPPair attr=Existence algo=BloomFilter mem=16384",
      "add name=congestion key=DstIP attr=Max algo=SuMaxMax param=QueueLen mem=4096",
      "add name=port-scan key=SrcIP attr=Distinct algo=BeauCoup param=key:DstPort "
      "threshold=100 mem=8192",
      "add name=heavy-hitter-10 key=DstIP attr=Frequency algo=CMS mem=4096 "
      "filter=10.0.0.0/8",
      "add name=flow-size key=5Tuple attr=Frequency algo=Tower mem=8192",
      "add name=seen-sources key=SrcIP attr=Existence algo=BloomFilter mem=8192",
      "add name=max-bytes key=SrcIP attr=Max algo=SuMaxMax param=Bytes mem=4096",
  };
  for (const char* line : scenario) {
    const std::string response = shell.execute(line);
    ASSERT_EQ(response.rfind("error:", 0), std::string::npos) << response;
  }
  ASSERT_EQ(ctl.num_tasks(), 9u);

  unsigned occupied = 0;
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    for (unsigned c = 0; c < dp.group(g).num_cmus(); ++c) {
      if (!dp.group(g).cmu(c).entries().empty()) ++occupied;
    }
  }
  EXPECT_EQ(occupied, 27u);

  const auto plan = control::cross_stack(dataplane::TofinoModel::kNumStages,
                                         dp.group(0).config());
  const auto report = verify::verify_deployment(ctl, &plan);
  EXPECT_TRUE(report.empty()) << report.format();
  EXPECT_EQ(report.count(Severity::kWarning), 0u);
}

// ---- mutation self-test (the 10-corruption catalogue) ----

TEST(VerifyMutations, CatalogueHasFifteenDistinctMutations) {
  const auto catalogue = verify::mutation_catalogue();
  ASSERT_EQ(catalogue.size(), 15u);
  std::vector<std::string> names;
  for (const auto& m : catalogue) {
    EXPECT_FALSE(m.expected_check.empty());
    names.push_back(m.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::unique(names.begin(), names.end()) == names.end());
}

TEST(VerifyMutations, EverySeededCorruptionIsDetected) {
  const auto result = verify::run_mutation_self_test();
  EXPECT_TRUE(result.baseline_clean) << result.baseline_diagnostics;
  // 15 deployment corruptions plus 7 seeded miscompiles (miscompile-*).
  ASSERT_EQ(result.cases.size(), 22u);
  for (const auto& c : result.cases) {
    EXPECT_TRUE(c.detected) << c.mutation << ": expected " << c.expected_check
                            << " in\n"
                            << c.diagnostics;
  }
  EXPECT_TRUE(result.passed());
  const std::string text = verify::format(result);
  EXPECT_NE(text.find("caught"), std::string::npos);
}

// ---- paranoid gate & rollback regression ----

// Stable textual fingerprint of everything a deployment mutates: compression
// specs, CMU task entries, SALU slots, register bytes and allocator state.
std::string dataplane_fingerprint(const FlyMonDataPlane& dp,
                                  const control::Controller& ctl) {
  std::ostringstream out;
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    const CmuGroup& grp = dp.group(g);
    out << "group " << g << '\n';
    for (unsigned u = 0; u < grp.compression().num_units(); ++u) {
      const auto& spec = grp.compression().spec_of(u);
      out << "  unit " << u << ": " << (spec ? spec->name() : "-") << '\n';
    }
    for (unsigned c = 0; c < grp.num_cmus(); ++c) {
      const Cmu& cmu = grp.cmu(c);
      out << "  cmu " << c << ": ops=" << cmu.salu().loaded_ops() << '\n';
      for (const CmuTaskEntry& e : cmu.entries()) {
        out << "    task " << e.task_id << " prio " << e.priority << " part ["
            << e.partition.base << '+' << e.partition.size << ") op "
            << static_cast<int>(e.op) << " filter " << e.filter.src_ip << '/'
            << int(e.filter.src_len) << ' ' << e.filter.dst_ip << '/'
            << int(e.filter.dst_len) << '\n';
      }
      std::uint64_t register_sum = 0;
      for (std::uint32_t i = 0; i < cmu.reg().size(); ++i) {
        register_sum += cmu.reg().read(i);
      }
      out << "    register_sum " << register_sum << '\n';
      out << "    free " << ctl.free_buckets(g, c) << '\n';
    }
  }
  out << "tasks " << ctl.num_tasks() << '\n';
  return out.str();
}

TEST(VerifyParanoid, CleanDeployPassesTheGate) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ctl.set_paranoid(true);
  const auto r = ctl.add_task(make_spec("hh", FlowKeySpec::src_ip(),
                                        AttributeKind::kFrequency,
                                        Algorithm::kCms, 4096));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(ctl.last_verify_errors().empty()) << ctl.last_verify_errors();
  EXPECT_TRUE(ctl.remove_task(r.task_id));
  EXPECT_TRUE(ctl.last_verify_errors().empty()) << ctl.last_verify_errors();
}

TEST(VerifyParanoid, FailedDeployLeavesDataPlaneByteIdentical) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ctl.set_paranoid(true);
  ASSERT_TRUE(ctl.add_task(make_spec("hh", FlowKeySpec::src_ip(),
                                     AttributeKind::kFrequency, Algorithm::kCms,
                                     4096))
                  .ok);
  const std::string before = dataplane_fingerprint(dp, ctl);

  // Absurd memory demand: allocation fails mid-placement and the staged
  // rows must unwind completely.
  const auto r = ctl.add_task(make_spec("whale", FlowKeySpec::dst_ip(),
                                        AttributeKind::kFrequency,
                                        Algorithm::kCms, 1u << 30));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());

  EXPECT_EQ(dataplane_fingerprint(dp, ctl), before);
  const auto report = verify::verify_deployment(ctl);
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(VerifyParanoid, ExhaustionUnderLoadRollsBackAndStaysClean) {
  FlyMonDataPlane dp(2);  // tiny data plane: third wildcard task cannot fit
  control::Controller ctl(dp);
  ctl.set_paranoid(true);
  ASSERT_TRUE(ctl.add_task(make_spec("a", FlowKeySpec::src_ip(),
                                     AttributeKind::kFrequency, Algorithm::kCms,
                                     4096))
                  .ok);
  ASSERT_TRUE(ctl.add_task(make_spec("b", FlowKeySpec::dst_ip(),
                                     AttributeKind::kFrequency, Algorithm::kCms,
                                     4096))
                  .ok);
  const std::string before = dataplane_fingerprint(dp, ctl);
  const auto r = ctl.add_task(make_spec("c", FlowKeySpec::ip_pair(),
                                        AttributeKind::kFrequency,
                                        Algorithm::kCms, 4096));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(dataplane_fingerprint(dp, ctl), before);
  EXPECT_TRUE(verify::verify_deployment(ctl).empty());
}

// ---- shell front end ----

TEST(VerifyShell, CommandFamily) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  control::Shell shell(ctl);
  ASSERT_EQ(shell
                .execute("add name=hh key=SrcIP attr=Frequency algo=CMS "
                         "mem=4096")
                .rfind("error:", 0),
            std::string::npos);

  const std::string all = shell.execute("verify");
  EXPECT_NE(all.find("0 error(s)"), std::string::npos) << all;

  const std::string listing = shell.execute("verify list");
  EXPECT_NE(listing.find("resources"), std::string::npos);
  EXPECT_NE(listing.find("tcam"), std::string::npos);
  EXPECT_NE(listing.find("memory"), std::string::npos);
  EXPECT_NE(listing.find("tasks"), std::string::npos);

  const std::string one = shell.execute("verify memory");
  EXPECT_NE(one.find("0 error(s)"), std::string::npos) << one;

  const std::string unknown = shell.execute("verify nonesuch");
  EXPECT_EQ(unknown.rfind("error:", 0), 0u) << unknown;

  EXPECT_EQ(shell.execute("verify paranoid on").rfind("error:", 0),
            std::string::npos);
  EXPECT_TRUE(ctl.paranoid());
  EXPECT_EQ(shell.execute("verify paranoid off").rfind("error:", 0),
            std::string::npos);
  EXPECT_FALSE(ctl.paranoid());
}

}  // namespace
}  // namespace flymon
