file(REMOVE_RECURSE
  "../bench/fig13a_resource_overhead"
  "../bench/fig13a_resource_overhead.pdb"
  "CMakeFiles/fig13a_resource_overhead.dir/fig13a_resource_overhead.cpp.o"
  "CMakeFiles/fig13a_resource_overhead.dir/fig13a_resource_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_resource_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
