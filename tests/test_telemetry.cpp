// Telemetry subsystem: metric primitives, registry snapshots, exporters,
// sampled packet tracing, per-task health, and the shell's telemetry/trace
// commands.  The exporter golden test pins the exact Prometheus/JSON text of
// a small deployed-task scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "control/epoch.hpp"
#include "control/shell.hpp"
#include "packet/trace_gen.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_ring.hpp"

namespace flymon {
namespace {

using telemetry::Labels;
using telemetry::Registry;

/// Flip the global telemetry switch for one test, restoring on exit.
struct EnabledGuard {
  explicit EnabledGuard(bool on) : prev_(telemetry::enabled()) {
    telemetry::set_enabled(on);
  }
  ~EnabledGuard() { telemetry::set_enabled(prev_); }
  bool prev_;
};

TEST(TelemetryCounter, DisabledIsNoOp) {
  EnabledGuard off(false);
  telemetry::Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryCounter, EnabledCountsAndResets) {
  EnabledGuard on(true);
  telemetry::Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryGauge, WritableRegardlessOfSwitch) {
  EnabledGuard off(false);
  telemetry::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(TelemetryHistogram, BucketSemantics) {
  EnabledGuard on(true);
  telemetry::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);   // bucket le=1
  h.observe(1.0);   // le=1 (upper bound inclusive)
  h.observe(7.0);   // le=10
  h.observe(1000);  // +Inf
  const auto s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 0u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 1008.5);
}

TEST(TelemetryHistogram, DisabledIsNoOp) {
  EnabledGuard off(false);
  telemetry::Histogram h({1.0});
  h.observe(0.5);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(TelemetryHistogram, ExponentialBounds) {
  const auto b = telemetry::Histogram::exponential_bounds(1.0, 4.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 64.0);
}

TEST(TelemetryRegistry, StableRefsAndDeterministicSnapshot) {
  EnabledGuard on(true);
  Registry reg;
  telemetry::Counter& a = reg.counter("zeta_total", {{"x", "1"}});
  telemetry::Counter& a2 = reg.counter("zeta_total", {{"x", "1"}});
  EXPECT_EQ(&a, &a2);  // same identity -> same metric
  reg.counter("alpha_total").inc(3);
  reg.gauge("mid_gauge", {{"k", "v"}}).set(7);
  a.inc(5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Sorted by canonical key: alpha_total, mid_gauge{...}, zeta_total{...}.
  EXPECT_EQ(snap[0].name, "alpha_total");
  EXPECT_EQ(snap[1].name, "mid_gauge");
  EXPECT_EQ(snap[2].name, "zeta_total");
  EXPECT_DOUBLE_EQ(snap[2].value, 5.0);
  EXPECT_EQ(reg.size(), 3u);
  reg.reset_values();
  EXPECT_DOUBLE_EQ(reg.snapshot()[0].value, 0.0);
  EXPECT_EQ(reg.size(), 3u);  // structure survives a value reset
}

TEST(TelemetryRegistry, MetricKeyCanonicalForm) {
  EXPECT_EQ(telemetry::metric_key("m", {}), "m");
  EXPECT_EQ(telemetry::metric_key("m", {{"a", "1"}, {"b", "x"}}),
            "m{a=\"1\",b=\"x\"}");
}

TEST(TelemetryExport, PrometheusHandBuilt) {
  EnabledGuard on(true);
  Registry reg;
  reg.counter("requests_total", {{"code", "200"}}).inc(3);
  reg.gauge("temp").set(1.5);
  reg.histogram("lat", {}, {1.0, 2.0}).observe(1.5);
  const std::string text = telemetry::to_prometheus(reg);
  EXPECT_EQ(text,
            "# TYPE lat histogram\n"
            "lat_bucket{le=\"1\"} 0\n"
            "lat_bucket{le=\"2\"} 1\n"
            "lat_bucket{le=\"+Inf\"} 1\n"
            "lat_sum 1.5\n"
            "lat_count 1\n"
            "# TYPE requests_total counter\n"
            "requests_total{code=\"200\"} 3\n"
            "# TYPE temp gauge\n"
            "temp 1.5\n");
}

TEST(TelemetryExport, JsonHandBuilt) {
  EnabledGuard on(true);
  Registry reg;
  reg.counter("c_total").inc(2);
  reg.gauge("g", {{"l", "a\"b"}}).set(0.25);
  const std::string text = telemetry::to_json(reg);
  EXPECT_NE(text.find("\"name\":\"c_total\""), std::string::npos);
  EXPECT_NE(text.find("\"value\":2"), std::string::npos);
  EXPECT_NE(text.find("\"l\":\"a\\\"b\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"gauge\""), std::string::npos);
}

TEST(TelemetryExport, FormatNumber) {
  EXPECT_EQ(telemetry::format_number(17), "17");
  EXPECT_EQ(telemetry::format_number(0.421875), "0.421875");
  EXPECT_EQ(telemetry::format_number(-3), "-3");
}

// ---- packet tracing ----

TEST(PacketTracer, SamplesOneInN) {
  telemetry::PacketTracer tracer(4, 3);
  unsigned sampled = 0;
  for (unsigned i = 0; i < 12; ++i) {
    if (tracer.should_sample()) ++sampled;
  }
  EXPECT_EQ(sampled, 4u);  // packets 0, 3, 6, 9
  EXPECT_EQ(tracer.packets_seen(), 12u);
}

TEST(PacketTracer, RingKeepsNewestOldestFirst) {
  telemetry::PacketTracer tracer(2, 1);
  for (std::uint64_t i = 0; i < 5; ++i) {
    Packet p;
    p.ts_ns = i;
    ASSERT_TRUE(tracer.should_sample());
    tracer.begin(p);
    tracer.commit();
  }
  EXPECT_EQ(tracer.records_taken(), 5u);
  const auto recs = tracer.records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].ts_ns, 3u);  // oldest surviving
  EXPECT_EQ(recs[1].ts_ns, 4u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.packets_seen(), 0u);
}

TEST(PacketTracer, DataplaneFillsSteps) {
  EnabledGuard on(true);
  FlyMonDataPlane dp(1);
  control::Controller ctl(dp);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 1024;
  s.rows = 3;
  ASSERT_TRUE(ctl.add_task(s).ok);

  telemetry::PacketTracer tracer(8, 2);
  dp.set_tracer(&tracer);
  TraceConfig cfg;
  cfg.num_flows = 10;
  cfg.num_packets = 20;
  for (const Packet& p : TraceGenerator::generate(cfg)) dp.process(p);
  dp.set_tracer(nullptr);

  EXPECT_EQ(tracer.packets_seen(), 20u);
  EXPECT_EQ(tracer.records_taken(), 10u);
  const auto recs = tracer.records();
  ASSERT_EQ(recs.size(), 8u);
  for (const auto& r : recs) {
    ASSERT_FALSE(r.keys.empty());      // compressed keys of group 0
    ASSERT_EQ(r.steps.size(), 3u);     // one step per CMS row
    for (const auto& step : r.steps) {
      EXPECT_STREQ(step.op, "Cond-ADD");
      EXPECT_FALSE(step.aborted);
      EXPECT_GE(step.result, 1u);
    }
  }
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"steps\""), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"Cond-ADD\""), std::string::npos);
}

// Exercised under -fsanitize=thread (the `tsan` preset): the data-plane
// thread publishes trace records while a monitoring thread snapshots them.
// Readers must only ever observe fully committed records.
TEST(PacketTracer, ConcurrentReaderSeesOnlyCommittedRecords) {
  EnabledGuard on(true);
  FlyMonDataPlane dp(1);
  control::Controller ctl(dp);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 1024;
  s.rows = 3;
  ASSERT_TRUE(ctl.add_task(s).ok);

  telemetry::PacketTracer tracer(16, 2);
  dp.set_tracer(&tracer);
  TraceConfig cfg;
  cfg.num_flows = 32;
  cfg.num_packets = 4000;
  const auto packets = TraceGenerator::generate(cfg);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (const auto& rec : tracer.records()) {
        // Committed CMS records always carry all three row steps.
        EXPECT_EQ(rec.steps.size(), 3u);
      }
      (void)tracer.size();
      (void)tracer.to_json();
      (void)tracer.packets_seen();
      (void)tracer.records_taken();
    }
  });
  std::thread tuner([&] {
    while (!done.load(std::memory_order_acquire)) {
      tracer.set_sample_every(2);
      (void)tracer.sample_every();
      std::this_thread::yield();
    }
  });
  for (const Packet& p : packets) dp.process(p);
  done.store(true, std::memory_order_release);
  reader.join();
  tuner.join();
  dp.set_tracer(nullptr);

  EXPECT_EQ(tracer.packets_seen(), 4000u);
  EXPECT_EQ(tracer.records_taken(), 2000u);
  EXPECT_EQ(tracer.size(), 16u);
}

// ---- task health ----

TEST(TaskHealth, SaturationAndResizeDelay) {
  EnabledGuard on(true);
  FlyMonDataPlane dp(3);
  control::Controller ctl(dp);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 4096;
  s.rows = 3;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);

  TraceConfig cfg;
  cfg.num_flows = 2000;
  cfg.num_packets = 20'000;
  dp.process_all(TraceGenerator::generate(cfg));

  const control::TaskHealth h = ctl.task_health(r.task_id);
  EXPECT_EQ(h.task_id, r.task_id);
  EXPECT_EQ(h.rows, 3u);
  ASSERT_EQ(h.row_saturation.size(), 3u);
  for (double sat : h.row_saturation) {
    EXPECT_GT(sat, 0.0);
    EXPECT_LE(sat, 1.0);
  }
  EXPECT_DOUBLE_EQ(h.max_saturation,
                   *std::max_element(h.row_saturation.begin(),
                                     h.row_saturation.end()));
  const double delay0 = h.cumulative_delay_ms;
  EXPECT_GT(delay0, 0.0);

  // A resize pays another reconfiguration delay on the same public id.
  ASSERT_TRUE(ctl.resize_task(r.task_id, 8192).ok);
  const control::TaskHealth h2 = ctl.task_health(r.task_id);
  EXPECT_GT(h2.cumulative_delay_ms, delay0);
  EXPECT_EQ(ctl.health().size(), 1u);
}

// ---- epoch hook ----

TEST(EpochRunnerTelemetry, RecordsEpochsAndSaturation) {
  EnabledGuard on(true);
  Registry reg;
  FlyMonDataPlane dp(3);
  dp.bind_telemetry(reg);
  control::Controller ctl(dp);
  ctl.bind_telemetry(reg);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 4096;
  s.rows = 2;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);

  control::EpochRunner runner(dp, 100'000'000);
  runner.bind_telemetry(reg, &ctl);
  TraceConfig cfg;
  cfg.num_packets = 5'000;
  cfg.duration_ns = 400'000'000;
  const auto trace = TraceGenerator::generate(cfg);
  const unsigned epochs = runner.run(trace, [](unsigned, auto) {});
  EXPECT_GE(epochs, 3u);
  EXPECT_EQ(reg.counter("flymon_epochs_total").value(), epochs);
  EXPECT_EQ(reg.histogram("flymon_epoch_packets").snapshot().count, epochs);
  const std::string id = std::to_string(r.task_id);
  EXPECT_GT(reg.gauge("flymon_epoch_task_saturation", {{"task", id}}).value(), 0.0);
}

// ---- golden exporter output of a deployed-task scenario ----

/// Small fully deterministic scenario: 1 group, 64-bucket registers, one
/// 1-row CountMin task, 6 hand-built packets.
std::string golden_scenario(Registry& reg, bool prometheus) {
  FlyMonDataPlane dp(1, CmuGroupConfig{.register_buckets = 64});
  dp.bind_telemetry(reg);
  control::Controller ctl(dp);
  ctl.bind_telemetry(reg);
  TaskSpec s;
  s.name = "hh";
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = 64;
  s.rows = 1;
  const auto r = ctl.add_task(s);
  EXPECT_TRUE(r.ok);
  Packet p;
  p.ft.src_ip = 0x0A000001;
  p.ft.dst_ip = 0x0A000002;
  p.ft.src_port = 1111;
  p.ft.dst_port = 80;
  p.ft.protocol = 6;
  for (unsigned i = 0; i < 4; ++i) dp.process(p);  // one flow, 4 packets
  p.ft.src_ip = 0x0A000003;
  for (unsigned i = 0; i < 2; ++i) dp.process(p);  // second flow, 2 packets
  ctl.collect_telemetry();
  EXPECT_EQ(ctl.query_value(r.task_id, p), 2u);
  return prometheus ? telemetry::to_prometheus(reg) : telemetry::to_json(reg);
}

TEST(TelemetryGolden, PrometheusScenario) {
  EnabledGuard on(true);
  Registry reg;
  const std::string text = golden_scenario(reg, true);
  EXPECT_EQ(text, R"(# TYPE flymon_cmu_prep_aborts_total counter
flymon_cmu_prep_aborts_total{group="0",cmu="0"} 0
flymon_cmu_prep_aborts_total{group="0",cmu="1"} 0
flymon_cmu_prep_aborts_total{group="0",cmu="2"} 0
# TYPE flymon_cmu_register_occupancy gauge
flymon_cmu_register_occupancy{group="0",cmu="0"} 0.03125
flymon_cmu_register_occupancy{group="0",cmu="1"} 0
flymon_cmu_register_occupancy{group="0",cmu="2"} 0
# TYPE flymon_cmu_sampled_out_total counter
flymon_cmu_sampled_out_total{group="0",cmu="0"} 0
flymon_cmu_sampled_out_total{group="0",cmu="1"} 0
flymon_cmu_sampled_out_total{group="0",cmu="2"} 0
# TYPE flymon_cmu_tasks_installed gauge
flymon_cmu_tasks_installed{group="0",cmu="0"} 1
flymon_cmu_tasks_installed{group="0",cmu="1"} 0
flymon_cmu_tasks_installed{group="0",cmu="2"} 0
# TYPE flymon_cmu_updates_total counter
flymon_cmu_updates_total{group="0",cmu="0"} 6
flymon_cmu_updates_total{group="0",cmu="1"} 0
flymon_cmu_updates_total{group="0",cmu="2"} 0
# TYPE flymon_dataplane_groups gauge
flymon_dataplane_groups 1
# TYPE flymon_group_hash_units_configured gauge
flymon_group_hash_units_configured{group="0"} 1
# TYPE flymon_group_packets_total counter
flymon_group_packets_total{group="0"} 6
# TYPE flymon_hash_invocations_total counter
flymon_hash_invocations_total{group="0"} 6
# TYPE flymon_packets_total counter
flymon_packets_total 6
# TYPE flymon_salu_op_total counter
flymon_salu_op_total{group="0",cmu="0",op="Cond-ADD"} 6
# TYPE flymon_task_buckets gauge
flymon_task_buckets{task="1"} 64
# TYPE flymon_task_deploy_delay_ms_total gauge
flymon_task_deploy_delay_ms_total{task="1"} 16
# TYPE flymon_task_deploy_failures_total counter
flymon_task_deploy_failures_total 0
# TYPE flymon_task_deploys_total counter
flymon_task_deploys_total 1
# TYPE flymon_task_max_saturation gauge
flymon_task_max_saturation{task="1"} 0.03125
# TYPE flymon_task_removals_total counter
flymon_task_removals_total 0
# TYPE flymon_task_resizes_total counter
flymon_task_resizes_total 0
# TYPE flymon_task_row_saturation gauge
flymon_task_row_saturation{task="1",row="0"} 0.03125
# TYPE flymon_task_rules gauge
flymon_task_rules{task="1"} 5
# TYPE flymon_tasks_active gauge
flymon_tasks_active 1
)");
}

TEST(TelemetryGolden, JsonScenario) {
  EnabledGuard on(true);
  Registry reg;
  const std::string text = golden_scenario(reg, false);
  EXPECT_EQ(text, R"({"metrics":[{"name":"flymon_cmu_prep_aborts_total","kind":"counter","labels":{"group":"0","cmu":"0"},"value":0},{"name":"flymon_cmu_prep_aborts_total","kind":"counter","labels":{"group":"0","cmu":"1"},"value":0},{"name":"flymon_cmu_prep_aborts_total","kind":"counter","labels":{"group":"0","cmu":"2"},"value":0},{"name":"flymon_cmu_register_occupancy","kind":"gauge","labels":{"group":"0","cmu":"0"},"value":0.03125},{"name":"flymon_cmu_register_occupancy","kind":"gauge","labels":{"group":"0","cmu":"1"},"value":0},{"name":"flymon_cmu_register_occupancy","kind":"gauge","labels":{"group":"0","cmu":"2"},"value":0},{"name":"flymon_cmu_sampled_out_total","kind":"counter","labels":{"group":"0","cmu":"0"},"value":0},{"name":"flymon_cmu_sampled_out_total","kind":"counter","labels":{"group":"0","cmu":"1"},"value":0},{"name":"flymon_cmu_sampled_out_total","kind":"counter","labels":{"group":"0","cmu":"2"},"value":0},{"name":"flymon_cmu_tasks_installed","kind":"gauge","labels":{"group":"0","cmu":"0"},"value":1},{"name":"flymon_cmu_tasks_installed","kind":"gauge","labels":{"group":"0","cmu":"1"},"value":0},{"name":"flymon_cmu_tasks_installed","kind":"gauge","labels":{"group":"0","cmu":"2"},"value":0},{"name":"flymon_cmu_updates_total","kind":"counter","labels":{"group":"0","cmu":"0"},"value":6},{"name":"flymon_cmu_updates_total","kind":"counter","labels":{"group":"0","cmu":"1"},"value":0},{"name":"flymon_cmu_updates_total","kind":"counter","labels":{"group":"0","cmu":"2"},"value":0},{"name":"flymon_dataplane_groups","kind":"gauge","labels":{},"value":1},{"name":"flymon_group_hash_units_configured","kind":"gauge","labels":{"group":"0"},"value":1},{"name":"flymon_group_packets_total","kind":"counter","labels":{"group":"0"},"value":6},{"name":"flymon_hash_invocations_total","kind":"counter","labels":{"group":"0"},"value":6},{"name":"flymon_packets_total","kind":"counter","labels":{},"value":6},{"name":"flymon_salu_op_total","kind":"counter","labels":{"group":"0","cmu":"0","op":"Cond-ADD"},"value":6},{"name":"flymon_task_buckets","kind":"gauge","labels":{"task":"1"},"value":64},{"name":"flymon_task_deploy_delay_ms_total","kind":"gauge","labels":{"task":"1"},"value":16},{"name":"flymon_task_deploy_failures_total","kind":"counter","labels":{},"value":0},{"name":"flymon_task_deploys_total","kind":"counter","labels":{},"value":1},{"name":"flymon_task_max_saturation","kind":"gauge","labels":{"task":"1"},"value":0.03125},{"name":"flymon_task_removals_total","kind":"counter","labels":{},"value":0},{"name":"flymon_task_resizes_total","kind":"counter","labels":{},"value":0},{"name":"flymon_task_row_saturation","kind":"gauge","labels":{"task":"1","row":"0"},"value":0.03125},{"name":"flymon_task_rules","kind":"gauge","labels":{"task":"1"},"value":5},{"name":"flymon_tasks_active","kind":"gauge","labels":{},"value":1}]})");
}

// ---- shell commands ----

TEST(ShellTelemetry, CommandsRoundTrip) {
  EnabledGuard on(true);
  FlyMonDataPlane dp(3);
  control::Controller ctl(dp);
  control::Shell shell(ctl);
  EXPECT_EQ(shell.execute("telemetry off"), "telemetry disabled");
  EXPECT_EQ(shell.execute("telemetry on"), "telemetry enabled");
  ASSERT_TRUE(shell.execute("add key=SrcIP attr=Frequency mem=4096 rows=3")
                  .find("error") == std::string::npos);
  TraceConfig cfg;
  cfg.num_flows = 100;
  cfg.num_packets = 1'000;
  dp.process_all(TraceGenerator::generate(cfg));

  const std::string summary = shell.execute("telemetry");
  EXPECT_NE(summary.find("telemetry on"), std::string::npos);
  EXPECT_NE(summary.find("1000 packets processed"), std::string::npos);
  EXPECT_NE(summary.find("CMS"), std::string::npos);

  const std::string prom = shell.execute("telemetry prom");
  EXPECT_NE(prom.find("# TYPE flymon_packets_total counter"), std::string::npos);
  EXPECT_NE(prom.find("flymon_task_max_saturation"), std::string::npos);
  const std::string json = shell.execute("telemetry json");
  EXPECT_NE(json.find("\"flymon_packets_total\""), std::string::npos);

  const std::string stats = shell.execute("stats");
  EXPECT_NE(stats.find("packets processed: 1000"), std::string::npos);
  EXPECT_NE(stats.find("telemetry: on"), std::string::npos);

  EXPECT_EQ(shell.execute("telemetry reset"), "telemetry metrics zeroed");
  EXPECT_EQ(shell.execute("telemetry bogus"),
            "error: usage: telemetry [on|off|reset|json|prom [path]]");
}

TEST(ShellTrace, CommandsRoundTrip) {
  EnabledGuard on(true);
  FlyMonDataPlane dp(3);
  control::Controller ctl(dp);
  control::Shell shell(ctl);
  ASSERT_TRUE(shell.execute("add key=5Tuple attr=Frequency mem=4096 rows=2")
                  .find("error") == std::string::npos);
  EXPECT_EQ(shell.execute("trace"), "tracing off");
  EXPECT_NE(shell.execute("trace on 4").find("1 in 4"), std::string::npos);
  TraceConfig cfg;
  cfg.num_flows = 10;
  cfg.num_packets = 100;
  dp.process_all(TraceGenerator::generate(cfg));
  const std::string status = shell.execute("trace status");
  EXPECT_NE(status.find("tracing on: 1-in-4"), std::string::npos);
  EXPECT_NE(status.find("100 packets seen"), std::string::npos);
  EXPECT_EQ(shell.execute("trace off"), "tracing off");
  const std::string dump = shell.execute("trace dump");
  EXPECT_NE(dump.find("\"steps\""), std::string::npos);
  EXPECT_EQ(shell.execute("trace bogus"),
            "error: usage: trace [on [1-in-N]|off|dump [path]|status|spans ...]");
}

}  // namespace
}  // namespace flymon
