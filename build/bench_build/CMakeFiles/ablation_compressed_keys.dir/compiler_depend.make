# Empty compiler generated dependencies file for ablation_compressed_keys.
# This may be replaced when dependencies are built.
