# Empty dependencies file for ddos_hunt.
# This may be replaced when dependencies are built.
