// Ablation (paper §3.2): CMUs of one group slice overlapping sub-parts of
// a single compressed key instead of computing d independent hashes.  The
// paper claims this SketchLib-style strategy has negligible accuracy
// impact; we compare FlyMon-CMS (sliced) against an ideal software CMS
// (independent 64-bit hashes) at identical geometry.
#include "bench/bench_util.hpp"
#include "sketch/count_min.hpp"

using namespace flymon;

int main() {
  bench::header("Ablation: key slices",
                "Sliced compressed key (FlyMon) vs independent hashes (ideal CMS)");

  TraceConfig cfg;
  cfg.num_flows = 20'000;
  cfg.num_packets = 600'000;
  const auto trace = TraceGenerator::generate(cfg);
  const FreqMap truth = ExactStats::frequency(trace, FlowKeySpec::five_tuple());

  std::printf("%12s %16s %18s %10s\n", "buckets/row", "FlyMon (sliced)",
              "CMS (independent)", "ratio");
  for (std::uint32_t buckets : {2048u, 4096u, 8192u, 16384u, 32768u}) {
    TaskSpec spec;
    spec.key = FlowKeySpec::five_tuple();
    spec.attribute = AttributeKind::kFrequency;
    spec.memory_buckets = buckets;
    spec.rows = 3;
    auto inst = bench::deploy_flymon(spec);
    inst.dp->process_all(trace);
    const double are_sliced =
        analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
          return inst.ctl->query_value(inst.task_id, packet_from_candidate_key(k.bytes));
        });

    sketch::CountMin cms(3, buckets);
    for (const Packet& p : trace) {
      const FlowKeyValue k = extract_flow_key(p, FlowKeySpec::five_tuple());
      cms.update({k.bytes.data(), k.bytes.size()});
    }
    const double are_ind = analysis::frequency_are(truth, [&](const FlowKeyValue& k) {
      return cms.query({k.bytes.data(), k.bytes.size()});
    });

    std::printf("%12u %16.4f %18.4f %10.2f\n", buckets, are_sliced, are_ind,
                are_ind > 0 ? are_sliced / are_ind : 0.0);
  }
  std::printf("\n(paper: the sub-slice strategy has negligible impact on accuracy)\n");
  return 0;
}
