// Tests for the multi-core sharded execution engine:
//   - golden equivalence: a 4-worker parallel run over a mergeable mix must
//     leave byte-identical registers, identical telemetry counts and
//     identical query results vs the sequential compiled path;
//   - compile-time mergeability: plans with register-derived chain outputs
//     or capped Cond-ADDs are flagged and the pool falls back sequentially
//     (still exact, recorded in the stats);
//   - merge-on-demand: controller readouts and telemetry collection fold
//     outstanding shard deltas without an explicit merge call;
//   - epoch integration: EpochRunner sees post-merge registers at readout;
//   - reconfigure-while-processing churn (the interesting assertions fire
//     under TSan: publish fencing vs in-flight parallel batches).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "control/controller.hpp"
#include "control/epoch.hpp"
#include "exec/exec_plan.hpp"
#include "exec/worker_pool.hpp"
#include "packet/trace_gen.hpp"
#include "telemetry/telemetry.hpp"

namespace flymon {
namespace {

struct EnabledGuard {
  explicit EnabledGuard(bool on) : prev_(telemetry::enabled()) {
    telemetry::set_enabled(on);
  }
  ~EnabledGuard() { telemetry::set_enabled(prev_); }
  bool prev_;
};

/// A pipeline + controller bound to a private registry, so counter
/// comparisons between worlds are not polluted by other tests.
struct World {
  telemetry::Registry registry;
  FlyMonDataPlane dp{9};
  control::Controller ctl{dp};

  World() {
    dp.bind_telemetry(registry);
    ctl.bind_telemetry(registry);
  }
};

std::vector<Packet> make_trace(std::size_t flows, std::size_t pkts,
                               std::uint64_t seed = 7) {
  TraceConfig cfg;
  cfg.num_flows = flows;
  cfg.num_packets = pkts;
  cfg.zipf_alpha = 1.05;
  cfg.seed = seed;
  return TraceGenerator::generate(cfg);
}

struct MixIds {
  std::uint32_t cms = 0;
  std::uint32_t bloom = 0;
  std::uint32_t beaucoup = 0;
  std::uint32_t maxq = 0;
};

/// The mergeable mix: every exact-merge op kind (Cond-ADD sum via CMS, OR
/// via Bloom and BeauCoup coupons, MAX via queue depth), plus a sampled and
/// a filtered task.  Deliberately no chained/composite algorithms — those
/// are the fallback test's job.
MixIds deploy_mergeable_mix(control::Controller& ctl) {
  MixIds ids;
  {
    TaskSpec s;
    s.name = "cms";
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kFrequency;
    s.memory_buckets = 8192;
    s.rows = 3;
    const auto r = ctl.add_task(s);
    EXPECT_TRUE(r.ok) << "cms: " << r.error;
    ids.cms = r.task_id;
  }
  {
    TaskSpec s;
    s.name = "bloom";
    s.key = FlowKeySpec::src_ip();
    s.attribute = AttributeKind::kExistence;
    s.memory_buckets = 8192;
    s.rows = 2;
    const auto r = ctl.add_task(s);
    EXPECT_TRUE(r.ok) << "bloom: " << r.error;
    ids.bloom = r.task_id;
  }
  {
    TaskSpec s;
    s.name = "beaucoup";
    s.key = FlowKeySpec::dst_ip();
    s.attribute = AttributeKind::kDistinct;
    s.param = ParamSpec::compressed(FlowKeySpec::src_ip());
    s.algorithm = Algorithm::kBeauCoup;
    s.report_threshold = 100;
    s.memory_buckets = 8192;
    s.rows = 2;
    const auto r = ctl.add_task(s);
    EXPECT_TRUE(r.ok) << "beaucoup: " << r.error;
    ids.beaucoup = r.task_id;
  }
  {
    TaskSpec s;
    s.name = "maxq";
    s.key = FlowKeySpec::ip_pair();
    s.attribute = AttributeKind::kMax;
    s.param = ParamSpec::metadata(MetaField::kQueueLen);
    s.memory_buckets = 4096;
    s.rows = 2;
    const auto r = ctl.add_task(s);
    EXPECT_TRUE(r.ok) << "maxq: " << r.error;
    ids.maxq = r.task_id;
  }
  {
    TaskSpec s;
    s.name = "sampled";
    s.key = FlowKeySpec::src_ip();
    s.attribute = AttributeKind::kFrequency;
    s.memory_buckets = 4096;
    s.rows = 1;
    s.sample_probability = 0.5;
    const auto r = ctl.add_task(s);
    EXPECT_TRUE(r.ok) << "sampled: " << r.error;
  }
  {
    TaskSpec s;
    s.name = "filtered";
    s.filter = TaskFilter::src(0x0A000000, 8);
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kFrequency;
    s.memory_buckets = 4096;
    s.rows = 1;
    const auto r = ctl.add_task(s);
    EXPECT_TRUE(r.ok) << "filtered: " << r.error;
  }
  return ids;
}

void expect_identical_registers(const FlyMonDataPlane& a,
                                const FlyMonDataPlane& b, const char* what) {
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (unsigned g = 0; g < a.num_groups(); ++g) {
    ASSERT_EQ(a.group(g).num_cmus(), b.group(g).num_cmus());
    for (unsigned c = 0; c < a.group(g).num_cmus(); ++c) {
      const auto& ra = a.group(g).cmu(c).reg();
      const auto& rb = b.group(g).cmu(c).reg();
      ASSERT_EQ(ra.size(), rb.size());
      EXPECT_EQ(ra.read_range(0, ra.size()), rb.read_range(0, rb.size()))
          << what << ": registers differ at group " << g << " cmu " << c;
    }
  }
}

void expect_identical_counters(World& a, World& b, const char* what) {
  const auto eq = [&](const std::string& name,
                      const telemetry::Labels& labels) {
    EXPECT_EQ(a.registry.counter(name, labels).value(),
              b.registry.counter(name, labels).value())
        << what << ": counter " << name << " differs";
  };
  eq("flymon_packets_total", {});
  for (unsigned g = 0; g < a.dp.num_groups(); ++g) {
    const telemetry::Labels gl = {{"group", std::to_string(g)}};
    eq("flymon_group_packets_total", gl);
    eq("flymon_hash_invocations_total", gl);
    for (unsigned c = 0; c < a.dp.group(g).num_cmus(); ++c) {
      const telemetry::Labels cl = {{"group", std::to_string(g)},
                                    {"cmu", std::to_string(c)}};
      eq("flymon_cmu_updates_total", cl);
      eq("flymon_cmu_sampled_out_total", cl);
      eq("flymon_cmu_prep_aborts_total", cl);
      for (const dataplane::StatefulOp op :
           {dataplane::StatefulOp::kNop, dataplane::StatefulOp::kCondAdd,
            dataplane::StatefulOp::kMax, dataplane::StatefulOp::kAndOr,
            dataplane::StatefulOp::kXor}) {
        eq("flymon_salu_op_total",
           {{"group", std::to_string(g)},
            {"cmu", std::to_string(c)},
            {"op", dataplane::to_string(op)}});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Golden equivalence: 4 workers vs the sequential compiled path.
// ---------------------------------------------------------------------------

TEST(ShardedGolden, FourWorkersMatchSequentialByteForByte) {
  EnabledGuard on(true);
  const std::vector<Packet> trace = make_trace(2000, 40'000);

  World ws, wp;
  const MixIds seq_ids = deploy_mergeable_mix(ws.ctl);
  const MixIds par_ids = deploy_mergeable_mix(wp.ctl);

  ASSERT_NE(ws.dp.current_plan(), nullptr);
  ASSERT_TRUE(ws.dp.current_plan()->shard_mergeable())
      << "mergeable mix unexpectedly blocked: "
      << ws.dp.current_plan()->merge_blockers().front();
  ASSERT_FALSE(ws.dp.current_plan()->merge_regions().empty());

  const std::uint64_t seq_gen = ws.dp.process_batch(trace);
  EXPECT_GT(seq_gen, 0u);

  wp.dp.enable_parallel(4);
  EXPECT_EQ(wp.dp.parallel_workers(), 4u);
  const std::uint64_t par_gen = wp.dp.process_batch_parallel(trace);
  EXPECT_EQ(par_gen, wp.dp.plan_generation());
  wp.dp.merge_shards();

  const exec::ParallelStats stats = wp.dp.parallel_stats();
  EXPECT_EQ(stats.parallel_batches, 1u);
  EXPECT_EQ(stats.fallback_batches, 0u);
  EXPECT_GE(stats.chunks,
            trace.size() / wp.dp.batch_options().chunk_size);
  EXPECT_GE(stats.merges, 1u);

  EXPECT_EQ(ws.dp.packets_processed(), trace.size());
  EXPECT_EQ(wp.dp.packets_processed(), trace.size());
  expect_identical_registers(ws.dp, wp.dp, "sequential vs 4-worker");
  expect_identical_counters(ws, wp, "sequential vs 4-worker");

  // Query results are identical too (registers are, so this is a sanity
  // check that the readout paths behave with a pool attached).
  for (std::size_t i = 0; i < trace.size(); i += 977) {
    const Packet& probe = trace[i];
    EXPECT_EQ(ws.ctl.query_value(seq_ids.cms, probe),
              wp.ctl.query_value(par_ids.cms, probe));
    EXPECT_EQ(ws.ctl.query_existence(seq_ids.bloom, probe),
              wp.ctl.query_existence(par_ids.bloom, probe));
    EXPECT_EQ(ws.ctl.query_value(seq_ids.maxq, probe),
              wp.ctl.query_value(par_ids.maxq, probe));
    EXPECT_DOUBLE_EQ(ws.ctl.estimate_distinct(seq_ids.beaucoup, probe),
                     wp.ctl.estimate_distinct(par_ids.beaucoup, probe));
  }

  // Repeated merges are idempotent: no shard is dirty, registers hold.
  wp.dp.merge_shards();
  expect_identical_registers(ws.dp, wp.dp, "merge idempotence");
}

// The same equivalence across several batches with reconfiguration fences
// in between (resize republishes the plan; the fence merges first).
TEST(ShardedGolden, EquivalenceSurvivesReconfigurationFences) {
  EnabledGuard on(false);
  const std::vector<Packet> trace = make_trace(500, 12'000, 21);

  World ws, wp;
  const MixIds seq_ids = deploy_mergeable_mix(ws.ctl);
  const MixIds par_ids = deploy_mergeable_mix(wp.ctl);
  wp.dp.enable_parallel(3);

  const auto third = trace.size() / 3;
  ws.dp.process_batch(std::span<const Packet>(trace).subspan(0, third));
  wp.dp.process_batch_parallel(
      std::span<const Packet>(trace).subspan(0, third));

  // Fence mid-stream: both worlds resize the same task identically.
  ASSERT_TRUE(ws.ctl.resize_task(seq_ids.maxq, 8192).ok);
  ASSERT_TRUE(wp.ctl.resize_task(par_ids.maxq, 8192).ok);

  ws.dp.process_batch(std::span<const Packet>(trace).subspan(third));
  wp.dp.process_batch_parallel(
      std::span<const Packet>(trace).subspan(third));
  wp.dp.merge_shards();

  expect_identical_registers(ws.dp, wp.dp, "across reconfiguration fence");
}

// ---------------------------------------------------------------------------
// Mergeability analysis + sequential fallback.
// ---------------------------------------------------------------------------

TEST(ShardedFallback, ChainedPlansAreFlaggedAndFallBackSequentially) {
  EnabledGuard on(false);
  World ws, wp;
  const auto deploy_chained = [](control::Controller& ctl) {
    TaskSpec s;
    s.name = "maxgap";
    s.key = FlowKeySpec::five_tuple();
    s.attribute = AttributeKind::kMax;
    s.algorithm = Algorithm::kMaxInterarrival;
    s.memory_buckets = 16384;
    s.rows = 1;
    const auto r = ctl.add_task(s);
    ASSERT_TRUE(r.ok) << r.error;
  };
  ASSERT_NO_FATAL_FAILURE(deploy_chained(ws.ctl));
  ASSERT_NO_FATAL_FAILURE(deploy_chained(wp.ctl));

  const auto plan = wp.dp.current_plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_FALSE(plan->shard_mergeable());
  ASSERT_FALSE(plan->merge_blockers().empty());
  EXPECT_NE(plan->merge_blockers().front().find("chain"), std::string::npos)
      << plan->merge_blockers().front();

  const std::vector<Packet> trace = make_trace(200, 5000, 13);
  ws.dp.process_batch(trace);
  wp.dp.enable_parallel(4);
  wp.dp.process_batch_parallel(trace);
  wp.dp.merge_shards();

  const exec::ParallelStats stats = wp.dp.parallel_stats();
  EXPECT_EQ(stats.parallel_batches, 0u);
  EXPECT_EQ(stats.fallback_batches, 1u);
  expect_identical_registers(ws.dp, wp.dp, "unmergeable fallback");
}

TEST(ShardedFallback, TracerAttachedFallsBackSequentially) {
  EnabledGuard on(true);
  World w;
  deploy_mergeable_mix(w.ctl);
  w.dp.enable_parallel(2);

  telemetry::PacketTracer tracer(64, 16);
  w.dp.set_tracer(&tracer);
  const std::vector<Packet> trace = make_trace(50, 400, 3);
  w.dp.process_batch_parallel(trace);
  w.dp.set_tracer(nullptr);

  EXPECT_GT(tracer.records_taken(), 0u);
  const exec::ParallelStats stats = w.dp.parallel_stats();
  EXPECT_EQ(stats.parallel_batches, 0u);
  EXPECT_EQ(stats.fallback_batches, 1u);
}

// ---------------------------------------------------------------------------
// Merge-on-demand: query and telemetry paths fold shards implicitly.
// ---------------------------------------------------------------------------

TEST(ShardedMerge, ControllerQueriesMergeOnDemand) {
  EnabledGuard on(false);
  const std::vector<Packet> trace = make_trace(300, 6000, 5);

  World ws, wp;
  const MixIds seq_ids = deploy_mergeable_mix(ws.ctl);
  const MixIds par_ids = deploy_mergeable_mix(wp.ctl);

  ws.dp.process_batch(trace);
  wp.dp.enable_parallel(4);
  wp.dp.process_batch_parallel(trace);

  // No explicit merge_shards(): the readout path must fold the shards.
  for (std::size_t i = 0; i < trace.size(); i += 499) {
    EXPECT_EQ(ws.ctl.query_value(seq_ids.cms, trace[i]),
              wp.ctl.query_value(par_ids.cms, trace[i]))
        << "query path did not merge outstanding shard deltas";
  }
  expect_identical_registers(ws.dp, wp.dp, "merge-on-query");
}

TEST(ShardedMerge, TelemetryCollectionMergesCounters) {
  EnabledGuard on(true);
  const std::vector<Packet> trace = make_trace(100, 2000, 17);

  World w;
  deploy_mergeable_mix(w.ctl);
  w.dp.enable_parallel(2);
  w.dp.process_batch_parallel(trace);

  // Pipeline total is maintained by the pool; per-group counters travel
  // through the shard blocks and appear only after a merge point.
  EXPECT_EQ(w.registry.counter("flymon_packets_total").value(), trace.size());
  collect_dataplane_telemetry(w.dp, w.registry);  // non-const overload merges
  EXPECT_EQ(w.registry
                .counter("flymon_group_packets_total", {{"group", "0"}})
                .value(),
            trace.size());
}

TEST(ShardedMerge, ClearRegistersDiscardsShardDeltas) {
  EnabledGuard on(false);
  const std::vector<Packet> trace = make_trace(100, 2000, 19);

  World w;
  const MixIds ids = deploy_mergeable_mix(w.ctl);
  w.dp.enable_parallel(3);
  w.dp.process_batch_parallel(trace);
  w.dp.clear_registers();  // epoch boundary: shard deltas die with the epoch

  // A later merge point must not resurrect pre-clear state.
  EXPECT_EQ(w.ctl.query_value(ids.cms, trace.front()), 0u);
  for (unsigned g = 0; g < w.dp.num_groups(); ++g) {
    for (unsigned c = 0; c < w.dp.group(g).num_cmus(); ++c) {
      const auto& reg = w.dp.group(g).cmu(c).reg();
      for (const std::uint32_t v : reg.read_range(0, reg.size())) {
        ASSERT_EQ(v, 0u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Epoch integration: parallel epochs produce sequential readouts.
// ---------------------------------------------------------------------------

TEST(ShardedEpoch, EpochRunnerReadoutsMatchSequential) {
  EnabledGuard on(false);
  const std::vector<Packet> trace = make_trace(400, 10'000, 29);

  World ws, wp;
  const MixIds seq_ids = deploy_mergeable_mix(ws.ctl);
  const MixIds par_ids = deploy_mergeable_mix(wp.ctl);
  wp.dp.enable_parallel(4);

  const std::uint64_t span_ns =
      trace.back().ts_ns - trace.front().ts_ns + 1;
  const std::uint64_t window = span_ns / 4 + 1;

  std::vector<std::uint64_t> seq_values, par_values;
  control::EpochRunner seq_runner(ws.dp, window);
  seq_runner.run(trace, [&](unsigned, std::span<const Packet> pkts) {
    for (const Packet& p : pkts) {
      seq_values.push_back(ws.ctl.query_value(seq_ids.cms, p));
    }
  });
  control::EpochRunner par_runner(wp.dp, window);
  par_runner.run(trace, [&](unsigned, std::span<const Packet> pkts) {
    for (const Packet& p : pkts) {
      par_values.push_back(wp.ctl.query_value(par_ids.cms, p));
    }
  });

  EXPECT_EQ(seq_values, par_values);
}

// ---------------------------------------------------------------------------
// Pool lifecycle.
// ---------------------------------------------------------------------------

TEST(ShardedLifecycle, DisableParallelMergesOutstandingDeltas) {
  EnabledGuard on(false);
  const std::vector<Packet> trace = make_trace(200, 4000, 31);

  World ws, wp;
  const MixIds seq_ids = deploy_mergeable_mix(ws.ctl);
  const MixIds par_ids = deploy_mergeable_mix(wp.ctl);

  ws.dp.process_batch(trace);
  wp.dp.enable_parallel(4);
  wp.dp.process_batch_parallel(trace);
  wp.dp.disable_parallel();
  EXPECT_EQ(wp.dp.parallel_workers(), 0u);

  expect_identical_registers(ws.dp, wp.dp, "disable merges");
  EXPECT_EQ(ws.ctl.query_value(seq_ids.cms, trace.front()),
            wp.ctl.query_value(par_ids.cms, trace.front()));

  // With no pool, the parallel entry point degrades to process_batch.
  EXPECT_GT(wp.dp.process_batch_parallel(trace), 0u);
  EXPECT_EQ(wp.dp.packets_processed(), 2 * trace.size());
}

TEST(ShardedLifecycle, SingleWorkerPoolSpawnsNoThreadsAndStaysExact) {
  EnabledGuard on(false);
  const std::vector<Packet> trace = make_trace(200, 4000, 37);

  World ws, wp;
  deploy_mergeable_mix(ws.ctl);
  deploy_mergeable_mix(wp.ctl);

  ws.dp.process_batch(trace);
  wp.dp.enable_parallel(1);
  EXPECT_EQ(wp.dp.parallel_workers(), 1u);
  wp.dp.process_batch_parallel(trace);
  wp.dp.merge_shards();
  expect_identical_registers(ws.dp, wp.dp, "single-worker pool");
}

// ---------------------------------------------------------------------------
// CI smoke (also wired into the TSan workflow leg): 2-thread equivalence,
// sized to finish quickly under sanitizers.
// ---------------------------------------------------------------------------

TEST(ShardedSmoke, TwoThreadEquivalence) {
  EnabledGuard on(false);
  const std::vector<Packet> trace = make_trace(300, 8000, 41);

  World ws, wp;
  deploy_mergeable_mix(ws.ctl);
  deploy_mergeable_mix(wp.ctl);

  ws.dp.process_batch(trace);
  wp.dp.enable_parallel(2);
  wp.dp.process_batch_parallel(trace);
  wp.dp.merge_shards();

  const exec::ParallelStats stats = wp.dp.parallel_stats();
  EXPECT_EQ(stats.fallback_batches, 0u);
  EXPECT_EQ(stats.parallel_batches, 1u);
  expect_identical_registers(ws.dp, wp.dp, "2-thread smoke");
}

// ---------------------------------------------------------------------------
// Churn: reconfigure while parallel batches are in flight.  The publish
// fence serialises against submissions, so every batch executes one
// coherent plan and every shard delta merges under the plan it was
// produced with.  TSan is the referee.
// ---------------------------------------------------------------------------

TEST(ShardedChurn, ReconfigureWhileProcessingIsRaceFree) {
  EnabledGuard on(false);
  World w;
  deploy_mergeable_mix(w.ctl);
  w.dp.enable_parallel(3);
  const std::vector<Packet> trace = make_trace(256, 2048, 9);

  std::atomic<bool> stop{false};
  std::uint64_t batches = 0;
  bool generations_ok = true;
  std::thread proc([&] {
    std::uint64_t last_gen = 0;
    while (true) {
      const std::uint64_t gen = w.dp.process_batch_parallel(trace);
      if (gen < last_gen) {
        generations_ok = false;
        break;
      }
      last_gen = gen;
      ++batches;
      if (stop.load(std::memory_order_acquire) && batches >= 8) break;
    }
  });

  constexpr int kChurn = 20;
  for (int i = 0; i < kChurn; ++i) {
    TaskSpec s;
    s.name = "churn";
    s.key = FlowKeySpec::src_ip();
    s.attribute = AttributeKind::kFrequency;
    s.memory_buckets = 2048;
    s.rows = 1;
    const auto r = w.ctl.add_task(s);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(w.ctl.remove_task(r.task_id));
  }
  stop.store(true, std::memory_order_release);
  proc.join();
  w.dp.merge_shards();

  EXPECT_TRUE(generations_ok)
      << "parallel path observed a decreasing plan generation";
  EXPECT_GE(batches, 8u);
  EXPECT_EQ(w.dp.packets_processed(), batches * trace.size());
}

}  // namespace
}  // namespace flymon
