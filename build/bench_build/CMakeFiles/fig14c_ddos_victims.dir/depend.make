# Empty dependencies file for fig14c_ddos_victims.
# This may be replaced when dependencies are built.
