// Paper Figure 14f: maximum packet inter-arrival time ARE vs memory for
// the composite 3-CMU task (Bloom filter + last-timestamp + interval),
// at d=2 and d=3 instances.
#include "bench/bench_util.hpp"

using namespace flymon;

namespace {

double interarrival_are(unsigned d, std::size_t mem_bytes,
                        const std::vector<Packet>& trace, const FreqMap& truth) {
  TaskSpec spec;
  spec.key = FlowKeySpec::five_tuple();
  spec.attribute = AttributeKind::kMax;
  spec.algorithm = Algorithm::kMaxInterarrival;
  spec.rows = d;
  // Each instance uses 3 CMUs (gate, timestamp, interval).
  spec.memory_buckets = static_cast<std::uint32_t>(
      std::max<std::size_t>(64, mem_bytes / (4ull * 3 * d)));
  auto inst = bench::deploy_flymon(spec);
  if (!inst.ok) return -1;
  inst.dp->process_all(trace);

  std::vector<std::pair<double, double>> pairs;
  for (const auto& [k, gap] : truth) {
    if (gap == 0) continue;
    const Packet probe = packet_from_candidate_key(k.bytes);
    const std::uint64_t est =
        inst.ctl->query_max_interarrival_ns(inst.task_id, probe);
    pairs.emplace_back(static_cast<double>(gap), static_cast<double>(est));
  }
  return analysis::average_relative_error(pairs);
}

}  // namespace

int main() {
  bench::header("Figure 14f", "Maximum inter-arrival time: ARE vs memory");

  TraceConfig cfg;
  cfg.num_flows = 20'000;
  cfg.num_packets = 600'000;
  cfg.duration_ns = 2'000'000'000;
  const auto trace = TraceGenerator::generate(cfg);
  const FreqMap truth = ExactStats::max_interarrival(trace, FlowKeySpec::five_tuple());
  std::printf("trace: %zu pkts, %zu flows\n\n", trace.size(), truth.size());

  std::printf("%10s %10s %10s\n", "memory", "d=2", "d=3");
  for (std::size_t mb : {2u, 4u, 6u, 8u, 10u}) {
    const std::size_t bytes = mb * 1024 * 1024;
    std::printf("%10s %10.3f %10.3f\n", bench::fmt_mem(bytes).c_str(),
                interarrival_are(2, bytes, trace, truth),
                interarrival_are(3, bytes, trace, truth));
  }
  std::printf("\n(paper: ARE < 4 with 5 MB at d=3, comparable to LightGuardian)\n");
  return 0;
}
