// Flow-key specifications: which (partial) header fields group packets into
// flows, and the byte masks that realise them over the candidate key.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "packet/packet.hpp"

namespace flymon {

/// Per-field prefix lengths (in bits) over the candidate key set.  A field
/// with length 0 does not participate in the key; a field with its full
/// width participates entirely; anything in between is a prefix (e.g.
/// SrcIP/24).  This matches the paper's notion of "any partial key of the
/// candidate key set".
struct FlowKeySpec {
  std::uint8_t src_ip_bits = 0;    ///< 0..32
  std::uint8_t dst_ip_bits = 0;    ///< 0..32
  std::uint8_t src_port_bits = 0;  ///< 0..16
  std::uint8_t dst_port_bits = 0;  ///< 0..16
  std::uint8_t proto_bits = 0;     ///< 0..8
  std::uint8_t ts_bits = 0;        ///< 0..32 (coarse timestamp)

  friend bool operator==(const FlowKeySpec&, const FlowKeySpec&) = default;

  /// Total number of key bits selected.
  unsigned total_bits() const noexcept {
    return src_ip_bits + dst_ip_bits + src_port_bits + dst_port_bits +
           proto_bits + ts_bits;
  }
  bool empty() const noexcept { return total_bits() == 0; }

  /// Byte mask over the candidate-key layout: bit set <=> bit participates.
  CandidateKey mask() const noexcept;

  /// Human-readable name, e.g. "SrcIP/24+DstPort".
  std::string name() const;

  // Common key shapes.
  static FlowKeySpec src_ip(std::uint8_t prefix = 32) { return {prefix, 0, 0, 0, 0, 0}; }
  static FlowKeySpec dst_ip(std::uint8_t prefix = 32) { return {0, prefix, 0, 0, 0, 0}; }
  static FlowKeySpec ip_pair() { return {32, 32, 0, 0, 0, 0}; }
  static FlowKeySpec src_port() { return {0, 0, 16, 0, 0, 0}; }
  static FlowKeySpec dst_port() { return {0, 0, 0, 16, 0, 0}; }
  static FlowKeySpec five_tuple() { return {32, 32, 16, 16, 8, 0}; }
  static FlowKeySpec timestamp(std::uint8_t bits = 32) { return {0, 0, 0, 0, 0, bits}; }
};

/// The masked candidate key of one packet under a FlowKeySpec — the exact
/// (uncompressed) flow identity, used for ground truth and for baseline
/// sketches that hash the full uncompressed key.
struct FlowKeyValue {
  CandidateKey bytes{};

  friend bool operator==(const FlowKeyValue&, const FlowKeyValue&) = default;
};

/// Apply `spec`'s mask to a packet's candidate key.
FlowKeyValue extract_flow_key(const Packet& p, const FlowKeySpec& spec) noexcept;

/// Apply `spec`'s mask to an already-serialised candidate key.
FlowKeyValue mask_candidate_key(const CandidateKey& key, const FlowKeySpec& spec) noexcept;

}  // namespace flymon

template <>
struct std::hash<flymon::FlowKeyValue> {
  std::size_t operator()(const flymon::FlowKeyValue& k) const noexcept;
};
