// TowerSketch (Yang et al., SketchINT 2021): layered counter arrays where
// lower layers hold many small counters (mice) and higher layers hold fewer
// wide counters (elephants).  Query is the minimum over non-saturated
// counters.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/sketch_common.hpp"

namespace flymon::sketch {

class TowerSketch {
 public:
  /// One level per entry of `level_bits` (counter widths, e.g. {8,16,32});
  /// each level receives the same share of `total_bytes`.
  TowerSketch(std::vector<unsigned> level_bits, std::size_t total_bytes);

  void update(KeyBytes key, std::uint32_t inc = 1);
  std::uint32_t query(KeyBytes key) const;

  std::size_t memory_bytes() const noexcept { return memory_bytes_; }
  unsigned levels() const noexcept { return static_cast<unsigned>(level_bits_.size()); }
  void clear();

 private:
  std::vector<unsigned> level_bits_;
  std::vector<std::uint32_t> level_width_;      // counters per level
  std::vector<std::vector<std::uint32_t>> cells_;
  std::size_t memory_bytes_ = 0;
};

}  // namespace flymon::sketch
