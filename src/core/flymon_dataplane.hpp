// The FlyMon data plane: a set of cross-stacked CMU Groups processed in
// pipeline order, sharing one PHV context per packet so CMUs in later
// groups can consume results of earlier ones (SuMax chaining, max
// inter-arrival, Counter Braids carries).
#pragma once

#include <cstdint>
#include <vector>

#include "core/cmu_group.hpp"
#include "telemetry/trace_ring.hpp"

namespace flymon {

class FlyMonDataPlane {
 public:
  explicit FlyMonDataPlane(unsigned num_groups = 9, const CmuGroupConfig& cfg = {});

  unsigned num_groups() const noexcept { return static_cast<unsigned>(groups_.size()); }
  CmuGroup& group(unsigned i) { return groups_.at(i); }
  const CmuGroup& group(unsigned i) const { return groups_.at(i); }

  /// Process one packet through every group in pipeline order.
  void process(const Packet& pkt);

  /// Process a whole trace.
  template <typename Range>
  void process_all(const Range& trace) {
    for (const Packet& p : trace) process(p);
  }

  std::uint64_t packets_processed() const noexcept { return packets_; }

  /// Clear all registers (start of a measurement epoch).
  void clear_registers();

  /// Rebind all instrumentation counters (groups, CMUs, pipeline totals)
  /// into `registry`.  Construction binds to telemetry::Registry::global().
  void bind_telemetry(telemetry::Registry& registry);
  telemetry::Registry& registry() const noexcept { return *registry_; }

  /// Attach / detach a sampled-packet tracer (not owned).  While attached,
  /// 1-in-N packets record their PHV transformations into the ring.
  void set_tracer(telemetry::PacketTracer* tracer) noexcept { tracer_ = tracer; }
  telemetry::PacketTracer* tracer() const noexcept { return tracer_; }

 private:
  std::vector<CmuGroup> groups_;
  std::uint64_t packets_ = 0;
  telemetry::Registry* registry_ = nullptr;
  telemetry::Counter* packets_counter_ = nullptr;
  telemetry::PacketTracer* tracer_ = nullptr;
};

/// Set point-in-time dataplane gauges (per-CMU register occupancy, installed
/// rules, configured hash units) in `registry`.  Cheap enough to call from a
/// shell command; not meant for the packet path.
void collect_dataplane_telemetry(const FlyMonDataPlane& dp,
                                 telemetry::Registry& registry);

}  // namespace flymon
