# Empty dependencies file for test_tasks_table1.
# This may be replaced when dependencies are built.
