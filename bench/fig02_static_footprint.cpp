// Paper Figure 2: resource footprint of four statically-deployed
// single-key sketches (Bloom Filter, CMS, HLL, MRAC) and their coexistence
// ("Sum"), across the critical resource types — and why static deployment
// cannot scale past a handful of keys.
#include "bench/bench_util.hpp"
#include "control/static_deploy.hpp"
#include "dataplane/tofino_model.hpp"

using namespace flymon;
using namespace flymon::control;
using dataplane::Resource;
using dataplane::TofinoModel;

namespace {

struct Totals {
  double hash = 0, salu = 0, sram = 0, tcam = 0, vliw = 0, lt = 0;
};

Totals totals_of(const StaticSketchFootprint& s) {
  constexpr unsigned stages = TofinoModel::kNumStages;
  const double hash_cap = stages * TofinoModel::kHashDistUnitsPerStage;
  const double salu_cap = stages * TofinoModel::kSalusPerStage;
  const double sram_cap = stages * TofinoModel::kSramBlocksPerStage;
  const double tcam_cap = stages * TofinoModel::kTcamBlocksPerStage;
  const double vliw_cap = stages * TofinoModel::kVliwSlotsPerStage;
  const double lt_cap = stages * TofinoModel::kLogicalTablesPerStage;
  Totals t;
  t.hash = s.rows * s.hash_units_per_row / hash_cap;
  t.salu = s.rows / salu_cap;
  t.sram = s.sram_blocks_total / sram_cap;
  t.tcam = s.tcam_blocks_total / tcam_cap;
  t.vliw = s.vliw_slots_total / vliw_cap;
  t.lt = s.logical_tables_total / lt_cap;
  return t;
}

}  // namespace

int main() {
  bench::header("Figure 2",
                "Static single-key sketch footprints (fraction of one pipe)");

  const auto sketches = fig2_sketches();
  std::printf("%-12s %8s %8s %8s %8s %8s %8s\n", "sketch", "Hash", "SALU", "SRAM",
              "TCAM", "VLIW", "LogTbl");
  Totals sum;
  for (const auto& s : sketches) {
    const Totals t = totals_of(s);
    std::printf("%-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                s.name.c_str(), 100 * t.hash, 100 * t.salu, 100 * t.sram,
                100 * t.tcam, 100 * t.vliw, 100 * t.lt);
    sum.hash += t.hash;
    sum.salu += t.salu;
    sum.sram += t.sram;
    sum.tcam += t.tcam;
    sum.vliw += t.vliw;
    sum.lt += t.lt;
  }
  std::printf("%-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "Sum",
              100 * sum.hash, 100 * sum.salu, 100 * sum.sram, 100 * sum.tcam,
              100 * sum.vliw, 100 * sum.lt);

  // The scaling wall: how many statically-deployed single-key sketches fit
  // next to the switch.p4 baseline before some stage resource runs out.
  const unsigned n = max_static_instances(sketches, TofinoModel::kNumStages,
                                          switch_p4_baseline_per_stage(),
                                          switch_p4_baseline_phv_bits());
  std::printf("\nStatic single-key sketch instances that fit beside switch.p4: %u\n", n);
  std::printf("(paper: a Tofino switch cannot support more than ~4 single-key "
              "sketches in a typical scenario)\n");
  return 0;
}
