file(REMOVE_RECURSE
  "CMakeFiles/flymon_packet.dir/exact.cpp.o"
  "CMakeFiles/flymon_packet.dir/exact.cpp.o.d"
  "CMakeFiles/flymon_packet.dir/flowkey.cpp.o"
  "CMakeFiles/flymon_packet.dir/flowkey.cpp.o.d"
  "CMakeFiles/flymon_packet.dir/trace_gen.cpp.o"
  "CMakeFiles/flymon_packet.dir/trace_gen.cpp.o.d"
  "CMakeFiles/flymon_packet.dir/trace_io.cpp.o"
  "CMakeFiles/flymon_packet.dir/trace_io.cpp.o.d"
  "libflymon_packet.a"
  "libflymon_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flymon_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
