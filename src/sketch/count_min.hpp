// Count-Min Sketch (Cormode & Muthukrishnan, 2005).
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/sketch_common.hpp"

namespace flymon::sketch {

class CountMin {
 public:
  /// d rows of w counters each (32-bit).
  CountMin(unsigned d, std::uint32_t w);

  /// Construct from a total memory budget in bytes (w = bytes / (4*d)).
  static CountMin with_memory(unsigned d, std::size_t bytes);

  void update(KeyBytes key, std::uint32_t inc = 1);
  std::uint32_t query(KeyBytes key) const;

  unsigned depth() const noexcept { return d_; }
  std::uint32_t width() const noexcept { return w_; }
  std::size_t memory_bytes() const noexcept { return std::size_t{d_} * w_ * 4; }
  void clear();

 private:
  unsigned d_;
  std::uint32_t w_;
  std::vector<std::uint32_t> cells_;  // row-major d x w
};

}  // namespace flymon::sketch
