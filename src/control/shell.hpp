// An interactive, scriptable control-plane front end (the open-source
// FlyMon artifact ships an interactive control plane; this is its
// equivalent here).  Commands are plain text lines; `execute` returns the
// response, so the shell is equally usable from a terminal or from tests.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/adaptive.hpp"
#include "control/controller.hpp"
#include "telemetry/trace_ring.hpp"

namespace flymon::control {

/// Parse "10.1.2.3" -> host-order IPv4.  Returns nullopt on malformed input.
std::optional<std::uint32_t> parse_ipv4(const std::string& text);

/// Parse a flow-key spec: '+'-joined fields from {SrcIP[/len], DstIP[/len],
/// SrcPort, DstPort, Proto, Ts}, plus the aliases IPPair and 5Tuple.
std::optional<FlowKeySpec> parse_key_spec(const std::string& text);

class Shell {
 public:
  explicit Shell(Controller& ctl) : ctl_(&ctl), adaptive_(ctl) {}

  /// Execute one command line; returns the printable response.
  /// Unknown or malformed commands return an "error: ..." string and
  /// change nothing.
  std::string execute(const std::string& line);

  /// Command summary (the `help` output).
  static std::string help();

 private:
  std::string cmd_add(const std::vector<std::string>& args);
  std::string cmd_remove(const std::vector<std::string>& args);
  std::string cmd_resize(const std::vector<std::string>& args);
  std::string cmd_split(const std::vector<std::string>& args);
  std::string cmd_list() const;
  std::string cmd_stats() const;
  std::string cmd_query(const std::vector<std::string>& args) const;
  std::string cmd_cardinality(const std::vector<std::string>& args) const;
  std::string cmd_entropy(const std::vector<std::string>& args) const;
  std::string cmd_occupancy(const std::vector<std::string>& args);
  std::string cmd_rebalance();
  std::string cmd_telemetry(const std::vector<std::string>& args);
  std::string cmd_trace(const std::vector<std::string>& args);
  std::string cmd_trace_spans(const std::vector<std::string>& args);
  std::string cmd_verify(const std::vector<std::string>& args);
  std::string cmd_plan(const std::vector<std::string>& args);

  Controller* ctl_;
  AdaptiveMemoryManager adaptive_;
  std::unique_ptr<telemetry::PacketTracer> tracer_;
  /// Ops staged by the `plan` command family, applied by `plan commit`.
  std::vector<PlanOp> pending_;
};

}  // namespace flymon::control
