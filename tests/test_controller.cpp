// Control-plane tests: task compilation, placement, resource management,
// lifecycle, and readout plumbing.
#include <gtest/gtest.h>

#include "control/controller.hpp"
#include "packet/trace_gen.hpp"

namespace flymon::control {
namespace {

TaskSpec freq_spec(std::uint32_t buckets = 8192, unsigned rows = 3) {
  TaskSpec s;
  s.key = FlowKeySpec::src_ip();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = buckets;
  s.rows = rows;
  return s;
}

TEST(Controller, DeploysEveryAlgorithm) {
  const Algorithm algos[] = {
      Algorithm::kCms,        Algorithm::kSuMaxSum,       Algorithm::kMrac,
      Algorithm::kTowerSketch, Algorithm::kCounterBraids, Algorithm::kBeauCoup,
      Algorithm::kHyperLogLog, Algorithm::kLinearCounting, Algorithm::kBloomFilter,
      Algorithm::kSuMaxMax,   Algorithm::kMaxInterarrival};
  for (Algorithm a : algos) {
    FlyMonDataPlane dp(9);
    Controller ctl(dp);
    TaskSpec s;
    s.algorithm = a;
    s.memory_buckets = 8192;
    s.rows = 3;
    s.report_threshold = 512;
    switch (a) {
      case Algorithm::kBeauCoup:
        s.key = FlowKeySpec::dst_ip();
        s.attribute = AttributeKind::kDistinct;
        s.param = ParamSpec::compressed(FlowKeySpec::src_ip());
        break;
      case Algorithm::kHyperLogLog:
      case Algorithm::kLinearCounting:
        s.attribute = AttributeKind::kDistinct;
        s.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
        break;
      case Algorithm::kBloomFilter:
        s.key = FlowKeySpec::five_tuple();
        s.attribute = AttributeKind::kExistence;
        s.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
        break;
      case Algorithm::kSuMaxMax:
      case Algorithm::kMaxInterarrival:
        s.key = FlowKeySpec::five_tuple();
        s.attribute = AttributeKind::kMax;
        s.param = ParamSpec::metadata(MetaField::kQueueLen);
        break;
      default:
        s.key = FlowKeySpec::five_tuple();
        s.attribute = AttributeKind::kFrequency;
    }
    const auto r = ctl.add_task(s);
    EXPECT_TRUE(r.ok) << to_string(a) << ": " << r.error;
    EXPECT_GT(r.report.table_rules, 0u) << to_string(a);
    EXPECT_GT(r.report.delay_ms(), 0.0) << to_string(a);
  }
}

TEST(Controller, AutoSelectsAlgorithmPerAttribute) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  TaskSpec s = freq_spec();
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(ctl.task(r.task_id)->algorithm, Algorithm::kCms);

  TaskSpec d;
  d.key = FlowKeySpec::dst_ip();
  d.attribute = AttributeKind::kDistinct;
  d.param = ParamSpec::compressed(FlowKeySpec::src_ip());
  d.filter = TaskFilter::src(0x0B000000, 8);
  d.memory_buckets = 4096;
  const auto r2 = ctl.add_task(d);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(ctl.task(r2.task_id)->algorithm, Algorithm::kBeauCoup);
}

TEST(Controller, RejectsEmptyKey) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  TaskSpec s;
  s.attribute = AttributeKind::kFrequency;  // no key, no key-valued param
  const auto r = ctl.add_task(s);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(Controller, GreedyKeyReuseAvoidsMaskRules) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  TaskSpec a = freq_spec(4096, 1);
  a.filter = TaskFilter::src(0x0A000000, 8);
  const auto r1 = ctl.add_task(a);
  ASSERT_TRUE(r1.ok);
  EXPECT_EQ(r1.report.hash_mask_rules, 1u);

  TaskSpec b = freq_spec(4096, 1);
  b.filter = TaskFilter::src(0x0B000000, 8);  // disjoint filter, same key
  const auto r2 = ctl.add_task(b);
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(r2.report.hash_mask_rules, 0u) << "second task reuses the compressed key";
}

TEST(Controller, ComposesIpPairFromExistingKeys) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  TaskSpec a = freq_spec(4096, 1);
  a.key = FlowKeySpec::src_ip();
  a.filter = TaskFilter::src(0x0A000000, 8);
  ASSERT_TRUE(ctl.add_task(a).ok);

  TaskSpec b = freq_spec(4096, 1);
  b.key = FlowKeySpec::ip_pair();
  b.filter = TaskFilter::src(0x0B000000, 8);
  const auto r = ctl.add_task(b);
  ASSERT_TRUE(r.ok);
  // Only DstIP needs a new mask; SrcIP is reused via XOR.
  EXPECT_EQ(r.report.hash_mask_rules, 1u);
}

TEST(Controller, MemoryExhaustionReported) {
  FlyMonDataPlane dp(1);
  Controller ctl(dp);
  TaskSpec big = freq_spec(65536, 3);  // consumes all three CMUs entirely
  ASSERT_TRUE(ctl.add_task(big).ok);
  TaskSpec more = freq_spec(4096, 1);
  more.filter = TaskFilter::src(0x0C000000, 8);
  const auto r = ctl.add_task(more);
  EXPECT_FALSE(r.ok);
}

TEST(Controller, IntersectingWildcardTasksLandOnDifferentCmus) {
  FlyMonDataPlane dp(1);
  Controller ctl(dp);
  // Two wildcard single-row tasks: same group is fine, same CMU is not.
  const auto r1 = ctl.add_task(freq_spec(4096, 1));
  const auto r2 = ctl.add_task(freq_spec(4096, 1));
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);
  const auto* t1 = ctl.task(r1.task_id);
  const auto* t2 = ctl.task(r2.task_id);
  EXPECT_NE(t1->rows[0].units[0].cmu, t2->rows[0].units[0].cmu);
}

TEST(Controller, RemoveReleasesMemoryAndKeys) {
  FlyMonDataPlane dp(1);
  Controller ctl(dp);
  const std::uint32_t total = dp.group(0).config().register_buckets;
  const auto r = ctl.add_task(freq_spec(total, 3));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(ctl.free_buckets(0, 0), 0u);
  ASSERT_TRUE(ctl.remove_task(r.task_id));
  EXPECT_EQ(ctl.free_buckets(0, 0), total);
  // The compressed key unit was garbage-collected: redeploying needs a mask.
  const auto r2 = ctl.add_task(freq_spec(4096, 1));
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(r2.report.hash_mask_rules, 1u);
}

TEST(Controller, ResizeKeepsMeasuring) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const auto r = ctl.add_task(freq_spec(4096, 3));
  ASSERT_TRUE(r.ok);
  const auto r2 = ctl.resize_task(r.task_id, 16384);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r2.task_id, r.task_id);
  EXPECT_EQ(ctl.task(r2.task_id)->buckets, 16384u);
  EXPECT_EQ(ctl.num_tasks(), 1u);
  EXPECT_FALSE(ctl.resize_task(9999, 1024).ok);
  // Shrinking works too, and the id still sticks.
  const auto r3 = ctl.resize_task(r.task_id, 4096);
  ASSERT_TRUE(r3.ok) << r3.error;
  EXPECT_EQ(r3.task_id, r.task_id);
  EXPECT_EQ(ctl.task(r.task_id)->buckets, 4096u);
}

TEST(Controller, QuantizesMemoryByMode) {
  FlyMonDataPlane dp(9);
  Controller ctl_acc(dp, TranslationStrategy::kTcam, AllocMode::kAccurate);
  const auto r = ctl_acc.add_task(freq_spec(5000, 1));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(ctl_acc.task(r.task_id)->buckets, 8192u);

  FlyMonDataPlane dp2(9);
  Controller ctl_eff(dp2, TranslationStrategy::kTcam, AllocMode::kEfficient);
  const auto r2 = ctl_eff.add_task(freq_spec(5000, 1));
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(ctl_eff.task(r2.task_id)->buckets, 4096u);
}

TEST(Controller, ShiftStrategyUsesFewerTableRules) {
  FlyMonDataPlane dp(9);
  Controller tcam_ctl(dp, TranslationStrategy::kTcam);
  const auto rt = tcam_ctl.add_task(freq_spec(2048, 3));  // 1/32 partition
  ASSERT_TRUE(rt.ok);

  FlyMonDataPlane dp2(9);
  Controller shift_ctl(dp2, TranslationStrategy::kShift);
  const auto rs = shift_ctl.add_task(freq_spec(2048, 3));
  ASSERT_TRUE(rs.ok);
  EXPECT_LT(rs.report.table_rules, rt.report.table_rules);
}

TEST(Controller, ClearTaskStateZeroesPartitions) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const auto r = ctl.add_task(freq_spec(4096, 3));
  ASSERT_TRUE(r.ok);
  TraceConfig cfg;
  cfg.num_flows = 100;
  cfg.num_packets = 1000;
  const auto trace = TraceGenerator::generate(cfg);
  dp.process_all(trace);
  EXPECT_GT(ctl.query_value(r.task_id, trace[0]), 0u);
  ctl.clear_task_state(r.task_id);
  EXPECT_EQ(ctl.query_value(r.task_id, trace[0]), 0u);
}

TEST(Controller, ChainedAlgorithmsSpanDistinctGroups) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.algorithm = Algorithm::kSuMaxSum;
  s.memory_buckets = 8192;
  s.rows = 3;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;
  const auto* t = ctl.task(r.task_id);
  ASSERT_EQ(t->rows.size(), 1u);
  ASSERT_EQ(t->rows[0].units.size(), 3u);
  EXPECT_LT(t->rows[0].units[0].group, t->rows[0].units[1].group);
  EXPECT_LT(t->rows[0].units[1].group, t->rows[0].units[2].group);
}

TEST(Controller, MaxInterarrivalUsesThreeCmusPerRow) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  TaskSpec s;
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kMax;
  s.algorithm = Algorithm::kMaxInterarrival;
  s.memory_buckets = 8192;
  s.rows = 2;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok) << r.error;
  const auto* t = ctl.task(r.task_id);
  EXPECT_EQ(t->rows.size(), 2u);
  for (const auto& row : t->rows) EXPECT_EQ(row.units.size(), 3u);
}

TEST(Controller, QueriesRejectUnknownTask) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  Packet p;
  EXPECT_THROW(ctl.query_value(7, p), std::out_of_range);
  EXPECT_THROW(ctl.estimate_cardinality(7), std::out_of_range);
}

TEST(Controller, TaskIdsEnumerate) {
  FlyMonDataPlane dp(9);
  Controller ctl(dp);
  const auto a = ctl.add_task(freq_spec(4096, 1));
  TaskSpec other = freq_spec(4096, 1);
  other.filter = TaskFilter::src(0x0D000000, 8);
  const auto b = ctl.add_task(other);
  ASSERT_TRUE(a.ok && b.ok);
  const auto ids = ctl.task_ids();
  EXPECT_EQ(ids.size(), 2u);
}

TEST(Controller, NinetySixTasksOnOneGroup) {
  FlyMonDataPlane dp(1);
  Controller ctl(dp);
  const std::uint32_t slice = dp.group(0).config().register_buckets / 32;
  unsigned deployed = 0;
  for (unsigned i = 0; i < 96; ++i) {
    TaskSpec t;
    t.filter = TaskFilter::src(0x0A000000u | (i << 16), 16);
    t.key = FlowKeySpec::five_tuple();
    t.attribute = AttributeKind::kFrequency;
    t.memory_buckets = slice;
    t.rows = 1;
    if (ctl.add_task(t).ok) ++deployed;
  }
  EXPECT_EQ(deployed, 96u);
}

}  // namespace
}  // namespace flymon::control
