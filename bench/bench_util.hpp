// Shared helpers for the experiment-reproduction benches.  Each bench
// binary regenerates one table or figure of the paper and prints the same
// rows/series the paper reports.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "common/bits.hpp"
#include "control/controller.hpp"
#include "packet/trace_gen.hpp"

namespace flymon::bench {

inline void header(const char* experiment, const char* caption) {
  std::printf("================================================================\n");
  std::printf("%s\n%s\n", experiment, caption);
  std::printf("================================================================\n");
}

inline std::string fmt_mem(std::size_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f MB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1f KB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%zu B", bytes);
  }
  return buf;
}

/// Deploy one task on a fresh data plane sized so that `buckets_per_row`
/// fits a register, returning both.  Benches sweep memory by rebuilding.
struct FlyMonInstance {
  std::unique_ptr<FlyMonDataPlane> dp;
  std::unique_ptr<control::Controller> ctl;
  std::uint32_t task_id = 0;
  bool ok = false;
  std::string error;
};

inline FlyMonInstance deploy_flymon(const TaskSpec& spec, unsigned groups = 9) {
  FlyMonInstance inst;
  CmuGroupConfig cfg;
  // Size registers to the sweep point so the granted partition matches the
  // requested memory exactly (the 32-partition floor of a fixed 64K-bucket
  // register would otherwise dominate small-memory sweep points).
  cfg.register_buckets = static_cast<std::uint32_t>(
      pow2_ceil(std::max<std::uint32_t>(32, spec.memory_buckets)));
  inst.dp = std::make_unique<FlyMonDataPlane>(groups, cfg);
  inst.ctl = std::make_unique<control::Controller>(*inst.dp);
  const auto r = inst.ctl->add_task(spec);
  inst.ok = r.ok;
  inst.error = r.error;
  inst.task_id = r.task_id;
  return inst;
}

/// Candidate key list from a ground-truth map (HH-style sweeps query every
/// true flow, the standard evaluation methodology for sketches).
inline std::vector<FlowKeyValue> keys_of(const FreqMap& m) {
  std::vector<FlowKeyValue> out;
  out.reserve(m.size());
  for (const auto& [k, v] : m) out.push_back(k);
  return out;
}

}  // namespace flymon::bench
