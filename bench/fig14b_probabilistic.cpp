// Paper Figure 14b: heavy-hitter F1 under probabilistic execution — the
// same CMU shared by sampling packets with probability p (the workaround
// for tasks with intersecting traffic on one CMU, §3.3/§6).
#include "bench/bench_util.hpp"

using namespace flymon;

namespace {

constexpr std::uint64_t kThreshold = 1024;

double f1_at(double p, std::size_t mem_bytes, const std::vector<Packet>& trace,
             const FreqMap& truth, const std::vector<FlowKeyValue>& hh_true) {
  TaskSpec spec;
  spec.key = FlowKeySpec::five_tuple();
  spec.attribute = AttributeKind::kFrequency;
  spec.rows = 3;
  spec.sample_probability = p;
  spec.memory_buckets =
      static_cast<std::uint32_t>(std::max<std::size_t>(32, mem_bytes / (4 * spec.rows)));
  auto inst = bench::deploy_flymon(spec);
  if (!inst.ok) return -1;
  inst.dp->process_all(trace);
  // Estimates are scaled back by 1/p at readout.
  const auto scaled_threshold =
      static_cast<std::uint64_t>(static_cast<double>(kThreshold) * p);
  const auto reported = inst.ctl->detect_over_threshold(
      inst.task_id, bench::keys_of(truth), std::max<std::uint64_t>(1, scaled_threshold));
  return analysis::score_detection(hh_true, reported).f1();
}

}  // namespace

int main() {
  bench::header("Figure 14b", "Heavy hitters under probabilistic execution");

  TraceConfig cfg;
  cfg.num_flows = 20'000;
  cfg.num_packets = 1'000'000;
  cfg.zipf_alpha = 1.05;
  const auto trace = TraceGenerator::generate(cfg);
  const FreqMap truth = ExactStats::frequency(trace, FlowKeySpec::five_tuple());
  const auto hh_true = ExactStats::over_threshold(truth, kThreshold);

  std::printf("%10s %10s %10s %10s %10s\n", "memory", "p=1.0", "p=0.5", "p=0.25",
              "p=0.125");
  for (std::size_t kb : {40u, 80u, 120u, 160u, 200u}) {
    const std::size_t bytes = kb * 1024;
    std::printf("%10s %10.3f %10.3f %10.3f %10.3f\n", bench::fmt_mem(bytes).c_str(),
                f1_at(1.0, bytes, trace, truth, hh_true),
                f1_at(0.5, bytes, trace, truth, hh_true),
                f1_at(0.25, bytes, trace, truth, hh_true),
                f1_at(0.125, bytes, trace, truth, hh_true));
  }
  std::printf("\n(paper: probabilistic execution has little effect on heavy-hitter "
              "accuracy)\n");
  return 0;
}
