// The troubleshooting scenario from the paper's introduction: a tenant
// reports degraded service; the operator walks through measurement tasks
// *on the fly* — cardinality, DDoS victim detection, heavy hitters —
// without ever reloading the data plane.
#include <cstdio>
#include <vector>

#include "control/controller.hpp"
#include "packet/trace_gen.hpp"

using namespace flymon;

namespace {

void banner(const char* step) { std::printf("\n=== %s ===\n", step); }

std::vector<Packet> make_traffic() {
  TraceConfig cfg;
  cfg.num_flows = 8000;
  cfg.num_packets = 300'000;
  auto trace = TraceGenerator::generate(cfg);
  DdosConfig ddos;
  ddos.num_victims = 5;
  ddos.spreaders_per_victim = 3000;
  TraceGenerator::inject_ddos(trace, ddos, cfg.duration_ns);
  return trace;
}

}  // namespace

int main() {
  FlyMonDataPlane dataplane(9);
  control::Controller controller(dataplane);
  const auto trace = make_traffic();

  // --- Step 1: is the flow count abnormal?  Deploy cardinality. ---
  banner("step 1: flow cardinality (HyperLogLog on one CMU)");
  TaskSpec card;
  card.name = "cardinality";
  card.attribute = AttributeKind::kDistinct;
  card.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  card.algorithm = Algorithm::kHyperLogLog;
  card.memory_buckets = 4096;
  const auto card_h = controller.add_task(card);
  std::printf("deployed in %.2f ms\n", card_h.report.delay_ms());

  dataplane.process_all(trace);
  std::printf("estimated distinct 5-tuples: %.0f (true: %llu)\n",
              controller.estimate_cardinality(card_h.task_id),
              static_cast<unsigned long long>(
                  ExactStats::cardinality(trace, FlowKeySpec::five_tuple())));

  // --- Step 2: cardinality is huge -> suspect DDoS.  Reconfigure. ---
  banner("step 2: swap in DDoS victim detection (FlyMon-BeauCoup)");
  controller.remove_task(card_h.task_id);
  TaskSpec ddos;
  ddos.name = "ddos victims";
  ddos.key = FlowKeySpec::dst_ip();
  ddos.attribute = AttributeKind::kDistinct;
  ddos.param = ParamSpec::compressed(FlowKeySpec::src_ip());
  ddos.algorithm = Algorithm::kBeauCoup;
  ddos.report_threshold = 512;
  ddos.memory_buckets = 16384;
  ddos.rows = 3;
  const auto ddos_h = controller.add_task(ddos);
  std::printf("reconfigured in %.2f ms -- traffic kept flowing\n",
              ddos_h.report.delay_ms());

  dataplane.clear_registers();
  dataplane.process_all(trace);

  const FreqMap spread = ExactStats::distinct(trace, ddos.key, FlowKeySpec::src_ip());
  std::vector<FlowKeyValue> candidates;
  for (const auto& [k, v] : spread) candidates.push_back(k);
  const auto victims = controller.detect_over_threshold(ddos_h.task_id, candidates, 512);
  std::printf("victims reported: %zu\n", victims.size());
  for (const auto& v : victims) {
    const Packet p = packet_from_candidate_key(v.bytes);
    std::printf("  victim %u.%u.%u.%u  (true spreaders: %llu)\n", p.ft.dst_ip >> 24,
                (p.ft.dst_ip >> 16) & 255, (p.ft.dst_ip >> 8) & 255, p.ft.dst_ip & 255,
                static_cast<unsigned long long>(spread.at(v)));
  }

  // --- Step 3: find the elephant flows to reschedule. ---
  banner("step 3: add heavy-hitter detection alongside (same hardware)");
  TaskSpec hh;
  hh.name = "heavy hitters";
  hh.key = FlowKeySpec::five_tuple();
  hh.attribute = AttributeKind::kFrequency;
  hh.memory_buckets = 32768;
  hh.rows = 3;
  const auto hh_h = controller.add_task(hh);
  std::printf("added in %.2f ms; now %zu concurrent tasks\n", hh_h.report.delay_ms(),
              controller.num_tasks());

  dataplane.clear_registers();
  dataplane.process_all(trace);

  const FreqMap sizes = ExactStats::frequency(trace, hh.key);
  std::vector<FlowKeyValue> flows;
  for (const auto& [k, v] : sizes) flows.push_back(k);
  const auto heavy = controller.detect_over_threshold(hh_h.task_id, flows, 2048);
  std::printf("flows over 2048 pkts: %zu (true: %zu)\n", heavy.size(),
              ExactStats::over_threshold(sizes, 2048).size());
  return 0;
}
