# Empty dependencies file for test_cmu.
# This may be replaced when dependencies are built.
