#include "control/rules.hpp"

#include <set>
#include <sstream>

#include "common/bits.hpp"
#include "dataplane/tcam.hpp"

namespace flymon::control {
namespace {

std::string ip_to_string(std::uint32_t ip) {
  std::ostringstream out;
  out << (ip >> 24) << '.' << ((ip >> 16) & 255) << '.' << ((ip >> 8) & 255) << '.'
      << (ip & 255);
  return out.str();
}

std::string filter_to_string(const TaskFilter& f) {
  if (f.is_wildcard()) return "*";
  std::ostringstream out;
  if (f.src_len != 0) out << "src " << ip_to_string(f.src_ip) << '/' << int(f.src_len);
  if (f.dst_len != 0) {
    if (f.src_len != 0) out << ", ";
    out << "dst " << ip_to_string(f.dst_ip) << '/' << int(f.dst_len);
  }
  return out.str();
}

std::string selector_to_string(const CompressedKeySelector& sel) {
  std::ostringstream out;
  out << "H" << int(sel.unit_a);
  if (sel.unit_b >= 0) out << "^H" << int(sel.unit_b);
  return out.str();
}

std::string param_to_string(const ParamSelect& p) {
  std::ostringstream out;
  switch (p.source) {
    case ParamSelect::Source::kConst:
      out << "const(0x" << std::hex << p.const_value << ")";
      break;
    case ParamSelect::Source::kMeta:
      out << "meta(" << static_cast<int>(p.meta) << ")";
      break;
    case ParamSelect::Source::kCompressedKey:
      out << selector_to_string(p.key_sel) << "[" << int(p.slice.offset) << "+"
          << int(p.slice.width) << "]";
      break;
    case ParamSelect::Source::kChain:
      out << "chain(" << p.const_value << ")";
      break;
  }
  return out.str();
}

std::string unit_prefix(const UnitPlacement& up) {
  return "g" + std::to_string(up.group) + ".cmu" + std::to_string(up.cmu);
}

}  // namespace

std::vector<RuntimeRule> render_rules(const Controller& ctl, std::uint32_t id) {
  const DeployedTask* t = ctl.task(id);
  if (t == nullptr) throw std::out_of_range("render_rules: unknown task");
  const FlyMonDataPlane& dp = ctl.dataplane();

  std::vector<RuntimeRule> rules;
  std::set<std::pair<unsigned, unsigned>> masked_units;

  for (const RowPlacement& row : t->rows) {
    for (const UnitPlacement& up : row.units) {
      const Cmu& cmu = dp.group(up.group).cmu(up.cmu);
      const CmuTaskEntry* e = cmu.find(up.phys_id);
      if (e == nullptr) continue;
      const std::string at = unit_prefix(up);

      // Hash-mask rules this entry depends on (one per compression unit).
      auto need_unit = [&](std::int8_t u) {
        if (u < 0) return;
        const auto key = std::make_pair(up.group, static_cast<unsigned>(u));
        if (!masked_units.insert(key).second) return;
        const auto& spec = dp.group(up.group).compression().spec_of(key.second);
        if (!spec) return;
        rules.push_back(RuntimeRule{
            RuntimeRule::Kind::kHashMask,
            "g" + std::to_string(up.group) + ".compression.u" + std::to_string(u),
            "-", "set_dyn_hash_mask(" + spec->name() + ")"});
      };
      need_unit(e->key_sel.unit_a);
      need_unit(e->key_sel.unit_b);
      if (e->p1.source == ParamSelect::Source::kCompressedKey) {
        need_unit(e->p1.key_sel.unit_a);
        need_unit(e->p1.key_sel.unit_b);
      }

      // Initialization: filter -> key/param selection.
      rules.push_back(RuntimeRule{
          RuntimeRule::Kind::kTableEntry, at + ".init", filter_to_string(e->filter),
          "set_key(" + selector_to_string(e->key_sel) + "[" +
              std::to_string(e->key_slice.offset) + "+" +
              std::to_string(e->key_slice.width) + "]); set_params(" +
              param_to_string(e->p1) + ", " + param_to_string(e->p2) + ")"});

      // Preparation: address translation, rendered through the actual
      // TCAM range expansion (paper Fig 9).
      const std::uint32_t total = cmu.reg().size();
      if (ctl.strategy() == TranslationStrategy::kTcam &&
          e->partition.size < total) {
        const std::uint32_t blocks = total / e->partition.size;
        const std::uint32_t home = e->partition.base / e->partition.size;
        for (std::uint32_t b = 0; b < blocks; ++b) {
          if (b == home) continue;  // already in place: default entry
          const std::uint64_t lo = std::uint64_t{b} * e->partition.size;
          const std::uint64_t hi = lo + e->partition.size - 1;
          const auto patterns =
              dataplane::range_to_ternary(lo, hi, log2_floor(total));
          for (const auto& p : patterns) {
            std::ostringstream match;
            match << "addr&0x" << std::hex << p.mask << "==0x" << p.value;
            const std::int64_t offset =
                static_cast<std::int64_t>(e->partition.base) -
                static_cast<std::int64_t>(lo);
            rules.push_back(RuntimeRule{RuntimeRule::Kind::kTableEntry,
                                        at + ".prep.addr", match.str(),
                                        (offset >= 0 ? "ADD(" : "SUB(") +
                                            std::to_string(std::abs(offset)) + ")"});
          }
        }
        rules.push_back(RuntimeRule{RuntimeRule::Kind::kTableEntry, at + ".prep.addr",
                                    "default", "NoAction"});
      } else if (e->partition.size < total || e->partition.base != 0) {
        rules.push_back(
            RuntimeRule{RuntimeRule::Kind::kTableEntry, at + ".prep.addr",
                        filter_to_string(e->filter),
                        ">>(" + std::to_string(log2_floor(total / e->partition.size)) +
                            "); base(" + std::to_string(e->partition.base) + ")"});
      }

      // Preparation: coupon windows (BeauCoup).
      if (e->prep == PrepFn::kCouponOneHot) {
        for (unsigned c = 0; c < e->coupon.num_coupons; ++c) {
          std::ostringstream match;
          match << "p1 in window " << c << " (p=" << e->coupon.draw_probability << ")";
          rules.push_back(RuntimeRule{RuntimeRule::Kind::kTableEntry,
                                      at + ".prep.coupon", match.str(),
                                      "one_hot(" + std::to_string(c) + ")"});
        }
        rules.push_back(RuntimeRule{RuntimeRule::Kind::kTableEntry, at + ".prep.coupon",
                                    "default", "abort_update"});
      }

      // Operation select.
      rules.push_back(RuntimeRule{RuntimeRule::Kind::kTableEntry, at + ".op",
                                  filter_to_string(e->filter),
                                  std::string("select_op(") + to_string(e->op) + ")"});
    }
  }
  return rules;
}

std::string format_rules(const std::vector<RuntimeRule>& rules) {
  std::ostringstream out;
  for (const RuntimeRule& r : rules) {
    out << (r.kind == RuntimeRule::Kind::kHashMask ? "[mask ] " : "[table] ")
        << r.table << " | " << r.match << " | " << r.action << '\n';
  }
  return out.str();
}

}  // namespace flymon::control
