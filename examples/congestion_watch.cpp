// Congestion and head-of-line monitoring with the Max attribute: per-flow
// maximum queue length (SuMax) and maximum packet inter-arrival time (the
// composite 3-CMU task from paper §4).
#include <cstdio>
#include <vector>

#include "control/controller.hpp"
#include "packet/trace_gen.hpp"

using namespace flymon;

int main() {
  FlyMonDataPlane dataplane(9);
  control::Controller controller(dataplane);

  // Per-IP-pair maximum queue length observed (congestion detection).
  TaskSpec congestion;
  congestion.name = "congestion";
  congestion.key = FlowKeySpec::ip_pair();
  congestion.attribute = AttributeKind::kMax;
  congestion.param = ParamSpec::metadata(MetaField::kQueueLen);
  congestion.memory_buckets = 32768;
  congestion.rows = 2;
  const auto cg = controller.add_task(congestion);
  if (!cg.ok) {
    std::fprintf(stderr, "congestion task failed: %s\n", cg.error.c_str());
    return 1;
  }
  std::printf("congestion watch deployed (%.2f ms, %u CMUs)\n", cg.report.delay_ms(),
              cg.report.cmus_used);

  // Per-flow maximum inter-arrival time (combinatorial: Bloom filter +
  // last-timestamp CMU + interval CMU, chained across three CMU Groups).
  TaskSpec interval;
  interval.name = "max inter-arrival";
  interval.key = FlowKeySpec::five_tuple();
  interval.attribute = AttributeKind::kMax;
  interval.algorithm = Algorithm::kMaxInterarrival;
  interval.memory_buckets = 32768;
  interval.rows = 2;
  const auto iv = controller.add_task(interval);
  if (!iv.ok) {
    std::fprintf(stderr, "interval task failed: %s\n", iv.error.c_str());
    return 1;
  }
  std::printf("inter-arrival watch deployed (%.2f ms, %u CMUs across groups)\n",
              iv.report.delay_ms(), iv.report.cmus_used);

  TraceConfig cfg;
  cfg.num_flows = 3000;
  cfg.num_packets = 200'000;
  const std::vector<Packet> trace = TraceGenerator::generate(cfg);
  dataplane.process_all(trace);

  // Readout vs ground truth for the ten busiest pairs.
  const FreqMap qtruth = ExactStats::max_value(trace, congestion.key, MetaField::kQueueLen);
  std::printf("\n%-34s %8s %8s\n", "ip pair", "true max", "est");
  unsigned shown = 0;
  for (const auto& [key, truth] : qtruth) {
    if (truth < 120) continue;
    const Packet p = packet_from_candidate_key(key.bytes);
    std::printf("%3u.%u.%u.%u -> %u.%u.%u.%u%*s %8llu %8llu\n", p.ft.src_ip >> 24,
                (p.ft.src_ip >> 16) & 255, (p.ft.src_ip >> 8) & 255, p.ft.src_ip & 255,
                p.ft.dst_ip >> 24, (p.ft.dst_ip >> 16) & 255, (p.ft.dst_ip >> 8) & 255,
                p.ft.dst_ip & 255, 4, "", static_cast<unsigned long long>(truth),
                static_cast<unsigned long long>(controller.query_value(cg.task_id, p)));
    if (++shown == 10) break;
  }

  const FreqMap gaps = ExactStats::max_interarrival(trace, interval.key);
  double sum_err = 0;
  unsigned n = 0;
  for (const auto& [key, truth] : gaps) {
    if (truth == 0) continue;
    const Packet p = packet_from_candidate_key(key.bytes);
    const std::uint64_t est = controller.query_max_interarrival_ns(iv.task_id, p);
    sum_err += truth == 0 ? 0
                          : std::abs(static_cast<double>(est) - static_cast<double>(truth)) /
                                static_cast<double>(truth);
    ++n;
  }
  std::printf("\nmax inter-arrival ARE over %u flows: %.3f\n", n,
              n ? sum_err / n : 0.0);
  return 0;
}
