# Empty dependencies file for test_sketch_frequency.
# This may be replaced when dependencies are built.
