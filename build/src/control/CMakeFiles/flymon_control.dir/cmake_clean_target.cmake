file(REMOVE_RECURSE
  "libflymon_control.a"
)
