// Sampled per-stage hot-path profiler: 1-in-N batches run a
// cycle-instrumented variant of the compiled path (and the sharded pool
// records its claim/execute/merge phases), attributing cycles to the
// pipeline stages the SIMD/vectorisation roadmap items need to optimise:
//
//   compiled path:  compression | filter | address | salu
//   sharded path:   claim | execute | merge
//
// The profiler is off by default and entirely out of the un-sampled path:
// ExecPlan::run_batch checks one relaxed atomic per *batch* (not per
// packet) and dispatches to a separately-instantiated profiled template,
// so the common instantiation is byte-identical to an uninstrumented
// build.  Per-stage cycles/items accumulate in process-wide atomics,
// surface as a snapshot() for `micro_throughput --json` (the `stages`
// row) and flow through the telemetry exporters via flush_to_registry().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#else
#include "trace/span.hpp"  // monotonic_now_ns fallback
#endif

namespace flymon::telemetry {
class Registry;
}  // namespace flymon::telemetry

namespace flymon::trace {

enum class Stage : std::uint8_t {
  kCompression = 0,  ///< batched key serialisation + hash lanes
  kFilter,           ///< TCAM-filter match + sampling coin
  kAddress,          ///< key slice, address translation, param prep
  kSalu,             ///< stateful ALU op + chain/counter bookkeeping
  kClaim,            ///< sharded: work-queue chunk claim overhead
  kExecute,          ///< sharded: per-chunk plan execution
  kMerge,            ///< sharded: folding dirty shards into live registers
  kCount
};

inline constexpr std::size_t kNumStages =
    static_cast<std::size_t>(Stage::kCount);

const char* to_string(Stage s) noexcept;

/// Serialising-free cycle counter: rdtsc where available, steady_clock
/// nanoseconds otherwise (the breakdown is relative, so the unit only
/// needs to be uniform within a run).
inline std::uint64_t now_cycles() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return monotonic_now_ns();
#endif
}

/// Per-batch scratch the profiled path accumulates into; flushed once per
/// sampled batch so the shared atomics are touched O(stages) per batch.
struct BatchStageSample {
  std::array<std::uint64_t, kNumStages> cycles{};
  std::array<std::uint64_t, kNumStages> items{};

  void add(Stage s, std::uint64_t c, std::uint64_t n) noexcept {
    cycles[static_cast<std::size_t>(s)] += c;
    items[static_cast<std::size_t>(s)] += n;
  }
};

class StageProfiler {
 public:
  static StageProfiler& global();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Profile one in every `n` batches (n clamped to >= 1; default 16).
  void set_sample_every(std::uint32_t n) noexcept {
    every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  std::uint32_t sample_every() const noexcept {
    return every_.load(std::memory_order_relaxed);
  }

  /// Per-batch sampling decision: false (one relaxed load) when disabled.
  bool sample_batch() noexcept {
    if (!enabled()) return false;
    return (batches_.fetch_add(1, std::memory_order_relaxed) %
            every_.load(std::memory_order_relaxed)) == 0;
  }

  /// Fold one sampled batch's stage times into the process-wide totals.
  void record_batch(const BatchStageSample& s) noexcept;
  /// Record one phase observation directly (sharded claim/execute/merge).
  void record(Stage s, std::uint64_t cycles, std::uint64_t items) noexcept;

  struct StageStats {
    std::uint64_t cycles = 0;
    std::uint64_t items = 0;
    std::uint64_t samples = 0;  ///< sampled batches / phase observations
    double cycles_per_item() const noexcept {
      return items == 0 ? 0.0
                        : static_cast<double>(cycles) /
                              static_cast<double>(items);
    }
  };
  std::array<StageStats, kNumStages> snapshot() const;

  /// Batches seen by sample_batch() since construction or reset().
  std::uint64_t batches_seen() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }

  void reset() noexcept;

  /// Publish the current snapshot as gauges
  /// (`flymon_stage_cycles_per_item{stage=...}`,
  /// `flymon_stage_cycles_total{stage=...}`) so the breakdown flows
  /// through the JSON/Prometheus exporters.
  void flush_to_registry(telemetry::Registry& registry) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> every_{16};
  std::atomic<std::uint64_t> batches_{0};
  struct Cell {
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> items{0};
    std::atomic<std::uint64_t> samples{0};
  };
  std::array<Cell, kNumStages> cells_{};
};

}  // namespace flymon::trace
