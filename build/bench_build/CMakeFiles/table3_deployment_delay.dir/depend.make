# Empty dependencies file for table3_deployment_delay.
# This may be replaced when dependencies are built.
