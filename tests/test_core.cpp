// Tests for core building blocks: compression stage, address translation,
// buddy memory allocator, task filters.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "core/address_translation.hpp"
#include "core/compression.hpp"
#include "core/memory_partition.hpp"
#include "core/task.hpp"

namespace flymon {
namespace {

Packet sample_packet() {
  Packet p;
  p.ft = FiveTuple{0x0A010203, 0xC0A80102, 443, 51000, 6};
  return p;
}

// -------- spec algebra --------

TEST(SpecAlgebra, Disjoint) {
  EXPECT_TRUE(specs_disjoint(FlowKeySpec::src_ip(), FlowKeySpec::dst_ip()));
  EXPECT_FALSE(specs_disjoint(FlowKeySpec::src_ip(), FlowKeySpec::src_ip(24)));
  EXPECT_TRUE(specs_disjoint(FlowKeySpec::src_port(), FlowKeySpec::dst_port()));
}

TEST(SpecAlgebra, Union) {
  EXPECT_EQ(specs_union(FlowKeySpec::src_ip(), FlowKeySpec::dst_ip()),
            FlowKeySpec::ip_pair());
}

// -------- compression stage --------

TEST(Compression, ConfigureAndCompute) {
  CompressionStage cs(3, 0);
  cs.configure(0, FlowKeySpec::src_ip());
  cs.configure(1, FlowKeySpec::dst_ip());
  const auto keys = cs.compute(serialize_candidate_key(sample_packet()));
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_NE(keys[0], keys[1]);
  EXPECT_EQ(keys[2], 0u) << "unconfigured unit computes nothing";
}

TEST(Compression, FreeUnitTracking) {
  CompressionStage cs(2, 0);
  EXPECT_EQ(cs.free_unit(), 0u);
  cs.configure(0, FlowKeySpec::src_ip());
  EXPECT_EQ(cs.free_unit(), 1u);
  cs.configure(1, FlowKeySpec::dst_ip());
  EXPECT_FALSE(cs.free_unit().has_value());
  cs.clear_unit(0);
  EXPECT_EQ(cs.free_unit(), 0u);
}

TEST(Compression, FindSelectorDirect) {
  CompressionStage cs(3, 0);
  cs.configure(1, FlowKeySpec::src_ip());
  const auto sel = cs.find_selector(FlowKeySpec::src_ip());
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->unit_a, 1);
  EXPECT_EQ(sel->unit_b, -1);
}

TEST(Compression, FindSelectorViaXor) {
  CompressionStage cs(3, 0);
  cs.configure(0, FlowKeySpec::src_ip());
  cs.configure(1, FlowKeySpec::dst_ip());
  const auto sel = cs.find_selector(FlowKeySpec::ip_pair());
  ASSERT_TRUE(sel.has_value());
  EXPECT_GE(sel->unit_b, 0) << "IP-pair must come from an XOR of two units";
}

TEST(Compression, SelectorNotFound) {
  CompressionStage cs(3, 0);
  cs.configure(0, FlowKeySpec::src_ip());
  EXPECT_FALSE(cs.find_selector(FlowKeySpec::five_tuple()).has_value());
}

TEST(Compression, XorKeyDistinguishesPairs) {
  CompressionStage cs(2, 0);
  cs.configure(0, FlowKeySpec::src_ip());
  cs.configure(1, FlowKeySpec::dst_ip());
  const auto sel = *cs.find_selector(FlowKeySpec::ip_pair());

  Packet a = sample_packet();
  Packet b = sample_packet();
  b.ft.dst_ip ^= 0x1111;
  const auto ka = CompressionStage::select(cs.compute(serialize_candidate_key(a)), sel);
  const auto kb = CompressionStage::select(cs.compute(serialize_candidate_key(b)), sel);
  EXPECT_NE(ka, kb);
}

TEST(KeySlice, Apply) {
  const KeySlice s{8, 16};
  EXPECT_EQ(s.apply(0xAABB'CCDDu), 0xBBCCu);
  const KeySlice full{0, 32};
  EXPECT_EQ(full.apply(0xAABB'CCDDu), 0xAABB'CCDDu);
}

// -------- address translation --------

TEST(AddrTranslation, IdentityOnFullRange) {
  const MemoryPartition part{0, 65536};
  EXPECT_EQ(translate_address(1234, 16, part), 1234u);
}

TEST(AddrTranslation, ShiftsIntoSubRange) {
  const MemoryPartition part{32768, 16384};  // [m/2, 3m/4)
  for (std::uint32_t k : {0u, 999u, 65535u}) {
    const std::uint32_t a = translate_address(k, 16, part);
    EXPECT_GE(a, part.base);
    EXPECT_LT(a, part.end());
  }
}

TEST(AddrTranslation, CoversWholePartition) {
  const MemoryPartition part{16384, 16384};
  std::set<std::uint32_t> seen;
  for (std::uint32_t k = 0; k < 65536; ++k) seen.insert(translate_address(k, 16, part));
  EXPECT_EQ(seen.size(), 16384u);
  EXPECT_EQ(*seen.begin(), 16384u);
  EXPECT_EQ(*seen.rbegin(), 32767u);
}

TEST(AddrTranslation, NarrowSliceStaysInside) {
  const MemoryPartition part{1024, 4096};
  EXPECT_LT(translate_address(0xFF, 8, part), part.end());
  EXPECT_GE(translate_address(0, 8, part), part.base);
}

TEST(AddrTranslation, TcamCostMatchesPaperExample) {
  // Fig 9: mapping to a quarter-size partition needs 3 entries + default.
  const auto c = translation_cost(TranslationStrategy::kTcam, 65536,
                                  MemoryPartition{32768, 16384});
  EXPECT_EQ(c.tcam_entries, 4u);
}

TEST(AddrTranslation, CostsGrowWithPartitions) {
  unsigned prev_tcam = 0, prev_phv = 0;
  for (unsigned parts : {2u, 4u, 8u, 16u, 32u}) {
    const auto t = translation_cost_for_partitions(TranslationStrategy::kTcam, 65536, parts);
    const auto s = translation_cost_for_partitions(TranslationStrategy::kShift, 65536, parts);
    EXPECT_GT(t.tcam_entries, prev_tcam);
    EXPECT_GE(s.phv_bits, prev_phv);
    prev_tcam = t.tcam_entries;
    prev_phv = s.phv_bits;
  }
}

TEST(AddrTranslation, ShiftUsesNoTcam) {
  const auto c = translation_cost(TranslationStrategy::kShift, 65536,
                                  MemoryPartition{0, 2048});
  EXPECT_EQ(c.tcam_entries, 0u);
  EXPECT_GT(c.phv_bits, 0u);
}

// -------- memory partitions / buddy allocator --------

TEST(Quantize, AccurateRoundsUp) {
  EXPECT_EQ(quantize_buckets(1000, AllocMode::kAccurate), 1024u);
  EXPECT_EQ(quantize_buckets(1024, AllocMode::kAccurate), 1024u);
  EXPECT_EQ(quantize_buckets(1025, AllocMode::kAccurate), 2048u);
}

TEST(Quantize, EfficientRoundsToNearest) {
  EXPECT_EQ(quantize_buckets(1100, AllocMode::kEfficient), 1024u);
  EXPECT_EQ(quantize_buckets(1900, AllocMode::kEfficient), 2048u);
  EXPECT_EQ(quantize_buckets(1536, AllocMode::kEfficient), 1024u) << "tie goes down";
}

TEST(Buddy, RejectsNonPow2Total) {
  EXPECT_THROW(BuddyAllocator(1000), std::invalid_argument);
}

TEST(Buddy, AllocateAndExhaust) {
  BuddyAllocator b(1024);
  std::vector<MemoryPartition> parts;
  for (int i = 0; i < 4; ++i) {
    const auto p = b.allocate(256);
    ASSERT_TRUE(p.has_value());
    parts.push_back(*p);
  }
  EXPECT_EQ(b.free_buckets(), 0u);
  EXPECT_FALSE(b.allocate(256).has_value());
  EXPECT_FALSE(b.allocate(1).has_value());
  // All four partitions are disjoint and cover [0,1024).
  std::set<std::uint32_t> bases;
  for (const auto& p : parts) bases.insert(p.base);
  EXPECT_EQ(bases.size(), 4u);
}

TEST(Buddy, ReleaseMergesBuddies) {
  BuddyAllocator b(1024);
  const auto p1 = *b.allocate(512);
  const auto p2 = *b.allocate(512);
  b.release(p1);
  b.release(p2);
  EXPECT_EQ(b.largest_free_block(), 1024u);
  EXPECT_TRUE(b.allocate(1024).has_value());
}

TEST(Buddy, MixedSizes) {
  BuddyAllocator b(1024);
  const auto a = b.allocate(256);
  const auto c = b.allocate(512);
  const auto d = b.allocate(256);
  EXPECT_TRUE(a && c && d);
  EXPECT_EQ(b.free_buckets(), 0u);
  b.release(*c);
  EXPECT_EQ(b.largest_free_block(), 512u);
}

TEST(Buddy, MinBlockEnforced) {
  BuddyAllocator b(1024, 64);
  const auto p = b.allocate(1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size, 64u) << "requests round up to min_block";
}

TEST(Buddy, NonPow2RequestRejected) {
  BuddyAllocator b(1024);
  EXPECT_FALSE(b.allocate(300).has_value());
  EXPECT_FALSE(b.allocate(0).has_value());
  EXPECT_FALSE(b.allocate(2048).has_value());
}

TEST(Buddy, DoubleReleaseDetected) {
  BuddyAllocator b(1024);
  const auto p = *b.allocate(256);
  b.release(p);
  EXPECT_THROW(b.release(p), std::logic_error);
  // Releasing a block inside an already-free larger block is also caught.
  const auto q = *b.allocate(256);
  const auto r = *b.allocate(256);
  b.release(q);
  b.release(r);  // buddies coalesce into 512
  EXPECT_THROW(b.release(q), std::logic_error);
}

TEST(Buddy, RandomChurnInvariant) {
  BuddyAllocator b(4096);
  Rng rng(77);
  std::vector<MemoryPartition> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.next_bool(0.55)) {
      const std::uint32_t size = 1u << rng.next_below(8);  // 1..128
      if (const auto p = b.allocate(size)) {
        // No overlap with any live partition.
        for (const auto& q : live) {
          EXPECT_TRUE(p->end() <= q.base || q.end() <= p->base)
              << "overlap: [" << p->base << "," << p->end() << ") vs [" << q.base
              << "," << q.end() << ")";
        }
        live.push_back(*p);
      }
    } else {
      const std::size_t i = rng.next_below(live.size());
      b.release(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  for (const auto& p : live) b.release(p);
  EXPECT_EQ(b.free_buckets(), 4096u);
  EXPECT_EQ(b.largest_free_block(), 4096u) << "full coalescing after all releases";
  EXPECT_EQ(b.allocations(), 0u);
}

// -------- task filters --------

TEST(TaskFilter, WildcardMatchesEverything) {
  const TaskFilter f = TaskFilter::any();
  EXPECT_TRUE(f.matches(FiveTuple{1, 2, 3, 4, 5}));
  EXPECT_TRUE(f.is_wildcard());
}

TEST(TaskFilter, SrcPrefix) {
  const TaskFilter f = TaskFilter::src(0x0A000000, 8);
  EXPECT_TRUE(f.matches(FiveTuple{0x0A123456, 0, 0, 0, 0}));
  EXPECT_FALSE(f.matches(FiveTuple{0x0B123456, 0, 0, 0, 0}));
}

TEST(TaskFilter, CombinedSrcDst) {
  TaskFilter f;
  f.src_ip = 0x0A000000;
  f.src_len = 8;
  f.dst_ip = 0xC0A80000;
  f.dst_len = 16;
  EXPECT_TRUE(f.matches(FiveTuple{0x0A000001, 0xC0A80505, 0, 0, 0}));
  EXPECT_FALSE(f.matches(FiveTuple{0x0A000001, 0xC0A90505, 0, 0, 0}));
}

TEST(TaskFilter, IntersectionRules) {
  const auto a = TaskFilter::src(0x0A000000, 8);
  const auto b = TaskFilter::src(0x0B000000, 8);
  const auto sub = TaskFilter::src(0x0A400000, 10);
  EXPECT_FALSE(a.intersects(b));
  EXPECT_TRUE(a.intersects(sub)) << "containment intersects";
  EXPECT_TRUE(a.intersects(TaskFilter::any()));
  EXPECT_TRUE(TaskFilter::any().intersects(a));
  // Different dimensions always may intersect.
  EXPECT_TRUE(a.intersects(TaskFilter::dst(0xC0A80000, 16)));
}

TEST(TaskFilter, IntersectionIsSymmetric) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    TaskFilter a, b;
    a.src_ip = rng.next_u32();
    a.src_len = static_cast<std::uint8_t>(rng.next_below(33));
    b.src_ip = rng.next_u32();
    b.src_len = static_cast<std::uint8_t>(rng.next_below(33));
    EXPECT_EQ(a.intersects(b), b.intersects(a));
    EXPECT_TRUE(a.intersects(a));
  }
}

}  // namespace
}  // namespace flymon
