// Tests for the cross-stacking planner, static-deployment model and
// forwarding simulator.
#include <gtest/gtest.h>

#include "control/crossstack.hpp"
#include "control/forwarding_sim.hpp"
#include "control/static_deploy.hpp"
#include "dataplane/tofino_model.hpp"

namespace flymon::control {
namespace {

using dataplane::Resource;
using dataplane::TofinoModel;

TEST(CrossStack, NineGroupsInTwelveStages) {
  const auto plan = cross_stack(12);
  EXPECT_EQ(plan.groups_placed, 9u);
}

TEST(CrossStack, PaperUtilizationNumbers) {
  const auto plan = cross_stack(12);
  EXPECT_NEAR(plan.pipeline.utilization(Resource::kHashUnit), 0.75, 1e-9);
  EXPECT_NEAR(plan.pipeline.utilization(Resource::kSalu), 0.5625, 1e-9);
}

TEST(CrossStack, UtilizationGrowsWithStages) {
  double prev = 0;
  for (unsigned stages : {4u, 6u, 8u, 10u, 12u}) {
    const auto plan = cross_stack(stages);
    const double u = plan.pipeline.utilization(Resource::kHashUnit);
    EXPECT_GE(u, prev);
    prev = u;
  }
}

TEST(CrossStack, FewerThanFourStagesPlacesNothing) {
  EXPECT_EQ(cross_stack(3).groups_placed, 0u);
  EXPECT_EQ(cross_stack(4).groups_placed, 1u);
}

TEST(CrossStack, SequentialIsWorse) {
  EXPECT_EQ(sequential_stack(12).groups_placed, 3u);
  EXPECT_LT(sequential_stack(12).groups_placed, cross_stack(12).groups_placed);
}

TEST(CrossStack, BaselineReducesCapacity) {
  const auto free_plan = cross_stack(12);
  const auto loaded = cross_stack(12, CmuGroupConfig{}, switch_p4_baseline_per_stage(),
                                  switch_p4_baseline_phv_bits());
  EXPECT_LT(loaded.groups_placed, free_plan.groups_placed);
  EXPECT_GE(loaded.groups_placed, 3u) << "paper: more than 3 groups fit switch.p4";
}

TEST(CrossStack, StartStagesAreDiagonal) {
  const auto plan = cross_stack(12);
  for (std::size_t i = 0; i < plan.start_stage.size(); ++i) {
    EXPECT_EQ(plan.start_stage[i], i) << "shift-one-stage placement";
  }
}

TEST(KeyScalability, CompressionWinsForLargeKeys) {
  const unsigned budget = TofinoModel::kPhvBits / 2;
  const unsigned without = max_cmus_without_compression(360, budget, 12);
  const unsigned with = max_cmus_with_compression(360, budget, 12);
  EXPECT_GE(with, 5 * without) << "paper: ~5x at 350-bit keys";
  EXPECT_EQ(with, 27u) << "9 groups x 3 CMUs";
}

TEST(KeyScalability, WithoutCompressionShrinksWithKeySize) {
  const unsigned budget = TofinoModel::kPhvBits / 2;
  unsigned prev = ~0u;
  for (unsigned bits : {32u, 64u, 104u, 360u}) {
    const unsigned n = max_cmus_without_compression(bits, budget, 12);
    EXPECT_LE(n, prev);
    prev = n;
  }
}

TEST(StaticDeploy, Fig2FootprintsSane) {
  const auto sketches = fig2_sketches();
  ASSERT_EQ(sketches.size(), 4u);
  for (const auto& s : sketches) {
    EXPECT_GT(s.rows, 0u);
    const auto d = s.row_demand();
    EXPECT_GT(d[Resource::kHashUnit], 0u);
    EXPECT_EQ(d[Resource::kSalu], 1u);
  }
}

TEST(StaticDeploy, InstancesBoundedWithBaseline) {
  const unsigned n = max_static_instances(fig2_sketches(), 12,
                                          switch_p4_baseline_per_stage(),
                                          switch_p4_baseline_phv_bits());
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 12u) << "static deployment hits a wall within ~a dozen sketches";
}

TEST(StaticDeploy, MoreRoomWithoutBaseline) {
  const unsigned with_baseline = max_static_instances(
      fig2_sketches(), 12, switch_p4_baseline_per_stage(), switch_p4_baseline_phv_bits());
  const unsigned without =
      max_static_instances(fig2_sketches(), 12, dataplane::StageDemand{}, 0);
  EXPECT_GT(without, with_baseline);
}

TEST(ForwardingSim, PaperSchedule) {
  const auto events = paper_event_schedule();
  ASSERT_EQ(events.size(), 9u);
  EXPECT_DOUBLE_EQ(events[0].time_s, 5.0);
  EXPECT_DOUBLE_EQ(events[8].time_s, 85.0);
}

TEST(ForwardingSim, FlyMonNeverStalls) {
  ForwardingSimConfig cfg;
  const auto r = simulate_forwarding(cfg, paper_event_schedule());
  EXPECT_DOUBLE_EQ(r.flymon_outage_s, 0.0);
  for (const auto& s : r.samples) EXPECT_GT(s.flymon_gbps, 0.0);
}

TEST(ForwardingSim, StaticStallsPerReload) {
  ForwardingSimConfig cfg;
  const auto r = simulate_forwarding(cfg, paper_event_schedule());
  EXPECT_EQ(r.static_reloads, 3u) << "6 critical events batched two-per-reload";
  EXPECT_GE(r.static_outage_s, 3 * cfg.reload_outage_min_s);
  EXPECT_LE(r.static_outage_s, 3 * cfg.reload_outage_max_s);
  bool any_zero = false;
  for (const auto& s : r.samples) any_zero |= (s.static_gbps == 0.0);
  EXPECT_TRUE(any_zero);
}

TEST(ForwardingSim, DeterministicBySeed) {
  ForwardingSimConfig cfg;
  const auto a = simulate_forwarding(cfg, paper_event_schedule());
  const auto b = simulate_forwarding(cfg, paper_event_schedule());
  ASSERT_EQ(a.samples.size(), b.samples.size());
  EXPECT_DOUBLE_EQ(a.static_outage_s, b.static_outage_s);
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].flymon_gbps, b.samples[i].flymon_gbps);
  }
}

TEST(ForwardingSim, NoEventsNoOutage) {
  ForwardingSimConfig cfg;
  const auto r = simulate_forwarding(cfg, {});
  EXPECT_DOUBLE_EQ(r.static_outage_s, 0.0);
  EXPECT_EQ(r.static_reloads, 0u);
}

TEST(RuleInstallModel, BatchingAmortizes) {
  using dataplane::RuleInstallModel;
  EXPECT_DOUBLE_EQ(RuleInstallModel::batched_ms(3.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(RuleInstallModel::batched_ms(3.0, 1), 3.0);
  const double ten = RuleInstallModel::batched_ms(3.0, 10);
  EXPECT_LT(ten, 30.0) << "batched rules must cost less than sequential";
  EXPECT_GT(ten, 3.0);
}

}  // namespace
}  // namespace flymon::control
