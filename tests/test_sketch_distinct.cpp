// Tests for distinct/existence baselines: BloomFilter, LinearCounting,
// HyperLogLog, BeauCoup, UnivMon.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "common/rng.hpp"
#include "packet/flowkey.hpp"
#include "sketch/beaucoup.hpp"
#include "sketch/bloom_filter.hpp"
#include "sketch/hyperloglog.hpp"
#include "sketch/linear_counting.hpp"
#include "sketch/univmon.hpp"

namespace flymon::sketch {
namespace {

std::vector<std::uint8_t> key(std::uint64_t id) {
  std::vector<std::uint8_t> k(8);
  for (int i = 0; i < 8; ++i) k[i] = static_cast<std::uint8_t>(id >> (8 * i));
  return k;
}

// -------- Bloom filter --------

TEST(Bloom, NoFalseNegatives) {
  BloomFilter bf(1 << 16, 3);
  for (std::uint64_t i = 0; i < 2000; ++i) bf.insert(key(i));
  for (std::uint64_t i = 0; i < 2000; ++i) EXPECT_TRUE(bf.contains(key(i)));
}

TEST(Bloom, FalsePositiveRateNearTheory) {
  const std::uint64_t m = 1 << 16;
  const unsigned k = 3;
  const std::uint64_t n = 5000;
  BloomFilter bf(m, k);
  for (std::uint64_t i = 0; i < n; ++i) bf.insert(key(i));
  std::size_t fp = 0;
  const std::size_t probes = 20000;
  for (std::uint64_t i = 0; i < probes; ++i) fp += bf.contains(key(1'000'000 + i));
  const double expected = std::pow(1.0 - std::exp(-double(k * n) / m), k);
  EXPECT_NEAR(fp / double(probes), expected, 0.01);
}

TEST(Bloom, FillRatio) {
  BloomFilter bf(1024, 1);
  EXPECT_DOUBLE_EQ(bf.fill_ratio(), 0.0);
  for (std::uint64_t i = 0; i < 200; ++i) bf.insert(key(i));
  EXPECT_GT(bf.fill_ratio(), 0.1);
  EXPECT_LT(bf.fill_ratio(), 0.3);
  bf.clear();
  EXPECT_DOUBLE_EQ(bf.fill_ratio(), 0.0);
}

TEST(Bloom, RejectsBadArgs) {
  EXPECT_THROW(BloomFilter(0, 3), std::invalid_argument);
  EXPECT_THROW(BloomFilter(64, 0), std::invalid_argument);
}

// -------- Linear counting --------

TEST(LinearCounting, AccurateBelowCapacity) {
  LinearCounting lc(1 << 16);
  for (std::uint64_t i = 0; i < 8000; ++i) {
    lc.insert(key(i));
    lc.insert(key(i));  // duplicates must not count
  }
  EXPECT_NEAR(lc.estimate(), 8000.0, 300.0);
}

TEST(LinearCounting, ZeroWhenEmpty) {
  LinearCounting lc(1024);
  EXPECT_DOUBLE_EQ(lc.estimate(), 0.0);
}

TEST(LinearCounting, LoadBitMatchesInsert) {
  LinearCounting a(4096), b(4096);
  a.insert(key(5));
  // Manual bit loading reproduces insert (same hash path).
  b.load_bit(hash64(std::span<const std::uint8_t>(key(5).data(), 8), 0x11C0ull) % 4096);
  EXPECT_DOUBLE_EQ(a.estimate(), b.estimate());
}

// -------- HyperLogLog --------

TEST(Hll, RejectsBadPrecision) {
  EXPECT_THROW(HyperLogLog(1), std::invalid_argument);
  EXPECT_THROW(HyperLogLog(21), std::invalid_argument);
}

TEST(Hll, SmallRangeCorrection) {
  HyperLogLog h(10);
  for (std::uint64_t i = 0; i < 100; ++i) h.insert(key(i));
  EXPECT_NEAR(h.estimate(), 100.0, 15.0);
}

TEST(Hll, DuplicatesDoNotInflate) {
  HyperLogLog h(12);
  for (int rep = 0; rep < 10; ++rep) {
    for (std::uint64_t i = 0; i < 1000; ++i) h.insert(key(i));
  }
  EXPECT_NEAR(h.estimate(), 1000.0, 100.0);
}

class HllPrecisionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(HllPrecisionSweep, ErrorScalesWithPrecision) {
  const unsigned b = GetParam();
  HyperLogLog h(b);
  const std::uint64_t n = 200'000;
  for (std::uint64_t i = 0; i < n; ++i) h.insert(key(i));
  // Standard error ~ 1.04/sqrt(2^b); allow 5 sigma.
  const double sigma = 1.04 / std::sqrt(double(1u << b));
  EXPECT_NEAR(h.estimate(), double(n), 5 * sigma * double(n)) << "b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Precisions, HllPrecisionSweep, ::testing::Values(6u, 8u, 10u, 12u, 14u));

// -------- BeauCoup --------

TEST(CouponConfig, ExpectedItemsMonotone) {
  const auto cfg = CouponConfig::for_threshold(500, 32, 24);
  double prev = 0;
  for (unsigned j = 1; j <= 32; ++j) {
    const double e = cfg.expected_items_to_collect(j);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(CouponConfig, ThresholdCalibration) {
  const auto cfg = CouponConfig::for_threshold(512, 32, 24);
  EXPECT_NEAR(cfg.expected_items_to_collect(cfg.collect_threshold), 512.0, 1.0);
}

TEST(CouponConfig, RejectsBadArgs) {
  EXPECT_THROW(CouponConfig::for_threshold(0.5, 32, 24), std::invalid_argument);
  EXPECT_THROW(CouponConfig::for_threshold(100, 40, 24), std::invalid_argument);
  EXPECT_THROW(CouponConfig::for_threshold(100, 32, 40), std::invalid_argument);
}

TEST(BeauCoup, ReportsHeavySpreaderOnly) {
  const auto cfg = CouponConfig::for_threshold(256, 32, 24);
  BeauCoup bc(1, 4096, cfg);
  const auto heavy = key(1), light = key(2);
  for (std::uint64_t i = 0; i < 2000; ++i) bc.update(heavy, key(100000 + i));
  for (std::uint64_t i = 0; i < 20; ++i) bc.update(light, key(200000 + i));
  EXPECT_TRUE(bc.reported(heavy));
  EXPECT_FALSE(bc.reported(light));
}

TEST(BeauCoup, DuplicateAttributesDrawSameCoupon) {
  const auto cfg = CouponConfig::for_threshold(64, 32, 24);
  BeauCoupTable t(1024, cfg, 0);
  for (int rep = 0; rep < 1000; ++rep) t.update(key(1), key(42));
  EXPECT_LE(t.coupons(key(1)), 1u) << "one distinct value collects at most one coupon";
}

TEST(BeauCoup, EstimateTracksDistinctCount) {
  const auto cfg = CouponConfig::for_threshold(512, 32, 24);
  BeauCoup bc(3, 4096, cfg);
  for (std::uint64_t i = 0; i < 500; ++i) bc.update(key(9), key(7000 + i));
  EXPECT_NEAR(bc.estimate(key(9)), 500.0, 300.0);
}

TEST(BeauCoup, ChecksumDropsCollidingKeys) {
  const auto cfg = CouponConfig::for_threshold(64, 32, 24);
  BeauCoupTable t(1, cfg, 0);  // single slot: everything collides
  for (std::uint64_t i = 0; i < 200; ++i) t.update(key(1), key(5000 + i));
  for (std::uint64_t i = 0; i < 200; ++i) t.update(key(2), key(6000 + i));
  // key(2) lost the slot to key(1): its checksum mismatches -> 0 coupons.
  EXPECT_GT(t.coupons(key(1)), 0u);
  EXPECT_EQ(t.coupons(key(2)), 0u);
}

TEST(BeauCoup, MemoryAccounting) {
  const auto cfg = CouponConfig::for_threshold(64, 32, 24);
  BeauCoup bc(3, 1024, cfg, true);
  EXPECT_EQ(bc.memory_bytes(), 3u * 1024 * 8);
  BeauCoup nc(3, 1024, cfg, false);
  EXPECT_EQ(nc.memory_bytes(), 3u * 1024 * 4);
}

// -------- UnivMon --------

FlowKeyValue fkv(std::uint32_t id) {
  Packet p;
  p.ft.src_ip = id;
  return extract_flow_key(p, FlowKeySpec::src_ip());
}

TEST(UnivMon, CardinalityEstimate) {
  auto um = UnivMon::with_memory(256 * 1024);
  for (std::uint32_t i = 1; i <= 5000; ++i) um.update(fkv(i));
  EXPECT_NEAR(um.estimate_cardinality(), 5000.0, 1500.0);
}

TEST(UnivMon, EntropyOnSkewedStream) {
  auto um = UnivMon::with_memory(512 * 1024);
  Rng rng(21);
  std::unordered_map<std::uint32_t, std::uint64_t> truth;
  for (int i = 0; i < 100'000; ++i) {
    // Heavy-tailed: flow id ~ geometric-ish
    std::uint32_t id = 1;
    while (rng.next_bool(0.55) && id < 4096) id *= 2;
    id += static_cast<std::uint32_t>(rng.next_below(id));
    truth[id] += 1;
    um.update(fkv(id));
  }
  double n = 0, h = 0;
  for (const auto& [id, c] : truth) n += static_cast<double>(c);
  for (const auto& [id, c] : truth) {
    const double p = static_cast<double>(c) / n;
    h -= p * std::log(p);
  }
  EXPECT_NEAR(um.estimate_entropy(), h, 0.35 * h);
}

TEST(UnivMon, HeavyHittersFound) {
  auto um = UnivMon::with_memory(256 * 1024);
  for (int rep = 0; rep < 5000; ++rep) um.update(fkv(42));
  for (std::uint32_t i = 100; i < 2000; ++i) um.update(fkv(i));
  const auto hh = um.heavy_hitters(2500);
  ASSERT_FALSE(hh.empty());
  bool found = false;
  for (const auto& [k, est] : hh) found |= (k == fkv(42));
  EXPECT_TRUE(found);
}

TEST(UnivMon, TotalUpdatesTracked) {
  auto um = UnivMon::with_memory(64 * 1024);
  um.update(fkv(1), 3);
  um.update(fkv(2), 2);
  EXPECT_EQ(um.total_updates(), 5u);
  um.clear();
  EXPECT_EQ(um.total_updates(), 0u);
}

}  // namespace
}  // namespace flymon::sketch
