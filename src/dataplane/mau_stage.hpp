// Per-MAU-stage resource ledger.
//
// Hardware objects (hash units, SALUs, SRAM/TCAM blocks, VLIW slots,
// logical table IDs) are allocated here when features are compiled in, so
// utilisation figures (paper Figs 2, 8, 13) are computed, not asserted.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "dataplane/tofino_model.hpp"

namespace flymon::dataplane {

enum class Resource : std::uint8_t {
  kHashUnit = 0,
  kSalu,
  kSramBlock,
  kTcamBlock,
  kVliwSlot,
  kLogicalTable,
};
inline constexpr unsigned kNumResourceKinds = 6;

const char* to_string(Resource r) noexcept;

/// A bundle of per-stage resource demands (in native units of each kind).
struct StageDemand {
  std::array<std::uint32_t, kNumResourceKinds> amount{};

  std::uint32_t& operator[](Resource r) noexcept { return amount[static_cast<unsigned>(r)]; }
  std::uint32_t operator[](Resource r) const noexcept { return amount[static_cast<unsigned>(r)]; }

  StageDemand& add(Resource r, std::uint32_t n) noexcept {
    amount[static_cast<unsigned>(r)] += n;
    return *this;
  }
  friend StageDemand operator+(StageDemand a, const StageDemand& b) noexcept {
    for (unsigned i = 0; i < kNumResourceKinds; ++i) a.amount[i] += b.amount[i];
    return a;
  }
};

/// Capacity of one MAU stage in native units.
StageDemand stage_capacity() noexcept;

/// Ledger for one MAU stage.
class MauStage {
 public:
  MauStage() noexcept : capacity_(stage_capacity()) {}

  /// True iff `d` fits in the remaining budget.
  bool fits(const StageDemand& d) const noexcept;

  /// Allocate; returns false (and allocates nothing) when it does not fit.
  bool allocate(const StageDemand& d) noexcept;

  /// Release a previously-allocated demand (no-fail; clamps at zero).
  void release(const StageDemand& d) noexcept;

  std::uint32_t used(Resource r) const noexcept { return used_[r]; }
  std::uint32_t capacity(Resource r) const noexcept { return capacity_[r]; }

  /// used/capacity in [0,1].
  double utilization(Resource r) const noexcept;

 private:
  StageDemand capacity_{};
  StageDemand used_{};
};

}  // namespace flymon::dataplane
